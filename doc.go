// Package atlahs is a from-scratch Go reproduction of ATLAHS, the
// application-centric network simulator toolchain for AI, HPC and
// distributed storage (Shen, Bonato et al., SC 2025).
//
// The public API is the sim package — the facade every command, example
// and service programs against. A sim.Spec declares the workload (GOAL
// file, bytes, in-memory schedule, or synthetic pattern), names a backend
// out of the registry ("lgs", "pkt", "fluid", or a third-party simulator
// added with sim.Register), and sim.Run executes it, streaming op
// completions and progress to an optional sim.Observer.
//
// The layers underneath, top to bottom:
//
//   - sim: the facade — declarative run specs, the backend registry,
//     engine selection, observers.
//   - internal/sched: the GOAL scheduler — walks every rank's task DAG and
//     issues operations to a backend as dependencies resolve.
//   - internal/core: the ATLAHS backend contract (paper Fig 7) — send,
//     recv and calc events, completion callbacks, message matching,
//     compute streams, the lookahead declaration.
//   - internal/engine: the discrete-event cores — the serial Engine and
//     the windowed, lane-sharded parallel ParEngine with its persistent
//     worker pool.
//
// Around that spine sit the GOAL format (internal/goal), the three
// backend implementations (internal/backend over internal/pktnet and
// internal/fluid), trace ingestion (internal/trace/...), workload
// generators (internal/workload/...), and the experiment harness that
// regenerates the paper's evaluation (internal/experiments). See README.md
// for a map and DESIGN.md for architecture and substitution notes.
package atlahs

// Version identifies this reproduction.
const Version = "1.1.0"
