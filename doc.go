// Package atlahs is a from-scratch Go reproduction of ATLAHS, the
// application-centric network simulator toolchain for AI, HPC and
// distributed storage (Shen, Bonato et al., SC 2025).
//
// The toolchain lives under internal/: the GOAL intermediate format and
// scheduler, three network backends (LogGOPS message-level, packet-level,
// fluid flow-level), tracers and GOAL generators for the three application
// domains, workload generators, and the experiment harness that
// regenerates every table and figure of the paper's evaluation. See
// README.md for a map and DESIGN.md for the architecture and substitution
// notes.
package atlahs

// Version identifies this reproduction.
const Version = "1.0.0"
