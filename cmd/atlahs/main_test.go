package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestPostRetryingHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	resp, err := postRetrying(ts.URL, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("final status = %d, want 200 after retries", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two 503s then success)", got)
	}
}

func TestPostRetryingGivesUpAfterBoundedAttempts(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	resp, err := postRetrying(ts.URL, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("final status = %d, want the 503 surfaced", resp.StatusCode)
	}
	if got := hits.Load(); got != submitAttempts {
		t.Errorf("server saw %d requests, want %d", got, submitAttempts)
	}
}

func TestPostRetryingNoRetryWithoutUsableHint(t *testing.T) {
	cases := map[string]func(http.Header){
		"absent":      func(http.Header) {},
		"non-integer": func(h http.Header) { h.Set("Retry-After", "soon") },
		"negative":    func(h http.Header) { h.Set("Retry-After", "-1") },
	}
	for name, set := range cases {
		t.Run(name, func(t *testing.T) {
			var hits atomic.Int32
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				set(w.Header())
				http.Error(w, `{"error":"nope"}`, http.StatusServiceUnavailable)
			}))
			defer ts.Close()
			resp, err := postRetrying(ts.URL, []byte("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if got := hits.Load(); got != 1 {
				t.Errorf("server saw %d requests, want 1 (no blind retries)", got)
			}
		})
	}
}

func TestPostRetryingNon503Untouched(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0") // must be ignored on a 400
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	resp, err := postRetrying(ts.URL, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || hits.Load() != 1 {
		t.Errorf("status = %d after %d requests, want one 400", resp.StatusCode, hits.Load())
	}
}
