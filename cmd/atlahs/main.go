// Command atlahs runs a GOAL schedule on a chosen network backend — the
// toolchain's simulation entry point.
//
// Usage:
//
//	atlahs -goal sched.bin [-backend lgs|pkt|fluid] [-params ai|hpc]
//	       [-hosts-per-tor 4] [-oversub 1] [-cc mprdma] [-seed 1]
//	       [-workers 1]
//
// The GOAL file may be textual or binary (auto-detected). The lgs backend
// is topology-oblivious; pkt and fluid build a two-level fat tree sized to
// the schedule. -workers > 1 runs the lgs backend on the sharded parallel
// engine (ranks spread across goroutines under the LogGOPS lookahead
// window, results bit-identical to serial); pkt and fluid share fabric
// state and always run serially.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/fluid"
	"atlahs/internal/goal"
	"atlahs/internal/pktnet"
	"atlahs/internal/sched"
	"atlahs/internal/topo"
)

func main() {
	goalPath := flag.String("goal", "", "GOAL schedule file (text or binary)")
	be := flag.String("backend", "lgs", "backend: lgs, pkt or fluid")
	params := flag.String("params", "ai", "LogGOPS parameter set: ai or hpc")
	hostsPerToR := flag.Int("hosts-per-tor", 4, "fat-tree hosts per ToR (pkt/fluid)")
	oversub := flag.Int("oversub", 1, "fat-tree ToR:core oversubscription (pkt/fluid)")
	ccName := flag.String("cc", "mprdma", "congestion control (pkt): mprdma, swift, dctcp, ndp")
	seed := flag.Uint64("seed", 1, "simulation seed")
	calcScale := flag.Float64("calc-scale", 1.0, "hardware adaptation factor for calc times")
	workers := flag.Int("workers", 1, "worker goroutines for the parallel engine (lgs only; 0 = GOMAXPROCS)")
	flag.Parse()
	if *goalPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	s, err := loadGoal(*goalPath)
	if err != nil {
		fail(err)
	}
	st := s.ComputeStats()
	fmt.Printf("schedule: %d ranks, %d ops (%d sends, %d recvs, %d calcs), %.2f MiB on the wire\n",
		st.Ranks, st.Ops, st.Sends, st.Recvs, st.Calcs, float64(st.SendBytes)/(1<<20))

	var bk interface {
		Name() string
	}
	var runErr error
	var runtime string
	switch *be {
	case "lgs":
		p := backend.AIParams()
		if *params == "hpc" {
			p = backend.HPCParams()
		}
		b := backend.NewLGS(p)
		bk = b
		res, err := sched.RunParallel(*workers, s, b, sched.Options{CalcScale: *calcScale})
		runErr = err
		if err == nil {
			runtime = res.Runtime.String()
		}
	case "pkt":
		tp, err := mkTopo(s.NumRanks(), *hostsPerToR, *oversub)
		if err != nil {
			fail(err)
		}
		b := backend.NewPkt(backend.PktConfig{
			Net:    pktnet.Config{Topo: tp, CC: *ccName, Seed: *seed},
			Params: backend.DefaultNetParams(),
		})
		bk = b
		res, err := sched.Run(engine.New(), s, b, sched.Options{CalcScale: *calcScale})
		runErr = err
		if err == nil {
			runtime = res.Runtime.String()
			ns := b.NetStats()
			fmt.Printf("packet stats: %d data pkts, %d drops, %d trims, %d retransmits\n",
				ns.PktsSent, ns.Drops, ns.Trims, ns.Retransmits)
		}
	case "fluid":
		tp, err := mkTopo(s.NumRanks(), *hostsPerToR, *oversub)
		if err != nil {
			fail(err)
		}
		b := backend.NewFluid(backend.FluidConfig{
			Net:    fluid.Config{Topo: tp, Seed: *seed},
			Params: backend.DefaultNetParams(),
		})
		bk = b
		res, err := sched.Run(engine.New(), s, b, sched.Options{CalcScale: *calcScale})
		runErr = err
		if err == nil {
			runtime = res.Runtime.String()
		}
	default:
		fail(fmt.Errorf("unknown backend %q", *be))
	}
	if runErr != nil {
		fail(runErr)
	}
	fmt.Printf("backend %s: simulated runtime %s\n", bk.Name(), runtime)
}

func mkTopo(ranks, hostsPerToR, oversub int) (*topo.Topology, error) {
	cores := hostsPerToR / oversub
	if cores < 1 {
		cores = 1
	}
	return backend.FatTreeFor(ranks, hostsPerToR, cores, topo.DefaultLinkSpec())
}

func loadGoal(path string) (*goal.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(6)
	if err == nil && string(magic) == "GOALB1" {
		return goal.ReadBinary(br)
	}
	return goal.ParseText(br)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atlahs:", err)
	os.Exit(1)
}
