// Command atlahs runs a workload on a chosen network backend — the
// toolchain's simulation entry point, a thin shell over the sim facade —
// and doubles as the simulation service's server and client.
//
// Usage:
//
//	atlahs -goal sched.bin [flags]            # pre-converted GOAL schedule
//	atlahs -trace run.nsys [flags]            # direct trace replay
//	atlahs -trace run.bin -frontend goal      # explicit frontend
//	atlahs -spec run.json [flags]             # atlahs.spec/v1 wire spec
//	atlahs -serve :8080 [-jobs 2]             # run as a simulation server
//	atlahs -submit URL -spec run.json         # submit to a running server
//	atlahs -submit URL -sweep a.json b.json   # batch-submit specs as one sweep
//
// Flags: [-backend lgs|pkt|fluid] [-params ai|hpc] [-hosts-per-tor 4]
// [-oversub 1] [-cc mprdma] [-seed 1] [-workers 1] [-progress 0] [-json]
// [-cpuprofile FILE] [-memprofile FILE] [-timeline FILE]
//
// -cpuprofile writes a CPU profile of the whole invocation and
// -memprofile a heap profile at exit (after a final GC), both in the
// format `go tool pprof` reads — so profiling a simulation needs no
// patched binary. Profiles are flushed on error exits too.
//
// -timeline records a local run's execution — per-rank op completions
// and, on parallel runs, per-lane conservative windows — and writes it
// as Chrome trace-event JSON, loadable in Perfetto (or chrome://tracing).
// Timestamps are simulated time, so the file is as deterministic as the
// result.
//
// -goal takes a GOAL file, textual or binary (auto-detected). -trace takes
// a raw application trace (nsys report, MPI trace, SPC block-I/O trace,
// Chakra ET, or a GOAL file) and ingests it through the workload-frontend
// registry: the format is sniffed from the content (extension as
// fallback), or named explicitly with -frontend; conversion uses that
// frontend's defaults (use the sim library for tuned conversion). -spec
// takes a marshalled sim.Spec (sim.MarshalSpec, schema atlahs.spec/v1) —
// including multi-job compositions — and is authoritative: workload and
// backend flags may not be combined with it (-workers still overrides).
// -json prints the run's result — runtime, schedule accounting,
// executed-op tallies, per-job node sets, fabric counters — as one JSON
// object on stdout.
//
// -serve exposes the same runs over HTTP through the simulation service
// (see cmd/atlahsd for the full-featured server), and -submit sends a
// spec to such a server, waits, and prints the result exactly like a
// local -json run — identical submissions are answered from the server's
// content-addressed run cache without simulating again. -submit with
// -sweep batch-submits every spec file named as a positional argument as
// one POST /v1/sweeps payload: the server fingerprints all of them,
// collapses duplicates against each other and its cache, and answers with
// the combined view, which is printed per run (or as the raw combined
// JSON with -json).
//
// The lgs backend is topology-oblivious; pkt and fluid build a two-level
// fat tree sized to the schedule. -workers > 1 runs the lgs backend on the
// sharded parallel engine (results bit-identical to serial); pkt and fluid
// share fabric state, so asking them for workers is an error, not a
// silent fallback.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"atlahs/internal/profiling"
	"atlahs/internal/service"
	"atlahs/sim"
)

func main() {
	goalPath := flag.String("goal", "", "GOAL schedule file (text or binary)")
	tracePath := flag.String("trace", "", "raw application trace to replay through a workload frontend")
	frontendName := flag.String("frontend", "", "workload frontend for -trace: "+strings.Join(sim.Frontends(), ", ")+" (default: auto-detect)")
	specPath := flag.String("spec", "", "atlahs.spec/v1 spec file (authoritative; excludes workload/backend flags)")
	be := flag.String("backend", "lgs", "backend: lgs, pkt or fluid")
	params := flag.String("params", "ai", "LogGOPS parameter set: ai or hpc")
	hostsPerToR := flag.Int("hosts-per-tor", 4, "fat-tree hosts per ToR (pkt/fluid)")
	oversub := flag.Int("oversub", 1, "fat-tree ToR:core oversubscription (pkt/fluid)")
	ccName := flag.String("cc", "mprdma", "congestion control (pkt): mprdma, swift, dctcp, ndp")
	seed := flag.Uint64("seed", 1, "simulation seed")
	calcScale := flag.Float64("calc-scale", 1.0, "hardware adaptation factor for calc times")
	workers := flag.Int("workers", 1, "worker goroutines for the parallel engine (lgs only; 0 = GOMAXPROCS)")
	progress := flag.Int64("progress", 0, "print progress every N completed ops (0 = off)")
	jsonOut := flag.Bool("json", false, "print the result as one JSON object on stdout")
	serveAddr := flag.String("serve", "", "run as a simulation server on this address instead of simulating")
	jobs := flag.Int("jobs", 2, "concurrent simulations in -serve mode")
	submitURL := flag.String("submit", "", "submit the spec to a running atlahsd/-serve server at this base URL")
	sweepMode := flag.Bool("sweep", false, "with -submit: batch-submit the spec files given as positional arguments as one sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of this invocation to FILE (go tool pprof format)")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to FILE (go tool pprof format)")
	timelinePath := flag.String("timeline", "", "write the run's execution timeline to FILE as Chrome trace-event JSON (local runs only; open in Perfetto)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	stop, err := profiling.Start("atlahs", *cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	profileStop = stop
	defer profileStop()

	if *serveAddr != "" {
		for _, name := range []string{"goal", "trace", "spec", "submit", "sweep", "json", "frontend", "timeline"} {
			if set[name] {
				fail(fmt.Errorf("-serve runs a server; -%s does not apply", name))
			}
		}
		if err := serve(*serveAddr, *jobs, *workers); err != nil {
			fail(err)
		}
		return
	}

	if *sweepMode {
		// A sweep is a batch of authoritative spec files, so the same flags
		// that conflict with -spec conflict here, plus -spec itself.
		if *submitURL == "" {
			fail(fmt.Errorf("-sweep batch-submits to a server; set -submit URL"))
		}
		for _, name := range []string{"goal", "trace", "frontend", "spec", "backend", "params", "hosts-per-tor", "oversub", "cc", "seed", "calc-scale", "progress", "workers"} {
			if set[name] {
				fail(fmt.Errorf("-sweep takes spec files as arguments; drop -%s (set it inside the spec files)", name))
			}
		}
		if flag.NArg() == 0 {
			fail(fmt.Errorf("-sweep needs at least one spec file argument"))
		}
		if err := submitSweep(*submitURL, flag.Args(), *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected arguments %q (spec files are only positional with -sweep)", flag.Args()))
	}

	var spec sim.Spec
	if *specPath != "" {
		// The spec file is the whole declaration: rebuilding parts of it
		// from flags would silently disagree with what was submitted, so
		// spec-shaping flags conflict instead.
		for _, name := range []string{"goal", "trace", "frontend", "backend", "params", "hosts-per-tor", "oversub", "cc", "seed", "calc-scale", "progress"} {
			if set[name] {
				fail(fmt.Errorf("-spec is authoritative; drop -%s (set it inside the spec file)", name))
			}
		}
		b, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		if spec, err = sim.UnmarshalSpec(b); err != nil {
			fail(err)
		}
		if set["workers"] {
			spec.Workers = cliWorkers(*workers)
		}
	} else {
		if (*goalPath == "") == (*tracePath == "") {
			fmt.Fprintln(os.Stderr, "atlahs: set exactly one of -goal, -trace or -spec")
			flag.Usage()
			os.Exit(2)
		}
		if *frontendName != "" && *tracePath == "" {
			fail(fmt.Errorf("-frontend only applies to -trace"))
		}
		spec = sim.Spec{
			Workload: sim.Workload{
				GoalPath:  *goalPath,
				TracePath: *tracePath,
				Frontend:  *frontendName,
			},
			Backend:   *be,
			CalcScale: *calcScale,
			Seed:      *seed,
		}
		spec.Workers = cliWorkers(*workers)
		// Reject any non-serial worker request on a backend that cannot
		// shard, regardless of how many cores this host happens to have
		// (sim.Run only errors once the resolved count exceeds 1).
		if def, ok := sim.Lookup(*be); ok && !def.Parallel && *workers != 1 {
			fail(fmt.Errorf("backend %q shares fabric state and always runs serially; -workers %d is not available (use -workers 1)", *be, *workers))
		}
		switch *be {
		case "lgs":
			p := sim.AIParams()
			if *params == "hpc" {
				p = sim.HPCParams()
			}
			spec.Config = sim.LGSConfig{Params: p}
		case "pkt":
			spec.Config = sim.PktConfig{
				HostsPerToR: *hostsPerToR,
				Oversub:     *oversub,
				CC:          *ccName,
			}
		case "fluid":
			spec.Config = sim.FluidConfig{
				HostsPerToR: *hostsPerToR,
				Oversub:     *oversub,
			}
		}
		// Unknown backend names fall through with a nil config: sim.Run
		// reports them against the full registry.
	}

	if *submitURL != "" {
		if set["timeline"] {
			// The simulation happens server-side; its recorder does too (see
			// atlahsd -timeline and GET /v1/runs/{id}/trace).
			fail(fmt.Errorf("-timeline records local runs; the server's trace endpoint covers -submit"))
		}
		if err := submit(*submitURL, spec, *jsonOut); err != nil {
			fail(err)
		}
		return
	}

	if !*jsonOut {
		// Console rendering would corrupt the single-object JSON contract,
		// so the streaming observer only runs in text mode.
		spec.Observer = consoleObserver{}
		if *specPath == "" {
			spec.ProgressEvery = *progress
		}
	}

	var tl *sim.Timeline
	if *timelinePath != "" {
		tl = sim.NewTimeline(0)
		spec.Timeline = tl
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	res, err := sim.Run(ctx, spec)
	if err != nil {
		fail(err)
	}
	if tl != nil {
		if err := writeTimeline(*timelinePath, tl); err != nil {
			fail(err)
		}
		if !*jsonOut {
			fmt.Printf("timeline: %d events written to %s\n", tl.Len(), *timelinePath)
		}
	}
	if *jsonOut {
		if err := service.WriteResultJSON(os.Stdout, res); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("backend %s: simulated runtime %s\n", res.Backend, res.Runtime)
}

// writeTimeline persists the recorded timeline as one trace-event JSON
// document.
func writeTimeline(path string, tl *sim.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cliWorkers maps the CLI convention (-workers 0 = all cores) onto the
// library convention (Workers < 0 = GOMAXPROCS, 0 = serial).
func cliWorkers(w int) int {
	if w == 0 {
		return -1
	}
	return w
}

// serve runs the simulation service on addr until interrupted — the
// lightweight flavour of cmd/atlahsd (which adds queue/cache/artifact
// controls).
func serve(addr string, jobs, workers int) error {
	svc, err := service.New(service.Config{Jobs: jobs, Workers: workers})
	if err != nil {
		return err
	}
	return service.ListenAndServe(svc, addr)
}

// submit sends the spec to a running server, waits for the run to finish,
// and renders the outcome: the result JSON object in -json mode (the same
// shape a local -json run prints), or the console summary plus the
// server's cache verdict in text mode.
func submit(baseURL string, spec sim.Spec, jsonOut bool) error {
	wire, err := sim.MarshalSpec(spec)
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/runs?wait=1"
	resp, err := postRetrying(url, wire)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	cacheStatus := resp.Header.Get("Cache-Status")
	if err := serverError(resp, body); err != nil {
		return err
	}
	var run struct {
		ID     string          `json:"id"`
		Status string          `json:"status"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &run); err != nil {
		return fmt.Errorf("unreadable server response: %w", err)
	}
	switch run.Status {
	case "failed":
		return fmt.Errorf("run %s failed: %s", run.ID, run.Error)
	case "done":
	default:
		return fmt.Errorf("run %s still %s; ask the server again at /v1/runs/%s", run.ID, run.Status, run.ID)
	}
	if jsonOut {
		_, err := fmt.Fprintf(os.Stdout, "%s\n", run.Result)
		return err
	}
	var res struct {
		Backend string `json:"backend"`
		Runtime string `json:"runtime"`
	}
	if err := json.Unmarshal(run.Result, &res); err != nil {
		return fmt.Errorf("unreadable result payload: %w", err)
	}
	fmt.Printf("run %s (cache %s)\nbackend %s: simulated runtime %s\n", run.ID, cacheStatus, res.Backend, res.Runtime)
	return nil
}

// submitAttempts bounds postRetrying: the first POST plus up to three
// retries. A queue that is still full after three honest Retry-After
// waits is congested, not momentarily busy — give the caller the 503.
const submitAttempts = 4

// maxRetryAfter caps how long one Retry-After hint can make the client
// sleep, so a misbehaving server cannot park it for an hour.
const maxRetryAfter = 30 * time.Second

// postRetrying POSTs body to url, honouring the service's backpressure
// contract: a 503 carrying a valid integer Retry-After header (the
// full-queue / closing-server response) is retried after that many
// seconds, up to submitAttempts total attempts. Any other response — and
// a 503 without a usable hint — is returned as-is for serverError to
// render; transport errors are returned immediately.
func postRetrying(url string, body []byte) (*http.Response, error) {
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt == submitAttempts {
			return resp, nil
		}
		seconds, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || seconds < 0 {
			return resp, nil
		}
		resp.Body.Close()
		wait := min(time.Duration(seconds)*time.Second, maxRetryAfter)
		fmt.Fprintf(os.Stderr, "server busy (503), retrying in %s (attempt %d of %d)\n",
			wait, attempt+1, submitAttempts)
		time.Sleep(wait)
	}
}

// serverError maps a non-2xx service response onto one client-side error
// carrying both the HTTP status and the server's JSON error message (the
// errorResponse body every non-2xx API response carries), falling back to
// the raw body when the message is missing. A Retry-After header — the
// 503 contract for a full queue or a closing server — is surfaced as a
// hint.
func serverError(resp *http.Response, body []byte) error {
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		return nil
	}
	retry := ""
	if after := resp.Header.Get("Retry-After"); after != "" {
		retry = fmt.Sprintf(" (retry after %ss)", after)
	}
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("server returned %s: %s%s", resp.Status, er.Error, retry)
	}
	return fmt.Errorf("server returned %s: %s%s", resp.Status, bytes.TrimSpace(body), retry)
}

// submitSweep batch-submits the named spec files as one POST /v1/sweeps
// payload and renders the combined view: the server's raw JSON in -json
// mode, or one line per unique run plus a summary in text mode.
func submitSweep(baseURL string, files []string, jsonOut bool) error {
	var payload struct {
		Schema string            `json:"schema"`
		Specs  []json.RawMessage `json:"specs"`
	}
	payload.Schema = "atlahs.sweep/v1"
	for _, file := range files {
		b, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		// Round-trip through the codec so a broken spec file fails here,
		// with its file name, instead of as an opaque index server-side.
		spec, err := sim.UnmarshalSpec(b)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		wire, err := sim.MarshalSpec(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		payload.Specs = append(payload.Specs, wire)
	}
	wire, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/sweeps?wait=1"
	resp, err := postRetrying(url, wire)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := serverError(resp, body); err != nil {
		return err
	}
	if jsonOut {
		_, err := fmt.Fprintf(os.Stdout, "%s\n", bytes.TrimSpace(body))
		return err
	}
	var sweep struct {
		ID     string `json:"id"`
		Specs  int    `json:"specs"`
		Total  int    `json:"total"`
		Done   int    `json:"done"`
		Failed int    `json:"failed"`
		Cached int    `json:"cached"`
		Runs   []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
			Result struct {
				Backend string `json:"backend"`
				Runtime string `json:"runtime"`
			} `json:"result"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(body, &sweep); err != nil {
		return fmt.Errorf("unreadable server response: %w", err)
	}
	fmt.Printf("sweep %s: %d specs -> %d runs (%d cached, %d done, %d failed)\n",
		sweep.ID, sweep.Specs, sweep.Total, sweep.Cached, sweep.Done, sweep.Failed)
	for _, run := range sweep.Runs {
		verdict := "miss"
		if run.Cached {
			verdict = "hit"
		}
		switch run.Status {
		case "failed":
			fmt.Printf("  run %s (cache %s) failed: %s\n", run.ID, verdict, run.Error)
		case "done":
			fmt.Printf("  run %s (cache %s) backend %s: simulated runtime %s\n", run.ID, verdict, run.Result.Backend, run.Result.Runtime)
		default:
			fmt.Printf("  run %s (cache %s) still %s\n", run.ID, verdict, run.Status)
		}
	}
	if sweep.Failed > 0 {
		return fmt.Errorf("sweep %s: %d of %d runs failed", sweep.ID, sweep.Failed, sweep.Total)
	}
	return nil
}

// consoleObserver renders run callbacks in the CLI's line format.
type consoleObserver struct{ sim.NopObserver }

func (consoleObserver) RunStarted(info sim.RunInfo) {
	st := info.Stats
	fmt.Printf("schedule: %d ranks, %d ops (%d sends, %d recvs, %d calcs), %.2f MiB on the wire\n",
		st.Ranks, st.Ops, st.Sends, st.Recvs, st.Calcs, float64(st.SendBytes)/(1<<20))
	if info.Parallel {
		fmt.Printf("engine: parallel, %d workers\n", info.Workers)
	}
}

func (consoleObserver) Progress(ev sim.ProgressEvent) {
	fmt.Printf("progress: %d/%d ops, sim time %v\n", ev.Done, ev.Total, ev.At)
}

func (consoleObserver) NetStats(ns sim.NetStats) {
	fmt.Printf("packet stats: %d data pkts, %d drops, %d trims, %d retransmits\n",
		ns.PktsSent, ns.Drops, ns.Trims, ns.Retransmits)
}

// profileStop flushes any active profiles; fail() and the end of main
// both run it (it is idempotent, see internal/profiling) so profiles
// survive error exits, which bypass deferred calls via os.Exit.
var profileStop = func() {}

func fail(err error) {
	profileStop()
	fmt.Fprintln(os.Stderr, "atlahs:", err)
	os.Exit(1)
}
