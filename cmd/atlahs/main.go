// Command atlahs runs a workload on a chosen network backend — the
// toolchain's simulation entry point, a thin shell over the sim facade.
//
// Usage:
//
//	atlahs -goal sched.bin [flags]            # pre-converted GOAL schedule
//	atlahs -trace run.nsys [flags]            # direct trace replay
//	atlahs -trace run.bin -frontend goal      # explicit frontend
//
// Flags: [-backend lgs|pkt|fluid] [-params ai|hpc] [-hosts-per-tor 4]
// [-oversub 1] [-cc mprdma] [-seed 1] [-workers 1] [-progress 0] [-json]
//
// -goal takes a GOAL file, textual or binary (auto-detected). -trace takes
// a raw application trace (nsys report, MPI trace, SPC block-I/O trace,
// Chakra ET, or a GOAL file) and ingests it through the workload-frontend
// registry: the format is sniffed from the content (extension as
// fallback), or named explicitly with -frontend; conversion uses that
// frontend's defaults (use the sim library for tuned conversion). -json
// prints the run's result — runtime, schedule accounting, executed-op
// tallies, fabric counters — as one JSON object on stdout.
//
// The lgs backend is topology-oblivious; pkt and fluid build a two-level
// fat tree sized to the schedule. -workers > 1 runs the lgs backend on the
// sharded parallel engine (results bit-identical to serial); pkt and fluid
// share fabric state, so asking them for workers is an error, not a
// silent fallback.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"atlahs/sim"
)

func main() {
	goalPath := flag.String("goal", "", "GOAL schedule file (text or binary)")
	tracePath := flag.String("trace", "", "raw application trace to replay through a workload frontend")
	frontendName := flag.String("frontend", "", "workload frontend for -trace: "+strings.Join(sim.Frontends(), ", ")+" (default: auto-detect)")
	be := flag.String("backend", "lgs", "backend: lgs, pkt or fluid")
	params := flag.String("params", "ai", "LogGOPS parameter set: ai or hpc")
	hostsPerToR := flag.Int("hosts-per-tor", 4, "fat-tree hosts per ToR (pkt/fluid)")
	oversub := flag.Int("oversub", 1, "fat-tree ToR:core oversubscription (pkt/fluid)")
	ccName := flag.String("cc", "mprdma", "congestion control (pkt): mprdma, swift, dctcp, ndp")
	seed := flag.Uint64("seed", 1, "simulation seed")
	calcScale := flag.Float64("calc-scale", 1.0, "hardware adaptation factor for calc times")
	workers := flag.Int("workers", 1, "worker goroutines for the parallel engine (lgs only; 0 = GOMAXPROCS)")
	progress := flag.Int64("progress", 0, "print progress every N completed ops (0 = off)")
	jsonOut := flag.Bool("json", false, "print the result as one JSON object on stdout")
	flag.Parse()
	if (*goalPath == "") == (*tracePath == "") {
		fmt.Fprintln(os.Stderr, "atlahs: set exactly one of -goal or -trace")
		flag.Usage()
		os.Exit(2)
	}
	if *frontendName != "" && *tracePath == "" {
		fail(fmt.Errorf("-frontend only applies to -trace"))
	}

	spec := sim.Spec{
		GoalPath:  *goalPath,
		TracePath: *tracePath,
		Frontend:  *frontendName,
		Backend:   *be,
		CalcScale: *calcScale,
		Seed:      *seed,
	}
	if !*jsonOut {
		// Console rendering would corrupt the single-object JSON contract,
		// so the streaming observer only runs in text mode.
		spec.Observer = consoleObserver{}
		spec.ProgressEvery = *progress
	}
	// The CLI's -workers 0 means "all cores"; the library's Workers 0 means
	// serial.
	if *workers == 0 {
		spec.Workers = -1
	} else {
		spec.Workers = *workers
	}
	// Reject any non-serial worker request on a backend that cannot shard,
	// regardless of how many cores this host happens to have (sim.Run only
	// errors once the resolved count exceeds 1).
	if def, ok := sim.Lookup(*be); ok && !def.Parallel && *workers != 1 {
		fail(fmt.Errorf("backend %q shares fabric state and always runs serially; -workers %d is not available (use -workers 1)", *be, *workers))
	}
	switch *be {
	case "lgs":
		p := sim.AIParams()
		if *params == "hpc" {
			p = sim.HPCParams()
		}
		spec.Config = sim.LGSConfig{Params: p}
	case "pkt":
		spec.Config = sim.PktConfig{
			HostsPerToR: *hostsPerToR,
			Oversub:     *oversub,
			CC:          *ccName,
		}
	case "fluid":
		spec.Config = sim.FluidConfig{
			HostsPerToR: *hostsPerToR,
			Oversub:     *oversub,
		}
	}
	// Unknown backend names fall through with a nil config: sim.Run reports
	// them against the full registry.

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	res, err := sim.Run(ctx, spec)
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, res); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("backend %s: simulated runtime %s\n", res.Backend, res.Runtime)
}

// jsonResult is the -json rendering of a sim.Result: stable lower-case
// keys, the simulated runtime both human-readable and in picoseconds.
type jsonResult struct {
	Backend   string    `json:"backend"`
	Runtime   string    `json:"runtime"`
	RuntimePs int64     `json:"runtime_ps"`
	Ranks     int       `json:"ranks"`
	Workers   int       `json:"workers"`
	Parallel  bool      `json:"parallel"`
	Ops       int64     `json:"ops"`
	Events    uint64    `json:"events"`
	Sched     jsonSched `json:"sched"`
	Done      jsonTally `json:"done"`
	Net       *jsonNet  `json:"net,omitempty"`
}

type jsonSched struct {
	Ops       int64 `json:"ops"`
	Sends     int64 `json:"sends"`
	Recvs     int64 `json:"recvs"`
	Calcs     int64 `json:"calcs"`
	SendBytes int64 `json:"send_bytes"`
	DepEdges  int64 `json:"dep_edges"`
}

type jsonTally struct {
	Calcs int64 `json:"calcs"`
	Sends int64 `json:"sends"`
	Recvs int64 `json:"recvs"`
}

type jsonNet struct {
	PktsSent    uint64 `json:"pkts_sent"`
	Drops       uint64 `json:"drops"`
	Trims       uint64 `json:"trims"`
	Retransmits uint64 `json:"retransmits"`
}

func writeJSON(w *os.File, res *sim.Result) error {
	out := jsonResult{
		Backend:   res.Backend,
		Runtime:   res.Runtime.String(),
		RuntimePs: int64(res.Runtime),
		Ranks:     res.Ranks,
		Workers:   res.Workers,
		Parallel:  res.Parallel,
		Ops:       res.Ops,
		Events:    res.Events,
		Sched: jsonSched{
			Ops:       res.Sched.Ops,
			Sends:     res.Sched.Sends,
			Recvs:     res.Sched.Recvs,
			Calcs:     res.Sched.Calcs,
			SendBytes: res.Sched.SendBytes,
			DepEdges:  res.Sched.DepEdges,
		},
		Done: jsonTally{Calcs: res.Done.Calcs, Sends: res.Done.Sends, Recvs: res.Done.Recvs},
	}
	if res.Net != nil {
		out.Net = &jsonNet{
			PktsSent:    res.Net.PktsSent,
			Drops:       res.Net.Drops,
			Trims:       res.Net.Trims,
			Retransmits: res.Net.Retransmits,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// consoleObserver renders run callbacks in the CLI's line format.
type consoleObserver struct{ sim.NopObserver }

func (consoleObserver) RunStarted(info sim.RunInfo) {
	st := info.Stats
	fmt.Printf("schedule: %d ranks, %d ops (%d sends, %d recvs, %d calcs), %.2f MiB on the wire\n",
		st.Ranks, st.Ops, st.Sends, st.Recvs, st.Calcs, float64(st.SendBytes)/(1<<20))
	if info.Parallel {
		fmt.Printf("engine: parallel, %d workers\n", info.Workers)
	}
}

func (consoleObserver) Progress(ev sim.ProgressEvent) {
	fmt.Printf("progress: %d/%d ops, sim time %v\n", ev.Done, ev.Total, ev.At)
}

func (consoleObserver) NetStats(ns sim.NetStats) {
	fmt.Printf("packet stats: %d data pkts, %d drops, %d trims, %d retransmits\n",
		ns.PktsSent, ns.Drops, ns.Trims, ns.Retransmits)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atlahs:", err)
	os.Exit(1)
}
