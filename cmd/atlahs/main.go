// Command atlahs runs a GOAL schedule on a chosen network backend — the
// toolchain's simulation entry point, a thin shell over the sim facade.
//
// Usage:
//
//	atlahs -goal sched.bin [-backend lgs|pkt|fluid] [-params ai|hpc]
//	       [-hosts-per-tor 4] [-oversub 1] [-cc mprdma] [-seed 1]
//	       [-workers 1] [-progress 0]
//
// The GOAL file may be textual or binary (auto-detected). The lgs backend
// is topology-oblivious; pkt and fluid build a two-level fat tree sized to
// the schedule. -workers > 1 runs the lgs backend on the sharded parallel
// engine (results bit-identical to serial); pkt and fluid share fabric
// state, so asking them for workers is an error, not a silent fallback.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"atlahs/sim"
)

func main() {
	goalPath := flag.String("goal", "", "GOAL schedule file (text or binary)")
	be := flag.String("backend", "lgs", "backend: lgs, pkt or fluid")
	params := flag.String("params", "ai", "LogGOPS parameter set: ai or hpc")
	hostsPerToR := flag.Int("hosts-per-tor", 4, "fat-tree hosts per ToR (pkt/fluid)")
	oversub := flag.Int("oversub", 1, "fat-tree ToR:core oversubscription (pkt/fluid)")
	ccName := flag.String("cc", "mprdma", "congestion control (pkt): mprdma, swift, dctcp, ndp")
	seed := flag.Uint64("seed", 1, "simulation seed")
	calcScale := flag.Float64("calc-scale", 1.0, "hardware adaptation factor for calc times")
	workers := flag.Int("workers", 1, "worker goroutines for the parallel engine (lgs only; 0 = GOMAXPROCS)")
	progress := flag.Int64("progress", 0, "print progress every N completed ops (0 = off)")
	flag.Parse()
	if *goalPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	spec := sim.Spec{
		GoalPath:      *goalPath,
		Backend:       *be,
		CalcScale:     *calcScale,
		Seed:          *seed,
		Observer:      consoleObserver{},
		ProgressEvery: *progress,
	}
	// The CLI's -workers 0 means "all cores"; the library's Workers 0 means
	// serial.
	if *workers == 0 {
		spec.Workers = -1
	} else {
		spec.Workers = *workers
	}
	// Reject any non-serial worker request on a backend that cannot shard,
	// regardless of how many cores this host happens to have (sim.Run only
	// errors once the resolved count exceeds 1).
	if def, ok := sim.Lookup(*be); ok && !def.Parallel && *workers != 1 {
		fail(fmt.Errorf("backend %q shares fabric state and always runs serially; -workers %d is not available (use -workers 1)", *be, *workers))
	}
	switch *be {
	case "lgs":
		p := sim.AIParams()
		if *params == "hpc" {
			p = sim.HPCParams()
		}
		spec.Config = sim.LGSConfig{Params: p}
	case "pkt":
		spec.Config = sim.PktConfig{
			HostsPerToR: *hostsPerToR,
			Oversub:     *oversub,
			CC:          *ccName,
		}
	case "fluid":
		spec.Config = sim.FluidConfig{
			HostsPerToR: *hostsPerToR,
			Oversub:     *oversub,
		}
	}
	// Unknown backend names fall through with a nil config: sim.Run reports
	// them against the full registry.

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	res, err := sim.Run(ctx, spec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("backend %s: simulated runtime %s\n", res.Backend, res.Runtime)
}

// consoleObserver renders run callbacks in the CLI's line format.
type consoleObserver struct{ sim.NopObserver }

func (consoleObserver) RunStarted(info sim.RunInfo) {
	st := info.Stats
	fmt.Printf("schedule: %d ranks, %d ops (%d sends, %d recvs, %d calcs), %.2f MiB on the wire\n",
		st.Ranks, st.Ops, st.Sends, st.Recvs, st.Calcs, float64(st.SendBytes)/(1<<20))
	if info.Parallel {
		fmt.Printf("engine: parallel, %d workers\n", info.Workers)
	}
}

func (consoleObserver) Progress(ev sim.ProgressEvent) {
	fmt.Printf("progress: %d/%d ops, sim time %v\n", ev.Done, ev.Total, ev.At)
}

func (consoleObserver) NetStats(ns sim.NetStats) {
	fmt.Printf("packet stats: %d data pkts, %d drops, %d trims, %d retransmits\n",
		ns.PktsSent, ns.Drops, ns.Trims, ns.Retransmits)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atlahs:", err)
	os.Exit(1)
}
