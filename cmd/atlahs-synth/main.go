// Command atlahs-synth mines statistical workload models from traces and
// generates synthetic workloads from them at arbitrary scale — the
// toolchain's workload-synthesis entry point over the sim facade.
//
// Usage:
//
//	atlahs-synth mine -in run.nsys [-frontend name] [-comment text] [-out run.model.json]
//	atlahs-synth gen -model run.model.json -ranks 1024 [-seed 1] [-format text|binary] [-out big.goal]
//
// mine ingests a raw application trace (or a GOAL file) through the
// workload-frontend registry — the format is sniffed from the content, or
// named with -frontend — and writes the mined atlahs.model/v1 JSON
// document: message-size and message-count distributions, compute/
// communication structure, traffic classes with destination-offset
// histograms, and the dependency-depth profile of the source schedule.
//
// gen samples a mined model back into a GOAL schedule at the requested
// rank count (default: the model's source rank count). Generation is
// deterministic: the same (model, ranks, seed) always produces a
// bit-identical schedule, so generated workloads are content-addressable
// like any other. The schedule is written as GOAL text by default, or the
// canonical binary encoding with -format binary.
//
// The same model can also be run directly, without materialising a GOAL
// file, by setting the model workload source on a sim.Spec
// (Model/ModelPath; see the sim package docs).
//
// Both subcommands take -cpuprofile FILE and -memprofile FILE, writing
// profiles in the format `go tool pprof` reads — mining a large trace or
// generating at high rank counts can be profiled without a patched build.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atlahs/internal/profiling"
	"atlahs/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "mine":
		err = mine(os.Args[2:])
	case "gen":
		err = gen(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "atlahs-synth: unknown command %q (want mine or gen)\n", os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atlahs-synth:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  atlahs-synth mine -in trace [-frontend name] [-comment text] [-out model.json]
  atlahs-synth gen -model model.json [-ranks N] [-seed S] [-format text|binary] [-out file]
`)
}

// mine converts the input trace through the frontend registry, mines the
// model, and writes the atlahs.model/v1 document.
func mine(args []string) error {
	fs := newFlagSet("mine")
	in := fs.String("in", "", "application trace or GOAL file to mine (required)")
	frontend := fs.String("frontend", "", "workload frontend (default: auto-detect)")
	comment := fs.String("comment", "", "provenance comment stored in the model")
	out := fs.String("out", "", "output model file (default: stdout)")
	cpuprofile, memprofile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("mine needs -in trace")
	}
	stop, err := profiling.Start("atlahs-synth", *cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stop()
	sched, used, err := sim.ConvertTraceFileVia(*in, *frontend, nil)
	if err != nil {
		return err
	}
	cmt := *comment
	if cmt == "" {
		cmt = fmt.Sprintf("mined from %s (frontend %s)", *in, used)
	}
	model, err := sim.MineModel(sched, cmt)
	if err != nil {
		return err
	}
	return writeTo(*out, func(w io.Writer) error { return sim.EncodeModel(w, model) })
}

// gen samples the model into a schedule and writes it as GOAL.
func gen(args []string) error {
	fs := newFlagSet("gen")
	modelPath := fs.String("model", "", "atlahs.model/v1 model file (required)")
	ranks := fs.Int("ranks", 0, "rank count to generate (default: the model's source rank count)")
	seed := fs.Uint64("seed", 1, "generation seed")
	format := fs.String("format", "text", "output encoding: text or binary")
	out := fs.String("out", "", "output GOAL file (default: stdout)")
	cpuprofile, memprofile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("gen needs -model file")
	}
	stop, err := profiling.Start("atlahs-synth", *cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stop()
	var write func(io.Writer, *sim.Schedule) error
	switch *format {
	case "text":
		write = sim.WriteGOALText
	case "binary":
		write = sim.WriteGOALBinary
	default:
		return fmt.Errorf("unknown -format %q (want text or binary)", *format)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := sim.DecodeModel(f)
	f.Close()
	if err != nil {
		return err
	}
	sched, err := sim.GenerateFromModel(model, *ranks, *seed)
	if err != nil {
		return err
	}
	return writeTo(*out, func(w io.Writer) error { return write(w, sched) })
}

// newFlagSet builds a subcommand flag set that exits with usage on error.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("atlahs-synth "+name, flag.ExitOnError)
}

// profileFlags declares the shared profiling flags on a subcommand.
func profileFlags(fs *flag.FlagSet) (cpu, mem *string) {
	return fs.String("cpuprofile", "", "write a CPU profile of this invocation to FILE (go tool pprof format)"),
		fs.String("memprofile", "", "write a heap profile at exit to FILE (go tool pprof format)")
}

// writeTo streams the payload to the named file, or stdout when empty. A
// partial file left by a failed write is removed so callers never see a
// truncated model or schedule.
func writeTo(path string, emit func(io.Writer) error) error {
	if path == "" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}
