// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-mode quick|full] [-workers N]
//	            [-format text|json|csv] [-out DIR]
//	            [fig1c table1 fig8 fig9 fig10 fig11 fig12 fig13 | all]
//
// The default renders each experiment's text report to stdout, exactly as
// it always has. -format json or -format csv exports the structured
// result sweeps instead (the atlahs.results/v1 schema, see the results
// package), and -out DIR writes one artifact per experiment
// (DIR/<name>.txt|.json|.csv) instead of streaming to stdout — so every
// paper figure regenerates as a machine-readable artifact without parsing
// text. Any failure — a broken experiment, an invalid flag, or an
// unwritable output — exits non-zero.
//
// Independent experiments — and independent configuration points inside
// each experiment — fan out across -workers goroutines (0 = GOMAXPROCS).
// Simulated results are identical for any worker count; the wall-clock
// columns some figures print measure this host and are only meaningful at
// -workers 1 (the default).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"atlahs/internal/experiments"
	"atlahs/results"
)

func main() {
	mode := flag.String("mode", "full", "experiment sizing: quick or full")
	workers := flag.Int("workers", 1, "concurrent experiment/sweep goroutines (0 = GOMAXPROCS); >1 distorts the printed wall-clock columns")
	format := flag.String("format", "text", "output format: text, json or csv")
	out := flag.String("out", "", "write one artifact per experiment into this directory instead of stdout")
	flag.Parse()
	m := experiments.Full
	switch *mode {
	case "full":
	case "quick":
		m = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want quick or full)\n", *mode)
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}
	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = nil
	}
	known := map[string]bool{}
	for _, n := range experiments.Names() {
		known[n] = true
	}
	seen := map[string]bool{}
	deduped := names[:0]
	for _, n := range names {
		if !known[n] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", n)
			os.Exit(2)
		}
		// Drop repeats: they would recompute the experiment and, with
		// -out, overwrite its artifact with an identical one.
		if !seen[n] {
			seen[n] = true
			deduped = append(deduped, n)
		}
	}
	names = deduped
	if err := run(m, *workers, *format, *out, names); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run regenerates the requested experiments in the requested shape. Every
// error path returns — including output-writer failures, which the
// text pipeline surfaces through RunAll — so main can turn it into a
// non-zero exit code.
func run(mode experiments.Mode, workers int, format, out string, names []string) error {
	if out == "" && format == "text" {
		// The classic path: stream each report to stdout as it finishes.
		return experiments.RunAll(os.Stdout, mode, workers, names)
	}

	if len(names) == 0 {
		names = experiments.Names()
	}
	reps, err := experiments.Reports(mode, workers, names)
	if err != nil {
		return err
	}

	if out == "" {
		// Structured formats to stdout: JSON as one array, CSV as
		// blank-line-separated blocks.
		switch format {
		case "json":
			sweeps := make([]*results.Sweep, len(reps))
			for i, rep := range reps {
				sweeps[i] = rep.Sweep()
			}
			return results.EncodeJSONList(os.Stdout, sweeps)
		case "csv":
			for i, rep := range reps {
				if i > 0 {
					if _, err := fmt.Fprintln(os.Stdout); err != nil {
						return err
					}
				}
				if err := results.EncodeCSV(os.Stdout, rep.Sweep()); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for i, rep := range reps {
		path := filepath.Join(out, names[i]+"."+ext(format))
		if err := writeArtifact(path, format, rep); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return nil
}

// ext maps a format to its artifact file extension.
func ext(format string) string {
	if format == "text" {
		return "txt"
	}
	return format
}

// writeArtifact renders one report into path in the requested format.
func writeArtifact(path, format string, rep experiments.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch format {
	case "text":
		werr = experiments.RenderTo(f, rep)
	case "json":
		werr = results.EncodeJSON(f, rep.Sweep())
	case "csv":
		werr = results.EncodeCSV(f, rep.Sweep())
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
