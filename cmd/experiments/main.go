// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-mode quick|full] [-workers N]
//	            [fig1c table1 fig8 fig9 fig10 fig11 fig12 fig13 | all]
//
// Each experiment prints the corresponding rows/series; EXPERIMENTS.md
// records the paper-vs-reproduction comparison. Independent experiments —
// and independent configuration points inside each experiment — fan out
// across -workers goroutines (0 = GOMAXPROCS). Simulated results are
// identical for any worker count; the wall-clock columns some figures
// print measure this host and are only meaningful at -workers 1 (the
// default).
package main

import (
	"flag"
	"fmt"
	"os"

	"atlahs/internal/experiments"
)

func main() {
	mode := flag.String("mode", "full", "experiment sizing: quick or full")
	workers := flag.Int("workers", 1, "concurrent experiment/sweep goroutines (0 = GOMAXPROCS); >1 distorts the printed wall-clock columns")
	flag.Parse()
	m := experiments.Full
	switch *mode {
	case "full":
	case "quick":
		m = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want quick or full)\n", *mode)
		os.Exit(2)
	}
	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = nil
	}
	known := map[string]bool{}
	for _, n := range experiments.Names() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", n)
			os.Exit(2)
		}
	}
	if err := experiments.RunAll(os.Stdout, m, *workers, names); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
