// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-mode quick|full] [fig1c table1 fig8 fig9 fig10 fig11 fig12 fig13 | all]
//
// Each experiment prints the corresponding rows/series; EXPERIMENTS.md
// records the paper-vs-reproduction comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atlahs/internal/experiments"
)

func main() {
	mode := flag.String("mode", "full", "experiment sizing: quick or full")
	flag.Parse()
	m := experiments.Full
	switch *mode {
	case "full":
	case "quick":
		m = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want quick or full)\n", *mode)
		os.Exit(2)
	}
	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = []string{"fig1c", "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
	}
	type runner func(io.Writer, experiments.Mode) error
	run := map[string]runner{
		"fig1c":  func(w io.Writer, m experiments.Mode) error { _, err := experiments.Fig1C(w, m); return err },
		"table1": func(w io.Writer, m experiments.Mode) error { _, err := experiments.Table1(w, m); return err },
		"fig8":   func(w io.Writer, m experiments.Mode) error { _, err := experiments.Fig8(w, m); return err },
		"fig9":   func(w io.Writer, m experiments.Mode) error { _, err := experiments.Fig9(w, m); return err },
		"fig10":  func(w io.Writer, m experiments.Mode) error { _, err := experiments.Fig10(w, m); return err },
		"fig11":  func(w io.Writer, m experiments.Mode) error { _, err := experiments.Fig11(w, m); return err },
		"fig12":  func(w io.Writer, m experiments.Mode) error { _, err := experiments.Fig12(w, m); return err },
		"fig13":  func(w io.Writer, m experiments.Mode) error { _, err := experiments.Fig13(w, m); return err },
	}
	for _, name := range names {
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err := fn(os.Stdout, m); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
}
