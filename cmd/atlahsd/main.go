// Command atlahsd is the ATLAHS simulation server: a resident service
// that accepts atlahs.spec/v1 run specs over HTTP, executes them on a
// bounded worker pool, and answers identical re-submissions from a
// content-addressed run cache without simulating again.
//
// Usage:
//
//	atlahsd [-addr :8080] [-jobs 2] [-workers 0] [-queue 64] [-cache 256]
//	        [-artifacts DIR] [-pprof ADDR] [-timeline]
//	        [-log-format text|json]
//
// API (see internal/service):
//
//	POST /v1/runs                submit a spec (?wait=1 blocks until done)
//	GET  /v1/runs/{id}           status / result (Cache-Status: hit|miss)
//	GET  /v1/runs/{id}/artifact  the run's atlahs.results/v1 sweep JSON
//	GET  /v1/runs/{id}/events    live run events as SSE
//	POST /v1/sweeps              batch-submit N specs as one sweep
//	GET  /v1/sweeps/{id}         combined status of a batch
//	GET  /v1/sweeps/{id}/artifact combined per-run artifact view
//	GET  /v1/history             per-metric trajectories over completed
//	                             runs (atlahs.history/v1; ?format=html)
//	GET  /v1/analyze/diff        diff two runs' artifacts, gated for
//	                             regressions (?a=RUN&b=RUN[&keys=cols]
//	                             [&threshold=F][&format=html])
//	GET  /v1/runs/{id}/metrics   the run's atlahs.metrics/v1 engine
//	                             counters, once done
//	GET  /v1/runs/{id}/trace     the run's Perfetto timeline (-timeline
//	                             runs only)
//	GET  /metrics                service metrics, Prometheus text
//	                             (?format=json for atlahs.metrics/v1)
//	GET  /v1/healthz             readiness probe (queue depth, executor
//	                             occupancy, store writability, uptime)
//
// -jobs bounds how many simulations run concurrently and -workers is the
// total engine-worker budget they share (0 = all cores); -queue bounds
// the submission backlog, past which submissions fail fast with 503 and
// a Retry-After header. Admission is fair-share: each submitter class
// (X-Submitter header, or one per batch sweep) drains round-robin, FIFO
// within a class, so a giant sweep cannot starve interactive runs.
// With -artifacts every completed run's artifact is also persisted to
// DIR/<run id>.json, the layout internal/ci/validateresults checks, plus
// a metadata sidecar under DIR/meta/ — and the content-addressed run
// cache becomes durable: on boot the run index is rebuilt from the
// stored artifacts, so identical re-submissions keep answering
// `Cache-Status: hit` across restarts without re-simulating (corrupt or
// partial artifacts are skipped with a logged warning).
// SIGINT/SIGTERM shut the server down gracefully.
//
// -pprof ADDR (off by default) serves net/http/pprof on a second,
// separate listener — profile a live server with e.g.
// `go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30`
// without exposing the profiling endpoints on the API address.
//
// -timeline records every executed run's execution timeline (Chrome
// trace-event JSON; simulated-time timestamps) and serves it at
// GET /v1/runs/{id}/trace; with -artifacts the traces also persist under
// DIR/traces/. Off by default: recording touches every op completion.
//
// Operational logs are structured (log/slog) with run id, fingerprint,
// admission class and cache-status attributes on every run lifecycle
// line; -log-format picks the handler, "text" (the default) or "json"
// for log collectors.
//
// Submit a spec from the shell:
//
//	echo '{"schema":"atlahs.spec/v1","synthetic":{"pattern":"alltoall",
//	  "ranks":16,"bytes":65536},"backend":"lgs","workers":-1}' |
//	  curl -s --data-binary @- localhost:8080/v1/runs?wait=1
//
// or use the bundled client: atlahs -submit http://localhost:8080 -spec f.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, served only on -pprof
	"os"

	"atlahs/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 2, "concurrent simulations")
	workers := flag.Int("workers", 0, "total engine-worker budget shared across jobs (0 = all cores)")
	queue := flag.Int("queue", 64, "submission backlog bound")
	cache := flag.Int("cache", 256, "completed runs kept addressable")
	artifacts := flag.String("artifacts", "", "directory to persist per-run result artifacts (optional)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; off when empty)")
	timeline := flag.Bool("timeline", false, "record every run's execution timeline and serve it at GET /v1/runs/{id}/trace")
	logFormat := flag.String("log-format", "text", "structured log handler: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fail(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	if *pprofAddr != "" {
		// The API listener uses its own mux (service.ListenAndServe), so
		// the pprof handlers on the DefaultServeMux are reachable only
		// through this dedicated listener.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "atlahsd: pprof listener:", err)
			}
		}()
	}

	svc, err := service.New(service.Config{
		Queue:       *queue,
		Jobs:        *jobs,
		Workers:     *workers,
		Cache:       *cache,
		ArtifactDir: *artifacts,
		Timeline:    *timeline,
		Logger:      logger,
	})
	if err != nil {
		fail(err)
	}
	if err := service.ListenAndServe(svc, *addr); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atlahsd:", err)
	os.Exit(1)
}
