// Command tracegen generates synthetic application traces — stand-ins for
// the instrumented runs of real systems (see DESIGN.md's substitution
// table). The emitted artifacts are raw traces in the formats the workload
// frontends ingest, so they can be replayed directly: `atlahs -trace
// trace.nsys` (or through sim.Spec{TracePath: ...}).
//
// Usage:
//
//	tracegen -kind llm -model llama7b -tp 1 -pp 1 -dp 8 -batch 16 -out trace.nsys
//	tracegen -kind hpc -app lulesh -ranks 64 -steps 10 -out trace.mpi
//	tracegen -kind storage -ops 5000 -out trace.spc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/internal/workload/oltp"
)

func main() {
	kind := flag.String("kind", "", "workload kind: llm, hpc or storage")
	out := flag.String("out", "", "output file")
	seed := flag.Uint64("seed", 1, "generator seed")
	// llm flags
	model := flag.String("model", "llama7b", "llm model: llama7b, llama70b, mistral8x7b, moe8x13b, moe8x70b, dlrm")
	tp := flag.Int("tp", 1, "tensor parallelism")
	pp := flag.Int("pp", 1, "pipeline parallelism")
	dp := flag.Int("dp", 8, "data parallelism")
	ep := flag.Int("ep", 1, "expert parallelism")
	batch := flag.Int("batch", 16, "global batch size")
	scale := flag.Float64("scale", 1e-3, "byte/compute scale factor")
	// hpc flags
	app := flag.String("app", "lulesh", "hpc app: hpcg, lulesh, lammps, icon, openmx, cloverleaf")
	ranks := flag.Int("ranks", 64, "MPI ranks")
	steps := flag.Int("steps", 10, "timesteps")
	// storage flags
	ops := flag.Int("ops", 5000, "storage operations")
	flag.Parse()
	if *kind == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var write func(io.Writer) error
	switch *kind {
	case "llm":
		models := map[string]llm.Model{
			"llama7b": llm.Llama7B(), "llama70b": llm.Llama70B(),
			"mistral8x7b": llm.Mistral8x7B(), "moe8x13b": llm.MoE8x13B(),
			"moe8x70b": llm.MoE8x70B(), "dlrm": llm.DLRMModel(),
		}
		m, ok := models[*model]
		if !ok {
			fail(fmt.Errorf("unknown model %q", *model))
		}
		rep, err := llm.Generate(llm.Config{
			Model: m,
			Par:   llm.Parallelism{TP: *tp, PP: *pp, DP: *dp, EP: *ep, GlobalBatch: *batch},
			Scale: *scale,
			Seed:  *seed,
		})
		if err != nil {
			fail(err)
		}
		write = func(w io.Writer) error { _, err := rep.WriteTo(w); return err }
		defer fmt.Fprintf(os.Stderr, "tracegen: %d GPUs, %d records -> %s\n", rep.NGPUs, len(rep.Records), *out)
	case "hpc":
		tr, err := hpcapps.Generate(hpcapps.Config{
			App: hpcapps.App(*app), Ranks: *ranks, Steps: *steps, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		write = func(w io.Writer) error { _, err := tr.WriteTo(w); return err }
		defer fmt.Fprintf(os.Stderr, "tracegen: %d ranks -> %s\n", tr.NumRanks(), *out)
	case "storage":
		tr := oltp.GenerateFinancial(oltp.FinancialConfig{Ops: *ops, Seed: *seed})
		write = func(w io.Writer) error { _, err := tr.WriteTo(w); return err }
		st := tr.ComputeStats()
		defer fmt.Fprintf(os.Stderr, "tracegen: %d ops (%.0f%% writes) -> %s\n", st.Ops, 100*st.WriteRatio, *out)
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
	if err := emit(*out, write); err != nil {
		fail(err)
	}
}

// emit writes the trace to path, propagating the file's close error: a
// full disk surfaces on Close for buffered writes, and swallowing it
// would report a truncated trace as success.
func emit(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
