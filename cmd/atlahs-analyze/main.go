// Command atlahs-analyze reads the artifacts the rest of the toolchain
// writes — atlahs.results/v1 sweeps, the simulation service's run store,
// BENCH_ci.json perf records — and answers "what changed, and did it get
// worse?".
//
// Usage:
//
//	atlahs-analyze diff [-keys cols] [-threshold F] [-metrics RE]
//	                    [-gate] [-json] [-html FILE] A.json B.json
//	atlahs-analyze history [-store DIR] [-threshold F] [-mad K]
//	                    [-metrics RE] [-gate] [-json] [-html FILE]
//	atlahs-analyze bench [-dir DIR] [-threshold F] [-mad K]
//	                    [-metrics RE] [-gate] [-json] [-html FILE]
//
// diff compares two sweep artifacts field by field — B relative to A —
// matching rows on -keys columns (comma-separated) or by position, and
// prints the changed records. history walks a service artifact store's
// runs oldest-first into per-metric trajectories; bench does the same
// over a directory of BENCH_ci.json documents. All three gate the result
// (one-sided: higher is worse) and print one "REGRESSION ..." line per
// flagged metric, naming the regressed record.
//
// -json emits the machine document instead of text (atlahs.diff/v1 for
// diff, atlahs.history/v1 for history and bench); -html FILE renders the
// deterministic HTML report; -gate=false reports without gating.
//
// Exit status: 0 clean, 1 when the gate flags a regression, 2 on usage
// or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"atlahs/internal/analyze"
	"atlahs/internal/profiling"
	"atlahs/results"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "diff":
		return runDiff(args[1:])
	case "history":
		return runHistory(args[1:])
	case "bench":
		return runBench(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	}
	fmt.Fprintf(os.Stderr, "atlahs-analyze: unknown subcommand %q\n", args[0])
	usage()
	return 2
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  atlahs-analyze diff    [flags] A.json B.json   compare two sweep artifacts
  atlahs-analyze history [flags]                 trajectories from a run store
  atlahs-analyze bench   [flags]                 trajectories from BENCH_ci.json files
run "atlahs-analyze <subcommand> -h" for flags.
`)
}

// gateFlags are the flags every subcommand shares.
type gateFlags struct {
	threshold  float64
	madK       float64
	metrics    string
	gate       bool
	jsonOut    bool
	htmlOut    string
	cpuprofile string
	memprofile string
}

func (g *gateFlags) register(fs *flag.FlagSet, withMAD bool) {
	fs.Float64Var(&g.threshold, "threshold", 0.1, "relative worsening to flag, e.g. 0.1 = +10% (0 flags any worsening)")
	if withMAD {
		fs.Float64Var(&g.madK, "mad", 3, "robust gate: also require the last point to exceed median + K*MAD (0 disables)")
	}
	fs.StringVar(&g.metrics, "metrics", "", "only gate metric names matching this regexp")
	fs.BoolVar(&g.gate, "gate", true, "exit 1 when a regression is flagged")
	fs.BoolVar(&g.jsonOut, "json", false, "emit the machine-readable document instead of text")
	fs.StringVar(&g.htmlOut, "html", "", "also render the HTML report to this file")
	fs.StringVar(&g.cpuprofile, "cpuprofile", "", "write a CPU profile of this invocation to FILE (go tool pprof format)")
	fs.StringVar(&g.memprofile, "memprofile", "", "write a heap profile at exit to FILE (go tool pprof format)")
}

// profile starts the shared profiling helper from the subcommand's flags.
func (g *gateFlags) profile() (func(), error) {
	return profiling.Start("atlahs-analyze", g.cpuprofile, g.memprofile)
}

func (g *gateFlags) build() (analyze.Gate, error) {
	gate := analyze.Gate{RelThreshold: g.threshold, MADK: g.madK}
	if g.metrics != "" {
		re, err := regexp.Compile(g.metrics)
		if err != nil {
			return gate, fmt.Errorf("bad -metrics pattern: %w", err)
		}
		gate.Metrics = re
	}
	return gate, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "atlahs-analyze:", err)
	return 2
}

func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	keys := fs.String("keys", "", "comma-separated key columns to match rows on (default: by position)")
	var gf gateFlags
	gf.register(fs, false)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "atlahs-analyze diff: want exactly two artifact paths")
		return 2
	}
	stop, err := gf.profile()
	if err != nil {
		return fail(err)
	}
	defer stop()
	gate, err := gf.build()
	if err != nil {
		return fail(err)
	}
	a, err := loadSweep(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	b, err := loadSweep(fs.Arg(1))
	if err != nil {
		return fail(err)
	}
	var opts analyze.DiffOptions
	if *keys != "" {
		opts.Keys = strings.Split(*keys, ",")
	}
	d, err := analyze.Diff(a, b, opts)
	if err != nil {
		return fail(err)
	}
	regs := gate.Diff(d)
	report := &analyze.Report{
		Title:       fmt.Sprintf("atlahs analyze: %s vs %s", d.A, d.B),
		Diff:        d,
		Regressions: regs,
	}
	if err := emit(&gf, report, func() error { return results.EncodeDiffJSON(os.Stdout, d) }, func() {
		fmt.Printf("diff %s vs %s: %d/%d rows matched, %d changed", d.A, d.B, d.Matched, d.RowsA, d.Changed)
		if n := len(d.RowsOnlyA); n > 0 {
			fmt.Printf(", %d only in %s", n, d.A)
		}
		if n := len(d.RowsOnlyB); n > 0 {
			fmt.Printf(", %d only in %s", n, d.B)
		}
		fmt.Println()
		for _, row := range d.Rows {
			for _, f := range row.Fields {
				where := "row " + fmt.Sprint(row.Row)
				if row.Key != nil {
					where = analyze.FormatKey(row.Key)
				}
				fmt.Printf("  %s %s: %v -> %v\n", where, f.Column, f.A, f.B)
			}
		}
		for _, s := range d.Derived {
			fmt.Printf("  derived %s: %v -> %v\n", s.Key, s.A, s.B)
		}
		for _, p := range d.Params {
			fmt.Printf("  param %s: %q -> %q\n", p.Key, p.A, p.B)
		}
	}); err != nil {
		return fail(err)
	}
	return verdict(&gf, regs)
}

func runHistory(args []string) int {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	store := fs.String("store", "", "service artifact store directory (required)")
	var gf gateFlags
	gf.register(fs, true)
	fs.Parse(args)
	if *store == "" || fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "atlahs-analyze history: want -store DIR and no positional arguments")
		return 2
	}
	stop, err := gf.profile()
	if err != nil {
		return fail(err)
	}
	defer stop()
	st, err := results.NewStore(*store)
	if err != nil {
		return fail(err)
	}
	series, warnings, err := analyze.StoreHistory(st)
	if err != nil {
		return fail(err)
	}
	return trajectories(&gf, "atlahs analyze: run history", series, warnings)
}

func runBench(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	dir := fs.String("dir", "", "directory of BENCH_ci.json history files (required)")
	var gf gateFlags
	gf.register(fs, true)
	fs.Parse(args)
	if *dir == "" || fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "atlahs-analyze bench: want -dir DIR and no positional arguments")
		return 2
	}
	stop, err := gf.profile()
	if err != nil {
		return fail(err)
	}
	defer stop()
	series, warnings, err := analyze.BenchHistory(*dir)
	if err != nil {
		return fail(err)
	}
	return trajectories(&gf, "atlahs analyze: bench history", series, warnings)
}

// trajectories is the shared back half of history and bench.
func trajectories(gf *gateFlags, title string, series []results.Series, warnings []string) int {
	gate, err := gf.build()
	if err != nil {
		return fail(err)
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "atlahs-analyze: warning:", w)
	}
	regs := gate.Series(series)
	report := &analyze.Report{Title: title, History: series, Regressions: regs, Warnings: warnings}
	if err := emit(gf, report, func() error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Schema string           `json:"schema"`
			Series []results.Series `json:"series"`
		}{analyze.HistorySchema, series})
	}, func() {
		for _, s := range series {
			unit := ""
			if s.Unit != "" {
				unit = " " + s.Unit
			}
			last := s.Points[len(s.Points)-1]
			fmt.Printf("%s: %d points, last %v%s (%s)\n", s.Metric, len(s.Points), last.Value, unit, last.Label)
		}
	}); err != nil {
		return fail(err)
	}
	return verdict(gf, regs)
}

// emit writes the selected outputs: the machine document or the text
// summary to stdout, plus the optional HTML report file. REGRESSION
// lines go to stderr so they survive -json without corrupting it.
func emit(gf *gateFlags, report *analyze.Report, machine func() error, text func()) error {
	if gf.jsonOut {
		if err := machine(); err != nil {
			return err
		}
	} else {
		text()
	}
	for _, r := range report.Regressions {
		fmt.Fprintln(os.Stderr, r)
	}
	if gf.htmlOut != "" {
		f, err := os.Create(gf.htmlOut)
		if err != nil {
			return err
		}
		if err := analyze.RenderHTML(f, report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// verdict maps the gate outcome to the exit status.
func verdict(gf *gateFlags, regs []analyze.Regression) int {
	if gf.gate && len(regs) > 0 {
		return 1
	}
	return 0
}

func loadSweep(path string) (*results.Sweep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := results.DecodeJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
