package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atlahs/results"
)

// writeSweep saves a keyed artifact like the experiments exporter does.
func writeSweep(t *testing.T, path string, measured []int64) {
	t.Helper()
	s := results.NewSweep("fig8_quick", "Fig 8", "quick")
	s.AddColumn("configuration", results.String, "")
	s.AddColumn("measured", results.Duration, "ps")
	configs := []string{"cfg_a", "cfg_b", "cfg_c"}
	for i, m := range measured {
		s.MustAddRow(configs[i], m)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := results.EncodeJSON(f, s); err != nil {
		t.Fatal(err)
	}
}

func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	same := filepath.Join(dir, "same.json")
	worse := filepath.Join(dir, "worse.json")
	writeSweep(t, base, []int64{100, 200, 300})
	writeSweep(t, same, []int64{100, 200, 300})
	writeSweep(t, worse, []int64{100, 240, 300}) // cfg_b +20%

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"identical", []string{"diff", "-keys", "configuration", base, same}, 0},
		{"regression", []string{"diff", "-keys", "configuration", base, worse}, 1},
		{"below threshold", []string{"diff", "-keys", "configuration", "-threshold", "0.5", base, worse}, 0},
		{"gate off", []string{"diff", "-keys", "configuration", "-gate=false", base, worse}, 0},
		{"positional identical", []string{"diff", base, same}, 0},
		{"json output", []string{"diff", "-json", "-keys", "configuration", base, worse}, 1},
		{"missing file", []string{"diff", base, filepath.Join(dir, "nope.json")}, 2},
		{"one arg", []string{"diff", base}, 2},
		{"bad keys", []string{"diff", "-keys", "nope", base, same}, 2},
		{"bad metrics", []string{"diff", "-metrics", "(", base, same}, 2},
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"no args", nil, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

func TestDiffWritesHTMLReport(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	worse := filepath.Join(dir, "worse.json")
	writeSweep(t, base, []int64{100, 200, 300})
	writeSweep(t, worse, []int64{100, 240, 300})
	html := filepath.Join(dir, "report.html")

	if got := run([]string{"diff", "-keys", "configuration", "-html", html, base, worse}); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	b, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{"<!doctype html>", "regression(s) flagged", "cfg_b", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestBenchSubcommand(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("run_1.json", `{"schema":"atlahs.bench/v1","benchmarks":{"BenchmarkX":100}}`)
	write("run_2.json", `{"schema":"atlahs.bench/v1","benchmarks":{"BenchmarkX":100}}`)
	write("run_3.json", `{"schema":"atlahs.bench/v1","benchmarks":{"BenchmarkX":100}}`)
	write("run_4.json", `{"schema":"atlahs.bench/v1","benchmarks":{"BenchmarkX":150}}`)

	if got := run([]string{"bench", "-dir", dir, "-threshold", "0.1"}); got != 1 {
		t.Errorf("regressed bench history: exit = %d, want 1", got)
	}
	if got := run([]string{"bench", "-dir", dir, "-threshold", "0.1", "-gate=false"}); got != 0 {
		t.Errorf("gate off: exit = %d, want 0", got)
	}
	if got := run([]string{"bench", "-dir", t.TempDir()}); got != 2 {
		t.Errorf("empty dir: exit = %d, want 2", got)
	}
	if got := run([]string{"bench"}); got != 2 {
		t.Errorf("missing -dir: exit = %d, want 2", got)
	}
}

func TestHistorySubcommand(t *testing.T) {
	dir := t.TempDir()
	st, err := results.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range []float64{100, 100, 100, 150} {
		s := results.NewSweep("r_"+strings.Repeat("0", 15)+string(rune('a'+i)), "Run", "service")
		s.AddColumn("rank", results.Int, "")
		s.MustAddRow(int64(0))
		s.SetDerived("runtime_ps", rt)
		if err := st.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	// All four artifacts share an mtime granule; the name tiebreak keeps
	// them in save order, so the +50% last run trips the gate.
	if got := run([]string{"history", "-store", dir, "-threshold", "0.1"}); got != 1 {
		t.Errorf("regressed run history: exit = %d, want 1", got)
	}
	if got := run([]string{"history"}); got != 2 {
		t.Errorf("missing -store: exit = %d, want 2", got)
	}
}
