// Command schedgen converts application traces into GOAL schedules — the
// trace-to-GOAL stage of the toolchain (paper Fig 2, green path), a thin
// shell over the sim facade's workload-frontend registry.
//
// Usage:
//
//	schedgen -in trace -out sched.bin [-frontend nsys|mpi|spc|chakra|goal]
//	         [-text] [-gpus-per-node 4] [-channels 1] [-hosts 4]
//
// The input format is auto-detected (content sniffing, extension
// fallback) unless -frontend names one. -gpus-per-node/-channels tune the
// nsys conversion, -hosts the spc conversion; other frontends use their
// defaults (the sim library exposes every knob).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atlahs/sim"
)

func main() {
	in := flag.String("in", "", "input trace file")
	out := flag.String("out", "", "output GOAL file")
	frontendName := flag.String("frontend", "", "workload frontend: "+strings.Join(sim.Frontends(), ", ")+" (default: auto-detect)")
	text := flag.Bool("text", false, "write textual GOAL instead of binary")
	gpusPerNode := flag.Int("gpus-per-node", 4, "nsys: GPUs grouped per node")
	channels := flag.Int("channels", 1, "nsys: NCCL channels")
	hosts := flag.Int("hosts", 4, "spc: Direct Drive client hosts")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	// The conversion knobs are per-frontend; hand each frontend its own
	// config and let the registry resolve the converter — one open, one
	// read, so piped inputs work too.
	s, name, err := sim.ConvertTraceFileVia(*in, *frontendName, map[string]any{
		"nsys": sim.NsysConfig{GPUsPerNode: *gpusPerNode, Channels: *channels},
		"spc":  sim.SPCConfig{Hosts: *hosts},
	})
	if err != nil {
		fail(err)
	}

	if err := write(*out, s, *text); err != nil {
		fail(err)
	}
	st := s.ComputeStats()
	fmt.Fprintf(os.Stderr, "schedgen: %s frontend: wrote %d ranks, %d ops to %s\n", name, st.Ranks, st.Ops, *out)
}

// write emits the schedule, propagating the close error (a full disk
// surfaces on Close for buffered writes).
func write(path string, s *sim.Schedule, text bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if text {
		err = sim.WriteGOALText(f, s)
	} else {
		err = sim.WriteGOALBinary(f, s)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedgen:", err)
	os.Exit(1)
}
