// Command schedgen converts application traces into GOAL schedules — the
// trace-to-GOAL stage of the toolchain (paper Fig 2, green path).
//
// Usage:
//
//	schedgen -format mpi|nsys|spc -in trace -out sched.bin [-text]
//	         [-gpus-per-node 4] [-channels 1] [-hosts 4]
//
// Formats: "mpi" (liballprof-style MPI trace via Schedgen), "nsys"
// (nsys-like GPU report via the 4-stage NCCL pipeline), "spc" (SPC block
// I/O trace via the Direct Drive model).
package main

import (
	"flag"
	"fmt"
	"os"

	"atlahs/internal/goal"
	"atlahs/internal/storage/directdrive"
	"atlahs/internal/trace/mpitrace"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/nsys"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/trace/spc"
)

func main() {
	format := flag.String("format", "", "input trace format: mpi, nsys or spc")
	in := flag.String("in", "", "input trace file")
	out := flag.String("out", "", "output GOAL file")
	text := flag.Bool("text", false, "write textual GOAL instead of binary")
	gpusPerNode := flag.Int("gpus-per-node", 4, "nsys: GPUs grouped per node")
	channels := flag.Int("channels", 1, "nsys: NCCL channels")
	hosts := flag.Int("hosts", 4, "spc: Direct Drive client hosts")
	flag.Parse()
	if *format == "" || *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()

	var s *goal.Schedule
	switch *format {
	case "mpi":
		tr, err := mpitrace.Parse(f)
		if err != nil {
			fail(err)
		}
		if s, err = schedgen.Generate(tr, schedgen.Options{}); err != nil {
			fail(err)
		}
	case "nsys":
		rep, err := nsys.Parse(f)
		if err != nil {
			fail(err)
		}
		if s, err = ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: *gpusPerNode, Channels: *channels}); err != nil {
			fail(err)
		}
	case "spc":
		tr, err := spc.Parse(f)
		if err != nil {
			fail(err)
		}
		var layout *directdrive.Layout
		if s, layout, err = directdrive.Generate(tr, directdrive.Config{Hosts: *hosts}); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "schedgen: storage layout %v\n", layout)
	default:
		fail(fmt.Errorf("unknown format %q", *format))
	}

	o, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer o.Close()
	if *text {
		err = goal.WriteText(o, s)
	} else {
		err = goal.WriteBinary(o, s)
	}
	if err != nil {
		fail(err)
	}
	st := s.ComputeStats()
	fmt.Fprintf(os.Stderr, "schedgen: wrote %d ranks, %d ops to %s\n", st.Ranks, st.Ops, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedgen:", err)
	os.Exit(1)
}
