package astra

import (
	"strings"
	"testing"

	"atlahs/internal/simtime"
	"atlahs/internal/trace/chakra"
)

// dpTrace builds a pure data-parallel trace: per-iteration compute plus a
// world allreduce, the shape AstraSim's real-trace path supports.
func dpTrace(ranks int, iters int, compNs, gradBytes int64) *chakra.Trace {
	t := &chakra.Trace{Ranks: make([][]chakra.Node, ranks)}
	for r := 0; r < ranks; r++ {
		var b chakra.Builder
		for i := 0; i < iters; i++ {
			b.AddComp("fwd_bwd", compNs)
			b.AddColl(chakra.CollAllReduce, gradBytes, "world")
		}
		t.Ranks[r] = b.Nodes()
	}
	return t
}

func TestSimulateDP(t *testing.T) {
	tr := dpTrace(4, 2, 1_000_000, 1<<20)
	res, err := Simulate(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// at least 2 iterations of 1 ms compute
	if res.Runtime < 2*simtime.Millisecond {
		t.Fatalf("runtime %v below compute floor", res.Runtime)
	}
	if res.Phases == 0 {
		t.Fatal("no collective phases simulated")
	}
	for _, e := range res.RankEnd {
		if e == 0 {
			t.Fatal("rank never finished")
		}
	}
}

func TestCollectiveCostScalesWithBytes(t *testing.T) {
	small, err := Simulate(dpTrace(4, 1, 0, 1<<16), Config{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(dpTrace(4, 1, 0, 1<<24), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Runtime <= small.Runtime {
		t.Fatalf("larger collective not slower: %v vs %v", big.Runtime, small.Runtime)
	}
}

func TestRejectsP2P(t *testing.T) {
	tr := &chakra.Trace{Ranks: make([][]chakra.Node, 2)}
	var b0 chakra.Builder
	b0.AddSend(4096, 1, 0)
	tr.Ranks[0] = b0.Nodes()
	var b1 chakra.Builder
	b1.AddRecv(4096, 0, 0)
	tr.Ranks[1] = b1.Nodes()
	_, err := Simulate(tr, Config{})
	if err == nil || !strings.Contains(err.Error(), "point-to-point") {
		t.Fatalf("P2P not rejected: %v", err)
	}
}

func TestRejectsSubgroupCollectives(t *testing.T) {
	tr := &chakra.Trace{Ranks: make([][]chakra.Node, 2)}
	for r := 0; r < 2; r++ {
		var b chakra.Builder
		b.AddColl(chakra.CollAllReduce, 1024, "tp0")
		tr.Ranks[r] = b.Nodes()
	}
	_, err := Simulate(tr, Config{})
	if err == nil || !strings.Contains(err.Error(), "subgroup") {
		t.Fatalf("subgroup not rejected: %v", err)
	}
}

func TestCollectiveCountMismatch(t *testing.T) {
	tr := &chakra.Trace{Ranks: make([][]chakra.Node, 2)}
	var b0 chakra.Builder
	b0.AddColl(chakra.CollAllReduce, 1024, "world")
	tr.Ranks[0] = b0.Nodes()
	var b1 chakra.Builder
	b1.AddComp("only_compute", 10)
	tr.Ranks[1] = b1.Nodes()
	if _, err := Simulate(tr, Config{}); err == nil {
		t.Fatal("mismatched collective counts accepted")
	}
}

func TestStragglerGatesCollective(t *testing.T) {
	// one slow rank delays everyone (collectives synchronise)
	tr := dpTrace(4, 1, 0, 1<<20)
	var b chakra.Builder
	b.AddComp("straggler", 50_000_000) // 50 ms
	b.AddColl(chakra.CollAllReduce, 1<<20, "world")
	tr.Ranks[3] = b.Nodes()
	res, err := Simulate(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime < 50*simtime.Millisecond {
		t.Fatalf("straggler not gating: %v", res.Runtime)
	}
	// all ranks end together (after the collective)
	for _, e := range res.RankEnd {
		if e < simtime.Time(50*simtime.Millisecond) {
			t.Fatalf("rank finished before straggler released collective: %v", e)
		}
	}
}

func TestAllCollectiveTypes(t *testing.T) {
	for _, ct := range []string{
		chakra.CollAllReduce, chakra.CollAllGather, chakra.CollReduceScatter,
		chakra.CollAllToAll, chakra.CollBroadcast,
	} {
		tr := &chakra.Trace{Ranks: make([][]chakra.Node, 3)}
		for r := 0; r < 3; r++ {
			var b chakra.Builder
			b.AddColl(ct, 1<<18, "world")
			tr.Ranks[r] = b.Nodes()
		}
		if _, err := Simulate(tr, Config{}); err != nil {
			t.Fatalf("%s: %v", ct, err)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	if _, err := Simulate(&chakra.Trace{}, Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}
