// Package astra is "AstraSim-lite": a baseline simulator in the style of
// ASTRA-sim 2.0 (Won et al., 2023) used for the paper's comparisons
// (§5.2). It consumes Chakra-like execution traces and simulates them with
//
//   - a system layer that decomposes collectives chunk-by-chunk into ring
//     phases (the reason AstraSim's runtime grows with trace size), and
//   - a congestion-unaware analytical network: every transfer takes
//     latency + bytes/bandwidth on a one-dimensional ring topology,
//     regardless of what else is in flight.
//
// The baseline shares AstraSim's real-trace limitations deliberately and
// honestly: the trace feeder supports collective nodes over the full world
// group only — point-to-point COMM_SEND/COMM_RECV nodes (pipeline
// parallelism) and subgroup collectives (tensor/expert parallelism) are
// rejected, which reproduces the paper's observation that AstraSim ran
// only the pure data-parallel configurations (Fig 8).
package astra

import (
	"fmt"

	"atlahs/internal/engine"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/chakra"
)

// Config parameterises the analytical network.
type Config struct {
	// Latency per hop (default 3.7 us, matching the LGS calibration).
	Latency simtime.Duration
	// PsPerByte is the per-byte cost (default 40 ps/B = 25 GB/s).
	PsPerByte simtime.Duration
	// ChunkBytes is the system-layer chunk size for collective phases
	// (default 64 KiB).
	ChunkBytes int64
	// WorldGroup is the comm_group name treated as the full world
	// (default "world").
	WorldGroup string
}

func (c Config) withDefaults() Config {
	if c.Latency == 0 {
		c.Latency = 3700 * simtime.Nanosecond
	}
	if c.PsPerByte == 0 {
		c.PsPerByte = 40 * simtime.Picosecond
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 64 * 1024
	}
	if c.WorldGroup == "" {
		c.WorldGroup = "world"
	}
	return c
}

// Result summarises a baseline simulation.
type Result struct {
	Runtime simtime.Duration
	RankEnd []simtime.Time
	// Phases counts simulated collective ring phases (the event volume).
	Phases int64
}

// Simulate runs the baseline on a Chakra trace.
func Simulate(t *chakra.Trace, cfg Config) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := t.NumRanks()
	if n == 0 {
		return nil, fmt.Errorf("astra: empty trace")
	}

	// The feeder walks every rank's graph in dependency order. Collectives
	// synchronise all ranks (they must all reach the same collective
	// before it can run — AstraSim's system layer behaves the same for
	// world-group collectives).
	type rankState struct {
		nodes []chakra.Node
		done  map[int64]simtime.Time // node id -> completion
		next  int
		clock simtime.Time
	}
	ranks := make([]rankState, n)
	collSeq := make([][]int, n) // indices of collective nodes per rank
	for r := 0; r < n; r++ {
		ranks[r] = rankState{nodes: t.Ranks[r], done: map[int64]simtime.Time{}}
		for i := range t.Ranks[r] {
			nd := &t.Ranks[r][i]
			switch nd.Type {
			case chakra.NodeSendComm, chakra.NodeRecvComm:
				return nil, fmt.Errorf("astra: rank %d node %d: point-to-point %s nodes are not supported by the real-trace feeder (pipeline/expert parallelism)",
					r, nd.ID, nd.Type)
			case chakra.NodeCollComm:
				if g := nd.StrAttrOr("comm_group", cfg.WorldGroup); g != cfg.WorldGroup {
					return nil, fmt.Errorf("astra: rank %d node %d: collective over subgroup %q unsupported — only the world group maps onto the 1-D topology",
						r, nd.ID, g)
				}
				collSeq[r] = append(collSeq[r], i)
			}
		}
	}
	for r := 1; r < n; r++ {
		if len(collSeq[r]) != len(collSeq[0]) {
			return nil, fmt.Errorf("astra: rank %d has %d collectives, rank 0 has %d", r, len(collSeq[r]), len(collSeq[0]))
		}
	}

	eng := engine.New()
	res := &Result{RankEnd: make([]simtime.Time, n), Phases: 0}

	// advance each rank's local compute up to its next collective
	runLocal := func(r *rankState) {
		for r.next < len(r.nodes) {
			nd := &r.nodes[r.next]
			if nd.Type == chakra.NodeCollComm {
				return
			}
			start := r.clock
			for _, d := range nd.CtrlDeps {
				if dt, ok := r.done[d]; ok && dt > start {
					start = dt
				}
			}
			for _, d := range nd.DataDeps {
				if dt, ok := r.done[d]; ok && dt > start {
					start = dt
				}
			}
			end := start.Add(simtime.Duration(nd.IntAttrOr("runtime", 0)) * simtime.Nanosecond)
			r.done[nd.ID] = end
			r.clock = end
			r.next++
		}
	}

	for r := range ranks {
		runLocal(&ranks[r])
	}
	for ci := 0; ci < len(collSeq[0]); ci++ {
		// all ranks must have reached the collective
		start := simtime.Time(0)
		var ref *chakra.Node
		for r := range ranks {
			nd := &ranks[r].nodes[collSeq[r][ci]]
			if ref == nil {
				ref = nd
			} else if nd.StrAttrOr("comm_type", "") != ref.StrAttrOr("comm_type", "") {
				return nil, fmt.Errorf("astra: collective %d type mismatch", ci)
			}
			if ranks[r].clock > start {
				start = ranks[r].clock
			}
		}
		dur := r2.collectiveTime(ref, n, cfg, eng, res)
		end := start.Add(dur)
		for r := range ranks {
			nd := &ranks[r].nodes[collSeq[r][ci]]
			ranks[r].done[nd.ID] = end
			ranks[r].clock = end
			ranks[r].next = collSeq[r][ci] + 1
			runLocal(&ranks[r])
		}
	}
	for r := range ranks {
		if ranks[r].next != len(ranks[r].nodes) {
			return nil, fmt.Errorf("astra: rank %d stalled at node %d", r, ranks[r].next)
		}
		res.RankEnd[r] = ranks[r].clock
		if d := simtime.Duration(ranks[r].clock); d > res.Runtime {
			res.Runtime = d
		}
	}
	return res, nil
}

// r2 namespaces the system-layer helpers.
var r2 sysLayer

type sysLayer struct{}

// collectiveTime decomposes one collective into chunked ring phases and
// simulates the phases through an event queue (chunk pipelining included),
// faithful to AstraSim's system-layer behaviour while staying congestion
// unaware: each phase costs latency + chunk/bandwidth, no queueing.
func (sysLayer) collectiveTime(nd *chakra.Node, n int, cfg Config, eng *engine.Engine, res *Result) simtime.Duration {
	bytes := nd.IntAttrOr("comm_size", 0)
	if n <= 1 || bytes == 0 {
		return 0
	}
	steps := int64(0)
	perStepBytes := bytes
	switch nd.StrAttrOr("comm_type", chakra.CollAllReduce) {
	case chakra.CollAllReduce:
		steps = int64(2 * (n - 1))
		perStepBytes = bytes / int64(n)
	case chakra.CollAllGather, chakra.CollReduceScatter:
		steps = int64(n - 1)
		perStepBytes = bytes / int64(n)
	case chakra.CollAllToAll:
		steps = int64(n - 1)
		perStepBytes = bytes / int64(n)
	case chakra.CollBroadcast:
		steps = int64(n - 1)
	default:
		steps = int64(2 * (n - 1))
		perStepBytes = bytes / int64(n)
	}
	if perStepBytes <= 0 {
		perStepBytes = 1
	}
	nchunks := (perStepBytes + cfg.ChunkBytes - 1) / cfg.ChunkBytes
	chunk := (perStepBytes + nchunks - 1) / nchunks
	phase := cfg.Latency + simtime.Duration(chunk)*cfg.PsPerByte

	// chunk-pipelined ring: phases run through the event engine, one event
	// per (step, chunk) — this is where the baseline burns its time, like
	// the original
	eng.Reset()
	var finish simtime.Time
	for c := int64(0); c < nchunks; c++ {
		startAt := simtime.Time(c) * simtime.Time(phase) // pipelined injection
		for s := int64(0); s < steps; s++ {
			at := startAt.Add(simtime.Duration(s+1) * phase)
			eng.Schedule(at, func() {})
			res.Phases++
		}
	}
	finish = eng.Run()
	return simtime.Duration(finish)
}
