package directdrive

import (
	"testing"
	"testing/quick"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
	"atlahs/internal/trace/spc"
	"atlahs/internal/workload/oltp"
)

func smallTrace() *spc.Trace {
	return &spc.Trace{Ops: []spc.Op{
		{ASU: 0, LBA: 100, Bytes: 4096, Write: false, Time: 0},
		{ASU: 1, LBA: 200, Bytes: 8192, Write: true, Time: 0.00001},
		{ASU: 0, LBA: 100, Bytes: 512, Write: true, Time: 0.00002},
		{ASU: 2, LBA: 300, Bytes: 2048, Write: false, Time: 0.00003},
	}}
}

func TestLayout(t *testing.T) {
	cfg := Config{Hosts: 4, CCS: 2, BSS: 8}
	l := NewLayout(cfg)
	if l.NumRanks() != 4+2+8+3 {
		t.Fatalf("ranks=%d", l.NumRanks())
	}
	if l.Host(0) != 0 || l.CCSRank(0) != 4 || l.BSSRank(0) != 6 {
		t.Fatal("layout bases wrong")
	}
	if l.MDS() != 14 || l.GS() != 15 || l.SLB() != 16 {
		t.Fatalf("service ranks wrong: mds=%d gs=%d slb=%d", l.MDS(), l.GS(), l.SLB())
	}
	if l.String() == "" {
		t.Fatal("empty layout description")
	}
}

func TestGenerateStructure(t *testing.T) {
	s, l, err := Generate(smallTrace(), Config{Hosts: 2, CCS: 2, BSS: 4, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRanks() != l.NumRanks() {
		t.Fatalf("schedule ranks %d != layout %d", s.NumRanks(), l.NumRanks())
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	// reads: 4 messages each (req,resp,req,data) = 2 reads -> 8
	// writes: 4 + 3(repl fw/ack per secondary... ) — just sanity-check scale
	if st.Sends < 20 {
		t.Fatalf("too few messages for 4 ops + sessions: %d", st.Sends)
	}
	// every component participates
	mdsOps := len(s.Ranks[l.MDS()].Ops)
	gsOps := len(s.Ranks[l.GS()].Ops)
	slbOps := len(s.Ranks[l.SLB()].Ops)
	if mdsOps == 0 || gsOps == 0 || slbOps == 0 {
		t.Fatalf("idle service components: mds=%d gs=%d slb=%d", mdsOps, gsOps, slbOps)
	}
}

func TestRunsOnLGS(t *testing.T) {
	s, _, err := Generate(smallTrace(), Config{Hosts: 2, CCS: 1, BSS: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(s.ComputeStats().Ops) {
		t.Fatal("not all ops executed")
	}
}

func TestWriteReplication(t *testing.T) {
	// single 4 KiB write with 3 replicas: data flows host->primary and
	// primary->2 secondaries => 3 data-sized sends
	tr := &spc.Trace{Ops: []spc.Op{{ASU: 0, LBA: 0, Bytes: 4096, Write: true, Time: 0}}}
	s, _, err := Generate(tr, Config{Hosts: 1, CCS: 1, BSS: 4, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	dataSends := 0
	for r := range s.Ranks {
		for i := range s.Ranks[r].Ops {
			op := s.Ranks[r].Ops[i]
			if op.Kind == goal.KindSend && op.Size == 4096 {
				dataSends++
			}
		}
	}
	if dataSends != 3 {
		t.Fatalf("data-size sends = %d, want 3 (primary + 2 replicas)", dataSends)
	}
}

func TestReadPath(t *testing.T) {
	tr := &spc.Trace{Ops: []spc.Op{{ASU: 0, LBA: 5, Bytes: 16384, Write: false, Time: 0}}}
	s, l, err := Generate(tr, Config{Hosts: 1, CCS: 1, BSS: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	// data travels BSS -> host exactly once
	found := 0
	bss := int32(-1)
	for i := 0; i < 2; i++ {
		for j := range s.Ranks[l.BSSRank(i)].Ops {
			op := s.Ranks[l.BSSRank(i)].Ops[j]
			if op.Kind == goal.KindSend && op.Size == 16384 && op.Peer == int32(l.Host(0)) {
				found++
				bss = int32(l.BSSRank(i))
			}
		}
	}
	if found != 1 || bss < 0 {
		t.Fatalf("read data sends = %d, want 1", found)
	}
	// MDS must not be involved in a pure read
	if got := len(s.Ranks[l.MDS()].Ops); got != 0 {
		t.Fatalf("MDS has %d ops for a read-only trace", got)
	}
}

func TestThinkTimeFromTimestamps(t *testing.T) {
	// two ops on the same ASU 1 ms apart: the host must carry a ~1 ms calc
	tr := &spc.Trace{Ops: []spc.Op{
		{ASU: 0, LBA: 0, Bytes: 512, Write: false, Time: 0.001},
		{ASU: 0, LBA: 1, Bytes: 512, Write: false, Time: 0.002},
	}}
	s, l, err := Generate(tr, Config{Hosts: 1, CCS: 1, BSS: 2})
	if err != nil {
		t.Fatal(err)
	}
	var maxCalc int64
	for i := range s.Ranks[l.Host(0)].Ops {
		op := s.Ranks[l.Host(0)].Ops[i]
		if op.Kind == goal.KindCalc && op.Size > maxCalc {
			maxCalc = op.Size
		}
	}
	if maxCalc < 900_000 || maxCalc > 1_100_000 {
		t.Fatalf("inter-arrival calc %d ns, want ~1ms", maxCalc)
	}
}

// Property: Financial traces of any size produce valid, matched schedules
// that run to completion.
func TestGenerateProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		tr := oltp.GenerateFinancial(oltp.FinancialConfig{Ops: int(n%60) + 1, Seed: seed})
		s, _, err := Generate(tr, Config{Hosts: 3, CCS: 2, BSS: 5, Replicas: 3})
		if err != nil {
			return false
		}
		if s.CheckMatched() != nil {
			return false
		}
		_, err = sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
