package directdrive

import (
	"io"
	"regexp"

	"atlahs/internal/goal"
	"atlahs/internal/trace/frontend"
	"atlahs/internal/trace/spc"
)

// spcLineRE matches one SPC CSV record: ASU,LBA,Size,Opcode,Timestamp.
var spcLineRE = regexp.MustCompile(`^\s*\d+\s*,\s*\d+\s*,\s*\d+\s*,\s*[RrWw]\s*,\s*\d+(\.\d+)?\s*$`)

func init() {
	frontend.Register(frontend.Definition{
		Name:       "spc",
		Extensions: []string{".spc"},
		Sniff: func(prefix []byte) bool {
			return spcLineRE.Match(frontend.FirstLine(prefix, "#"))
		},
		Convert: func(r io.Reader, cfg any) (*goal.Schedule, error) {
			c, err := frontend.ConfigAs[Config]("spc", cfg)
			if err != nil {
				return nil, err
			}
			tr, err := spc.Parse(r)
			if err != nil {
				return nil, err
			}
			s, _, err := Generate(tr, c)
			return s, err
		},
		NewConfig: func() any { return new(Config) },
	})
}
