// Package directdrive models Azure Direct Drive, Microsoft's
// next-generation block storage architecture (paper §3.1.3, Fig 6), and
// converts SPC block-I/O traces into GOAL schedules of the storage
// system's network traffic.
//
// The model implements the five service components of the paper's Fig 6
// plus the client hosts:
//
//	VDC  — virtual disk clients (the application hosts issuing I/O)
//	CCS  — Change Coordinator Services: map a block to its BSS
//	BSS  — Block Storage Services: hold the data, replicate writes
//	MDS  — Metadata Service: receives change notifications on writes
//	GS   — Gateway Service: terminates client sessions
//	SLB  — Software Load Balancer: fronts the gateway
//
// Choreography (paper Fig 6B): a read contacts a CCS to locate the block,
// then fetches it from the owning BSS. A write obtains a lease from the
// CCS, streams data to the primary BSS which replicates to its secondary
// replicas before acknowledging; the CCS notifies the MDS asynchronously.
// Session setup (once per host) traverses SLB -> GS. Direct Drive is
// proprietary; like the paper, the model follows Microsoft's public
// description, and every assumption is a configurable parameter.
package directdrive

import (
	"fmt"

	"atlahs/internal/goal"
	"atlahs/internal/trace/spc"
)

// Config sizes the storage cluster and its service costs.
type Config struct {
	Hosts    int // VDC client hosts
	CCS      int // change coordinator instances
	BSS      int // block storage servers
	Replicas int // total copies of each write (primary + secondaries)

	// Service times in nanoseconds.
	CCSLookupNs    int64 // CCS map lookup
	BSSReadNs      int64 // BSS media read
	BSSWriteNs     int64 // BSS media write
	HostThinkNs    int64 // host-side post-completion processing
	GSSessionNs    int64 // gateway session establishment
	MDSUpdateNs    int64 // metadata ingestion per notification
	CtrlBytes      int64 // control message size (requests, acks, leases)
	StreamsPerHost int   // concurrent I/O streams per host (ASU fan-out)
}

func (c Config) withDefaults() Config {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.CCS <= 0 {
		c.CCS = 2
	}
	if c.BSS <= 0 {
		c.BSS = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Replicas > c.BSS {
		c.Replicas = c.BSS
	}
	if c.CCSLookupNs == 0 {
		c.CCSLookupNs = 1500
	}
	if c.BSSReadNs == 0 {
		c.BSSReadNs = 8000
	}
	if c.BSSWriteNs == 0 {
		c.BSSWriteNs = 12000
	}
	if c.HostThinkNs == 0 {
		c.HostThinkNs = 500
	}
	if c.GSSessionNs == 0 {
		c.GSSessionNs = 3000
	}
	if c.MDSUpdateNs == 0 {
		c.MDSUpdateNs = 1000
	}
	if c.CtrlBytes == 0 {
		c.CtrlBytes = 512
	}
	if c.StreamsPerHost <= 0 {
		c.StreamsPerHost = 8
	}
	return c
}

// Layout maps Direct Drive components to GOAL ranks (= cluster nodes).
type Layout struct {
	Hosts    int
	CCS      int
	BSS      int
	hostBase int
	ccsBase  int
	bssBase  int
	mds      int
	gs       int
	slb      int
}

// NewLayout computes the rank layout for a configuration: hosts first,
// then CCS, BSS, and the three singleton services.
func NewLayout(cfg Config) Layout {
	cfg = cfg.withDefaults()
	l := Layout{Hosts: cfg.Hosts, CCS: cfg.CCS, BSS: cfg.BSS}
	l.hostBase = 0
	l.ccsBase = cfg.Hosts
	l.bssBase = l.ccsBase + cfg.CCS
	l.mds = l.bssBase + cfg.BSS
	l.gs = l.mds + 1
	l.slb = l.gs + 1
	return l
}

// NumRanks returns the total rank count of the layout.
func (l Layout) NumRanks() int { return l.slb + 1 }

// Host returns the rank of host h.
func (l Layout) Host(h int) int { return l.hostBase + h }

// CCSRank returns the rank of CCS instance i.
func (l Layout) CCSRank(i int) int { return l.ccsBase + i }

// BSSRank returns the rank of BSS instance i.
func (l Layout) BSSRank(i int) int { return l.bssBase + i }

// MDS returns the metadata service rank.
func (l Layout) MDS() int { return l.mds }

// GS returns the gateway service rank.
func (l Layout) GS() int { return l.gs }

// SLB returns the load balancer rank.
func (l Layout) SLB() int { return l.slb }

// Generate converts an SPC trace into the GOAL schedule of the resulting
// Direct Drive network traffic. I/O commands are distributed to hosts by
// ASU; commands of the same (host, stream) serialise with their traced
// inter-arrival gaps as calc vertices, while different streams proceed
// concurrently (storage queue depth).
func Generate(tr *spc.Trace, cfg Config) (*goal.Schedule, *Layout, error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	l := NewLayout(cfg)
	b := goal.NewBuilder(l.NumRanks())

	// per-host session setup through SLB and GS (once per host)
	sessionDone := make([]goal.OpID, cfg.Hosts)
	var slbChain, gsChain goal.OpID = -1, -1
	slb := b.Rank(l.SLB())
	gs := b.Rank(l.GS())
	for h := 0; h < cfg.Hosts; h++ {
		host := b.Rank(l.Host(h))
		tag := sessTag(h)
		syn := host.Send(cfg.CtrlBytes, l.SLB(), tag)
		// SLB forwards to the gateway
		srecv := slb.Recv(cfg.CtrlBytes, l.Host(h), tag)
		if slbChain >= 0 {
			slb.Requires(srecv, slbChain)
		}
		fwd := slb.Send(cfg.CtrlBytes, l.GS(), tag)
		slb.Requires(fwd, srecv)
		slbChain = fwd
		// gateway sets up the session and answers the host directly
		grecv := gs.Recv(cfg.CtrlBytes, l.SLB(), tag)
		if gsChain >= 0 {
			gs.Requires(grecv, gsChain)
		}
		gcalc := gs.Calc(cfg.GSSessionNs)
		gs.Requires(gcalc, grecv)
		gresp := gs.Send(cfg.CtrlBytes, l.Host(h), tag)
		gs.Requires(gresp, gcalc)
		gsChain = gresp
		ack := host.Recv(cfg.CtrlBytes, l.GS(), tag)
		host.Requires(ack, syn)
		sessionDone[h] = ack
	}

	// per-component serialisation chains: each service processes requests
	// on its own stream(s)
	ccsChain := make([]goal.OpID, cfg.CCS)
	bssChain := make([]goal.OpID, cfg.BSS)
	for i := range ccsChain {
		ccsChain[i] = -1
	}
	for i := range bssChain {
		bssChain[i] = -1
	}
	var mdsChain goal.OpID = -1
	mds := b.Rank(l.MDS())

	// per (host, stream) chains with traced think time
	type streamState struct {
		head     goal.OpID
		lastTime float64
	}
	streams := make([][]streamState, cfg.Hosts)
	for h := range streams {
		streams[h] = make([]streamState, cfg.StreamsPerHost)
		for s := range streams[h] {
			streams[h][s] = streamState{head: sessionDone[h]}
		}
	}

	for opIdx, op := range tr.Ops {
		h := op.ASU % cfg.Hosts
		strm := (op.ASU / cfg.Hosts) % cfg.StreamsPerHost
		st := &streams[h][strm]
		host := b.Rank(l.Host(h))
		cpu := int32(strm)
		tag := opTag(opIdx)

		// traced inter-arrival gap becomes host-side computation
		if st.lastTime > 0 && op.Time > st.lastTime {
			gapNs := int64((op.Time - st.lastTime) * 1e9)
			if gapNs > 0 {
				c := host.CalcOn(gapNs, cpu)
				if st.head >= 0 {
					host.Requires(c, st.head)
				}
				st.head = c
			}
		}
		st.lastTime = op.Time

		ccsIdx := int(op.LBA>>3) % cfg.CCS
		bssIdx := int(op.LBA) % cfg.BSS
		ccs := b.Rank(l.CCSRank(ccsIdx))
		ccsRank := l.CCSRank(ccsIdx)

		// 1. host asks the CCS which BSS owns the block
		req := host.SendOn(cfg.CtrlBytes, ccsRank, tag, cpu)
		if st.head >= 0 {
			host.Requires(req, st.head)
		}
		crecv := ccs.Recv(cfg.CtrlBytes, l.Host(h), tag)
		if ccsChain[ccsIdx] >= 0 {
			ccs.Requires(crecv, ccsChain[ccsIdx])
		}
		clook := ccs.Calc(cfg.CCSLookupNs)
		ccs.Requires(clook, crecv)
		cresp := ccs.Send(cfg.CtrlBytes, l.Host(h), tag)
		ccs.Requires(cresp, clook)
		ccsChain[ccsIdx] = cresp
		loc := host.RecvOn(cfg.CtrlBytes, ccsRank, tag, cpu)
		host.Requires(loc, req)

		var done goal.OpID
		if !op.Write {
			done = genRead(b, l, cfg, h, bssIdx, op.Bytes, tag, cpu, loc, &bssChain[bssIdx])
		} else {
			done = genWrite(b, l, cfg, h, bssIdx, op.Bytes, tag, cpu, loc, bssChain)
			// CCS notifies the metadata service asynchronously
			note := ccs.Send(cfg.CtrlBytes, l.MDS(), tag)
			ccs.Requires(note, clook)
			mrecv := mds.Recv(cfg.CtrlBytes, ccsRank, tag)
			if mdsChain >= 0 {
				mds.Requires(mrecv, mdsChain)
			}
			mupd := mds.Calc(cfg.MDSUpdateNs)
			mds.Requires(mupd, mrecv)
			mdsChain = mupd
		}
		think := host.CalcOn(cfg.HostThinkNs, cpu)
		host.Requires(think, done)
		st.head = think
	}

	s := b.Build()
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	return s, &l, nil
}

// genRead: host -> BSS request, BSS media read, BSS -> host data.
func genRead(b *goal.Builder, l Layout, cfg Config, h, bssIdx int, bytes int64, tag, cpu int32, after goal.OpID, bssChain *goal.OpID) goal.OpID {
	host := b.Rank(l.Host(h))
	bss := b.Rank(l.BSSRank(bssIdx))
	req := host.SendOn(cfg.CtrlBytes, l.BSSRank(bssIdx), tag, cpu)
	host.Requires(req, after)
	brecv := bss.Recv(cfg.CtrlBytes, l.Host(h), tag)
	if *bssChain >= 0 {
		bss.Requires(brecv, *bssChain)
	}
	bread := bss.Calc(cfg.BSSReadNs)
	bss.Requires(bread, brecv)
	bdata := bss.Send(bytes, l.Host(h), tag)
	bss.Requires(bdata, bread)
	*bssChain = bdata
	data := host.RecvOn(bytes, l.BSSRank(bssIdx), tag, cpu)
	host.Requires(data, req)
	return data
}

// genWrite: host streams data to the primary BSS, which forwards to
// Replicas-1 secondaries; secondaries ack the primary, the primary acks
// the host.
func genWrite(b *goal.Builder, l Layout, cfg Config, h, primary int, bytes int64, tag, cpu int32, after goal.OpID, bssChain []goal.OpID) goal.OpID {
	host := b.Rank(l.Host(h))
	prim := b.Rank(l.BSSRank(primary))
	data := host.SendOn(bytes, l.BSSRank(primary), tag, cpu)
	host.Requires(data, after)
	precv := prim.Recv(bytes, l.Host(h), tag)
	if bssChain[primary] >= 0 {
		prim.Requires(precv, bssChain[primary])
	}
	pwrite := prim.Calc(cfg.BSSWriteNs)
	prim.Requires(pwrite, precv)
	// replicate to the next Replicas-1 BSS instances
	acks := make([]goal.OpID, 0, cfg.Replicas-1)
	for r := 1; r < cfg.Replicas; r++ {
		sec := (primary + r) % cfg.BSS
		secRank := l.BSSRank(sec)
		fw := prim.Send(bytes, secRank, tag)
		prim.Requires(fw, precv)
		sb := b.Rank(secRank)
		srecv := sb.Recv(bytes, l.BSSRank(primary), tag)
		if bssChain[sec] >= 0 {
			sb.Requires(srecv, bssChain[sec])
		}
		swrite := sb.Calc(cfg.BSSWriteNs)
		sb.Requires(swrite, srecv)
		sack := sb.Send(cfg.CtrlBytes, l.BSSRank(primary), tag)
		sb.Requires(sack, swrite)
		bssChain[sec] = sack
		pack := prim.Recv(cfg.CtrlBytes, secRank, tag)
		prim.Requires(pack, precv)
		acks = append(acks, pack)
	}
	ack := prim.Send(cfg.CtrlBytes, l.Host(h), tag)
	prim.Requires(ack, pwrite)
	for _, a := range acks {
		prim.Requires(ack, a)
	}
	bssChain[primary] = ack
	hack := host.RecvOn(cfg.CtrlBytes, l.BSSRank(primary), tag, cpu)
	host.Requires(hack, data)
	return hack
}

func sessTag(host int) int32 { return int32(1<<28 + host) }
func opTag(opIdx int) int32  { return int32(opIdx + 1) }

// String describes the layout for reports.
func (l Layout) String() string {
	return fmt.Sprintf("directdrive{hosts=%d ccs=%d bss=%d +mds+gs+slb = %d ranks}",
		l.Hosts, l.CCS, l.BSS, l.NumRanks())
}
