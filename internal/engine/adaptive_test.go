package engine

import (
	"reflect"
	"testing"

	"atlahs/internal/simtime"
)

// TestAdaptiveMatchesFixedWindows pins the adaptive-window guarantee:
// widened per-lane windows change how many barriers a run crosses, never
// what executes — logs, clocks and event counts must be bit-identical to
// fixed windows at every worker count.
func TestAdaptiveMatchesFixedWindows(t *testing.T) {
	const lanes, rounds = 16, 40
	step, hop := 3*simtime.Microsecond, 5*simtime.Microsecond
	fixedEng := NewParallel(lanes, 4, hop)
	fixedEng.SetAdaptive(false)
	if fixedEng.Adaptive() {
		t.Fatal("SetAdaptive(false) did not stick")
	}
	fixedLogs, fixedEnd := driveLattice(fixedEng, lanes, rounds, step, hop)
	for _, workers := range []int{1, 2, 4, 8} {
		eng := NewParallel(lanes, workers, hop)
		if !eng.Adaptive() {
			t.Fatal("adaptive windowing must be the default")
		}
		logs, end := driveLattice(eng, lanes, rounds, step, hop)
		if end != fixedEnd {
			t.Fatalf("workers=%d: adaptive end %v, fixed end %v", workers, end, fixedEnd)
		}
		if got, want := eng.EventsProcessed(), fixedEng.EventsProcessed(); got != want {
			t.Fatalf("workers=%d: adaptive processed %d events, fixed %d", workers, got, want)
		}
		if !reflect.DeepEqual(logs, fixedLogs) {
			t.Fatalf("workers=%d: adaptive execution log diverged from fixed windows", workers)
		}
	}
}

// TestAdaptiveSparseLanesFastForward exercises the widened minimum-lane
// bound on the workload it exists for: one busy lane far behind a set of
// idle-but-nonempty lanes. The run must complete with the exact event
// interleaving of the serial engine.
func TestAdaptiveSparseLanesFastForward(t *testing.T) {
	const lanes = 8
	hop := 5 * simtime.Microsecond
	build := func(eng Sim) *[]string {
		log := &[]string{}
		// Lane 0 ticks alone through a long quiet stretch, then pokes the
		// other lanes, which answer back — the sparse phase an adaptive
		// window crosses in half the barriers.
		var tick func(round int)
		tick = func(round int) {
			*log = append(*log, eng.Lane(0).Now().String())
			if round < 50 {
				eng.Lane(0).After(simtime.Microsecond, func() { tick(round + 1) })
				return
			}
			for l := 1; l < lanes; l++ {
				dst := l
				eng.Lane(0).ScheduleOn(dst, eng.Lane(0).Now().Add(hop), func() {
					*log = append(*log, eng.Lane(dst).Now().String())
				})
			}
		}
		eng.Lane(0).Schedule(0, func() { tick(0) })
		// The idle lanes hold one far-future event each so they stay
		// nonempty (the minOther bound applies) without participating.
		for l := 1; l < lanes; l++ {
			dst := l
			eng.Lane(dst).Schedule(simtime.Time(500*simtime.Microsecond), func() {
				*log = append(*log, "late "+eng.Lane(dst).Now().String())
			})
		}
		return log
	}
	serial := New()
	serialLog := build(serial)
	serialEnd := serial.Run()
	for _, workers := range []int{1, 2, 4} {
		eng := NewParallel(lanes, workers, hop)
		parLog := build(eng)
		parEnd := eng.Run()
		if parEnd != serialEnd {
			t.Fatalf("workers=%d: end %v, serial %v", workers, parEnd, serialEnd)
		}
		if len(*parLog) != len(*serialLog) {
			t.Fatalf("workers=%d: %d log entries, serial %d", workers, len(*parLog), len(*serialLog))
		}
	}
}

// TestEngineAllocsPerEvent is the allocation-regression gate on the
// per-event hot path: with the typed 4-ary heaps and a pre-sized queue, a
// steady-state event (pop, run, push a successor) must not allocate.
func TestEngineAllocsPerEvent(t *testing.T) {
	const events = 1000
	t.Run("serial", func(t *testing.T) {
		e := New()
		e.Reserve(16)
		count := 0
		var fn Handler
		fn = func() {
			count++
			if count < events {
				e.After(simtime.Nanosecond, fn)
			}
		}
		// Warm up so the heap and closure are steady state, then measure.
		allocs := testing.AllocsPerRun(5, func() {
			e.Reset()
			count = 0
			e.Schedule(0, fn)
			e.Run()
		})
		if per := allocs / events; per > 0.01 {
			t.Fatalf("serial engine allocates %.3f times per event (%.0f per %d-event run); the hot path must be allocation-free", per, allocs, events)
		}
	})
	t.Run("parallel-lane", func(t *testing.T) {
		// Workers=1 keeps AllocsPerRun meaningful (no pool goroutines
		// allocating concurrently); the lane push/pop path is identical
		// under more workers.
		p := NewParallel(2, 1, simtime.Microsecond)
		p.ReserveLane(0, 16)
		count := 0
		var fn Handler
		fn = func() {
			count++
			if count < events {
				p.Lane(0).After(simtime.Nanosecond, fn)
			}
		}
		allocs := testing.AllocsPerRun(5, func() {
			p.Reset()
			count = 0
			p.Lane(0).Schedule(0, fn)
			p.Run()
		})
		if per := allocs / events; per > 0.01 {
			t.Fatalf("parallel lane allocates %.3f times per event (%.0f per %d-event run); the hot path must be allocation-free", per, allocs, events)
		}
	})
}
