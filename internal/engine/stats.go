package engine

import "atlahs/internal/simtime"

// Tracer receives execution spans from the engine: one LaneWindow call
// per (window, active lane) pair that executed at least one event,
// spanning the lane's first to last executed event of that window. The
// engine calls it from the coordinating goroutine between window
// dispatches, never concurrently with itself. The interface is defined
// here and satisfied structurally (telemetry.Timeline implements it),
// so the engine stays free of telemetry imports and — with no tracer
// attached — free of any per-event or per-window recording cost.
type Tracer interface {
	LaneWindow(lane int, from, to simtime.Time, events uint64)
}

// RunStats are an engine's execution counters, accumulated across Run
// calls until Reset. All fields are deterministic for a given schedule
// and engine configuration except the execution-strategy counters
// (InlineWindows, DispatchedWindows, WorkerWakeups), which depend on
// the worker budget; window counts depend only on the lane heads, never
// on workers.
type RunStats struct {
	// Events is the number of events executed.
	Events uint64
	// PeakPending is the high-water mark of queued events: sampled per
	// event on the serial engine, per window (summed across lanes) on the
	// parallel engine.
	PeakPending int
	// Windows is the number of conservative windows executed (parallel
	// engine only).
	Windows uint64
	// WidenedWindows counts windows whose minimum-lane bound the adaptive
	// mode widened past the fixed m1+lookahead window.
	WidenedWindows uint64
	// InlineWindows counts windows run inline on the coordinator (low
	// occupancy or a serial worker budget) with no barrier hand-off.
	InlineWindows uint64
	// DispatchedWindows counts windows executed on the worker pool.
	DispatchedWindows uint64
	// WorkerWakeups is the total worker wakeups sent across dispatched
	// windows — the lane-batching effectiveness measure.
	WorkerWakeups uint64
	// ActiveLanes sums the active-lane count over all windows; divided by
	// Windows it is the mean window occupancy.
	ActiveLanes uint64
	// MaxActiveLanes is the largest single-window active-lane count.
	MaxActiveLanes int
}

// Stats returns the serial engine's counters.
func (e *Engine) Stats() RunStats {
	return RunStats{Events: e.Processed, PeakPending: e.peak}
}

// Stats returns the parallel engine's counters. Like EventsProcessed it
// is only meaningful between windows or after Run.
func (p *ParEngine) Stats() RunStats {
	st := p.stats
	st.Events = p.EventsProcessed()
	return st
}

// SetTracer attaches (or, with nil, detaches) the execution tracer.
// Only valid outside Run.
func (p *ParEngine) SetTracer(t Tracer) {
	if p.running {
		panic("engine: SetTracer during Run")
	}
	p.tracer = t
}
