package engine

import (
	"testing"
	"testing/quick"

	"atlahs/internal/simtime"
	"atlahs/internal/xrand"
)

func TestRunOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v not FIFO", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	hits := 0
	e.Schedule(1, func() {
		hits++
		e.After(2, func() {
			hits++
			if e.Now() != 3 {
				t.Errorf("nested event at %v, want 3", e.Now())
			}
		})
	})
	e.Run()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 after Stop", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []simtime.Time
	for _, at := range []simtime.Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	now := e.RunUntil(12)
	if now != 12 {
		t.Fatalf("now = %v, want 12", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v after Run", fired)
	}
}

func TestReset(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.Run()
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed != 0 {
		t.Fatal("Reset did not clear state")
	}
	ran := false
	e.Schedule(1, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("engine unusable after Reset")
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestMonotonicProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := xrand.New(seed)
		e := New()
		cnt := int(n%64) + 1
		var seen []simtime.Time
		for i := 0; i < cnt; i++ {
			at := simtime.Time(rng.Int63n(1000))
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		if len(seen) != cnt {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	rng := xrand.New(42)
	b.ReportAllocs()
	// self-perpetuating event chain with fan-out 1, random future offsets
	var step func()
	remaining := b.N
	step = func() {
		remaining--
		if remaining > 0 {
			e.After(simtime.Duration(rng.Int63n(100)+1), step)
		}
	}
	e.Schedule(0, step)
	b.ResetTimer()
	e.Run()
}
