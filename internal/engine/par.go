package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"atlahs/internal/simtime"
)

// ParEngine is a conservative parallel discrete-event engine (the
// parallelisation the ATLAHS paper applied to LogGOPSim, §5). Simulation
// state is partitioned into lanes — one per GOAL rank — and time advances
// in windows bounded by `lookahead`: because no cross-lane interaction can
// take effect sooner than the model's minimum cross-rank delay (the
// LogGOPS wire latency L), every lane can execute its events inside the
// window [T, T+lookahead) independently. Worker goroutines process lanes
// concurrently; cross-lane events produced during a window are buffered
// per source lane and delivered at the window barrier.
//
// Adaptive windowing (the default; see SetAdaptive) widens each lane's
// window to its individually provable bound instead of the uniform
// T+lookahead. With h_i the lanes' earliest pending event times, la the
// lookahead, and minOther_i the smallest head among the *other* non-empty
// lanes, lane i may safely run to
//
//	end_i = min(minOther_i + la, h_i + 2·la)
//
// Soundness: a cross-lane event sent directly to lane i by some lane j is
// stamped at ≥ h_j + la ≥ minOther_i + la ≥ end_i, and any chain of
// reactions gains at least la per hop, so the earliest round trip back
// into the window's minimum lane arrives at ≥ h_min + 2·la ≥ end_min
// (execution is strictly before end, so arrival exactly at end is safe).
// For every lane except the unique minimum this reduces to the classic
// h_min + la window; the minimum lane — and in particular a lane running
// alone, minOther = ∞ — fast-forwards through quiet stretches in 2·la
// strides instead of la, halving the number of barriers on sparse phases.
// The bound never changes *which* events a lane executes before any event
// it could receive, only how many barriers separate them, so results are
// bit-identical to fixed windows. Low-occupancy windows are additionally
// batched onto fewer workers (and run inline on the coordinator when only
// a handful of lanes are active) to keep the wakeup/barrier cost
// proportional to the work available.
//
// Determinism: every event carries the key (at, schedAt, schedLane,
// schedSeq), assigned at scheduling time from the scheduling lane's own
// clock and counter. The key is a function of each lane's deterministic
// execution history only — never of cross-lane goroutine interleaving or
// window placement — and each lane executes its events in key order. The
// simulation therefore evolves identically for any worker count and for
// either windowing mode; workers change wall-clock time, nothing else.
//
// Relative to the serial Engine, which breaks same-timestamp ties by
// global insertion order, execution is identical except in one corner:
// two handlers on *different* lanes firing at the *same* timestamp and
// scheduling events for one target at the same time tie on (at, schedAt)
// and fall through to lane order, where the serial engine would use the
// handlers' own execution order. The equivalence suite in
// internal/backend/par_test.go pins serial == parallel on the LGS
// workloads; within the parallel engine, results never depend on the
// worker count.
type ParEngine struct {
	workers   int
	lookahead simtime.Duration
	lanes     []*lane
	running   bool
	adaptive  bool
	stop      atomic.Bool
	now       simtime.Time
	// stats accumulates the coordinator-side window counters (see
	// RunStats); all writes happen on the coordinating goroutine.
	stats RunStats
	// tracer, when non-nil, receives per-lane window spans (SetTracer).
	tracer Tracer
}

// pevent is a parallel-engine event with its deterministic ordering key.
type pevent struct {
	at        simtime.Time
	schedAt   simtime.Time
	schedLane int32
	schedSeq  uint64
	fn        Handler
}

func (a pevent) before(b pevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.schedLane != b.schedLane {
		return a.schedLane < b.schedLane
	}
	return a.schedSeq < b.schedSeq
}

// peventHeap is a typed 4-ary min-heap ordered by the event key. Compared
// to container/heap it avoids the interface{} boxing allocation on every
// push and halves the tree depth, which matters: queue operations dominate
// the engine's per-event cost.
type peventHeap []pevent

func (h *peventHeap) push(ev pevent) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q[i].before(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *peventHeap) pop() pevent {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = pevent{}
	q = q[:n]
	*h = q
	if n > 0 {
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q[j].before(q[m]) {
					m = j
				}
			}
			if !q[m].before(last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return top
}

// outEvent is a cross-lane event buffered until the window barrier.
type outEvent struct {
	dst int
	ev  pevent
}

// lane is one shard of the simulation: its own clock, event queue and
// scheduling counter. During a window a lane is touched by exactly one
// worker goroutine; between windows only the coordinating goroutine runs.
type lane struct {
	id        int
	eng       *ParEngine
	now       simtime.Time
	seq       uint64
	queue     peventHeap
	processed uint64
	// out buffers this lane's cross-lane events until the window barrier.
	// It is truncated, never freed, so the outbox allocation is amortised
	// across all windows of a run.
	out []outEvent
	// end is this window's per-lane execution bound, set by the
	// coordinator before dispatch (see Run for the adaptive bound).
	end simtime.Time
	// openAt/openDone snapshot the lane's head time and processed count
	// at window open; only written when a Tracer is attached, so traced
	// runs pay two coordinator-side stores per active lane per window and
	// untraced runs pay nothing.
	openAt   simtime.Time
	openDone uint64
}

// NewParallel creates a parallel engine with `lanes` lanes advancing under
// a conservative window of width `lookahead` (must be positive: it is the
// model's guaranteed minimum cross-lane delay). workers <= 0 means
// GOMAXPROCS.
func NewParallel(lanes, workers int, lookahead simtime.Duration) *ParEngine {
	if lanes <= 0 {
		panic(fmt.Sprintf("engine: non-positive lane count %d", lanes))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("engine: non-positive lookahead %v (the model must guarantee a minimum cross-lane delay)", lookahead))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParEngine{workers: workers, lookahead: lookahead, adaptive: true, lanes: make([]*lane, lanes)}
	for i := range p.lanes {
		p.lanes[i] = &lane{id: i, eng: p}
	}
	return p
}

// SetAdaptive switches between adaptive per-lane windows (the default)
// and classic uniform T+lookahead windows. Both modes produce
// bit-identical results; fixed windows exist for paired benchmarking and
// as a belt-and-braces escape hatch. Only valid outside Run.
func (p *ParEngine) SetAdaptive(on bool) {
	if p.running {
		panic("engine: SetAdaptive during Run")
	}
	p.adaptive = on
}

// Adaptive reports whether adaptive windowing is enabled.
func (p *ParEngine) Adaptive() bool { return p.adaptive }

// ReserveLane pre-sizes one lane's event heap for at least n pending
// events (see Engine.Reserve). Only valid outside Run.
func (p *ParEngine) ReserveLane(ln, n int) {
	l := p.lanes[ln]
	if cap(l.queue) >= n {
		return
	}
	q := make(peventHeap, len(l.queue), n)
	copy(q, l.queue)
	l.queue = q
}

// Lanes reports the number of lanes.
func (p *ParEngine) Lanes() int { return len(p.lanes) }

// Workers reports the worker-goroutine budget.
func (p *ParEngine) Workers() int { return p.workers }

// Lookahead reports the conservative window width.
func (p *ParEngine) Lookahead() simtime.Duration { return p.lookahead }

// Now implements Sim. On the root engine it is the time of the last
// executed event (lanes carry their own clocks while running).
func (p *ParEngine) Now() simtime.Time { return p.now }

// Schedule implements Sim on the root engine: events without a lane
// context go to lane 0. Only valid outside Run (setup-time injection).
func (p *ParEngine) Schedule(at simtime.Time, fn Handler) { p.ScheduleOn(0, at, fn) }

// ScheduleOn implements Sim on the root engine: setup-time injection onto
// the given lane. While Run is executing, scheduling must go through lane
// views (Lane), which know their own clocks.
func (p *ParEngine) ScheduleOn(ln int, at simtime.Time, fn Handler) {
	if p.running {
		panic("engine: ScheduleOn on the root ParEngine during Run; schedule through a Lane view")
	}
	p.lanes[ln].Schedule(at, fn)
}

// After implements Sim on the root engine (setup-time only, lane 0).
func (p *ParEngine) After(d simtime.Duration, fn Handler) { p.Schedule(p.now.Add(d), fn) }

// Lane implements Sim.
func (p *ParEngine) Lane(ln int) Sim { return p.lanes[ln] }

// EventsProcessed implements Sim. Call it between windows or after Run.
func (p *ParEngine) EventsProcessed() uint64 {
	var n uint64
	for _, l := range p.lanes {
		n += l.processed
	}
	return n
}

// Pending reports the number of queued events across all lanes.
func (p *ParEngine) Pending() int {
	n := 0
	for _, l := range p.lanes {
		n += len(l.queue) + len(l.out)
	}
	return n
}

// Stop makes Run return after the events currently executing complete.
func (p *ParEngine) Stop() { p.stop.Store(true) }

// Reset discards all pending events and rewinds every lane to time zero.
func (p *ParEngine) Reset() {
	for _, l := range p.lanes {
		l.now, l.seq, l.processed = 0, 0, 0
		l.queue = l.queue[:0]
		l.out = l.out[:0]
	}
	p.now = 0
	p.stats = RunStats{}
	p.stop.Store(false)
}

// Run implements Sim: windowed conservative parallel execution until every
// lane drains or Stop is called. Returns the time of the last executed
// event. Worker goroutines are spawned once here and fed windows through a
// channel, rather than spawned per window: long simulations with a small
// lookahead execute many thousands of windows, and the per-window
// spawn/join overhead was measurable (see BenchmarkParEngineVsSerial).
func (p *ParEngine) Run() simtime.Time {
	p.running = true
	p.stop.Store(false)
	defer func() { p.running = false }()
	var pool *winPool
	if p.workers > 1 && len(p.lanes) > 1 {
		pool = newWinPool(p.workers)
		defer pool.close()
	}
	active := make([]*lane, 0, len(p.lanes))
	for !p.stop.Load() {
		// The window base is the earliest pending event anywhere; every
		// event executed this window is >= T, so cross-lane events (>= its
		// lane's now + lookahead) land at or beyond the window end. The
		// scan also tracks the second-smallest head (m2, counting
		// duplicates of the minimum), which the adaptive bound needs.
		var m1, m2 simtime.Time
		nheads, pending := 0, 0
		for _, l := range p.lanes {
			pending += len(l.queue)
			if len(l.queue) == 0 {
				continue
			}
			h := l.queue[0].at
			switch {
			case nheads == 0:
				m1 = h
			case h < m1:
				m2 = m1
				m1 = h
			case nheads == 1 || h < m2:
				m2 = h
			}
			nheads++
		}
		if nheads == 0 {
			break
		}
		if pending > p.stats.PeakPending {
			p.stats.PeakPending = pending
		}
		p.stats.Windows++
		windowEnd := m1.Add(p.lookahead)
		// Adaptive bound for lanes at the minimum head: min(minOther +
		// la, m1 + 2·la), where minOther is m2, or absent entirely when
		// this is the only non-empty lane. With several lanes tied at the
		// minimum, m2 == m1 and the bound collapses to the fixed window —
		// no special casing needed. See the type comment for the
		// soundness argument.
		minEnd := windowEnd
		if p.adaptive {
			minEnd = m1.Add(2 * p.lookahead)
			if nheads > 1 && m2.Add(p.lookahead) < minEnd {
				minEnd = m2.Add(p.lookahead)
			}
			if minEnd > windowEnd {
				p.stats.WidenedWindows++
			}
		}
		active = active[:0]
		for _, l := range p.lanes {
			if len(l.queue) == 0 {
				continue
			}
			h := l.queue[0].at
			end := windowEnd
			if h == m1 {
				end = minEnd
			}
			if h < end {
				l.end = end
				active = append(active, l)
			}
		}
		p.stats.ActiveLanes += uint64(len(active))
		if len(active) > p.stats.MaxActiveLanes {
			p.stats.MaxActiveLanes = len(active)
		}
		if p.tracer != nil {
			for _, l := range active {
				l.openAt = l.queue[0].at
				l.openDone = l.processed
			}
		}
		p.runWindow(pool, active)
		if p.tracer != nil {
			// The pool's barrier has joined the workers, so reading each
			// lane's clock and counter here is race-free.
			for _, l := range active {
				if n := l.processed - l.openDone; n > 0 {
					p.tracer.LaneWindow(l.id, l.openAt, l.now, n)
				}
			}
		}
		// Barrier: deliver buffered cross-lane events. Heap order is fully
		// determined by the per-event keys, so delivery order is irrelevant.
		for _, l := range p.lanes {
			for _, oe := range l.out {
				p.lanes[oe.dst].queue.push(oe.ev)
			}
			l.out = l.out[:0]
		}
	}
	for _, l := range p.lanes {
		if l.now > p.now {
			p.now = l.now
		}
	}
	return p.now
}

// batchLanes is the low-occupancy batching factor: a window wakes at most
// one worker per batchLanes active lanes, so sparse windows (a handful of
// lanes with work) pay for one or two channel wakeups instead of a full
// complement, and a near-empty window runs inline on the coordinator with
// no barrier at all. Purely an execution-strategy knob — per-lane event
// order is fixed by the keys, so batching cannot affect results.
const batchLanes = 4

// runWindow executes every active lane up to (strictly before) its
// per-lane end, spreading lanes across the pool's persistent worker
// goroutines.
func (p *ParEngine) runWindow(pool *winPool, active []*lane) {
	nw := p.workers
	if nw > len(active) {
		nw = len(active)
	}
	if p.adaptive {
		if batched := (len(active) + batchLanes - 1) / batchLanes; nw > batched {
			nw = batched
		}
	}
	if pool == nil || nw <= 1 {
		p.stats.InlineWindows++
		for _, l := range active {
			l.runTo(l.end)
		}
		return
	}
	p.stats.DispatchedWindows++
	p.stats.WorkerWakeups += uint64(nw)
	pool.dispatch(nw, active)
}

// winPool is the persistent window-execution pool: its goroutines live for
// the whole Run and pick up one window after another, so the steady-state
// per-window cost is channel wakeups instead of goroutine spawns. The
// window description lives on the pool (published before the wakeup sends,
// collected after the barrier), so dispatching allocates nothing.
type winPool struct {
	// jobs carries one wakeup token per participating worker per window;
	// closing it retires the pool.
	jobs chan struct{}
	// active describes the current window (each lane carries its own
	// execution bound in lane.end); written by the coordinator before the
	// wakeup sends and read by workers after receiving one.
	active []*lane
	// next is the shared lane-stealing cursor.
	next atomic.Int64
	// wg is the window barrier.
	wg sync.WaitGroup
	// panics collects worker panics for rethrow on the coordinator.
	panics chan interface{}
}

// newWinPool starts `workers` persistent window workers.
func newWinPool(workers int) *winPool {
	wp := &winPool{
		jobs:   make(chan struct{}, workers),
		panics: make(chan interface{}, workers),
	}
	for w := 0; w < workers; w++ {
		go wp.worker()
	}
	return wp
}

// worker processes window wakeups until the pool closes.
func (wp *winPool) worker() {
	for range wp.jobs {
		wp.runShard()
		wp.wg.Done()
	}
}

// runShard steals lanes off the current window until none remain.
func (wp *winPool) runShard() {
	defer func() {
		if r := recover(); r != nil {
			wp.panics <- r
		}
	}()
	for {
		i := int(wp.next.Add(1) - 1)
		if i >= len(wp.active) {
			return
		}
		l := wp.active[i]
		l.runTo(l.end)
	}
}

// dispatch runs one window across nw workers and blocks until the barrier.
// A worker panic is rethrown here, after the remaining workers finish, so
// the engine's failure mode matches the old spawn-per-window behaviour.
func (wp *winPool) dispatch(nw int, active []*lane) {
	wp.active = active
	wp.next.Store(0)
	wp.wg.Add(nw)
	for w := 0; w < nw; w++ {
		wp.jobs <- struct{}{}
	}
	wp.wg.Wait()
	wp.active = nil
	select {
	case r := <-wp.panics:
		panic(r)
	default:
	}
}

// close retires the pool's goroutines.
func (wp *winPool) close() { close(wp.jobs) }

// runTo executes the lane's events with timestamps strictly before end.
func (l *lane) runTo(end simtime.Time) {
	for len(l.queue) > 0 && l.queue[0].at < end && !l.eng.stop.Load() {
		ev := l.queue.pop()
		l.now = ev.at
		l.processed++
		ev.fn()
	}
}

// Now implements Sim for a lane view.
func (l *lane) Now() simtime.Time { return l.now }

// Schedule implements Sim for a lane view: a lane-local event, ordered by
// the deterministic key stamped here.
func (l *lane) Schedule(at simtime.Time, fn Handler) {
	if at < l.now {
		panic(fmt.Sprintf("engine: lane %d scheduling event at %v before now %v", l.id, at, l.now))
	}
	ev := pevent{at: at, schedAt: l.now, schedLane: int32(l.id), schedSeq: l.seq, fn: fn}
	l.seq++
	l.queue.push(ev)
}

// ScheduleOn implements Sim for a lane view. Cross-lane events must
// respect the lookahead window while the engine is running; violations are
// model bugs (the backend promised a larger minimum delay than it honours)
// and panic immediately.
func (l *lane) ScheduleOn(dst int, at simtime.Time, fn Handler) {
	if dst == l.id {
		l.Schedule(at, fn)
		return
	}
	ev := pevent{at: at, schedAt: l.now, schedLane: int32(l.id), schedSeq: l.seq, fn: fn}
	l.seq++
	if l.eng.running {
		if at < l.now.Add(l.eng.lookahead) {
			panic(fmt.Sprintf("engine: lane %d -> %d event at %v violates lookahead %v from now %v",
				l.id, dst, at, l.eng.lookahead, l.now))
		}
		l.out = append(l.out, outEvent{dst: dst, ev: ev})
		return
	}
	// Setup time is single-goroutine: deliver directly.
	if at < l.now {
		panic(fmt.Sprintf("engine: lane %d scheduling event at %v before now %v", l.id, at, l.now))
	}
	l.eng.lanes[dst].queue.push(ev)
}

// After implements Sim for a lane view.
func (l *lane) After(d simtime.Duration, fn Handler) { l.Schedule(l.now.Add(d), fn) }

// Lane implements Sim for a lane view.
func (l *lane) Lane(ln int) Sim { return l.eng.lanes[ln] }

// Run implements Sim for a lane view; only the root engine can run.
func (l *lane) Run() simtime.Time {
	panic("engine: Run called on a lane view; call Run on the ParEngine")
}

// EventsProcessed implements Sim for a lane view (whole-engine count).
// Like the root method it is only meaningful between windows or after Run:
// calling it from a handler while other workers are mid-window would read
// their counters racily.
func (l *lane) EventsProcessed() uint64 { return l.eng.EventsProcessed() }
