package engine

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"atlahs/internal/simtime"
)

// driveLattice runs a synthetic multi-lane workload on any Sim: each lane
// executes `rounds` events spaced `step` apart, and every event forwards a
// token to the next lane at now+hop (hop >= the parallel lookahead). It
// returns a per-lane log of (lane, time, round) tuples plus the engine's
// final time, which together fingerprint the execution.
func driveLattice(eng Sim, lanes, rounds int, step, hop simtime.Duration) ([][]string, simtime.Time) {
	logs := make([][]string, lanes)
	var tick func(lane, round int)
	tick = func(lane, round int) {
		ln := eng.Lane(lane)
		logs[lane] = append(logs[lane], fmt.Sprintf("lane %d round %d at %v", lane, round, ln.Now()))
		if round >= rounds {
			return
		}
		ln.After(step, func() { tick(lane, round+1) })
		next := (lane + 1) % lanes
		from := lane
		ln.ScheduleOn(next, ln.Now().Add(hop), func() {
			logs[next] = append(logs[next], fmt.Sprintf("token %d->%d round %d at %v",
				from, next, round, eng.Lane(next).Now()))
		})
	}
	for l := 0; l < lanes; l++ {
		lane := l
		eng.Lane(lane).Schedule(simtime.Time(lane)*simtime.Time(simtime.Nanosecond), func() { tick(lane, 0) })
	}
	end := eng.Run()
	return logs, end
}

// TestParEngineDeterministicAcrossWorkers is the core determinism
// guarantee: the same workload executes identically — same per-lane event
// sequences, same clocks, same event counts — at 1, 2, 4 and 8 workers.
func TestParEngineDeterministicAcrossWorkers(t *testing.T) {
	const lanes, rounds = 16, 40
	step, hop := 3*simtime.Microsecond, 5*simtime.Microsecond
	var refLogs [][]string
	var refEnd simtime.Time
	var refProcessed uint64
	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			eng := NewParallel(lanes, workers, hop)
			logs, end := driveLattice(eng, lanes, rounds, step, hop)
			if refLogs == nil {
				refLogs, refEnd, refProcessed = logs, end, eng.EventsProcessed()
				continue
			}
			if end != refEnd {
				t.Fatalf("workers=%d rep=%d: end %v, want %v", workers, rep, end, refEnd)
			}
			if got := eng.EventsProcessed(); got != refProcessed {
				t.Fatalf("workers=%d rep=%d: %d events, want %d", workers, rep, got, refProcessed)
			}
			if !reflect.DeepEqual(logs, refLogs) {
				t.Fatalf("workers=%d rep=%d: execution log diverged", workers, rep)
			}
		}
	}
}

// TestParEngineMatchesSerialEngine runs the same lattice on the serial
// engine: per-lane event sequences and the final clock must coincide.
func TestParEngineMatchesSerialEngine(t *testing.T) {
	const lanes, rounds = 8, 25
	step, hop := 2*simtime.Microsecond, 7*simtime.Microsecond
	serLogs, serEnd := driveLattice(New(), lanes, rounds, step, hop)
	parLogs, parEnd := driveLattice(NewParallel(lanes, 4, hop), lanes, rounds, step, hop)
	if parEnd != serEnd {
		t.Fatalf("parallel end %v, serial end %v", parEnd, serEnd)
	}
	if !reflect.DeepEqual(parLogs, serLogs) {
		t.Fatalf("parallel execution log diverged from serial")
	}
}

// TestParEngineLaneOrdering checks the deterministic key: same-lane events
// at one timestamp fire in scheduling order, and a lane's clock never runs
// backwards.
func TestParEngineLaneOrdering(t *testing.T) {
	eng := NewParallel(2, 2, simtime.Microsecond)
	var got []int
	l0 := eng.Lane(0)
	at := simtime.Time(100)
	for i := 0; i < 5; i++ {
		i := i
		l0.Schedule(at, func() { got = append(got, i) })
	}
	eng.Run()
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("same-time events fired as %v, want %v", got, want)
	}
}

func TestParEngineLookaheadViolationPanics(t *testing.T) {
	eng := NewParallel(2, 2, simtime.Microsecond)
	eng.Lane(0).Schedule(0, func() {
		// Cross-lane event closer than the lookahead: a model bug that must
		// be caught loudly, not silently reordered.
		eng.Lane(0).ScheduleOn(1, simtime.Time(10*simtime.Nanosecond), func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	eng.Run()
}

func TestParEngineSchedulingInPastPanics(t *testing.T) {
	eng := NewParallel(1, 1, simtime.Microsecond)
	eng.Lane(0).Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected past-scheduling panic")
			}
		}()
		eng.Lane(0).Schedule(50, func() {})
	})
	eng.Run()
}

func TestParEngineStopAndReset(t *testing.T) {
	eng := NewParallel(4, 4, simtime.Microsecond)
	var fired atomic.Int64
	for l := 0; l < 4; l++ {
		ln := eng.Lane(l)
		ln.Schedule(0, func() {
			fired.Add(1)
			eng.Stop()
		})
		ln.Schedule(simtime.Time(simtime.Second), func() { fired.Add(1) })
	}
	eng.Run()
	if eng.Pending() == 0 {
		t.Fatal("Stop should leave the far-future events queued")
	}
	eng.Reset()
	if eng.Pending() != 0 || eng.Now() != 0 || eng.EventsProcessed() != 0 {
		t.Fatalf("Reset left state behind: pending=%d now=%v processed=%d",
			eng.Pending(), eng.Now(), eng.EventsProcessed())
	}
}

func TestNewParallelRejectsBadConfig(t *testing.T) {
	for _, c := range []struct {
		name      string
		lanes     int
		lookahead simtime.Duration
	}{
		{"zero lanes", 0, simtime.Microsecond},
		{"zero lookahead", 4, 0},
		{"negative lookahead", 4, -simtime.Microsecond},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewParallel(c.lanes, 2, c.lookahead)
		})
	}
}
