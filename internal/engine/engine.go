// Package engine implements the deterministic discrete-event core that
// drives every ATLAHS simulation backend.
//
// The engine maintains a 4-ary min-heap of pending events ordered by
// (timestamp, sequence number). Ties in timestamp are broken by insertion
// order, which makes every simulation fully deterministic: identical inputs
// produce identical event interleavings and therefore identical results.
// All backends (LogGOPS message-level, packet-level, fluid-flow) schedule
// their work through a single Engine instance per simulation.
package engine

import (
	"fmt"

	"atlahs/internal/simtime"
)

// Handler is the callback invoked when an event fires. It runs at the
// event's timestamp; Engine.Now() returns that timestamp during the call.
type Handler func()

// Sim is the simulation-clock contract shared by the serial Engine and the
// parallel ParEngine. Backends and the scheduler program against it, so a
// simulation can run on either engine unchanged.
//
// Lanes partition simulation state for parallel execution; in ATLAHS one
// lane corresponds to one GOAL rank. A handler running on lane r may touch
// only lane-r state and may schedule further lane-r events at any time >=
// now via Schedule. Events for another lane must go through ScheduleOn and
// — on the parallel engine — must lie at least the engine's lookahead after
// the current time. The serial Engine ignores lanes entirely: Lane returns
// the engine itself and ScheduleOn behaves like Schedule, so serial code
// pays no cost for the contract.
type Sim interface {
	// Now returns the current simulated time of the calling context (the
	// lane's clock on the parallel engine).
	Now() simtime.Time
	// Schedule enqueues fn at absolute time at on the current lane.
	Schedule(at simtime.Time, fn Handler)
	// ScheduleOn enqueues fn at absolute time at on the given lane. On the
	// parallel engine, cross-lane events must satisfy the lookahead window
	// (at >= Now() + lookahead) while the engine is running.
	ScheduleOn(lane int, at simtime.Time, fn Handler)
	// After enqueues fn to run d after the current time on the current lane.
	After(d simtime.Duration, fn Handler)
	// Lane returns the Sim view for scheduling and reading time on the given
	// lane. The serial engine returns itself.
	Lane(lane int) Sim
	// Run executes events until the queues drain and returns the time of the
	// last executed event.
	Run() simtime.Time
	// EventsProcessed reports how many events have executed so far.
	EventsProcessed() uint64
}

type event struct {
	at  simtime.Time
	seq uint64
	fn  Handler
}

func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a typed 4-ary min-heap ordered by (at, seq), the same shape
// as the parallel engine's peventHeap: no container/heap interface{}
// boxing on push (which allocated on every Schedule) and half the tree
// depth of a binary heap. Keys are unique — seq strictly increases — so
// pop order is a total order and identical to the old container/heap
// implementation.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q[i].before(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	if n > 0 {
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q[j].before(q[m]) {
					m = j
				}
			}
			if !q[m].before(last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return top
}

// Engine is a single-threaded discrete-event simulator clock and queue.
// The zero value is not usable; create one with New.
type Engine struct {
	now     simtime.Time
	seq     uint64
	queue   eventHeap
	stopped bool
	// peak is the queue-depth high-water mark, sampled before each pop
	// (see Stats).
	peak int

	// Processed counts events executed so far (for stats/benchmarks).
	Processed uint64
}

// New returns an empty engine with the clock at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// panics: that is always a simulator bug, never a recoverable condition.
func (e *Engine) Schedule(at simtime.Time, fn Handler) {
	if at < e.now {
		panic(fmt.Sprintf("engine: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
}

// Reserve pre-sizes the event queue for at least n pending events, saving
// the incremental grow-and-copy cycles on schedules whose op count is
// known up front. It never shrinks and is safe with events queued.
func (e *Engine) Reserve(n int) {
	if cap(e.queue) >= n {
		return
	}
	q := make(eventHeap, len(e.queue), n)
	copy(q, e.queue)
	e.queue = q
}

// ScheduleOn implements Sim. The serial engine has a single event queue, so
// the lane is irrelevant and the call is identical to Schedule.
func (e *Engine) ScheduleOn(lane int, at simtime.Time, fn Handler) {
	e.Schedule(at, fn)
}

// After enqueues fn to run d after the current time.
func (e *Engine) After(d simtime.Duration, fn Handler) {
	e.Schedule(e.now.Add(d), fn)
}

// Lane implements Sim: every lane of the serial engine is the engine itself.
func (e *Engine) Lane(lane int) Sim { return e }

// EventsProcessed implements Sim.
func (e *Engine) EventsProcessed() uint64 { return e.Processed }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or Stop is
// called, and returns the time of the last executed event.
func (e *Engine) Run() simtime.Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if n := len(e.queue); n > e.peak {
			e.peak = n
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and returns the
// current time afterwards. Events beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline simtime.Time) simtime.Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at <= deadline {
		if n := len(e.queue); n > e.peak {
			e.peak = n
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Reset discards all pending events and rewinds the clock to zero so the
// engine can be reused for another simulation.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.queue = e.queue[:0]
	e.stopped = false
	e.peak = 0
	e.Processed = 0
}
