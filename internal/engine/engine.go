// Package engine implements the deterministic discrete-event core that
// drives every ATLAHS simulation backend.
//
// The engine maintains a binary heap of pending events ordered by
// (timestamp, sequence number). Ties in timestamp are broken by insertion
// order, which makes every simulation fully deterministic: identical inputs
// produce identical event interleavings and therefore identical results.
// All backends (LogGOPS message-level, packet-level, fluid-flow) schedule
// their work through a single Engine instance per simulation.
package engine

import (
	"container/heap"
	"fmt"

	"atlahs/internal/simtime"
)

// Handler is the callback invoked when an event fires. It runs at the
// event's timestamp; Engine.Now() returns that timestamp during the call.
type Handler func()

type event struct {
	at  simtime.Time
	seq uint64
	fn  Handler
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator clock and queue.
// The zero value is not usable; create one with New.
type Engine struct {
	now     simtime.Time
	seq     uint64
	queue   eventHeap
	stopped bool

	// Processed counts events executed so far (for stats/benchmarks).
	Processed uint64
}

// New returns an empty engine with the clock at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// panics: that is always a simulator bug, never a recoverable condition.
func (e *Engine) Schedule(at simtime.Time, fn Handler) {
	if at < e.now {
		panic(fmt.Sprintf("engine: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
}

// After enqueues fn to run d after the current time.
func (e *Engine) After(d simtime.Duration, fn Handler) {
	e.Schedule(e.now.Add(d), fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or Stop is
// called, and returns the time of the last executed event.
func (e *Engine) Run() simtime.Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and returns the
// current time afterwards. Events beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline simtime.Time) simtime.Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at <= deadline {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Reset discards all pending events and rewinds the clock to zero so the
// engine can be reused for another simulation.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.queue = e.queue[:0]
	e.stopped = false
	e.Processed = 0
}
