package analyze

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"atlahs/results"
)

// DiffOptions configures row matching for Diff.
type DiffOptions struct {
	// Keys names the columns rows are matched on; every key must exist in
	// both sweeps and key tuples must be unique within each sweep. Empty
	// means positional matching: row i of A against row i of B — the
	// right default for deterministic artifacts (service run sweeps,
	// regenerated experiment sweeps) whose row order is pinned.
	Keys []string
}

// Diff compares two validated sweeps field by field and returns the
// sparse atlahs.diff/v1 document: only changed rows, params and derived
// values are recorded, so identical sweeps produce Changed == 0 and no
// rows. Columns are paired by name; a column whose kind or unit differs
// between the sweeps is an error (the results schema is append-only, so
// a retyped column means the inputs disagree about what the data is).
func Diff(a, b *results.Sweep, opts DiffOptions) (*results.SweepDiff, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("analyze: sweep a: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("analyze: sweep b: %w", err)
	}
	d := &results.SweepDiff{A: a.Name, B: b.Name, RowsA: len(a.Rows), RowsB: len(b.Rows)}

	// Pair columns by name; record one-sided columns, reject retyped ones.
	bCols := map[string]results.Column{}
	for _, c := range b.Columns {
		bCols[c.Name] = c
	}
	aCols := map[string]results.Column{}
	var shared []results.Column
	for _, c := range a.Columns {
		aCols[c.Name] = c
		bc, ok := bCols[c.Name]
		if !ok {
			d.ColumnsOnlyA = append(d.ColumnsOnlyA, c.Name)
			continue
		}
		if bc.Kind != c.Kind || bc.Unit != c.Unit {
			return nil, fmt.Errorf("analyze: column %q is %s%s in %s but %s%s in %s; the sweeps disagree about the data",
				c.Name, c.Kind, unitSuffix(c.Unit), a.Name, bc.Kind, unitSuffix(bc.Unit), b.Name)
		}
		shared = append(shared, c)
	}
	for _, c := range b.Columns {
		if _, ok := aCols[c.Name]; !ok {
			d.ColumnsOnlyB = append(d.ColumnsOnlyB, c.Name)
		}
	}

	// Resolve key columns and match rows.
	for _, name := range opts.Keys {
		ac, ok := aCols[name]
		if !ok {
			return nil, fmt.Errorf("analyze: key column %q is not in sweep %s", name, a.Name)
		}
		if _, ok := bCols[name]; !ok {
			return nil, fmt.Errorf("analyze: key column %q is not in sweep %s", name, b.Name)
		}
		d.Keys = append(d.Keys, ac)
	}
	matchA, matchB, err := matchRows(a, b, d.Keys)
	if err != nil {
		return nil, err
	}

	// Walk A's rows in order: diff the matched ones, reference the rest.
	for i, rec := range a.Rows {
		j, ok := matchA[i]
		if !ok {
			d.RowsOnlyA = append(d.RowsOnlyA, results.RowRef{Row: i, Key: keyCells(a, d.Keys, rec)})
			continue
		}
		d.Matched++
		fields := diffFields(a, b, shared, rec, b.Rows[j])
		if len(fields) > 0 {
			d.Rows = append(d.Rows, results.RowDiff{Row: i, Key: keyCells(a, d.Keys, rec), Fields: fields})
		}
	}
	for j, rec := range b.Rows {
		if _, ok := matchB[j]; !ok {
			d.RowsOnlyB = append(d.RowsOnlyB, results.RowRef{Row: j, Key: keyCells(b, d.Keys, rec)})
		}
	}
	d.Changed = len(d.Rows)

	// Params: values differ (a missing param reads as the empty string).
	for _, key := range sortedKeys(a.Params, b.Params) {
		av, bv := a.Params[key], b.Params[key]
		if av != bv {
			d.Params = append(d.Params, results.ParamDelta{Key: key, A: av, B: bv})
		}
	}
	// Derived: changed shared aggregates, plus one-sided key lists.
	for _, key := range sortedKeys(a.Derived, b.Derived) {
		av, aok := a.Derived[key]
		bv, bok := b.Derived[key]
		switch {
		case aok && !bok:
			d.DerivedOnlyA = append(d.DerivedOnlyA, key)
		case bok && !aok:
			d.DerivedOnlyB = append(d.DerivedOnlyB, key)
		case av != bv:
			d.Derived = append(d.Derived, results.ScalarDelta{Key: key, A: av, B: bv, Abs: bv - av, Rel: relDelta(av, bv)})
		}
	}
	return d, nil
}

// matchRows pairs rows of a and b: by key tuple when key columns are
// given (duplicate tuples within one sweep are ambiguous and rejected),
// by position otherwise.
func matchRows(a, b *results.Sweep, keys []results.Column) (matchA, matchB map[int]int, err error) {
	matchA, matchB = map[int]int{}, map[int]int{}
	if len(keys) == 0 {
		n := min(len(a.Rows), len(b.Rows))
		for i := 0; i < n; i++ {
			matchA[i], matchB[i] = i, i
		}
		return matchA, matchB, nil
	}
	index := func(s *results.Sweep) (map[string]int, error) {
		idx := make(map[string]int, len(s.Rows))
		for i, rec := range s.Rows {
			k := keyString(s, keys, rec)
			if prev, dup := idx[k]; dup {
				return nil, fmt.Errorf("analyze: sweep %s: rows %d and %d share key %s; keys must be unique to match on",
					s.Name, prev, i, FormatKey(keyCells(s, keys, rec)))
			}
			idx[k] = i
		}
		return idx, nil
	}
	bIdx, err := index(b)
	if err != nil {
		return nil, nil, err
	}
	if _, err := index(a); err != nil {
		return nil, nil, err
	}
	for i, rec := range a.Rows {
		if j, ok := bIdx[keyString(a, keys, rec)]; ok {
			matchA[i], matchB[j] = j, i
		}
	}
	return matchA, matchB, nil
}

// diffFields compares one matched row pair over the shared columns,
// returning a delta per differing cell. Key columns are compared too —
// by construction their cells are equal, so they simply never differ.
func diffFields(a, b *results.Sweep, shared []results.Column, ra, rb results.Record) []results.FieldDelta {
	var fields []results.FieldDelta
	for _, c := range shared {
		av := ra[a.ColumnIndex(c.Name)]
		bv := rb[b.ColumnIndex(c.Name)]
		if av == bv {
			continue
		}
		f := results.FieldDelta{Column: c.Name, Kind: c.Kind, Unit: c.Unit, A: av, B: bv}
		if c.Kind != results.String {
			af, bf := cellFloat(av), cellFloat(bv)
			abs := bf - af
			f.Abs = &abs
			f.Rel = relDelta(af, bf)
		}
		fields = append(fields, f)
	}
	return fields
}

// keyCells extracts one row's key cells, nil under positional matching.
func keyCells(s *results.Sweep, keys []results.Column, rec results.Record) map[string]any {
	if len(keys) == 0 {
		return nil
	}
	key := make(map[string]any, len(keys))
	for _, c := range keys {
		key[c.Name] = rec[s.ColumnIndex(c.Name)]
	}
	return key
}

// keyString renders a row's key tuple as a collision-free map key.
func keyString(s *results.Sweep, keys []results.Column, rec results.Record) string {
	var sb strings.Builder
	for _, c := range keys {
		switch v := rec[s.ColumnIndex(c.Name)].(type) {
		case string:
			sb.WriteString(v)
		case int64:
			sb.WriteString(strconv.FormatInt(v, 10))
		case float64:
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte(0) // cells cannot contain NUL (validated single-line strings)
	}
	return sb.String()
}

// FormatKey renders a row's key cells for error, report and CLI text:
// "k=v" pairs in sorted key order, "(positional)" when there are none.
func FormatKey(key map[string]any) string {
	if len(key) == 0 {
		return "(positional)"
	}
	names := make([]string, 0, len(key))
	for name := range key {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%v", name, key[name])
	}
	return strings.Join(parts, " ")
}

// relDelta computes (b-a)/|a|, nil when the baseline is zero.
func relDelta(a, b float64) *float64 {
	if a == 0 {
		return nil
	}
	rel := (b - a) / math.Abs(a)
	return &rel
}

// cellFloat widens a canonical numeric cell to float64.
func cellFloat(cell any) float64 {
	switch v := cell.(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	}
	return 0
}

// sortedKeys returns the union of both maps' keys, sorted.
func sortedKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	var keys []string
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// unitSuffix formats a column unit for error text.
func unitSuffix(unit string) string {
	if unit == "" {
		return ""
	}
	return " [" + unit + "]"
}
