package analyze

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"strconv"
	"strings"

	"atlahs/results"
)

// Report is what RenderHTML renders: any combination of a sweep diff,
// per-metric trajectories and gated regressions. Rendering is a pure
// function of this value — no clocks, no environment — so report bytes
// are reproducible and golden-testable.
type Report struct {
	// Title heads the document.
	Title string
	// Diff is an optional sweep comparison section.
	Diff *results.SweepDiff
	// History is an optional trajectory section, one sparkline per series.
	History []results.Series
	// Regressions is the gate's verdict over the above.
	Regressions []Regression
	// Warnings surface skipped inputs (corrupt artifacts, foreign files).
	Warnings []string
}

// RenderHTML writes the report as one self-contained HTML document: no
// external scripts, styles or fonts, so it renders identically from a
// file, a CI artifact or the service endpoint. Output is deterministic —
// byte-pinned by the golden test.
func RenderHTML(w io.Writer, r *Report) error {
	return reportTmpl.Execute(w, r)
}

// sparkline renders one series as an inline SVG polyline, normalised to
// a fixed viewport. Coordinates round to 1/100 so formatting is
// deterministic across platforms.
func sparkline(s results.Series) template.HTML {
	const width, height, pad = 240.0, 48.0, 4.0
	n := len(s.Points)
	if n == 0 {
		return ""
	}
	lo, hi := s.Points[0].Value, s.Points[0].Value
	for _, p := range s.Points {
		lo, hi = math.Min(lo, p.Value), math.Max(hi, p.Value)
	}
	span := hi - lo
	if span == 0 {
		span = 1 // flat line: center it
	}
	coord := func(v float64) string {
		return strconv.FormatFloat(math.Round(v*100)/100, 'f', -1, 64)
	}
	pts := make([]string, n)
	for i, p := range s.Points {
		x := pad + (width-2*pad)*float64(i)/math.Max(float64(n-1), 1)
		y := height - pad - (height-2*pad)*(p.Value-lo)/span
		pts[i] = coord(x) + "," + coord(y)
	}
	svg := fmt.Sprintf(
		`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label=%q>`+
			`<polyline fill="none" stroke="currentColor" stroke-width="1.5" points="%s"/>`+
			`<circle cx="%s" cy="%s" r="2.5" fill="currentColor"/></svg>`,
		int(width), int(height), int(width), int(height),
		s.Metric, strings.Join(pts, " "),
		pts[n-1][:strings.IndexByte(pts[n-1], ',')], pts[n-1][strings.IndexByte(pts[n-1], ',')+1:],
	)
	return template.HTML(svg)
}

// tmplFuncs are the template helpers; all formatting is deterministic.
var tmplFuncs = template.FuncMap{
	"spark": sparkline,
	"num": func(v float64) string {
		return strconv.FormatFloat(v, 'g', -1, 64)
	},
	"pct": func(v float64) string {
		return fmt.Sprintf("%+.1f%%", 100*v)
	},
	"cell": func(v any) string {
		switch c := v.(type) {
		case string:
			return c
		case int64:
			return strconv.FormatInt(c, 10)
		case float64:
			return strconv.FormatFloat(c, 'g', -1, 64)
		}
		return fmt.Sprint(v)
	},
	"where": func(r results.RowDiff) string {
		if r.Key == nil {
			return fmt.Sprintf("row %d", r.Row)
		}
		return FormatKey(r.Key)
	},
	"key": func(r results.RowRef) string {
		if r.Key == nil {
			return fmt.Sprintf("row %d", r.Row)
		}
		return FormatKey(r.Key)
	},
	"last": func(s results.Series) float64 {
		return s.Points[len(s.Points)-1].Value
	},
	"count": func(s results.Series) int {
		return len(s.Points)
	},
	"rel": func(f results.FieldDelta) string {
		if f.Rel == nil {
			return "—"
		}
		return fmt.Sprintf("%+.1f%%", 100**f.Rel)
	},
	"srel": func(s results.ScalarDelta) string {
		if s.Rel == nil {
			return "—"
		}
		return fmt.Sprintf("%+.1f%%", 100**s.Rel)
	},
}

var reportTmpl = template.Must(template.New("report").Funcs(tmplFuncs).Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;padding:0 1rem;color:#1a1a1a}
h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #ddd;padding-bottom:.25rem}
table{border-collapse:collapse;width:100%;margin:.75rem 0}
th,td{text-align:left;padding:.3rem .6rem;border-bottom:1px solid #eee;font-variant-numeric:tabular-nums}
th{border-bottom:1px solid #bbb}
.bad{color:#b00020;font-weight:600}.ok{color:#1b7f3b;font-weight:600}
.spark{color:#3b5bdb;vertical-align:middle}
.muted{color:#777}
code{background:#f4f4f4;padding:.05rem .3rem;border-radius:3px}
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{- if .Regressions}}
<p class="bad">{{len .Regressions}} regression(s) flagged.</p>
<h2>Regressions</h2>
<table>
<tr><th>metric</th><th>where</th><th>baseline</th><th>now</th><th>delta</th></tr>
{{- range .Regressions}}
<tr><td><code>{{.Metric}}</code></td><td>{{.Where}}</td><td>{{num .A}}</td><td>{{num .B}}</td><td class="bad">{{pct .Rel}}</td></tr>
{{- end}}
</table>
{{- else}}
<p class="ok">No regressions flagged.</p>
{{- end}}
{{- with .Diff}}
<h2>Diff: {{.A}} vs {{.B}}</h2>
<p>{{.RowsA}} rows vs {{.RowsB}} rows &middot; {{.Matched}} matched &middot; {{.Changed}} changed
{{- if .RowsOnlyA}} &middot; {{len .RowsOnlyA}} only in {{.A}}{{end}}
{{- if .RowsOnlyB}} &middot; {{len .RowsOnlyB}} only in {{.B}}{{end}}</p>
{{- if .Rows}}
<table>
<tr><th>record</th><th>column</th><th>a</th><th>b</th><th>abs</th><th>rel</th></tr>
{{- range $row := .Rows}}
{{- range $row.Fields}}
<tr><td>{{where $row}}</td><td><code>{{.Column}}</code>{{if .Unit}} <span class="muted">[{{.Unit}}]</span>{{end}}</td><td>{{cell .A}}</td><td>{{cell .B}}</td><td>{{if .Abs}}{{num .Abs}}{{else}}—{{end}}</td><td>{{rel .}}</td></tr>
{{- end}}
{{- end}}
</table>
{{- end}}
{{- if .Derived}}
<table>
<tr><th>derived</th><th>a</th><th>b</th><th>abs</th><th>rel</th></tr>
{{- range .Derived}}
<tr><td><code>{{.Key}}</code></td><td>{{num .A}}</td><td>{{num .B}}</td><td>{{num .Abs}}</td><td>{{srel .}}</td></tr>
{{- end}}
</table>
{{- end}}
{{- if .Params}}
<table>
<tr><th>param</th><th>a</th><th>b</th></tr>
{{- range .Params}}
<tr><td><code>{{.Key}}</code></td><td>{{.A}}</td><td>{{.B}}</td></tr>
{{- end}}
</table>
{{- end}}
{{- if .RowsOnlyA}}
<p>Only in {{.A}}:{{range .RowsOnlyA}} <code>{{key .}}</code>{{end}}</p>
{{- end}}
{{- if .RowsOnlyB}}
<p>Only in {{.B}}:{{range .RowsOnlyB}} <code>{{key .}}</code>{{end}}</p>
{{- end}}
{{- if or .ColumnsOnlyA .ColumnsOnlyB}}
<p class="muted">Uncompared columns:{{range .ColumnsOnlyA}} <code>{{.}}</code> (a){{end}}{{range .ColumnsOnlyB}} <code>{{.}}</code> (b){{end}}</p>
{{- end}}
{{- end}}
{{- if .History}}
<h2>Trajectories</h2>
<table>
<tr><th>metric</th><th>trend</th><th>points</th><th>last</th></tr>
{{- range .History}}
<tr><td><code>{{.Metric}}</code>{{if .Unit}} <span class="muted">[{{.Unit}}]</span>{{end}}</td><td>{{spark .}}</td><td>{{count .}}</td><td>{{num (last .)}}</td></tr>
{{- end}}
</table>
{{- end}}
{{- if .Warnings}}
<h2>Warnings</h2>
<ul>
{{- range .Warnings}}
<li class="muted">{{.}}</li>
{{- end}}
</ul>
{{- end}}
</body>
</html>
`))
