package analyze

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atlahs/results"
)

func TestSeriesFromPivot(t *testing.T) {
	entries := []HistoryEntry{
		{Label: "one", Unix: 10, Values: map[string]float64{"runtime_ps": 100, "ops": 5}},
		{Label: "two", Unix: 20, Values: map[string]float64{"runtime_ps": 110}},
		{Label: "three", Unix: 30, Values: map[string]float64{"runtime_ps": 120, "ops": 7}},
	}
	series := SeriesFrom(entries)
	if len(series) != 2 || series[0].Metric != "ops" || series[1].Metric != "runtime_ps" {
		t.Fatalf("series = %+v, want [ops runtime_ps]", series)
	}
	if got := series[0].Points; len(got) != 2 || got[0].Value != 5 || got[1].Value != 7 {
		t.Errorf("ops points = %+v", got)
	}
	rt := series[1].Points
	if len(rt) != 3 || rt[0].Label != "one" || rt[2].Label != "three" || rt[2].Unix != 30 {
		t.Errorf("runtime_ps points = %+v", rt)
	}
}

// saveRun stores a minimal service-shaped run artifact with the given
// derived runtime, stamped at the given mtime so walk order is fixed.
func saveRun(t *testing.T, st *results.Store, name string, runtime float64, mtime time.Time) {
	t.Helper()
	s := results.NewSweep(name, "Run", "service")
	s.AddColumn("rank", results.Int, "")
	s.MustAddRow(int64(0))
	s.SetDerived("runtime_ps", runtime)
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(st.Path(name), mtime, mtime); err != nil {
		t.Fatal(err)
	}
}

func TestStoreHistory(t *testing.T) {
	st, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	// Saved newest-first on purpose: the walk must order by mtime.
	saveRun(t, st, "r_00000000000000ff", 300, base.Add(2*time.Hour))
	saveRun(t, st, "r_00000000000000aa", 100, base)
	saveRun(t, st, "r_00000000000000bb", 200, base.Add(time.Hour))

	// A non-run artifact must be ignored entirely.
	other := results.NewSweep("fig8_quick", "Fig 8", "quick")
	other.AddColumn("v", results.Int, "")
	other.MustAddRow(int64(1))
	other.SetDerived("runtime_ps", 999)
	if err := st.Save(other); err != nil {
		t.Fatal(err)
	}
	// A corrupt run artifact must be skipped with a warning, not fail the walk.
	if err := os.WriteFile(st.Path("r_00000000000000cc"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	series, warnings, err := StoreHistory(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "r_00000000000000cc") {
		t.Errorf("warnings = %v, want one naming the corrupt run", warnings)
	}
	if len(series) != 1 || series[0].Metric != "runtime_ps" {
		t.Fatalf("series = %+v, want just runtime_ps", series)
	}
	pts := series[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %+v, want 3", pts)
	}
	wantOrder := []string{"r_00000000000000aa", "r_00000000000000bb", "r_00000000000000ff"}
	for i, want := range wantOrder {
		if pts[i].Label != want {
			t.Errorf("point %d label = %q, want %q (chronological)", i, pts[i].Label, want)
		}
	}
	if pts[0].Value != 100 || pts[2].Value != 300 {
		t.Errorf("values = %v %v %v, want 100 200 300", pts[0].Value, pts[1].Value, pts[2].Value)
	}
}

func TestBenchHistory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("run_000000001_aaa.json", `{"schema":"atlahs.bench/v1","go":"go1.24","benchmarks":{"BenchmarkParEngineVsSerial/par-8":1000}}`)
	write("run_000000002_bbb.json", `{"schema":"atlahs.bench/v1","go":"go1.24","benchmarks":{"BenchmarkParEngineVsSerial/par-8":1100,"BenchmarkServiceColdVsCacheHit/hit-8":50}}`)
	write("foreign.json", `{"schema":"atlahs.results/v1"}`)
	write("garbage.json", `not json at all`)

	series, warnings, err := BenchHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 2 {
		t.Errorf("warnings = %v, want two (foreign schema + parse failure)", warnings)
	}
	if len(series) != 2 {
		t.Fatalf("series = %+v, want two benchmarks", series)
	}
	par := series[0]
	if par.Metric != "BenchmarkParEngineVsSerial/par-8" || par.Unit != "ns/op" {
		t.Errorf("series[0] = %+v", par)
	}
	if len(par.Points) != 2 || par.Points[0].Value != 1000 || par.Points[1].Value != 1100 {
		t.Errorf("points = %+v, want 1000 then 1100 in file order", par.Points)
	}
	if par.Points[0].Label != "run_000000001_aaa.json" {
		t.Errorf("label = %q, want the file base name", par.Points[0].Label)
	}
}

func TestBenchHistoryEmptyDirErrors(t *testing.T) {
	if _, _, err := BenchHistory(t.TempDir()); err == nil {
		t.Error("empty directory: want error, got nil")
	}
}
