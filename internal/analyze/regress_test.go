package analyze

import (
	"regexp"
	"testing"

	"atlahs/results"
)

func diffFor(t *testing.T, measuredA, measuredB []int64) *results.SweepDiff {
	t.Helper()
	d, err := Diff(pairSweep(t, "a", measuredA), pairSweep(t, "b", measuredB),
		DiffOptions{Keys: []string{"configuration"}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGateDiffFlagsOnlyPastThreshold(t *testing.T) {
	// cfg_a +5%, cfg_b +20%, cfg_c improves; derived total_ps +2.5%.
	d := diffFor(t, []int64{100, 200, 300}, []int64{105, 240, 270})
	regs := Gate{RelThreshold: 0.1}.Diff(d)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly one (cfg_b measured +20%%)", regs)
	}
	r := regs[0]
	if r.Metric != "measured" || r.Where != "configuration=cfg_b" || r.A != 200 || r.B != 240 || r.Rel != 0.2 {
		t.Errorf("regression = %+v", r)
	}
	if got := r.String(); got != "REGRESSION measured at configuration=cfg_b: 200 -> 240 (+20.0%)" {
		t.Errorf("String() = %q", got)
	}
}

func TestGateDiffZeroThresholdFlagsAnyWorsening(t *testing.T) {
	d := diffFor(t, []int64{100, 200, 300}, []int64{101, 200, 300})
	regs := Gate{RelThreshold: 0}.Diff(d)
	// cfg_a measured +1% and total_ps +0.17% both worsen.
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want cfg_a measured and derived total_ps", regs)
	}
	if regs[0].Metric != "measured" || regs[1].Metric != "total_ps" || regs[1].Where != "derived" {
		t.Errorf("regressions = %+v, want measured first (larger Rel), then total_ps", regs)
	}
}

func TestGateDiffNegativeThresholdDisabled(t *testing.T) {
	d := diffFor(t, []int64{100, 200, 300}, []int64{500, 600, 700})
	if regs := (Gate{RelThreshold: -1}).Diff(d); len(regs) != 0 {
		t.Errorf("disabled gate flagged %+v", regs)
	}
}

func TestGateDiffImprovementsNotFlagged(t *testing.T) {
	d := diffFor(t, []int64{100, 200, 300}, []int64{50, 100, 150})
	if regs := (Gate{RelThreshold: 0}).Diff(d); len(regs) != 0 {
		t.Errorf("improvements flagged as regressions: %+v", regs)
	}
}

func TestGateDiffMetricFilter(t *testing.T) {
	d := diffFor(t, []int64{100, 200, 300}, []int64{200, 400, 600})
	regs := Gate{RelThreshold: 0.1, Metrics: regexp.MustCompile(`^total_`)}.Diff(d)
	if len(regs) != 1 || regs[0].Metric != "total_ps" {
		t.Errorf("filtered regressions = %+v, want only total_ps", regs)
	}
}

func TestGateDiffSkipsZeroBaseline(t *testing.T) {
	a := results.NewSweep("a", "A", "test")
	a.AddColumn("v", results.Float, "")
	a.MustAddRow(0.0)
	a.SetDerived("agg", 0)
	b := results.NewSweep("b", "B", "test")
	b.AddColumn("v", results.Float, "")
	b.MustAddRow(9.0)
	b.SetDerived("agg", 9)
	d, err := Diff(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := (Gate{RelThreshold: 0}).Diff(d); len(regs) != 0 {
		t.Errorf("zero-baseline fields gated: %+v", regs)
	}
}

func oneSeries(vals ...float64) []results.Series {
	s := results.Series{Metric: "runtime_ps", Unit: "ps"}
	for i, v := range vals {
		s.Points = append(s.Points, results.Point{Label: label(i), Value: v})
	}
	return []results.Series{s}
}

func label(i int) string {
	return string(rune('a' + i))
}

func TestGateSeriesFlatHistory(t *testing.T) {
	// Deterministic history: MAD is zero, rel gate alone decides.
	regs := Gate{RelThreshold: 0.1, MADK: 3}.Series(oneSeries(100, 100, 100, 100, 125))
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want one", regs)
	}
	r := regs[0]
	if r.Metric != "runtime_ps" || r.Where != "e" || r.A != 100 || r.B != 125 || r.Rel != 0.25 {
		t.Errorf("regression = %+v", r)
	}
}

func TestGateSeriesNoisyHistoryNeedsMAD(t *testing.T) {
	// Median of prior {100,90,110,95,105} = 100, MAD = 5. Last = 112:
	// +12% trips rel(0.1) but 112 <= 100 + 3*5 = 115, so MAD absorbs it.
	g := Gate{RelThreshold: 0.1, MADK: 3}
	if regs := g.Series(oneSeries(100, 90, 110, 95, 105, 112)); len(regs) != 0 {
		t.Errorf("within-noise jump flagged: %+v", regs)
	}
	// Last = 120 clears both gates.
	regs := g.Series(oneSeries(100, 90, 110, 95, 105, 120))
	if len(regs) != 1 || regs[0].A != 100 || regs[0].B != 120 {
		t.Errorf("regressions = %+v, want median 100 -> 120", regs)
	}
}

func TestGateSeriesTooShort(t *testing.T) {
	if regs := (Gate{RelThreshold: 0}).Series(oneSeries(100, 200)); len(regs) != 0 {
		t.Errorf("two-point series gated: %+v", regs)
	}
}

func TestGateSeriesMetricFilter(t *testing.T) {
	g := Gate{RelThreshold: 0, Metrics: regexp.MustCompile(`^ops$`)}
	if regs := g.Series(oneSeries(100, 100, 200)); len(regs) != 0 {
		t.Errorf("filtered-out series gated: %+v", regs)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median even = %v, want 2.5", got)
	}
	in := []float64{3, 1, 2}
	median(in)
	if in[0] != 3 {
		t.Error("median mutated its input")
	}
}
