package analyze

import (
	"strings"
	"testing"

	"atlahs/results"
)

// pairSweep builds a small keyed sweep for diff tests.
func pairSweep(t *testing.T, name string, measured []int64) *results.Sweep {
	t.Helper()
	s := results.NewSweep(name, "Pair", "test")
	s.AddColumn("configuration", results.String, "")
	s.AddColumn("measured", results.Duration, "ps")
	s.AddColumn("compute_pct", results.Float, "%")
	configs := []string{"cfg_a", "cfg_b", "cfg_c"}
	for i, m := range measured {
		s.MustAddRow(configs[i], m, float64(10*(i+1)))
	}
	s.SetParam("mode", "quick")
	s.SetDerived("total_ps", float64(measured[0]+measured[1]+measured[2]))
	return s
}

func TestDiffIdenticalSweeps(t *testing.T) {
	a := pairSweep(t, "sweep", []int64{100, 200, 300})
	b := pairSweep(t, "sweep", []int64{100, 200, 300})
	for _, keys := range [][]string{nil, {"configuration"}} {
		d, err := Diff(a, b, DiffOptions{Keys: keys})
		if err != nil {
			t.Fatalf("Diff(keys=%v): %v", keys, err)
		}
		if d.Changed != 0 || len(d.Rows) != 0 || len(d.Params) != 0 || len(d.Derived) != 0 {
			t.Errorf("keys=%v: identical sweeps produced changes: %+v", keys, d)
		}
		if d.Matched != 3 || len(d.RowsOnlyA) != 0 || len(d.RowsOnlyB) != 0 {
			t.Errorf("keys=%v: Matched=%d RowsOnlyA=%d RowsOnlyB=%d, want 3/0/0",
				keys, d.Matched, len(d.RowsOnlyA), len(d.RowsOnlyB))
		}
		if err := d.Validate(); err != nil {
			t.Errorf("keys=%v: diff does not validate: %v", keys, err)
		}
	}
}

func TestDiffKeyedChanges(t *testing.T) {
	a := pairSweep(t, "a", []int64{100, 200, 300})
	b := pairSweep(t, "b", []int64{100, 240, 300}) // cfg_b regresses 20%
	b.SetParam("mode", "full")
	d, err := Diff(a, b, DiffOptions{Keys: []string{"configuration"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("diff does not validate: %v", err)
	}
	if d.Changed != 1 || len(d.Rows) != 1 {
		t.Fatalf("Changed=%d rows=%d, want 1/1", d.Changed, len(d.Rows))
	}
	row := d.Rows[0]
	if got := row.Key["configuration"]; got != "cfg_b" {
		t.Errorf("changed row key = %v, want cfg_b", got)
	}
	if len(row.Fields) != 1 {
		t.Fatalf("fields = %+v, want exactly one (measured)", row.Fields)
	}
	f := row.Fields[0]
	if f.Column != "measured" || f.A != int64(200) || f.B != int64(240) {
		t.Errorf("field = %+v, want measured 200 -> 240", f)
	}
	if f.Abs == nil || *f.Abs != 40 || f.Rel == nil || *f.Rel != 0.2 {
		t.Errorf("deltas = abs %v rel %v, want 40 and 0.2", f.Abs, f.Rel)
	}
	if len(d.Params) != 1 || d.Params[0].Key != "mode" || d.Params[0].B != "full" {
		t.Errorf("params = %+v, want mode quick -> full", d.Params)
	}
	if len(d.Derived) != 1 || d.Derived[0].Key != "total_ps" || d.Derived[0].Abs != 40 {
		t.Errorf("derived = %+v, want total_ps +40", d.Derived)
	}
}

func TestDiffUnmatchedRowsAndColumns(t *testing.T) {
	a := results.NewSweep("a", "A", "test")
	a.AddColumn("configuration", results.String, "")
	a.AddColumn("measured", results.Int, "ps")
	a.AddColumn("only_a", results.Float, "")
	a.MustAddRow("one", int64(1), 1.0)
	a.MustAddRow("two", int64(2), 2.0)

	b := results.NewSweep("b", "B", "test")
	b.AddColumn("configuration", results.String, "")
	b.AddColumn("measured", results.Int, "ps")
	b.AddColumn("only_b", results.Float, "")
	b.MustAddRow("two", int64(2), 2.0)
	b.MustAddRow("three", int64(3), 3.0)

	d, err := Diff(a, b, DiffOptions{Keys: []string{"configuration"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("diff does not validate: %v", err)
	}
	if d.Matched != 1 || d.Changed != 0 {
		t.Errorf("Matched=%d Changed=%d, want 1/0", d.Matched, d.Changed)
	}
	if len(d.RowsOnlyA) != 1 || d.RowsOnlyA[0].Key["configuration"] != "one" {
		t.Errorf("RowsOnlyA = %+v, want the 'one' row", d.RowsOnlyA)
	}
	if len(d.RowsOnlyB) != 1 || d.RowsOnlyB[0].Key["configuration"] != "three" {
		t.Errorf("RowsOnlyB = %+v, want the 'three' row", d.RowsOnlyB)
	}
	if len(d.ColumnsOnlyA) != 1 || d.ColumnsOnlyA[0] != "only_a" {
		t.Errorf("ColumnsOnlyA = %v, want [only_a]", d.ColumnsOnlyA)
	}
	if len(d.ColumnsOnlyB) != 1 || d.ColumnsOnlyB[0] != "only_b" {
		t.Errorf("ColumnsOnlyB = %v, want [only_b]", d.ColumnsOnlyB)
	}
}

func TestDiffPositionalLengthMismatch(t *testing.T) {
	a := pairSweep(t, "a", []int64{100, 200, 300})
	b := results.NewSweep("b", "B", "test")
	b.AddColumn("configuration", results.String, "")
	b.AddColumn("measured", results.Duration, "ps")
	b.AddColumn("compute_pct", results.Float, "%")
	b.MustAddRow("cfg_a", int64(100), 10.0)

	d, err := Diff(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("diff does not validate: %v", err)
	}
	if d.Matched != 1 || len(d.RowsOnlyA) != 2 || len(d.RowsOnlyB) != 0 {
		t.Errorf("Matched=%d RowsOnlyA=%d RowsOnlyB=%d, want 1/2/0",
			d.Matched, len(d.RowsOnlyA), len(d.RowsOnlyB))
	}
	if d.RowsOnlyA[0].Key != nil {
		t.Errorf("positional RowRef carries key cells: %+v", d.RowsOnlyA[0])
	}
}

func TestDiffZeroBaselineRelNil(t *testing.T) {
	a := results.NewSweep("a", "A", "test")
	a.AddColumn("v", results.Float, "")
	a.MustAddRow(0.0)
	b := results.NewSweep("b", "B", "test")
	b.AddColumn("v", results.Float, "")
	b.MustAddRow(5.0)

	d, err := Diff(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := d.Rows[0].Fields[0]
	if f.Rel != nil {
		t.Errorf("Rel = %v for zero baseline, want nil", *f.Rel)
	}
	if f.Abs == nil || *f.Abs != 5 {
		t.Errorf("Abs = %v, want 5", f.Abs)
	}
}

func TestDiffRejectsRetypedColumn(t *testing.T) {
	a := results.NewSweep("a", "A", "test")
	a.AddColumn("v", results.Int, "ps")
	a.MustAddRow(int64(1))
	b := results.NewSweep("b", "B", "test")
	b.AddColumn("v", results.Float, "ps")
	b.MustAddRow(1.0)
	if _, err := Diff(a, b, DiffOptions{}); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Errorf("retyped column: err = %v, want kind-mismatch error", err)
	}
}

func TestDiffRejectsDuplicateKeys(t *testing.T) {
	a := pairSweep(t, "a", []int64{100, 200, 300})
	b := results.NewSweep("b", "B", "test")
	b.AddColumn("configuration", results.String, "")
	b.AddColumn("measured", results.Duration, "ps")
	b.AddColumn("compute_pct", results.Float, "%")
	b.MustAddRow("cfg_a", int64(1), 1.0)
	b.MustAddRow("cfg_a", int64(2), 2.0)
	if _, err := Diff(a, b, DiffOptions{Keys: []string{"configuration"}}); err == nil || !strings.Contains(err.Error(), "unique") {
		t.Errorf("duplicate keys: err = %v, want uniqueness error", err)
	}
}

func TestDiffRejectsMissingKeyColumn(t *testing.T) {
	a := pairSweep(t, "a", []int64{100, 200, 300})
	b := pairSweep(t, "b", []int64{100, 200, 300})
	if _, err := Diff(a, b, DiffOptions{Keys: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "key column") {
		t.Errorf("missing key column: err = %v, want key-column error", err)
	}
}
