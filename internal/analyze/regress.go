package analyze

import (
	"fmt"
	"math"
	"regexp"
	"sort"

	"atlahs/results"
)

// Gate configures regression detection. Every gated metric in this
// toolchain — simulated runtime, ns/op, executed-op cost — is a cost, so
// the gates are one-sided: only increases can regress; improvements are
// never flagged.
type Gate struct {
	// RelThreshold is the minimum relative worsening (B-A)/A to flag. 0
	// flags any worsening; < 0 disables the relative gate.
	RelThreshold float64
	// MADK enables the robust gate for series: the last point regresses
	// when it exceeds the median of the preceding points by more than
	// MADK times their median absolute deviation. <= 0 disables it. When
	// the history is perfectly stable (MAD zero — common for
	// deterministic simulated runtimes), any worsening past the relative
	// gate is significant.
	MADK float64
	// Metrics optionally restricts gating to column, derived and series
	// names matching this pattern; nil gates every numeric metric.
	Metrics *regexp.Regexp
}

// Regression is one flagged metric movement.
type Regression struct {
	// Metric is the regressed column, derived key or series metric.
	Metric string `json:"metric"`
	// Where locates it: a row's key cells or index for a diff field,
	// "derived" for an aggregate, the last point's label for a series.
	Where string `json:"where"`
	// A is the baseline (cell in sweep A, or the history's median) and B
	// the regressed observation; Rel is (B-A)/A.
	A   float64 `json:"a"`
	B   float64 `json:"b"`
	Rel float64 `json:"rel"`
}

func (r Regression) String() string {
	return fmt.Sprintf("REGRESSION %s at %s: %v -> %v (%+.1f%%)", r.Metric, r.Where, r.A, r.B, 100*r.Rel)
}

// metricAllowed applies the optional name filter.
func (g Gate) metricAllowed(name string) bool {
	return g.Metrics == nil || g.Metrics.MatchString(name)
}

// relTrips reports whether a baseline→observation move trips the
// relative gate. A zero or negative baseline never trips: the relative
// move is undefined and sign conventions stop meaning "cost grew".
func (g Gate) relTrips(a, b float64) bool {
	if g.RelThreshold < 0 || a <= 0 || b <= a {
		return false
	}
	return (b-a)/a >= g.RelThreshold
}

// Diff gates a sweep diff: every numeric field delta and derived delta
// whose relative worsening passes the threshold is flagged, most severe
// first. Fields with an undefined relative delta (zero baseline) are
// reported in the diff but never gated — there is no meaningful
// percentage to compare against the threshold.
func (g Gate) Diff(d *results.SweepDiff) []Regression {
	var regs []Regression
	for _, row := range d.Rows {
		where := FormatKey(row.Key)
		if row.Key == nil {
			where = fmt.Sprintf("row %d", row.Row)
		}
		for _, f := range row.Fields {
			if f.Kind == results.String || f.Rel == nil || !g.metricAllowed(f.Column) {
				continue
			}
			a, b := cellFloat(f.A), cellFloat(f.B)
			if g.relTrips(a, b) {
				regs = append(regs, Regression{Metric: f.Column, Where: where, A: a, B: b, Rel: *f.Rel})
			}
		}
	}
	for _, s := range d.Derived {
		if s.Rel == nil || !g.metricAllowed(s.Key) {
			continue
		}
		if g.relTrips(s.A, s.B) {
			regs = append(regs, Regression{Metric: s.Key, Where: "derived", A: s.A, B: s.B, Rel: *s.Rel})
		}
	}
	sort.SliceStable(regs, func(i, j int) bool { return regs[i].Rel > regs[j].Rel })
	return regs
}

// Series gates trajectories: for each series with at least three points,
// the last point is compared against the median of the preceding ones.
// It regresses when it trips the relative gate AND — when the MAD gate
// is enabled — exceeds median + MADK*MAD, so a noisy history needs a
// statistically significant jump while a perfectly flat one (MAD zero)
// falls back to the relative gate alone. Results sort most severe first.
func (g Gate) Series(series []results.Series) []Regression {
	var regs []Regression
	for _, s := range series {
		n := len(s.Points)
		if n < 3 || !g.metricAllowed(s.Metric) {
			continue
		}
		prior := make([]float64, n-1)
		for i, p := range s.Points[:n-1] {
			prior[i] = p.Value
		}
		med := median(prior)
		last := s.Points[n-1].Value
		if !g.relTrips(med, last) {
			continue
		}
		if g.MADK > 0 {
			dev := make([]float64, len(prior))
			for i, v := range prior {
				dev[i] = math.Abs(v - med)
			}
			if mad := median(dev); last <= med+g.MADK*mad {
				continue
			}
		}
		regs = append(regs, Regression{
			Metric: s.Metric,
			Where:  s.Points[n-1].Label,
			A:      med,
			B:      last,
			Rel:    (last - med) / med,
		})
	}
	sort.SliceStable(regs, func(i, j int) bool { return regs[i].Rel > regs[j].Rel })
	return regs
}

// median returns the middle value (mean of the middle two for even
// counts) of an unsorted, non-empty slice; it does not mutate its input.
func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
