// Package analyze is the run-history analytics layer of the ATLAHS
// toolchain: it reads what the rest of the toolchain writes — the
// atlahs.results/v1 sweeps experiments export, the per-run artifacts and
// atlahs.runmeta/v1 sidecars the simulation service persists, and the
// BENCH_ci.json perf records CI uploads — and turns that write-only
// archive into an observability surface.
//
// Four engines compose:
//
//   - Diff compares two sweeps field by field (rows matched on key
//     columns or by position) into a sparse results.SweepDiff under the
//     append-only atlahs.diff/v1 schema.
//   - StoreHistory and BenchHistory build per-metric time series
//     (results.Series) from a results.Store's run artifacts or a
//     directory of BENCH_ci.json documents.
//   - Gate flags significant regressions: a relative-threshold gate over
//     diffs and trajectories, plus a robust median/MAD gate for noisy
//     series. Higher is worse — every gated metric (simulated runtime,
//     ns/op) is a cost.
//   - RenderHTML renders a deterministic, dependency-free HTML report
//     over any combination of diff, trajectories and regressions; its
//     output is byte-pinned by a golden test.
//
// cmd/atlahs-analyze exposes the engines on the command line (exiting
// non-zero when the gate trips, so CI can block on regressions), and
// internal/service exposes them to a running fleet as GET /v1/history
// and GET /v1/analyze/diff.
package analyze
