package analyze

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current renderer output")

// goldenReport exercises every section of the renderer with fixed data.
func goldenReport(t *testing.T) *Report {
	t.Helper()
	a := pairSweep(t, "fig8_base", []int64{100, 200, 300})
	b := pairSweep(t, "fig8_head", []int64{100, 240, 300})
	b.SetParam("mode", "full")
	d, err := Diff(a, b, DiffOptions{Keys: []string{"configuration"}})
	if err != nil {
		t.Fatal(err)
	}
	history := SeriesFrom([]HistoryEntry{
		{Label: "r_aa", Unix: 1700000000, Values: map[string]float64{"runtime_ps": 600}, Units: map[string]string{"runtime_ps": "ps"}},
		{Label: "r_bb", Unix: 1700003600, Values: map[string]float64{"runtime_ps": 610}},
		{Label: "r_cc", Unix: 1700007200, Values: map[string]float64{"runtime_ps": 640}},
	})
	return &Report{
		Title:       "atlahs analyze: fig8_base vs fig8_head",
		Diff:        d,
		History:     history,
		Regressions: Gate{RelThreshold: 0.1}.Diff(d),
		Warnings:    []string{"skipping run r_00000000000000cc: invalid character 'n'"},
	}
}

// TestRenderHTMLGolden byte-pins the report renderer: any change to the
// template or its helpers must be reviewed by regenerating the golden
// file with `go test ./internal/analyze -run Golden -update`.
func TestRenderHTMLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderHTML(&buf, goldenReport(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "report.html")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered report differs from %s (rerun with -update after reviewing)\ngot:\n%s", path, buf.String())
	}
}

// TestRenderHTMLDeterministic renders the same report twice and demands
// identical bytes — the renderer must not depend on map order or clocks.
func TestRenderHTMLDeterministic(t *testing.T) {
	var one, two bytes.Buffer
	if err := RenderHTML(&one, goldenReport(t)); err != nil {
		t.Fatal(err)
	}
	if err := RenderHTML(&two, goldenReport(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("two renders of the same report differ")
	}
}

func TestRenderHTMLEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderHTML(&buf, &Report{Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "No regressions flagged") {
		t.Errorf("empty report missing ok banner:\n%s", out)
	}
	for _, absent := range []string{"<h2>Diff", "<h2>Trajectories", "<h2>Warnings"} {
		if strings.Contains(out, absent) {
			t.Errorf("empty report contains %q section", absent)
		}
	}
}

func TestRenderHTMLEscapes(t *testing.T) {
	var buf bytes.Buffer
	r := &Report{Title: `<script>alert("x")</script>`}
	if err := RenderHTML(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Error("title not HTML-escaped")
	}
}
