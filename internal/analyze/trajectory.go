package analyze

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"atlahs/results"
)

// HistorySchema identifies the per-metric trajectory document served by
// GET /v1/history and emitted by `atlahs-analyze history -json`.
const HistorySchema = "atlahs.history/v1"

// runIDRE matches the ids the simulation service files runs under ("r_"
// plus 16 hex digits of the spec fingerprint — see internal/service).
// StoreHistory only walks entries with this shape: other artifacts in the
// store (experiment sweeps, say) are one-per-name documents, not history.
var runIDRE = regexp.MustCompile(`^r_[0-9a-f]{16}$`)

// HistoryEntry is one observation source: a labelled, timestamped bag of
// metric values. StoreHistory and BenchHistory build them; SeriesFrom
// pivots them into per-metric series.
type HistoryEntry struct {
	// Label identifies the observation (run id, history file name).
	Label string
	// Unix is the observation time in Unix seconds (0 when unknown).
	Unix int64
	// Values maps metric name to observed value.
	Values map[string]float64
	// Units optionally maps metric name to unit.
	Units map[string]string
}

// SeriesFrom pivots chronological entries into one Series per metric,
// sorted by metric name. A metric absent from some entries simply has
// fewer points; point order follows entry order.
func SeriesFrom(entries []HistoryEntry) []results.Series {
	byMetric := map[string]*results.Series{}
	var names []string
	for _, e := range entries {
		metrics := make([]string, 0, len(e.Values))
		for m := range e.Values {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			s, ok := byMetric[m]
			if !ok {
				s = &results.Series{Metric: m, Unit: e.Units[m]}
				byMetric[m] = s
				names = append(names, m)
			}
			s.Points = append(s.Points, results.Point{Label: e.Label, Unix: e.Unix, Value: e.Values[m]})
		}
	}
	sort.Strings(names)
	series := make([]results.Series, len(names))
	for i, name := range names {
		series[i] = *byMetric[name]
	}
	return series
}

// StoreHistory walks a results.Store's service-run artifacts oldest
// first (by artifact ModTime, then name) and returns one Series per
// derived metric — runtime_ps, ops, executed-op tallies — labelled by
// run id. Artifacts that fail to load or validate are skipped with their
// error collected into warnings rather than failing the whole walk: a
// history reader must survive one corrupt artifact.
func StoreHistory(st *results.Store) (series []results.Series, warnings []string, err error) {
	entries, err := st.List()
	if err != nil {
		return nil, nil, fmt.Errorf("analyze: listing store: %w", err)
	}
	var runs []results.Entry
	for _, e := range entries {
		if runIDRE.MatchString(e.Name) {
			runs = append(runs, e)
		}
	}
	sort.SliceStable(runs, func(i, j int) bool {
		if !runs[i].ModTime.Equal(runs[j].ModTime) {
			return runs[i].ModTime.Before(runs[j].ModTime)
		}
		return runs[i].Name < runs[j].Name
	})
	var hist []HistoryEntry
	for _, e := range runs {
		sweep, err := st.Load(e.Name)
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("skipping run %s: %v", e.Name, err))
			continue
		}
		if len(sweep.Derived) == 0 {
			continue
		}
		hist = append(hist, HistoryEntry{
			Label:  e.Name,
			Unix:   e.ModTime.Unix(),
			Values: sweep.Derived,
		})
	}
	return SeriesFrom(hist), warnings, nil
}

// benchReport is the BENCH_ci.json layout internal/ci/benchjson writes.
type benchReport struct {
	Schema     string             `json:"schema"`
	Go         string             `json:"go"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchSchema is the schema string those documents carry.
const benchSchema = "atlahs.bench/v1"

// BenchHistory reads every *.json atlahs.bench/v1 document in dir in
// lexical file-name order — CI names history files so that order is
// chronological — and returns one Series per benchmark, in ns/op,
// labelled by file name. A file that is not a bench report (wrong or
// missing schema) or fails to parse is skipped with a warning; an empty
// directory is an error, because a trajectory with nothing in it usually
// means the history restore step broke.
func BenchHistory(dir string) (series []results.Series, warnings []string, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	var hist []HistoryEntry
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("skipping %s: %v", path, err))
			continue
		}
		var rep benchReport
		if err := json.Unmarshal(b, &rep); err != nil {
			warnings = append(warnings, fmt.Sprintf("skipping %s: %v", path, err))
			continue
		}
		if rep.Schema != benchSchema {
			warnings = append(warnings, fmt.Sprintf("skipping %s: schema %q is not %q", path, rep.Schema, benchSchema))
			continue
		}
		units := make(map[string]string, len(rep.Benchmarks))
		for name := range rep.Benchmarks {
			units[name] = "ns/op"
		}
		hist = append(hist, HistoryEntry{Label: filepath.Base(path), Values: rep.Benchmarks, Units: units})
	}
	if len(hist) == 0 {
		return nil, warnings, fmt.Errorf("analyze: no %s documents in %s", benchSchema, dir)
	}
	return SeriesFrom(hist), warnings, nil
}
