package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(124)
	same := 0
	a2 := New(123)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %.4f too far from 0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("exp mean %.3f, want ~10", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	sum, ss := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean %.3f, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		p := New(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// rank 0 must dominate rank 10, which must dominate rank 90
	if !(counts[0] > counts[10] && counts[10] > counts[90]) {
		t.Fatalf("zipf not skewed: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlate: %d/1000", same)
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("Hash64 collision at %d", i)
		}
		seen[h] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
