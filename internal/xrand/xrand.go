// Package xrand provides the deterministic random-number generation used by
// every stochastic component of ATLAHS (workload generators, ECN marking,
// ECMP hashing, placement shuffles).
//
// A single splitmix64-based generator with an explicit seed keeps runs
// reproducible: the same seed always yields the same trace, the same
// simulation and therefore the same experiment output. The stdlib
// math/rand global source is deliberately not used anywhere.
package xrand

import "math"

// RNG is a small, fast, seedable pseudo-random generator (splitmix64 for
// stream derivation feeding an xoshiro256**-style core).
type RNG struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Split derives an independent child generator; handy for giving each
// component (e.g. each switch port) its own stream without correlation.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed float64 (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples from a bounded Zipf distribution over [0, n) with skew s>0
// using inverse-CDF on the precomputed harmonic weights held in z.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next Zipf-distributed index in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Hash64 mixes x into a well-distributed 64-bit hash (used for stateless
// deterministic choices such as ECMP path selection).
func Hash64(x uint64) uint64 {
	return splitmix64(&x)
}
