package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/goal"
	"atlahs/internal/placement"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/workload/llm"
	"atlahs/internal/workload/micro"
	"atlahs/results"
)

// Fig1CRow is one workload's Swift-vs-MPRDMA comparison.
type Fig1CRow struct {
	Workload string
	MPRDMA   simtime.Duration
	Swift    simtime.Duration
	// DeltaPct is Swift's slowdown (+) or speedup (-) relative to MPRDMA,
	// the percentage annotated in the paper's Fig 1C.
	DeltaPct float64
}

// Fig1CResult collects all rows.
type Fig1CResult struct {
	Mode Mode
	Rows []Fig1CRow
}

// Fig1C computes the experiment and renders its text report — the
// compute-then-present composition of ComputeFig1C and Render.
func Fig1C(w io.Writer, mode Mode, workers int) (*Fig1CResult, error) {
	res, err := ComputeFig1C(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeFig1C reproduces the motivating experiment (paper Fig 1C): Swift
// and MPRDMA perform comparably on synthetic incast/permutation
// microbenchmarks, but replayed LLM training traffic — DP ring allreduces
// congesting multi-hop paths shared with PP victim flows (Fig 1B) —
// exposes Swift's weakness: its single end-to-end delay measurement cannot
// localise the congested hop. Workload points fan out across up to
// `workers` goroutines; results are identical for any budget.
func ComputeFig1C(mode Mode, workers int) (*Fig1CResult, error) {
	dom := AIDomain()

	hosts := 32
	if mode == Quick {
		hosts = 16
	}
	incast := micro.Incast(hosts, 8, 1<<20)
	perm := micro.Permutation(hosts, 1<<20, 11)

	// the LLM workload: PP victim flows + DP rings on a 2:1 oversubscribed
	// tree with the job's nodes interleaved across ToRs (multi-hop
	// congestion, paper Fig 1B)
	scale := 2e-4
	batch := 32
	if mode == Quick {
		batch = 16
	}
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 4, DP: 4, EP: 1, GlobalBatch: batch},
		Scale: scale,
		Seed:  21,
	})
	if err != nil {
		return nil, err
	}
	llmSched, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 4, Channels: 2})
	if err != nil {
		return nil, err
	}
	llmSched, err = placement.Remap(llmSched, InterleaveMapping(llmSched.NumRanks(), 2), llmSched.NumRanks())
	if err != nil {
		return nil, err
	}

	res := &Fig1CResult{Mode: mode}
	cases := []struct {
		name        string
		sched       *goal.Schedule
		hostsPerToR int
		oversub     int
	}{
		{"incast 8:1 (synthetic)", incast, 4, 1},
		{"permutation (synthetic)", perm, 4, 1},
		{"Llama 7B training iteration", llmSched, 2, 2},
	}
	// Each workload's MPRDMA/Swift pair is an independent simulation
	// stack; workloads fan out across the worker budget and rows land at
	// their index.
	rows := make([]Fig1CRow, len(cases))
	err = ForEach(workers, len(cases), func(i int) error {
		c := cases[i]
		nodes := c.sched.NumRanks()
		tp1, err := FatTree(nodes, c.hostsPerToR, c.oversub, dom)
		if err != nil {
			return err
		}
		mp, err := RunPkt(c.sched, tp1, "mprdma", 1, dom)
		if err != nil {
			return fmt.Errorf("fig1c %s mprdma: %w", c.name, err)
		}
		tp2, err := FatTree(nodes, c.hostsPerToR, c.oversub, dom)
		if err != nil {
			return err
		}
		sw, err := RunPkt(c.sched, tp2, "swift", 1, dom)
		if err != nil {
			return fmt.Errorf("fig1c %s swift: %w", c.name, err)
		}
		rows[i] = Fig1CRow{
			Workload: c.name,
			MPRDMA:   mp.Runtime,
			Swift:    sw.Runtime,
			DeltaPct: 100 * (float64(sw.Runtime) - float64(mp.Runtime)) / float64(mp.Runtime),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render writes the paper-style text report.
func (r *Fig1CResult) Render(w io.Writer) {
	header(w, "Fig 1C — CC algorithms: synthetic microbenchmarks vs LLM training traffic")
	fmt.Fprintf(w, "%-32s %14s %14s %9s\n", "workload", "MPRDMA", "Swift", "Swift Δ%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-32s %14v %14v %+8.1f%%\n", row.Workload, row.MPRDMA, row.Swift, row.DeltaPct)
	}
	fmt.Fprintln(w, "\npaper: Swift ≈ MPRDMA on synthetic benchmarks; ~4% slower on the real AI trace.")
}

// Sweep exports the computed rows as a structured record set.
func (r *Fig1CResult) Sweep() *results.Sweep {
	s := results.NewSweep("fig1c", "Fig 1C — CC algorithms: synthetic microbenchmarks vs LLM training traffic", r.Mode.String())
	s.AddColumn("workload", results.String, "").
		AddColumn("mprdma", results.Duration, "ps").
		AddColumn("swift", results.Duration, "ps").
		AddColumn("swift_delta_pct", results.Float, "%")
	for _, row := range r.Rows {
		s.MustAddRow(row.Workload, row.MPRDMA, row.Swift, row.DeltaPct)
	}
	s.Note("paper: Swift ≈ MPRDMA on synthetic benchmarks; ~4% slower on the real AI trace.")
	return s
}
