package experiments

import "atlahs/internal/goal"

// mustScheduleForComputeTest builds one rank with calcs 5,5 on stream 0
// and 7 on stream 1.
func mustScheduleForComputeTest() *goal.Schedule {
	b := goal.NewBuilder(1)
	r := b.Rank(0)
	r.CalcOn(5, 0)
	r.CalcOn(5, 0)
	r.CalcOn(7, 1)
	return b.MustBuild()
}
