package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/backend"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/workload/hpcapps"
	"atlahs/results"
)

// Fig10Row is one HPC app/configuration validation outcome.
type Fig10Row struct {
	App        string
	Procs      int
	Nodes      int
	Measured   simtime.Duration
	ComputePct float64
	LGS        simtime.Duration
	LGSErrPct  float64
	Pkt        simtime.Duration
	PktErrPct  float64
}

// Fig10Result collects all configurations.
type Fig10Result struct {
	Mode Mode
	Rows []Fig10Row
	// MaxAbsErrPct is the worst |error| across all rows and backends —
	// the paper's claim is that it stays below ~5%.
	MaxAbsErrPct float64
}

// fig10Cases returns the paper's 15 (app, procs, nodes) pairs; Quick mode
// keeps one small configuration per app.
func fig10Cases(mode Mode) []struct {
	app          hpcapps.App
	procs, nodes int
} {
	type c = struct {
		app          hpcapps.App
		procs, nodes int
	}
	if mode == Quick {
		return []c{
			{hpcapps.CloverLeaf, 16, 4}, {hpcapps.HPCG, 16, 4},
			{hpcapps.LULESH, 16, 4}, {hpcapps.LAMMPS, 16, 4},
			{hpcapps.ICON, 16, 4}, {hpcapps.OpenMX, 16, 4},
		}
	}
	return []c{
		{hpcapps.CloverLeaf, 128, 8},
		{hpcapps.HPCG, 128, 8}, {hpcapps.HPCG, 512, 32}, {hpcapps.HPCG, 1024, 64},
		{hpcapps.LULESH, 128, 8}, {hpcapps.LULESH, 432, 27}, {hpcapps.LULESH, 1024, 64},
		{hpcapps.LAMMPS, 128, 8}, {hpcapps.LAMMPS, 512, 32}, {hpcapps.LAMMPS, 1024, 64},
		{hpcapps.ICON, 128, 8}, {hpcapps.ICON, 512, 32}, {hpcapps.ICON, 1024, 64},
		{hpcapps.OpenMX, 128, 8}, {hpcapps.OpenMX, 512, 32},
	}
}

// Fig10 computes the experiment and renders its text report — the
// compute-then-present composition of ComputeFig10 and Render.
func Fig10(w io.Writer, mode Mode, workers int) (*Fig10Result, error) {
	res, err := ComputeFig10(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeFig10 reproduces the HPC validation (paper Fig 10): ATLAHS
// predictions against the measured runtime of six scientific applications
// across weak- and strong-scaling configurations. The paper's testbed is a
// 188-node CSCS cluster; here the fluid emulator plays that role (see
// DESIGN.md), with each MPI process on its own simulated endpoint.
// Configuration points fan out across up to `workers` goroutines; rows
// land at their index, so results are identical for any budget.
func ComputeFig10(mode Mode, workers int) (*Fig10Result, error) {
	res := &Fig10Result{Mode: mode}
	dom := HPCDomain()
	steps := 5
	if mode == Quick {
		steps = 2
	}
	cases := fig10Cases(mode)
	rows := make([]Fig10Row, len(cases))
	err := ForEach(workers, len(cases), func(i int) error {
		c := cases[i]
		tr, err := hpcapps.Generate(hpcapps.Config{
			App: c.app, Ranks: c.procs, Steps: steps, Seed: uint64(100 + i), ScaleBytes: 0.5,
		})
		if err != nil {
			return fmt.Errorf("fig10 %s: %w", c.app, err)
		}
		sch, err := schedgen.Generate(tr, schedgen.Options{})
		if err != nil {
			return fmt.Errorf("fig10 %s schedgen: %w", c.app, err)
		}
		tpM, err := FatTree(c.procs, 16, 1, dom)
		if err != nil {
			return err
		}
		measured, _, err := RunFluid(sch, tpM, uint64(200+i), dom)
		if err != nil {
			return fmt.Errorf("fig10 %s measured: %w", c.app, err)
		}
		row := Fig10Row{App: string(c.app), Procs: c.procs, Nodes: c.nodes, Measured: measured}
		row.ComputePct = 100 * float64(ComputeOnlyRuntime(sch)) / float64(measured)

		lgs, _, err := RunLGS(sch, backend.HPCParams())
		if err != nil {
			return fmt.Errorf("fig10 %s lgs: %w", c.app, err)
		}
		row.LGS = lgs
		row.LGSErrPct = PercentErr(lgs, measured)

		tpP, err := FatTree(c.procs, 16, 1, dom)
		if err != nil {
			return err
		}
		pkt, err := RunPkt(sch, tpP, "mprdma", uint64(300+i), dom)
		if err != nil {
			return fmt.Errorf("fig10 %s pkt: %w", c.app, err)
		}
		row.Pkt = pkt.Runtime
		row.PktErrPct = PercentErr(pkt.Runtime, measured)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	for _, row := range rows {
		for _, e := range []float64{row.LGSErrPct, row.PktErrPct} {
			if a := abs(e); a > res.MaxAbsErrPct {
				res.MaxAbsErrPct = a
			}
		}
	}
	return res, nil
}

// Render writes the paper-style text report.
func (r *Fig10Result) Render(w io.Writer) {
	header(w, "Fig 10 — HPC validation: measured vs predicted application runtime")
	fmt.Fprintf(w, "%-12s %-12s %12s %7s %22s %22s\n",
		"app", "procs/nodes", "measured", "comp%", "LGS (err%)", "pkt (err%)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %5d/%-6d %12v %6.1f%% %14v (%+.1f%%) %14v (%+.1f%%)\n",
			row.App, row.Procs, row.Nodes, row.Measured, row.ComputePct,
			row.LGS, row.LGSErrPct, row.Pkt, row.PktErrPct)
	}
	fmt.Fprintf(w, "\nworst |error| across rows and backends: %.1f%%\n", r.MaxAbsErrPct)
	fmt.Fprintln(w, "paper: all errors below ~5% for both ATLAHS backends.")
}

// Sweep exports the computed rows as a structured record set.
func (r *Fig10Result) Sweep() *results.Sweep {
	s := results.NewSweep("fig10", "Fig 10 — HPC validation: measured vs predicted application runtime", r.Mode.String())
	s.AddColumn("app", results.String, "").
		AddColumn("procs", results.Int, "").
		AddColumn("nodes", results.Int, "").
		AddColumn("measured", results.Duration, "ps").
		AddColumn("compute_pct", results.Float, "%").
		AddColumn("lgs", results.Duration, "ps").
		AddColumn("lgs_err_pct", results.Float, "%").
		AddColumn("pkt", results.Duration, "ps").
		AddColumn("pkt_err_pct", results.Float, "%")
	for _, row := range r.Rows {
		s.MustAddRow(row.App, row.Procs, row.Nodes, row.Measured, row.ComputePct,
			row.LGS, row.LGSErrPct, row.Pkt, row.PktErrPct)
	}
	s.SetDerived("max_abs_err_pct", r.MaxAbsErrPct)
	s.Note("paper: all errors below ~5% for both ATLAHS backends.")
	return s
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
