package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/placement"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/results"
)

// Fig13Row is one allocation strategy's per-job runtimes.
type Fig13Row struct {
	Strategy string
	Llama    simtime.Duration
	LULESH   simtime.Duration
}

// Fig13Result carries both strategies, the cluster shape the report
// prints, and the paper's deltas.
type Fig13Result struct {
	Mode Mode
	// ClusterNodes, LlamaNodes and LULESHNodes describe the shared
	// cluster and its two jobs.
	ClusterNodes int
	LlamaNodes   int
	LULESHNodes  int
	Rows         []Fig13Row
	// Slowdowns of random relative to packed allocation.
	LlamaDeltaPct, LULESHDeltaPct float64
}

// Fig13 computes the experiment and renders its text report — the
// compute-then-present composition of ComputeFig13 and Render.
func Fig13(w io.Writer, mode Mode, workers int) (*Fig13Result, error) {
	res, err := ComputeFig13(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeFig13 reproduces the job-placement case study (paper §6.3, Fig
// 13): an AI job (Llama) and an HPC job (LULESH) share an oversubscribed
// cluster. Packed allocation keeps each job's traffic local to its ToRs;
// random allocation forces it through the oversubscribed core, inflating
// the communication-bound job's runtime far more than the compute-bound
// one. The two allocation strategies fan out across up to `workers`
// goroutines; results are identical for any budget.
func ComputeFig13(mode Mode, workers int) (*Fig13Result, error) {
	dom := AIDomain()
	llamaNodes := 8
	luleshRanks := 8
	scale := 2e-4
	steps := 3
	if mode == Quick {
		llamaNodes = 4
		luleshRanks = 4
		steps = 2
	}

	// job A: Llama data-parallel training (communication heavy)
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: llamaNodes * 4, EP: 1, GlobalBatch: llamaNodes * 8},
		Scale: scale,
		Seed:  66,
	})
	if err != nil {
		return nil, err
	}
	llamaSched, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 4, Channels: 2})
	if err != nil {
		return nil, err
	}
	// job B: LULESH (compute heavy, limited non-overlapped communication)
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.LULESH, Ranks: luleshRanks, Steps: steps, Seed: 67})
	if err != nil {
		return nil, err
	}
	luleshSched, err := schedgen.Generate(tr, schedgen.Options{})
	if err != nil {
		return nil, err
	}

	cluster := llamaSched.NumRanks() + luleshSched.NumRanks()
	res := &Fig13Result{
		Mode:         mode,
		ClusterNodes: cluster,
		LlamaNodes:   llamaSched.NumRanks(),
		LULESHNodes:  luleshSched.NumRanks(),
	}

	// The two allocation strategies are independent packet simulations
	// over the same (read-only) job schedules; they fan out across the
	// worker budget and land at their index.
	strats := []placement.Strategy{placement.Packed, placement.RandomStrat}
	rows := make([]Fig13Row, len(strats))
	err = ForEach(workers, len(strats), func(i int) error {
		strat := strats[i]
		sets, err := placement.SplitCluster(cluster, []int{llamaSched.NumRanks(), luleshSched.NumRanks()}, strat, 99)
		if err != nil {
			return err
		}
		merged, err := placement.Merge(cluster,
			placement.Job{Sched: llamaSched, Nodes: sets[0]},
			placement.Job{Sched: luleshSched, Nodes: sets[1]},
		)
		if err != nil {
			return err
		}
		tp, err := FatTree(cluster, 4, 4, dom)
		if err != nil {
			return err
		}
		run, err := RunPkt(merged, tp, "mprdma", 5, dom)
		if err != nil {
			return fmt.Errorf("fig13 %v: %w", strat, err)
		}
		jobEnd := func(nodes []int) simtime.Duration {
			var max simtime.Time
			for _, nd := range nodes {
				if run.RankEnd[nd] > max {
					max = run.RankEnd[nd]
				}
			}
			return simtime.Duration(max)
		}
		rows[i] = Fig13Row{Strategy: strat.String(), Llama: jobEnd(sets[0]), LULESH: jobEnd(sets[1])}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.LlamaDeltaPct = 100 * (float64(res.Rows[1].Llama) - float64(res.Rows[0].Llama)) / float64(res.Rows[0].Llama)
	res.LULESHDeltaPct = 100 * (float64(res.Rows[1].LULESH) - float64(res.Rows[0].LULESH)) / float64(res.Rows[0].LULESH)
	return res, nil
}

// Render writes the paper-style text report.
func (r *Fig13Result) Render(w io.Writer) {
	header(w, "Fig 13 — job placement: packed vs random allocation")
	fmt.Fprintf(w, "cluster: %d nodes, 4:1 oversubscribed fat tree; jobs: Llama (%d nodes) + LULESH (%d nodes)\n\n",
		r.ClusterNodes, r.LlamaNodes, r.LULESHNodes)
	fmt.Fprintf(w, "%-20s %16s %16s\n", "allocation", "Llama", "LULESH")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-20s %16v %16v\n", row.Strategy, row.Llama, row.LULESH)
	}
	fmt.Fprintf(w, "\nrandom vs packed: Llama %+.0f%%, LULESH %+.0f%%\n", r.LlamaDeltaPct, r.LULESHDeltaPct)
	fmt.Fprintln(w, "paper: random allocation costs Llama +36% and LULESH only +2%.")
}

// Sweep exports the computed rows as a structured record set.
func (r *Fig13Result) Sweep() *results.Sweep {
	s := results.NewSweep("fig13", "Fig 13 — job placement: packed vs random allocation", r.Mode.String())
	s.AddColumn("strategy", results.String, "").
		AddColumn("llama", results.Duration, "ps").
		AddColumn("lulesh", results.Duration, "ps")
	for _, row := range r.Rows {
		s.MustAddRow(row.Strategy, row.Llama, row.LULESH)
	}
	s.SetParam("cluster_nodes", fmt.Sprint(r.ClusterNodes))
	s.SetParam("llama_nodes", fmt.Sprint(r.LlamaNodes))
	s.SetParam("lulesh_nodes", fmt.Sprint(r.LULESHNodes))
	s.SetDerived("llama_delta_pct", r.LlamaDeltaPct)
	s.SetDerived("lulesh_delta_pct", r.LULESHDeltaPct)
	s.Note("paper: random allocation costs Llama +36% and LULESH only +2%.")
	return s
}
