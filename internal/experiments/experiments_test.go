package experiments

import (
	"io"
	"strings"
	"testing"
)

func TestFig1CQuick(t *testing.T) {
	var sb strings.Builder
	res, err := Fig1C(&sb, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MPRDMA <= 0 || r.Swift <= 0 {
			t.Fatalf("zero runtime in %+v", r)
		}
	}
	// synthetic benchmarks: the two algorithms within 25% of each other
	for _, r := range res.Rows[:2] {
		if d := abs(r.DeltaPct); d > 25 {
			t.Errorf("synthetic workload %q diverges %0.1f%%", r.Workload, d)
		}
	}
	if !strings.Contains(sb.String(), "Swift") {
		t.Fatal("no output produced")
	}
}

func TestTable1Quick(t *testing.T) {
	var sb strings.Builder
	res, err := Table1(&sb, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.TraceBytes <= 0 || r.GOALBytes <= 0 {
			t.Fatalf("zero size in %+v", r)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	var sb strings.Builder
	res, err := Fig8(&sb, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	sawAstraOK, sawAstraFail := false, false
	for _, r := range res.Rows {
		if r.Measured <= 0 || r.LGS <= 0 || r.Pkt <= 0 {
			t.Fatalf("zero runtime in %+v", r)
		}
		// ATLAHS backends should track the fluid testbed reasonably
		if a := abs(r.LGSErrPct); a > 40 {
			t.Errorf("%s: LGS error %.1f%% implausibly large", r.Label, a)
		}
		if r.ComputePct <= 0 || r.ComputePct > 100 {
			t.Errorf("%s: compute%% = %.1f", r.Label, r.ComputePct)
		}
		if r.AstraErr == "" {
			sawAstraOK = true
		} else {
			sawAstraFail = true
		}
	}
	if !sawAstraOK {
		t.Error("astra baseline never succeeded (should run the pure-DP config)")
	}
	if !sawAstraFail {
		t.Error("astra baseline never failed (should reject PP/TP configs)")
	}
}

func TestFig9Quick(t *testing.T) {
	res, err := Fig9(io.Discard, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Ratio <= 1 {
			t.Errorf("%s: Chakra (%d B) not larger than GOAL (%d B)", r.Label, r.ChakraBytes, r.GOALBytes)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	var sb strings.Builder
	res, err := Fig10(&sb, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	if res.MaxAbsErrPct > 8 {
		t.Errorf("worst error %.1f%% above the paper's ~5%% band", res.MaxAbsErrPct)
	}
}

func TestFig11Quick(t *testing.T) {
	var sb strings.Builder
	res, err := Fig11(&sb, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells=%d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Msgs == 0 || c.MeanUs <= 0 || c.MaxUs < c.P99Us || c.P99Us < c.MeanUs {
			t.Fatalf("inconsistent MCT cell %+v", c)
		}
	}
}

func TestFig12Quick(t *testing.T) {
	var sb strings.Builder
	res, err := Fig12(&sb, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	full, over := res.Rows[0], res.Rows[1]
	// oversubscription must slow the packet backend while LGS is oblivious
	if over.Pkt <= full.Pkt {
		t.Errorf("4:1 pkt (%v) not slower than 1:1 (%v)", over.Pkt, full.Pkt)
	}
	if full.LGS != over.LGS {
		t.Error("LGS should be identical across topologies (topology-oblivious)")
	}
	if abs(over.GapPct) <= abs(full.GapPct) {
		t.Errorf("LGS error should grow with oversubscription: %.1f%% vs %.1f%%", full.GapPct, over.GapPct)
	}
}

func TestFig13Quick(t *testing.T) {
	var sb strings.Builder
	res, err := Fig13(&sb, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// the communication-bound job must suffer more from random placement
	if res.LlamaDeltaPct < res.LULESHDeltaPct {
		t.Errorf("Llama (%.0f%%) should suffer more than LULESH (%.0f%%)", res.LlamaDeltaPct, res.LULESHDeltaPct)
	}
}

func TestComputeOnlyRuntime(t *testing.T) {
	// via a tiny handmade schedule: two streams 5+5 and 7 -> 10 max
	b := mustScheduleForComputeTest()
	if got := ComputeOnlyRuntime(b); got.Nanoseconds() != 10 {
		t.Fatalf("ComputeOnlyRuntime=%v, want 10ns", got)
	}
}
