package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/goal"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/workload/llm"
)

// Fig9Row compares GOAL and Chakra trace sizes for one configuration.
type Fig9Row struct {
	Label       string
	GOALBytes   int64
	ChakraBytes int64
	Ratio       float64 // Chakra / GOAL (the paper's green labels, inverted)
}

// Fig9Result collects all configurations.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 reproduces the trace-size comparison (paper Fig 9): the binary GOAL
// files ATLAHS simulates from are consistently smaller than the Chakra
// execution traces AstraSim consumes (1.8x-10.6x in the paper).
func Fig9(w io.Writer, mode Mode, workers int) (*Fig9Result, error) {
	header(w, "Fig 9 — trace size: GOAL vs Chakra")
	res := &Fig9Result{}
	fmt.Fprintf(w, "%-38s %12s %12s %8s\n", "configuration", "GOAL (MiB)", "Chakra (MiB)", "ratio")
	for i, c := range fig8Cases(mode) {
		cfg := llm.Config{Model: c.Model, Par: c.Par, Scale: c.Scale, Seed: uint64(40 + i)}
		rep, err := llm.Generate(cfg)
		if err != nil {
			return nil, err
		}
		sch, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: c.GPN})
		if err != nil {
			return nil, err
		}
		var goalCW countingWriter
		if err := goal.WriteBinary(&goalCW, sch); err != nil {
			return nil, err
		}
		ctr, err := llm.GenerateChakra(cfg)
		if err != nil {
			return nil, err
		}
		var chakraCW countingWriter
		if _, err := ctr.WriteTo(&chakraCW); err != nil {
			return nil, err
		}
		row := Fig9Row{
			Label:       c.Label,
			GOALBytes:   goalCW.n,
			ChakraBytes: chakraCW.n,
			Ratio:       float64(chakraCW.n) / float64(goalCW.n),
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(w, "%-38s %12.3f %12.3f %7.2fx\n",
			row.Label, MiB(row.GOALBytes), MiB(row.ChakraBytes), row.Ratio)
	}
	fmt.Fprintln(w, "\npaper: Chakra traces are 1.8x-10.6x larger than the GOAL equivalents.")
	return res, nil
}
