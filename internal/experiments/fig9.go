package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/goal"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/workload/llm"
	"atlahs/results"
)

// Fig9Row compares GOAL and Chakra trace sizes for one configuration.
type Fig9Row struct {
	Label       string
	GOALBytes   int64
	ChakraBytes int64
	Ratio       float64 // Chakra / GOAL (the paper's green labels, inverted)
}

// Fig9Result collects all configurations.
type Fig9Result struct {
	Mode Mode
	Rows []Fig9Row
}

// Fig9 computes the experiment and renders its text report — the
// compute-then-present composition of ComputeFig9 and Render.
func Fig9(w io.Writer, mode Mode, workers int) (*Fig9Result, error) {
	res, err := ComputeFig9(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeFig9 reproduces the trace-size comparison (paper Fig 9): the
// binary GOAL files ATLAHS simulates from are consistently smaller than
// the Chakra execution traces AstraSim consumes (1.8x-10.6x in the paper).
// Configuration points fan out across up to `workers` goroutines; rows
// land at their index, so results are identical for any budget.
func ComputeFig9(mode Mode, workers int) (*Fig9Result, error) {
	res := &Fig9Result{Mode: mode}
	cases := fig8Cases(mode)
	rows := make([]Fig9Row, len(cases))
	err := ForEach(workers, len(cases), func(i int) error {
		c := cases[i]
		cfg := llm.Config{Model: c.Model, Par: c.Par, Scale: c.Scale, Seed: uint64(40 + i)}
		rep, err := llm.Generate(cfg)
		if err != nil {
			return err
		}
		sch, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: c.GPN})
		if err != nil {
			return err
		}
		var goalCW countingWriter
		if err := goal.WriteBinary(&goalCW, sch); err != nil {
			return err
		}
		ctr, err := llm.GenerateChakra(cfg)
		if err != nil {
			return err
		}
		var chakraCW countingWriter
		if _, err := ctr.WriteTo(&chakraCW); err != nil {
			return err
		}
		rows[i] = Fig9Row{
			Label:       c.Label,
			GOALBytes:   goalCW.n,
			ChakraBytes: chakraCW.n,
			Ratio:       float64(chakraCW.n) / float64(goalCW.n),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render writes the paper-style text report.
func (r *Fig9Result) Render(w io.Writer) {
	header(w, "Fig 9 — trace size: GOAL vs Chakra")
	fmt.Fprintf(w, "%-38s %12s %12s %8s\n", "configuration", "GOAL (MiB)", "Chakra (MiB)", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-38s %12.3f %12.3f %7.2fx\n",
			row.Label, MiB(row.GOALBytes), MiB(row.ChakraBytes), row.Ratio)
	}
	fmt.Fprintln(w, "\npaper: Chakra traces are 1.8x-10.6x larger than the GOAL equivalents.")
}

// Sweep exports the computed rows as a structured record set.
func (r *Fig9Result) Sweep() *results.Sweep {
	s := results.NewSweep("fig9", "Fig 9 — trace size: GOAL vs Chakra", r.Mode.String())
	s.AddColumn("configuration", results.String, "").
		AddColumn("goal_bytes", results.Int, "B").
		AddColumn("chakra_bytes", results.Int, "B").
		AddColumn("ratio", results.Float, "")
	for _, row := range r.Rows {
		s.MustAddRow(row.Label, row.GOALBytes, row.ChakraBytes, row.Ratio)
	}
	s.Note("paper: Chakra traces are 1.8x-10.6x larger than the GOAL equivalents.")
	return s
}
