// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 validation, §6 case studies). Each experiment is a
// function writing the paper's rows/series to an io.Writer and returning a
// structured result for tests and benchmarks. Absolute numbers differ from
// the paper (the testbed is the fluid emulator, not Alps/CSCS hardware, and
// byte counts are scaled); the shapes — who wins, by what factor, where
// crossovers fall — are the reproduction targets, recorded side-by-side in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"atlahs/internal/backend"
	"atlahs/internal/goal"
	"atlahs/internal/pktnet"
	"atlahs/internal/simtime"
	"atlahs/internal/stats"
	"atlahs/internal/topo"
	"atlahs/sim"
)

// Mode selects experiment sizing: Quick keeps everything test-sized; Full
// is the default for cmd/experiments.
type Mode int

// Modes.
const (
	Quick Mode = iota
	Full
)

// String names the mode as recorded in exported result artifacts.
func (m Mode) String() string {
	if m == Quick {
		return "quick"
	}
	return "full"
}

// Domain bundles per-domain calibration: link parameters for the
// congestion-aware backends and host overheads matching the LogGOPS o
// parameter, so all backends in one validation experiment model the same
// machine (paper §5.2: "we configure ATLAHS htsim to also match these
// parameters used by ATLAHS LGS").
type Domain struct {
	Link   topo.LinkSpec
	Params backend.NetParams
	LGS    backend.LogGOPS
	// TestbedOverhead is the extra per-message software latency of the
	// fluid "measured" system beyond the host overheads (stack traversal,
	// completion interrupts) — part of the independent ground-truth model.
	TestbedOverhead simtime.Duration
}

// AIDomain calibrates for the Alps-like AI cluster: 25 GB/s links
// (G = 40 ps/B), per-link latency chosen so a 4-hop cross-ToR path matches
// L = 3.7 us, o = 200 ns host overheads.
func AIDomain() Domain {
	return Domain{
		Link: topo.LinkSpec{
			Latency:   900 * simtime.Nanosecond,
			PsPerByte: 40 * simtime.Picosecond,
			BufBytes:  1 << 20,
		},
		Params: backend.NetParams{
			SendOverhead: 200 * simtime.Nanosecond,
			RecvOverhead: 200 * simtime.Nanosecond,
		},
		LGS:             backend.AIParams(),
		TestbedOverhead: 500 * simtime.Nanosecond,
	}
}

// HPCDomain calibrates for the CSCS test-bed: 56 Gbit/s links
// (G = 180 ps/B), 4-hop path latency ~= L = 3 us, o = 6 us overheads,
// 256 KB rendezvous threshold in the LGS backend.
func HPCDomain() Domain {
	return Domain{
		Link: topo.LinkSpec{
			Latency:   600 * simtime.Nanosecond,
			PsPerByte: 180 * simtime.Picosecond,
			BufBytes:  1 << 20,
		},
		Params: backend.NetParams{
			SendOverhead: 6 * simtime.Microsecond,
			RecvOverhead: 6 * simtime.Microsecond,
		},
		LGS:             backend.HPCParams(),
		TestbedOverhead: 1500 * simtime.Nanosecond,
	}
}

// RunLGS simulates s on the LogGOPS backend through the sim facade and
// reports simulated runtime plus wall-clock simulation time.
func RunLGS(s *goal.Schedule, p backend.LogGOPS) (simtime.Duration, time.Duration, error) {
	res, err := sim.Run(context.Background(), sim.Spec{
		Workload: sim.Workload{Schedule: s},
		Backend:  "lgs",
		Config:   sim.LGSConfig{Params: p},
	})
	if err != nil {
		return 0, 0, err
	}
	return res.Runtime, res.Wall, nil
}

// PktRun bundles the packet-backend results.
type PktRun struct {
	Runtime simtime.Duration
	Wall    time.Duration
	Stats   pktnet.Stats
	MCT     *stats.Sample
	RankEnd []simtime.Time
}

// RunPkt simulates s on the packet-level backend over the given topology
// and congestion control through the sim facade, collecting MCT samples.
func RunPkt(s *goal.Schedule, tp *topo.Topology, ccName string, seed uint64, dom Domain) (*PktRun, error) {
	mct := &stats.Sample{}
	res, err := sim.Run(context.Background(), sim.Spec{
		Workload: sim.Workload{Schedule: s},
		Backend:  "pkt",
		Config: sim.PktConfig{
			Topo:   tp,
			CC:     ccName,
			Seed:   seed,
			Params: dom.Params,
			MCT:    mct,
		},
	})
	if err != nil {
		return nil, err
	}
	return &PktRun{
		Runtime: res.Runtime,
		Wall:    res.Wall,
		Stats:   *res.Net,
		MCT:     mct,
		RankEnd: res.RankEnd,
	}, nil
}

// RunFluid simulates s on the fluid emulator — the "measured" testbed of
// the validation experiments (see DESIGN.md substitution table). Jitter
// and per-message overhead emulate system noise deterministically.
func RunFluid(s *goal.Schedule, tp *topo.Topology, seed uint64, dom Domain) (simtime.Duration, []simtime.Time, error) {
	res, err := sim.Run(context.Background(), sim.Spec{
		Workload: sim.Workload{Schedule: s},
		Backend:  "fluid",
		Config: sim.FluidConfig{
			Topo:       tp,
			Overhead:   dom.TestbedOverhead,
			JitterFrac: 0.03,
			Seed:       seed,
			Params:     dom.Params,
		},
	})
	if err != nil {
		return 0, nil, err
	}
	return res.Runtime, res.RankEnd, nil
}

// FatTree builds a two-level fat tree with hosts rounded up to fill ToRs
// and the requested ToR:Core oversubscription ratio (cores =
// hostsPerToR/oversub, minimum 1).
func FatTree(hosts, hostsPerToR, oversub int, dom Domain) (*topo.Topology, error) {
	cores := hostsPerToR / oversub
	if cores < 1 {
		cores = 1
	}
	return backend.FatTreeFor(hosts, hostsPerToR, cores, dom.Link)
}

// InterleaveMapping spreads job nodes round-robin across ToRs (node i to
// physical host (i % nToRs)*hostsPerToR + i/nToRs, folded to stay a
// permutation of [0, n)). Real schedulers rarely hand a job ToR-contiguous
// ranks, and ring collectives over interleaved nodes push every edge
// through the core — the congestion regime of the paper's
// oversubscription case studies (Figs 1B, 12).
func InterleaveMapping(n, hostsPerToR int) []int {
	nToRs := (n + hostsPerToR - 1) / hostsPerToR
	m := make([]int, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		c := (i%nToRs)*hostsPerToR + i/nToRs
		if c >= n || seen[c] {
			c = 0
			for seen[c] {
				c++
			}
		}
		m[i] = c
		seen[c] = true
	}
	return m
}

// ComputeOnlyRuntime returns the critical-path computation time of a
// schedule: the maximum over (rank, stream) of the summed calc durations.
// The validation figures report the "non-overlapped computation" share as
// this value over the measured runtime.
func ComputeOnlyRuntime(s *goal.Schedule) simtime.Duration {
	var max simtime.Duration
	for r := range s.Ranks {
		perStream := map[int32]simtime.Duration{}
		for i := range s.Ranks[r].Ops {
			op := &s.Ranks[r].Ops[i]
			if op.Kind == goal.KindCalc {
				perStream[op.CPU] += op.CalcDuration(1.0)
			}
		}
		for _, d := range perStream {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// PercentErr is shorthand for the paper's error convention.
func PercentErr(predicted, measured simtime.Duration) float64 {
	return stats.PercentError(float64(predicted), float64(measured))
}

// header prints an underlined section title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}

// MiB renders a byte count in mebibytes.
func MiB(n int64) float64 { return float64(n) / (1 << 20) }

// oneline flattens free text (e.g. wrapped error messages) to a single
// line, as the results schema requires of string cells.
func oneline(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
