package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"atlahs/internal/astra"
	"atlahs/internal/goal"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/chakra"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/workload/llm"
	"atlahs/results"
)

// fig8Case is one AI validation configuration (paper Fig 8's x-axis).
type fig8Case struct {
	Label string
	Model llm.Model
	Par   llm.Parallelism
	Scale float64
	GPN   int // GPUs per node
}

// fig8Cases returns the paper's six configurations; Quick mode shrinks
// the large ones to keep packet-level simulation test-sized.
func fig8Cases(mode Mode) []fig8Case {
	if mode == Quick {
		return []fig8Case{
			{"Llama 7B TP1 PP1 DP8", llm.Llama7B(), llm.Parallelism{TP: 1, PP: 1, DP: 8, EP: 1, GlobalBatch: 16}, 5e-5, 4},
			{"Llama 70B TP1 PP4 DP2", llm.Llama70B(), llm.Parallelism{TP: 1, PP: 4, DP: 2, EP: 1, GlobalBatch: 8}, 2e-5, 4},
			{"MoE 8x13B TP2 PP2 DP4 EP2", llm.MoE8x13B(), llm.Parallelism{TP: 2, PP: 2, DP: 4, EP: 2, GlobalBatch: 16}, 2e-5, 4},
		}
	}
	return []fig8Case{
		{"Llama 7B 16 GPUs TP1 PP1 DP16", llm.Llama7B(), llm.Parallelism{TP: 1, PP: 1, DP: 16, EP: 1, GlobalBatch: 32}, 2e-4, 4},
		{"Llama 7B 128 GPUs TP1 PP1 DP128", llm.Llama7B(), llm.Parallelism{TP: 1, PP: 1, DP: 128, EP: 1, GlobalBatch: 128}, 5e-5, 4},
		{"Llama 70B 256 GPUs TP1 PP8 DP32", llm.Llama70B(), llm.Parallelism{TP: 1, PP: 8, DP: 32, EP: 1, GlobalBatch: 32}, 2e-5, 4},
		{"Mistral 8x7B 64 GPUs TP1 PP8 DP8", llm.Mistral8x7B(), llm.Parallelism{TP: 1, PP: 8, DP: 8, EP: 1, GlobalBatch: 32}, 5e-5, 4},
		{"MoE 8x13B 128 GPUs TP4 PP4 DP8 EP4", llm.MoE8x13B(), llm.Parallelism{TP: 4, PP: 4, DP: 8, EP: 4, GlobalBatch: 128}, 2e-5, 4},
		{"MoE 8x70B 256 GPUs TP4 PP8 DP8 EP8", llm.MoE8x70B(), llm.Parallelism{TP: 4, PP: 8, DP: 8, EP: 8, GlobalBatch: 128}, 1e-5, 4},
	}
}

// Fig8Row is one configuration's validation outcome.
type Fig8Row struct {
	Label       string
	Measured    simtime.Duration // fluid testbed ("measured")
	ComputePct  float64          // non-overlapped computation share
	LGS         simtime.Duration
	LGSErrPct   float64
	Pkt         simtime.Duration
	PktErrPct   float64
	Astra       simtime.Duration // 0 when the baseline failed
	AstraErrPct float64
	AstraErr    string // failure reason when the baseline cannot run

	LGSWall, PktWall, AstraWall time.Duration
}

// Fig8Result collects all configurations.
type Fig8Result struct {
	Mode Mode
	Rows []Fig8Row
}

// Fig8 computes the experiment and renders its text report — the
// compute-then-present composition of ComputeFig8 and Render.
func Fig8(w io.Writer, mode Mode, workers int) (*Fig8Result, error) {
	res, err := ComputeFig8(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeFig8 reproduces the AI validation (paper Fig 8): measured
// iteration time versus ATLAHS LGS, ATLAHS packet-level and the
// AstraSim-lite baseline across six LLM configurations, plus the
// simulation wall-clock comparison reported in §5.2 (LGS 13.9x/2.7x faster
// than AstraSim). Configuration points fan out across up to `workers`
// goroutines; simulated results are identical for any budget.
func ComputeFig8(mode Mode, workers int) (*Fig8Result, error) {
	res := &Fig8Result{Mode: mode}
	dom := AIDomain()
	cases := fig8Cases(mode)
	rows := make([]Fig8Row, len(cases))
	// Every configuration is an isolated simulation stack (own engines,
	// seeds, topologies), so the sweep fans out across the worker budget;
	// rows land at their index and present in order.
	err := ForEach(workers, len(cases), func(i int) error {
		c := cases[i]
		rep, err := llm.Generate(llm.Config{Model: c.Model, Par: c.Par, Scale: c.Scale, Seed: uint64(40 + i)})
		if err != nil {
			return fmt.Errorf("fig8 %s: %w", c.Label, err)
		}
		sch, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: c.GPN})
		if err != nil {
			return fmt.Errorf("fig8 %s goal: %w", c.Label, err)
		}
		nodes := sch.NumRanks()
		tpM, err := FatTree(nodes, 4, 1, dom)
		if err != nil {
			return err
		}
		measured, _, err := RunFluid(sch, tpM, uint64(70+i), dom)
		if err != nil {
			return fmt.Errorf("fig8 %s measured: %w", c.Label, err)
		}
		row := Fig8Row{Label: c.Label, Measured: measured}
		row.ComputePct = 100 * float64(ComputeOnlyRuntime(sch)) / float64(measured)

		// wall-clock comparisons time the full simulator workflow: load the
		// serialised trace, then simulate (the paper measures whole runs)
		var goalBin bytes.Buffer
		if err := goal.WriteBinary(&goalBin, sch); err != nil {
			return err
		}
		lgsStart := time.Now()
		schLoaded, err := goal.ReadBinary(bytes.NewReader(goalBin.Bytes()))
		if err != nil {
			return err
		}
		lgs, _, err := RunLGS(schLoaded, dom.LGS)
		if err != nil {
			return fmt.Errorf("fig8 %s lgs: %w", c.Label, err)
		}
		row.LGS, row.LGSWall = lgs, time.Since(lgsStart)
		row.LGSErrPct = PercentErr(lgs, measured)

		tpP, err := FatTree(nodes, 4, 1, dom)
		if err != nil {
			return err
		}
		pkt, err := RunPkt(sch, tpP, "mprdma", uint64(90+i), dom)
		if err != nil {
			return fmt.Errorf("fig8 %s pkt: %w", c.Label, err)
		}
		row.Pkt, row.PktWall = pkt.Runtime, pkt.Wall
		row.PktErrPct = PercentErr(pkt.Runtime, measured)

		// AstraSim-lite baseline on the Chakra rendering (load + simulate)
		ctr, err := llm.GenerateChakra(llm.Config{Model: c.Model, Par: c.Par, Scale: c.Scale, Seed: uint64(40 + i)})
		if err != nil {
			return err
		}
		var chakraBin bytes.Buffer
		if _, err := ctr.WriteTo(&chakraBin); err != nil {
			return err
		}
		aStart := time.Now()
		ctrLoaded, aerr := chakra.Parse(bytes.NewReader(chakraBin.Bytes()))
		var ares *astra.Result
		if aerr == nil {
			ares, aerr = astra.Simulate(ctrLoaded, astra.Config{})
		}
		row.AstraWall = time.Since(aStart)
		if aerr != nil {
			row.AstraErr = aerr.Error()
		} else {
			row.Astra = ares.Runtime
			row.AstraErrPct = PercentErr(ares.Runtime, measured)
		}

		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render writes the paper-style text report: the validation table and the
// §5.2 wall-clock comparison.
func (r *Fig8Result) Render(w io.Writer) {
	header(w, "Fig 8 — AI validation: measured vs predicted training-iteration time")
	fmt.Fprintf(w, "%-38s %12s %7s %22s %22s %s\n",
		"configuration", "measured", "comp%", "LGS (err%)", "pkt (err%)", "astra (err%)")
	for _, row := range r.Rows {
		astraCol := "FAILED (unsupported parallelism)"
		if row.AstraErr == "" {
			astraCol = fmt.Sprintf("%v (%+.1f%%)", row.Astra, row.AstraErrPct)
		}
		fmt.Fprintf(w, "%-38s %12v %6.1f%% %14v (%+.1f%%) %14v (%+.1f%%) %s\n",
			row.Label, row.Measured, row.ComputePct,
			row.LGS, row.LGSErrPct, row.Pkt, row.PktErrPct, astraCol)
	}

	fmt.Fprintln(w, "\nsimulation wall-clock (paper §5.2: LGS 13.9x/2.7x faster than AstraSim):")
	fmt.Fprintf(w, "%-38s %12s %12s %12s\n", "configuration", "LGS", "pkt", "astra")
	for _, row := range r.Rows {
		astraWall := "n/a (failed)"
		if row.AstraErr == "" {
			astraWall = row.AstraWall.String()
		}
		fmt.Fprintf(w, "%-38s %12v %12v %12s\n", row.Label, row.LGSWall, row.PktWall, astraWall)
	}
	fmt.Fprintln(w, "\npaper: ATLAHS errors stay within ~5%; AstraSim runs only the two pure-DP")
	fmt.Fprintln(w, "configs (errors 27% / 125.5%) and fails on PP/TP/EP parallelism.")
}

// Sweep exports the computed rows as a structured record set. The wall
// columns are measurements of the generating host (nanoseconds of real
// time), not simulated results; astra columns are zero when the baseline
// failed, with the reason in astra_err.
func (r *Fig8Result) Sweep() *results.Sweep {
	s := results.NewSweep("fig8", "Fig 8 — AI validation: measured vs predicted training-iteration time", r.Mode.String())
	s.AddColumn("configuration", results.String, "").
		AddColumn("measured", results.Duration, "ps").
		AddColumn("compute_pct", results.Float, "%").
		AddColumn("lgs", results.Duration, "ps").
		AddColumn("lgs_err_pct", results.Float, "%").
		AddColumn("pkt", results.Duration, "ps").
		AddColumn("pkt_err_pct", results.Float, "%").
		AddColumn("astra", results.Duration, "ps").
		AddColumn("astra_err_pct", results.Float, "%").
		AddColumn("astra_err", results.String, "").
		AddColumn("lgs_wall_ns", results.Int, "ns").
		AddColumn("pkt_wall_ns", results.Int, "ns").
		AddColumn("astra_wall_ns", results.Int, "ns")
	for _, row := range r.Rows {
		s.MustAddRow(row.Label, row.Measured, row.ComputePct,
			row.LGS, row.LGSErrPct, row.Pkt, row.PktErrPct,
			row.Astra, row.AstraErrPct, oneline(row.AstraErr),
			row.LGSWall.Nanoseconds(), row.PktWall.Nanoseconds(), row.AstraWall.Nanoseconds())
	}
	s.Note("paper: ATLAHS errors stay within ~5%; AstraSim runs only the two pure-DP",
		"configs (errors 27% / 125.5%) and fails on PP/TP/EP parallelism.")
	return s
}
