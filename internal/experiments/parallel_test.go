package experiments

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var hits [20]atomic.Int32
		if err := ForEach(workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachReturnsFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 2:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error %v", err, errA)
	}
}

// TestRunAllParallelMatchesSerial: the concurrent experiment runner must
// produce byte-identical output to a serial run. Fig 8 is excluded here
// because it prints wall-clock columns, which legitimately vary run to
// run; its simulated results are covered by TestFig8ParallelPoints.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-suite comparison")
	}
	names := []string{"fig1c", "fig9", "fig12"}
	run := func(workers int) string {
		t.Helper()
		var buf bytes.Buffer
		if err := RunAll(&buf, Quick, workers, names); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("parallel RunAll output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if serial == "" {
		t.Fatal("empty output")
	}
}

// TestFig8ParallelPoints: Fig 8's configuration points fanned out across
// workers must produce the same simulated rows as the serial sweep
// (wall-clock fields excluded — they are measurements of this host, not of
// the simulation).
func TestFig8ParallelPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fig8 sweeps")
	}
	run := func(workers int) *Fig8Result {
		t.Helper()
		res, err := Fig8(io.Discard, Quick, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(3)
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row count %d vs %d", len(parallel.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		s, p := serial.Rows[i], parallel.Rows[i]
		s.LGSWall, s.PktWall, s.AstraWall = 0, 0, 0
		p.LGSWall, p.PktWall, p.AstraWall = 0, 0, 0
		if s != p {
			t.Fatalf("row %d diverged:\nserial:   %+v\nparallel: %+v", i, p, s)
		}
	}
}

func TestRunAllRejectsUnknownName(t *testing.T) {
	if err := RunAll(io.Discard, Quick, 2, []string{"fig99"}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

// TestFig10ParallelPoints: Fig 10's configuration points fanned out across
// workers must produce the same rows and output as the serial sweep (no
// wall-clock fields to exclude — Fig 10 prints only simulated values).
func TestFig10ParallelPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fig10 sweeps")
	}
	run := func(workers int) (*Fig10Result, string) {
		t.Helper()
		var buf bytes.Buffer
		res, err := Fig10(&buf, Quick, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	serial, serialOut := run(1)
	parallel, parallelOut := run(3)
	if serialOut != parallelOut {
		t.Fatalf("fig10 output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parallelOut)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row count %d vs %d", len(parallel.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != parallel.Rows[i] {
			t.Fatalf("row %d diverged:\nserial:   %+v\nparallel: %+v", i, parallel.Rows[i], serial.Rows[i])
		}
	}
}

// TestRunAllIsReentrant: with the sweep budget threaded through calls
// instead of living in a package global, concurrent evaluations in one
// process must not interfere — every run's output equals a lone serial
// run's.
func TestRunAllIsReentrant(t *testing.T) {
	if testing.Short() {
		t.Skip("several quick-suite runs")
	}
	names := []string{"fig1c", "fig9"}
	var want bytes.Buffer
	if err := RunAll(&want, Quick, 1, names); err != nil {
		t.Fatal(err)
	}
	const concurrent = 3
	outs := make([]bytes.Buffer, concurrent)
	errs := make([]error, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = RunAll(&outs[i], Quick, 2, names)
		}()
	}
	wg.Wait()
	for i := 0; i < concurrent; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if outs[i].String() != want.String() {
			t.Fatalf("concurrent run %d diverged from the serial run", i)
		}
	}
}

// TestFannedFiguresParallelPoints: every remaining figure's per-call
// fan-out (fig9, fig11, fig12, fig13, fig1c, table1 — fig8 and fig10 have
// their own suites above) must render byte-identically for any worker
// budget; none of these reports prints host wall-clock fields.
func TestFannedFiguresParallelPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick sweeps per figure")
	}
	for _, name := range []string{"fig9", "fig11", "fig12", "fig13", "fig1c", "table1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				rep, err := computers[name](Quick, workers)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				rep.Render(&buf)
				return buf.String()
			}
			serial := render(1)
			parallel := render(3)
			if serial != parallel {
				t.Fatalf("%s output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", name, serial, parallel)
			}
		})
	}
}
