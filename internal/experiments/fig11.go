package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/storage/directdrive"
	"atlahs/internal/trace/spc"
)

// Fig11Cell is the MCT distribution of one (topology, CC) combination.
type Fig11Cell struct {
	Topology string
	CC       string
	MeanUs   float64
	P99Us    float64
	MaxUs    float64
	Msgs     int
}

// Fig11Result collects the four cells plus the paper's degradation deltas.
type Fig11Result struct {
	Cells []Fig11Cell
	// NDP degradation at 8:1 oversubscription relative to MPRDMA (the
	// paper reports +14% mean, +35% p99, +77% max).
	NDPMeanDeltaPct, NDPP99DeltaPct, NDPMaxDeltaPct float64
}

// Fig11 reproduces the storage case study (paper §6.1, Fig 11): 5k
// operations drawn from the Financial distribution replayed through the
// Direct Drive model, comparing MPRDMA (sender-based) and NDP
// (receiver-driven) message completion times on a fully provisioned versus
// an 8:1 oversubscribed fat tree. Receiver-driven control cannot see
// in-network congestion away from the receiver, so NDP's tail degrades
// under oversubscription.
func Fig11(w io.Writer, mode Mode, workers int) (*Fig11Result, error) {
	header(w, "Fig 11 — storage MCT under different CC algorithms and topologies")
	ops := 5000
	hosts := 8
	if mode == Quick {
		ops = 400
		hosts = 4
	}
	tr := spc.GenerateFinancial(spc.FinancialConfig{Ops: ops, Seed: 77})
	st := tr.ComputeStats()
	fmt.Fprintf(w, "workload: %d Financial-distribution ops, %.0f%% writes, mean %.0f B\n",
		st.Ops, 100*st.WriteRatio, st.MeanBytes)

	sch, layout, err := directdrive.Generate(tr, directdrive.Config{Hosts: hosts, CCS: 2, BSS: 8})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "storage system: %v\n\n", layout)

	dom := AIDomain()
	res := &Fig11Result{}
	fmt.Fprintf(w, "%-22s %-8s %10s %10s %10s %8s\n", "topology", "cc", "mean (µs)", "p99 (µs)", "max (µs)", "msgs")
	get := func(topoLabel string, oversub int, cc string, seed uint64) (*Fig11Cell, error) {
		tp, err := FatTree(sch.NumRanks(), 4, oversub, dom)
		if err != nil {
			return nil, err
		}
		run, err := RunPkt(sch, tp, cc, seed, dom)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s/%s: %w", topoLabel, cc, err)
		}
		cell := &Fig11Cell{
			Topology: topoLabel,
			CC:       cc,
			MeanUs:   run.MCT.Mean(),
			P99Us:    run.MCT.Percentile(99),
			MaxUs:    run.MCT.Max(),
			Msgs:     run.MCT.N(),
		}
		res.Cells = append(res.Cells, *cell)
		fmt.Fprintf(w, "%-22s %-8s %10.2f %10.2f %10.2f %8d\n",
			cell.Topology, cell.CC, cell.MeanUs, cell.P99Us, cell.MaxUs, cell.Msgs)
		return cell, nil
	}
	if _, err := get("no oversubscription", 1, "mprdma", 1); err != nil {
		return nil, err
	}
	if _, err := get("no oversubscription", 1, "ndp", 1); err != nil {
		return nil, err
	}
	mp8, err := get("8:1 oversubscription", 8, "mprdma", 1)
	if err != nil {
		return nil, err
	}
	ndp8, err := get("8:1 oversubscription", 8, "ndp", 1)
	if err != nil {
		return nil, err
	}
	res.NDPMeanDeltaPct = 100 * (ndp8.MeanUs - mp8.MeanUs) / mp8.MeanUs
	res.NDPP99DeltaPct = 100 * (ndp8.P99Us - mp8.P99Us) / mp8.P99Us
	res.NDPMaxDeltaPct = 100 * (ndp8.MaxUs - mp8.MaxUs) / mp8.MaxUs
	fmt.Fprintf(w, "\nNDP vs MPRDMA at 8:1: mean %+.0f%%, p99 %+.0f%%, max %+.0f%%\n",
		res.NDPMeanDeltaPct, res.NDPP99DeltaPct, res.NDPMaxDeltaPct)
	fmt.Fprintln(w, "paper: comparable when fully provisioned; at 8:1 NDP degrades by +14% mean, +35% p99, +77% max.")
	return res, nil
}
