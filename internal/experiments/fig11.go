package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/storage/directdrive"
	"atlahs/internal/workload/oltp"
	"atlahs/results"
)

// Fig11Cell is the MCT distribution of one (topology, CC) combination.
type Fig11Cell struct {
	Topology string
	CC       string
	MeanUs   float64
	P99Us    float64
	MaxUs    float64
	Msgs     int
}

// Fig11Result collects the four cells plus the paper's degradation deltas
// and the workload/system description the report prints.
type Fig11Result struct {
	Mode Mode
	// WorkloadOps, WritePct and MeanBytes describe the generated SPC
	// trace; Layout describes the Direct Drive system it maps onto.
	WorkloadOps int
	WritePct    float64
	MeanBytes   float64
	Layout      string
	Cells       []Fig11Cell
	// NDP degradation at 8:1 oversubscription relative to MPRDMA (the
	// paper reports +14% mean, +35% p99, +77% max).
	NDPMeanDeltaPct, NDPP99DeltaPct, NDPMaxDeltaPct float64
}

// Fig11 computes the experiment and renders its text report — the
// compute-then-present composition of ComputeFig11 and Render.
func Fig11(w io.Writer, mode Mode, workers int) (*Fig11Result, error) {
	res, err := ComputeFig11(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeFig11 reproduces the storage case study (paper §6.1, Fig 11): 5k
// operations drawn from the Financial distribution replayed through the
// Direct Drive model, comparing MPRDMA (sender-based) and NDP
// (receiver-driven) message completion times on a fully provisioned versus
// an 8:1 oversubscribed fat tree. Receiver-driven control cannot see
// in-network congestion away from the receiver, so NDP's tail degrades
// under oversubscription. The four (topology, CC) cells fan out across up
// to `workers` goroutines; results are identical for any budget.
func ComputeFig11(mode Mode, workers int) (*Fig11Result, error) {
	ops := 5000
	hosts := 8
	if mode == Quick {
		ops = 400
		hosts = 4
	}
	tr := oltp.GenerateFinancial(oltp.FinancialConfig{Ops: ops, Seed: 77})
	st := tr.ComputeStats()

	sch, layout, err := directdrive.Generate(tr, directdrive.Config{Hosts: hosts, CCS: 2, BSS: 8})
	if err != nil {
		return nil, err
	}

	res := &Fig11Result{
		Mode:        mode,
		WorkloadOps: st.Ops,
		WritePct:    100 * st.WriteRatio,
		MeanBytes:   st.MeanBytes,
		Layout:      fmt.Sprintf("%v", layout),
	}
	dom := AIDomain()
	// The four (topology, CC) cells are independent packet simulations, so
	// they fan out across the worker budget; cells land at their index.
	points := []struct {
		label   string
		oversub int
		cc      string
		seed    uint64
	}{
		{"no oversubscription", 1, "mprdma", 1},
		{"no oversubscription", 1, "ndp", 1},
		{"8:1 oversubscription", 8, "mprdma", 1},
		{"8:1 oversubscription", 8, "ndp", 1},
	}
	cells := make([]Fig11Cell, len(points))
	err = ForEach(workers, len(points), func(i int) error {
		p := points[i]
		tp, err := FatTree(sch.NumRanks(), 4, p.oversub, dom)
		if err != nil {
			return err
		}
		run, err := RunPkt(sch, tp, p.cc, p.seed, dom)
		if err != nil {
			return fmt.Errorf("fig11 %s/%s: %w", p.label, p.cc, err)
		}
		cells[i] = Fig11Cell{
			Topology: p.label,
			CC:       p.cc,
			MeanUs:   run.MCT.Mean(),
			P99Us:    run.MCT.Percentile(99),
			MaxUs:    run.MCT.Max(),
			Msgs:     run.MCT.N(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	mp8, ndp8 := &cells[2], &cells[3]
	res.NDPMeanDeltaPct = 100 * (ndp8.MeanUs - mp8.MeanUs) / mp8.MeanUs
	res.NDPP99DeltaPct = 100 * (ndp8.P99Us - mp8.P99Us) / mp8.P99Us
	res.NDPMaxDeltaPct = 100 * (ndp8.MaxUs - mp8.MaxUs) / mp8.MaxUs
	return res, nil
}

// Render writes the paper-style text report.
func (r *Fig11Result) Render(w io.Writer) {
	header(w, "Fig 11 — storage MCT under different CC algorithms and topologies")
	fmt.Fprintf(w, "workload: %d Financial-distribution ops, %.0f%% writes, mean %.0f B\n",
		r.WorkloadOps, r.WritePct, r.MeanBytes)
	fmt.Fprintf(w, "storage system: %s\n\n", r.Layout)
	fmt.Fprintf(w, "%-22s %-8s %10s %10s %10s %8s\n", "topology", "cc", "mean (µs)", "p99 (µs)", "max (µs)", "msgs")
	for _, cell := range r.Cells {
		fmt.Fprintf(w, "%-22s %-8s %10.2f %10.2f %10.2f %8d\n",
			cell.Topology, cell.CC, cell.MeanUs, cell.P99Us, cell.MaxUs, cell.Msgs)
	}
	fmt.Fprintf(w, "\nNDP vs MPRDMA at 8:1: mean %+.0f%%, p99 %+.0f%%, max %+.0f%%\n",
		r.NDPMeanDeltaPct, r.NDPP99DeltaPct, r.NDPMaxDeltaPct)
	fmt.Fprintln(w, "paper: comparable when fully provisioned; at 8:1 NDP degrades by +14% mean, +35% p99, +77% max.")
}

// Sweep exports the computed cells as a structured record set.
func (r *Fig11Result) Sweep() *results.Sweep {
	s := results.NewSweep("fig11", "Fig 11 — storage MCT under different CC algorithms and topologies", r.Mode.String())
	s.AddColumn("topology", results.String, "").
		AddColumn("cc", results.String, "").
		AddColumn("mean_us", results.Float, "us").
		AddColumn("p99_us", results.Float, "us").
		AddColumn("max_us", results.Float, "us").
		AddColumn("msgs", results.Int, "")
	for _, cell := range r.Cells {
		s.MustAddRow(cell.Topology, cell.CC, cell.MeanUs, cell.P99Us, cell.MaxUs, cell.Msgs)
	}
	s.SetParam("workload_ops", fmt.Sprint(r.WorkloadOps))
	s.SetParam("write_pct", fmt.Sprintf("%.0f", r.WritePct))
	s.SetParam("mean_bytes", fmt.Sprintf("%.0f", r.MeanBytes))
	s.SetParam("layout", r.Layout)
	s.SetDerived("ndp_mean_delta_pct", r.NDPMeanDeltaPct)
	s.SetDerived("ndp_p99_delta_pct", r.NDPP99DeltaPct)
	s.SetDerived("ndp_max_delta_pct", r.NDPMaxDeltaPct)
	s.Note("paper: comparable when fully provisioned; at 8:1 NDP degrades by +14% mean, +35% p99, +77% max.")
	return s
}
