package experiments

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"atlahs/results"
)

// wallRE matches host wall-clock tokens (time.Duration renderings like
// "813.154µs", "2.2ms", "1m2.3s") inside Fig 8's wall-clock table,
// without touching the digits of configuration labels ("Llama 7B DP8").
var wallRE = regexp.MustCompile(`(\d+(\.\d+)?(h|ms|m|s|µs|ns))+`)

// spaceRE collapses the column padding around normalized wall tokens.
var spaceRE = regexp.MustCompile(` +`)

// normalizeWallClock replaces the host-measured durations in Fig 8's
// "simulation wall-clock" section with a fixed token: they are
// measurements of the generating machine and legitimately vary run to
// run, while everything else in the report is simulated and pinned
// byte-for-byte.
func normalizeWallClock(s string) string {
	lines := strings.Split(s, "\n")
	inWall := false
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "simulation wall-clock"):
			inWall = true
		case inWall && line == "":
			inWall = false
		case inWall && !strings.HasPrefix(line, "configuration"):
			// Collapse the padding too: %12v column widths shift with the
			// rendered duration's length.
			lines[i] = spaceRE.ReplaceAllString(wallRE.ReplaceAllString(line, "WALL"), " ")
		}
	}
	return strings.Join(lines, "\n")
}

// TestQuickArtifacts is the golden + round-trip suite: for every
// experiment it computes the quick sweep once, then
//
//   - pins Render's text byte-identical to the pre-refactor CLI output
//     (testdata/golden/<name>.quick.txt, captured from the streamed
//     Fprintf implementation this Report API replaced), and
//   - validates the exported results.Sweep against the schema and pins
//     JSON and CSV encode→decode lossless.
func TestQuickArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-suite recomputation")
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			rep, err := computers[name](Quick, 1)
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			rep.Render(&buf)
			got := buf.String()
			goldenPath := filepath.Join("testdata", "golden", name+".quick.txt")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			gotCmp, wantCmp := got, string(want)
			if name == "fig8" {
				gotCmp, wantCmp = normalizeWallClock(gotCmp), normalizeWallClock(wantCmp)
			}
			if gotCmp != wantCmp {
				t.Errorf("rendered text diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, gotCmp, wantCmp)
			}

			sweep := rep.Sweep()
			if sweep.Name != name {
				t.Errorf("sweep name %q, want %q", sweep.Name, name)
			}
			if sweep.Mode != "quick" {
				t.Errorf("sweep mode %q, want quick", sweep.Mode)
			}
			if len(sweep.Rows) == 0 {
				t.Fatal("sweep has no rows")
			}
			if err := sweep.Validate(); err != nil {
				t.Fatalf("sweep invalid: %v", err)
			}

			var js bytes.Buffer
			if err := results.EncodeJSON(&js, sweep); err != nil {
				t.Fatal(err)
			}
			fromJSON, err := results.DecodeJSON(&js)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fromJSON, sweep) {
				t.Errorf("JSON round trip diverged:\ngot  %#v\nwant %#v", fromJSON, sweep)
			}

			var cs bytes.Buffer
			if err := results.EncodeCSV(&cs, sweep); err != nil {
				t.Fatal(err)
			}
			fromCSV, err := results.DecodeCSV(bytes.NewReader(cs.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fromCSV, sweep) {
				t.Errorf("CSV round trip diverged:\ngot  %#v\nwant %#v", fromCSV, sweep)
			}
		})
	}
}

// TestNormalizeWallClock pins the golden comparison's one escape hatch: it
// must rewrite only the wall-clock table's duration tokens, leaving the
// simulated tables alone.
func TestNormalizeWallClock(t *testing.T) {
	in := strings.Join([]string{
		"cfg                  254.663us   79.6%",
		"",
		"simulation wall-clock (paper §5.2: ...):",
		"configuration        LGS          pkt        astra",
		"cfg                  813.154µs   2.217598ms   3.846685ms",
		"Llama 7B TP1 DP8     1m2.5s      919.801µs n/a (failed)",
		"",
		"paper: ATLAHS errors stay within ~5%; more text 27% / 125.5%.",
	}, "\n")
	want := strings.Join([]string{
		"cfg                  254.663us   79.6%",
		"",
		"simulation wall-clock (paper §5.2: ...):",
		"configuration        LGS          pkt        astra",
		"cfg WALL WALL WALL",
		"Llama 7B TP1 DP8 WALL WALL n/a (failed)",
		"",
		"paper: ATLAHS errors stay within ~5%; more text 27% / 125.5%.",
	}, "\n")
	if got := normalizeWallClock(in); got != want {
		t.Fatalf("normalizeWallClock:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRunAllPropagatesWriteErrors: a failing sink must fail the run — the
// historical implementation discarded Fprintf errors and reported success
// over a truncated report (the exit-0 bug the CI smoke job asserts on).
func TestRunAllPropagatesWriteErrors(t *testing.T) {
	sentinel := errors.New("sink full")
	err := RunAll(&failingWriter{failAfter: 64, err: sentinel}, Quick, 1, []string{"fig9"})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunAll over a failing writer returned %v, want the sink error", err)
	}
	if err == nil || !strings.Contains(err.Error(), "fig9") {
		t.Fatalf("error %q does not name the experiment", err)
	}
}

// failingWriter accepts failAfter bytes, then fails every write.
type failingWriter struct {
	failAfter int
	written   int
	err       error
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.failAfter {
		return 0, f.err
	}
	f.written += len(p)
	return len(p), nil
}

// TestReportsAndCollect: the structured counterparts of RunAll must return
// one report/sweep per requested experiment, in request order, with
// parallel computation changing nothing.
func TestReportsAndCollect(t *testing.T) {
	names := []string{"fig9", "fig1c"}
	reps, err := Reports(Quick, 2, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports", len(reps))
	}
	sweeps, err := Collect(Quick, 1, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if got := reps[i].Sweep().Name; got != name {
			t.Errorf("report %d sweep name %q, want %q", i, got, name)
		}
		if sweeps[i].Name != name {
			t.Errorf("collected sweep %d name %q, want %q", i, sweeps[i].Name, name)
		}
	}
	// fig9 is deterministic: the parallel report must equal the serial one.
	if !reflect.DeepEqual(reps[0].Sweep(), sweeps[0]) {
		t.Error("fig9 sweep diverged between Reports(workers=2) and Collect(workers=1)")
	}
	if _, err := Collect(Quick, 1, []string{"fig99"}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
	all, err := Collect(Quick, 1, nil)
	if err == nil && len(all) != len(Names()) {
		t.Fatalf("Collect(nil) returned %d sweeps, want %d", len(all), len(Names()))
	}
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range Names() {
		if all[i].Name != name {
			t.Errorf("Collect(nil)[%d] = %q, want %q", i, all[i].Name, name)
		}
	}
}

// TestGoldenFilesPresent guards against golden files going missing
// silently (TestQuickArtifacts skips under -short, this does not).
func TestGoldenFilesPresent(t *testing.T) {
	for _, name := range Names() {
		if _, err := os.Stat(filepath.Join("testdata", "golden", name+".quick.txt")); err != nil {
			t.Errorf("missing golden file for %s: %v", name, err)
		}
	}
}
