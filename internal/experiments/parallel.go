package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"atlahs/results"
)

// ForEach runs fn(i) for every i in [0, n) across up to `workers`
// goroutines and returns the first error (by index order among the points
// that ran). A failure stops new points from starting — in-flight ones
// finish — so a broken sweep fails fast instead of burning through the
// remaining configurations. Every configuration point of the evaluation
// figures is an isolated simulation with its own engine and seed, so
// points can fan out freely; callers keep determinism by writing results
// into index i of a pre-sized slice and printing after the join.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Names lists every experiment RunAll understands, in paper order.
func Names() []string {
	return []string{"fig1c", "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
}

// Report is one computed experiment: every figure/table separates
// computation (ComputeFigX, returning the typed result) from presentation,
// and the result renders either as the paper-style text report or as a
// structured results.Sweep for machine-readable export.
type Report interface {
	// Render writes the text report (byte-identical to the historical
	// streamed output, pinned by the golden suite).
	Render(w io.Writer)
	// Sweep exports the computed data as a typed record set.
	Sweep() *results.Sweep
}

// computers maps experiment names to their compute functions. Every
// function takes the sweep budget for its own configuration-point
// fan-out, so no worker state lives outside the call stack.
var computers = map[string]func(Mode, int) (Report, error){
	"fig1c":  func(m Mode, workers int) (Report, error) { return ComputeFig1C(m, workers) },
	"table1": func(m Mode, workers int) (Report, error) { return ComputeTable1(m, workers) },
	"fig8":   func(m Mode, workers int) (Report, error) { return ComputeFig8(m, workers) },
	"fig9":   func(m Mode, workers int) (Report, error) { return ComputeFig9(m, workers) },
	"fig10":  func(m Mode, workers int) (Report, error) { return ComputeFig10(m, workers) },
	"fig11":  func(m Mode, workers int) (Report, error) { return ComputeFig11(m, workers) },
	"fig12":  func(m Mode, workers int) (Report, error) { return ComputeFig12(m, workers) },
	"fig13":  func(m Mode, workers int) (Report, error) { return ComputeFig13(m, workers) },
}

// RunAll regenerates the named experiments (all of them when names is
// empty), fanning independent experiments across up to `workers`
// goroutines (workers <= 0 means GOMAXPROCS). The worker budget is split
// between the two fan-out levels — experiments here, configuration points
// inside each experiment — so total concurrency stays near `workers`
// instead of multiplying. The budget is threaded through every call, so
// RunAll is reentrant: concurrent evaluations in one process do not
// interfere.
//
// With one outer worker, each experiment's report streams to w as soon as
// that experiment finishes computing; with more, each experiment renders
// into its own buffer and buffers flush in request order. Simulated
// results are identical either way — only wall-clock columns (the host
// measurements some figures print) vary run to run, and under concurrency
// they additionally measure core contention from sibling simulations.
func RunAll(w io.Writer, mode Mode, workers int, names []string) error {
	names, outer, inner, err := resolve(workers, names)
	if err != nil {
		return err
	}
	if outer <= 1 {
		// Serial outer level: stream incrementally, as the CLI always has.
		for _, name := range names {
			rep, err := computers[name](mode, inner)
			if err != nil {
				return fmt.Errorf("experiment %s failed: %w", name, err)
			}
			if err := RenderTo(w, rep); err != nil {
				return fmt.Errorf("experiments: writing %s output: %w", name, err)
			}
		}
		return nil
	}
	bufs := make([]bytes.Buffer, len(names))
	flushed := 0
	var mu sync.Mutex
	var writeErr error
	flush := func(done []bool) { // caller holds mu
		for writeErr == nil && flushed < len(names) && done[flushed] {
			if _, err := io.Copy(w, &bufs[flushed]); err != nil {
				writeErr = fmt.Errorf("experiments: writing %s output: %w", names[flushed], err)
				return
			}
			flushed++
		}
	}
	done := make([]bool, len(names))
	err = ForEach(outer, len(names), func(i int) error {
		rep, ferr := computers[names[i]](mode, inner)
		if ferr == nil {
			rep.Render(&bufs[i])
		}
		mu.Lock()
		done[i] = true
		flush(done)
		mu.Unlock()
		if ferr != nil {
			return fmt.Errorf("experiment %s failed: %w", names[i], ferr)
		}
		return nil
	})
	mu.Lock()
	flush(done)
	mu.Unlock()
	if err != nil {
		return err
	}
	return writeErr
}

// Reports computes the named experiments (all of them when names is empty)
// and returns their Reports in request order, fanning out across the
// worker budget exactly like RunAll.
func Reports(mode Mode, workers int, names []string) ([]Report, error) {
	names, outer, inner, err := resolve(workers, names)
	if err != nil {
		return nil, err
	}
	reps := make([]Report, len(names))
	err = ForEach(outer, len(names), func(i int) error {
		rep, ferr := computers[names[i]](mode, inner)
		if ferr != nil {
			return fmt.Errorf("experiment %s failed: %w", names[i], ferr)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reps, nil
}

// Collect computes the named experiments and returns their structured
// sweeps in request order — the machine-readable counterpart of RunAll.
func Collect(mode Mode, workers int, names []string) ([]*results.Sweep, error) {
	reps, err := Reports(mode, workers, names)
	if err != nil {
		return nil, err
	}
	sweeps := make([]*results.Sweep, len(reps))
	for i, rep := range reps {
		sweeps[i] = rep.Sweep()
	}
	return sweeps, nil
}

// resolve validates names (defaulting to all experiments) and splits the
// worker budget between the two fan-out levels — experiments at the outer
// level, configuration points inside each — so total concurrency stays
// near `workers` instead of multiplying.
func resolve(workers int, names []string) (resolved []string, outer, inner int, err error) {
	if len(names) == 0 {
		names = Names()
	}
	for _, name := range names {
		if _, ok := computers[name]; !ok {
			return nil, 0, 0, fmt.Errorf("experiments: unknown experiment %q", name)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer = workers
	if outer > len(names) {
		outer = len(names)
	}
	inner = workers / outer
	if inner < 1 {
		inner = 1
	}
	return names, outer, inner, nil
}

// RenderTo renders rep's text report to w and surfaces writer failures
// (full disk, closed pipe) that Render's Fprintf calls discard, so a
// broken sink fails the caller instead of silently truncating the report.
func RenderTo(w io.Writer, rep Report) error {
	ew := &errWriter{w: w}
	rep.Render(ew)
	return ew.err
}

// errWriter passes writes through and remembers the first failure.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}
