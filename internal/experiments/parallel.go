package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across up to `workers`
// goroutines and returns the first error (by index order among the points
// that ran). A failure stops new points from starting — in-flight ones
// finish — so a broken sweep fails fast instead of burning through the
// remaining configurations. Every configuration point of the evaluation
// figures is an isolated simulation with its own engine and seed, so
// points can fan out freely; callers keep determinism by writing results
// into index i of a pre-sized slice and printing after the join.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Names lists every experiment RunAll understands, in paper order.
func Names() []string {
	return []string{"fig1c", "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
}

// runners maps experiment names to their generator functions. Every
// generator takes the sweep budget for its own configuration-point
// fan-out, so no worker state lives outside the call stack.
var runners = map[string]func(io.Writer, Mode, int) error{
	"fig1c":  func(w io.Writer, m Mode, workers int) error { _, err := Fig1C(w, m, workers); return err },
	"table1": func(w io.Writer, m Mode, workers int) error { _, err := Table1(w, m, workers); return err },
	"fig8":   func(w io.Writer, m Mode, workers int) error { _, err := Fig8(w, m, workers); return err },
	"fig9":   func(w io.Writer, m Mode, workers int) error { _, err := Fig9(w, m, workers); return err },
	"fig10":  func(w io.Writer, m Mode, workers int) error { _, err := Fig10(w, m, workers); return err },
	"fig11":  func(w io.Writer, m Mode, workers int) error { _, err := Fig11(w, m, workers); return err },
	"fig12":  func(w io.Writer, m Mode, workers int) error { _, err := Fig12(w, m, workers); return err },
	"fig13":  func(w io.Writer, m Mode, workers int) error { _, err := Fig13(w, m, workers); return err },
}

// RunAll regenerates the named experiments (all of them when names is
// empty), fanning independent experiments across up to `workers`
// goroutines (workers <= 0 means GOMAXPROCS). The worker budget is split
// between the two fan-out levels — experiments here, configuration points
// inside each experiment — so total concurrency stays near `workers`
// instead of multiplying. The budget is threaded through every call, so
// RunAll is reentrant: concurrent evaluations in one process do not
// interfere.
//
// With one outer worker, experiments stream straight to w as they
// compute; with more, each experiment writes into its own buffer and
// buffers flush in request order. Simulated results are identical either
// way — only wall-clock columns (the host measurements some figures
// print) vary run to run, and under concurrency they additionally measure
// core contention from sibling simulations.
func RunAll(w io.Writer, mode Mode, workers int, names []string) error {
	if len(names) == 0 {
		names = Names()
	}
	for _, name := range names {
		if _, ok := runners[name]; !ok {
			return fmt.Errorf("experiments: unknown experiment %q", name)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer := workers
	if outer > len(names) {
		outer = len(names)
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}
	if outer <= 1 {
		// Serial outer level: stream incrementally, as the CLI always has.
		for _, name := range names {
			if err := runners[name](w, mode, inner); err != nil {
				return fmt.Errorf("experiment %s failed: %w", name, err)
			}
		}
		return nil
	}
	bufs := make([]bytes.Buffer, len(names))
	flushed := 0
	var mu sync.Mutex
	var writeErr error
	flush := func(done []bool) { // caller holds mu
		for writeErr == nil && flushed < len(names) && done[flushed] {
			if _, err := io.Copy(w, &bufs[flushed]); err != nil {
				writeErr = fmt.Errorf("experiments: writing %s output: %w", names[flushed], err)
				return
			}
			flushed++
		}
	}
	done := make([]bool, len(names))
	err := ForEach(outer, len(names), func(i int) error {
		ferr := runners[names[i]](&bufs[i], mode, inner)
		mu.Lock()
		done[i] = true
		flush(done)
		mu.Unlock()
		if ferr != nil {
			return fmt.Errorf("experiment %s failed: %w", names[i], ferr)
		}
		return nil
	})
	mu.Lock()
	flush(done)
	mu.Unlock()
	if err != nil {
		return err
	}
	return writeErr
}
