package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/placement"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/workload/llm"
	"atlahs/results"
)

// Fig12Row is one topology configuration's LGS-vs-packet comparison.
type Fig12Row struct {
	Topology string
	LGS      simtime.Duration
	Pkt      simtime.Duration
	// GapPct is LGS's error relative to the packet backend (the paper
	// reports -0.5% fully provisioned and -120.3% at 4:1).
	GapPct float64
	Drops  uint64
}

// Fig12Result collects the two topologies.
type Fig12Result struct {
	Mode Mode
	Rows []Fig12Row
}

// Fig12 computes the experiment and renders its text report — the
// compute-then-present composition of ComputeFig12 and Render.
func Fig12(w io.Writer, mode Mode, workers int) (*Fig12Result, error) {
	res, err := ComputeFig12(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeFig12 reproduces the backend comparison case study (paper §6.2,
// Fig 12): ATLAHS LGS agrees with the packet backend on a fully
// provisioned fat tree, but is oblivious to oversubscription — its LogGOPS
// G parameter reflects injection bandwidth, not ToR-to-core capacity — so
// at 4:1 the packet backend (which sees queueing and drops) diverges
// sharply. The training job's nodes are interleaved across ToRs as real
// schedulers allocate them, pushing the DP ring through the core. The
// packet-drop counter is the statistic only packet-level simulation
// provides. The two topology points fan out across up to `workers`
// goroutines; results are identical for any budget.
func ComputeFig12(mode Mode, workers int) (*Fig12Result, error) {
	dom := AIDomain()
	dp := 64
	hostsPerToR := 4
	scale := 1e-4
	if mode == Quick {
		dp = 16
		hostsPerToR = 2
		scale = 1e-4
	}
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: dp, EP: 1, GlobalBatch: 2 * dp},
		Scale: scale,
		Seed:  55,
	})
	if err != nil {
		return nil, err
	}
	sch, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 4, Channels: 4})
	if err != nil {
		return nil, err
	}
	// interleave the job's nodes across ToRs (scheduler-realistic)
	sch, err = placement.Remap(sch, InterleaveMapping(sch.NumRanks(), hostsPerToR), sch.NumRanks())
	if err != nil {
		return nil, err
	}
	nodes := sch.NumRanks()

	// LGS is topology-oblivious: one run serves both configurations, with
	// G fixed at the injection bandwidth (paper: "we set G=0.04 for both").
	lgs, _, err := RunLGS(sch, dom.LGS)
	if err != nil {
		return nil, err
	}

	res := &Fig12Result{Mode: mode}
	// The two topology points are independent packet simulations; they fan
	// out across the worker budget and land at their index.
	cases := []struct {
		label   string
		oversub int
	}{
		{"no oversubscription", 1},
		{"4:1 oversubscription", 4},
	}
	rows := make([]Fig12Row, len(cases))
	err = ForEach(workers, len(cases), func(i int) error {
		c := cases[i]
		tp, err := FatTree(nodes, hostsPerToR, c.oversub, dom)
		if err != nil {
			return err
		}
		pkt, err := RunPkt(sch, tp, "mprdma", 3, dom)
		if err != nil {
			return fmt.Errorf("fig12 %s: %w", c.label, err)
		}
		rows[i] = Fig12Row{
			Topology: c.label,
			LGS:      lgs,
			Pkt:      pkt.Runtime,
			GapPct:   PercentErr(lgs, pkt.Runtime),
			Drops:    pkt.Stats.Drops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render writes the paper-style text report.
func (r *Fig12Result) Render(w io.Writer) {
	header(w, "Fig 12 — ATLAHS LGS vs ATLAHS packet backend under oversubscription")
	fmt.Fprintf(w, "%-24s %14s %14s %10s %12s\n", "topology", "LGS", "pkt", "LGS err%", "pkt drops")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %14v %14v %+9.1f%% %12d\n",
			row.Topology, row.LGS, row.Pkt, row.GapPct, row.Drops)
	}
	fmt.Fprintln(w, "\npaper: -0.5% agreement fully provisioned; >120% divergence at 4:1 with")
	fmt.Fprintln(w, "heavy packet drops — a statistic only the packet-level backend can report.")
}

// Sweep exports the computed rows as a structured record set.
func (r *Fig12Result) Sweep() *results.Sweep {
	s := results.NewSweep("fig12", "Fig 12 — ATLAHS LGS vs ATLAHS packet backend under oversubscription", r.Mode.String())
	s.AddColumn("topology", results.String, "").
		AddColumn("lgs", results.Duration, "ps").
		AddColumn("pkt", results.Duration, "ps").
		AddColumn("lgs_gap_pct", results.Float, "%").
		AddColumn("pkt_drops", results.Int, "")
	for _, row := range r.Rows {
		s.MustAddRow(row.Topology, row.LGS, row.Pkt, row.GapPct, row.Drops)
	}
	s.Note("paper: -0.5% agreement fully provisioned; >120% divergence at 4:1 with",
		"heavy packet drops — a statistic only the packet-level backend can report.")
	return s
}
