package experiments

import (
	"fmt"
	"io"

	"atlahs/internal/goal"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/results"
)

// Table1Row reports one application/configuration's raw-trace and GOAL
// sizes (paper Table 1, in MiB).
type Table1Row struct {
	App        string
	Config     string
	TraceBytes int64
	GOALBytes  int64
}

// Table1Result collects all rows.
type Table1Result struct {
	Mode Mode
	Rows []Table1Row
}

// countingWriter measures serialised size without buffering the bytes.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Table1 computes the experiment and renders its text report — the
// compute-then-present composition of ComputeTable1 and Render.
func Table1(w io.Writer, mode Mode, workers int) (*Table1Result, error) {
	res, err := ComputeTable1(mode, workers)
	if err != nil {
		return nil, err
	}
	res.Render(w)
	return res, nil
}

// ComputeTable1 reproduces the released-trace summary (paper Table 1): for
// every application and configuration, the size of the raw trace artifact
// (nsys report / MPI trace) versus the generated binary GOAL file. Byte
// counts are scaled (recorded per row in the config column); the
// comparison target is the relative size of GOAL versus the raw traces.
// Configuration points fan out across up to `workers` goroutines; rows
// land at their index, so results are identical for any budget.
func ComputeTable1(mode Mode, workers int) (*Table1Result, error) {
	res := &Table1Result{Mode: mode}

	type aiCase struct {
		model llm.Model
		par   llm.Parallelism
		scale float64
		gpn   int
		label string
	}
	aiCases := []aiCase{
		{llm.DLRMModel(), llm.Parallelism{TP: 1, PP: 1, DP: 4, EP: 1, GlobalBatch: 8}, 1e-2, 1, "4 GPUs 4 Nodes"},
		{llm.Llama7B(), llm.Parallelism{TP: 1, PP: 1, DP: 16, EP: 1, GlobalBatch: 32}, 1e-3, 4, "16 GPUs 4 Nodes"},
	}
	if mode == Full {
		aiCases = append(aiCases,
			aiCase{llm.Llama7B(), llm.Parallelism{TP: 1, PP: 1, DP: 128, EP: 1, GlobalBatch: 128}, 1e-3, 4, "128 GPUs 32 Nodes"},
			aiCase{llm.Llama70B(), llm.Parallelism{TP: 1, PP: 8, DP: 32, EP: 1, GlobalBatch: 32}, 1e-3, 4, "256 GPUs 64 Nodes"},
			aiCase{llm.Mistral8x7B(), llm.Parallelism{TP: 1, PP: 8, DP: 8, EP: 1, GlobalBatch: 32}, 1e-3, 4, "64 GPUs 16 Nodes"},
			aiCase{llm.MoE8x13B(), llm.Parallelism{TP: 4, PP: 4, DP: 8, EP: 4, GlobalBatch: 128}, 1e-4, 4, "128 GPUs 32 Nodes"},
			aiCase{llm.MoE8x70B(), llm.Parallelism{TP: 4, PP: 8, DP: 8, EP: 8, GlobalBatch: 128}, 1e-4, 4, "256 GPUs 64 Nodes"},
		)
	}
	type hpcCase struct {
		app   hpcapps.App
		ranks int
		nodes int
	}
	hpcCases := []hpcCase{
		{hpcapps.CloverLeaf, 128, 8},
		{hpcapps.HPCG, 128, 8},
	}
	if mode == Full {
		hpcCases = append(hpcCases, []hpcCase{
			{hpcapps.HPCG, 512, 32}, {hpcapps.HPCG, 1024, 64},
			{hpcapps.LULESH, 128, 8}, {hpcapps.LULESH, 432, 27}, {hpcapps.LULESH, 1024, 64},
			{hpcapps.LAMMPS, 128, 8}, {hpcapps.LAMMPS, 512, 32}, {hpcapps.LAMMPS, 1024, 64},
			{hpcapps.ICON, 128, 8}, {hpcapps.ICON, 512, 32}, {hpcapps.ICON, 1024, 64},
			{hpcapps.OpenMX, 128, 8}, {hpcapps.OpenMX, 512, 32},
		}...)
	}
	steps := 10
	if mode == Quick {
		steps = 2
	}

	// AI and HPC configurations share one index space so every row fans
	// out across the worker budget; rows land at their index, keeping the
	// table's order identical for any budget.
	rows := make([]Table1Row, len(aiCases)+len(hpcCases))
	err := ForEach(workers, len(rows), func(i int) error {
		if i < len(aiCases) {
			c := aiCases[i]
			rep, err := llm.Generate(llm.Config{Model: c.model, Par: c.par, Scale: c.scale, Seed: 33})
			if err != nil {
				return fmt.Errorf("table1 %s: %w", c.model.Name, err)
			}
			var traceCW countingWriter
			if _, err := rep.WriteTo(&traceCW); err != nil {
				return err
			}
			sch, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: c.gpn})
			if err != nil {
				return fmt.Errorf("table1 %s goal: %w", c.model.Name, err)
			}
			var goalCW countingWriter
			if err := goal.WriteBinary(&goalCW, sch); err != nil {
				return err
			}
			rows[i] = Table1Row{App: c.model.Name, Config: c.label, TraceBytes: traceCW.n, GOALBytes: goalCW.n}
			return nil
		}
		c := hpcCases[i-len(aiCases)]
		tr, err := hpcapps.Generate(hpcapps.Config{App: c.app, Ranks: c.ranks, Steps: steps, Seed: 33})
		if err != nil {
			return fmt.Errorf("table1 %s: %w", c.app, err)
		}
		var traceCW countingWriter
		if _, err := tr.WriteTo(&traceCW); err != nil {
			return err
		}
		sch, err := schedgen.Generate(tr, schedgen.Options{})
		if err != nil {
			return fmt.Errorf("table1 %s goal: %w", c.app, err)
		}
		var goalCW countingWriter
		if err := goal.WriteBinary(&goalCW, sch); err != nil {
			return err
		}
		rows[i] = Table1Row{
			App:        string(c.app),
			Config:     fmt.Sprintf("%d Procs %d Nodes", c.ranks, c.nodes),
			TraceBytes: traceCW.n,
			GOALBytes:  goalCW.n,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render writes the paper-style text report.
func (r *Table1Result) Render(w io.Writer) {
	header(w, "Table 1 — trace and GOAL sizes per application/configuration")
	fmt.Fprintf(w, "%-14s %-22s %12s %12s\n", "app", "configuration", "trace (MiB)", "GOAL (MiB)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-22s %12.3f %12.3f\n", row.App, row.Config, MiB(row.TraceBytes), MiB(row.GOALBytes))
	}
	fmt.Fprintln(w, "\npaper: GOAL files are the same order of magnitude as the raw traces")
	fmt.Fprintln(w, "(sometimes larger after collective expansion, e.g. Llama 128-GPU 1652->4819 MiB).")
}

// Sweep exports the computed rows as a structured record set.
func (r *Table1Result) Sweep() *results.Sweep {
	s := results.NewSweep("table1", "Table 1 — trace and GOAL sizes per application/configuration", r.Mode.String())
	s.AddColumn("app", results.String, "").
		AddColumn("config", results.String, "").
		AddColumn("trace_bytes", results.Int, "B").
		AddColumn("goal_bytes", results.Int, "B")
	for _, row := range r.Rows {
		s.MustAddRow(row.App, row.Config, row.TraceBytes, row.GOALBytes)
	}
	s.Note("paper: GOAL files are the same order of magnitude as the raw traces",
		"(sometimes larger after collective expansion, e.g. Llama 128-GPU 1652->4819 MiB).")
	return s
}
