// Package profiling is the one CPU/heap-profile helper every ATLAHS
// command shares: each binary declares -cpuprofile/-memprofile flags and
// hands them to Start, so profiling any tool in the chain — the
// simulator, the analyzer, the workload synthesiser — needs no patched
// build and produces files `go tool pprof` reads directly.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins a CPU profile (when cpuPath is set) and arranges a heap
// profile at stop time (when memPath is set). It returns an idempotent
// stop function that flushes both; callers run it on every exit path —
// including error exits that bypass defers via os.Exit — so profiles
// survive failures. tool names the command in stop-time error messages.
// With both paths empty, Start is a no-op returning a no-op stop.
func Start(tool, cpuPath, memPath string) (stop func(), err error) {
	if cpuPath == "" && memPath == "" {
		return func() {}, nil
	}
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", tool, err)
					return
				}
				defer f.Close()
				runtime.GC() // settle the live set so the profile shows retained memory
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", tool, err)
				}
			}
		})
	}, nil
}
