package pktnet

import (
	"atlahs/internal/cc"
	"atlahs/internal/simtime"
)

// flow is one message in flight: sender-side transport state plus identity.
// Window-based algorithms (MPRDMA, Swift, DCTCP) pace sends against a
// congestion window; NDP blasts an initial window and then sends one packet
// per receiver pull, retransmitting trimmed packets on NACK.
type flow struct {
	net    *Network
	id     uint64
	src    int
	dst    int
	size   int64
	npkts  int
	onDone func(simtime.Time)

	baseRTT simtime.Duration
	rto     simtime.Duration
	born    simtime.Time

	// window transport state
	ctrl     cc.Controller
	nextSeq  int
	inflight int64
	acked    []bool
	epoch    []uint16 // incremented per (re)transmission; stale RTOs ignored
	rtx      []int
	inRtx    []bool

	// NDP transport state
	grants int

	pathCounter uint64
}

func newFlow(n *Network, id uint64, src, dst int, size int64, onDone func(simtime.Time)) *flow {
	npkts := int((size + n.cfg.MTU - 1) / n.cfg.MTU)
	f := &flow{
		net: n, id: id, src: src, dst: dst, size: size, npkts: npkts,
		onDone:  onDone,
		baseRTT: n.baseRTT(src, dst),
		acked:   make([]bool, npkts),
		epoch:   make([]uint16, npkts),
		inRtx:   make([]bool, npkts),
	}
	f.rto = n.rto(f.baseRTT)
	return f
}

func (f *flow) payloadOf(seq int) int64 {
	if seq == f.npkts-1 {
		if rem := f.size - int64(seq)*f.net.cfg.MTU; rem > 0 {
			return rem
		}
	}
	return f.net.cfg.MTU
}

func (f *flow) start() {
	if f.net.ndp {
		bdp := int64(f.baseRTT) / int64(f.net.bottleneckPsPerByte(f.src, f.dst))
		iw := int(bdp / f.net.cfg.MTU)
		if iw < 1 {
			iw = 1
		}
		f.grants = iw
		f.pumpNDP()
		return
	}
	bdp := int64(f.baseRTT) / int64(f.net.bottleneckPsPerByte(f.src, f.dst))
	ctrl, err := cc.New(f.net.cfg.CC, cc.Params{
		MTU:     f.net.cfg.MTU,
		BaseRTT: f.baseRTT,
		BDP:     bdp,
	})
	if err != nil {
		panic(err) // validated at Network construction
	}
	f.ctrl = ctrl
	f.pumpWindow()
}

// nextWork pops the next sequence number to transmit: retransmissions
// first, then fresh data. Returns -1 when nothing is pending.
func (f *flow) nextWork() int {
	for len(f.rtx) > 0 {
		seq := f.rtx[0]
		f.rtx = f.rtx[1:]
		f.inRtx[seq] = false
		if !f.acked[seq] {
			f.net.Stats.Retransmits++
			return seq
		}
	}
	if f.nextSeq < f.npkts {
		seq := f.nextSeq
		f.nextSeq++
		return seq
	}
	return -1
}

func (f *flow) sendData(seq int) {
	f.epoch[seq]++
	p := &packet{
		flow:    f,
		kind:    pktData,
		seq:     seq,
		payload: f.payloadOf(seq),
		sent:    f.net.eng.Now(),
	}
	p.wire = p.payload + f.net.cfg.Header
	f.net.inject(f.src, f.dst, p, f.pathCounter)
	f.pathCounter++
}

// --- window transport ------------------------------------------------------

func (f *flow) pumpWindow() {
	for f.inflight < f.ctrl.Window() {
		seq := f.nextWork()
		if seq < 0 {
			return
		}
		f.inflight += f.payloadOf(seq)
		f.sendData(seq)
		f.armRTO(seq, f.epoch[seq])
	}
}

func (f *flow) armRTO(seq int, epoch uint16) {
	f.net.eng.After(f.rto, func() {
		if f.acked[seq] || f.epoch[seq] != epoch || f.inRtx[seq] {
			return
		}
		// Packet (or its ACK) was lost: release window and requeue.
		f.inflight -= f.payloadOf(seq)
		f.inRtx[seq] = true
		f.rtx = append(f.rtx, seq)
		f.ctrl.OnTimeout(f.net.eng.Now())
		f.pumpWindow()
	})
}

// onAck processes an acknowledgement (window transports only).
func (f *flow) onAck(p *packet) {
	if f.acked[p.seq] {
		return
	}
	f.acked[p.seq] = true
	f.inflight -= f.payloadOf(p.seq)
	if f.inflight < 0 {
		f.inflight = 0
	}
	now := f.net.eng.Now()
	f.ctrl.OnAck(now, cc.Feedback{
		AckedBytes: f.payloadOf(p.seq),
		ECNMarked:  p.ecn,
		RTT:        now.Sub(p.sent),
	})
	f.pumpWindow()
}

// --- NDP transport ----------------------------------------------------------

func (f *flow) pumpNDP() {
	for f.grants > 0 {
		seq := f.nextWork()
		if seq < 0 {
			return
		}
		f.grants--
		f.sendData(seq)
	}
}

// onNack queues a trimmed packet for retransmission (sent on next pull).
func (f *flow) onNack(p *packet) {
	if f.acked[p.seq] || f.inRtx[p.seq] {
		return
	}
	f.inRtx[p.seq] = true
	f.rtx = append(f.rtx, p.seq)
	f.pumpNDP()
}

// onPull grants the sender one more packet.
func (f *flow) onPull() {
	f.grants++
	f.pumpNDP()
}

// --- receiver ----------------------------------------------------------------

// rxFlow is the per-flow receive state held by the destination host.
type rxFlow struct {
	received []bool
	count    int
	done     bool
}

// hostRx is the per-host receive side: flow reassembly plus the NDP pull
// pacer. All flows destined to one host share the pull pacer, which is what
// lets NDP share the access link fairly under incast.
type hostRx struct {
	net     *Network
	host    int
	flows   map[uint64]*rxFlow
	pullQ   []*flow
	pacing  bool
	spacing simtime.Duration
}

func newHostRx(n *Network, host int) *hostRx {
	h := &hostRx{net: n, host: host, flows: map[uint64]*rxFlow{}}
	// Pull spacing = serialisation time of a full MTU on the host access
	// link, so granted packets arrive at most at link rate.
	dev := n.topo.HostDevice(host)
	spacing := simtime.Duration(n.cfg.MTU+n.cfg.Header) * 40
	if out := n.topo.OutLinks(dev); len(out) > 0 {
		spacing = simtime.Duration(n.cfg.MTU+n.cfg.Header) * n.topo.Links[out[0]].PsPerByte
	}
	h.spacing = spacing
	return h
}

func (h *hostRx) stateOf(f *flow) *rxFlow {
	rxf, ok := h.flows[f.id]
	if !ok {
		rxf = &rxFlow{received: make([]bool, f.npkts)}
		h.flows[f.id] = rxf
	}
	return rxf
}

// onData handles a data packet (possibly trimmed to a header) arriving at
// its destination host.
func (h *hostRx) onData(p *packet) {
	f := p.flow
	rxf := h.stateOf(f)
	if p.trimmed {
		// NDP: payload was trimmed in the fabric; NACK it and request more.
		nack := &packet{flow: f, kind: pktNack, seq: p.seq, wire: h.net.cfg.Header}
		h.net.inject(h.host, f.src, nack, f.pathCounter)
		f.pathCounter++
		if !rxf.done {
			h.requestPull(f)
		}
		return
	}
	first := !rxf.received[p.seq]
	if first {
		rxf.received[p.seq] = true
		rxf.count++
		h.net.Stats.PktsDelivered++
	}
	if h.net.ndp {
		if !rxf.done && rxf.count < f.npkts {
			h.requestPull(f)
		}
	} else {
		// ACK every arrival (duplicates included) so spurious
		// retransmissions still converge; sender dedups.
		ack := &packet{flow: f, kind: pktAck, seq: p.seq, wire: h.net.cfg.Header, ecn: p.ecn, sent: p.sent}
		h.net.inject(h.host, f.src, ack, f.pathCounter)
		f.pathCounter++
	}
	if first && rxf.count == f.npkts && !rxf.done {
		rxf.done = true
		h.net.Stats.MsgsCompleted++
		if h.net.MCT != nil {
			h.net.MCT.AddDuration(h.net.eng.Now().Sub(f.born))
		}
		if f.onDone != nil {
			f.onDone(h.net.eng.Now())
		}
	}
}

// requestPull enqueues a pull token for f on this host's paced pull queue.
func (h *hostRx) requestPull(f *flow) {
	h.pullQ = append(h.pullQ, f)
	h.pump()
}

func (h *hostRx) pump() {
	if h.pacing || len(h.pullQ) == 0 {
		return
	}
	f := h.pullQ[0]
	copy(h.pullQ, h.pullQ[1:])
	h.pullQ = h.pullQ[:len(h.pullQ)-1]
	pull := &packet{flow: f, kind: pktPull, wire: h.net.cfg.Header}
	h.net.inject(h.host, f.src, pull, f.pathCounter)
	f.pathCounter++
	h.pacing = true
	h.net.eng.After(h.spacing, func() {
		h.pacing = false
		h.pump()
	})
}
