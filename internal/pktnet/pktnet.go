// Package pktnet is the packet-level network simulator of ATLAHS — the
// htsim-equivalent backend. It models MTU packetisation, per-port output
// queues with finite byte capacity, RED-style ECN marking between Kmin and
// Kmax (paper §5.1: 1 MiB buffers, 20%/80% thresholds), store-and-forward
// switching with per-hop serialisation and propagation delays, packet drops,
// NDP packet trimming, and per-packet window- or receiver-driven transports
// built on the congestion-control algorithms in internal/cc.
//
// The simulator exposes a message API: Send(src, dst, bytes, onDelivered)
// injects one message as an independent flow; the callback fires at the
// simulated time the last payload byte reaches the destination. Per-message
// completion times drive the storage case study (paper Fig 11); global
// drop/trim counters drive the packet-level statistics of Fig 12.
package pktnet

import (
	"fmt"

	"atlahs/internal/cc"
	"atlahs/internal/engine"
	"atlahs/internal/simtime"
	"atlahs/internal/stats"
	"atlahs/internal/topo"
	"atlahs/internal/xrand"
)

// Config parameterises a Network.
type Config struct {
	Topo     *topo.Topology
	MTU      int64             // payload bytes per packet (default 4096)
	Header   int64             // per-packet header bytes (default 64)
	CC       string            // "mprdma", "swift", "dctcp" or "ndp" (default "mprdma")
	KminFrac float64           // ECN mark start, fraction of buffer (default 0.2)
	KmaxFrac float64           // ECN mark certain, fraction of buffer (default 0.8)
	Selector topo.PathSelector // default: flow-hash ECMP; NDP defaults to spraying
	Seed     uint64
	RTO      simtime.Duration // retransmission timeout (default 4x worst-case base RTT)
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = 4096
	}
	if c.Header == 0 {
		c.Header = 64
	}
	if c.CC == "" {
		c.CC = "mprdma"
	}
	if c.KminFrac == 0 {
		c.KminFrac = 0.2
	}
	if c.KmaxFrac == 0 {
		c.KmaxFrac = 0.8
	}
	if c.Selector == nil {
		if cc.IsReceiverDriven(c.CC) {
			c.Selector = topo.PacketSpray{}
		} else {
			c.Selector = topo.FlowHashECMP{}
		}
	}
	return c
}

// Stats aggregates network-wide counters.
type Stats struct {
	PktsSent      uint64
	PktsDelivered uint64
	Drops         uint64
	Trims         uint64
	CtrlPkts      uint64
	Retransmits   uint64
	MsgsCompleted uint64
}

// Network is one packet-level simulation instance bound to an Engine.
type Network struct {
	eng    *engine.Engine
	cfg    Config
	topo   *topo.Topology
	ports  []*port
	hosts  []*hostRx // per host receiver state, indexed by host rank
	nextID uint64
	ndp    bool

	Stats Stats

	// MCT, when non-nil, records every message's completion time in
	// microseconds (injection to last-byte delivery) — the metric of the
	// storage case study, paper Fig 11.
	MCT *stats.Sample
}

// New creates a packet network over the topology in cfg, scheduling all
// events on eng.
func New(eng *engine.Engine, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Topo == nil {
		return nil, fmt.Errorf("pktnet: nil topology")
	}
	if !cc.IsReceiverDriven(cfg.CC) {
		// validate algorithm name early
		if _, err := cc.New(cfg.CC, cc.Params{MTU: cfg.MTU, BaseRTT: simtime.Microsecond, BDP: cfg.MTU}); err != nil {
			return nil, err
		}
	}
	n := &Network{
		eng:  eng,
		cfg:  cfg,
		topo: cfg.Topo,
		ndp:  cc.IsReceiverDriven(cfg.CC),
	}
	rng := xrand.New(cfg.Seed ^ 0x41544c414853) // "ATLAHS"
	n.ports = make([]*port, len(cfg.Topo.Links))
	for i := range n.ports {
		link := cfg.Topo.Links[i]
		n.ports[i] = &port{
			net:  n,
			link: link,
			kmin: int64(cfg.KminFrac * float64(link.BufBytes)),
			kmax: int64(cfg.KmaxFrac * float64(link.BufBytes)),
			rng:  rng.Split(),
		}
	}
	n.hosts = make([]*hostRx, cfg.Topo.NumHosts())
	for h := range n.hosts {
		n.hosts[h] = newHostRx(n, h)
	}
	return n, nil
}

// Engine returns the event engine the network runs on.
func (n *Network) Engine() *engine.Engine { return n.eng }

// MTU returns the configured packet payload size.
func (n *Network) MTU() int64 { return n.cfg.MTU }

// Send injects a message from host src to host dst. onDelivered fires once
// at the simulated time the final payload byte arrives. It returns the
// flow ID (useful in tests).
func (n *Network) Send(src, dst int, size int64, onDelivered func(simtime.Time)) uint64 {
	if src == dst {
		panic("pktnet: Send to self — intra-host transfers must be handled by the caller")
	}
	if size <= 0 {
		size = 1
	}
	n.nextID++
	f := newFlow(n, n.nextID, src, dst, size, onDelivered)
	f.born = n.eng.Now()
	f.start()
	return f.id
}

// baseRTT returns the unloaded round-trip time for the first path of the
// pair: per hop serialisation of one MTU plus propagation, both ways, plus
// ack serialisation.
func (n *Network) baseRTT(src, dst int) simtime.Duration {
	fwd := n.topo.Paths(src, dst)
	var d simtime.Duration
	if len(fwd) == 0 {
		return simtime.Microsecond
	}
	for _, lid := range fwd[0] {
		l := &n.topo.Links[lid]
		d += l.Latency + simtime.Duration(n.cfg.MTU+n.cfg.Header)*l.PsPerByte
	}
	rev := n.topo.Paths(dst, src)
	for _, lid := range rev[0] {
		l := &n.topo.Links[lid]
		d += l.Latency + simtime.Duration(n.cfg.Header)*l.PsPerByte
	}
	return d
}

// bottleneckPsPerByte returns the slowest per-byte rate along the first
// forward path (used for BDP estimation).
func (n *Network) bottleneckPsPerByte(src, dst int) simtime.Duration {
	paths := n.topo.Paths(src, dst)
	if len(paths) == 0 {
		return 40
	}
	var worst simtime.Duration
	for _, lid := range paths[0] {
		if g := n.topo.Links[lid].PsPerByte; g > worst {
			worst = g
		}
	}
	if worst == 0 {
		worst = 1
	}
	return worst
}

func (n *Network) rto(base simtime.Duration) simtime.Duration {
	if n.cfg.RTO > 0 {
		return n.cfg.RTO
	}
	r := 4 * base
	if min := 20 * simtime.Microsecond; r < min {
		r = min
	}
	return r
}

// pktKind discriminates wire packet types.
type pktKind uint8

const (
	pktData pktKind = iota
	pktAck
	pktNack
	pktPull
)

// packet is one unit on the wire. Control packets (ack/nack/pull) are
// header-sized and travel through the same ports as data but in the
// priority queue, mirroring htsim's control-priority behaviour.
type packet struct {
	flow    *flow
	kind    pktKind
	seq     int
	wire    int64 // bytes on the wire
	payload int64 // payload bytes carried (data only)
	ecn     bool
	trimmed bool
	path    []int
	hop     int
	sent    simtime.Time // data: transmit time (echoed by ack for RTT)
}

// port is the egress queue of one unidirectional link.
type port struct {
	net   *Network
	link  topo.Link
	q     []*packet // data FIFO
	hq    []*packet // priority queue: control + trimmed headers
	bytes int64     // queued data bytes (for capacity & ECN)
	busy  bool
	kmin  int64
	kmax  int64
	rng   *xrand.RNG
}

// enqueue places p on the port, applying capacity, trimming and ECN rules.
func (pt *port) enqueue(p *packet) {
	if p.kind != pktData || p.trimmed {
		// control and already-trimmed packets are never dropped
		pt.hq = append(pt.hq, p)
		pt.kick()
		return
	}
	if pt.bytes+p.wire > pt.link.BufBytes {
		if pt.net.ndp {
			// NDP: trim payload, forward header in priority queue
			p.trimmed = true
			p.wire = pt.net.cfg.Header
			p.payload = 0
			pt.net.Stats.Trims++
			pt.hq = append(pt.hq, p)
			pt.kick()
			return
		}
		pt.net.Stats.Drops++
		return
	}
	// RED-style ECN marking between kmin and kmax
	switch {
	case pt.bytes <= pt.kmin:
	case pt.bytes >= pt.kmax:
		p.ecn = true
	default:
		frac := float64(pt.bytes-pt.kmin) / float64(pt.kmax-pt.kmin)
		if pt.rng.Bool(frac) {
			p.ecn = true
		}
	}
	pt.bytes += p.wire
	pt.q = append(pt.q, p)
	pt.kick()
}

// kick starts transmitting the next packet if the line is idle.
func (pt *port) kick() {
	if pt.busy {
		return
	}
	var p *packet
	if len(pt.hq) > 0 {
		p = pt.hq[0]
		copy(pt.hq, pt.hq[1:])
		pt.hq = pt.hq[:len(pt.hq)-1]
	} else if len(pt.q) > 0 {
		p = pt.q[0]
		copy(pt.q, pt.q[1:])
		pt.q = pt.q[:len(pt.q)-1]
		pt.bytes -= p.wire
	} else {
		return
	}
	pt.busy = true
	ser := simtime.Duration(p.wire) * pt.link.PsPerByte
	pt.net.eng.After(ser, func() {
		pt.busy = false
		// propagation to the next device
		pt.net.eng.After(pt.link.Latency, func() {
			pt.net.arrive(p)
		})
		pt.kick()
	})
}

// arrive handles a packet reaching the device at the end of its current
// link: forward to the next hop or deliver to the endpoint.
func (n *Network) arrive(p *packet) {
	if p.hop < len(p.path) {
		next := p.path[p.hop]
		p.hop++
		n.ports[next].enqueue(p)
		return
	}
	switch p.kind {
	case pktData:
		n.hosts[p.flow.dst].onData(p)
	case pktAck:
		p.flow.onAck(p)
	case pktNack:
		p.flow.onNack(p)
	case pktPull:
		p.flow.onPull()
	}
}

// inject starts a packet from a host along a freshly selected path.
// fromHost is the host rank the packet leaves.
func (n *Network) inject(fromHost, toHost int, p *packet, pathChoice uint64) {
	paths := n.topo.Paths(fromHost, toHost)
	if len(paths) == 0 {
		panic(fmt.Sprintf("pktnet: no path %d->%d", fromHost, toHost))
	}
	idx := n.cfg.Selector.Pick(len(paths), p.flow.id, pathChoice)
	p.path = paths[idx]
	p.hop = 1
	if p.kind == pktData {
		n.Stats.PktsSent++
	} else {
		n.Stats.CtrlPkts++
	}
	n.ports[p.path[0]].enqueue(p)
}
