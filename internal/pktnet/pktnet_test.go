package pktnet

import (
	"testing"
	"testing/quick"

	"atlahs/internal/engine"
	"atlahs/internal/simtime"
	"atlahs/internal/topo"
	"atlahs/internal/xrand"
)

func testTopo(t testing.TB, hosts, perTor, cores int, buf int64) *topo.Topology {
	t.Helper()
	spec := topo.DefaultLinkSpec()
	if buf > 0 {
		spec.BufBytes = buf
	}
	tp, err := topo.NewFatTree(topo.FatTreeConfig{
		Hosts: hosts, HostsPerToR: perTor, Cores: cores,
		HostLink: spec, UplinkLink: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func newNet(t testing.TB, tp *topo.Topology, ccName string) (*engine.Engine, *Network) {
	t.Helper()
	eng := engine.New()
	n, err := New(eng, Config{Topo: tp, CC: ccName, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return eng, n
}

func TestConfigValidation(t *testing.T) {
	eng := engine.New()
	if _, err := New(eng, Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := New(eng, Config{Topo: testTopo(t, 4, 2, 2, 0), CC: "bogus"}); err == nil {
		t.Fatal("unknown CC accepted")
	}
}

func TestSingleMessageTiming(t *testing.T) {
	tp := testTopo(t, 4, 2, 2, 0)
	eng, n := newNet(t, tp, "mprdma")
	const size = 1 << 20 // 1 MiB
	var done simtime.Time
	n.Send(0, 3, size, func(at simtime.Time) { done = at })
	eng.Run()
	if done == 0 {
		t.Fatal("message not delivered")
	}
	// Lower bound: serialisation of the payload at 40 ps/B on the access
	// link plus one-way path latency (4 hops x 500 ns).
	lower := simtime.Duration(size)*40 + 4*500*simtime.Nanosecond
	if simtime.Duration(done) < lower {
		t.Fatalf("delivered at %v, faster than physics lower bound %v", done, lower)
	}
	// Upper bound: should be within 3x of ideal on an idle network.
	if simtime.Duration(done) > 3*lower {
		t.Fatalf("delivered at %v, more than 3x ideal %v on idle network", done, lower)
	}
	if n.Stats.Drops != 0 {
		t.Fatalf("%d drops on idle network", n.Stats.Drops)
	}
}

func TestAllCCAlgorithmsComplete(t *testing.T) {
	for _, alg := range []string{"mprdma", "swift", "dctcp", "ndp"} {
		t.Run(alg, func(t *testing.T) {
			tp := testTopo(t, 8, 4, 2, 0)
			eng, n := newNet(t, tp, alg)
			delivered := 0
			// all-to-one incast plus a permutation flow
			for src := 1; src < 8; src++ {
				n.Send(src, 0, 256*1024, func(simtime.Time) { delivered++ })
			}
			n.Send(0, 4, 128*1024, func(simtime.Time) { delivered++ })
			eng.Run()
			if delivered != 8 {
				t.Fatalf("%s: delivered %d/8 messages", alg, delivered)
			}
		})
	}
}

func TestIncastCongestionSlowsCompletion(t *testing.T) {
	tp := testTopo(t, 8, 4, 2, 0)
	// single flow baseline
	eng1, n1 := newNet(t, tp, "mprdma")
	var solo simtime.Time
	n1.Send(1, 0, 512*1024, func(at simtime.Time) { solo = at })
	eng1.Run()

	// 7:1 incast: same-size flow must take notably longer
	tp2 := testTopo(t, 8, 4, 2, 0)
	eng2, n2 := newNet(t, tp2, "mprdma")
	var last simtime.Time
	for src := 1; src < 8; src++ {
		n2.Send(src, 0, 512*1024, func(at simtime.Time) {
			if at > last {
				last = at
			}
		})
	}
	eng2.Run()
	if last < 3*solo {
		t.Fatalf("incast completion %v not >> solo %v", last, solo)
	}
}

func TestDropsUnderPressureAndNDPTrims(t *testing.T) {
	// Tiny buffers force queue overflow under incast.
	tpA := testTopo(t, 8, 4, 2, 16*1024)
	engA, nA := newNet(t, tpA, "mprdma")
	okA := 0
	for src := 1; src < 8; src++ {
		nA.Send(src, 0, 256*1024, func(simtime.Time) { okA++ })
	}
	engA.Run()
	if okA != 7 {
		t.Fatalf("mprdma delivered %d/7 under pressure", okA)
	}
	if nA.Stats.Drops == 0 {
		t.Fatal("expected drops with 16 KiB buffers under incast")
	}
	if nA.Stats.Trims != 0 {
		t.Fatal("non-NDP must drop, not trim")
	}

	tpB := testTopo(t, 8, 4, 2, 16*1024)
	engB, nB := newNet(t, tpB, "ndp")
	okB := 0
	for src := 1; src < 8; src++ {
		nB.Send(src, 0, 256*1024, func(simtime.Time) { okB++ })
	}
	engB.Run()
	if okB != 7 {
		t.Fatalf("ndp delivered %d/7 under pressure", okB)
	}
	if nB.Stats.Trims == 0 {
		t.Fatal("NDP should trim under incast with tiny buffers")
	}
	if nB.Stats.Drops != 0 {
		t.Fatal("NDP must never drop data packets")
	}
}

func TestRTORecovery(t *testing.T) {
	// Extremely small buffers and aggressive incast: drops are certain;
	// all messages must still complete via RTO retransmission.
	tp := testTopo(t, 16, 8, 1, 8*1024)
	eng, n := newNet(t, tp, "swift")
	ok := 0
	for src := 1; src < 16; src++ {
		n.Send(src, 0, 64*1024, func(simtime.Time) { ok++ })
	}
	eng.Run()
	if ok != 15 {
		t.Fatalf("delivered %d/15 with drops", ok)
	}
	if n.Stats.Drops == 0 {
		t.Skip("no drops triggered; RTO path not exercised in this configuration")
	}
	if n.Stats.Retransmits == 0 {
		t.Fatal("drops occurred but no retransmissions")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (simtime.Time, Stats) {
		tp := testTopo(t, 8, 4, 2, 32*1024)
		eng, n := newNet(t, tp, "mprdma")
		var last simtime.Time
		for src := 1; src < 8; src++ {
			n.Send(src, 0, 200*1024, func(at simtime.Time) { last = at })
		}
		eng.Run()
		return last, n.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("non-deterministic: %v/%+v vs %v/%+v", t1, s1, t2, s2)
	}
}

func TestSelfSendPanics(t *testing.T) {
	tp := testTopo(t, 4, 2, 2, 0)
	_, n := newNet(t, tp, "mprdma")
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	n.Send(2, 2, 100, nil)
}

func TestTinyAndOddSizes(t *testing.T) {
	tp := testTopo(t, 4, 2, 2, 0)
	eng, n := newNet(t, tp, "mprdma")
	delivered := 0
	sizes := []int64{1, 63, 4096, 4097, 12289, 0 /* clamps to 1 */}
	for _, sz := range sizes {
		n.Send(0, 1, sz, func(simtime.Time) { delivered++ })
	}
	eng.Run()
	if delivered != len(sizes) {
		t.Fatalf("delivered %d/%d odd-size messages", delivered, len(sizes))
	}
}

// Property: random message patterns always fully deliver on every CC, and
// completion time is never below the physics bound.
func TestDeliveryProperty(t *testing.T) {
	algs := []string{"mprdma", "ndp"}
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		for _, alg := range algs {
			tp := testTopo(t, 8, 4, 2, 64*1024)
			eng := engine.New()
			n, err := New(eng, Config{Topo: tp, CC: alg, Seed: seed})
			if err != nil {
				return false
			}
			want := rng.Intn(10) + 1
			got := 0
			minSer := simtime.Duration(1 << 62)
			for i := 0; i < want; i++ {
				src := rng.Intn(8)
				dst := rng.Intn(7)
				if dst >= src {
					dst++
				}
				size := rng.Int63n(64*1024) + 1
				ser := simtime.Duration(size) * 40
				if ser < minSer {
					minSer = ser
				}
				n.Send(src, dst, size, func(simtime.Time) { got++ })
			}
			end := eng.Run()
			if got != want {
				return false
			}
			if simtime.Duration(end) < minSer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestOversubscriptionHurtsCrossTorTraffic(t *testing.T) {
	// permutation traffic crossing ToRs: 8:1 oversubscribed core must be
	// slower than fully provisioned.
	run := func(cores int) simtime.Time {
		tp := testTopo(t, 16, 8, cores, 0)
		eng, n := newNet(t, tp, "mprdma")
		var last simtime.Time
		for src := 0; src < 8; src++ {
			n.Send(src, 8+src, 512*1024, func(at simtime.Time) {
				if at > last {
					last = at
				}
			})
		}
		eng.Run()
		return last
	}
	full := run(8)
	over := run(1)
	if float64(over) < 1.5*float64(full) {
		t.Fatalf("8:1 oversubscription (%v) not clearly slower than 1:1 (%v)", over, full)
	}
}

func BenchmarkPacketForwarding(b *testing.B) {
	tp := testTopo(b, 16, 4, 4, 0)
	eng := engine.New()
	n, err := New(eng, Config{Topo: tp, CC: "mprdma", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	// b.N KiB of traffic across the core per iteration batch
	n.Send(0, 15, int64(b.N)*1024, nil)
	eng.Run()
	b.ReportMetric(float64(n.Stats.PktsSent)/float64(b.N), "pkts/op")
}
