package frontend

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"atlahs/internal/goal"
)

// fakeConvert is a converter stub for registry tests.
func fakeConvert(io.Reader, any) (*goal.Schedule, error) { return nil, nil }

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(label string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", label)
			}
		}()
		f()
	}
	expectPanic("empty name", func() { Register(Definition{Convert: fakeConvert}) })
	expectPanic("nil convert", func() { Register(Definition{Name: "broken"}) })
	Register(Definition{Name: "fft-dup", Convert: fakeConvert})
	expectPanic("duplicate", func() { Register(Definition{Name: "fft-dup", Convert: fakeConvert}) })
}

func TestDetect(t *testing.T) {
	Register(Definition{
		Name:       "fft-alpha",
		Extensions: []string{".alpha"},
		Sniff:      func(p []byte) bool { return bytes.HasPrefix(p, []byte("ALPHA")) },
		Convert:    fakeConvert,
	})
	Register(Definition{
		Name:    "fft-alpha2",
		Sniff:   func(p []byte) bool { return bytes.HasPrefix(p, []byte("ALPHA2")) },
		Convert: fakeConvert,
	})

	// Unique sniff match wins.
	def, err := Detect([]byte("no such thing"), "x.alpha")
	if err != nil || def.Name != "fft-alpha" {
		t.Fatalf("extension fallback got (%q, %v)", def.Name, err)
	}
	// Ambiguity is an error, not a pick.
	if _, err := Detect([]byte("ALPHA2..."), ""); err == nil || !strings.Contains(err.Error(), "matches 2 formats") {
		t.Fatalf("ambiguous sniff should error, got %v", err)
	}
	// Nothing matches: the error lists the registry.
	if _, err := Detect([]byte("???"), "trace.unknown"); err == nil || !strings.Contains(err.Error(), "goal") {
		t.Fatalf("undetectable error should list frontends, got %v", err)
	}
	// An extension claimed twice is ambiguous, not an alphabetical pick.
	Register(Definition{Name: "fft-alpha-rival", Extensions: []string{".alpha"}, Convert: fakeConvert})
	if _, err := Detect([]byte("no sniffer hit"), "x.alpha"); err == nil || !strings.Contains(err.Error(), "claimed by 2 frontends") {
		t.Fatalf("extension collision should error, got %v", err)
	}
}

func TestFirstLine(t *testing.T) {
	got := FirstLine([]byte("\n  \n# comment\n// other\nmpitrace nranks 2\nrank 0 {\n"), "#", "//")
	if string(got) != "mpitrace nranks 2" {
		t.Fatalf("FirstLine = %q", got)
	}
	if FirstLine([]byte("# only\n# comments\n"), "#") != nil {
		t.Fatal("all-comment prefix should yield nil")
	}
	// No trailing newline: the partial line still surfaces.
	if string(FirstLine([]byte("num_ranks 4"), "//")) != "num_ranks 4" {
		t.Fatal("unterminated first line lost")
	}
}

func TestGoalFrontend(t *testing.T) {
	def, ok := Lookup("goal")
	if !ok {
		t.Fatal("goal frontend not registered")
	}
	b := goal.NewBuilder(2)
	b.Rank(0).Send(16, 1, 0)
	b.Rank(1).Recv(16, 0, 0)
	s := b.MustBuild()

	var bin, txt bytes.Buffer
	if err := goal.WriteBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	if err := goal.WriteText(&txt, s); err != nil {
		t.Fatal(err)
	}
	for label, raw := range map[string][]byte{"binary": bin.Bytes(), "text": txt.Bytes()} {
		if !def.Sniff(raw) {
			t.Fatalf("%s GOAL not sniffed", label)
		}
		got, err := def.Convert(bytes.NewReader(raw), nil)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got.ComputeStats() != s.ComputeStats() {
			t.Fatalf("%s: round trip changed stats", label)
		}
	}
	if _, err := def.Convert(bytes.NewReader(bin.Bytes()), struct{}{}); err == nil {
		t.Fatal("goal frontend should reject configs")
	}
}

func TestConfigAs(t *testing.T) {
	type cfg struct{ N int }
	if got, err := ConfigAs[cfg]("x", nil); err != nil || got != (cfg{}) {
		t.Fatalf("nil: %v %v", got, err)
	}
	if got, err := ConfigAs[cfg]("x", cfg{3}); err != nil || got.N != 3 {
		t.Fatalf("value: %v %v", got, err)
	}
	if got, err := ConfigAs[cfg]("x", &cfg{4}); err != nil || got.N != 4 {
		t.Fatalf("pointer: %v %v", got, err)
	}
	if got, err := ConfigAs[cfg]("x", (*cfg)(nil)); err != nil || got != (cfg{}) {
		t.Fatalf("nil pointer: %v %v", got, err)
	}
	if _, err := ConfigAs[cfg]("x", 42); err == nil || !strings.Contains(err.Error(), `"x" wants a`) {
		t.Fatalf("mismatch: %v", err)
	}
}
