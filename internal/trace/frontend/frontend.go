// Package frontend is the workload-ingestion registry of the ATLAHS
// toolchain: the one place where application trace formats meet the GOAL
// intermediate representation (paper Fig 2, green path). A Definition
// names one trace format, knows how to recognise it (content sniffing on
// a file prefix, extension fallback), and converts a raw trace stream
// into a GOAL schedule.
//
// The registry mirrors the backend registry on the other side of the
// toolchain: converters self-register at init (the nsys/NCCL pipeline,
// Schedgen for MPI traces, the Direct Drive storage model for SPC traces,
// the Chakra execution-trace converter), the GOAL codecs themselves are
// registered here as the "goal" pass-through frontend, and third-party
// ingestion plugs in the same way. The sim facade re-exports the registry
// (sim.RegisterFrontend) and resolves Spec trace workloads through it.
package frontend

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"atlahs/internal/goal"
)

// Definition describes one registered workload frontend: a trace format
// and its trace-to-GOAL conversion.
type Definition struct {
	// Name identifies the frontend ("goal", "nsys", "mpi", "spc",
	// "chakra", ...): the Spec.Frontend key.
	Name string
	// Extensions lists the file extensions (with leading dot, lower-case)
	// that map to this format when content sniffing is inconclusive.
	Extensions []string
	// Sniff reports whether a trace starting with the given prefix (up to
	// SniffLen bytes; the whole input when shorter) looks like this
	// format. Sniffers must be mutually exclusive across registered
	// frontends — detection errors out on ambiguity rather than picking
	// one.
	Sniff func(prefix []byte) bool
	// Convert parses one trace from r and converts it to a GOAL schedule.
	// cfg is the frontend's typed configuration (see ConfigAs); nil
	// selects defaults. Conversion streams from r: callers hand over the
	// reader positioned at the start of the trace.
	Convert func(r io.Reader, cfg any) (*goal.Schedule, error)
	// ConvertBytes, when non-nil, converts a trace already held in memory
	// without the reader indirection — the fast path for formats with a
	// zero-copy decoder (the "goal" frontend routes binary schedules
	// through goal.ParseBinary here). It must accept exactly the inputs
	// Convert accepts and produce identical schedules; callers fall back
	// to Convert when it is nil.
	ConvertBytes func(b []byte, cfg any) (*goal.Schedule, error)
	// NewConfig, when non-nil, returns a pointer to a fresh zero value of
	// the frontend's config type — the hook the sim spec codec uses to
	// resolve "frontend_config" wire payloads by frontend name. Frontends
	// that take no config (the "goal" pass-through) leave it nil; their
	// wire specs then reject config payloads. The config type must
	// round-trip through encoding/json for the codec to accept it.
	NewConfig func() any
}

// SniffLen is how many leading bytes detection hands to Sniff.
const SniffLen = 4096

var registry = struct {
	sync.RWMutex
	m map[string]Definition
}{m: map[string]Definition{}}

// Register adds a frontend to the registry. The built-in frontends
// self-register at init; third parties register theirs the same way.
// Registering an empty name, a nil converter, or a name that is already
// taken panics: those are programming errors at wiring time, not runtime
// conditions.
func Register(def Definition) {
	if def.Name == "" {
		panic("frontend: Register with empty frontend name")
	}
	if def.Convert == nil {
		panic(fmt.Sprintf("frontend: Register(%q) with nil converter", def.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[def.Name]; dup {
		panic(fmt.Sprintf("frontend: %q registered twice", def.Name))
	}
	registry.m[def.Name] = def
}

// Lookup returns the named frontend's definition.
func Lookup(name string) (Definition, bool) {
	registry.RLock()
	defer registry.RUnlock()
	def, ok := registry.m[name]
	return def, ok
}

// Names lists the registered frontend names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Detect resolves which frontend owns a trace: content sniffing on the
// prefix first (exactly one sniffer may claim it), the path's extension
// as the fallback. path may be empty for in-memory traces.
func Detect(prefix []byte, path string) (Definition, error) {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)

	var matches []string
	for _, name := range names {
		if s := registry.m[name].Sniff; s != nil && s(prefix) {
			matches = append(matches, name)
		}
	}
	if len(matches) == 1 {
		return registry.m[matches[0]], nil
	}
	if len(matches) > 1 {
		return Definition{}, fmt.Errorf("frontend: trace matches %d formats (%s); name one explicitly",
			len(matches), strings.Join(matches, ", "))
	}
	if ext := strings.ToLower(filepath.Ext(path)); ext != "" {
		// Like sniffing, an extension claimed by several frontends is an
		// error, not an alphabetical pick.
		var claims []string
		for _, name := range names {
			for _, e := range registry.m[name].Extensions {
				if e == ext {
					claims = append(claims, name)
				}
			}
		}
		if len(claims) == 1 {
			return registry.m[claims[0]], nil
		}
		if len(claims) > 1 {
			return Definition{}, fmt.Errorf("frontend: extension %q is claimed by %d frontends (%s); name one explicitly",
				ext, len(claims), strings.Join(claims, ", "))
		}
	}
	return Definition{}, fmt.Errorf("frontend: cannot detect trace format (no sniffer matched, extension %q unknown); registered frontends: %s",
		filepath.Ext(path), strings.Join(names, ", "))
}

// ConfigAs coerces a frontend config value to the frontend's own type T:
// nil and a nil *T select the zero value (defaults), T and *T pass
// through, and anything else is reported as a config-type mismatch.
// Frontend converters — including third-party ones — are expected to
// route their cfg through this so mismatch errors read uniformly.
func ConfigAs[T any](frontendName string, cfg any) (T, error) {
	var zero T
	switch v := cfg.(type) {
	case nil:
		return zero, nil
	case T:
		return v, nil
	case *T:
		if v == nil {
			return zero, nil
		}
		return *v, nil
	}
	return zero, fmt.Errorf("frontend: %q wants a %T config, got %T", frontendName, zero, cfg)
}

// FirstLine returns the first line of prefix that is neither blank nor a
// comment (lines starting with any string in commentPrefixes), without
// its trailing newline — the unit most text-format sniffers decide on.
func FirstLine(prefix []byte, commentPrefixes ...string) []byte {
	for len(prefix) > 0 {
		line := prefix
		if i := bytes.IndexByte(prefix, '\n'); i >= 0 {
			line, prefix = prefix[:i], prefix[i+1:]
		} else {
			prefix = nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		comment := false
		for _, c := range commentPrefixes {
			if bytes.HasPrefix(line, []byte(c)) {
				comment = true
				break
			}
		}
		if !comment {
			return line
		}
	}
	return nil
}

// goalBinaryMagic mirrors internal/goal's binary header.
const goalBinaryMagic = "GOALB1\n"

func init() {
	// The GOAL codecs themselves are the pass-through frontend: a "trace"
	// that is already a schedule, textual or binary.
	Register(Definition{
		Name:       "goal",
		Extensions: []string{".goal", ".bin"},
		Sniff: func(prefix []byte) bool {
			if bytes.HasPrefix(prefix, []byte(goalBinaryMagic)) {
				return true
			}
			return bytes.HasPrefix(FirstLine(prefix, "//"), []byte("num_ranks "))
		},
		Convert: func(r io.Reader, cfg any) (*goal.Schedule, error) {
			if cfg != nil {
				return nil, fmt.Errorf("frontend: \"goal\" takes no config, got %T", cfg)
			}
			br := bufio.NewReaderSize(r, 1<<16)
			if magic, err := br.Peek(len(goalBinaryMagic)); err == nil && string(magic) == goalBinaryMagic {
				return goal.ReadBinary(br)
			}
			return goal.ParseText(br)
		},
		ConvertBytes: func(b []byte, cfg any) (*goal.Schedule, error) {
			if cfg != nil {
				return nil, fmt.Errorf("frontend: \"goal\" takes no config, got %T", cfg)
			}
			if bytes.HasPrefix(b, []byte(goalBinaryMagic)) {
				return goal.ParseBinary(b)
			}
			return goal.ParseText(bytes.NewReader(b))
		},
	})
}
