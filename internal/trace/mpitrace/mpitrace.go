// Package mpitrace defines the liballprof-style MPI execution trace format
// used by the HPC arm of the toolchain (paper §3.1.1). A trace records,
// per rank, the sequence of MPI calls with their arguments and start/end
// timestamps; Schedgen (internal/trace/schedgen) later infers computation
// from the gaps between consecutive calls and substitutes collectives with
// point-to-point algorithms.
//
// The on-disk form is a line-oriented text file:
//
//	mpitrace nranks 4
//	rank 0 {
//	MPI_Init t=0:1000
//	MPI_Send dst=1 bytes=4096 tag=7 t=5000:5200
//	MPI_Irecv src=1 bytes=4096 tag=8 req=1 t=5300:5320
//	MPI_Wait req=1 t=5400:9000
//	MPI_Allreduce bytes=8192 t=9100:12000
//	MPI_Finalize t=12500:12600
//	}
//
// Timestamps are nanoseconds since application start. The real liballprof
// writes one file per rank; this package stores all ranks in one artifact
// for convenience (the per-rank blocks are self-contained).
package mpitrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// OpType enumerates traced MPI calls.
type OpType int

// Traced MPI operations.
const (
	Init OpType = iota
	Finalize
	Send
	Recv
	Isend
	Irecv
	Wait
	Allreduce
	Bcast
	Allgather
	ReduceScatter
	Alltoall
	Barrier
	ReduceOp
	Gather
	Scatter
)

var opNames = map[OpType]string{
	Init: "MPI_Init", Finalize: "MPI_Finalize",
	Send: "MPI_Send", Recv: "MPI_Recv",
	Isend: "MPI_Isend", Irecv: "MPI_Irecv", Wait: "MPI_Wait",
	Allreduce: "MPI_Allreduce", Bcast: "MPI_Bcast",
	Allgather: "MPI_Allgather", ReduceScatter: "MPI_Reduce_scatter",
	Alltoall: "MPI_Alltoall", Barrier: "MPI_Barrier",
	ReduceOp: "MPI_Reduce", Gather: "MPI_Gather", Scatter: "MPI_Scatter",
}

var opByName = func() map[string]OpType {
	m := make(map[string]OpType, len(opNames))
	for k, v := range opNames {
		m[v] = k
	}
	return m
}()

// String returns the MPI call name.
func (t OpType) String() string {
	if s, ok := opNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MPI_Op(%d)", int(t))
}

// IsCollective reports whether the op involves the whole communicator.
func (t OpType) IsCollective() bool {
	switch t {
	case Allreduce, Bcast, Allgather, ReduceScatter, Alltoall, Barrier, ReduceOp, Gather, Scatter:
		return true
	}
	return false
}

// Event is one traced MPI call on one rank.
type Event struct {
	Type  OpType
	Peer  int   // dst (sends) or src (recvs); -1 otherwise
	Bytes int64 // message or collective payload size
	Tag   int32
	Root  int   // collective root, -1 if n/a
	Req   int64 // request id linking Isend/Irecv to Wait; 0 if n/a
	Start int64 // ns
	End   int64 // ns
}

// Trace is a full multi-rank MPI trace.
type Trace struct {
	Events [][]Event // indexed by rank
}

// NumRanks returns the trace's rank count.
func (t *Trace) NumRanks() int { return len(t.Events) }

// New creates an empty trace for nranks ranks.
func New(nranks int) *Trace {
	return &Trace{Events: make([][]Event, nranks)}
}

// Append adds an event to a rank (generator API).
func (t *Trace) Append(rank int, ev Event) {
	t.Events[rank] = append(t.Events[rank], ev)
}

// Validate checks per-rank timestamp monotonicity and argument sanity.
func (t *Trace) Validate() error {
	for r, evs := range t.Events {
		last := int64(-1)
		for i, ev := range evs {
			if ev.End < ev.Start {
				return fmt.Errorf("mpitrace: rank %d event %d: end %d before start %d", r, i, ev.End, ev.Start)
			}
			if ev.Start < last {
				return fmt.Errorf("mpitrace: rank %d event %d: start %d before previous end %d", r, i, ev.Start, last)
			}
			last = ev.End
			switch ev.Type {
			case Send, Recv, Isend, Irecv:
				if ev.Peer < 0 || ev.Peer >= t.NumRanks() {
					return fmt.Errorf("mpitrace: rank %d event %d: peer %d out of range", r, i, ev.Peer)
				}
			}
			if ev.Bytes < 0 {
				return fmt.Errorf("mpitrace: rank %d event %d: negative bytes", r, i)
			}
		}
	}
	return nil
}

// WriteTo serialises the trace in text form.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "mpitrace nranks %d\n", t.NumRanks())); err != nil {
		return n, err
	}
	for r, evs := range t.Events {
		if err := count(fmt.Fprintf(bw, "rank %d {\n", r)); err != nil {
			return n, err
		}
		for _, ev := range evs {
			var sb strings.Builder
			sb.WriteString(ev.Type.String())
			switch ev.Type {
			case Send, Isend:
				fmt.Fprintf(&sb, " dst=%d bytes=%d tag=%d", ev.Peer, ev.Bytes, ev.Tag)
			case Recv, Irecv:
				fmt.Fprintf(&sb, " src=%d bytes=%d tag=%d", ev.Peer, ev.Bytes, ev.Tag)
			case Wait:
			case Allreduce, Allgather, ReduceScatter, Alltoall:
				fmt.Fprintf(&sb, " bytes=%d", ev.Bytes)
			case Bcast, ReduceOp, Gather, Scatter:
				fmt.Fprintf(&sb, " bytes=%d root=%d", ev.Bytes, ev.Root)
			}
			if ev.Req != 0 {
				fmt.Fprintf(&sb, " req=%d", ev.Req)
			}
			fmt.Fprintf(&sb, " t=%d:%d\n", ev.Start, ev.End)
			if err := count(bw.WriteString(sb.String())); err != nil {
				return n, err
			}
		}
		if err := count(fmt.Fprintln(bw, "}")); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Parse reads a text-form trace.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var t *Trace
	cur := -1
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "mpitrace":
			if len(fields) != 3 || fields[1] != "nranks" {
				return nil, fmt.Errorf("mpitrace: line %d: bad header", lineno)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("mpitrace: line %d: bad rank count", lineno)
			}
			t = New(n)
		case fields[0] == "rank":
			if t == nil {
				return nil, fmt.Errorf("mpitrace: line %d: rank before header", lineno)
			}
			if len(fields) != 3 || fields[2] != "{" {
				return nil, fmt.Errorf("mpitrace: line %d: bad rank block", lineno)
			}
			rk, err := strconv.Atoi(fields[1])
			if err != nil || rk < 0 || rk >= t.NumRanks() {
				return nil, fmt.Errorf("mpitrace: line %d: bad rank %q", lineno, fields[1])
			}
			cur = rk
		case fields[0] == "}":
			cur = -1
		default:
			if t == nil || cur < 0 {
				return nil, fmt.Errorf("mpitrace: line %d: event outside rank block", lineno)
			}
			ev, err := parseEvent(fields)
			if err != nil {
				return nil, fmt.Errorf("mpitrace: line %d: %w", lineno, err)
			}
			t.Events[cur] = append(t.Events[cur], ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("mpitrace: missing header")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseEvent(fields []string) (Event, error) {
	ev := Event{Peer: -1, Root: -1}
	op, ok := opByName[fields[0]]
	if !ok {
		return ev, fmt.Errorf("unknown MPI call %q", fields[0])
	}
	ev.Type = op
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return ev, fmt.Errorf("malformed attribute %q", f)
		}
		switch k {
		case "dst", "src":
			p, err := strconv.Atoi(v)
			if err != nil {
				return ev, fmt.Errorf("bad %s %q", k, v)
			}
			ev.Peer = p
		case "bytes":
			b, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return ev, fmt.Errorf("bad bytes %q", v)
			}
			ev.Bytes = b
		case "tag":
			tg, err := strconv.ParseInt(v, 10, 32)
			if err != nil {
				return ev, fmt.Errorf("bad tag %q", v)
			}
			ev.Tag = int32(tg)
		case "root":
			rt, err := strconv.Atoi(v)
			if err != nil {
				return ev, fmt.Errorf("bad root %q", v)
			}
			ev.Root = rt
		case "req":
			rq, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return ev, fmt.Errorf("bad req %q", v)
			}
			ev.Req = rq
		case "t":
			s, e, ok := strings.Cut(v, ":")
			if !ok {
				return ev, fmt.Errorf("bad timestamps %q", v)
			}
			var err error
			if ev.Start, err = strconv.ParseInt(s, 10, 64); err != nil {
				return ev, fmt.Errorf("bad start %q", s)
			}
			if ev.End, err = strconv.ParseInt(e, 10, 64); err != nil {
				return ev, fmt.Errorf("bad end %q", e)
			}
		default:
			return ev, fmt.Errorf("unknown attribute %q", k)
		}
	}
	return ev, nil
}
