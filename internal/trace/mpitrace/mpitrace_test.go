package mpitrace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"atlahs/internal/xrand"
)

func sampleTrace() *Trace {
	t := New(2)
	t.Append(0, Event{Type: Init, Peer: -1, Root: -1, Start: 0, End: 100})
	t.Append(0, Event{Type: Send, Peer: 1, Bytes: 4096, Tag: 7, Root: -1, Start: 1000, End: 1100})
	t.Append(0, Event{Type: Irecv, Peer: 1, Bytes: 64, Tag: 8, Req: 3, Root: -1, Start: 1200, End: 1210})
	t.Append(0, Event{Type: Wait, Peer: -1, Req: 3, Root: -1, Start: 1300, End: 5000})
	t.Append(0, Event{Type: Allreduce, Peer: -1, Bytes: 8192, Root: -1, Start: 5100, End: 9000})
	t.Append(0, Event{Type: Finalize, Peer: -1, Root: -1, Start: 9100, End: 9200})
	t.Append(1, Event{Type: Init, Peer: -1, Root: -1, Start: 0, End: 90})
	t.Append(1, Event{Type: Recv, Peer: 0, Bytes: 4096, Tag: 7, Root: -1, Start: 500, End: 1500})
	t.Append(1, Event{Type: Isend, Peer: 0, Bytes: 64, Tag: 8, Req: 1, Root: -1, Start: 1600, End: 1650})
	t.Append(1, Event{Type: Allreduce, Peer: -1, Bytes: 8192, Root: -1, Start: 1700, End: 9000})
	t.Append(1, Event{Type: Finalize, Peer: -1, Root: -1, Start: 9100, End: 9150})
	return t
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	tr := New(1)
	tr.Append(0, Event{Type: Send, Peer: 5, Bytes: 1, Start: 0, End: 1})
	if tr.Validate() == nil {
		t.Fatal("bad peer accepted")
	}
	tr2 := New(1)
	tr2.Append(0, Event{Type: Init, Peer: -1, Start: 100, End: 50})
	if tr2.Validate() == nil {
		t.Fatal("end<start accepted")
	}
	tr3 := New(1)
	tr3.Append(0, Event{Type: Init, Peer: -1, Start: 100, End: 200})
	tr3.Append(0, Event{Type: Finalize, Peer: -1, Start: 50, End: 300})
	if tr3.Validate() == nil {
		t.Fatal("non-monotonic starts accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Events, got.Events) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", tr.Events, got.Events)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"rank 0 {\n}",
		"mpitrace nranks 0",
		"mpitrace nranks 1\nrank 5 {\n}",
		"mpitrace nranks 1\nMPI_Init t=0:1",
		"mpitrace nranks 1\nrank 0 {\nMPI_Frobnicate t=0:1\n}",
		"mpitrace nranks 1\nrank 0 {\nMPI_Init t=zero:1\n}",
		"mpitrace nranks 1\nrank 0 {\nMPI_Init wat\n}",
		"mpitrace nranks 2\nrank 0 {\nMPI_Send dst=9 bytes=1 tag=0 t=0:1\n}",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestOpTypeMetadata(t *testing.T) {
	if Send.String() != "MPI_Send" || Allreduce.String() != "MPI_Allreduce" {
		t.Fatal("names wrong")
	}
	if !Allreduce.IsCollective() || !Barrier.IsCollective() {
		t.Fatal("collectives misclassified")
	}
	if Send.IsCollective() || Wait.IsCollective() {
		t.Fatal("p2p misclassified")
	}
}

// Property: randomly generated valid traces round trip through text.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(4) + 1
		tr := New(n)
		for r := 0; r < n; r++ {
			ts := int64(0)
			for k := 0; k < rng.Intn(10); k++ {
				start := ts + rng.Int63n(1000)
				end := start + rng.Int63n(1000)
				ts = end
				ev := Event{Peer: -1, Root: -1, Start: start, End: end}
				switch rng.Intn(4) {
				case 0:
					ev.Type = Send
					if n == 1 {
						ev.Type = Init
						break
					}
					p := rng.Intn(n - 1)
					if p >= r {
						p++
					}
					ev.Peer = p
					ev.Bytes = rng.Int63n(1 << 20)
					ev.Tag = int32(rng.Intn(100))
				case 1:
					ev.Type = Allreduce
					ev.Bytes = rng.Int63n(1 << 20)
				case 2:
					ev.Type = Bcast
					ev.Bytes = rng.Int63n(1 << 20)
					ev.Root = rng.Intn(n)
				default:
					ev.Type = Init
				}
				tr.Append(r, ev)
			}
		}
		if tr.Validate() != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr.Events, got.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
