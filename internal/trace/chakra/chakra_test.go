package chakra

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	t := &Trace{Ranks: make([][]Node, 2)}
	for r := 0; r < 2; r++ {
		var b Builder
		c1 := b.AddComp("fwd_gemm", 120_000)
		b.AddColl(CollAllReduce, 1<<20, "world", c1)
		b.AddComp("opt_step", 40_000)
		t.Ranks[r] = b.Nodes()
	}
	return t
}

func TestBuilderShape(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := tr.Ranks[0]
	if len(nodes) != 3 {
		t.Fatalf("nodes=%d", len(nodes))
	}
	if nodes[1].Type != NodeCollComm || nodes[1].StrAttrOr("comm_type", "") != CollAllReduce {
		t.Fatalf("collective node wrong: %+v", nodes[1])
	}
	if nodes[1].IntAttrOr("comm_size", 0) != 1<<20 {
		t.Fatal("comm_size lost")
	}
	// implicit sequential ctrl dep
	if len(nodes[2].CtrlDeps) != 1 || nodes[2].CtrlDeps[0] != nodes[1].ID {
		t.Fatalf("implicit chaining broken: %+v", nodes[2])
	}
}

func TestAttrHelpers(t *testing.T) {
	n := Node{Attrs: []Attr{IntAttr("x", 7), StrAttr("s", "v")}}
	if n.IntAttrOr("x", 0) != 7 || n.StrAttrOr("s", "") != "v" {
		t.Fatal("attr lookup broken")
	}
	if n.IntAttrOr("missing", 42) != 42 || n.StrAttrOr("missing", "d") != "d" {
		t.Fatal("defaults broken")
	}
	if n.Attr("nope") != nil {
		t.Fatal("phantom attribute")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo count %d != %d", n, buf.Len())
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Ranks, got.Ranks) {
		t.Fatal("round trip mismatch")
	}
}

func TestValidateErrors(t *testing.T) {
	tr := &Trace{Ranks: [][]Node{{
		{ID: 1, Type: NodeComp},
		{ID: 1, Type: NodeComp},
	}}}
	if tr.Validate() == nil {
		t.Fatal("duplicate ids accepted")
	}
	tr2 := &Trace{Ranks: [][]Node{{
		{ID: 1, Type: NodeComp, CtrlDeps: []int64{99}},
	}}}
	if tr2.Validate() == nil {
		t.Fatal("dangling dependency accepted")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Parse(strings.NewReader(`{"format":"wrong","nranks":1}`)); err == nil {
		t.Fatal("wrong format accepted")
	}
	if _, err := Parse(strings.NewReader(`{"format":"atlahs-chakra-et-v1","nranks":1}` + "\n" + `{"rank":5,"nodes":[]}`)); err == nil {
		t.Fatal("rank out of range accepted")
	}
}

func TestSendRecvNodes(t *testing.T) {
	var b Builder
	s := b.AddSend(4096, 3, 7)
	r := b.AddRecv(4096, 1, 7, s)
	nodes := b.Nodes()
	if nodes[0].Type != NodeSendComm || nodes[0].IntAttrOr("comm_dst", -1) != 3 {
		t.Fatalf("send node wrong: %+v", nodes[0])
	}
	if nodes[1].Type != NodeRecvComm || nodes[1].IntAttrOr("comm_src", -1) != 1 {
		t.Fatalf("recv node wrong: %+v", nodes[1])
	}
	if r != s+1 {
		t.Fatal("ids not sequential")
	}
}
