package chakra

import (
	"bytes"
	"io"

	"atlahs/internal/goal"
	"atlahs/internal/trace/frontend"
)

func init() {
	frontend.Register(frontend.Definition{
		Name:       "chakra",
		Extensions: []string{".chakra", ".et"},
		Sniff: func(prefix []byte) bool {
			return bytes.HasPrefix(prefix, []byte(`{"format":"`+formatName+`"`))
		},
		Convert: func(r io.Reader, cfg any) (*goal.Schedule, error) {
			c, err := frontend.ConfigAs[ConvertConfig]("chakra", cfg)
			if err != nil {
				return nil, err
			}
			t, err := Parse(r)
			if err != nil {
				return nil, err
			}
			return ToGOAL(t, c)
		},
		NewConfig: func() any { return new(ConvertConfig) },
	})
}
