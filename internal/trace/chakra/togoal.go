package chakra

import (
	"fmt"
	"sort"

	"atlahs/internal/collective"
	"atlahs/internal/goal"
)

// ConvertConfig parameterises Chakra-to-GOAL conversion.
type ConvertConfig struct {
	// WorldGroup is the comm_group name treated as the full rank set
	// (default "world").
	WorldGroup string
	// Groups maps subgroup names to their member ranks (in communicator
	// rank order). Chakra traces carry only group names on collective
	// nodes, not memberships, so subgroup collectives need this table; a
	// collective over a group that is neither the world group nor listed
	// here is an error.
	Groups map[string][]int
	// ReduceNsPerByte charges local reduction cost inside reducing
	// collectives (default 0).
	ReduceNsPerByte float64
}

func (c ConvertConfig) withDefaults() ConvertConfig {
	if c.WorldGroup == "" {
		c.WorldGroup = "world"
	}
	return c
}

var chakraToKind = map[string]collective.Kind{
	CollAllReduce:     collective.Allreduce,
	CollAllGather:     collective.Allgather,
	CollReduceScatter: collective.ReduceScatter,
	CollAllToAll:      collective.Alltoall,
	CollBroadcast:     collective.Bcast,
}

// collTagBase namespaces collective tags away from the trace's P2P tags,
// matching the other converters' convention.
const collTagBase = 1 << 24

// pendingColl is one collective node awaiting lockstep decomposition,
// bracketed by its entry and exit dummies in the owning rank's chain.
type pendingColl struct {
	rank  int
	node  *Node
	kind  collective.Kind
	entry goal.OpID
	exit  goal.OpID
}

// ToGOAL converts a Chakra-like execution trace into a GOAL schedule —
// the ingestion path that lets ATLAHS replay the traces its AstraSim
// baseline consumes. Compute nodes become calc vertices, point-to-point
// COMM_SEND/COMM_RECV nodes become sends/receives matched by (peer, tag),
// and collective nodes are decomposed into point-to-point algorithms via
// internal/collective, in lockstep per communicator group (every member
// must issue the group's collectives in the same order). Unlike the
// AstraSim-lite feeder, P2P nodes and (configured) subgroups are
// supported.
func ToGOAL(t *Trace, cfg ConvertConfig) (*goal.Schedule, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := t.NumRanks()
	if n == 0 {
		return nil, fmt.Errorf("chakra: empty trace")
	}
	world := make([]int, n)
	for i := range world {
		world[i] = i
	}
	members := func(group string) ([]int, error) {
		if group == cfg.WorldGroup {
			return world, nil
		}
		if m, ok := cfg.Groups[group]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("chakra: collective over unknown group %q (not the world group; add it to ConvertConfig.Groups)", group)
	}

	b := goal.NewBuilder(n)
	perGroup := map[string][]pendingColl{}
	for r := 0; r < n; r++ {
		rb := b.Rank(r)
		// done[id] is the GOAL op whose completion stands for the chakra
		// node: the op itself for comp/send/recv, the exit dummy for
		// collectives.
		done := map[int64]goal.OpID{}
		for i := range t.Ranks[r] {
			nd := &t.Ranks[r][i]
			var entry, op goal.OpID
			switch nd.Type {
			case NodeComp:
				op = rb.Calc(nd.IntAttrOr("runtime", 0))
				entry = op
			case NodeSendComm:
				dst := nd.IntAttrOr("comm_dst", -1)
				op = rb.Send(nd.IntAttrOr("comm_size", 0), int(dst), int32(nd.IntAttrOr("comm_tag", 0)))
				entry = op
			case NodeRecvComm:
				src := nd.IntAttrOr("comm_src", -1)
				op = rb.Recv(nd.IntAttrOr("comm_size", 0), int(src), int32(nd.IntAttrOr("comm_tag", 0)))
				entry = op
			case NodeCollComm:
				kind, ok := chakraToKind[nd.StrAttrOr("comm_type", "")]
				if !ok {
					return nil, fmt.Errorf("chakra: rank %d node %d: unsupported collective %q", r, nd.ID, nd.StrAttrOr("comm_type", ""))
				}
				group := nd.StrAttrOr("comm_group", cfg.WorldGroup)
				entry = rb.Calc(0)
				op = rb.Calc(0)
				rb.Requires(op, entry)
				perGroup[group] = append(perGroup[group], pendingColl{rank: r, node: nd, kind: kind, entry: entry, exit: op})
			default:
				return nil, fmt.Errorf("chakra: rank %d node %d: unknown node type %q", r, nd.ID, nd.Type)
			}
			for _, d := range append(append([]int64{}, nd.CtrlDeps...), nd.DataDeps...) {
				dep, ok := done[d]
				if !ok {
					return nil, fmt.Errorf("chakra: rank %d node %d: dependency %d appears after its dependent (nodes must be listed in dependency order)", r, nd.ID, d)
				}
				rb.Requires(entry, dep)
			}
			done[nd.ID] = op
		}
	}

	// Decompose each group's collectives in lockstep across its members.
	groups := make([]string, 0, len(perGroup))
	for g := range perGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	collInstance := 0
	for _, g := range groups {
		mem, err := members(g)
		if err != nil {
			return nil, err
		}
		pos := map[int]int{}
		for i, r := range mem {
			pos[r] = i
		}
		perMember := make([][]pendingColl, len(mem))
		for _, p := range perGroup[g] {
			i, ok := pos[p.rank]
			if !ok {
				return nil, fmt.Errorf("chakra: group %q collective issued by non-member rank %d", g, p.rank)
			}
			perMember[i] = append(perMember[i], p)
		}
		for ci := 0; ; ci++ {
			var ref *pendingColl
			for i := range mem {
				if ci < len(perMember[i]) {
					ref = &perMember[i][ci]
					break
				}
			}
			if ref == nil {
				break
			}
			entries := make([]goal.OpID, len(mem))
			for i := range mem {
				if ci >= len(perMember[i]) {
					return nil, fmt.Errorf("chakra: group %q: rank %d missing collective #%d (%s)",
						g, mem[i], ci, ref.node.StrAttrOr("comm_type", ""))
				}
				p := &perMember[i][ci]
				if p.kind != ref.kind {
					return nil, fmt.Errorf("chakra: group %q collective #%d: rank %d issues %v while rank %d issues %v",
						g, ci, p.rank, p.kind, ref.rank, ref.kind)
				}
				// The decomposition uses one (size, root) for the whole
				// group, so disagreeing members mean a malformed trace —
				// reject it instead of silently adopting ref's values.
				if ps, rs := p.node.IntAttrOr("comm_size", 0), ref.node.IntAttrOr("comm_size", 0); ps != rs {
					return nil, fmt.Errorf("chakra: group %q collective #%d: rank %d sends %d bytes while rank %d sends %d",
						g, ci, p.rank, ps, ref.rank, rs)
				}
				if pr, rr := p.node.IntAttrOr("comm_root", 0), ref.node.IntAttrOr("comm_root", 0); pr != rr {
					return nil, fmt.Errorf("chakra: group %q collective #%d: rank %d roots at %d while rank %d roots at %d",
						g, ci, p.rank, pr, ref.rank, rr)
				}
				entries[i] = p.entry
			}
			root := int(ref.node.IntAttrOr("comm_root", 0))
			exits, err := collective.Decompose(b, ref.kind, collective.Auto, mem, root,
				ref.node.IntAttrOr("comm_size", 0), collective.Options{
					TagBase:         int32(collTagBase + collInstance*collective.TagSpan),
					ReduceNsPerByte: cfg.ReduceNsPerByte,
				}, entries)
			if err != nil {
				return nil, fmt.Errorf("chakra: group %q collective #%d: %w", g, ci, err)
			}
			collInstance++
			for i := range mem {
				b.Rank(mem[i]).Requires(perMember[i][ci].exit, exits[i])
			}
		}
	}

	sch := b.Build()
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	return sch, nil
}
