package chakra

import (
	"strings"
	"testing"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
)

// fixture builds an n-rank trace: compute, a world allreduce, and a
// 0->1 P2P pair.
func fixture(n int) *Trace {
	t := &Trace{Ranks: make([][]Node, n)}
	for r := 0; r < n; r++ {
		var b Builder
		b.AddComp("fwd", int64(1000*(r+1)))
		b.AddColl(CollAllReduce, 1<<16, "world")
		if r == 0 {
			b.AddSend(4096, 1, 9)
		}
		if r == 1 {
			b.AddRecv(4096, 0, 9)
		}
		b.AddComp("opt", 500)
		t.Ranks[r] = b.Nodes()
	}
	return t
}

func TestToGOALRuns(t *testing.T) {
	tr := fixture(4)
	s, err := ToGOAL(tr, ConvertConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRanks() != 4 {
		t.Fatalf("ranks %d, want 4", s.NumRanks())
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.Sends == 0 || st.Recvs == 0 {
		t.Fatalf("collective not decomposed into P2P: %+v", st)
	}
	// compute carried over: 2 comps per rank plus the traced durations
	if st.CalcNanos < 4*(1000+500) {
		t.Fatalf("compute lost: %+v", st)
	}
	// The converted schedule must actually simulate to completion.
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Fatalf("runtime %v", res.Runtime)
	}
}

func TestToGOALDeterministic(t *testing.T) {
	a, err := ToGOAL(fixture(4), ConvertConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ToGOAL(fixture(4), ConvertConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.ComputeStats() != b.ComputeStats() {
		t.Fatal("conversion not deterministic")
	}
}

func TestToGOALSubgroups(t *testing.T) {
	// Two 2-rank subgroups, unknown without a Groups table.
	tr := &Trace{Ranks: make([][]Node, 4)}
	for r := 0; r < 4; r++ {
		var b Builder
		group := "dp0"
		if r >= 2 {
			group = "dp1"
		}
		b.AddComp("fwd", 1000)
		b.AddColl(CollAllGather, 4096, group)
		tr.Ranks[r] = b.Nodes()
	}
	if _, err := ToGOAL(tr, ConvertConfig{}); err == nil || !strings.Contains(err.Error(), "unknown group") {
		t.Fatalf("unknown subgroup should error, got %v", err)
	}
	s, err := ToGOAL(tr, ConvertConfig{Groups: map[string][]int{"dp0": {0, 1}, "dp1": {2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	if st := s.ComputeStats(); st.Sends == 0 {
		t.Fatalf("subgroup collectives not decomposed: %+v", st)
	}
}

func TestToGOALErrors(t *testing.T) {
	// Mismatched collective order across ranks.
	tr := &Trace{Ranks: make([][]Node, 2)}
	var b0, b1 Builder
	b0.AddColl(CollAllReduce, 1024, "world")
	b1.AddColl(CollAllGather, 1024, "world")
	tr.Ranks[0], tr.Ranks[1] = b0.Nodes(), b1.Nodes()
	if _, err := ToGOAL(tr, ConvertConfig{}); err == nil {
		t.Fatal("collective mismatch should error")
	}

	// A rank missing a collective.
	tr2 := &Trace{Ranks: make([][]Node, 2)}
	var c0, c1 Builder
	c0.AddColl(CollAllReduce, 1024, "world")
	c1.AddComp("only-compute", 10)
	tr2.Ranks[0], tr2.Ranks[1] = c0.Nodes(), c1.Nodes()
	if _, err := ToGOAL(tr2, ConvertConfig{}); err == nil || !strings.Contains(err.Error(), "missing collective") {
		t.Fatalf("missing collective should error, got %v", err)
	}

	// Members disagreeing on the collective's payload size.
	tr4 := &Trace{Ranks: make([][]Node, 2)}
	var d0, d1 Builder
	d0.AddColl(CollAllReduce, 1<<20, "world")
	d1.AddColl(CollAllReduce, 4096, "world")
	tr4.Ranks[0], tr4.Ranks[1] = d0.Nodes(), d1.Nodes()
	if _, err := ToGOAL(tr4, ConvertConfig{}); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("comm_size mismatch should error, got %v", err)
	}

	// Unsupported collective type.
	tr3 := &Trace{Ranks: [][]Node{{{
		ID: 0, Name: "x", Type: NodeCollComm,
		Attrs: []Attr{StrAttr("comm_type", "GATHERV"), IntAttr("comm_size", 10)},
	}}}}
	if _, err := ToGOAL(tr3, ConvertConfig{}); err == nil || !strings.Contains(err.Error(), "unsupported collective") {
		t.Fatalf("unsupported collective should error, got %v", err)
	}

	if _, err := ToGOAL(&Trace{}, ConvertConfig{}); err == nil {
		t.Fatal("empty trace should error")
	}
}

// TestToGOALP2POnly: traces with only matched P2P pairs convert without a
// collective pass.
func TestToGOALP2POnly(t *testing.T) {
	tr := &Trace{Ranks: make([][]Node, 2)}
	var b0, b1 Builder
	b0.AddComp("pre", 100)
	b0.AddSend(2048, 1, 3)
	b1.AddRecv(2048, 0, 3)
	b1.AddComp("post", 100)
	tr.Ranks[0], tr.Ranks[1] = b0.Nodes(), b1.Nodes()
	s, err := ToGOAL(tr, ConvertConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, op := range s.Ranks[0].Ops {
		if op.Kind == goal.KindSend && op.Size == 2048 && op.Peer == 1 && op.Tag == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("P2P send not carried over")
	}
}
