// Package chakra implements a Chakra-like execution-trace format (Sridharan
// et al., 2023) — the input format of the AstraSim baseline the paper
// compares against (§5.2, Fig 9). Like the real Chakra ET, a trace is one
// node graph per rank where every node carries a type, explicit dependency
// lists and a set of named attributes; compute nodes additionally describe
// their kernels. The rendering here is verbose JSON (the real format is
// protobuf): the per-node attribute objects are what make Chakra traces
// several times larger than the equivalent binary GOAL files, which is the
// effect Fig 9 measures.
package chakra

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Node types.
const (
	NodeComp     = "COMP_NODE"
	NodeCollComm = "COMM_COLL_NODE"
	NodeSendComm = "COMM_SEND_NODE"
	NodeRecvComm = "COMM_RECV_NODE"
)

// Collective types for the comm_type attribute.
const (
	CollAllReduce     = "ALL_REDUCE"
	CollAllGather     = "ALL_GATHER"
	CollReduceScatter = "REDUCE_SCATTER"
	CollAllToAll      = "ALL_TO_ALL"
	CollBroadcast     = "BROADCAST"
)

// Attr is one named attribute; exactly one value field is set.
type Attr struct {
	Name      string  `json:"name"`
	Int64Val  *int64  `json:"int64_val,omitempty"`
	StringVal *string `json:"string_val,omitempty"`
}

// IntAttr builds an integer attribute.
func IntAttr(name string, v int64) Attr { return Attr{Name: name, Int64Val: &v} }

// StrAttr builds a string attribute.
func StrAttr(name, v string) Attr { return Attr{Name: name, StringVal: &v} }

// Node is one vertex of a rank's execution graph.
type Node struct {
	ID       int64   `json:"id"`
	Name     string  `json:"name"`
	Type     string  `json:"type"`
	CtrlDeps []int64 `json:"ctrl_deps"`
	DataDeps []int64 `json:"data_deps"`
	Attrs    []Attr  `json:"attrs"`
}

// Attr returns the named attribute, or nil.
func (n *Node) Attr(name string) *Attr {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			return &n.Attrs[i]
		}
	}
	return nil
}

// IntAttrOr returns the named int attribute or a default.
func (n *Node) IntAttrOr(name string, def int64) int64 {
	if a := n.Attr(name); a != nil && a.Int64Val != nil {
		return *a.Int64Val
	}
	return def
}

// StrAttrOr returns the named string attribute or a default.
func (n *Node) StrAttrOr(name, def string) string {
	if a := n.Attr(name); a != nil && a.StringVal != nil {
		return *a.StringVal
	}
	return def
}

// Trace is a complete multi-rank Chakra-like execution trace.
type Trace struct {
	Ranks [][]Node
}

// NumRanks returns the rank count.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// Validate checks IDs and dependency references.
func (t *Trace) Validate() error {
	for r, nodes := range t.Ranks {
		ids := map[int64]bool{}
		for i := range nodes {
			n := &nodes[i]
			if ids[n.ID] {
				return fmt.Errorf("chakra: rank %d: duplicate node id %d", r, n.ID)
			}
			ids[n.ID] = true
		}
		for i := range nodes {
			for _, d := range append(append([]int64{}, nodes[i].CtrlDeps...), nodes[i].DataDeps...) {
				if !ids[d] {
					return fmt.Errorf("chakra: rank %d node %d: dependency %d not found", r, nodes[i].ID, d)
				}
			}
		}
	}
	return nil
}

type header struct {
	Format string `json:"format"`
	NRanks int    `json:"nranks"`
}

type rankDoc struct {
	Rank  int    `json:"rank"`
	Nodes []Node `json:"nodes"`
}

const formatName = "atlahs-chakra-et-v1"

// WriteTo serialises the trace as JSON lines: a header followed by one
// rank document per line.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	hdr, err := json.Marshal(header{Format: formatName, NRanks: t.NumRanks()})
	if err != nil {
		return 0, err
	}
	c, err := bw.Write(append(hdr, '\n'))
	n += int64(c)
	if err != nil {
		return n, err
	}
	enc := json.NewEncoder(bw)
	for r := range t.Ranks {
		before := bw.Buffered()
		if err := enc.Encode(rankDoc{Rank: r, Nodes: t.Ranks[r]}); err != nil {
			return n, err
		}
		n += int64(bw.Buffered() - before)
	}
	return n, bw.Flush()
}

// Parse reads a JSON-lines trace.
func Parse(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var hdr header
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("chakra: reading header: %w", err)
	}
	if hdr.Format != formatName {
		return nil, fmt.Errorf("chakra: unknown format %q", hdr.Format)
	}
	if hdr.NRanks <= 0 {
		return nil, fmt.Errorf("chakra: bad rank count %d", hdr.NRanks)
	}
	t := &Trace{Ranks: make([][]Node, hdr.NRanks)}
	for {
		var doc rankDoc
		if err := dec.Decode(&doc); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("chakra: reading rank document: %w", err)
		}
		if doc.Rank < 0 || doc.Rank >= hdr.NRanks {
			return nil, fmt.Errorf("chakra: rank %d out of range", doc.Rank)
		}
		t.Ranks[doc.Rank] = doc.Nodes
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Builder incrementally constructs a rank's node list with automatic IDs
// and sequential control dependencies (the shape PyTorch+Kineto merges
// produce).
type Builder struct {
	nodes  []Node
	nextID int64
}

// AddComp appends a compute node of the given runtime, depending on deps
// (or the previous node if none given).
func (b *Builder) AddComp(name string, runtimeNs int64, deps ...int64) int64 {
	return b.add(Node{
		Name: name,
		Type: NodeComp,
		Attrs: []Attr{
			IntAttr("runtime", runtimeNs),
			IntAttr("num_ops", runtimeNs*2), // synthetic FLOP estimate
			StrAttr("kernel", name),
		},
	}, deps)
}

// AddColl appends a collective node over the named group.
func (b *Builder) AddColl(collType string, bytes int64, group string, deps ...int64) int64 {
	return b.add(Node{
		Name: collType,
		Type: NodeCollComm,
		Attrs: []Attr{
			StrAttr("comm_type", collType),
			IntAttr("comm_size", bytes),
			StrAttr("comm_group", group),
			StrAttr("involved_dim", "[true]"),
		},
	}, deps)
}

// AddSend appends a point-to-point send node.
func (b *Builder) AddSend(bytes int64, dst int, tag int64, deps ...int64) int64 {
	return b.add(Node{
		Name: "SEND",
		Type: NodeSendComm,
		Attrs: []Attr{
			IntAttr("comm_size", bytes),
			IntAttr("comm_dst", int64(dst)),
			IntAttr("comm_tag", tag),
		},
	}, deps)
}

// AddRecv appends a point-to-point receive node.
func (b *Builder) AddRecv(bytes int64, src int, tag int64, deps ...int64) int64 {
	return b.add(Node{
		Name: "RECV",
		Type: NodeRecvComm,
		Attrs: []Attr{
			IntAttr("comm_size", bytes),
			IntAttr("comm_src", int64(src)),
			IntAttr("comm_tag", tag),
		},
	}, deps)
}

func (b *Builder) add(n Node, deps []int64) int64 {
	n.ID = b.nextID
	b.nextID++
	if len(deps) > 0 {
		n.CtrlDeps = deps
	} else if n.ID > 0 {
		n.CtrlDeps = []int64{n.ID - 1}
	}
	b.nodes = append(b.nodes, n)
	return n.ID
}

// Nodes returns the built node list.
func (b *Builder) Nodes() []Node { return b.nodes }
