package schedgen

import (
	"strings"
	"testing"

	"atlahs/internal/backend"
	"atlahs/internal/collective"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/mpitrace"
)

// pingPongTrace: rank 0 computes 10us, sends 4 KiB; rank 1 receives and
// replies; rank 0 receives the reply.
func pingPongTrace() *mpitrace.Trace {
	t := mpitrace.New(2)
	t.Append(0, mpitrace.Event{Type: mpitrace.Init, Peer: -1, Root: -1, Start: 0, End: 0})
	t.Append(0, mpitrace.Event{Type: mpitrace.Send, Peer: 1, Bytes: 4096, Tag: 1, Root: -1, Start: 10000, End: 10100})
	t.Append(0, mpitrace.Event{Type: mpitrace.Recv, Peer: 1, Bytes: 4096, Tag: 2, Root: -1, Start: 10200, End: 30000})
	t.Append(1, mpitrace.Event{Type: mpitrace.Init, Peer: -1, Root: -1, Start: 0, End: 0})
	t.Append(1, mpitrace.Event{Type: mpitrace.Recv, Peer: 0, Bytes: 4096, Tag: 1, Root: -1, Start: 100, End: 15000})
	t.Append(1, mpitrace.Event{Type: mpitrace.Send, Peer: 0, Bytes: 4096, Tag: 2, Root: -1, Start: 15100, End: 15200})
	return t
}

func TestPingPongConversion(t *testing.T) {
	s, err := Generate(pingPongTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.Sends != 2 || st.Recvs != 2 {
		t.Fatalf("stats %+v", st)
	}
	// rank 0 gap before its send: 10000 ns of compute
	var calcNs int64
	for i := range s.Ranks[0].Ops {
		if s.Ranks[0].Ops[i].Kind == goal.KindCalc {
			calcNs += s.Ranks[0].Ops[i].Size
		}
	}
	if calcNs != 10000+100 {
		t.Fatalf("rank 0 inferred compute %d ns, want 10100 (10000 pre-send + 100 pre-recv)", calcNs)
	}
	// runs to completion
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.HPCParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime < 10*simtime.Microsecond {
		t.Fatalf("runtime %v below the inferred compute floor", res.Runtime)
	}
}

func TestWaitSemantics(t *testing.T) {
	// rank 0: Irecv + compute + Wait: compute overlaps the transfer
	tr := mpitrace.New(2)
	tr.Append(0, mpitrace.Event{Type: mpitrace.Irecv, Peer: 1, Bytes: 1 << 20, Tag: 1, Req: 9, Root: -1, Start: 0, End: 10})
	tr.Append(0, mpitrace.Event{Type: mpitrace.Wait, Peer: -1, Req: 9, Root: -1, Start: 100010, End: 200000})
	tr.Append(1, mpitrace.Event{Type: mpitrace.Send, Peer: 0, Bytes: 1 << 20, Tag: 1, Root: -1, Start: 0, End: 100})
	s, err := Generate(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 100 us of compute overlapping a ~42 us transfer: runtime ~ compute
	lo, hi := 100*simtime.Microsecond, 120*simtime.Microsecond
	if res.Runtime < lo || res.Runtime > hi {
		t.Fatalf("overlap broken: runtime %v, want ~100us", res.Runtime)
	}
}

func TestWaitUnknownReq(t *testing.T) {
	tr := mpitrace.New(1)
	tr.Append(0, mpitrace.Event{Type: mpitrace.Wait, Peer: -1, Req: 42, Root: -1, Start: 0, End: 1})
	if _, err := Generate(tr, Options{}); err == nil || !strings.Contains(err.Error(), "unknown request") {
		t.Fatalf("unknown request not detected: %v", err)
	}
}

func collectiveTrace(n int, typ mpitrace.OpType, bytes int64, root int) *mpitrace.Trace {
	tr := mpitrace.New(n)
	for r := 0; r < n; r++ {
		tr.Append(r, mpitrace.Event{Type: mpitrace.Init, Peer: -1, Root: -1, Start: 0, End: 0})
		tr.Append(r, mpitrace.Event{Type: typ, Peer: -1, Bytes: bytes, Root: root, Start: 1000, End: 50000})
		tr.Append(r, mpitrace.Event{Type: mpitrace.Finalize, Peer: -1, Root: -1, Start: 60000, End: 60010})
	}
	return tr
}

func TestCollectiveSubstitution(t *testing.T) {
	for _, typ := range []mpitrace.OpType{
		mpitrace.Allreduce, mpitrace.Bcast, mpitrace.Allgather,
		mpitrace.ReduceScatter, mpitrace.Alltoall, mpitrace.Barrier,
		mpitrace.ReduceOp, mpitrace.Gather, mpitrace.Scatter,
	} {
		tr := collectiveTrace(4, typ, 8192, 1)
		s, err := Generate(tr, Options{})
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if err := s.CheckMatched(); err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if typ != mpitrace.Barrier {
			if st := s.ComputeStats(); st.Sends == 0 {
				t.Fatalf("%v: no p2p substitution", typ)
			}
		}
		if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.HPCParams()), sched.Options{}); err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
	}
}

func TestAlgoSelection(t *testing.T) {
	tr := collectiveTrace(8, mpitrace.Allreduce, 1<<20, -1)
	ringS, err := Generate(tr, Options{Algos: map[collective.Kind]collective.Algo{collective.Allreduce: collective.Ring}})
	if err != nil {
		t.Fatal(err)
	}
	rdS, err := Generate(tr, Options{Algos: map[collective.Kind]collective.Algo{collective.Allreduce: collective.RecDoubling}})
	if err != nil {
		t.Fatal(err)
	}
	ringBytes := ringS.ComputeStats().SendBytes
	rdBytes := rdS.ComputeStats().SendBytes
	// recursive doubling sends the full vector log2(8)=3 times per rank:
	// 3*8 sends of 1 MiB = 24 MiB total; ring sends 2*7/8 per rank = 14 MiB.
	if rdBytes <= ringBytes {
		t.Fatalf("recdoubling (%d B) should move more bytes than ring (%d B) at this size", rdBytes, ringBytes)
	}
}

func TestCollectiveCountMismatch(t *testing.T) {
	tr := mpitrace.New(2)
	tr.Append(0, mpitrace.Event{Type: mpitrace.Allreduce, Peer: -1, Bytes: 64, Root: -1, Start: 0, End: 10})
	// rank 1 never calls the collective
	tr.Append(1, mpitrace.Event{Type: mpitrace.Init, Peer: -1, Root: -1, Start: 0, End: 10})
	if _, err := Generate(tr, Options{}); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("mismatch not detected: %v", err)
	}
}

func TestCollectiveTypeMismatch(t *testing.T) {
	tr := mpitrace.New(2)
	tr.Append(0, mpitrace.Event{Type: mpitrace.Allreduce, Peer: -1, Bytes: 64, Root: -1, Start: 0, End: 10})
	tr.Append(1, mpitrace.Event{Type: mpitrace.Barrier, Peer: -1, Root: -1, Start: 0, End: 10})
	if _, err := Generate(tr, Options{}); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("type mismatch not detected: %v", err)
	}
}

func TestMinComputeFilter(t *testing.T) {
	tr := mpitrace.New(2)
	tr.Append(0, mpitrace.Event{Type: mpitrace.Send, Peer: 1, Bytes: 8, Tag: 0, Root: -1, Start: 50, End: 60})
	tr.Append(0, mpitrace.Event{Type: mpitrace.Send, Peer: 1, Bytes: 8, Tag: 1, Root: -1, Start: 5060, End: 5070})
	tr.Append(1, mpitrace.Event{Type: mpitrace.Recv, Peer: 0, Bytes: 8, Tag: 0, Root: -1, Start: 0, End: 10})
	tr.Append(1, mpitrace.Event{Type: mpitrace.Recv, Peer: 0, Bytes: 8, Tag: 1, Root: -1, Start: 10, End: 20})
	s, err := Generate(tr, Options{MinComputeNs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// the 50 ns initial gap is filtered; the 5000 ns inter-send gap stays
	st := s.ComputeStats()
	if st.Calcs != 1 || st.CalcNanos != 5000 {
		t.Fatalf("calc filtering wrong: %+v", st)
	}
}

func TestMultipleCollectivesChained(t *testing.T) {
	tr := mpitrace.New(4)
	for r := 0; r < 4; r++ {
		tr.Append(r, mpitrace.Event{Type: mpitrace.Bcast, Peer: -1, Bytes: 4096, Root: 0, Start: 100, End: 500})
		tr.Append(r, mpitrace.Event{Type: mpitrace.Allreduce, Peer: -1, Bytes: 4096, Root: -1, Start: 1000, End: 2000})
		tr.Append(r, mpitrace.Event{Type: mpitrace.Barrier, Peer: -1, Root: -1, Start: 3000, End: 4000})
	}
	s, err := Generate(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.HPCParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}
