// Package schedgen converts MPI traces into GOAL schedules — the Schedgen
// component of the toolchain (paper §3.1.1). Computation between
// consecutive MPI calls is inferred from their timestamps; collective
// operations are substituted with point-to-point algorithms chosen per
// collective kind (ring, recursive doubling, binomial tree, ...), which is
// what lets a single trace be re-simulated under different collective
// implementations.
package schedgen

import (
	"fmt"

	"atlahs/internal/collective"
	"atlahs/internal/goal"
	"atlahs/internal/trace/mpitrace"
)

// Options configures trace conversion.
type Options struct {
	// Algos overrides the decomposition algorithm per collective kind
	// (default collective.Auto).
	Algos map[collective.Kind]collective.Algo
	// CPU is the compute stream generated ops run on (MPI apps: stream 0).
	CPU int32
	// MinComputeNs drops inferred computation gaps shorter than this
	// (trace noise floor). 0 keeps every positive gap.
	MinComputeNs int64
	// ReduceNsPerByte charges local reduction cost inside reducing
	// collectives.
	ReduceNsPerByte float64
}

// collTagBase namespaces collective tags away from application P2P tags.
const collTagBase = 1 << 24

var collKind = map[mpitrace.OpType]collective.Kind{
	mpitrace.Allreduce:     collective.Allreduce,
	mpitrace.Bcast:         collective.Bcast,
	mpitrace.Allgather:     collective.Allgather,
	mpitrace.ReduceScatter: collective.ReduceScatter,
	mpitrace.Alltoall:      collective.Alltoall,
	mpitrace.Barrier:       collective.Barrier,
	mpitrace.ReduceOp:      collective.Reduce,
	mpitrace.Gather:        collective.Gather,
	mpitrace.Scatter:       collective.Scatter,
}

// Generate converts an MPI trace into a GOAL schedule.
func Generate(t *mpitrace.Trace, opt Options) (*goal.Schedule, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.NumRanks()
	// split each rank's events into segments separated by collectives;
	// MPI requires every rank to call collectives in the same order, which
	// is what lets us emit them in lockstep.
	type segment struct {
		events []mpitrace.Event // p2p/local events before the collective
		coll   *mpitrace.Event  // nil for the trailing segment
	}
	segs := make([][]segment, n)
	for r := 0; r < n; r++ {
		cur := segment{}
		for _, ev := range t.Events[r] {
			if ev.Type.IsCollective() {
				evCopy := ev
				cur.coll = &evCopy
				segs[r] = append(segs[r], cur)
				cur = segment{}
				continue
			}
			cur.events = append(cur.events, ev)
		}
		segs[r] = append(segs[r], cur)
	}
	nseg := len(segs[0])
	for r := 1; r < n; r++ {
		if len(segs[r]) != nseg {
			return nil, fmt.Errorf("schedgen: rank %d saw %d collectives, rank 0 saw %d — traces inconsistent",
				r, len(segs[r])-1, nseg-1)
		}
	}

	b := goal.NewBuilder(n)
	heads := make([]goal.OpID, n)
	lastEnd := make([]int64, n)
	pendingReq := make([]map[int64]goal.OpID, n)
	for r := range heads {
		heads[r] = -1
		pendingReq[r] = map[int64]goal.OpID{}
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}

	collIdx := 0
	for s := 0; s < nseg; s++ {
		for r := 0; r < n; r++ {
			var err error
			heads[r], err = emitSegment(b.Rank(r), segs[r][s].events, heads[r], &lastEnd[r], pendingReq[r], opt)
			if err != nil {
				return nil, fmt.Errorf("schedgen: rank %d: %w", r, err)
			}
		}
		if s == nseg-1 {
			break
		}
		ref := segs[0][s].coll
		kind, ok := collKind[ref.Type]
		if !ok {
			return nil, fmt.Errorf("schedgen: unsupported collective %v", ref.Type)
		}
		for r := 0; r < n; r++ {
			if k2 := collKind[segs[r][s].coll.Type]; k2 != kind {
				return nil, fmt.Errorf("schedgen: collective %d mismatch: rank 0 %v vs rank %d %v",
					collIdx, kind, r, k2)
			}
			// computation between the previous call and this collective
			if gap := segs[r][s].coll.Start - lastEnd[r]; gap > 0 && gap >= opt.MinComputeNs {
				rb := b.Rank(r)
				c := rb.CalcOn(gap, opt.CPU)
				if heads[r] >= 0 {
					rb.Requires(c, heads[r])
				}
				heads[r] = c
			}
			// waiting time inside the collective is re-simulated, not compute
			lastEnd[r] = segs[r][s].coll.End
		}
		root := ref.Root
		if root < 0 {
			root = 0
		}
		algo := collective.Auto
		if opt.Algos != nil {
			algo = opt.Algos[kind]
		}
		exits, err := collective.Decompose(b, kind, algo, group, root, ref.Bytes, collective.Options{
			CPU:             opt.CPU,
			TagBase:         int32(collTagBase + collIdx*collective.TagSpan),
			ReduceNsPerByte: opt.ReduceNsPerByte,
		}, heads)
		if err != nil {
			return nil, fmt.Errorf("schedgen: collective %d (%v): %w", collIdx, kind, err)
		}
		heads = exits
		collIdx++
	}

	sch := b.Build()
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	return sch, nil
}

// emitSegment converts one rank's p2p/local events, chaining from head,
// and returns the new chain head.
func emitSegment(rb *goal.RankBuilder, events []mpitrace.Event, head goal.OpID, lastEnd *int64, reqs map[int64]goal.OpID, opt Options) (goal.OpID, error) {
	chain := func(id goal.OpID) {
		if head >= 0 {
			rb.Requires(id, head)
		}
		head = id
	}
	for _, ev := range events {
		// inferred computation between the previous call's end and this
		// call's start
		if *lastEnd > 0 || ev.Start > 0 {
			gap := ev.Start - *lastEnd
			if gap > 0 && gap >= opt.MinComputeNs {
				chain(rb.CalcOn(gap, opt.CPU))
			}
		}
		*lastEnd = ev.End
		switch ev.Type {
		case mpitrace.Init, mpitrace.Finalize:
			// bookkeeping only
		case mpitrace.Send:
			chain(rb.SendOn(ev.Bytes, ev.Peer, ev.Tag, opt.CPU))
		case mpitrace.Recv:
			chain(rb.RecvOn(ev.Bytes, ev.Peer, ev.Tag, opt.CPU))
		case mpitrace.Isend:
			id := rb.SendOn(ev.Bytes, ev.Peer, ev.Tag, opt.CPU)
			if head >= 0 {
				rb.Requires(id, head)
			}
			if ev.Req != 0 {
				reqs[ev.Req] = id
			}
		case mpitrace.Irecv:
			id := rb.RecvOn(ev.Bytes, ev.Peer, ev.Tag, opt.CPU)
			if head >= 0 {
				rb.Requires(id, head)
			}
			if ev.Req != 0 {
				reqs[ev.Req] = id
			}
		case mpitrace.Wait:
			dep, ok := reqs[ev.Req]
			if !ok {
				return head, fmt.Errorf("MPI_Wait for unknown request %d", ev.Req)
			}
			delete(reqs, ev.Req)
			d := rb.CalcOn(0, opt.CPU)
			if head >= 0 {
				rb.Requires(d, head)
			}
			rb.Requires(d, dep)
			head = d
		default:
			return head, fmt.Errorf("unexpected event %v in p2p segment", ev.Type)
		}
	}
	return head, nil
}
