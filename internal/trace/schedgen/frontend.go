package schedgen

import (
	"bytes"
	"io"

	"atlahs/internal/goal"
	"atlahs/internal/trace/frontend"
	"atlahs/internal/trace/mpitrace"
)

func init() {
	frontend.Register(frontend.Definition{
		Name:       "mpi",
		Extensions: []string{".mpi"},
		Sniff: func(prefix []byte) bool {
			return bytes.HasPrefix(frontend.FirstLine(prefix, "#"), []byte("mpitrace "))
		},
		Convert: func(r io.Reader, cfg any) (*goal.Schedule, error) {
			opt, err := frontend.ConfigAs[Options]("mpi", cfg)
			if err != nil {
				return nil, err
			}
			tr, err := mpitrace.Parse(r)
			if err != nil {
				return nil, err
			}
			return Generate(tr, opt)
		},
		NewConfig: func() any { return new(Options) },
	})
}
