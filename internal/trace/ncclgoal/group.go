package ncclgoal

import (
	"fmt"

	"atlahs/internal/goal"
)

// GroupGPUs is stage 4 of the pipeline: it folds a GPU-level schedule
// (one rank per GPU) into a node-level schedule (one rank per node,
// gpusPerNode GPUs each). Every GPU's compute streams move to a private
// stream range of its node; sends and receives between GPUs of the same
// node are replaced by calc vertices costed at the intra-node interconnect
// (paper Fig 5, "replace intra-node sends and receives with calc
// vertices"), with the receive side depending on the send side so
// cross-GPU synchronisation is preserved. Cross-node messages keep their
// semantics, with tags densified per (srcGPU, dstGPU, tag) so distinct GPU
// pairs sharing a node pair can never cross-match.
func GroupGPUs(gpuSched *goal.Schedule, gpusPerNode int, intraNsPerByte float64) (*goal.Schedule, error) {
	if gpusPerNode <= 0 {
		return nil, fmt.Errorf("ncclgoal: non-positive gpusPerNode")
	}
	if intraNsPerByte <= 0 {
		intraNsPerByte = 1.0 / 150.0
	}
	ngpus := gpuSched.NumRanks()
	nnodes := (ngpus + gpusPerNode - 1) / gpusPerNode
	nodeOf := func(g int) int { return g / gpusPerNode }

	// stream range per GPU within its node
	streamsPerGPU := int32(1)
	for g := range gpuSched.Ranks {
		for i := range gpuSched.Ranks[g].Ops {
			if c := gpuSched.Ranks[g].Ops[i].CPU + 1; c > streamsPerGPU {
				streamsPerGPU = c
			}
		}
	}

	b := goal.NewBuilder(nnodes)
	opMap := make([][]goal.OpID, ngpus)

	type pairKey struct {
		src, dst int
		tag      int32
	}
	denseTags := map[pairKey]int32{}
	nextTag := int32(0)
	tagFor := func(k pairKey) int32 {
		if t, ok := denseTags[k]; ok {
			return t
		}
		denseTags[k] = nextTag
		nextTag++
		return denseTags[k]
	}
	intraSends := map[pairKey][]goal.OpID{}
	intraRecvs := map[pairKey][]goal.OpID{}
	intraRecvNode := map[pairKey]int{}

	// pass 1: create ops
	for g := 0; g < ngpus; g++ {
		node := nodeOf(g)
		local := int32(g % gpusPerNode)
		rb := b.Rank(node)
		rp := &gpuSched.Ranks[g]
		opMap[g] = make([]goal.OpID, len(rp.Ops))
		for i := range rp.Ops {
			op := &rp.Ops[i]
			cpu := local*streamsPerGPU + op.CPU
			switch op.Kind {
			case goal.KindCalc:
				opMap[g][i] = rb.CalcOn(op.Size, cpu)
			case goal.KindSend:
				h := int(op.Peer)
				key := pairKey{g, h, op.Tag}
				if nodeOf(h) == node {
					id := rb.CalcOn(int64(float64(op.Size)*intraNsPerByte), cpu)
					opMap[g][i] = id
					intraSends[key] = append(intraSends[key], id)
				} else {
					opMap[g][i] = rb.SendOn(op.Size, nodeOf(h), tagFor(key), cpu)
				}
			case goal.KindRecv:
				h := int(op.Peer)
				key := pairKey{h, g, op.Tag}
				if nodeOf(h) == node {
					id := rb.CalcOn(0, cpu)
					opMap[g][i] = id
					intraRecvs[key] = append(intraRecvs[key], id)
					intraRecvNode[key] = node
				} else {
					tag := op.Tag
					if tag != goal.AnyTag {
						tag = tagFor(key)
					}
					opMap[g][i] = rb.RecvOn(op.Size, nodeOf(h), tag, cpu)
				}
			}
		}
	}

	// pass 2: copy dependencies (always GPU-local, hence node-local)
	for g := 0; g < ngpus; g++ {
		node := nodeOf(g)
		rb := b.Rank(node)
		rp := &gpuSched.Ranks[g]
		for i := range rp.Ops {
			for _, d := range rp.Requires[i] {
				rb.Requires(opMap[g][i], opMap[g][d])
			}
			for _, d := range rp.IRequires[i] {
				rb.IRequires(opMap[g][i], opMap[g][d])
			}
		}
	}

	// pass 3: pair intra-node transfers — the k-th receive depends on the
	// k-th send of its (srcGPU, dstGPU, tag) stream
	for key, recvs := range intraRecvs {
		sends := intraSends[key]
		if len(sends) != len(recvs) {
			return nil, fmt.Errorf("ncclgoal: intra-node pair %d->%d tag %d has %d sends but %d recvs",
				key.src, key.dst, key.tag, len(sends), len(recvs))
		}
		rb := b.Rank(intraRecvNode[key])
		for k := range recvs {
			rb.Requires(recvs[k], sends[k])
		}
	}
	for key, sends := range intraSends {
		if len(intraRecvs[key]) != len(sends) {
			return nil, fmt.Errorf("ncclgoal: intra-node pair %d->%d tag %d has %d sends but %d recvs",
				key.src, key.dst, key.tag, len(sends), len(intraRecvs[key]))
		}
	}

	sch := b.Build()
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	return sch, nil
}
