package ncclgoal

import (
	"bytes"
	"io"

	"atlahs/internal/goal"
	"atlahs/internal/trace/frontend"
	"atlahs/internal/trace/nsys"
)

func init() {
	frontend.Register(frontend.Definition{
		Name:       "nsys",
		Extensions: []string{".nsys"},
		Sniff: func(prefix []byte) bool {
			return bytes.HasPrefix(prefix, []byte(`{"format":"atlahs-nsys-v1"`))
		},
		Convert: func(r io.Reader, cfg any) (*goal.Schedule, error) {
			c, err := frontend.ConfigAs[Config]("nsys", cfg)
			if err != nil {
				return nil, err
			}
			rep, err := nsys.Parse(r)
			if err != nil {
				return nil, err
			}
			return Generate(rep, c)
		},
		NewConfig: func() any { return new(Config) },
	})
}
