// Package ncclgoal implements the four-stage GOAL generation pipeline for
// AI applications (paper §3.1.2 and Fig 5):
//
//	Stage 1 — extract per-GPU, per-CUDA-stream activity from the nsys-like
//	          report (sorted kernel and NCCL records).
//	Stage 2 — build per-stream op chains, inferring computation from the
//	          timestamps between NCCL kernels, and connect streams through
//	          zero-cost dummy vertices so multi-stream concurrency is
//	          preserved; each CUDA stream maps to its own GOAL compute
//	          stream.
//	Stage 3 — decompose every NCCL operation into sends/recvs/calcs using
//	          the channel-, protocol- and buffer-aware algorithms in
//	          internal/collective (ring broadcast chunking per Fig 4).
//	Stage 4 — group GPU DAGs into per-node DAGs (configurable GPUs per
//	          node for "what-if" restructuring), replacing intra-node
//	          sends/receives with calc vertices costed at the intra-node
//	          interconnect bandwidth.
package ncclgoal

import (
	"fmt"
	"sort"

	"atlahs/internal/collective"
	"atlahs/internal/goal"
	"atlahs/internal/trace/nsys"
)

// Config parameterises the pipeline.
type Config struct {
	// GPUsPerNode controls stage 4 grouping (paper: traces from an 8-GPU
	// 2-node setup can be restructured to 4 nodes of 2 GPUs).
	GPUsPerNode int
	// IntraNsPerByte is the per-byte cost of intra-node GPU-GPU transfers
	// (default: 150 GB/s NVLink as on Alps GH200 => 1/150 ns/B).
	IntraNsPerByte float64
	// Channels, Protocol, ChunkBytes mirror NCCL_MAX_NCHANNELS, NCCL_PROTO
	// and the buffer size driving collective decomposition.
	Channels   int
	Protocol   collective.Protocol
	ChunkBytes int64
}

func (c Config) withDefaults(ngpus int) Config {
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.GPUsPerNode > ngpus {
		c.GPUsPerNode = ngpus
	}
	if c.IntraNsPerByte <= 0 {
		c.IntraNsPerByte = 1.0 / 150.0
	}
	return c
}

var collToKind = map[string]collective.Kind{
	nsys.CollAllReduce:     collective.Allreduce,
	nsys.CollBroadcast:     collective.Bcast,
	nsys.CollAllGather:     collective.Allgather,
	nsys.CollReduceScatter: collective.ReduceScatter,
	nsys.CollAllToAll:      collective.Alltoall,
}

const (
	p2pTagBase  = 1 << 20
	collTagBase = 1 << 24
)

// Generate runs the full pipeline: nsys report -> node-level GOAL schedule.
func Generate(rep *nsys.Report, cfg Config) (*goal.Schedule, error) {
	gpuSched, err := BuildGPUSchedule(rep, cfg)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(rep.NGPUs)
	return GroupGPUs(gpuSched, cfg.GPUsPerNode, cfg.IntraNsPerByte)
}

// pendingOp is an NCCL record awaiting stage-3 decomposition, bracketed by
// its entry and exit dummies in the owning stream chain.
type pendingOp struct {
	rec   nsys.Record
	entry goal.OpID
	exit  goal.OpID
}

// BuildGPUSchedule runs stages 1-3, producing a GPU-level schedule (one
// GOAL rank per GPU; CUDA streams become GOAL compute streams).
func BuildGPUSchedule(rep *nsys.Report, cfg Config) (*goal.Schedule, error) {
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(rep.NGPUs)
	b := goal.NewBuilder(rep.NGPUs)

	// global t0 preserves cross-GPU launch skew as leading computation
	t0 := int64(0)
	if len(rep.Records) > 0 {
		t0 = rep.Records[0].StartNs
		for i := range rep.Records {
			if s := rep.Records[i].StartNs; s < t0 {
				t0 = s
			}
		}
	}

	// the dedicated NCCL stream: decomposed communication ops occupy their
	// own compute stream per GPU (NCCL runs on its own SM, paper Fig 4),
	// so comm never falsely serialises with compute kernels. With
	// ChannelStreams each channel gets ncclCPU + channel.
	maxStreams := 0
	for gpu := 0; gpu < rep.NGPUs; gpu++ {
		if n := len(rep.Streams(gpu)); n > maxStreams {
			maxStreams = n
		}
	}
	ncclCPU := int32(maxStreams)

	// stages 1+2: per-stream chains with dummies around NCCL records
	perComm := map[string][]pendingOp{} // appended in (gpu, stream, time) order
	for gpu := 0; gpu < rep.NGPUs; gpu++ {
		rb := b.Rank(gpu)
		for li, stream := range rep.Streams(gpu) {
			cpu := int32(li)
			recs := rep.StreamRecords(gpu, stream)
			var head goal.OpID = -1
			lastEnd := t0
			chain := func(id goal.OpID) {
				if head >= 0 {
					rb.Requires(id, head)
				}
				head = id
			}
			for _, rec := range recs {
				if gap := rec.StartNs - lastEnd; gap > 0 {
					chain(rb.CalcOn(gap, cpu))
				}
				switch rec.Kind {
				case nsys.KindKernel:
					// compute kernels are calc vertices with their measured
					// duration
					chain(rb.CalcOn(rec.EndNs-rec.StartNs, cpu))
					lastEnd = rec.EndNs
				case nsys.KindNCCL:
					// bracket with dummies; the communication itself is
					// re-simulated, so its traced duration is discarded
					entry := rb.CalcOn(0, cpu)
					chain(entry)
					exit := rb.CalcOn(0, cpu)
					rb.Requires(exit, entry)
					head = exit
					perComm[rec.Comm] = append(perComm[rec.Comm], pendingOp{rec: rec, entry: entry, exit: exit})
					lastEnd = rec.EndNs
				}
			}
		}
	}

	// stage 3: decompose per communicator
	commNames := make([]string, 0, len(perComm))
	for name := range perComm {
		commNames = append(commNames, name)
	}
	sort.Strings(commNames)
	collInstance := 0
	for ci, name := range commNames {
		members := rep.Comms[name]
		if err := decomposeComm(b, name, int32(ci), members, perComm[name], cfg, ncclCPU, &collInstance); err != nil {
			return nil, err
		}
	}

	sch := b.Build()
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	return sch, nil
}

// decomposeComm replays one communicator's NCCL operations: collectives in
// lockstep across members, P2P sends/recvs paired FIFO. All generated
// communication ops run on the dedicated NCCL stream(s) starting at
// ncclCPU.
func decomposeComm(b *goal.Builder, name string, commIdx int32, members []int, ops []pendingOp, cfg Config, ncclCPU int32, collInstance *int) error {
	pos := map[int]int{} // gpu -> communicator-relative rank
	for i, g := range members {
		pos[g] = i
	}
	// per-member queues of pending ops, in launch order (ops slice is
	// already ordered per gpu because streams were walked in order; for
	// multi-stream comms order by record start time)
	perMember := make([][]pendingOp, len(members))
	for _, p := range ops {
		i, ok := pos[p.rec.GPU]
		if !ok {
			return fmt.Errorf("ncclgoal: comm %q used by non-member GPU %d", name, p.rec.GPU)
		}
		perMember[i] = append(perMember[i], p)
	}
	for i := range perMember {
		sort.SliceStable(perMember[i], func(a, c int) bool {
			return perMember[i][a].rec.StartNs < perMember[i][c].rec.StartNs
		})
	}
	idx := make([]int, len(members))
	p2pTag := p2pTagBase + commIdx
	for {
		// find the next collective for every member, emitting P2P ops that
		// precede it
		for i := range members {
			for idx[i] < len(perMember[i]) {
				p := perMember[i][idx[i]]
				if p.rec.Coll != nsys.CollSend && p.rec.Coll != nsys.CollRecv {
					break
				}
				rb := b.Rank(p.rec.GPU)
				peer := members[p.rec.Peer]
				cpu := ncclCPU
				var op goal.OpID
				if p.rec.Coll == nsys.CollSend {
					op = rb.SendOn(collective.WireBytes(cfg.Protocol, p.rec.Bytes), peer, p2pTag, cpu)
				} else {
					op = rb.RecvOn(collective.WireBytes(cfg.Protocol, p.rec.Bytes), peer, p2pTag, cpu)
				}
				rb.Requires(op, p.entry)
				rb.Requires(p.exit, op)
				idx[i]++
			}
		}
		// all members must now agree on the next collective (or be done)
		var ref *pendingOp
		anyPending := false
		for i := range members {
			if idx[i] < len(perMember[i]) {
				anyPending = true
				if ref == nil {
					ref = &perMember[i][idx[i]]
				}
			}
		}
		if !anyPending {
			break
		}
		for i := range members {
			if idx[i] >= len(perMember[i]) {
				return fmt.Errorf("ncclgoal: comm %q: GPU %d missing collective #%d (%s)",
					name, members[i], idx[i], ref.rec.Coll)
			}
			p := perMember[i][idx[i]]
			if p.rec.Coll != ref.rec.Coll {
				return fmt.Errorf("ncclgoal: comm %q: GPU %d launches %s while GPU %d launches %s",
					name, p.rec.GPU, p.rec.Coll, ref.rec.GPU, ref.rec.Coll)
			}
		}
		kind, ok := collToKind[ref.rec.Coll]
		if !ok {
			return fmt.Errorf("ncclgoal: unsupported collective %q", ref.rec.Coll)
		}
		entries := make([]goal.OpID, len(members))
		for i := range members {
			entries[i] = perMember[i][idx[i]].entry
		}
		algo := collective.Auto
		if kind == collective.Bcast {
			algo = collective.Ring // NCCL broadcasts are ring-pipelined (Fig 4)
		}
		exits, err := collective.Decompose(b, kind, algo, members, ref.rec.Root, ref.rec.Bytes, collective.Options{
			Channels:       cfg.Channels,
			Protocol:       cfg.Protocol,
			ChunkBytes:     cfg.ChunkBytes,
			CPU:            ncclCPU,
			ChannelStreams: true,
			TagBase:        int32(collTagBase + *collInstance*collective.TagSpan),
		}, entries)
		if err != nil {
			return fmt.Errorf("ncclgoal: comm %q: %w", name, err)
		}
		*collInstance++
		for i := range members {
			rb := b.Rank(members[i])
			rb.Requires(perMember[i][idx[i]].exit, exits[i])
			idx[i]++
		}
	}
	return nil
}
