package ncclgoal

import (
	"strings"
	"testing"
	"testing/quick"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/nsys"
	"atlahs/internal/xrand"
)

// fourGPUReport: 4 GPUs, each computing then allreducing on "world"; GPUs
// 0 and 2 additionally exchange a P2P message on comm "pp".
func fourGPUReport() *nsys.Report {
	rep := &nsys.Report{
		NGPUs: 4,
		Comms: map[string][]int{"world": {0, 1, 2, 3}, "pp": {0, 2}},
	}
	for g := 0; g < 4; g++ {
		rep.Records = append(rep.Records,
			nsys.Record{GPU: g, Stream: 7, Kind: nsys.KindKernel, StartNs: 0, EndNs: 5000},
			nsys.Record{GPU: g, Stream: 7, Kind: nsys.KindNCCL, Coll: nsys.CollAllReduce,
				Bytes: 1 << 20, Comm: "world", StartNs: 5000, EndNs: 9000},
			nsys.Record{GPU: g, Stream: 7, Kind: nsys.KindKernel, StartNs: 9500, EndNs: 12000},
		)
	}
	rep.Records = append(rep.Records,
		nsys.Record{GPU: 0, Stream: 9, Kind: nsys.KindNCCL, Coll: nsys.CollSend, Bytes: 65536, Comm: "pp", Peer: 1, StartNs: 100, EndNs: 200},
		nsys.Record{GPU: 2, Stream: 9, Kind: nsys.KindNCCL, Coll: nsys.CollRecv, Bytes: 65536, Comm: "pp", Peer: 0, StartNs: 100, EndNs: 300},
	)
	return rep
}

func TestBuildGPUSchedule(t *testing.T) {
	s, err := BuildGPUSchedule(fourGPUReport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRanks() != 4 {
		t.Fatalf("ranks=%d", s.NumRanks())
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	// ring allreduce over 4 ranks: 2*3 sends per rank = 24, plus 1 p2p pair
	if st.Sends != 25 || st.Recvs != 25 {
		t.Fatalf("sends=%d recvs=%d, want 25/25", st.Sends, st.Recvs)
	}
	// inferred compute: each GPU has two kernels (5000 + 2500 ns) plus the
	// 500 ns gap
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime < 8000*simtime.Nanosecond {
		t.Fatalf("runtime %v below compute floor", res.Runtime)
	}
}

func TestComputeCommOverlapPreserved(t *testing.T) {
	// stream 1 computes 10 ms while stream 2's huge allreduce runs: the
	// node schedule must overlap them (runtime ~ max, not sum).
	rep := &nsys.Report{NGPUs: 2, Comms: map[string][]int{"w": {0, 1}}}
	for g := 0; g < 2; g++ {
		rep.Records = append(rep.Records,
			nsys.Record{GPU: g, Stream: 1, Kind: nsys.KindKernel, StartNs: 0, EndNs: 10_000_000},
			nsys.Record{GPU: g, Stream: 2, Kind: nsys.KindNCCL, Coll: nsys.CollAllReduce,
				Bytes: 64 << 20, Comm: "w", StartNs: 0, EndNs: 1000},
		)
	}
	s, err := Generate(rep, Config{GPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// allreduce of 64 MiB at 25 GB/s moves 2*(N-1)/N*64 MiB ~ 64 MiB in
	// ~2.7 ms; compute is 10 ms. Overlapped runtime should stay close to
	// 10 ms, definitely below 12 ms.
	if res.Runtime > 12*simtime.Millisecond {
		t.Fatalf("overlap lost: runtime %v", res.Runtime)
	}
	if res.Runtime < 10*simtime.Millisecond {
		t.Fatalf("runtime %v below compute floor", res.Runtime)
	}
}

func TestGroupGPUsIntraNode(t *testing.T) {
	gpuS, err := BuildGPUSchedule(fourGPUReport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 GPUs per node: ring neighbours 0-1 and 2-3 are intra-node
	nodeS, err := GroupGPUs(gpuS, 2, 1.0/150)
	if err != nil {
		t.Fatal(err)
	}
	if nodeS.NumRanks() != 2 {
		t.Fatalf("nodes=%d", nodeS.NumRanks())
	}
	if err := nodeS.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	stGPU := gpuS.ComputeStats()
	stNode := nodeS.ComputeStats()
	if stNode.Sends >= stGPU.Sends {
		t.Fatalf("no sends became intra-node calcs: %d -> %d", stGPU.Sends, stNode.Sends)
	}
	if stNode.Sends == 0 {
		t.Fatal("cross-node sends disappeared entirely")
	}
	if _, err := sched.Run(engine.New(), nodeS, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupGPUsSingleNode(t *testing.T) {
	gpuS, err := BuildGPUSchedule(fourGPUReport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	nodeS, err := GroupGPUs(gpuS, 4, 1.0/150)
	if err != nil {
		t.Fatal(err)
	}
	if nodeS.NumRanks() != 1 {
		t.Fatalf("nodes=%d", nodeS.NumRanks())
	}
	if st := nodeS.ComputeStats(); st.Sends != 0 {
		t.Fatalf("single node still has %d sends", st.Sends)
	}
	if _, err := sched.Run(engine.New(), nodeS, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestWhatIfRegrouping(t *testing.T) {
	// paper §3.1.2 stage 4: the same GPU trace regrouped to different node
	// counts — more nodes means more inter-node traffic and a slower run.
	gpuS, err := BuildGPUSchedule(fourGPUReport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(perNode int) simtime.Duration {
		nodeS, err := GroupGPUs(gpuS, perNode, 1.0/150)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.Run(engine.New(), nodeS, backend.NewLGS(backend.AIParams()), sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	oneGPU := run(1)  // 4 nodes
	twoGPUs := run(2) // 2 nodes
	if oneGPU < twoGPUs {
		t.Fatalf("more inter-node traffic should not be faster: 1/node %v vs 2/node %v", oneGPU, twoGPUs)
	}
}

func TestMismatchedCollectiveDetected(t *testing.T) {
	rep := &nsys.Report{NGPUs: 2, Comms: map[string][]int{"w": {0, 1}}}
	rep.Records = append(rep.Records,
		nsys.Record{GPU: 0, Stream: 1, Kind: nsys.KindNCCL, Coll: nsys.CollAllReduce, Bytes: 64, Comm: "w", StartNs: 0, EndNs: 1},
		nsys.Record{GPU: 1, Stream: 1, Kind: nsys.KindNCCL, Coll: nsys.CollBroadcast, Bytes: 64, Comm: "w", StartNs: 0, EndNs: 1},
	)
	if _, err := BuildGPUSchedule(rep, Config{}); err == nil || !strings.Contains(err.Error(), "launches") {
		t.Fatalf("collective mismatch not detected: %v", err)
	}
	rep2 := &nsys.Report{NGPUs: 2, Comms: map[string][]int{"w": {0, 1}}}
	rep2.Records = append(rep2.Records,
		nsys.Record{GPU: 0, Stream: 1, Kind: nsys.KindNCCL, Coll: nsys.CollAllReduce, Bytes: 64, Comm: "w", StartNs: 0, EndNs: 1},
	)
	if _, err := BuildGPUSchedule(rep2, Config{}); err == nil || !strings.Contains(err.Error(), "missing collective") {
		t.Fatalf("missing collective not detected: %v", err)
	}
}

func TestChannelsAndProtocol(t *testing.T) {
	rep := fourGPUReport()
	s1, err := Generate(rep, Config{GPUsPerNode: 1, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(rep, Config{GPUsPerNode: 1, Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ComputeStats().Sends <= s1.ComputeStats().Sends {
		t.Fatal("more channels should emit more messages")
	}
	sLL, err := Generate(rep, Config{GPUsPerNode: 1, Protocol: 1 /* LL */})
	if err != nil {
		t.Fatal(err)
	}
	if sLL.ComputeStats().SendBytes <= s1.ComputeStats().SendBytes {
		t.Fatal("LL should double wire bytes")
	}
}

// Property: random multi-stream, multi-comm reports produce valid,
// matched, runnable node schedules at any grouping.
func TestPipelineProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		ngpus := []int{2, 4, 8}[rng.Intn(3)]
		rep := &nsys.Report{NGPUs: ngpus, Comms: map[string][]int{}}
		world := make([]int, ngpus)
		for i := range world {
			world[i] = i
		}
		rep.Comms["world"] = world
		colls := []string{nsys.CollAllReduce, nsys.CollAllGather, nsys.CollReduceScatter, nsys.CollAllToAll, nsys.CollBroadcast}
		nops := rng.Intn(4) + 1
		for g := 0; g < ngpus; g++ {
			ts := int64(rng.Intn(1000))
			for k := 0; k < nops; k++ {
				// identical collective sequence on every gpu, jittered times
				kern := ts + rng.Int63n(2000)
				rep.Records = append(rep.Records, nsys.Record{
					GPU: g, Stream: 3, Kind: nsys.KindKernel, StartNs: ts, EndNs: kern,
				})
				collRng := xrand.New(seed ^ uint64(k)) // same per k across gpus
				coll := colls[collRng.Intn(len(colls))]
				bytes := collRng.Int63n(1<<20) + 1
				end := kern + rng.Int63n(2000) + 1
				rep.Records = append(rep.Records, nsys.Record{
					GPU: g, Stream: 3, Kind: nsys.KindNCCL, Coll: coll, Bytes: bytes,
					Comm: "world", StartNs: kern, EndNs: end,
				})
				ts = end
			}
		}
		if rep.Validate() != nil {
			return false
		}
		for _, perNode := range []int{1, 2, ngpus} {
			s, err := Generate(rep, Config{GPUsPerNode: perNode, Channels: rng.Intn(2) + 1})
			if err != nil {
				return false
			}
			if s.CheckMatched() != nil {
				return false
			}
			if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupGPUsErrors(t *testing.T) {
	b := goal.NewBuilder(2)
	b.Rank(0).Send(64, 1, 0)
	b.Rank(1).Recv(64, 0, 0)
	s := b.MustBuild()
	if _, err := GroupGPUs(s, 0, 1); err == nil {
		t.Fatal("zero gpusPerNode accepted")
	}
	// unpaired intra-node transfer: send without recv
	b2 := goal.NewBuilder(2)
	b2.Rank(0).Send(64, 1, 0)
	b2.Rank(1).Recv(64, 0, 0)
	b2.Rank(0).Send(64, 1, 0) // second send, no matching recv
	if _, err := GroupGPUs(b2.Build(), 2, 1); err == nil {
		t.Fatal("unpaired intra-node transfer accepted")
	}
}
