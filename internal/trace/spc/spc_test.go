package spc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{ASU: 0, LBA: 100, Bytes: 512, Write: true, Time: 0},
		{ASU: 3, LBA: 2048, Bytes: 4096, Write: false, Time: 0.000123},
		{ASU: 1, LBA: 7, Bytes: 1024, Write: true, Time: 1.5},
	}}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Ops, got.Ops) {
		t.Fatalf("round trip mismatch: %+v vs %+v", tr.Ops, got.Ops)
	}
}

func TestParseRealWorldFormat(t *testing.T) {
	// format as published by the UMass repository (with comments/blanks)
	src := `
# Financial1 excerpt
0,303567,3584,w,0.000000
1,55590,3072,r,0.010518
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 2 || !tr.Ops[0].Write || tr.Ops[1].Write {
		t.Fatalf("parsed %+v", tr.Ops)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"1,2,3,w",                // missing field
		"x,2,3,w,0.5",            // bad ASU
		"1,x,3,w,0.5",            // bad LBA
		"1,2,x,w,0.5",            // bad size
		"1,2,3,q,0.5",            // bad opcode
		"1,2,3,w,zero",           // bad timestamp
		"1,2,0,w,0.5",            // zero size fails validation
		"1,2,3,w,1\n1,2,3,w,0.5", // time goes backwards
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
