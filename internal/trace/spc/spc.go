// Package spc implements the SPC block-I/O trace format (Storage
// Performance Council; used by the UMass Trace Repository collection the
// paper's storage case study draws from, §3.1.3 and Fig 11). The seeded
// synthetic generator matching the published characteristics of the
// "Financial" OLTP traces lives in internal/workload/oltp.
//
// An SPC trace is a CSV with one I/O command per record:
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// ASU is the application storage unit, LBA the logical block address,
// Size the transfer size in bytes, Opcode R/W, and Timestamp fractional
// seconds since trace start.
package spc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Op is one traced block-I/O command.
type Op struct {
	ASU   int
	LBA   int64
	Bytes int64
	Write bool
	Time  float64 // seconds since trace start
}

// Trace is an ordered sequence of I/O commands.
type Trace struct {
	Ops []Op
}

// Validate checks ordering and field sanity.
func (t *Trace) Validate() error {
	last := -1.0
	for i, op := range t.Ops {
		if op.Time < last {
			return fmt.Errorf("spc: op %d: timestamp %.6f before previous %.6f", i, op.Time, last)
		}
		last = op.Time
		if op.Bytes <= 0 {
			return fmt.Errorf("spc: op %d: non-positive size %d", i, op.Bytes)
		}
		if op.LBA < 0 || op.ASU < 0 {
			return fmt.Errorf("spc: op %d: negative ASU/LBA", i)
		}
	}
	return nil
}

// WriteTo serialises the trace as SPC CSV.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, op := range t.Ops {
		opc := "R"
		if op.Write {
			opc = "W"
		}
		c, err := fmt.Fprintf(bw, "%d,%d,%d,%s,%.6f\n", op.ASU, op.LBA, op.Bytes, opc, op.Time)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Parse reads an SPC CSV trace. Opcode matching is case-insensitive;
// blank lines and lines starting with '#' are skipped.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 5 {
			return nil, fmt.Errorf("spc: line %d: want 5 fields, got %d", lineno, len(parts))
		}
		asu, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("spc: line %d: bad ASU %q", lineno, parts[0])
		}
		lba, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("spc: line %d: bad LBA %q", lineno, parts[1])
		}
		size, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("spc: line %d: bad size %q", lineno, parts[2])
		}
		var write bool
		switch strings.ToUpper(strings.TrimSpace(parts[3])) {
		case "W":
			write = true
		case "R":
		default:
			return nil, fmt.Errorf("spc: line %d: bad opcode %q", lineno, parts[3])
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(parts[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("spc: line %d: bad timestamp %q", lineno, parts[4])
		}
		t.Ops = append(t.Ops, Op{ASU: asu, LBA: lba, Bytes: size, Write: write, Time: ts})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Stats summarises a trace for reporting.
type Stats struct {
	Ops        int
	Writes     int
	Bytes      int64
	MeanBytes  float64
	Duration   float64 // seconds
	WriteRatio float64
}

// ComputeStats tallies trace statistics.
func (t *Trace) ComputeStats() Stats {
	st := Stats{Ops: len(t.Ops)}
	for _, op := range t.Ops {
		if op.Write {
			st.Writes++
		}
		st.Bytes += op.Bytes
	}
	if len(t.Ops) > 0 {
		st.MeanBytes = float64(st.Bytes) / float64(len(t.Ops))
		st.Duration = t.Ops[len(t.Ops)-1].Time - t.Ops[0].Time
		st.WriteRatio = float64(st.Writes) / float64(len(t.Ops))
	}
	return st
}
