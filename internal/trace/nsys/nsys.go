// Package nsys defines the Nsight-Systems-like GPU trace format consumed
// by the AI arm of the toolchain (paper §3.1.2). A report captures, per
// GPU and per CUDA stream, the kernels and NCCL operations executed with
// their timestamps; NCCL records carry the communicator annotations the
// paper adds to NCCL via NVTX (communicator id, payload, root/peer).
//
// The on-disk form is JSON lines: a header object followed by one record
// per line. Real nsys reports are SQLite databases; the JSON-lines
// rendering keeps the same information content while staying dependency-
// free, and — like the real reports in paper Table 1 — is much larger
// than the GOAL files generated from it.
package nsys

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Record kinds.
const (
	KindKernel = "kernel"
	KindNCCL   = "nccl"
)

// NCCL collective names used in Coll.
const (
	CollAllReduce     = "allreduce"
	CollBroadcast     = "broadcast"
	CollAllGather     = "allgather"
	CollReduceScatter = "reducescatter"
	CollAllToAll      = "alltoall"
	CollSend          = "send"
	CollRecv          = "recv"
)

// Record is one traced GPU activity.
type Record struct {
	GPU     int    `json:"gpu"`
	Stream  int    `json:"stream"`
	Kind    string `json:"kind"`
	Name    string `json:"name,omitempty"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`

	// NCCL fields (present when Kind == KindNCCL), captured through the
	// NVTX annotations described in the paper.
	Coll  string `json:"coll,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	Comm  string `json:"comm,omitempty"`
	Root  int    `json:"root,omitempty"` // communicator-relative root
	Peer  int    `json:"peer,omitempty"` // communicator-relative peer (send/recv)
}

// Report is a full multi-GPU trace plus communicator membership.
type Report struct {
	NGPUs int              `json:"ngpus"`
	Comms map[string][]int `json:"comms"` // communicator -> GPU ids in rank order
	// Records from all GPUs; order within a (gpu, stream) follows launch
	// order but the file may interleave GPUs arbitrarily.
	Records []Record `json:"-"`
}

type header struct {
	Format string           `json:"format"`
	NGPUs  int              `json:"ngpus"`
	Comms  map[string][]int `json:"comms"`
}

const formatName = "atlahs-nsys-v1"

// Validate checks structural invariants.
func (r *Report) Validate() error {
	if r.NGPUs <= 0 {
		return fmt.Errorf("nsys: non-positive GPU count %d", r.NGPUs)
	}
	for name, members := range r.Comms {
		seen := map[int]bool{}
		for _, g := range members {
			if g < 0 || g >= r.NGPUs {
				return fmt.Errorf("nsys: comm %q member %d out of range", name, g)
			}
			if seen[g] {
				return fmt.Errorf("nsys: comm %q repeats GPU %d", name, g)
			}
			seen[g] = true
		}
	}
	for i := range r.Records {
		rec := &r.Records[i]
		if rec.GPU < 0 || rec.GPU >= r.NGPUs {
			return fmt.Errorf("nsys: record %d: GPU %d out of range", i, rec.GPU)
		}
		if rec.EndNs < rec.StartNs {
			return fmt.Errorf("nsys: record %d: end before start", i)
		}
		switch rec.Kind {
		case KindKernel:
		case KindNCCL:
			comm, ok := r.Comms[rec.Comm]
			if !ok {
				return fmt.Errorf("nsys: record %d: unknown communicator %q", i, rec.Comm)
			}
			found := false
			for _, g := range comm {
				if g == rec.GPU {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("nsys: record %d: GPU %d not in communicator %q", i, rec.GPU, rec.Comm)
			}
			switch rec.Coll {
			case CollAllReduce, CollBroadcast, CollAllGather, CollReduceScatter, CollAllToAll:
			case CollSend, CollRecv:
				if rec.Peer < 0 || rec.Peer >= len(comm) {
					return fmt.Errorf("nsys: record %d: peer %d out of communicator range", i, rec.Peer)
				}
			default:
				return fmt.Errorf("nsys: record %d: unknown collective %q", i, rec.Coll)
			}
			if rec.Bytes < 0 {
				return fmt.Errorf("nsys: record %d: negative bytes", i)
			}
		default:
			return fmt.Errorf("nsys: record %d: unknown kind %q", i, rec.Kind)
		}
	}
	return nil
}

// StreamRecords returns the records of one (gpu, stream) sorted by start
// time (stage 1 of the GOAL pipeline).
func (r *Report) StreamRecords(gpu, stream int) []Record {
	var out []Record
	for i := range r.Records {
		if r.Records[i].GPU == gpu && r.Records[i].Stream == stream {
			out = append(out, r.Records[i])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// Streams returns the sorted stream ids present for a GPU.
func (r *Report) Streams(gpu int) []int {
	set := map[int]bool{}
	for i := range r.Records {
		if r.Records[i].GPU == gpu {
			set[r.Records[i].Stream] = true
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// WriteTo serialises the report as JSON lines.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	enc := json.NewEncoder(bw)
	hdrBytes, err := json.Marshal(header{Format: formatName, NGPUs: r.NGPUs, Comms: r.Comms})
	if err != nil {
		return 0, err
	}
	c, err := bw.Write(append(hdrBytes, '\n'))
	n += int64(c)
	if err != nil {
		return n, err
	}
	for i := range r.Records {
		before := bw.Buffered()
		if err := enc.Encode(&r.Records[i]); err != nil {
			return n, err
		}
		n += int64(bw.Buffered() - before)
	}
	return n, bw.Flush()
}

// Parse reads a JSON-lines report.
func Parse(rd io.Reader) (*Report, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	dec := json.NewDecoder(br)
	var hdr header
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("nsys: reading header: %w", err)
	}
	if hdr.Format != formatName {
		return nil, fmt.Errorf("nsys: unknown format %q", hdr.Format)
	}
	rep := &Report{NGPUs: hdr.NGPUs, Comms: hdr.Comms}
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("nsys: reading record %d: %w", len(rep.Records), err)
		}
		rep.Records = append(rep.Records, rec)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}
