package nsys

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		NGPUs: 4,
		Comms: map[string][]int{
			"world": {0, 1, 2, 3},
			"pp":    {0, 2},
		},
		Records: []Record{
			{GPU: 0, Stream: 7, Kind: KindKernel, Name: "gemm", StartNs: 0, EndNs: 1000},
			{GPU: 0, Stream: 7, Kind: KindNCCL, Coll: CollAllReduce, Bytes: 1 << 20, Comm: "world", StartNs: 1000, EndNs: 3000},
			{GPU: 1, Stream: 7, Kind: KindNCCL, Coll: CollAllReduce, Bytes: 1 << 20, Comm: "world", StartNs: 900, EndNs: 3100},
			{GPU: 2, Stream: 7, Kind: KindNCCL, Coll: CollAllReduce, Bytes: 1 << 20, Comm: "world", StartNs: 950, EndNs: 3000},
			{GPU: 3, Stream: 7, Kind: KindNCCL, Coll: CollAllReduce, Bytes: 1 << 20, Comm: "world", StartNs: 1100, EndNs: 3050},
			{GPU: 0, Stream: 9, Kind: KindNCCL, Coll: CollSend, Bytes: 4096, Comm: "pp", Peer: 1, StartNs: 500, EndNs: 600},
			{GPU: 2, Stream: 9, Kind: KindNCCL, Coll: CollRecv, Bytes: 4096, Comm: "pp", Peer: 0, StartNs: 500, EndNs: 700},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleReport().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	r := sampleReport()
	r.Records[0].GPU = 99
	if r.Validate() == nil {
		t.Fatal("bad GPU accepted")
	}
	r = sampleReport()
	r.Records[1].Comm = "nosuch"
	if r.Validate() == nil {
		t.Fatal("unknown comm accepted")
	}
	r = sampleReport()
	r.Records[1].Coll = "frobnicate"
	if r.Validate() == nil {
		t.Fatal("unknown collective accepted")
	}
	r = sampleReport()
	r.Records[5].Peer = 9
	if r.Validate() == nil {
		t.Fatal("bad peer accepted")
	}
	r = sampleReport()
	r.Records[0].EndNs = -5
	if r.Validate() == nil {
		t.Fatal("end<start accepted")
	}
	r = sampleReport()
	r.Comms["bad"] = []int{0, 0}
	if r.Validate() == nil {
		t.Fatal("duplicate comm member accepted")
	}
	r = sampleReport()
	// nccl record on a GPU outside its communicator
	r.Records[5].GPU = 1
	if r.Validate() == nil {
		t.Fatal("non-member nccl record accepted")
	}
}

func TestStreamHelpers(t *testing.T) {
	r := sampleReport()
	if got := r.Streams(0); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("Streams(0)=%v", got)
	}
	recs := r.StreamRecords(0, 7)
	if len(recs) != 2 || recs[0].Kind != KindKernel || recs[1].Coll != CollAllReduce {
		t.Fatalf("StreamRecords(0,7)=%+v", recs)
	}
	// sorted by start
	if recs[0].StartNs > recs[1].StartNs {
		t.Fatal("not sorted")
	}
}

func TestRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NGPUs != r.NGPUs || !reflect.DeepEqual(got.Comms, r.Comms) || !reflect.DeepEqual(got.Records, r.Records) {
		t.Fatal("round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Parse(strings.NewReader(`{"format":"other","ngpus":1}`)); err == nil {
		t.Fatal("wrong format accepted")
	}
	if _, err := Parse(strings.NewReader(`{"format":"atlahs-nsys-v1","ngpus":1}` + "\nnot json")); err == nil {
		t.Fatal("garbage record accepted")
	}
}
