package sched

import (
	"strings"
	"testing"

	"atlahs/internal/core"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/simtime"
)

// stubBackend is a minimal deterministic core.Backend: every operation
// takes a fixed latency and completes in issue order, and the backend logs
// each issue as "<kind> r<rank>.<op>" so tests can assert dispatch order.
// Sends and recvs complete unconditionally (no matching), which keeps the
// stub focused on the scheduler's dependency bookkeeping.
type stubBackend struct {
	lat    simtime.Duration
	eng    engine.Sim
	over   core.CompletionFunc
	issued []string
}

func newStub(lat simtime.Duration) *stubBackend { return &stubBackend{lat: lat} }

func (b *stubBackend) Name() string { return "stub" }

func (b *stubBackend) Setup(nranks int, eng engine.Sim, over core.CompletionFunc) error {
	b.eng = eng
	b.over = over
	return nil
}

func (b *stubBackend) complete(kind string, h core.Handle, d simtime.Duration) {
	b.issued = append(b.issued, kind)
	ln := b.eng.Lane(h.Rank())
	end := ln.Now().Add(d)
	ln.Schedule(end, func() { b.over(h, end) })
}

func (b *stubBackend) Send(ev core.SendEvent) {
	b.complete(opName("send", ev.Handle), ev.Handle, b.lat)
}
func (b *stubBackend) Recv(ev core.RecvEvent) {
	b.complete(opName("recv", ev.Handle), ev.Handle, b.lat)
}
func (b *stubBackend) Calc(ev core.CalcEvent) {
	b.complete(opName("calc", ev.Handle), ev.Handle, ev.Duration)
}

func opName(kind string, h core.Handle) string {
	return kind + " r" + string(rune('0'+h.Rank())) + "." + string(rune('0'+h.Op()))
}

// TestRunDependencyOrder: a diamond DAG on one rank must dispatch in
// topological order, with the join op issued only after both branches
// complete.
func TestRunDependencyOrder(t *testing.T) {
	b := goal.NewBuilder(1)
	r := b.Rank(0)
	root := r.Calc(100) // op 0
	left := r.Calc(10)  // op 1
	right := r.Calc(20) // op 2
	join := r.Calc(5)   // op 3
	r.Requires(left, root)
	r.Requires(right, root)
	r.Requires(join, left, right)
	s := b.MustBuild()

	be := newStub(0)
	res, err := Run(engine.New(), s, be, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"calc r0.0", "calc r0.1", "calc r0.2", "calc r0.3"}
	if got := strings.Join(be.issued, ", "); got != strings.Join(want, ", ") {
		t.Fatalf("dispatch order %q, want %q", got, strings.Join(want, ", "))
	}
	if res.Ops != 4 {
		t.Fatalf("Ops = %d, want 4", res.Ops)
	}
	// root 100ns, branches overlap (stub has no streams) ending at 120ns,
	// join 5ns after the slower branch.
	if want := simtime.Duration(125 * simtime.Nanosecond); res.Runtime != want {
		t.Fatalf("Runtime = %v, want %v", res.Runtime, want)
	}
}

// TestRunIRequiresIssuesOnStart: an irequires dependency unblocks when the
// dependency is issued, not when it completes.
func TestRunIRequiresIssuesOnStart(t *testing.T) {
	b := goal.NewBuilder(1)
	r := b.Rank(0)
	slow := r.Calc(1000)  // op 0
	chained := r.Calc(10) // op 1: would wait 1000ns under requires
	r.IRequires(chained, slow)
	s := b.MustBuild()

	be := newStub(0)
	res, err := Run(engine.New(), s, be, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both issue at time zero; runtime is the slow op, not the sum.
	if want := simtime.Duration(1000 * simtime.Nanosecond); res.Runtime != want {
		t.Fatalf("Runtime = %v, want %v", res.Runtime, want)
	}
	// The irequires successor cascades inside issue(), so it reaches the
	// backend before the dependency's own dispatch call.
	if got := strings.Join(be.issued, ", "); got != "calc r0.1, calc r0.0" {
		t.Fatalf("dispatch order %q", got)
	}
}

// TestRunCompletionCallback: completion times reported by the backend land
// in RankEnd per rank, and CalcScale stretches calc durations.
func TestRunCompletionCallback(t *testing.T) {
	b := goal.NewBuilder(2)
	b.Rank(0).Calc(100)
	b.Rank(1).Calc(300)
	s := b.MustBuild()

	res, err := Run(engine.New(), s, newStub(0), Options{CalcScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := simtime.Time(200 * simtime.Nanosecond); res.RankEnd[0] != want {
		t.Fatalf("RankEnd[0] = %v, want %v", res.RankEnd[0], want)
	}
	if want := simtime.Time(600 * simtime.Nanosecond); res.RankEnd[1] != want {
		t.Fatalf("RankEnd[1] = %v, want %v", res.RankEnd[1], want)
	}
	if res.Events == 0 {
		t.Fatal("Events not counted")
	}
}

// deadlockBackend completes calcs but swallows sends/recvs, so any
// schedule with communication deadlocks.
type deadlockBackend struct{ stubBackend }

func (b *deadlockBackend) Send(ev core.SendEvent) {}
func (b *deadlockBackend) Recv(ev core.RecvEvent) {}

// TestRunDeadlockReported: draining the event queue with ops still pending
// must produce the diagnostic error, not a silent short result.
func TestRunDeadlockReported(t *testing.T) {
	b := goal.NewBuilder(2)
	r0 := b.Rank(0)
	sendOp := r0.Send(8, 1, 0)
	after := r0.Calc(10)
	r0.Requires(after, sendOp)
	b.Rank(1).Recv(8, 0, 0)
	s := b.MustBuild()

	_, err := Run(engine.New(), s, &deadlockBackend{}, Options{})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error %q does not mention deadlock", err)
	}
}

// TestRunParallelFallsBackToSerial: a backend without a lookahead must run
// on the serial engine even when workers are requested (the stub does not
// implement core.LookaheadProvider).
func TestRunParallelFallsBackToSerial(t *testing.T) {
	b := goal.NewBuilder(2)
	b.Rank(0).Calc(100)
	b.Rank(1).Calc(100)
	s := b.MustBuild()

	res, err := RunParallel(4, s, newStub(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2 {
		t.Fatalf("Ops = %d, want 2", res.Ops)
	}
}

// TestRunRejectsUndersizedParEngine: handing sched a parallel engine with
// fewer lanes than ranks is a caller bug surfaced as an error.
func TestRunRejectsUndersizedParEngine(t *testing.T) {
	b := goal.NewBuilder(4)
	for r := 0; r < 4; r++ {
		b.Rank(r).Calc(10)
	}
	s := b.MustBuild()
	eng := engine.NewParallel(2, 2, simtime.Microsecond)
	if _, err := Run(eng, s, newStub(0), Options{}); err == nil {
		t.Fatal("expected lane-count error")
	}
}
