// Package sched implements the GOAL scheduler: it walks every rank's task
// DAG, issues operations to an ATLAHS backend as their dependencies
// resolve, and collects completion times. It is the "Workload Simulation
// Pipeline" box of the paper's Fig 7: the scheduler owns GOAL progress,
// the backend owns the clock and the network model.
//
// Dependency semantics: an op becomes eligible once all its `requires`
// dependencies have completed and all its `irequires` dependencies have
// started (approximated as: have been issued to the backend). Compute
// stream serialisation is the backend's responsibility, since stream
// occupancy depends on the backend's cost model.
package sched

import (
	"fmt"
	"runtime"

	"atlahs/internal/core"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/simtime"
)

// Options tunes a simulation run.
type Options struct {
	// CalcScale multiplies every calc duration (hardware adaptation factor,
	// paper §7). 0 means 1.0.
	CalcScale float64
}

// Result summarises a completed simulation.
type Result struct {
	// Runtime is the completion time of the last op in the schedule.
	Runtime simtime.Duration
	// RankEnd is the completion time of each rank's last op.
	RankEnd []simtime.Time
	// Ops is the number of executed GOAL ops.
	Ops int64
	// Events is the number of engine events processed.
	Events uint64
	// PeakOutstanding is the largest number of simultaneously in-flight
	// (issued but not completed) ops on any single rank — the scheduler's
	// ready-queue depth high-water mark.
	PeakOutstanding int
	// HeapReserved is the total event-heap capacity pre-sized from the
	// schedule's op counts before the run.
	HeapReserved int
}

type rankState struct {
	needComplete []int32 // outstanding `requires` per op
	needStart    []int32 // outstanding `irequires` per op
	reqSucc      [][]int32
	ireqSucc     [][]int32
	issued       []bool
	completed    []bool
	// outstanding/peakOut track issued-but-incomplete ops. Like the other
	// fields they are only touched from the op's rank lane, so no atomics.
	outstanding int32
	peakOut     int32
}

type runner struct {
	eng   engine.Sim
	s     *goal.Schedule
	be    core.Backend
	scale float64
	ranks []rankState
	// done is per-rank: completion handlers run on the op's rank lane, which
	// may execute concurrently with other ranks on the parallel engine.
	done  []int64
	total int64
	end   []simtime.Time
}

// Run simulates schedule s on backend be using eng. It returns an error if
// the schedule deadlocks (events drained with ops still pending), which
// indicates an invalid schedule (e.g. unmatched sends/recvs).
func Run(eng engine.Sim, s *goal.Schedule, be core.Backend, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if pe, ok := eng.(*engine.ParEngine); ok && pe.Lanes() < s.NumRanks() {
		return nil, fmt.Errorf("sched: parallel engine has %d lanes for %d ranks", pe.Lanes(), s.NumRanks())
	}
	scale := opts.CalcScale
	if scale == 0 {
		scale = 1
	}
	r := &runner{
		eng:   eng,
		s:     s,
		be:    be,
		scale: scale,
		ranks: make([]rankState, s.NumRanks()),
		done:  make([]int64, s.NumRanks()),
		end:   make([]simtime.Time, s.NumRanks()),
	}
	if err := be.Setup(s.NumRanks(), eng, r.over); err != nil {
		return nil, err
	}
	for rank := range s.Ranks {
		rp := &s.Ranks[rank]
		st := &r.ranks[rank]
		n := len(rp.Ops)
		// Fused allocations: both counter slices share one backing array,
		// as do both flag slices, and the successor tables are CSR views
		// into one arena each — constant allocations per rank instead of
		// O(ops) ones on dependency-heavy schedules.
		counters := make([]int32, 2*n)
		st.needComplete = counters[:n:n]
		st.needStart = counters[n:]
		flags := make([]bool, 2*n)
		st.issued = flags[:n:n]
		st.completed = flags[n:]
		st.reqSucc = invertDeps(rp.Requires)
		st.ireqSucc = invertDeps(rp.IRequires)
		for i := 0; i < n; i++ {
			st.needComplete[i] = int32(len(rp.Requires[i]))
			st.needStart[i] = int32(len(rp.IRequires[i]))
		}
		r.total += int64(n)
	}
	reserved := reserveHeaps(eng, s)
	// seed: issue all ops with no dependencies
	for rank := range s.Ranks {
		st := &r.ranks[rank]
		for i := range s.Ranks[rank].Ops {
			// an earlier seed issue may have already cascaded here via an
			// irequires edge
			if st.needComplete[i] == 0 && st.needStart[i] == 0 && !st.issued[i] {
				r.issue(rank, int32(i))
			}
		}
	}
	eng.Run()
	if r.doneOps() != r.total {
		return nil, r.deadlockError()
	}
	res := &Result{RankEnd: r.end, Ops: r.doneOps(), Events: eng.EventsProcessed(), HeapReserved: reserved}
	for _, t := range r.end {
		if d := simtime.Duration(t); d > res.Runtime {
			res.Runtime = d
		}
	}
	for i := range r.ranks {
		if p := int(r.ranks[i].peakOut); p > res.PeakOutstanding {
			res.PeakOutstanding = p
		}
	}
	return res, nil
}

// invertDeps builds per-op successor lists from per-op dependency lists
// in CSR form: two passes — count successors per op, then fill one shared
// arena — producing the same lists, in the same order, as the old
// append-per-edge construction but with three allocations total instead
// of one per op with successors.
func invertDeps(deps [][]int32) [][]int32 {
	n := len(deps)
	out := make([][]int32, n)
	total := 0
	counts := make([]int32, n)
	for i := range deps {
		for _, d := range deps[i] {
			counts[d]++
		}
		total += len(deps[i])
	}
	if total == 0 {
		return out
	}
	arena := make([]int32, total)
	// counts doubles as the running fill cursor (offset of the next free
	// slot for each op's list) during the fill pass.
	off := int32(0)
	for i, c := range counts {
		counts[i] = off
		off += c
	}
	for i := range deps {
		for _, d := range deps[i] {
			arena[counts[d]] = int32(i)
			counts[d]++
		}
	}
	start := int32(0)
	for i := range out {
		end := counts[i]
		if end > start {
			out[i] = arena[start:end:end]
		}
		start = end
	}
	return out
}

// reserveHeaps pre-sizes the engine's event heaps from the schedule's op
// counts (capped — chain-heavy programs never hold anywhere near one
// event per op at once, and seeding is what drives the early peak). It
// returns the total capacity reserved (0 for unknown engine types).
func reserveHeaps(eng engine.Sim, s *goal.Schedule) int {
	const perLaneCap = 4096
	total := 0
	switch e := eng.(type) {
	case *engine.Engine:
		for r := range s.Ranks {
			n := len(s.Ranks[r].Ops)
			if n > perLaneCap {
				n = perLaneCap
			}
			total += n
		}
		e.Reserve(total)
	case *engine.ParEngine:
		for r := range s.Ranks {
			n := len(s.Ranks[r].Ops)
			if n > perLaneCap {
				n = perLaneCap
			}
			e.ReserveLane(r, n)
			total += n
		}
	}
	return total
}

func (r *runner) issue(rank int, op int32) {
	st := &r.ranks[rank]
	if st.issued[op] {
		panic(fmt.Sprintf("sched: double issue of rank %d op %d", rank, op))
	}
	st.issued[op] = true
	st.outstanding++
	if st.outstanding > st.peakOut {
		st.peakOut = st.outstanding
	}
	// notify irequires successors: the op has started
	for _, succ := range st.ireqSucc[op] {
		st.needStart[succ]--
		if st.needStart[succ] == 0 && st.needComplete[succ] == 0 && !st.issued[succ] {
			r.issue(rank, succ)
		}
	}
	o := &r.s.Ranks[rank].Ops[op]
	h := core.MakeHandle(rank, op)
	switch o.Kind {
	case goal.KindCalc:
		r.be.Calc(core.CalcEvent{Handle: h, Rank: rank, CPU: o.CPU, Duration: o.CalcDuration(r.scale)})
	case goal.KindSend:
		r.be.Send(core.SendEvent{Handle: h, Src: rank, Dst: int(o.Peer), Size: o.Size, Tag: o.Tag, CPU: o.CPU})
	case goal.KindRecv:
		r.be.Recv(core.RecvEvent{Handle: h, Dst: rank, Src: int(o.Peer), Size: o.Size, Tag: o.Tag, CPU: o.CPU})
	}
}

// over is the backend completion callback (eventOver in the paper).
func (r *runner) over(h core.Handle, at simtime.Time) {
	rank, op := h.Rank(), h.Op()
	st := &r.ranks[rank]
	if st.completed[op] {
		panic(fmt.Sprintf("sched: double completion of rank %d op %d", rank, op))
	}
	st.completed[op] = true
	st.outstanding--
	r.done[rank]++
	if at > r.end[rank] {
		r.end[rank] = at
	}
	for _, succ := range st.reqSucc[op] {
		st.needComplete[succ]--
		if st.needComplete[succ] == 0 && st.needStart[succ] == 0 && !st.issued[succ] {
			r.issue(rank, succ)
		}
	}
}

func (r *runner) deadlockError() error {
	var firstRank, issuedNotDone, neverIssued int
	firstRank = -1
	for rank := range r.ranks {
		st := &r.ranks[rank]
		for i := range st.issued {
			switch {
			case st.issued[i] && !st.completed[i]:
				issuedNotDone++
				if firstRank < 0 {
					firstRank = rank
				}
			case !st.issued[i]:
				neverIssued++
				if firstRank < 0 {
					firstRank = rank
				}
			}
		}
	}
	return fmt.Errorf("sched: deadlock after %d/%d ops: %d issued-but-incomplete (likely unmatched sends/recvs), %d blocked on dependencies; first stuck rank %d",
		r.doneOps(), r.total, issuedNotDone, neverIssued, firstRank)
}

// doneOps sums the per-rank completion counters (call between runs only).
func (r *runner) doneOps() int64 {
	var n int64
	for _, d := range r.done {
		n += d
	}
	return n
}

// RunParallel simulates s on be using up to `workers` goroutines
// (workers <= 0 means GOMAXPROCS). It shards ranks across the parallel
// engine's lanes when the backend declares a positive lookahead (the LGS
// backend's wire latency L), and falls back to the proven serial engine
// otherwise — congestion-aware backends (pkt, fluid) share fabric state and
// have no safe lookahead. Results are independent of the worker count by
// construction, and bit-identical to Run on the serial engine up to
// same-timestamp cross-rank tie-breaking (see the ParEngine determinism
// notes); the equivalence tests in internal/backend pin both properties
// on LGS workloads.
func RunParallel(workers int, s *goal.Schedule, be core.Backend, opts Options) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	la := core.LookaheadOf(be)
	if workers > 1 && la > 0 && s.NumRanks() > 1 {
		return Run(engine.NewParallel(s.NumRanks(), workers, la), s, be, opts)
	}
	return Run(engine.New(), s, be, opts)
}
