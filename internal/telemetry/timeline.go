package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"atlahs/internal/simtime"
)

// DefaultTimelineEvents is the recorder's default event capacity. A
// window span or op instant is a few dozen bytes, so the default bounds
// a runaway trace at tens of megabytes; events past the cap are dropped
// and counted rather than grown without bound.
const DefaultTimelineEvents = 1 << 18

// Timeline records a run's execution spans — per-lane engine windows
// and per-op completion instants — and encodes them as Chrome
// trace-event JSON, the format Perfetto and chrome://tracing load
// directly. Timestamps are *simulated* time (GOAL picoseconds rendered
// as trace microseconds), so the same spec always encodes the same
// timeline bytes, independent of worker count or host speed: the
// timeline shows where simulated time goes, which is the question
// ATLAHS answers.
//
// A Timeline is safe for concurrent use: on parallel runs the engine's
// lanes and the observer bridge append from worker goroutines. The
// append path takes one mutex and copies a small struct; recording is
// opt-in, so runs without a Timeline pay nothing.
type Timeline struct {
	mu      sync.Mutex
	cap     int
	events  []traceEvent
	dropped uint64
}

// traceEvent is one recorded span or instant, kept in compact
// pre-encoding form (timestamps in simulated picoseconds).
type traceEvent struct {
	name string
	ph   byte // 'X' complete span, 'i' instant
	tid  int32
	ts   int64  // simulated ps
	dur  int64  // simulated ps, spans only
	n    uint64 // events inside a window span
}

// NewTimeline returns a recorder holding at most maxEvents events
// (<= 0 means DefaultTimelineEvents). Events recorded past the cap are
// dropped and counted (Dropped); which events drop under concurrent
// recording is unspecified, so deterministic traces need a cap above
// the run's event volume.
func NewTimeline(maxEvents int) *Timeline {
	if maxEvents <= 0 {
		maxEvents = DefaultTimelineEvents
	}
	return &Timeline{cap: maxEvents}
}

// record appends one event under the cap.
func (t *Timeline) record(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// LaneWindow records one engine window executed on a lane: the span
// from the lane's first to its last executed event of the window, with
// the event count as an argument. It implements the engine's Tracer
// hook (the engine package defines the interface structurally, so it
// never imports telemetry).
func (t *Timeline) LaneWindow(lane int, from, to simtime.Time, events uint64) {
	t.record(traceEvent{name: "window", ph: 'X', tid: int32(lane), ts: int64(from), dur: int64(to) - int64(from), n: events})
}

// Op records one GOAL op completion as an instant on the op's rank row.
func (t *Timeline) Op(rank int, kind string, at simtime.Time) {
	t.record(traceEvent{name: kind, ph: 'i', tid: int32(rank), ts: int64(at)})
}

// Len reports the number of recorded events.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports how many events the cap discarded.
func (t *Timeline) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded events.
func (t *Timeline) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// jsonTraceEvent is the Chrome trace-event wire shape (ts and dur in
// trace microseconds).
type jsonTraceEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Pid  int        `json:"pid"`
	Tid  int32      `json:"tid"`
	Ts   float64    `json:"ts"`
	Dur  *float64   `json:"dur,omitempty"`
	S    string     `json:"s,omitempty"`
	Args *traceArgs `json:"args,omitempty"`
}

// traceArgs carries the per-event argument payload.
type traceArgs struct {
	Name   string `json:"name,omitempty"`
	Events uint64 `json:"events,omitempty"`
}

// psToUs converts simulated picoseconds to trace microseconds.
func psToUs(ps int64) float64 { return float64(ps) / 1e6 }

// Encode writes the timeline as one Chrome trace-event JSON document:
// process/thread metadata first, then every recorded event sorted by
// its full content (timestamp, thread, phase, name, duration, count) —
// a total order over distinct events, so the bytes are deterministic
// even when concurrent recording interleaved the appends differently.
func (t *Timeline) Encode(w io.Writer) error {
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()

	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.ph != b.ph {
			return a.ph < b.ph
		}
		if a.name != b.name {
			return a.name < b.name
		}
		if a.dur != b.dur {
			return a.dur < b.dur
		}
		return a.n < b.n
	})

	// Thread metadata for every row that appears, sorted by tid.
	seen := map[int32]bool{}
	var tids []int32
	for _, ev := range events {
		if !seen[ev.tid] {
			seen[ev.tid] = true
			tids = append(tids, ev.tid)
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev jsonTraceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}
	if err := emit(jsonTraceEvent{Name: "process_name", Ph: "M", Args: &traceArgs{Name: "atlahs"}}); err != nil {
		return err
	}
	for _, tid := range tids {
		if err := emit(jsonTraceEvent{Name: "thread_name", Ph: "M", Tid: tid, Args: &traceArgs{Name: fmt.Sprintf("rank %d", tid)}}); err != nil {
			return err
		}
	}
	for _, ev := range events {
		je := jsonTraceEvent{Name: ev.name, Ph: string(ev.ph), Tid: ev.tid, Ts: psToUs(ev.ts)}
		switch ev.ph {
		case 'X':
			dur := psToUs(ev.dur)
			je.Dur = &dur
			je.Args = &traceArgs{Events: ev.n}
		case 'i':
			je.S = "t"
		}
		if err := emit(je); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n]"); err != nil {
		return err
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, ",\"otherData\":{\"droppedEvents\":\"%d\"}", dropped); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
