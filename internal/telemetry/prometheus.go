package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per
// family followed by its samples, families in registration order,
// labelled samples in sorted label order — deterministic for a given
// sequence of increments, which is what the scrape tests pin.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, p := range r.Snapshot() {
		if p.Name != lastFamily {
			if p.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, escapeHelp(p.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, p.Type)
			lastFamily = p.Name
		}
		switch p.Type {
		case "histogram":
			for _, bk := range p.Buckets {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", p.Name, formatFloat(bk.LE), bk.Count)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", p.Name, p.Count)
			fmt.Fprintf(&b, "%s_sum %s\n", p.Name, formatFloat(p.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", p.Name, p.Count)
		default:
			if p.Label != "" {
				// %q escaping (backslash, quote, \n) matches the exposition
				// format's label escaping.
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", p.Name, p.Label, p.LabelValue, formatFloat(p.Value))
			} else {
				fmt.Fprintf(&b, "%s %s\n", p.Name, formatFloat(p.Value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
