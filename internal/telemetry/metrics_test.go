package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2})
	for _, v := range []float64{0.25, 0.5, 4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Sum(); got != 4.75 {
		t.Fatalf("sum = %v, want 4.75", got)
	}
	cum, total := h.cumulative()
	// An observation equal to a bound lands in that bucket (le semantics).
	if cum[0] != 2 || cum[1] != 2 || total != 3 {
		t.Fatalf("cumulative = %v total %d, want [2 2] total 3", cum, total)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestConcurrentIncrements is the -race gate on the hot-path
// instruments: four goroutines (the satellite's worker count) hammer a
// counter, a gauge, a histogram and a labelled vec concurrently; the
// totals must be exact.
func TestConcurrentIncrements(t *testing.T) {
	const workers, perWorker = 4, 10000
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", []float64{1, 10})
	vec := reg.CounterVec("v_total", "", "class")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			class := string(rune('a' + w%2))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
				vec.With(class).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var vecTotal uint64
	for _, p := range reg.Snapshot() {
		if p.Name == "v_total" {
			vecTotal += uint64(p.Value)
		}
	}
	if vecTotal != workers*perWorker {
		t.Fatalf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
}

// TestWritePrometheusDeterministic pins the exact exposition bytes for
// a fixed registry: families in registration order, labelled samples in
// sorted label order, histogram buckets cumulative with the +Inf row.
func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		c := reg.Counter("atlahs_test_total", "a counter")
		gv := reg.GaugeVec("atlahs_depth", "a gauge vec", "class")
		h := reg.Histogram("atlahs_wall_seconds", "a histogram", []float64{0.5, 2})
		c.Add(3)
		gv.With("b").Set(2)
		gv.With("a").Set(1)
		for _, v := range []float64{0.25, 0.5, 4} {
			h.Observe(v)
		}
		return reg
	}
	want := strings.Join([]string{
		"# HELP atlahs_test_total a counter",
		"# TYPE atlahs_test_total counter",
		"atlahs_test_total 3",
		"# HELP atlahs_depth a gauge vec",
		"# TYPE atlahs_depth gauge",
		`atlahs_depth{class="a"} 1`,
		`atlahs_depth{class="b"} 2`,
		"# HELP atlahs_wall_seconds a histogram",
		"# TYPE atlahs_wall_seconds histogram",
		`atlahs_wall_seconds_bucket{le="0.5"} 2`,
		`atlahs_wall_seconds_bucket{le="2"} 2`,
		`atlahs_wall_seconds_bucket{le="+Inf"} 3`,
		"atlahs_wall_seconds_sum 4.75",
		"atlahs_wall_seconds_count 3",
		"",
	}, "\n")
	for i := 0; i < 3; i++ {
		var b strings.Builder
		if err := build().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.String() != want {
			t.Fatalf("scrape %d:\ngot:\n%s\nwant:\n%s", i, b.String(), want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Gauge("dup_total", "")
}

func TestRegistryBadNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	reg.Counter("Bad-Name", "")
}
