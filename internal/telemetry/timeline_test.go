package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"atlahs/internal/simtime"
)

// TestTimelineEncodeDeterministic pins the exact trace bytes for a
// small recording, with events recorded out of timestamp order: Encode
// sorts by full event content, so the bytes never depend on append
// order.
func TestTimelineEncodeDeterministic(t *testing.T) {
	encode := func(reversed bool) string {
		tl := NewTimeline(0)
		us := func(n int64) simtime.Time { return simtime.Time(0).Add(simtime.Duration(n) * simtime.Microsecond) }
		rec := []func(){
			func() { tl.LaneWindow(0, 0, us(3), 5) },
			func() { tl.Op(0, "calc", us(1)) },
			func() { tl.Op(1, "send", us(2)) },
		}
		if reversed {
			for i := len(rec) - 1; i >= 0; i-- {
				rec[i]()
			}
		} else {
			for _, f := range rec {
				f()
			}
		}
		var b bytes.Buffer
		if err := tl.Encode(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := strings.Join([]string{
		`{"displayTimeUnit":"ns","traceEvents":[`,
		`{"name":"process_name","ph":"M","pid":0,"tid":0,"ts":0,"args":{"name":"atlahs"}},`,
		`{"name":"thread_name","ph":"M","pid":0,"tid":0,"ts":0,"args":{"name":"rank 0"}},`,
		`{"name":"thread_name","ph":"M","pid":0,"tid":1,"ts":0,"args":{"name":"rank 1"}},`,
		`{"name":"window","ph":"X","pid":0,"tid":0,"ts":0,"dur":3,"args":{"events":5}},`,
		`{"name":"calc","ph":"i","pid":0,"tid":0,"ts":1,"s":"t"},`,
		`{"name":"send","ph":"i","pid":0,"tid":1,"ts":2,"s":"t"}`,
		`]}`,
		``,
	}, "\n")
	if got := encode(false); got != want {
		t.Fatalf("encode:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got := encode(true); got != want {
		t.Fatal("encode depends on recording order")
	}
}

// TestTimelineShape checks the document parses as the Chrome
// trace-event envelope every consumer (Perfetto, jq in obs-smoke)
// expects.
func TestTimelineShape(t *testing.T) {
	tl := NewTimeline(0)
	us := func(n int64) simtime.Time { return simtime.Time(0).Add(simtime.Duration(n) * simtime.Microsecond) }
	tl.LaneWindow(2, us(1), us(4), 7)
	tl.Op(2, "recv", us(2))
	var b bytes.Buffer
	if err := tl.Encode(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int32   `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 { // process_name + thread_name + window + op
		t.Fatalf("got %d trace events, want 4", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("trace event missing name/ph: %+v", ev)
		}
	}
}

// TestTimelineCapDrops pins the bounded-recording contract: events past
// the cap are dropped and counted, and the drop count lands in the
// encoded document's otherData.
func TestTimelineCapDrops(t *testing.T) {
	tl := NewTimeline(2)
	for i := int64(0); i < 5; i++ {
		tl.Op(0, "calc", simtime.Time(0).Add(simtime.Duration(i)*simtime.Microsecond))
	}
	if got := tl.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if got := tl.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	var b bytes.Buffer
	if err := tl.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"otherData":{"droppedEvents":"3"}`) {
		t.Fatalf("encoded trace does not carry the drop count:\n%s", b.String())
	}
	tl.Reset()
	if tl.Len() != 0 || tl.Dropped() != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}
