package telemetry

import (
	"fmt"
	"regexp"
	"sync"
)

// Registry holds metric families and snapshots them deterministically:
// families appear in registration order, labelled children in sorted
// label-value order. Registration is not idempotent — registering a
// name twice panics, the same programming-error contract as a duplicate
// flag — so each subsystem registers its instruments exactly once at
// construction time and holds the typed handles.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// metricNameRE is the accepted shape for metric names and label keys —
// the safe common subset of the Prometheus data model.
var metricNameRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// register files one family, panicking on invalid or duplicate names.
func (r *Registry) register(name, help, typ, label string) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if label != "" && !metricNameRE.MatchString(label) {
		panic(fmt.Sprintf("telemetry: invalid label key %q on metric %q", label, name))
	}
	f := &family{name: name, help: help, typ: typ, label: label}
	if label != "" {
		f.children = make(map[string]any)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", "")
	c := &Counter{}
	f.solo = c
	return c
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", label)}
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", "")
	g := &Gauge{}
	f.solo = g
	return g
}

// GaugeVec registers a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", label)}
}

// Histogram registers and returns a histogram over the given ascending
// upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, "histogram", "")
	h := NewHistogram(bounds)
	f.solo = h
	return h
}

// Bucket is one cumulative histogram bucket in a snapshot: the count of
// observations <= LE.
type Bucket struct {
	LE    float64
	Count uint64
}

// Point is one sample in a registry snapshot. Counters and gauges fill
// Value; histograms fill Count, Sum and Buckets (cumulative, excluding
// the implicit +Inf bucket, whose count is Count).
type Point struct {
	Name       string
	Type       string // "counter", "gauge" or "histogram"
	Help       string
	Label      string // label key, "" when unlabelled
	LabelValue string
	Value      float64
	Count      uint64
	Sum        float64
	Buckets    []Bucket
}

// Snapshot returns the registry's current state: one Point per
// unlabelled instrument or labelled child, families in registration
// order, children sorted by label value. The snapshot is a consistent
// read of each instrument individually (counters are loaded once), not
// an atomic cut across instruments — the standard scrape semantics.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var out []Point
	for _, f := range families {
		if f.label == "" {
			out = append(out, samplePoint(f, "", f.solo))
			continue
		}
		for _, val := range f.sortedValues() {
			f.mu.Lock()
			inst := f.children[val]
			f.mu.Unlock()
			out = append(out, samplePoint(f, val, inst))
		}
	}
	return out
}

// samplePoint reads one instrument into a Point.
func samplePoint(f *family, labelValue string, inst any) Point {
	p := Point{Name: f.name, Type: f.typ, Help: f.help, Label: f.label, LabelValue: labelValue}
	switch m := inst.(type) {
	case *Counter:
		p.Value = float64(m.Value())
	case *Gauge:
		p.Value = float64(m.Value())
	case *Histogram:
		cum, total := m.cumulative()
		p.Count = total
		p.Sum = m.Sum()
		p.Buckets = make([]Bucket, len(cum))
		for i, c := range cum {
			p.Buckets[i] = Bucket{LE: m.bounds[i], Count: c}
		}
	default:
		panic(fmt.Sprintf("telemetry: family %q holds unknown instrument %T", f.name, inst))
	}
	return p
}
