// Package telemetry is ATLAHS's dependency-free observability layer: a
// typed metrics registry (Counter, Gauge, Histogram) with atomic
// hot-path increments and a deterministic snapshot/exposition API, plus
// a Timeline recorder that captures a run's execution spans as Chrome
// trace-event JSON loadable in Perfetto.
//
// The package deliberately has no third-party dependencies and no
// background goroutines. Instruments are cheap enough to leave wired in
// permanently (one atomic add on the paths they count), and everything
// off the hot path — snapshotting, Prometheus text rendering, timeline
// encoding — is pull-based: it costs nothing until somebody asks.
//
// Determinism: a Registry snapshot lists metric families in
// registration order and labelled children in sorted label order, so
// the same sequence of increments always renders the same bytes — the
// property the /metrics scrape tests and the golden timeline pin.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// usable; increments are single atomic adds, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is usable;
// all methods are single atomic operations, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets with fixed
// upper bounds, Prometheus-style: bucket i counts observations <=
// Bounds[i], and the implicit +Inf bucket is the total count. Observe is
// lock-free — one atomic add per bucket walk plus a CAS loop for the
// sum — and safe for concurrent use.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; the last is the +Inf overflow
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given strictly ascending
// finite upper bounds. An empty bounds slice is allowed: the histogram
// then only tracks count and sum.
func NewHistogram(bounds []float64) *Histogram {
	for i := range bounds {
		if math.IsNaN(bounds[i]) || math.IsInf(bounds[i], 0) {
			panic(fmt.Sprintf("telemetry: histogram bound %d is not finite", i))
		}
		if i > 0 && bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly ascending at %d (%v <= %v)", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the histogram's upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// cumulative returns the cumulative per-bound counts (excluding +Inf)
// plus the total.
func (h *Histogram) cumulative() ([]uint64, uint64) {
	out := make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out, cum + h.buckets[len(h.bounds)].Load()
}

// ExpBuckets returns n strictly ascending bounds starting at start and
// multiplying by factor — the standard exponential bucket layout for
// latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	fam *family
}

// With returns (creating on first use) the child counter for the label
// value. Children persist for the registry's lifetime, so callers may
// cache the result of With on hot paths.
func (v *CounterVec) With(value string) *Counter {
	return v.fam.child(value, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct {
	fam *family
}

// With returns (creating on first use) the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	return v.fam.child(value, func() any { return &Gauge{} }).(*Gauge)
}

// family is one registered metric family: an unlabelled solo instrument
// or a label-keyed set of children.
type family struct {
	name  string
	help  string
	typ   string // "counter", "gauge" or "histogram"
	label string // label key; "" for unlabelled families

	solo any // the single instrument of an unlabelled family

	mu       sync.Mutex
	children map[string]any
}

// child returns (creating under the family lock) the instrument for one
// label value.
func (f *family) child(value string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[value]; ok {
		return c
	}
	c := mk()
	f.children[value] = c
	return c
}

// sortedValues returns the child label values, sorted — the snapshot
// order within a family.
func (f *family) sortedValues() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	vals := make([]string, 0, len(f.children))
	for v := range f.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}
