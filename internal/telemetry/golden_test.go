package telemetry_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"atlahs/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current recorder output")

// TestTimelineGoldenSerialRun byte-pins the timeline a quick serial run
// records end to end through the sim facade: timestamps are simulated
// time and the encoder sorts by event content, so the document is fully
// deterministic. Any intentional change to the trace shape must be
// reviewed by regenerating with
// `go test ./internal/telemetry -run Golden -update`.
func TestTimelineGoldenSerialRun(t *testing.T) {
	tl := sim.NewTimeline(0)
	res, err := sim.Run(context.Background(), sim.Spec{
		Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 4096}},
		Timeline: tl,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(tl.Len()) != res.Ops {
		t.Fatalf("timeline recorded %d events for %d ops", tl.Len(), res.Ops)
	}
	var buf bytes.Buffer
	if err := tl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "ring4_serial.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("recorded timeline differs from %s (rerun with -update after reviewing)\ngot:\n%s", path, buf.String())
	}
}
