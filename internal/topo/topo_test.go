package topo

import (
	"testing"
	"testing/quick"

	"atlahs/internal/simtime"
)

func mkFatTree(t *testing.T, hosts, perTor, cores int) *Topology {
	t.Helper()
	tp, err := NewFatTree(FatTreeConfig{
		Hosts: hosts, HostsPerToR: perTor, Cores: cores,
		HostLink: DefaultLinkSpec(), UplinkLink: DefaultLinkSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestFatTreeShape(t *testing.T) {
	tp := mkFatTree(t, 16, 4, 4)
	if tp.NumHosts() != 16 {
		t.Fatalf("hosts=%d", tp.NumHosts())
	}
	// 16 hosts + 4 ToR + 4 core
	if len(tp.Devices) != 24 {
		t.Fatalf("devices=%d", len(tp.Devices))
	}
	// host links: 16 duplex; uplinks: 4*4 duplex => (16+16)*2 unidirectional
	if len(tp.Links) != 64 {
		t.Fatalf("links=%d", len(tp.Links))
	}
}

func TestFatTreeErrors(t *testing.T) {
	if _, err := NewFatTree(FatTreeConfig{Hosts: 10, HostsPerToR: 4, Cores: 2}); err == nil {
		t.Fatal("indivisible host count accepted")
	}
	if _, err := NewFatTree(FatTreeConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestSameToRPathIsTwoHops(t *testing.T) {
	tp := mkFatTree(t, 16, 4, 4)
	paths := tp.Paths(0, 1) // same ToR
	if len(paths) != 1 {
		t.Fatalf("same-ToR pairs should have exactly 1 shortest path, got %d", len(paths))
	}
	if len(paths[0]) != 2 {
		t.Fatalf("same-ToR path length %d, want 2 links", len(paths[0]))
	}
}

func TestCrossToRPathsUseAllCores(t *testing.T) {
	tp := mkFatTree(t, 16, 4, 4)
	paths := tp.Paths(0, 15) // different ToRs
	if len(paths) != 4 {
		t.Fatalf("cross-ToR ECMP width %d, want 4 (one per core)", len(paths))
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Fatalf("cross-ToR path length %d, want 4 links", len(p))
		}
	}
}

func TestPathContinuity(t *testing.T) {
	tp := mkFatTree(t, 32, 8, 2)
	for src := 0; src < 4; src++ {
		for dst := 8; dst < 12; dst++ {
			for _, p := range tp.Paths(src, dst) {
				cur := tp.HostDevice(src)
				for _, lid := range p {
					l := tp.Links[lid]
					if l.From != cur {
						t.Fatalf("discontinuous path: link %d starts at %d, expected %d", lid, l.From, cur)
					}
					cur = l.To
				}
				if cur != tp.HostDevice(dst) {
					t.Fatalf("path ends at %d, want %d", cur, tp.HostDevice(dst))
				}
			}
		}
	}
}

func TestPathsMemoised(t *testing.T) {
	tp := mkFatTree(t, 16, 4, 4)
	a := tp.Paths(0, 5)
	b := tp.Paths(0, 5)
	if &a[0] != &b[0] {
		t.Fatal("paths not memoised")
	}
	if tp.Paths(3, 3) != nil {
		t.Fatal("self path should be nil")
	}
}

func TestOversubscriptionRatio(t *testing.T) {
	cfg := FatTreeConfig{
		Hosts: 64, HostsPerToR: 8, Cores: 1,
		HostLink: DefaultLinkSpec(), UplinkLink: DefaultLinkSpec(),
	}
	if got := cfg.Oversubscription(); got != 8 {
		t.Fatalf("oversub=%v, want 8", got)
	}
	cfg.Cores = 8
	if got := cfg.Oversubscription(); got != 1 {
		t.Fatalf("oversub=%v, want 1", got)
	}
}

func TestECMPSelectors(t *testing.T) {
	var fh FlowHashECMP
	// same flow always picks the same path
	p := fh.Pick(7, 42, 0)
	for seq := uint64(1); seq < 100; seq++ {
		if fh.Pick(7, 42, seq) != p {
			t.Fatal("FlowHashECMP not stable per flow")
		}
	}
	if fh.Pick(1, 99, 0) != 0 {
		t.Fatal("single path must pick 0")
	}
	// spraying covers all paths eventually
	var ps PacketSpray
	seen := map[int]bool{}
	for seq := uint64(0); seq < 200; seq++ {
		seen[ps.Pick(4, 42, seq)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("spray covered %d/4 paths", len(seen))
	}
}

func TestSelectorsInRangeProperty(t *testing.T) {
	f := func(flow, seq uint64, n uint8) bool {
		np := int(n%16) + 1
		a := FlowHashECMP{}.Pick(np, flow, seq)
		b := PacketSpray{}.Pick(np, flow, seq)
		return a >= 0 && a < np && b >= 0 && b < np
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDragonfly(t *testing.T) {
	tp, err := NewDragonfly(DragonflyConfig{
		Groups: 4, RoutersPerGrp: 2, HostsPerRtr: 2,
		HostLink: DefaultLinkSpec(), LocalLink: DefaultLinkSpec(), GlobalLink: DefaultLinkSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts() != 16 {
		t.Fatalf("hosts=%d", tp.NumHosts())
	}
	// every host pair must be connected
	for src := 0; src < tp.NumHosts(); src++ {
		for dst := 0; dst < tp.NumHosts(); dst++ {
			if src == dst {
				continue
			}
			if len(tp.Paths(src, dst)) == 0 {
				t.Fatalf("no path %d->%d", src, dst)
			}
		}
	}
}

func TestDragonflyErrors(t *testing.T) {
	if _, err := NewDragonfly(DragonflyConfig{Groups: 1, RoutersPerGrp: 1, HostsPerRtr: 1}); err == nil {
		t.Fatal("single group accepted")
	}
}

func TestDefaultLinkSpec(t *testing.T) {
	spec := DefaultLinkSpec()
	if spec.PsPerByte != 40 {
		t.Fatalf("PsPerByte=%d, want 40 (25 GB/s)", spec.PsPerByte)
	}
	if spec.Latency != 500*simtime.Nanosecond {
		t.Fatalf("latency=%v", spec.Latency)
	}
	if spec.BufBytes != 1<<20 {
		t.Fatalf("buffer=%d, want 1 MiB", spec.BufBytes)
	}
}
