// Package topo models the physical network topologies used by the
// packet-level and fluid backends: two- and three-level fat trees with
// configurable oversubscription (the paper's validation and case studies
// use two-level fat trees at 1:1, 4:1 and 8:1 ToR:Core ratios) and a
// dragonfly for the Alps-cluster flavour.
//
// A topology is a directed graph of devices (hosts and switches) connected
// by unidirectional links; every full-duplex cable is two Links. Routing is
// precomputed: Paths(src, dst) enumerates all shortest paths as link-index
// sequences, and an ECMP selector picks among them by flow hash or
// per-packet spraying.
package topo

import (
	"fmt"

	"atlahs/internal/simtime"
	"atlahs/internal/xrand"
)

// DeviceKind distinguishes hosts from switches.
type DeviceKind uint8

// Device kinds.
const (
	Host DeviceKind = iota
	Switch
)

// Device is a node in the topology graph.
type Device struct {
	ID   int
	Kind DeviceKind
	Name string
}

// Link is a unidirectional connection between two devices. Bytes take
// PsPerByte picoseconds each to serialise plus Latency propagation delay.
type Link struct {
	ID        int
	From, To  int // device IDs
	Latency   simtime.Duration
	PsPerByte simtime.Duration
	// Egress queue capacity in bytes at the From device for this link.
	BufBytes int64
}

// Bandwidth parameters shared by topology constructors.
type LinkSpec struct {
	Latency   simtime.Duration
	PsPerByte simtime.Duration
	BufBytes  int64
}

// Topology is an immutable network graph with precomputed shortest paths
// between all host pairs.
type Topology struct {
	Name     string
	Devices  []Device
	Links    []Link
	HostIDs  []int // device IDs of hosts, indexed by host rank
	adjOut   [][]int
	pathsMem map[[2]int][][]int
}

// NumHosts returns the number of host endpoints.
func (t *Topology) NumHosts() int { return len(t.HostIDs) }

// HostDevice returns the device ID of host index h.
func (t *Topology) HostDevice(h int) int { return t.HostIDs[h] }

func (t *Topology) addDevice(kind DeviceKind, name string) int {
	id := len(t.Devices)
	t.Devices = append(t.Devices, Device{ID: id, Kind: kind, Name: name})
	t.adjOut = append(t.adjOut, nil)
	if kind == Host {
		t.HostIDs = append(t.HostIDs, id)
	}
	return id
}

func (t *Topology) addDuplex(a, b int, spec LinkSpec) {
	t.addLink(a, b, spec)
	t.addLink(b, a, spec)
}

func (t *Topology) addLink(from, to int, spec LinkSpec) {
	id := len(t.Links)
	t.Links = append(t.Links, Link{
		ID: id, From: from, To: to,
		Latency: spec.Latency, PsPerByte: spec.PsPerByte, BufBytes: spec.BufBytes,
	})
	t.adjOut[from] = append(t.adjOut[from], id)
}

// OutLinks returns the IDs of links leaving device d.
func (t *Topology) OutLinks(d int) []int { return t.adjOut[d] }

// Paths returns every shortest path from host src to host dst as a slice
// of link IDs. Results are memoised. src == dst yields nil.
func (t *Topology) Paths(src, dst int) [][]int {
	if src == dst {
		return nil
	}
	key := [2]int{src, dst}
	if p, ok := t.pathsMem[key]; ok {
		return p
	}
	if t.pathsMem == nil {
		t.pathsMem = map[[2]int][][]int{}
	}
	p := t.computePaths(t.HostIDs[src], t.HostIDs[dst])
	t.pathsMem[key] = p
	return p
}

// computePaths runs BFS from srcDev and enumerates all shortest link paths
// to dstDev.
func (t *Topology) computePaths(srcDev, dstDev int) [][]int {
	n := len(t.Devices)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[srcDev] = 0
	queue := []int{srcDev}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dstDev {
			continue
		}
		for _, lid := range t.adjOut[v] {
			w := t.Links[lid].To
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	if dist[dstDev] == -1 {
		return nil
	}
	// Backtrack all shortest paths via DFS along dist-decreasing edges.
	var paths [][]int
	var cur []int
	var dfs func(dev int)
	dfs = func(dev int) {
		if dev == dstDev {
			path := make([]int, len(cur))
			copy(path, cur)
			paths = append(paths, path)
			return
		}
		for _, lid := range t.adjOut[dev] {
			w := t.Links[lid].To
			if dist[w] == dist[dev]+1 && dist[w] <= dist[dstDev] {
				cur = append(cur, lid)
				dfs(w)
				cur = cur[:len(cur)-1]
			}
		}
	}
	dfs(srcDev)
	return paths
}

// PathSelector picks one of the shortest paths for a packet.
type PathSelector interface {
	// Pick returns an index into the paths slice for a packet of the given
	// flow and sequence number.
	Pick(npaths int, flowID uint64, pktSeq uint64) int
}

// FlowHashECMP pins every packet of a flow to the same path (standard
// ECMP 5-tuple hashing).
type FlowHashECMP struct{}

// Pick implements PathSelector.
func (FlowHashECMP) Pick(npaths int, flowID uint64, _ uint64) int {
	if npaths <= 1 {
		return 0
	}
	return int(xrand.Hash64(flowID) % uint64(npaths))
}

// PacketSpray spreads consecutive packets of a flow over all paths
// (NDP-style per-packet load balancing).
type PacketSpray struct{}

// Pick implements PathSelector.
func (PacketSpray) Pick(npaths int, flowID, pktSeq uint64) int {
	if npaths <= 1 {
		return 0
	}
	return int(xrand.Hash64(flowID^(pktSeq*0x9e3779b97f4a7c15)) % uint64(npaths))
}

// FatTreeConfig describes a two-level fat tree: Hosts are distributed over
// ToR switches, ToRs connect to Core switches. Oversubscription is the
// ratio of host-facing to core-facing ToR bandwidth, achieved by varying
// the number of core uplinks.
type FatTreeConfig struct {
	Hosts       int
	HostsPerToR int
	Cores       int // number of core switches (= uplinks per ToR)
	HostLink    LinkSpec
	UplinkLink  LinkSpec // ToR<->Core links
	Name        string
}

// NewFatTree builds the two-level fat tree. Every ToR connects to every
// core switch, so with HostsPerToR hosts and Cores uplinks of equal speed
// the oversubscription ratio is HostsPerToR:Cores.
func NewFatTree(cfg FatTreeConfig) (*Topology, error) {
	if cfg.Hosts <= 0 || cfg.HostsPerToR <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("topo: fat tree needs positive hosts, hostsPerToR, cores")
	}
	if cfg.Hosts%cfg.HostsPerToR != 0 {
		return nil, fmt.Errorf("topo: %d hosts not divisible by %d hosts/ToR", cfg.Hosts, cfg.HostsPerToR)
	}
	nToR := cfg.Hosts / cfg.HostsPerToR
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("fattree-%dh-%dtor-%dcore", cfg.Hosts, nToR, cfg.Cores)
	}
	t := &Topology{Name: name}
	hosts := make([]int, cfg.Hosts)
	for i := range hosts {
		hosts[i] = t.addDevice(Host, fmt.Sprintf("h%d", i))
	}
	tors := make([]int, nToR)
	for i := range tors {
		tors[i] = t.addDevice(Switch, fmt.Sprintf("tor%d", i))
	}
	cores := make([]int, cfg.Cores)
	for i := range cores {
		cores[i] = t.addDevice(Switch, fmt.Sprintf("core%d", i))
	}
	for i, h := range hosts {
		t.addDuplex(h, tors[i/cfg.HostsPerToR], cfg.HostLink)
	}
	for _, tor := range tors {
		for _, core := range cores {
			t.addDuplex(tor, core, cfg.UplinkLink)
		}
	}
	return t, nil
}

// Oversubscription returns the ToR host:core bandwidth ratio of a fat tree
// built with NewFatTree (informational).
func (cfg FatTreeConfig) Oversubscription() float64 {
	down := float64(cfg.HostsPerToR) / float64(cfg.HostLink.PsPerByte)
	up := float64(cfg.Cores) / float64(cfg.UplinkLink.PsPerByte)
	return down / up
}

// DragonflyConfig describes a canonical dragonfly: G groups of A routers,
// each router with P hosts; routers within a group are fully connected and
// each router has H global links. We use the balanced a=2h, g=a*h+1 layout
// when fields are zero.
type DragonflyConfig struct {
	Groups        int
	RoutersPerGrp int
	HostsPerRtr   int
	HostLink      LinkSpec
	LocalLink     LinkSpec
	GlobalLink    LinkSpec
}

// NewDragonfly builds a dragonfly topology. Global links are distributed
// round-robin: router a in group g connects to groups in a balanced
// all-to-all pattern so every group pair has at least one global link when
// RoutersPerGrp*perRtrGlobal >= Groups-1.
func NewDragonfly(cfg DragonflyConfig) (*Topology, error) {
	if cfg.Groups < 2 || cfg.RoutersPerGrp < 1 || cfg.HostsPerRtr < 1 {
		return nil, fmt.Errorf("topo: dragonfly needs >=2 groups, >=1 router/group, >=1 host/router")
	}
	t := &Topology{Name: fmt.Sprintf("dragonfly-%dg-%dr-%dh", cfg.Groups, cfg.RoutersPerGrp, cfg.HostsPerRtr)}
	routers := make([][]int, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		routers[g] = make([]int, cfg.RoutersPerGrp)
		for a := 0; a < cfg.RoutersPerGrp; a++ {
			routers[g][a] = t.addDevice(Switch, fmt.Sprintf("r%d.%d", g, a))
		}
	}
	for g := 0; g < cfg.Groups; g++ {
		for a := 0; a < cfg.RoutersPerGrp; a++ {
			for i := 0; i < cfg.HostsPerRtr; i++ {
				h := t.addDevice(Host, fmt.Sprintf("h%d.%d.%d", g, a, i))
				t.addDuplex(h, routers[g][a], cfg.HostLink)
			}
			// local all-to-all within group
			for b := a + 1; b < cfg.RoutersPerGrp; b++ {
				t.addDuplex(routers[g][a], routers[g][b], cfg.LocalLink)
			}
		}
	}
	// global links: group pair (g1, g2) connected via router (g2-1) mod A in
	// g1 and router g1 mod A in g2 — a standard balanced assignment.
	for g1 := 0; g1 < cfg.Groups; g1++ {
		for g2 := g1 + 1; g2 < cfg.Groups; g2++ {
			a1 := (g2 - 1) % cfg.RoutersPerGrp
			a2 := g1 % cfg.RoutersPerGrp
			t.addDuplex(routers[g1][a1], routers[g2][a2], cfg.GlobalLink)
		}
	}
	return t, nil
}

// DefaultLinkSpec returns the link parameters used throughout the paper's
// experiments: 200 Gb/s (25 GB/s, G = 40 ps/B), 500 ns propagation, 1 MiB
// port buffers (paper §5.1).
func DefaultLinkSpec() LinkSpec {
	return LinkSpec{
		Latency:   500 * simtime.Nanosecond,
		PsPerByte: 40 * simtime.Picosecond,
		BufBytes:  1 << 20,
	}
}
