package service

import (
	"encoding/json"
	"io"

	"atlahs/sim"
)

// JSONResult is the stable machine-readable rendering of a sim.Result:
// lower-case keys, the simulated runtime both human-readable and in
// picoseconds, and per-job node sets for composed scenarios. It is the
// one shape shared by `atlahs -json`, the service API's run responses,
// and the SSE "done" event, so consumers parse a single contract.
type JSONResult struct {
	Backend   string    `json:"backend"`
	Runtime   string    `json:"runtime"`
	RuntimePs int64     `json:"runtime_ps"`
	Ranks     int       `json:"ranks"`
	Workers   int       `json:"workers"`
	Parallel  bool      `json:"parallel"`
	Ops       int64     `json:"ops"`
	Events    uint64    `json:"events"`
	Sched     JSONSched `json:"sched"`
	Done      JSONTally `json:"done"`
	// JobNodes maps each composed job (Spec.Jobs order) to the fabric
	// nodes its ranks landed on; absent for single-workload runs.
	JobNodes [][]int  `json:"job_nodes,omitempty"`
	Net      *JSONNet `json:"net,omitempty"`
}

// JSONSched is the workload's size accounting.
type JSONSched struct {
	Ops       int64 `json:"ops"`
	Sends     int64 `json:"sends"`
	Recvs     int64 `json:"recvs"`
	Calcs     int64 `json:"calcs"`
	SendBytes int64 `json:"send_bytes"`
	DepEdges  int64 `json:"dep_edges"`
}

// JSONTally is the executed-op tally by kind.
type JSONTally struct {
	Calcs int64 `json:"calcs"`
	Sends int64 `json:"sends"`
	Recvs int64 `json:"recvs"`
}

// JSONNet is the packet-level fabric counters, present only for backends
// that track them.
type JSONNet struct {
	PktsSent    uint64 `json:"pkts_sent"`
	Drops       uint64 `json:"drops"`
	Trims       uint64 `json:"trims"`
	Retransmits uint64 `json:"retransmits"`
}

// NewJSONResult renders a result into its wire shape.
func NewJSONResult(res *sim.Result) *JSONResult {
	out := &JSONResult{
		Backend:   res.Backend,
		Runtime:   res.Runtime.String(),
		RuntimePs: int64(res.Runtime),
		Ranks:     res.Ranks,
		Workers:   res.Workers,
		Parallel:  res.Parallel,
		Ops:       res.Ops,
		Events:    res.Events,
		Sched: JSONSched{
			Ops:       res.Sched.Ops,
			Sends:     res.Sched.Sends,
			Recvs:     res.Sched.Recvs,
			Calcs:     res.Sched.Calcs,
			SendBytes: res.Sched.SendBytes,
			DepEdges:  res.Sched.DepEdges,
		},
		Done:     JSONTally{Calcs: res.Done.Calcs, Sends: res.Done.Sends, Recvs: res.Done.Recvs},
		JobNodes: res.JobNodes,
	}
	if res.Net != nil {
		out.Net = &JSONNet{
			PktsSent:    res.Net.PktsSent,
			Drops:       res.Net.Drops,
			Trims:       res.Net.Trims,
			Retransmits: res.Net.Retransmits,
		}
	}
	return out
}

// WriteResultJSON writes the result as one JSON object followed by a
// newline — the `atlahs -json` output contract.
func WriteResultJSON(w io.Writer, res *sim.Result) error {
	return json.NewEncoder(w).Encode(NewJSONResult(res))
}
