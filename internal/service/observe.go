package service

import (
	"fmt"
	"net/http"
	"os"
	"time"

	"atlahs/results"
)

// The observability surface: the service-wide metrics scrape, the per-run
// engine-counter and timeline documents, and the readiness probe.

// handleMetrics serves the service's metrics registry. The default is the
// Prometheus text exposition format (version 0.0.4); ?format=json renders
// the same snapshot as an atlahs.metrics/v1 document.
func (s *Service) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := results.EncodeMetricsJSON(w, results.MetricsFromPoints(s.metrics.reg.Snapshot())); err != nil {
			s.log.Warn("service: writing metrics snapshot", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		s.log.Warn("service: writing metrics exposition", "err", err)
	}
}

// handleRunMetrics serves one finished run's atlahs.metrics/v1 snapshot —
// the engine and scheduler counters of that execution (sim.Result.Metrics).
// 404 until the run is done; runs restored from sidecars written before
// metrics existed have none.
func (s *Service) handleRunMetrics(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	snap, ok := s.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	if snap.Status != StatusDone || snap.Result == nil || snap.Result.Metrics == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("run %s has no metrics snapshot (status %s)", id, snap.Status))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := results.EncodeMetricsJSON(w, snap.Result.Metrics); err != nil {
		s.log.Warn("service: writing run metrics", "run", id, "err", err)
	}
}

// handleRunTrace serves one finished run's execution timeline as Chrome
// trace-event JSON (loadable in Perfetto). The in-memory recorder answers
// for runs executed by this process with Config.Timeline on; the artifact
// store's traces/ directory answers for runs that predate the process.
// 404 when neither has it.
func (s *Service) handleRunTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	snap := r.snapshot()
	if !snap.Status.Terminal() {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("run %s is %s; the trace exists once it is done", id, snap.Status))
		return
	}
	if r.timeline != nil {
		w.Header().Set("Content-Type", "application/json")
		if err := r.timeline.Encode(w); err != nil {
			s.log.Warn("service: writing run trace", "run", id, "err", err)
		}
		return
	}
	if s.store != nil {
		if raw, err := s.store.LoadTrace(id); err == nil {
			w.Header().Set("Content-Type", "application/json")
			if _, err := w.Write(raw); err != nil {
				s.log.Warn("service: writing run trace", "run", id, "err", err)
			}
			return
		}
	}
	s.writeError(w, http.StatusNotFound, fmt.Errorf("run %s has no recorded timeline; start the service with timeline recording on", id))
}

// healthResponse is the JSON body of GET /v1/healthz: a readiness
// snapshot, not just liveness. Ok stays true while the service can accept
// and execute work; a configured-but-unwritable artifact store turns it
// false (runs would start failing at persist time).
type healthResponse struct {
	Ok            bool            `json:"ok"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	QueueDepth    int             `json:"queue_depth"`
	Executors     executorsHealth `json:"executors"`
	Store         storeHealth     `json:"store"`
}

type executorsHealth struct {
	Busy int `json:"busy"`
	Idle int `json:"idle"`
}

type storeHealth struct {
	Configured bool   `json:"configured"`
	Writable   bool   `json:"writable"`
	Path       string `json:"path,omitempty"`
}

// handleHealthz reports readiness. Always 200 with a JSON body — probes
// key off the "ok" field, which existed before the richer fields and
// keeps its meaning.
func (s *Service) handleHealthz(w http.ResponseWriter, req *http.Request) {
	busy := int(s.metrics.execBusy.Value())
	resp := healthResponse{
		Ok:            true,
		UptimeSeconds: time.Since(s.started).Seconds(),
		QueueDepth:    s.sched.depth(),
		Executors:     executorsHealth{Busy: busy, Idle: s.cfg.Jobs - busy},
	}
	if s.store != nil {
		resp.Store = storeHealth{Configured: true, Path: s.store.Dir(), Writable: storeWritable(s.store.Dir())}
		resp.Ok = resp.Store.Writable
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// storeWritable probes the artifact directory the way the store writes:
// create a temp file, remove it.
func storeWritable(dir string) bool {
	f, err := os.CreateTemp(dir, ".healthz-*")
	if err != nil {
		return false
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return true
}
