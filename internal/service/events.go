package service

import (
	"sync"
	"sync/atomic"

	"atlahs/internal/telemetry"
	"atlahs/sim"
)

// Event types, in the order a successful run emits them: one "started",
// interleaved "op" and "progress" streams, an optional "netstats", and
// exactly one terminal "done" or "failed".
const (
	EventStarted  = "started"
	EventOp       = "op"
	EventProgress = "progress"
	EventNetStats = "netstats"
	EventDone     = "done"
	EventFailed   = "failed"
)

// Event is one streamed run callback, bridged from sim.Observer. Data
// holds the per-type payload (StartedData, OpData, ProgressData,
// NetStatsData, DoneData, FailedData).
type Event struct {
	Type string `json:"type"`
	Run  string `json:"run"`
	Data any    `json:"data,omitempty"`
}

// StartedData mirrors sim.RunInfo: the resolved run shape.
type StartedData struct {
	Backend  string `json:"backend"`
	Ranks    int    `json:"ranks"`
	Ops      int64  `json:"ops"`
	Workers  int    `json:"workers"`
	Parallel bool   `json:"parallel"`
}

// OpData mirrors sim.OpEvent: one GOAL op's semantic completion.
type OpData struct {
	Rank int    `json:"rank"`
	Op   int32  `json:"op"`
	Kind string `json:"kind"`
	AtPs int64  `json:"at_ps"`
}

// ProgressData mirrors sim.ProgressEvent.
type ProgressData struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	AtPs  int64 `json:"at_ps"`
}

// NetStatsData mirrors the packet-level fabric counters.
type NetStatsData struct {
	PktsSent    uint64 `json:"pkts_sent"`
	Drops       uint64 `json:"drops"`
	Trims       uint64 `json:"trims"`
	Retransmits uint64 `json:"retransmits"`
}

// DoneData carries the finished run's result, plus the total number of
// op/progress events the bridge dropped to lagging subscribers over the
// run's lifetime — the stream's own completeness disclosure.
type DoneData struct {
	Result        *JSONResult `json:"result"`
	DroppedEvents int64       `json:"dropped_events"`
}

// FailedData carries the failure message.
type FailedData struct {
	Error         string `json:"error"`
	DroppedEvents int64  `json:"dropped_events"`
}

// subBuffer is each subscription's channel capacity. High-rate op/progress
// events are dropped (counted) when a subscriber lags behind it; lifecycle
// events displace buffered ones instead of being lost.
const subBuffer = 1024

// Subscription is one subscriber's view of a run's event stream. Receive
// from C until it closes (the terminal event is always the last delivery);
// call Close to detach early.
type Subscription struct {
	// C delivers events in publish order.
	C       <-chan Event
	ch      chan Event
	r       *run
	dropped atomic.Int64
}

// Dropped counts op/progress events discarded because the subscriber's
// buffer was full — the stream favours liveness over completeness, and
// the terminal result is never dropped.
func (sub *Subscription) Dropped() int64 { return sub.dropped.Load() }

// Close detaches the subscription. Safe to call at any time, including
// after the stream already closed.
func (sub *Subscription) Close() {
	r := sub.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.subs[sub]; ok {
		delete(r.subs, sub)
		r.nsubs.Add(-1)
		if r.mx != nil {
			r.mx.sseSubscribers.Dec()
		}
		close(sub.ch)
	}
}

// deliver hands one event to the subscriber. Droppable events are counted
// and skipped when the buffer is full; others displace the oldest
// buffered event so lifecycle transitions always arrive. The caller holds
// the run's mutex, so at most one deliver per subscription runs at once.
func (sub *Subscription) deliver(ev Event, droppable bool) {
	select {
	case sub.ch <- ev:
		return
	default:
	}
	if droppable {
		sub.drop()
		return
	}
	for {
		select {
		case <-sub.ch:
			sub.drop()
		default:
		}
		select {
		case sub.ch <- ev:
			return
		default:
		}
	}
}

// drop books one discarded event on the subscription, the run and the
// service metrics.
func (sub *Subscription) drop() {
	sub.dropped.Add(1)
	sub.r.drops.Add(1)
	if sub.r.mx != nil {
		sub.r.mx.sseDropped.Inc()
	}
}

// run is one content-addressed simulation job.
type run struct {
	id string
	// fp is the full fingerprint the id derives from, persisted in the
	// run's metadata sidecar so a rebuilt index can re-verify the address.
	fp   string
	spec sim.Spec
	done chan struct{}
	// lookKeys are the fast-path cache keys pointing at this run, owned
	// and cleaned up by the Service under its own mutex.
	lookKeys []string
	// class is the admission class the run queued in, carried for
	// structured logs and the queue-depth gauge.
	class string
	// mx points at the owning service's metrics; nil on runs built
	// outside a service (tests).
	mx *serviceMetrics
	// timeline is the run's execution recorder when Config.Timeline is
	// on, drained by GET /v1/runs/{id}/trace.
	timeline *telemetry.Timeline
	// drops totals the op/progress events discarded across all of this
	// run's subscriptions, surfaced in the terminal event and run JSON.
	drops atomic.Int64

	// nsubs mirrors len(subs) so the op-rate publish path can skip the
	// mutex entirely while nobody is listening.
	nsubs atomic.Int32

	mu       sync.Mutex
	status   Status
	result   *sim.Result
	artifact []byte
	err      error
	subs     map[*Subscription]struct{}
}

func newRun(id, fp string, spec sim.Spec) *run {
	return &run{
		id:     id,
		fp:     fp,
		spec:   spec,
		status: StatusQueued,
		done:   make(chan struct{}),
		subs:   make(map[*Subscription]struct{}),
	}
}

// newDoneRun reconstructs an already-finished run from persisted state —
// the rebuilt cache entry a restarted service answers from. Its done
// channel is born closed, so waiters and late subscribers behave exactly
// as they do for a run that finished in this process.
func newDoneRun(id, fp string, res *sim.Result, artifact []byte, lookKeys []string) *run {
	r := &run{
		id:       id,
		fp:       fp,
		status:   StatusDone,
		result:   res,
		artifact: artifact,
		lookKeys: lookKeys,
		done:     make(chan struct{}),
		subs:     make(map[*Subscription]struct{}),
	}
	close(r.done)
	return r
}

// snapshot copies the run's current state.
func (r *run) snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		ID:       r.id,
		Status:   r.status,
		Result:   r.result,
		Artifact: r.artifact,
		Dropped:  r.drops.Load(),
	}
	if r.err != nil {
		snap.Err = r.err.Error()
	}
	return snap
}

// setStatus transitions a non-terminal state.
func (r *run) setStatus(st Status) {
	r.mu.Lock()
	r.status = st
	r.mu.Unlock()
}

// complete finishes the run successfully: record the result and artifact,
// publish the terminal event, close every subscription, release waiters.
func (r *run) complete(res *sim.Result, artifact []byte) {
	r.mu.Lock()
	r.status = StatusDone
	r.result = res
	r.artifact = artifact
	r.finishLocked(Event{Type: EventDone, Run: r.id, Data: DoneData{Result: NewJSONResult(res), DroppedEvents: r.drops.Load()}})
	r.mu.Unlock()
}

// fail finishes the run with an error.
func (r *run) fail(err error) {
	r.mu.Lock()
	r.status = StatusFailed
	r.err = err
	r.finishLocked(Event{Type: EventFailed, Run: r.id, Data: FailedData{Error: err.Error(), DroppedEvents: r.drops.Load()}})
	r.mu.Unlock()
}

// finishLocked publishes the terminal event and closes all subscriptions;
// the caller holds r.mu.
func (r *run) finishLocked(ev Event) {
	for sub := range r.subs {
		sub.deliver(ev, false)
		close(sub.ch)
		delete(r.subs, sub)
		r.nsubs.Add(-1)
		if r.mx != nil {
			r.mx.sseSubscribers.Dec()
		}
	}
	close(r.done)
}

// terminalEventLocked rebuilds the terminal event for late subscribers;
// the caller holds r.mu and has checked the status is terminal.
func (r *run) terminalEventLocked() Event {
	if r.status == StatusFailed {
		return Event{Type: EventFailed, Run: r.id, Data: FailedData{Error: r.err.Error(), DroppedEvents: r.drops.Load()}}
	}
	return Event{Type: EventDone, Run: r.id, Data: DoneData{Result: NewJSONResult(r.result), DroppedEvents: r.drops.Load()}}
}

// publish fans one live event out to every subscriber. Droppable events
// skip the lock while nobody subscribes — the common case for cached and
// batch submissions — so an unobserved run pays one atomic load per op.
func (r *run) publish(ev Event, droppable bool) {
	if droppable && r.nsubs.Load() == 0 {
		return
	}
	r.mu.Lock()
	for sub := range r.subs {
		sub.deliver(ev, droppable)
	}
	r.mu.Unlock()
}

// The run itself is the sim.Observer its simulation streams through; with
// Workers > 1 the op-level callbacks arrive concurrently, which the
// per-run mutex serialises.

// RunStarted implements sim.Observer.
func (r *run) RunStarted(info sim.RunInfo) {
	r.publish(Event{Type: EventStarted, Run: r.id, Data: StartedData{
		Backend:  info.Backend,
		Ranks:    info.Stats.Ranks,
		Ops:      info.Stats.Ops,
		Workers:  info.Workers,
		Parallel: info.Parallel,
	}}, false)
}

// OpCompleted implements sim.Observer. The no-subscriber check runs
// before the Event is even built: this is the per-op hot path, and
// constructing the boxed payload first would allocate once per simulated
// op on unobserved runs.
func (r *run) OpCompleted(ev sim.OpEvent) {
	if r.nsubs.Load() == 0 {
		return
	}
	r.publish(Event{Type: EventOp, Run: r.id, Data: OpData{
		Rank: ev.Rank,
		Op:   ev.Op,
		Kind: ev.Kind.String(),
		AtPs: int64(ev.At),
	}}, true)
}

// Progress implements sim.Observer.
func (r *run) Progress(ev sim.ProgressEvent) {
	if r.nsubs.Load() == 0 {
		return
	}
	r.publish(Event{Type: EventProgress, Run: r.id, Data: ProgressData{
		Done:  ev.Done,
		Total: ev.Total,
		AtPs:  int64(ev.At),
	}}, true)
}

// NetStats implements sim.Observer.
func (r *run) NetStats(ns sim.NetStats) {
	r.publish(Event{Type: EventNetStats, Run: r.id, Data: NetStatsData{
		PktsSent:    ns.PktsSent,
		Drops:       ns.Drops,
		Trims:       ns.Trims,
		Retransmits: ns.Retransmits,
	}}, false)
}

// Subscribe attaches to a run's event stream. Subscribing to a finished
// run delivers its terminal event immediately and closes the stream, so
// late subscribers still learn the outcome.
func (s *Service) Subscribe(id string) (*Subscription, bool) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	sub := &Subscription{ch: make(chan Event, subBuffer), r: r}
	sub.C = sub.ch
	r.mu.Lock()
	if r.status.Terminal() {
		sub.ch <- r.terminalEventLocked()
		close(sub.ch)
	} else {
		r.subs[sub] = struct{}{}
		r.nsubs.Add(1)
		if r.mx != nil {
			r.mx.sseSubscribers.Inc()
		}
	}
	r.mu.Unlock()
	return sub, true
}
