package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"

	"atlahs/internal/analyze"
	"atlahs/results"
)

// The analytics endpoints — the service-side face of internal/analyze:
//
//	GET /v1/history                  per-metric trajectories over the
//	                                 service's completed runs, oldest first
//	GET /v1/analyze/diff?a=A&b=B     field-by-field diff of two runs'
//	                                 artifacts, gated for regressions
//
// Both accept ?format=html for the self-contained report; /v1/history
// accepts ?metric=RE to restrict series, and /v1/analyze/diff accepts
// ?keys=cols (comma-separated row-match columns, default positional —
// run sweeps are per-rank tables with pinned row order) and ?threshold=F
// (relative worsening to flag, default 0.1).

// historyResponse is the JSON body of GET /v1/history.
type historyResponse struct {
	Schema   string           `json:"schema"`
	Series   []results.Series `json:"series"`
	Warnings []string         `json:"warnings,omitempty"`
}

// analyzeDiffResponse is the JSON body of GET /v1/analyze/diff.
type analyzeDiffResponse struct {
	A           string               `json:"a"`
	B           string               `json:"b"`
	Regressed   bool                 `json:"regressed"`
	Regressions []analyze.Regression `json:"regressions,omitempty"`
	Diff        json.RawMessage      `json:"diff"`
}

// history builds the service's run trajectories: from the artifact store
// when one is configured (it survives restarts and evictions), else from
// the in-memory cache in completion order.
func (s *Service) history() (series []results.Series, warnings []string, err error) {
	if s.store != nil {
		return analyze.StoreHistory(s.store)
	}
	s.mu.Lock()
	ids := append([]string(nil), s.doneOrder...)
	s.mu.Unlock()
	var entries []analyze.HistoryEntry
	for _, id := range ids {
		snap, ok := s.Get(id)
		if !ok || snap.Status != StatusDone {
			continue
		}
		sweep, err := results.DecodeJSON(bytes.NewReader(snap.Artifact))
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("skipping run %s: %v", id, err))
			continue
		}
		if len(sweep.Derived) == 0 {
			continue
		}
		entries = append(entries, analyze.HistoryEntry{Label: id, Values: sweep.Derived})
	}
	return analyze.SeriesFrom(entries), warnings, nil
}

func (s *Service) handleHistory(w http.ResponseWriter, req *http.Request) {
	series, warnings, err := s.history()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	if pat := req.URL.Query().Get("metric"); pat != "" {
		re, err := regexp.Compile(pat)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad metric pattern: %w", err))
			return
		}
		kept := series[:0]
		for _, sr := range series {
			if re.MatchString(sr.Metric) {
				kept = append(kept, sr)
			}
		}
		series = kept
	}
	if wantHTML(req) {
		s.writeHTML(w, &analyze.Report{Title: "atlahs service: run history", History: series, Warnings: warnings})
		return
	}
	s.writeJSON(w, http.StatusOK, historyResponse{Schema: analyze.HistorySchema, Series: series, Warnings: warnings})
}

// runSweepByID loads one completed run's artifact back into a sweep.
func (s *Service) runSweepByID(id string) (*results.Sweep, error) {
	snap, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("unknown run %q", id)
	}
	if snap.Status != StatusDone {
		return nil, fmt.Errorf("run %s is %s; it can be analyzed once it is done", id, snap.Status)
	}
	sweep, err := results.DecodeJSON(bytes.NewReader(snap.Artifact))
	if err != nil {
		return nil, fmt.Errorf("run %s artifact: %w", id, err)
	}
	return sweep, nil
}

func (s *Service) handleAnalyzeDiff(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	aID, bID := q.Get("a"), q.Get("b")
	if aID == "" || bID == "" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("want ?a=RUN&b=RUN"))
		return
	}
	a, err := s.runSweepByID(aID)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	b, err := s.runSweepByID(bID)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	var opts analyze.DiffOptions
	if keys := q.Get("keys"); keys != "" {
		opts.Keys = strings.Split(keys, ",")
	}
	threshold := 0.1
	if t := q.Get("threshold"); t != "" {
		threshold, err = strconv.ParseFloat(t, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad threshold %q: %w", t, err))
			return
		}
	}
	d, err := analyze.Diff(a, b, opts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	regs := analyze.Gate{RelThreshold: threshold}.Diff(d)
	if wantHTML(req) {
		s.writeHTML(w, &analyze.Report{
			Title:       fmt.Sprintf("atlahs service: %s vs %s", aID, bID),
			Diff:        d,
			Regressions: regs,
		})
		return
	}
	raw, err := results.MarshalDiff(d)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, analyzeDiffResponse{
		A:           aID,
		B:           bID,
		Regressed:   len(regs) > 0,
		Regressions: regs,
		Diff:        raw,
	})
}

// wantHTML reports whether the request asked for the rendered report.
func wantHTML(req *http.Request) bool {
	return req.URL.Query().Get("format") == "html"
}

// writeHTML renders one report document.
func (s *Service) writeHTML(w http.ResponseWriter, report *analyze.Report) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := analyze.RenderHTML(w, report); err != nil {
		s.log.Warn("service: rendering report", "report", report.Title, "err", err)
	}
}
