package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"atlahs/sim"
)

// SweepSchema identifies the wire payload of POST /v1/sweeps: one JSON
// object holding N atlahs.spec/v1 specs submitted as a unit.
const SweepSchema = "atlahs.sweep/v1"

// maxSweepSpecs bounds one batch — far above any experiments figure, far
// below an admission-bookkeeping blowup.
const maxSweepSpecs = 4096

// batch is one submitted sweep: the unique runs behind its specs, in
// first-appearance order. Holding *run pointers keeps the combined view
// coherent even after the run cache evicts an entry.
type batch struct {
	id    string
	specs int
	runs  []*run
}

// BatchSnapshot is a point-in-time combined view of one sweep.
type BatchSnapshot struct {
	// ID is the sweep's content address: "b_" plus the leading 16 hex
	// digits of the SHA-256 over its sorted member run ids — the same
	// specs always form the same sweep.
	ID string
	// Specs counts the submitted specs; Runs holds one snapshot per
	// unique fingerprint among them (duplicates collapse), in
	// first-appearance order.
	Specs int
	Runs  []Snapshot
	// Done, Failed and Cached count member runs by outcome; Cached is
	// meaningful on submission snapshots only (like Snapshot.Cached).
	Done, Failed, Cached int
}

// Total returns the number of unique runs in the sweep.
func (b BatchSnapshot) Total() int { return len(b.Runs) }

// Terminal reports whether every member run reached a terminal state.
func (b BatchSnapshot) Terminal() bool { return b.Done+b.Failed == len(b.Runs) }

// SubmitSweep admits one batch of specs as a unit: every spec is
// fingerprinted, duplicates collapse — against each other and against the
// content-addressed cache — and the remaining cold runs are enqueued
// atomically (all or none, so a sweep is never half-admitted; a queue
// without room for all of them fails with ErrQueueFull). The batch stays
// addressable by its content-derived id for combined status and artifact
// views. An empty class queues the sweep under its own per-batch fairness
// class, so one giant sweep cannot starve interactive submissions.
func (s *Service) SubmitSweep(class string, specs []sim.Spec) (BatchSnapshot, error) {
	if len(specs) == 0 {
		return BatchSnapshot{}, fmt.Errorf("service: a sweep needs at least one spec")
	}
	if len(specs) > maxSweepSpecs {
		return BatchSnapshot{}, fmt.Errorf("service: sweep has %d specs, the limit is %d", len(specs), maxSweepSpecs)
	}
	// Phase 1, without the service lock: resolve every spec to its content
	// address, collapsing duplicates as they surface. A spec that fails to
	// resolve rejects the whole batch before anything is admitted.
	type member struct {
		id      string
		lookKey string
		pinned  sim.Spec
		fp      string
	}
	var order []string
	members := map[string]*member{}
	for i := range specs {
		spec := specs[i]
		if spec.Observer != nil {
			return BatchSnapshot{}, fmt.Errorf("service: sweep spec %d: specs may not carry an Observer; use Subscribe on the returned run ids", i)
		}
		lookKey := s.lookasideKey(spec)
		if lookKey != "" {
			// The fast path spares resolving workloads for specs the cache
			// already knows by their wire bytes. Failed runs fall through to
			// the full path, which retries them (as in Submit).
			s.mu.Lock()
			id, ok := s.lookaside[lookKey]
			if ok {
				r, exists := s.runs[id]
				ok = exists && r.snapshot().Status != StatusFailed
			}
			s.mu.Unlock()
			if ok {
				if _, dup := members[id]; !dup {
					members[id] = &member{id: id, lookKey: lookKey}
					order = append(order, id)
				}
				continue
			}
		}
		s.resolveSem <- struct{}{}
		pinned, fp, err := sim.ResolveSpec(spec)
		<-s.resolveSem
		if err != nil {
			return BatchSnapshot{}, fmt.Errorf("service: sweep spec %d: %w", i, err)
		}
		id := "r_" + fp[:16]
		if _, dup := members[id]; !dup {
			members[id] = &member{id: id, lookKey: lookKey, pinned: pinned, fp: fp}
			order = append(order, id)
		}
	}
	batchID := sweepID(order)
	if class == "" {
		class = "sweep:" + batchID
	}
	// Phase 2, one critical section: join existing runs, retry failed
	// ones, and enqueue every cold member atomically.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return BatchSnapshot{}, ErrClosed
	}
	snap := BatchSnapshot{ID: batchID, Specs: len(specs)}
	var cold []*run
	var coldMembers []*member
	runs := make([]*run, 0, len(order))
	for _, id := range order {
		m := members[id]
		if r, ok := s.runs[id]; ok {
			rs := r.snapshot()
			if rs.Status != StatusFailed {
				rs.Cached = true
				snap.Runs = append(snap.Runs, rs)
				runs = append(runs, r)
				if m.lookKey != "" {
					s.lookaside[m.lookKey] = id
					r.lookKeys = append(r.lookKeys, m.lookKey)
				}
				continue
			}
			// A failure is not a result: drop and retry, as Submit does.
			s.dropLocked(id)
		}
		if m.fp == "" {
			// The member was admitted via the lookaside fast path but its
			// run vanished in between (evicted, or failed and dropped).
			// Fall back to a full resolve outside the next lock cycle is
			// not worth the complexity — resolve here is impossible without
			// the workload, so reject the race loudly; the client retries.
			s.mu.Unlock()
			return BatchSnapshot{}, fmt.Errorf("service: sweep member %s was evicted during admission; retry the sweep", id)
		}
		r := newRun(id, m.fp, m.pinned)
		r.class = class
		r.mx = s.metrics
		cold = append(cold, r)
		coldMembers = append(coldMembers, m)
		runs = append(runs, r)
		snap.Runs = append(snap.Runs, r.snapshot())
	}
	if err := s.sched.push(class, cold...); err != nil {
		s.mu.Unlock()
		return BatchSnapshot{}, err
	}
	for i, r := range cold {
		s.runs[r.id] = r
		if key := coldMembers[i].lookKey; key != "" {
			s.lookaside[key] = r.id
			r.lookKeys = append(r.lookKeys, key)
		}
	}
	s.noteBatchLocked(&batch{id: batchID, specs: len(specs), runs: runs})
	s.mu.Unlock()
	for _, rs := range snap.Runs {
		switch {
		case rs.Status == StatusDone:
			snap.Done++
		case rs.Status == StatusFailed:
			snap.Failed++
		}
		if rs.Cached {
			snap.Cached++
			s.metrics.cacheRequests.With("hit").Inc()
			if !rs.Status.Terminal() {
				s.metrics.singleflight.Inc()
			}
		} else {
			s.metrics.cacheRequests.With("miss").Inc()
		}
	}
	return snap, nil
}

// noteBatchLocked indexes a sweep and evicts the oldest past the bound
// (the run-cache bound doubles as the batch bound). Re-submitting the
// same sweep refreshes its entry instead of duplicating it. The caller
// holds s.mu.
func (s *Service) noteBatchLocked(b *batch) {
	if _, ok := s.batches[b.id]; !ok {
		s.batchOrder = append(s.batchOrder, b.id)
	}
	s.batches[b.id] = b
	for len(s.batchOrder) > s.cfg.Cache {
		evict := s.batchOrder[0]
		s.batchOrder = s.batchOrder[1:]
		delete(s.batches, evict)
	}
}

// GetSweep returns the combined view of a submitted sweep. Run snapshots
// carry their live status; Cached is false, as on Get.
func (s *Service) GetSweep(id string) (BatchSnapshot, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return BatchSnapshot{}, false
	}
	return b.snapshot(), true
}

// WaitSweep blocks until every member run reaches a terminal state
// (returning the final combined view) or ctx ends (returning ctx's
// error). Like Wait, an already-terminal sweep returns even on a
// cancelled context.
func (s *Service) WaitSweep(ctx context.Context, id string) (BatchSnapshot, error) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return BatchSnapshot{}, fmt.Errorf("service: unknown sweep %q", id)
	}
	for _, r := range b.runs {
		select {
		case <-r.done:
			continue
		default:
		}
		select {
		case <-r.done:
		case <-ctx.Done():
			return BatchSnapshot{}, ctx.Err()
		}
	}
	return b.snapshot(), nil
}

// sweepRuns returns the member runs of a sweep for the combined artifact
// view, ok=false when the sweep is unknown.
func (s *Service) sweepRuns(id string) ([]*run, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return b.runs, true
}

// snapshot assembles the live combined view.
func (b *batch) snapshot() BatchSnapshot {
	snap := BatchSnapshot{ID: b.id, Specs: b.specs}
	for _, r := range b.runs {
		rs := r.snapshot()
		switch rs.Status {
		case StatusDone:
			snap.Done++
		case StatusFailed:
			snap.Failed++
		}
		snap.Runs = append(snap.Runs, rs)
	}
	return snap
}

// sweepID derives a sweep's content address from its member run ids:
// order-insensitive (the same set of specs is the same sweep) and stable
// across processes.
func sweepID(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	sum := sha256.Sum256([]byte(strings.Join(sorted, "\n")))
	return "b_" + hex.EncodeToString(sum[:])[:16]
}
