package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atlahs/sim"
)

// The HTTP surface of the simulation service — what atlahsd and
// `atlahs -serve` expose:
//
//	POST /v1/runs            submit an atlahs.spec/v1 spec; ?wait=1 blocks
//	                         until the run finishes
//	GET  /v1/runs/{id}           status / result
//	GET  /v1/runs/{id}/artifact  the run's atlahs.results/v1 sweep JSON
//	GET  /v1/runs/{id}/events    the run's event stream, as SSE
//	GET  /v1/healthz             liveness probe
//
// Every /v1/runs response carries a Cache-Status header: "hit" when it
// was answered from the content-addressed run cache without simulating
// (a duplicate submission, or any read of a finished run), "miss" while
// an answer still requires simulation work.

// maxSpecBytes bounds a POST /v1/runs body: far above any reasonable
// spec (workloads travel inline), far below a memory-exhaustion vector.
const maxSpecBytes = 64 << 20

// runResponse is the JSON body of POST /v1/runs and GET /v1/runs/{id}.
type runResponse struct {
	ID     string      `json:"id"`
	Status Status      `json:"status"`
	Cached bool        `json:"cached"`
	Error  string      `json:"error,omitempty"`
	Result *JSONResult `json:"result,omitempty"`
}

// errorResponse is the JSON body of every non-2xx API response.
type errorResponse struct {
	Error string `json:"error"`
}

// ListenAndServe exposes the service's HTTP API on addr until the
// process receives SIGINT or SIGTERM (the container-stop signal), then
// shuts down gracefully: the listener closes, in-flight requests get a
// 10-second drain window, and the service terminates every admitted run
// before returning. It owns the service's shutdown — callers hand it a
// fresh Service and it closes it. Both atlahsd and `atlahs -serve` are
// thin shells over this.
func ListenAndServe(svc *Service, addr string) error {
	srv := &http.Server{Addr: addr, Handler: NewHandler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "atlahs service: listening on %s\n", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "atlahs service: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// NewHandler wraps a Service in its HTTP API.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", svc.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", svc.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/artifact", svc.handleArtifact)
	mux.HandleFunc("GET /v1/runs/{id}/events", svc.handleEvents)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := sim.UnmarshalSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cached := snap.Cached
	if wantWait(req) && !snap.Status.Terminal() {
		waited, err := s.Wait(req.Context(), snap.ID)
		if err == nil {
			waited.Cached = cached
			snap = waited
		}
	}
	writeRun(w, snap, cached)
}

func (s *Service) handleGet(w http.ResponseWriter, req *http.Request) {
	snap, ok := s.Get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	if wantWait(req) && !snap.Status.Terminal() {
		if waited, err := s.Wait(req.Context(), snap.ID); err == nil {
			snap = waited
		}
	}
	writeRun(w, snap, snap.Status == StatusDone)
}

func (s *Service) handleArtifact(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	snap, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	if snap.Status != StatusDone {
		w.Header().Set("Cache-Status", "miss")
		writeError(w, http.StatusNotFound, fmt.Errorf("run %s is %s; the artifact exists once it is done", id, snap.Status))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Status", "hit")
	w.Write(snap.Artifact)
}

func (s *Service) handleEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	sub, ok := s.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	defer sub.Close()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	// Detach when the client goes away so the run stops buffering for us.
	stop := req.Context().Done()
	go func() {
		<-stop
		sub.Close()
	}()
	for ev := range sub.C {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return
		}
		flusher.Flush()
	}
}

// wantWait reports whether the request asked to block until the run
// finishes (?wait=1 or ?wait=true).
func wantWait(req *http.Request) bool {
	switch req.URL.Query().Get("wait") {
	case "1", "true":
		return true
	}
	return false
}

// writeRun renders one run snapshot with its Cache-Status header: hit
// when the response was served by the content-addressed cache without
// simulating, miss otherwise.
func writeRun(w http.ResponseWriter, snap Snapshot, hit bool) {
	if hit {
		w.Header().Set("Cache-Status", "hit")
	} else {
		w.Header().Set("Cache-Status", "miss")
	}
	resp := runResponse{
		ID:     snap.ID,
		Status: snap.Status,
		Cached: snap.Cached,
		Error:  snap.Err,
	}
	if snap.Result != nil {
		resp.Result = NewJSONResult(snap.Result)
	}
	status := http.StatusOK
	if !snap.Status.Terminal() {
		status = http.StatusAccepted
	}
	writeJSON(w, status, resp)
}

// writeError renders one API error as JSON.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeJSON writes one JSON body with the right headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
