package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atlahs/sim"
)

// The HTTP surface of the simulation service — what atlahsd and
// `atlahs -serve` expose:
//
//	POST /v1/runs            submit an atlahs.spec/v1 spec; ?wait=1 blocks
//	                         until the run finishes
//	GET  /v1/runs/{id}           status / result
//	GET  /v1/runs/{id}/artifact  the run's atlahs.results/v1 sweep JSON
//	GET  /v1/runs/{id}/events    the run's event stream, as SSE
//	POST /v1/sweeps          submit an atlahs.sweep/v1 batch of specs;
//	                         ?wait=1 blocks until every run finishes
//	GET  /v1/sweeps/{id}             combined status of a batch
//	GET  /v1/sweeps/{id}/artifact    combined per-run artifact view
//	GET  /v1/history             per-metric trajectories over completed
//	                             runs (atlahs.history/v1; ?format=html)
//	GET  /v1/analyze/diff        field-by-field diff of two runs'
//	                             artifacts (?a=RUN&b=RUN; see analyze.go)
//	GET  /v1/runs/{id}/metrics   the run's atlahs.metrics/v1 engine-counter
//	                             snapshot, once done
//	GET  /v1/runs/{id}/trace     the run's Chrome trace-event timeline
//	                             (Config.Timeline runs only), once done
//	GET  /metrics                service metrics, Prometheus text
//	                             exposition (?format=json for an
//	                             atlahs.metrics/v1 snapshot)
//	GET  /v1/healthz             readiness probe: queue depth, executor
//	                             occupancy, store writability, uptime
//
// Every /v1/runs and /v1/sweeps response carries a Cache-Status header:
// "hit" when it was answered from the content-addressed run cache without
// simulating and without waiting on a simulation (a duplicate submission,
// or a read of a run that had already finished when the request arrived),
// "miss" while the answer required simulation work — including a ?wait=1
// request that watched the run finish. 503 responses (full queue, closing
// server) carry a Retry-After header. An optional X-Submitter request
// header names the submission's fairness class; submissions without one
// share the interactive class, and each sweep defaults to its own class.

// maxSpecBytes bounds a POST /v1/runs or /v1/sweeps body: far above any
// reasonable payload (workloads travel inline), far below a
// memory-exhaustion vector.
const maxSpecBytes = 64 << 20

// retryAfterSeconds is the Retry-After hint on 503 responses: the queue
// drains at simulation granularity, so "soon" is the honest answer.
const retryAfterSeconds = "1"

// runResponse is the JSON body of POST /v1/runs and GET /v1/runs/{id}.
type runResponse struct {
	ID     string      `json:"id"`
	Status Status      `json:"status"`
	Cached bool        `json:"cached"`
	Error  string      `json:"error,omitempty"`
	Result *JSONResult `json:"result,omitempty"`
	// DroppedEvents counts the op/progress events the run's event stream
	// discarded to lagging subscribers — the same number the terminal SSE
	// event discloses.
	DroppedEvents int64 `json:"dropped_events"`
}

// errorResponse is the JSON body of every non-2xx API response.
type errorResponse struct {
	Error string `json:"error"`
}

// ListenAndServe exposes the service's HTTP API on addr until the
// process receives SIGINT or SIGTERM (the container-stop signal), then
// shuts down gracefully: the listener closes, in-flight requests get a
// 10-second drain window, and the service terminates every admitted run
// before returning. It owns the service's shutdown — callers hand it a
// fresh Service and it closes it. Both atlahsd and `atlahs -serve` are
// thin shells over this.
func ListenAndServe(svc *Service, addr string) error {
	srv := &http.Server{Addr: addr, Handler: NewHandler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		svc.log.Info("service: listening", "addr", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	svc.log.Info("service: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// NewHandler wraps a Service in its HTTP API.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", svc.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", svc.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/artifact", svc.handleArtifact)
	mux.HandleFunc("GET /v1/runs/{id}/events", svc.handleEvents)
	mux.HandleFunc("POST /v1/sweeps", svc.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", svc.handleSweepGet)
	mux.HandleFunc("GET /v1/sweeps/{id}/artifact", svc.handleSweepArtifact)
	mux.HandleFunc("GET /v1/history", svc.handleHistory)
	mux.HandleFunc("GET /v1/analyze/diff", svc.handleAnalyzeDiff)
	mux.HandleFunc("GET /v1/runs/{id}/metrics", svc.handleRunMetrics)
	mux.HandleFunc("GET /v1/runs/{id}/trace", svc.handleRunTrace)
	mux.HandleFunc("GET /metrics", svc.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", svc.handleHealthz)
	return mux
}

// readBody drains one bounded request body, rendering the error responses
// itself; ok=false means a response was already written.
func (s *Service) readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxSpecBytes+1))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return nil, false
	}
	if len(body) > maxSpecBytes {
		s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", maxSpecBytes))
		return nil, false
	}
	return body, true
}

// submitClass maps the optional X-Submitter header onto an admission
// class; absent means the shared interactive class (for /v1/runs) or the
// sweep's own class (for /v1/sweeps).
func submitClass(req *http.Request) string {
	if v := req.Header.Get("X-Submitter"); v != "" {
		return "submitter:" + v
	}
	return ""
}

func (s *Service) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, ok := s.readBody(w, req)
	if !ok {
		return
	}
	spec, err := sim.UnmarshalSpec(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	snap, err := s.SubmitIn(submitClass(req), spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	cached := snap.Cached
	if wantWait(req) && !snap.Status.Terminal() {
		waited, err := s.Wait(req.Context(), snap.ID)
		if err == nil {
			waited.Cached = cached
			snap = waited
		}
		// A wait cut short (client gone, server closing) degrades to the
		// non-terminal snapshot: a 202 the client can poll on.
	}
	s.writeRun(w, snap, cached)
}

func (s *Service) handleGet(w http.ResponseWriter, req *http.Request) {
	snap, ok := s.Get(req.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	// The cache verdict is decided before any waiting: a run that was
	// already done when the request arrived is a hit; one this request
	// watched finish required simulation work, exactly like the submit
	// that started it.
	hit := snap.Status == StatusDone
	if wantWait(req) && !snap.Status.Terminal() {
		if waited, err := s.Wait(req.Context(), snap.ID); err == nil {
			snap = waited
		}
	}
	s.writeRun(w, snap, hit)
}

func (s *Service) handleArtifact(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	snap, ok := s.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	if snap.Status != StatusDone {
		w.Header().Set("Cache-Status", "miss")
		s.writeError(w, http.StatusNotFound, fmt.Errorf("run %s is %s; the artifact exists once it is done", id, snap.Status))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Status", "hit")
	if _, err := w.Write(snap.Artifact); err != nil {
		s.log.Warn("service: writing artifact", "run", id, "err", err)
	}
}

func (s *Service) handleEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	sub, ok := s.Subscribe(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	defer sub.Close()
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	// Detach when the client goes away so the run stops buffering for us.
	stop := req.Context().Done()
	go func() {
		<-stop
		sub.Close()
	}()
	for ev := range sub.C {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return
		}
		flusher.Flush()
	}
}

// sweepRequest is the JSON body of POST /v1/sweeps: N atlahs.spec/v1
// objects submitted as one unit.
type sweepRequest struct {
	Schema string            `json:"schema"`
	Specs  []json.RawMessage `json:"specs"`
}

// sweepResponse is the JSON body of POST /v1/sweeps and GET
// /v1/sweeps/{id}: the combined view plus one runResponse per unique run.
type sweepResponse struct {
	ID     string        `json:"id"`
	Specs  int           `json:"specs"`
	Total  int           `json:"total"`
	Done   int           `json:"done"`
	Failed int           `json:"failed"`
	Cached int           `json:"cached"`
	Runs   []runResponse `json:"runs"`
}

// sweepArtifactResponse is the combined artifact view of GET
// /v1/sweeps/{id}/artifact: every member run's atlahs.results/v1 artifact
// keyed by run id (keys sort, so the bytes are deterministic).
type sweepArtifactResponse struct {
	Schema string                     `json:"schema"`
	ID     string                     `json:"id"`
	Runs   map[string]json.RawMessage `json:"runs"`
}

// SweepSetSchema identifies the combined artifact document of GET
// /v1/sweeps/{id}/artifact.
const SweepSetSchema = "atlahs.sweepset/v1"

func (s *Service) handleSweepSubmit(w http.ResponseWriter, req *http.Request) {
	body, ok := s.readBody(w, req)
	if !ok {
		return
	}
	var sr sweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding sweep: %w", err))
		return
	}
	if sr.Schema != SweepSchema {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown sweep schema %q (want %q)", sr.Schema, SweepSchema))
		return
	}
	specs := make([]sim.Spec, len(sr.Specs))
	for i, raw := range sr.Specs {
		spec, err := sim.UnmarshalSpec(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("sweep spec %d: %w", i, err))
			return
		}
		specs[i] = spec
	}
	snap, err := s.SubmitSweep(submitClass(req), specs)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Everything answered from the cache means no simulation was needed
	// for the whole sweep — the batch analogue of a run's cache hit.
	hit := snap.Cached == len(snap.Runs)
	if wantWait(req) && !snap.Terminal() {
		cachedByID := make(map[string]bool, len(snap.Runs))
		for _, rs := range snap.Runs {
			cachedByID[rs.ID] = rs.Cached
		}
		if waited, err := s.WaitSweep(req.Context(), snap.ID); err == nil {
			for i := range waited.Runs {
				if cachedByID[waited.Runs[i].ID] {
					waited.Runs[i].Cached = true
					waited.Cached++
				}
			}
			snap = waited
		}
	}
	s.writeSweep(w, snap, hit)
}

func (s *Service) handleSweepGet(w http.ResponseWriter, req *http.Request) {
	snap, ok := s.GetSweep(req.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", req.PathValue("id")))
		return
	}
	// As on run GETs, the verdict predates any waiting.
	hit := snap.Done == len(snap.Runs)
	if wantWait(req) && !snap.Terminal() {
		if waited, err := s.WaitSweep(req.Context(), snap.ID); err == nil {
			snap = waited
		}
	}
	s.writeSweep(w, snap, hit)
}

func (s *Service) handleSweepArtifact(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	runs, ok := s.sweepRuns(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	resp := sweepArtifactResponse{Schema: SweepSetSchema, ID: id, Runs: make(map[string]json.RawMessage, len(runs))}
	for _, r := range runs {
		rs := r.snapshot()
		if rs.Status != StatusDone {
			w.Header().Set("Cache-Status", "miss")
			s.writeError(w, http.StatusNotFound, fmt.Errorf("sweep %s: run %s is %s; the combined artifact exists once every run is done", id, rs.ID, rs.Status))
			return
		}
		resp.Runs[rs.ID] = rs.Artifact
	}
	w.Header().Set("Cache-Status", "hit")
	s.writeJSON(w, http.StatusOK, resp)
}

// wantWait reports whether the request asked to block until the run
// finishes (?wait=1 or ?wait=true).
func wantWait(req *http.Request) bool {
	switch req.URL.Query().Get("wait") {
	case "1", "true":
		return true
	}
	return false
}

// writeRun renders one run snapshot with its Cache-Status header: hit
// when the response was served by the content-addressed cache without
// simulating, miss otherwise.
func (s *Service) writeRun(w http.ResponseWriter, snap Snapshot, hit bool) {
	setCacheStatus(w, hit)
	status := http.StatusOK
	if !snap.Status.Terminal() {
		status = http.StatusAccepted
	}
	s.writeJSON(w, status, newRunResponse(snap))
}

// writeSweep renders one combined sweep view; 200 once every member run
// is terminal, 202 while any is still queued or running.
func (s *Service) writeSweep(w http.ResponseWriter, snap BatchSnapshot, hit bool) {
	setCacheStatus(w, hit)
	resp := sweepResponse{
		ID:     snap.ID,
		Specs:  snap.Specs,
		Total:  len(snap.Runs),
		Done:   snap.Done,
		Failed: snap.Failed,
		Cached: snap.Cached,
	}
	for _, rs := range snap.Runs {
		resp.Runs = append(resp.Runs, newRunResponse(rs))
	}
	status := http.StatusOK
	if !snap.Terminal() {
		status = http.StatusAccepted
	}
	s.writeJSON(w, status, resp)
}

// newRunResponse renders one snapshot into the wire shape.
func newRunResponse(snap Snapshot) runResponse {
	resp := runResponse{
		ID:            snap.ID,
		Status:        snap.Status,
		Cached:        snap.Cached,
		Error:         snap.Err,
		DroppedEvents: snap.Dropped,
	}
	if snap.Result != nil {
		resp.Result = NewJSONResult(snap.Result)
	}
	return resp
}

func setCacheStatus(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set("Cache-Status", "hit")
	} else {
		w.Header().Set("Cache-Status", "miss")
	}
}

// writeError renders one API error as JSON.
func (s *Service) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeJSON writes one JSON body with the right headers. Encode/write
// errors cannot reach the client (the status line is gone), so they are
// logged instead of silently dropped.
func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("service: writing response", "type", fmt.Sprintf("%T", v), "err", err)
	}
}
