// Package service turns the sim facade into a resident simulation
// service: the layer behind atlahsd and `atlahs -serve`.
//
// Three pieces compose. A content-addressed run cache keys every
// submission by sim.Fingerprint — the canonical result-affecting spec
// encoding plus the resolved workload digest — so identical
// re-submissions return the finished sim.Result and its exported
// atlahs.results/v1 artifact without simulating again, and concurrent
// duplicates collapse onto the in-flight run (single-flight). This is
// sound because Results are deterministic: equal fingerprints imply
// bit-identical results. With an ArtifactDir the cache is also durable:
// every completed run persists its artifact plus a metadata sidecar to
// the results.Store, and a restarted service rebuilds its run index from
// those artifacts on boot, so re-submissions keep hitting across process
// restarts (corrupt or partial artifacts are skipped with a logged
// warning, never trusted). A bounded admission queue — fair-share across
// submitter classes, FIFO within one — feeds a fixed pool of executor
// slots, and the service's engine-worker budget is divided across those
// slots the way experiments.ForEach divides a sweep budget, so concurrent
// jobs share the host instead of multiplying across it. Batch sweeps
// (SubmitSweep, POST /v1/sweeps) admit N specs as one unit, deduplicated
// against each other and the cache, each sweep its own fairness class so
// a giant batch cannot starve interactive submissions. Every run streams
// its sim.Observer callbacks to any number of subscribers — the bridge
// the HTTP server's SSE endpoint drains.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"time"

	"atlahs/internal/telemetry"
	"atlahs/results"
	"atlahs/sim"
)

// Config sizes a Service. The zero value is usable: a 64-deep queue, 2
// concurrent jobs, a GOMAXPROCS engine-worker budget, 256 cached runs,
// and no artifact directory.
type Config struct {
	// Queue bounds how many submitted-but-not-started jobs the service
	// holds; past it, Submit fails fast with ErrQueueFull instead of
	// accepting unbounded backlog. Default 64.
	Queue int
	// Jobs is how many simulations execute concurrently. Default 2.
	Jobs int
	// Workers is the total engine-worker budget shared across the Jobs
	// executor slots (each slot gets Workers/Jobs, at least 1). <= 0 means
	// GOMAXPROCS. A spec asking for fewer workers than its slot's share
	// keeps its own request; asking for more (or for -1, "as many as
	// allowed") is clamped to the share.
	Workers int
	// Cache bounds how many completed runs stay addressable; the oldest
	// completed runs are evicted first, and queued or running jobs are
	// never evicted. Default 256.
	Cache int
	// ArtifactDir, when non-empty, persists every completed run's
	// atlahs.results/v1 artifact to a results.Store at <dir>/<run id>.json
	// (plus a metadata sidecar under <dir>/meta/), and rebuilds the run
	// index from those artifacts on the next boot.
	ArtifactDir string
	// Timeline, when true, records every executed run's execution
	// timeline (Chrome trace-event JSON; see sim.Spec.Timeline) and
	// serves it at GET /v1/runs/{id}/trace; with an ArtifactDir the trace
	// also persists under <dir>/traces/. Off by default: recording
	// touches every op completion.
	Timeline bool
	// Logger receives structured operational logs (run lifecycle with
	// id/fingerprint/class attrs, skipped artifacts on rebuild, failed
	// response writes). Nil means slog.Default().
	Logger *slog.Logger
}

// withDefaults fills the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Jobs <= 0 {
		c.Jobs = 2
	}
	if c.Workers <= 0 {
		c.Workers = -1 // resolved per spec via sim's GOMAXPROCS convention
	}
	if c.Cache <= 0 {
		c.Cache = 256
	}
	return c
}

// Status is a run's lifecycle state.
type Status string

// Run states: queued (admitted, waiting for an executor slot), running,
// done (result and artifact available), failed.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s == StatusDone || s == StatusFailed }

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded job queue is at
	// capacity.
	ErrQueueFull = errors.New("service: job queue is full; retry later")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("service: closed")
)

// Snapshot is a point-in-time copy of one run's state. Result and
// Artifact are shared read-only values; callers must not mutate them.
type Snapshot struct {
	// ID is the run's content address: "r_" plus the leading 16 hex digits
	// of the spec's fingerprint.
	ID string
	// Status is the lifecycle state at snapshot time.
	Status Status
	// Cached reports that this submission was answered by the
	// content-addressed cache — an earlier run (finished or in flight) with
	// the same fingerprint — rather than by scheduling a new simulation.
	// Snapshots from Get/Wait leave it false; it describes a submission.
	Cached bool
	// Result is the deterministic simulation result, once done.
	Result *sim.Result
	// Artifact is the run's encoded atlahs.results/v1 sweep, once done.
	Artifact []byte
	// Err is the failure message, once failed.
	Err string
	// Dropped counts the op/progress events discarded to lagging
	// subscribers of this run's event stream so far.
	Dropped int64
}

// Service is a resident simulation runner; create with New, stop with
// Close. All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	store   *results.Store
	log     *slog.Logger
	metrics *serviceMetrics
	started time.Time

	ctx    context.Context
	cancel context.CancelFunc
	sched  *jobQueue
	wg     sync.WaitGroup
	// resolveSem bounds how many submissions resolve workloads (read
	// files, convert traces) concurrently on caller goroutines, so
	// admission work cannot multiply past the executor pool's own
	// parallelism.
	resolveSem chan struct{}

	mu     sync.Mutex
	closed bool
	runs   map[string]*run
	// lookaside short-circuits re-submissions of self-contained specs: it
	// maps the SHA-256 of a spec's canonical wire encoding (execution
	// knobs normalised away) to the run id, skipping workload resolution
	// entirely. Sound because a self-contained spec's wire encoding alone
	// determines its Fingerprint (see sim.Spec.SelfContained); file-backed
	// specs never enter it.
	lookaside map[string]string
	// doneOrder lists completed run ids oldest-first — the cache's
	// eviction order.
	doneOrder []string
	// batches indexes submitted sweeps by their content-derived batch id;
	// batchOrder is their eviction order, oldest first.
	batches    map[string]*batch
	batchOrder []string
}

// New starts a service: cfg.Jobs executor goroutines consuming the
// fair-share admission queue. With an ArtifactDir the run index is first
// rebuilt from the store's surviving artifacts, so the content-addressed
// cache answers re-submissions from before the restart. The only error is
// a broken artifact directory.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	metrics := newServiceMetrics()
	s := &Service{
		cfg:        cfg,
		log:        cfg.Logger,
		metrics:    metrics,
		started:    time.Now(),
		sched:      newJobQueue(cfg.Queue, metrics.queueDepth),
		runs:       make(map[string]*run),
		lookaside:  make(map[string]string),
		batches:    make(map[string]*batch),
		resolveSem: make(chan struct{}, cfg.Jobs),
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	if cfg.ArtifactDir != "" {
		store, err := results.NewStore(cfg.ArtifactDir)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.rebuild()
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				r, ok := s.sched.pop()
				if !ok {
					return
				}
				s.execute(r)
			}
		}()
	}
	return s, nil
}

// Store returns the artifact store, nil when no ArtifactDir is configured.
func (s *Service) Store() *results.Store { return s.store }

// RunID computes the content address Submit would file the spec under.
func RunID(spec sim.Spec) (string, error) {
	fp, err := sim.Fingerprint(spec)
	if err != nil {
		return "", err
	}
	return "r_" + fp[:16], nil
}

// Submit admits one spec: it validates, computes the run's content
// address, and either returns the existing run at that address (Cached
// snapshot — finished runs return their result immediately, in-flight
// runs are joined without a second simulation) or enqueues a new job.
// A non-nil Observer is rejected — observation happens through Subscribe
// — and a full queue fails with ErrQueueFull. The run queues in the
// default interactive admission class; SubmitIn names one explicitly.
func (s *Service) Submit(spec sim.Spec) (Snapshot, error) {
	return s.SubmitIn(DefaultClass, spec)
}

// SubmitIn is Submit with an explicit admission class. Executor slots are
// shared round-robin across classes with pending work (FIFO within one),
// so submissions in one class — a submitter, a batch sweep — cannot
// starve the others. An empty class means DefaultClass.
func (s *Service) SubmitIn(class string, spec sim.Spec) (Snapshot, error) {
	if class == "" {
		class = DefaultClass
	}
	if spec.Observer != nil {
		return Snapshot{}, fmt.Errorf("service: specs may not carry an Observer; use Subscribe on the returned run id")
	}
	// Fast path: a self-contained re-submission is recognised by its
	// canonical wire bytes alone, without regenerating and digesting the
	// workload. Failed runs fall through to the full path, which retries
	// them.
	lookKey := s.lookasideKey(spec)
	if lookKey != "" {
		s.mu.Lock()
		if id, ok := s.lookaside[lookKey]; ok {
			if r, ok := s.runs[id]; ok {
				snap := r.snapshot()
				if snap.Status != StatusFailed {
					s.mu.Unlock()
					s.metrics.cacheRequests.With("lookaside").Inc()
					if !snap.Status.Terminal() {
						s.metrics.singleflight.Inc()
					}
					snap.Cached = true
					return snap, nil
				}
			}
		}
		s.mu.Unlock()
	}
	// Resolve the workload once, under the admission bound: the pinned
	// spec carries its resolved schedule into the executor, so a cold run
	// converts its traces exactly once.
	s.resolveSem <- struct{}{}
	pinned, fp, err := sim.ResolveSpec(spec)
	<-s.resolveSem
	if err != nil {
		return Snapshot{}, err
	}
	id := "r_" + fp[:16]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	if r, ok := s.runs[id]; ok {
		snap := r.snapshot()
		if snap.Status != StatusFailed {
			if lookKey != "" {
				s.lookaside[lookKey] = id
				r.lookKeys = append(r.lookKeys, lookKey)
			}
			s.mu.Unlock()
			s.metrics.cacheRequests.With("hit").Inc()
			if !snap.Status.Terminal() {
				s.metrics.singleflight.Inc()
			}
			snap.Cached = true
			return snap, nil
		}
		// A failure is not a result: drop the terminal failed run and
		// retry, so a transient cause (full disk, a racing file write)
		// does not poison the content address forever.
		s.dropLocked(id)
	}
	r := newRun(id, fp, pinned)
	r.class = class
	r.mx = s.metrics
	if err := s.sched.push(class, r); err != nil {
		s.mu.Unlock()
		return Snapshot{}, err
	}
	s.runs[id] = r
	if lookKey != "" {
		s.lookaside[lookKey] = id
		r.lookKeys = append(r.lookKeys, lookKey)
	}
	s.mu.Unlock()
	s.metrics.cacheRequests.With("miss").Inc()
	return r.snapshot(), nil
}

// dropLocked forgets a terminal run: its address, lookaside keys and
// eviction-order entry. The caller holds s.mu.
func (s *Service) dropLocked(id string) {
	r, ok := s.runs[id]
	if !ok {
		return
	}
	for _, key := range r.lookKeys {
		delete(s.lookaside, key)
	}
	delete(s.runs, id)
	for i, done := range s.doneOrder {
		if done == id {
			s.doneOrder = append(s.doneOrder[:i], s.doneOrder[i+1:]...)
			break
		}
	}
}

// lookasideKey computes the fast-path cache key: the SHA-256 of the
// spec's canonical wire encoding with the result-neutral execution knobs
// normalised away. Empty when the spec is file-backed (the key would go
// stale with the file) or cannot be marshalled (third-party config
// without a wire type) — those take the full fingerprint path.
func (s *Service) lookasideKey(spec sim.Spec) string {
	if !spec.SelfContained() {
		return ""
	}
	spec.Workers = 0
	spec.ProgressEvery = 0
	b, err := sim.MarshalSpec(spec)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Get returns the run at a content address.
func (s *Service) Get(id string) (Snapshot, bool) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	return r.snapshot(), true
}

// Wait blocks until the run reaches a terminal state (returning its final
// snapshot) or ctx ends (returning ctx's error). An already-finished run
// always returns its snapshot, even on a context that is already
// cancelled — the answer exists, no waiting happened.
func (s *Service) Wait(ctx context.Context, id string) (Snapshot, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("service: unknown run %q", id)
	}
	// Resolve the done-and-cancelled race deterministically in favour of
	// the snapshot.
	select {
	case <-r.done:
		return r.snapshot(), nil
	default:
	}
	select {
	case <-r.done:
		return r.snapshot(), nil
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
}

// Close stops the service: no new submissions, running jobs are
// cancelled, queued jobs drain as failures, and every run reaches a
// terminal state before Close returns.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.sched.close()
	s.wg.Wait()
}

// shareWorkers resolves the engine-worker count one job runs with: the
// spec's own request, clamped to this service's per-slot share of the
// worker budget. Backends that cannot shard always run serially (their
// specs were validated to ask for at most one worker).
func (s *Service) shareWorkers(spec sim.Spec) int {
	name := spec.Backend
	if name == "" {
		name = "lgs"
	}
	def, ok := sim.Lookup(name)
	if !ok || !def.Parallel {
		return spec.Workers
	}
	budget := s.cfg.Workers
	if budget < 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	share := budget / s.cfg.Jobs
	if share < 1 {
		share = 1
	}
	w := spec.Workers
	if w == 0 {
		return 0 // the spec asked for serial; honour it
	}
	if w < 0 || w > share {
		return share
	}
	return w
}

// execute runs one job on an executor slot.
func (s *Service) execute(r *run) {
	s.metrics.execBusy.Inc()
	defer s.metrics.execBusy.Dec()
	r.setStatus(StatusRunning)
	s.log.Info("service: run started", "run", r.id, "fingerprint", r.fp, "class", r.class, "cache", "miss")
	spec := r.spec
	spec.Workers = s.shareWorkers(spec)
	spec.Observer = r
	if s.cfg.Timeline {
		r.timeline = telemetry.NewTimeline(0)
		spec.Timeline = r.timeline
	}
	start := time.Now()
	res, err := sim.Run(s.ctx, spec)
	wall := time.Since(start)
	s.metrics.runWall.Observe(wall.Seconds())
	if err != nil {
		s.finishRun(r, StatusFailed, wall, err)
		return
	}
	s.metrics.foldRun(res.Metrics)
	sweep := runSweep(r.id, &r.spec, res)
	var buf bytes.Buffer
	if err := results.EncodeJSON(&buf, sweep); err != nil {
		s.finishRun(r, StatusFailed, wall, fmt.Errorf("service: encoding run artifact: %w", err))
		return
	}
	if s.store != nil {
		if err := s.store.Save(sweep); err != nil {
			s.finishRun(r, StatusFailed, wall, err)
			return
		}
		// The sidecar makes the artifact trustworthy again after a restart;
		// a run whose sidecar cannot be written is failed like one whose
		// artifact cannot, so "done with a store" always means "restorable".
		if err := s.saveMeta(r, res); err != nil {
			s.finishRun(r, StatusFailed, wall, err)
			return
		}
		// A trace is observability, not a result: failing to persist one
		// degrades to in-memory serving rather than failing the run.
		if r.timeline != nil {
			if err := s.store.SaveTrace(r.id, r.timeline.Encode); err != nil {
				s.log.Warn("service: persisting run trace", "run", r.id, "err", err)
			}
		}
	}
	r.complete(res, buf.Bytes())
	s.finishRun(r, StatusDone, wall, nil)
}

// finishRun records a terminal run everywhere it must land: the failure
// state (done runs were completed by the caller), the outcome counter,
// the structured log, and the eviction order.
func (s *Service) finishRun(r *run, st Status, wall time.Duration, err error) {
	if err != nil {
		r.fail(err)
	}
	s.metrics.runs.With(string(st)).Inc()
	if err != nil {
		s.log.Warn("service: run failed", "run", r.id, "fingerprint", r.fp, "class", r.class, "wall", wall, "err", err)
	} else {
		s.log.Info("service: run finished", "run", r.id, "fingerprint", r.fp, "class", r.class, "wall", wall, "dropped_events", r.drops.Load())
	}
	s.noteDone(r.id)
}

// noteDone records a terminal run (done or failed — both stay
// addressable, both count against the bound) for cache-eviction ordering
// and evicts past it.
func (s *Service) noteDone(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.cfg.Cache {
		evict := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if r, ok := s.runs[evict]; ok {
			for _, key := range r.lookKeys {
				delete(s.lookaside, key)
			}
			delete(s.runs, evict)
		}
	}
	// Retried failures re-enter doneOrder; the dropLocked in Submit keeps
	// at most one entry per id, so no double-eviction bookkeeping is
	// needed here.
}

// runSweep exports one run's deterministic outcome as its
// atlahs.results/v1 artifact: a per-rank completion table named by the
// run id, with the headline scalars as derived values. Wall-clock and
// worker-count measurements are deliberately absent — the artifact must
// be byte-identical across re-simulations of the same fingerprint.
func runSweep(id string, spec *sim.Spec, res *sim.Result) *results.Sweep {
	sw := results.NewSweep(id, "atlahs service run "+id, "service")
	sw.SetParam("backend", res.Backend)
	sw.SetParam("ranks", strconv.Itoa(res.Ranks))
	if len(spec.Jobs) > 0 {
		sw.SetParam("jobs", strconv.Itoa(len(spec.Jobs)))
	}
	sw.AddColumn("rank", results.Int, "")
	sw.AddColumn("end", results.Duration, "ps")
	for rank, end := range res.RankEnd {
		sw.MustAddRow(int64(rank), int64(end))
	}
	sw.SetDerived("runtime_ps", float64(res.Runtime))
	sw.SetDerived("ops", float64(res.Ops))
	sw.SetDerived("events", float64(res.Events))
	sw.SetDerived("done_calcs", float64(res.Done.Calcs))
	sw.SetDerived("done_sends", float64(res.Done.Sends))
	sw.SetDerived("done_recvs", float64(res.Done.Recvs))
	return sw
}
