package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"atlahs/internal/backend"
	"atlahs/results"
	"atlahs/sim"
)

// The test backends wrap the real LGS model so runs produce real results,
// while counting (and optionally gating) factory calls: the cache's
// "exactly one simulation" claims are asserted on simCount, and blockGate
// lets tests hold a run mid-flight deterministically.
var (
	simCount  atomic.Int64
	blockGate = make(chan struct{})
)

func init() {
	sim.Register(sim.Definition{
		Name:     "countsim",
		Parallel: true,
		New: func(cfg any, env sim.Env) (sim.Backend, error) {
			simCount.Add(1)
			return backend.NewLGS(backend.AIParams()), nil
		},
	})
	sim.Register(sim.Definition{
		Name:     "blocksim",
		Parallel: true,
		New: func(cfg any, env sim.Env) (sim.Backend, error) {
			<-blockGate
			return backend.NewLGS(backend.AIParams()), nil
		},
	})
}

// countSpec builds a countsim spec whose fingerprint varies with tag.
func countSpec(tag int64) sim.Spec {
	return sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 1024 + tag, Phases: 2},
		Backend:   "countsim",
	}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func submitAndWait(t *testing.T, svc *Service, spec sim.Spec) Snapshot {
	t.Helper()
	snap, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	done.Cached = snap.Cached
	return done
}

// TestSubmitCachesIdenticalSpecs is the subsystem's headline property:
// submitting the same spec twice performs exactly one simulation, and the
// second submission returns the cached result with a byte-identical
// artifact.
func TestSubmitCachesIdenticalSpecs(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := countSpec(1000)
	before := simCount.Load()

	first := submitAndWait(t, svc, spec)
	if first.Status != StatusDone || first.Cached {
		t.Fatalf("first submission: %+v", first)
	}
	if first.Result == nil || len(first.Artifact) == 0 {
		t.Fatal("first submission finished without result or artifact")
	}
	if got := simCount.Load() - before; got != 1 {
		t.Fatalf("first submission ran %d simulations", got)
	}

	second, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Status != StatusDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.ID != first.ID {
		t.Fatalf("content address changed: %s vs %s", second.ID, first.ID)
	}
	if !bytes.Equal(first.Artifact, second.Artifact) {
		t.Fatal("cached artifact is not byte-identical")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatal("cached result differs")
	}
	if got := simCount.Load() - before; got != 1 {
		t.Fatalf("two identical submissions ran %d simulations, want exactly 1", got)
	}

	// A result-affecting change must miss the cache.
	other := submitAndWait(t, svc, countSpec(1001))
	if other.Cached || other.ID == first.ID {
		t.Fatalf("different spec was served from cache: %+v", other)
	}
	if got := simCount.Load() - before; got != 2 {
		t.Fatalf("expected 2 distinct simulations, got %d", got)
	}
}

// TestConcurrentDuplicatesSingleFlight: a duplicate submitted while the
// first is still in flight joins that run instead of simulating twice.
func TestConcurrentDuplicatesSingleFlight(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 2048},
		Backend:   "blocksim",
	}
	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatalf("first submission cached: %+v", first)
	}
	dup, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached || dup.ID != first.ID {
		t.Fatalf("in-flight duplicate not joined: %+v", dup)
	}
	if dup.Status.Terminal() {
		t.Fatalf("duplicate claims a result before the run finished: %+v", dup)
	}
	blockGate <- struct{}{} // release exactly the one blocked factory call
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("run did not finish: %+v", done)
	}
}

// TestQueueBound: past the configured backlog, Submit fails fast with
// ErrQueueFull instead of queueing unboundedly.
func TestQueueBound(t *testing.T) {
	svc := newService(t, Config{Jobs: 1, Queue: 1})
	blocked := sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 4096},
		Backend:   "blocksim",
	}
	first, err := svc.Submit(blocked)
	if err != nil {
		t.Fatal(err)
	}
	// The executor slot is busy (blocked in the factory); wait until the
	// job has actually left the queue so the next submission occupies it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := svc.Get(first.ID)
		if snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second := sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 8192},
		Backend:   "blocksim",
	}
	if _, err := svc.Submit(second); err != nil {
		t.Fatalf("queue depth 1 rejected its first queued job: %v", err)
	}
	third := sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 16384},
		Backend:   "blocksim",
	}
	if _, err := svc.Submit(third); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: %v, want ErrQueueFull", err)
	}
	blockGate <- struct{}{}
	blockGate <- struct{}{}
	for _, id := range []string{first.ID} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := svc.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
}

// TestEventStream: a subscriber attached before the run executes sees
// started first and the terminal event last; a subscriber attached after
// completion still receives the terminal event.
func TestEventStream(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := sim.Spec{
		Synthetic:     &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 1024, Phases: 2},
		Backend:       "blocksim",
		ProgressEvery: 5,
	}
	snap, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := svc.Subscribe(snap.ID)
	if !ok {
		t.Fatal("cannot subscribe to a queued run")
	}
	blockGate <- struct{}{}
	var evs []Event
	for ev := range sub.C {
		evs = append(evs, ev)
	}
	if len(evs) < 2 {
		t.Fatalf("only %d events", len(evs))
	}
	if evs[0].Type != EventStarted {
		t.Fatalf("first event %q, want %q", evs[0].Type, EventStarted)
	}
	last := evs[len(evs)-1]
	if last.Type != EventDone {
		t.Fatalf("last event %q, want %q", last.Type, EventDone)
	}
	var sawProgress bool
	for _, ev := range evs[1 : len(evs)-1] {
		if ev.Type == EventProgress {
			sawProgress = true
		}
		if ev.Run != snap.ID {
			t.Fatalf("event for run %q on %q's stream", ev.Run, snap.ID)
		}
	}
	if !sawProgress {
		t.Fatal("no progress events despite ProgressEvery")
	}

	late, ok := svc.Subscribe(snap.ID)
	if !ok {
		t.Fatal("cannot subscribe to a finished run")
	}
	ev, open := <-late.C
	if !open || ev.Type != EventDone {
		t.Fatalf("late subscriber got (%+v, %v), want the terminal event", ev, open)
	}
	if _, open := <-late.C; open {
		t.Fatal("late subscription did not close after the terminal event")
	}
}

// TestArtifactStore: with an ArtifactDir the run's sweep is persisted at
// <dir>/<id>.json, loads back through the store, and matches the
// in-memory artifact bytes.
func TestArtifactStore(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t, Config{Jobs: 1, ArtifactDir: dir})
	snap := submitAndWait(t, svc, countSpec(2000))
	if snap.Status != StatusDone {
		t.Fatalf("run failed: %+v", snap)
	}
	sweep, err := svc.Store().Load(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Name != snap.ID || len(sweep.Rows) != snap.Result.Ranks {
		t.Fatalf("stored sweep %q has %d rows, want %q with %d", sweep.Name, len(sweep.Rows), snap.ID, snap.Result.Ranks)
	}
	var buf bytes.Buffer
	if err := results.EncodeJSON(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), snap.Artifact) {
		t.Fatal("persisted artifact differs from the served one")
	}
}

// TestCacheEviction: past the Cache bound the oldest completed run loses
// its address, and resubmitting it simulates again.
func TestCacheEviction(t *testing.T) {
	svc := newService(t, Config{Jobs: 1, Cache: 1})
	before := simCount.Load()
	first := submitAndWait(t, svc, countSpec(3000))
	_ = submitAndWait(t, svc, countSpec(3001))
	if _, ok := svc.Get(first.ID); ok {
		t.Fatal("oldest run survived a Cache=1 bound")
	}
	re := submitAndWait(t, svc, countSpec(3000))
	if re.Cached {
		t.Fatal("evicted run served from cache")
	}
	if got := simCount.Load() - before; got != 3 {
		t.Fatalf("ran %d simulations, want 3 (evicted entry re-simulated)", got)
	}
}

// TestFileBackedSpecsRedigestContent: the lookaside fast path must never
// apply to file-backed specs — when the file's contents change under the
// same path, a re-submission is a new simulation, not a cache hit.
func TestFileBackedSpecsRedigestContent(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	dir := t.TempDir()
	path := dir + "/work.goal"
	write := func(ranks int) {
		t.Helper()
		var buf bytes.Buffer
		if err := sim.WriteGOALText(&buf, sim.NewBuilder(ranks).MustBuild()); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(2)
	spec := sim.Spec{GoalPath: path, Backend: "countsim"}
	before := simCount.Load()
	first := submitAndWait(t, svc, spec)
	if first.Status != StatusDone {
		t.Fatalf("first run: %+v", first)
	}
	write(3) // same path, different workload
	second := submitAndWait(t, svc, spec)
	if second.Cached || second.ID == first.ID {
		t.Fatalf("changed file served from cache: %+v vs %+v", second, first)
	}
	if second.Result.Ranks != 3 {
		t.Fatalf("second run simulated %d ranks, want the new file's 3", second.Result.Ranks)
	}
	if got := simCount.Load() - before; got != 2 {
		t.Fatalf("ran %d simulations, want 2", got)
	}
}

// TestLookasideIgnoresExecutionKnobs: a self-contained re-submission with
// a different worker request is still the same run.
func TestLookasideIgnoresExecutionKnobs(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := countSpec(5000)
	first := submitAndWait(t, svc, spec)
	spec.Workers = -1
	spec.ProgressEvery = 99
	again, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.ID != first.ID {
		t.Fatalf("worker knob broke the content address: %+v vs %+v", again, first)
	}
}

// TestShareWorkers pins how the engine-worker budget is split across
// executor slots.
func TestShareWorkers(t *testing.T) {
	svc := newService(t, Config{Jobs: 2, Workers: 8})
	lgs := func(w int) sim.Spec {
		return sim.Spec{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4}, Workers: w}
	}
	for _, c := range []struct {
		name string
		spec sim.Spec
		want int
	}{
		{"all-you-have", lgs(-1), 4},
		{"above-share", lgs(100), 4},
		{"below-share", lgs(2), 2},
		{"explicit-serial", lgs(0), 0},
		{"pkt-serial", sim.Spec{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4}, Backend: "pkt", Workers: 1}, 1},
	} {
		if got := svc.shareWorkers(c.spec); got != c.want {
			t.Fatalf("%s: shareWorkers = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestSubmitRejects(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	if _, err := svc.Submit(sim.Spec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := svc.Submit(sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 2},
		Observer:  sim.NopObserver{},
	}); err == nil {
		t.Fatal("spec with an Observer accepted")
	}
}

// TestFailedRunReportsError: a spec whose workload cannot resolve at run
// time (Validate cannot see file contents) terminates as failed with the
// error preserved, and is still addressable.
func TestFailedRunReportsError(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	// The fingerprint resolves the workload, so a nonexistent path fails at
	// Submit...
	if _, err := svc.Submit(sim.Spec{GoalPath: t.TempDir() + "/missing.goal"}); err == nil {
		t.Fatal("unresolvable workload accepted")
	}
	// ...while a config the factory rejects only fails inside the run.
	snap, err := svc.Submit(sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4},
		Backend:   "pkt",
		Config:    sim.PktConfig{HostsPerToR: 4, Oversub: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusFailed || done.Err == "" {
		t.Fatalf("broken config produced %+v, want a failed run with its error", done)
	}
	// A failure is not a result: re-submitting the same spec must retry
	// (fresh run, not a cache hit), never replay the stale failure.
	retry, err := svc.Submit(sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4},
		Backend:   "pkt",
		Config:    sim.PktConfig{HostsPerToR: 4, Oversub: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if retry.Cached {
		t.Fatalf("failed run served as a cache hit: %+v", retry)
	}
	again, err := svc.Wait(ctx, retry.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != StatusFailed {
		t.Fatalf("retried run: %+v", again)
	}
}

// TestCloseDrains: Close terminates every admitted run.
func TestCloseDrains(t *testing.T) {
	svc, err := New(Config{Jobs: 1, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Submit(countSpec(4000))
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	done, ok := svc.Get(snap.ID)
	if !ok {
		t.Fatal("run vanished on Close")
	}
	if !done.Status.Terminal() {
		t.Fatalf("run left in state %s after Close", done.Status)
	}
	if _, err := svc.Submit(countSpec(4001)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}
