package service

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atlahs/internal/backend"
	"atlahs/results"
	"atlahs/sim"
)

// The test backends wrap the real LGS model so runs produce real results,
// while counting (and optionally gating) factory calls: the cache's
// "exactly one simulation" claims are asserted on simCount, blockGate
// lets tests hold a run mid-flight deterministically, gateEntered /
// gateRelease signal entry into (and control exit from) a gated factory,
// and orderSeen records the execution order of ordersim runs by seed.
var (
	simCount    atomic.Int64
	blockGate   = make(chan struct{})
	gateEntered = make(chan struct{})
	gateRelease = make(chan struct{})
	orderMu     sync.Mutex
	orderSeen   []uint64
)

func init() {
	sim.Register(sim.Definition{
		Name:     "countsim",
		Parallel: true,
		New: func(cfg any, env sim.Env) (sim.Backend, error) {
			simCount.Add(1)
			return backend.NewLGS(backend.AIParams()), nil
		},
	})
	sim.Register(sim.Definition{
		Name:     "blocksim",
		Parallel: true,
		New: func(cfg any, env sim.Env) (sim.Backend, error) {
			<-blockGate
			return backend.NewLGS(backend.AIParams()), nil
		},
	})
	sim.Register(sim.Definition{
		Name:     "gatesim",
		Parallel: true,
		New: func(cfg any, env sim.Env) (sim.Backend, error) {
			gateEntered <- struct{}{}
			<-gateRelease
			return backend.NewLGS(backend.AIParams()), nil
		},
	})
	sim.Register(sim.Definition{
		Name:     "ordersim",
		Parallel: true,
		New: func(cfg any, env sim.Env) (sim.Backend, error) {
			orderMu.Lock()
			orderSeen = append(orderSeen, env.Seed)
			orderMu.Unlock()
			return backend.NewLGS(backend.AIParams()), nil
		},
	})
}

// countSpec builds a countsim spec whose fingerprint varies with tag.
func countSpec(tag int64) sim.Spec {
	return sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 1024 + tag, Phases: 2}},
		Backend: "countsim"}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func submitAndWait(t *testing.T, svc *Service, spec sim.Spec) Snapshot {
	t.Helper()
	snap, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	done.Cached = snap.Cached
	return done
}

// TestSubmitCachesIdenticalSpecs is the subsystem's headline property:
// submitting the same spec twice performs exactly one simulation, and the
// second submission returns the cached result with a byte-identical
// artifact.
func TestSubmitCachesIdenticalSpecs(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := countSpec(1000)
	before := simCount.Load()

	first := submitAndWait(t, svc, spec)
	if first.Status != StatusDone || first.Cached {
		t.Fatalf("first submission: %+v", first)
	}
	if first.Result == nil || len(first.Artifact) == 0 {
		t.Fatal("first submission finished without result or artifact")
	}
	if got := simCount.Load() - before; got != 1 {
		t.Fatalf("first submission ran %d simulations", got)
	}

	second, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Status != StatusDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.ID != first.ID {
		t.Fatalf("content address changed: %s vs %s", second.ID, first.ID)
	}
	if !bytes.Equal(first.Artifact, second.Artifact) {
		t.Fatal("cached artifact is not byte-identical")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatal("cached result differs")
	}
	if got := simCount.Load() - before; got != 1 {
		t.Fatalf("two identical submissions ran %d simulations, want exactly 1", got)
	}

	// A result-affecting change must miss the cache.
	other := submitAndWait(t, svc, countSpec(1001))
	if other.Cached || other.ID == first.ID {
		t.Fatalf("different spec was served from cache: %+v", other)
	}
	if got := simCount.Load() - before; got != 2 {
		t.Fatalf("expected 2 distinct simulations, got %d", got)
	}
}

// TestConcurrentDuplicatesSingleFlight: a duplicate submitted while the
// first is still in flight joins that run instead of simulating twice.
func TestConcurrentDuplicatesSingleFlight(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 2048}},
		Backend: "blocksim"}
	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatalf("first submission cached: %+v", first)
	}
	dup, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached || dup.ID != first.ID {
		t.Fatalf("in-flight duplicate not joined: %+v", dup)
	}
	if dup.Status.Terminal() {
		t.Fatalf("duplicate claims a result before the run finished: %+v", dup)
	}
	blockGate <- struct{}{} // release exactly the one blocked factory call
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("run did not finish: %+v", done)
	}
}

// TestQueueBound: past the configured backlog, Submit fails fast with
// ErrQueueFull instead of queueing unboundedly.
func TestQueueBound(t *testing.T) {
	svc := newService(t, Config{Jobs: 1, Queue: 1})
	blocked := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 4096}},
		Backend: "blocksim"}
	first, err := svc.Submit(blocked)
	if err != nil {
		t.Fatal(err)
	}
	// The executor slot is busy (blocked in the factory); wait until the
	// job has actually left the queue so the next submission occupies it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := svc.Get(first.ID)
		if snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 8192}},
		Backend: "blocksim"}
	if _, err := svc.Submit(second); err != nil {
		t.Fatalf("queue depth 1 rejected its first queued job: %v", err)
	}
	third := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 16384}},
		Backend: "blocksim"}
	if _, err := svc.Submit(third); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: %v, want ErrQueueFull", err)
	}
	blockGate <- struct{}{}
	blockGate <- struct{}{}
	for _, id := range []string{first.ID} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := svc.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
}

// TestEventStream: a subscriber attached before the run executes sees
// started first and the terminal event last; a subscriber attached after
// completion still receives the terminal event.
func TestEventStream(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 1024, Phases: 2}},
		Backend:       "blocksim",
		ProgressEvery: 5}
	snap, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := svc.Subscribe(snap.ID)
	if !ok {
		t.Fatal("cannot subscribe to a queued run")
	}
	blockGate <- struct{}{}
	var evs []Event
	for ev := range sub.C {
		evs = append(evs, ev)
	}
	if len(evs) < 2 {
		t.Fatalf("only %d events", len(evs))
	}
	if evs[0].Type != EventStarted {
		t.Fatalf("first event %q, want %q", evs[0].Type, EventStarted)
	}
	last := evs[len(evs)-1]
	if last.Type != EventDone {
		t.Fatalf("last event %q, want %q", last.Type, EventDone)
	}
	var sawProgress bool
	for _, ev := range evs[1 : len(evs)-1] {
		if ev.Type == EventProgress {
			sawProgress = true
		}
		if ev.Run != snap.ID {
			t.Fatalf("event for run %q on %q's stream", ev.Run, snap.ID)
		}
	}
	if !sawProgress {
		t.Fatal("no progress events despite ProgressEvery")
	}

	late, ok := svc.Subscribe(snap.ID)
	if !ok {
		t.Fatal("cannot subscribe to a finished run")
	}
	ev, open := <-late.C
	if !open || ev.Type != EventDone {
		t.Fatalf("late subscriber got (%+v, %v), want the terminal event", ev, open)
	}
	if _, open := <-late.C; open {
		t.Fatal("late subscription did not close after the terminal event")
	}
}

// TestArtifactStore: with an ArtifactDir the run's sweep is persisted at
// <dir>/<id>.json, loads back through the store, and matches the
// in-memory artifact bytes.
func TestArtifactStore(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t, Config{Jobs: 1, ArtifactDir: dir})
	snap := submitAndWait(t, svc, countSpec(2000))
	if snap.Status != StatusDone {
		t.Fatalf("run failed: %+v", snap)
	}
	sweep, err := svc.Store().Load(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Name != snap.ID || len(sweep.Rows) != snap.Result.Ranks {
		t.Fatalf("stored sweep %q has %d rows, want %q with %d", sweep.Name, len(sweep.Rows), snap.ID, snap.Result.Ranks)
	}
	var buf bytes.Buffer
	if err := results.EncodeJSON(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), snap.Artifact) {
		t.Fatal("persisted artifact differs from the served one")
	}
}

// TestCacheEviction: past the Cache bound the oldest completed run loses
// its address, and resubmitting it simulates again.
func TestCacheEviction(t *testing.T) {
	svc := newService(t, Config{Jobs: 1, Cache: 1})
	before := simCount.Load()
	first := submitAndWait(t, svc, countSpec(3000))
	_ = submitAndWait(t, svc, countSpec(3001))
	if _, ok := svc.Get(first.ID); ok {
		t.Fatal("oldest run survived a Cache=1 bound")
	}
	re := submitAndWait(t, svc, countSpec(3000))
	if re.Cached {
		t.Fatal("evicted run served from cache")
	}
	if got := simCount.Load() - before; got != 3 {
		t.Fatalf("ran %d simulations, want 3 (evicted entry re-simulated)", got)
	}
}

// TestFileBackedSpecsRedigestContent: the lookaside fast path must never
// apply to file-backed specs — when the file's contents change under the
// same path, a re-submission is a new simulation, not a cache hit.
func TestFileBackedSpecsRedigestContent(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	dir := t.TempDir()
	path := dir + "/work.goal"
	write := func(ranks int) {
		t.Helper()
		var buf bytes.Buffer
		if err := sim.WriteGOALText(&buf, sim.NewBuilder(ranks).MustBuild()); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(2)
	spec := sim.Spec{Workload: sim.Workload{GoalPath: path},
		Backend: "countsim"}
	before := simCount.Load()
	first := submitAndWait(t, svc, spec)
	if first.Status != StatusDone {
		t.Fatalf("first run: %+v", first)
	}
	write(3) // same path, different workload
	second := submitAndWait(t, svc, spec)
	if second.Cached || second.ID == first.ID {
		t.Fatalf("changed file served from cache: %+v vs %+v", second, first)
	}
	if second.Result.Ranks != 3 {
		t.Fatalf("second run simulated %d ranks, want the new file's 3", second.Result.Ranks)
	}
	if got := simCount.Load() - before; got != 2 {
		t.Fatalf("ran %d simulations, want 2", got)
	}
}

// TestLookasideIgnoresExecutionKnobs: a self-contained re-submission with
// a different worker request is still the same run.
func TestLookasideIgnoresExecutionKnobs(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	spec := countSpec(5000)
	first := submitAndWait(t, svc, spec)
	spec.Workers = -1
	spec.ProgressEvery = 99
	again, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.ID != first.ID {
		t.Fatalf("worker knob broke the content address: %+v vs %+v", again, first)
	}
}

// TestShareWorkers pins how the engine-worker budget is split across
// executor slots.
func TestShareWorkers(t *testing.T) {
	svc := newService(t, Config{Jobs: 2, Workers: 8})
	lgs := func(w int) sim.Spec {
		return sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4}},
			Workers: w}
	}
	for _, c := range []struct {
		name string
		spec sim.Spec
		want int
	}{
		{"all-you-have", lgs(-1), 4},
		{"above-share", lgs(100), 4},
		{"below-share", lgs(2), 2},
		{"explicit-serial", lgs(0), 0},
		{"pkt-serial", sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4}},
			Backend: "pkt",
			Workers: 1}, 1},
	} {
		if got := svc.shareWorkers(c.spec); got != c.want {
			t.Fatalf("%s: shareWorkers = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestSubmitRejects(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	if _, err := svc.Submit(sim.Spec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := svc.Submit(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 2}},
		Observer: sim.NopObserver{}}); err == nil {
		t.Fatal("spec with an Observer accepted")
	}
}

// TestFailedRunReportsError: a spec whose workload cannot resolve at run
// time (Validate cannot see file contents) terminates as failed with the
// error preserved, and is still addressable.
func TestFailedRunReportsError(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	// The fingerprint resolves the workload, so a nonexistent path fails at
	// Submit...
	if _, err := svc.Submit(sim.Spec{Workload: sim.Workload{GoalPath: t.TempDir() + "/missing.goal"}}); err == nil {
		t.Fatal("unresolvable workload accepted")
	}
	// ...while a config the factory rejects only fails inside the run.
	snap, err := svc.Submit(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4}},
		Backend: "pkt",
		Config:  sim.PktConfig{HostsPerToR: 4, Oversub: 8}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusFailed || done.Err == "" {
		t.Fatalf("broken config produced %+v, want a failed run with its error", done)
	}
	// A failure is not a result: re-submitting the same spec must retry
	// (fresh run, not a cache hit), never replay the stale failure.
	retry, err := svc.Submit(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4}},
		Backend: "pkt",
		Config:  sim.PktConfig{HostsPerToR: 4, Oversub: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if retry.Cached {
		t.Fatalf("failed run served as a cache hit: %+v", retry)
	}
	again, err := svc.Wait(ctx, retry.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != StatusFailed {
		t.Fatalf("retried run: %+v", again)
	}
}

// TestCloseDrains: Close terminates every admitted run.
func TestCloseDrains(t *testing.T) {
	svc, err := New(Config{Jobs: 1, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Submit(countSpec(4000))
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	done, ok := svc.Get(snap.ID)
	if !ok {
		t.Fatal("run vanished on Close")
	}
	if !done.Status.Terminal() {
		t.Fatalf("run left in state %s after Close", done.Status)
	}
	if _, err := svc.Submit(countSpec(4001)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestRestartRebuildsCache is the tentpole's acceptance test: a service
// restarted over the same artifact directory answers an identical
// re-submission from the rebuilt run index — cache hit, byte-identical
// artifact, equal result, and no simulation executed.
func TestRestartRebuildsCache(t *testing.T) {
	dir := t.TempDir()
	spec := countSpec(7000)
	before := simCount.Load()

	svc, err := New(Config{Jobs: 1, ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first := submitAndWait(t, svc, spec)
	if first.Status != StatusDone {
		t.Fatalf("first run: %+v", first)
	}
	svc.Close()

	svc2 := newService(t, Config{Jobs: 1, ArtifactDir: dir})
	// The restored run must be addressable before any re-submission.
	got, ok := svc2.Get(first.ID)
	if !ok || got.Status != StatusDone {
		t.Fatalf("restarted service lost run %s: (%+v, %v)", first.ID, got, ok)
	}
	again, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Status != StatusDone || again.ID != first.ID {
		t.Fatalf("re-submission after restart not served from cache: %+v", again)
	}
	if !bytes.Equal(first.Artifact, again.Artifact) {
		t.Fatal("restored artifact is not byte-identical")
	}
	if !reflect.DeepEqual(first.Result, again.Result) {
		t.Fatalf("restored result differs:\n%+v\nvs\n%+v", first.Result, again.Result)
	}
	if got := simCount.Load() - before; got != 1 {
		t.Fatalf("restart + re-submission ran %d simulations, want exactly 1", got)
	}
}

// TestRestartSkipsCorruptArtifacts: a stored artifact that fails
// validation — corrupt bytes, or a missing metadata sidecar — is skipped
// with a logged warning, never trusted: the run is not addressable after
// the restart and an identical re-submission simulates again.
func TestRestartSkipsCorruptArtifacts(t *testing.T) {
	dir := t.TempDir()
	spec := countSpec(7100)
	svc, err := New(Config{Jobs: 1, ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	snap := submitAndWait(t, svc, spec)
	if snap.Status != StatusDone {
		t.Fatalf("seed run: %+v", snap)
	}
	svc.Close()

	// Corrupt the artifact itself.
	if err := os.WriteFile(svc.Store().Path(snap.ID), []byte(`{"schema":"broken`), 0o644); err != nil {
		t.Fatal(err)
	}
	var logs bytes.Buffer
	svc2 := newService(t, Config{Jobs: 1, ArtifactDir: dir, Logger: slog.New(slog.NewTextHandler(&logs, nil))})
	if _, ok := svc2.Get(snap.ID); ok {
		t.Fatal("corrupt artifact was restored into the run index")
	}
	// slog renders the run id as its own attr, so assert msg and id
	// separately.
	if !strings.Contains(logs.String(), "skipping stored run") || !strings.Contains(logs.String(), snap.ID) {
		t.Fatalf("no skip warning logged; log output:\n%s", logs.String())
	}
	before := simCount.Load()
	re := submitAndWait(t, svc2, spec)
	if re.Cached || re.Status != StatusDone {
		t.Fatalf("corrupt entry answered from cache: %+v", re)
	}
	if got := simCount.Load() - before; got != 1 {
		t.Fatalf("re-submission over a corrupt artifact ran %d simulations, want 1", got)
	}
	svc2.Close()

	// An artifact without its sidecar is equally untrusted.
	if err := os.Remove(filepath.Join(dir, "meta", snap.ID+".json")); err != nil {
		t.Fatal(err)
	}
	logs.Reset()
	svc3 := newService(t, Config{Jobs: 1, ArtifactDir: dir, Logger: slog.New(slog.NewTextHandler(&logs, nil))})
	if _, ok := svc3.Get(snap.ID); ok {
		t.Fatal("artifact without a sidecar was restored into the run index")
	}
	if !strings.Contains(logs.String(), "metadata sidecar") {
		t.Fatalf("skip warning does not name the missing sidecar; log output:\n%s", logs.String())
	}
}

// TestWaitCancelledContext pins Wait's ordering guarantee: a finished run
// returns its snapshot even on an already-cancelled context, while a run
// still in flight returns the context's error.
func TestWaitCancelledContext(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	finished := submitAndWait(t, svc, countSpec(7200))

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	snap, err := svc.Wait(cancelled, finished.ID)
	if err != nil {
		t.Fatalf("Wait on a finished run with a cancelled context: %v", err)
	}
	if snap.Status != StatusDone {
		t.Fatalf("finished run reported %+v", snap)
	}

	inflight, err := svc.Submit(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 7201}},
		Backend: "blocksim"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(cancelled, inflight.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on an in-flight run with a cancelled context: %v, want context.Canceled", err)
	}
	blockGate <- struct{}{}
	ctx, cancelLive := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelLive()
	if _, err := svc.Wait(ctx, inflight.ID); err != nil {
		t.Fatal(err)
	}
}

// TestJobQueueFairShare unit-tests the admission queue: classes drain
// round-robin (FIFO within one), pushes are atomic all-or-none against
// the capacity bound, and close drains the backlog before pop reports
// exhaustion.
func TestJobQueueFairShare(t *testing.T) {
	mk := func(id string) *run { return &run{id: id} }
	q := newJobQueue(10, nil)
	if err := q.push("batch", mk("a1"), mk("a2"), mk("a3")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(DefaultClass, mk("b1")); err != nil {
		t.Fatal(err)
	}
	var order []string
	for i := 0; i < 4; i++ {
		r, ok := q.pop()
		if !ok {
			t.Fatalf("queue exhausted after %d pops", i)
		}
		order = append(order, r.id)
	}
	if want := []string{"a1", "b1", "a2", "a3"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("drain order %v, want round-robin %v", order, want)
	}

	q2 := newJobQueue(2, nil)
	if err := q2.push("c", mk("x1"), mk("x2"), mk("x3")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized atomic push: %v, want ErrQueueFull", err)
	}
	if err := q2.push("c", mk("x1"), mk("x2")); err != nil {
		t.Fatalf("the rejected push left residue: %v", err)
	}
	if err := q2.push("d", mk("y1")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push past capacity: %v, want ErrQueueFull", err)
	}
	if _, ok := q2.pop(); !ok {
		t.Fatal("pop from a full queue failed")
	}
	if err := q2.push("d", mk("y1")); err != nil {
		t.Fatalf("pop did not free capacity: %v", err)
	}

	q2.close()
	if err := q2.push("d", mk("z1")); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := q2.pop(); !ok {
			t.Fatalf("close dropped queued job %d before it drained", i)
		}
	}
	if _, ok := q2.pop(); ok {
		t.Fatal("pop after the backlog drained on a closed queue")
	}
}

// TestFairShareAcrossClasses drives the class plumbing end-to-end: with
// one executor slot held, a queued three-spec sweep and a later
// interactive submission interleave round-robin — the interactive run
// executes after the sweep's first member, not after its last.
func TestFairShareAcrossClasses(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	hold, err := svc.Submit(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 7300}},
		Backend: "blocksim"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := svc.Get(hold.ID)
		if snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("holding job never started")
		}
		time.Sleep(time.Millisecond)
	}
	oseed := func(seed uint64) sim.Spec {
		return sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 512, Phases: 2}},
			Backend: "ordersim",
			Seed:    seed}
	}
	orderMu.Lock()
	start := len(orderSeen)
	orderMu.Unlock()
	batch, err := svc.SubmitSweep("", []sim.Spec{oseed(1), oseed(2), oseed(3)})
	if err != nil {
		t.Fatal(err)
	}
	interactive, err := svc.Submit(oseed(100))
	if err != nil {
		t.Fatal(err)
	}
	blockGate <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.WaitSweep(ctx, batch.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(ctx, interactive.ID); err != nil {
		t.Fatal(err)
	}
	orderMu.Lock()
	got := append([]uint64(nil), orderSeen[start:]...)
	orderMu.Unlock()
	if want := []uint64{1, 100, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("execution order %v, want fair-share interleaving %v", got, want)
	}
}

// TestSubmitSweepDedup: one sweep's duplicate specs collapse onto one run,
// the whole batch is addressable by a content-derived id, and
// re-submitting the identical sweep (same batch id) answers every member
// from the cache without simulating.
func TestSubmitSweepDedup(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	specs := []sim.Spec{countSpec(7400), countSpec(7401), countSpec(7400)}
	before := simCount.Load()

	batch, err := svc.SubmitSweep("", specs)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Specs != 3 || batch.Total() != 2 {
		t.Fatalf("3 specs with one duplicate admitted as %d specs / %d runs", batch.Specs, batch.Total())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.WaitSweep(ctx, batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Done != 2 || final.Failed != 0 || !final.Terminal() {
		t.Fatalf("finished sweep: %+v", final)
	}
	if got := simCount.Load() - before; got != 2 {
		t.Fatalf("sweep ran %d simulations, want 2", got)
	}

	again, err := svc.SubmitSweep("", specs)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != batch.ID {
		t.Fatalf("identical sweep re-derived batch id %s, want %s", again.ID, batch.ID)
	}
	if again.Cached != 2 || again.Done != 2 {
		t.Fatalf("re-submitted sweep not served from cache: %+v", again)
	}
	if got := simCount.Load() - before; got != 2 {
		t.Fatalf("re-submitted sweep simulated again (%d total)", got)
	}
	view, ok := svc.GetSweep(batch.ID)
	if !ok || view.Done != 2 || view.Specs != 3 {
		t.Fatalf("GetSweep: (%+v, %v)", view, ok)
	}
	if _, ok := svc.GetSweep("b_0000000000000000"); ok {
		t.Fatal("unknown sweep id resolved")
	}
}

// TestSubmitSweepQueueFullAtomic: a sweep that does not fit the admission
// queue is rejected whole — no member run is admitted, so a retry is not
// half-deduplicated against a phantom partial batch.
func TestSubmitSweepQueueFullAtomic(t *testing.T) {
	svc := newService(t, Config{Jobs: 1, Queue: 1})
	hold, err := svc.Submit(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 7500}},
		Backend: "blocksim"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := svc.Get(hold.ID)
		if snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("holding job never started")
		}
		time.Sleep(time.Millisecond)
	}
	specs := []sim.Spec{countSpec(7501), countSpec(7502)}
	if _, err := svc.SubmitSweep("", specs); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("two-spec sweep into a one-slot queue: %v, want ErrQueueFull", err)
	}
	for _, spec := range specs {
		id, err := RunID(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := svc.Get(id); ok {
			t.Fatalf("rejected sweep left member %s admitted", id)
		}
	}
	batch, err := svc.SubmitSweep("", specs[:1])
	if err != nil {
		t.Fatalf("one-spec sweep after the rejection: %v", err)
	}
	blockGate <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.WaitSweep(ctx, batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Done != 1 {
		t.Fatalf("retried sweep: %+v", final)
	}
}
