package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"atlahs/results"
	"atlahs/sim"
)

// testServer starts a service behind its HTTP handler.
func testServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := newService(t, cfg)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, ts
}

// wireSpec marshals the canonical quick spec the HTTP tests submit.
func wireSpec(t *testing.T, tag int64) []byte {
	t.Helper()
	b, err := sim.MarshalSpec(sim.Spec{
		Synthetic: &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 1024 + tag, Phases: 2},
		Backend:   "lgs",
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSpec(t *testing.T, url string, body []byte) (*http.Response, runResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return resp, rr
}

// TestHTTPSubmitTwice is the service-smoke contract end to end: the first
// submission misses the cache and simulates; the identical second one is
// answered `Cache-Status: hit` with the same run id, a done status, and a
// byte-identical artifact.
func TestHTTPSubmitTwice(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	spec := wireSpec(t, 1)

	resp1, rr1 := postSpec(t, ts.URL, spec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d (%+v)", resp1.StatusCode, rr1)
	}
	if got := resp1.Header.Get("Cache-Status"); got != "miss" {
		t.Fatalf("first POST Cache-Status %q, want miss", got)
	}
	if rr1.Status != StatusDone || rr1.Cached || rr1.Result == nil || rr1.Result.Ops == 0 {
		t.Fatalf("first POST body %+v", rr1)
	}

	resp2, rr2 := postSpec(t, ts.URL, spec)
	if got := resp2.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("second POST Cache-Status %q, want hit", got)
	}
	if !rr2.Cached || rr2.Status != StatusDone || rr2.ID != rr1.ID {
		t.Fatalf("second POST body %+v", rr2)
	}

	fetch := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/runs/" + rr1.ID + "/artifact")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact GET: %d", resp.StatusCode)
		}
		if got := resp.Header.Get("Cache-Status"); got != "hit" {
			t.Fatalf("artifact Cache-Status %q, want hit", got)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a1, a2 := fetch(), fetch()
	if !bytes.Equal(a1, a2) {
		t.Fatal("artifact not byte-stable across fetches")
	}
	sweep, err := results.DecodeJSON(bytes.NewReader(a1))
	if err != nil {
		t.Fatalf("artifact does not schema-validate: %v", err)
	}
	if sweep.Name != rr1.ID {
		t.Fatalf("artifact sweep %q, want %q", sweep.Name, rr1.ID)
	}
}

func TestHTTPGetRun(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	_, rr := postSpec(t, ts.URL, wireSpec(t, 2))

	resp, err := http.Get(ts.URL + "/v1/runs/" + rr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET run: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("done run GET Cache-Status %q, want hit", got)
	}
	var got runResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != rr.ID || got.Status != StatusDone || got.Cached {
		t.Fatalf("GET body %+v", got)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
		want   string
	}{
		{"bad-spec", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader("not a spec"))
		}, http.StatusBadRequest, "decoding spec"},
		{"invalid-spec", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(`{"schema":"atlahs.spec/v1"}`))
		}, http.StatusBadRequest, "no workload"},
		{"unknown-run", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/runs/r_0000000000000000")
		}, http.StatusNotFound, "unknown run"},
		{"unknown-artifact", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/runs/r_0000000000000000/artifact")
		}, http.StatusNotFound, "unknown run"},
		{"unknown-events", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/runs/r_0000000000000000/events")
		}, http.StatusNotFound, "unknown run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := c.do()
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.status)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(er.Error, c.want) {
				t.Fatalf("error %q, want it to contain %q", er.Error, c.want)
			}
		})
	}
}

// TestHTTPEventsSSE: the events endpoint streams SSE frames and ends with
// the terminal event — for a finished run it replays it immediately.
func TestHTTPEventsSSE(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	_, rr := postSpec(t, ts.URL, wireSpec(t, 3))

	resp, err := http.Get(ts.URL + "/v1/runs/" + rr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // the stream closes after the terminal event
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: done\n") {
		t.Fatalf("SSE stream misses the terminal frame:\n%s", text)
	}
	if !strings.Contains(text, `"runtime_ps"`) {
		t.Fatalf("terminal frame misses the result payload:\n%s", text)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}
