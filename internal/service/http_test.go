package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"atlahs/internal/workload/micro"
	"atlahs/results"
	"atlahs/sim"
)

// testServer starts a service behind its HTTP handler.
func testServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := newService(t, cfg)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, ts
}

// wireSpec marshals the canonical quick spec the HTTP tests submit.
func wireSpec(t *testing.T, tag int64) []byte {
	t.Helper()
	b, err := sim.MarshalSpec(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 1024 + tag, Phases: 2}},
		Backend: "lgs"})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSpec(t *testing.T, url string, body []byte) (*http.Response, runResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return resp, rr
}

// TestHTTPSubmitTwice is the service-smoke contract end to end: the first
// submission misses the cache and simulates; the identical second one is
// answered `Cache-Status: hit` with the same run id, a done status, and a
// byte-identical artifact.
func TestHTTPSubmitTwice(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	spec := wireSpec(t, 1)

	resp1, rr1 := postSpec(t, ts.URL, spec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d (%+v)", resp1.StatusCode, rr1)
	}
	if got := resp1.Header.Get("Cache-Status"); got != "miss" {
		t.Fatalf("first POST Cache-Status %q, want miss", got)
	}
	if rr1.Status != StatusDone || rr1.Cached || rr1.Result == nil || rr1.Result.Ops == 0 {
		t.Fatalf("first POST body %+v", rr1)
	}

	resp2, rr2 := postSpec(t, ts.URL, spec)
	if got := resp2.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("second POST Cache-Status %q, want hit", got)
	}
	if !rr2.Cached || rr2.Status != StatusDone || rr2.ID != rr1.ID {
		t.Fatalf("second POST body %+v", rr2)
	}

	fetch := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/runs/" + rr1.ID + "/artifact")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact GET: %d", resp.StatusCode)
		}
		if got := resp.Header.Get("Cache-Status"); got != "hit" {
			t.Fatalf("artifact Cache-Status %q, want hit", got)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a1, a2 := fetch(), fetch()
	if !bytes.Equal(a1, a2) {
		t.Fatal("artifact not byte-stable across fetches")
	}
	sweep, err := results.DecodeJSON(bytes.NewReader(a1))
	if err != nil {
		t.Fatalf("artifact does not schema-validate: %v", err)
	}
	if sweep.Name != rr1.ID {
		t.Fatalf("artifact sweep %q, want %q", sweep.Name, rr1.ID)
	}
}

// TestHTTPSubmitModelTwice: a model-sourced spec is content-addressed by
// its generated schedule, so resubmitting the same (model, ranks, seed)
// answers from the cache like any other workload source.
func TestHTTPSubmitModelTwice(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	model, err := sim.MineModel(micro.BulkSynchronous(8, 2, 2048, 900), "service-test")
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := sim.EncodeModel(&doc, model); err != nil {
		t.Fatal(err)
	}
	spec, err := sim.MarshalSpec(sim.Spec{
		Workload: sim.Workload{Model: &sim.ModelGen{Ranks: 64, Seed: 5, Doc: doc.Bytes()}},
		Backend:  "lgs",
	})
	if err != nil {
		t.Fatal(err)
	}

	resp1, rr1 := postSpec(t, ts.URL, spec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d (%+v)", resp1.StatusCode, rr1)
	}
	if got := resp1.Header.Get("Cache-Status"); got != "miss" {
		t.Fatalf("first POST Cache-Status %q, want miss", got)
	}
	if rr1.Status != StatusDone || rr1.Result == nil || rr1.Result.Ops == 0 || rr1.Result.Ranks != 64 {
		t.Fatalf("first POST body %+v", rr1)
	}

	resp2, rr2 := postSpec(t, ts.URL, spec)
	if got := resp2.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("second POST Cache-Status %q, want hit", got)
	}
	if !rr2.Cached || rr2.ID != rr1.ID {
		t.Fatalf("second POST body %+v", rr2)
	}
}

func TestHTTPGetRun(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	_, rr := postSpec(t, ts.URL, wireSpec(t, 2))

	resp, err := http.Get(ts.URL + "/v1/runs/" + rr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET run: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("done run GET Cache-Status %q, want hit", got)
	}
	var got runResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != rr.ID || got.Status != StatusDone || got.Cached {
		t.Fatalf("GET body %+v", got)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
		want   string
	}{
		{"bad-spec", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader("not a spec"))
		}, http.StatusBadRequest, "decoding spec"},
		{"invalid-spec", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(`{"schema":"atlahs.spec/v1"}`))
		}, http.StatusBadRequest, "no workload"},
		{"unknown-run", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/runs/r_0000000000000000")
		}, http.StatusNotFound, "unknown run"},
		{"unknown-artifact", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/runs/r_0000000000000000/artifact")
		}, http.StatusNotFound, "unknown run"},
		{"unknown-events", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/runs/r_0000000000000000/events")
		}, http.StatusNotFound, "unknown run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := c.do()
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.status)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(er.Error, c.want) {
				t.Fatalf("error %q, want it to contain %q", er.Error, c.want)
			}
		})
	}
}

// TestHTTPEventsSSE: the events endpoint streams SSE frames and ends with
// the terminal event — for a finished run it replays it immediately.
func TestHTTPEventsSSE(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	_, rr := postSpec(t, ts.URL, wireSpec(t, 3))

	resp, err := http.Get(ts.URL + "/v1/runs/" + rr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // the stream closes after the terminal event
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: done\n") {
		t.Fatalf("SSE stream misses the terminal frame:\n%s", text)
	}
	if !strings.Contains(text, `"runtime_ps"`) {
		t.Fatalf("terminal frame misses the result payload:\n%s", text)
	}
}

// TestHTTPGetWaitCacheStatus pins the Cache-Status verdict on GET
// /v1/runs/{id}: it is decided before any waiting, so a ?wait=1 request
// that watched the run finish reports miss — the answer required
// simulation work — while the next read of the now-finished run is a hit.
func TestHTTPGetWaitCacheStatus(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	h := NewHandler(svc)
	arrived := make(chan struct{}, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodGet && wantWait(req) {
			select {
			case arrived <- struct{}{}:
			default:
			}
		}
		h.ServeHTTP(w, req)
	}))
	t.Cleanup(ts.Close)

	spec, err := sim.MarshalSpec(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 9000, Phases: 2}},
		Backend: "gatesim"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d (%+v)", resp.StatusCode, rr)
	}
	// The run is now inside the gated factory: it cannot finish until
	// gateRelease, which fires only once the waiting GET has arrived.
	<-gateEntered
	go func() {
		<-arrived
		time.Sleep(50 * time.Millisecond) // let the GET reach the handler's snapshot
		gateRelease <- struct{}{}
	}()
	resp, err = http.Get(ts.URL + "/v1/runs/" + rr.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var waited runResponse
	if err := json.NewDecoder(resp.Body).Decode(&waited); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || waited.Status != StatusDone {
		t.Fatalf("waited GET: %d (%+v)", resp.StatusCode, waited)
	}
	if got := resp.Header.Get("Cache-Status"); got != "miss" {
		t.Fatalf("a GET that watched the run finish reported Cache-Status %q, want miss", got)
	}

	resp, err = http.Get(ts.URL + "/v1/runs/" + rr.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("a GET of the finished run reported Cache-Status %q, want hit", got)
	}
}

// TestHTTPSubmitWaitClientGone: a ?wait=1 submission whose client
// disconnects mid-run still admits the run and answers 202 with the
// non-terminal snapshot — the wait degrades, the submission does not.
func TestHTTPSubmitWaitClientGone(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	h := NewHandler(svc)
	body, err := sim.MarshalSpec(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 9100}},
		Backend: "blocksim"})
	if err != nil {
		t.Fatal(err)
	}
	gone, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the wait starts
	req := httptest.NewRequest(http.MethodPost, "/v1/runs?wait=1", bytes.NewReader(body)).WithContext(gone)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("disconnected ?wait=1 submit: %d, want 202\n%s", rec.Code, rec.Body.String())
	}
	var rr runResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status.Terminal() {
		t.Fatalf("disconnected wait claimed a terminal run: %+v", rr)
	}
	if got := rec.Header().Get("Cache-Status"); got != "miss" {
		t.Fatalf("Cache-Status %q, want miss", got)
	}
	blockGate <- struct{}{}
	ctx, cancelLive := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelLive()
	done, err := svc.Wait(ctx, rr.ID)
	if err != nil || done.Status != StatusDone {
		t.Fatalf("abandoned run did not finish: (%+v, %v)", done, err)
	}
}

// TestHTTPRetryAfter: 503 responses — full queue on runs and sweeps —
// carry a Retry-After header and a JSON error body.
func TestHTTPRetryAfter(t *testing.T) {
	svc, ts := testServer(t, Config{Jobs: 1, Queue: 1})
	blockSpec := func(tag int64) []byte {
		t.Helper()
		b, err := sim.MarshalSpec(sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: tag}},
			Backend: "blocksim"})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	post := func(body []byte) (*http.Response, runResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr runResponse
		json.NewDecoder(resp.Body).Decode(&rr)
		return resp, rr
	}
	_, hold := post(blockSpec(9200))
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := svc.Get(hold.ID)
		if snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("holding job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := post(blockSpec(9201)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(blockSpec(9202)))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overfull submit: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("503 without a Retry-After header")
	}
	if !strings.Contains(er.Error, "queue is full") {
		t.Fatalf("503 body %q does not carry the queue error", er.Error)
	}

	// A sweep that does not fit is the same 503 contract.
	payload := []byte(`{"schema":"atlahs.sweep/v1","specs":[` +
		string(wireSpec(t, 9203)) + `,` + string(wireSpec(t, 9204)) + `]}`)
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overfull sweep: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("sweep 503 without a Retry-After header")
	}

	blockGate <- struct{}{}
	blockGate <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, hold.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPSweeps drives the batch API end to end: submit-and-wait with an
// in-batch duplicate, the combined status view, the combined artifact
// document, and a fully-cached re-submission answered `Cache-Status: hit`.
func TestHTTPSweeps(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 2})
	payload := []byte(`{"schema":"atlahs.sweep/v1","specs":[` +
		string(wireSpec(t, 9300)) + `,` + string(wireSpec(t, 9301)) + `,` + string(wireSpec(t, 9300)) + `]}`)
	postSweep := func() (*http.Response, sweepResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr sweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return resp, sr
	}

	resp, sr := postSweep()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit: %d (%+v)", resp.StatusCode, sr)
	}
	if got := resp.Header.Get("Cache-Status"); got != "miss" {
		t.Fatalf("first sweep Cache-Status %q, want miss", got)
	}
	if sr.Specs != 3 || sr.Total != 2 || sr.Done != 2 || sr.Failed != 0 || len(sr.Runs) != 2 {
		t.Fatalf("first sweep body %+v", sr)
	}

	resp2, sr2 := postSweep()
	if got := resp2.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("re-submitted sweep Cache-Status %q, want hit", got)
	}
	if sr2.ID != sr.ID || sr2.Cached != 2 || sr2.Done != 2 {
		t.Fatalf("re-submitted sweep body %+v", sr2)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var view sweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.Done != 2 || view.Specs != 3 {
		t.Fatalf("sweep GET: %d (%+v)", resp.StatusCode, view)
	}
	if got := resp.Header.Get("Cache-Status"); got != "hit" {
		t.Fatalf("finished sweep GET Cache-Status %q, want hit", got)
	}

	resp, err = http.Get(ts.URL + "/v1/sweeps/" + sr.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	var combined sweepArtifactResponse
	if err := json.NewDecoder(resp.Body).Decode(&combined); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep artifact GET: %d", resp.StatusCode)
	}
	if combined.Schema != SweepSetSchema || combined.ID != sr.ID || len(combined.Runs) != 2 {
		t.Fatalf("combined artifact %+v", combined)
	}
	for _, rr := range sr.Runs {
		raw, ok := combined.Runs[rr.ID]
		if !ok {
			t.Fatalf("combined artifact misses run %s", rr.ID)
		}
		member, err := results.DecodeJSON(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("combined artifact entry %s does not schema-validate: %v", rr.ID, err)
		}
		aresp, err := http.Get(ts.URL + "/v1/runs/" + rr.ID + "/artifact")
		if err != nil {
			t.Fatal(err)
		}
		single, err := results.DecodeJSON(aresp.Body)
		aresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(member, single) {
			t.Fatalf("combined artifact entry %s differs from the run's own artifact", rr.ID)
		}
	}

	for _, c := range []struct {
		name   string
		do     func() (*http.Response, error)
		status int
		want   string
	}{
		{"bad-schema", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/sweeps", "application/json",
				strings.NewReader(`{"schema":"nope","specs":[]}`))
		}, http.StatusBadRequest, "unknown sweep schema"},
		{"bad-member", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/sweeps", "application/json",
				strings.NewReader(`{"schema":"atlahs.sweep/v1","specs":[`+string(wireSpec(t, 9302))+`,{"schema":"nope"}]}`))
		}, http.StatusBadRequest, "sweep spec 1"},
		{"empty", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/sweeps", "application/json",
				strings.NewReader(`{"schema":"atlahs.sweep/v1","specs":[]}`))
		}, http.StatusBadRequest, "at least one spec"},
		{"unknown-sweep", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/sweeps/b_0000000000000000")
		}, http.StatusNotFound, "unknown sweep"},
		{"unknown-sweep-artifact", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/sweeps/b_0000000000000000/artifact")
		}, http.StatusNotFound, "unknown sweep"},
	} {
		t.Run(c.name, func(t *testing.T) {
			resp, err := c.do()
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.status)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(er.Error, c.want) {
				t.Fatalf("error %q, want it to contain %q", er.Error, c.want)
			}
		})
	}
}
