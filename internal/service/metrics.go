package service

import (
	"atlahs/internal/telemetry"
	"atlahs/results"
)

// serviceMetrics is the service's metrics registry: admission, cache,
// executor, streaming and run-outcome instruments, plus process-lifetime
// aggregates of the per-run engine counters. One instance lives for the
// service's lifetime and is scraped by GET /metrics.
type serviceMetrics struct {
	reg *telemetry.Registry

	// queueDepth tracks submitted-but-not-started runs per admission
	// class.
	queueDepth *telemetry.GaugeVec
	// runs counts terminal runs by outcome ("done" | "failed").
	runs *telemetry.CounterVec
	// cacheRequests counts submissions by cache verdict: "lookaside"
	// (answered by the wire-bytes fast path), "hit" (answered by the
	// content-addressed index after resolution), "miss" (scheduled a new
	// simulation).
	cacheRequests *telemetry.CounterVec
	// singleflight counts submissions that joined an in-flight run of the
	// same fingerprint instead of simulating again.
	singleflight *telemetry.Counter
	// sseSubscribers tracks attached event-stream subscriptions;
	// sseDropped counts op/progress events discarded to lagging
	// subscribers.
	sseSubscribers *telemetry.Gauge
	sseDropped     *telemetry.Counter
	// execBusy tracks executor slots currently simulating.
	execBusy *telemetry.Gauge
	// runWall observes each executed run's wall clock, in seconds.
	runWall *telemetry.Histogram
	// engineAgg folds each completed run's engine counters
	// (sim.Result.Metrics) into process-lifetime totals, keyed by the
	// run-level metric name.
	engineAgg map[string]*telemetry.Counter
}

// engineAggregates lists the per-run engine/scheduler counters the
// service accumulates across runs. Gauges (peaks, maxima) are per-run
// readings and do not sum meaningfully, so only the counters aggregate.
var engineAggregates = []struct{ name, help string }{
	{"atlahs_engine_events_total", "engine events executed across runs"},
	{"atlahs_engine_windows_total", "conservative windows executed across runs"},
	{"atlahs_engine_windows_widened_total", "adaptively widened windows across runs"},
	{"atlahs_engine_windows_inline_total", "inline-executed windows across runs"},
	{"atlahs_engine_windows_dispatched_total", "pool-dispatched windows across runs"},
	{"atlahs_engine_worker_wakeups_total", "worker wakeups across runs"},
	{"atlahs_engine_active_lanes_total", "active-lane window sum across runs"},
}

// newServiceMetrics registers every instrument on a fresh registry, in
// the fixed order the deterministic /metrics scrape exposes.
func newServiceMetrics() *serviceMetrics {
	reg := telemetry.NewRegistry()
	m := &serviceMetrics{
		reg:            reg,
		queueDepth:     reg.GaugeVec("atlahs_service_queue_depth", "submitted-but-not-started runs per admission class", "class"),
		runs:           reg.CounterVec("atlahs_service_runs_total", "terminal runs by outcome", "status"),
		cacheRequests:  reg.CounterVec("atlahs_service_cache_requests_total", "submissions by cache verdict", "result"),
		singleflight:   reg.Counter("atlahs_service_singleflight_joins_total", "submissions that joined an in-flight run"),
		sseSubscribers: reg.Gauge("atlahs_service_sse_subscribers", "attached event-stream subscriptions"),
		sseDropped:     reg.Counter("atlahs_service_sse_dropped_events_total", "op/progress events dropped to lagging subscribers"),
		execBusy:       reg.Gauge("atlahs_service_executors_busy", "executor slots currently simulating"),
		runWall: reg.Histogram("atlahs_service_run_wall_seconds", "wall clock per executed run",
			telemetry.ExpBuckets(0.001, 10, 7)),
		engineAgg: make(map[string]*telemetry.Counter, len(engineAggregates)),
	}
	for _, a := range engineAggregates {
		m.engineAgg[a.name] = reg.Counter(a.name, a.help)
	}
	return m
}

// foldRun accumulates one completed run's engine counters into the
// process-lifetime aggregates.
func (m *serviceMetrics) foldRun(ms *results.MetricsSnapshot) {
	if ms == nil {
		return
	}
	for _, sample := range ms.Metrics {
		if sample.Type != "counter" {
			continue
		}
		if c, ok := m.engineAgg[sample.Name]; ok {
			c.Add(uint64(sample.Value))
		}
	}
}
