package service

import (
	"bytes"
	"fmt"
	"os"
	"regexp"
	"sort"

	"atlahs/results"
	"atlahs/sim"
)

// runMetaSchema identifies the per-run metadata sidecar layout. Like the
// other wire schemas it is append-only: released fields keep their names
// and types.
const runMetaSchema = "atlahs.runmeta/v1"

// runMeta is the durable run-index entry persisted next to every
// completed run's artifact. It carries what the artifact alone cannot:
// the full fingerprint the run id derives from, the lookaside keys that
// pointed at the run, and the complete sim.Result (the artifact's sweep
// only exports the deterministic per-rank table and headline scalars).
// A restarted service trusts a stored artifact only when its sidecar
// decodes, agrees with the artifact, and re-derives the same address.
type runMeta struct {
	Schema      string      `json:"schema"`
	ID          string      `json:"id"`
	Fingerprint string      `json:"fingerprint"`
	LookKeys    []string    `json:"lookaside_keys,omitempty"`
	Result      *sim.Result `json:"result"`
}

// runIDRE matches the ids Submit files runs under: "r_" plus the leading
// 16 hex digits of the spec fingerprint. Rebuild only considers store
// entries with this shape — the store may hold other artifacts.
var runIDRE = regexp.MustCompile(`^r_[0-9a-f]{16}$`)

// saveMeta persists the run's index sidecar; called by execute after the
// artifact itself is stored, so rebuild never sees a sidecar without its
// artifact.
func (s *Service) saveMeta(r *run, res *sim.Result) error {
	s.mu.Lock()
	keys := append([]string(nil), r.lookKeys...)
	s.mu.Unlock()
	if err := s.store.SaveMeta(r.id, runMeta{
		Schema:      runMetaSchema,
		ID:          r.id,
		Fingerprint: r.fp,
		LookKeys:    keys,
		Result:      res,
	}); err != nil {
		return fmt.Errorf("service: persisting run metadata: %w", err)
	}
	return nil
}

// rebuild reconstructs the run index from the artifacts that survived in
// the store — the cure for cache amnesia: a restarted service answers
// GET /v1/runs/{id}, artifact reads and identical re-submissions with
// cache hits instead of re-simulating. Artifacts that fail any validation
// (missing or corrupt sidecar, undecodable sweep, address mismatch) are
// skipped with a logged warning and left on disk; they are never trusted.
// Called from New before the service is shared, so it needs no locking.
func (s *Service) rebuild() {
	entries, err := s.store.List()
	if err != nil {
		s.log.Warn("service: cannot list artifact store", "dir", s.store.Dir(), "err", err)
		return
	}
	// Oldest artifacts first, so doneOrder evicts the stalest runs once
	// new completions push the index past the cache bound.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].ModTime.Before(entries[j].ModTime) })
	restored := 0
	for _, e := range entries {
		if !runIDRE.MatchString(e.Name) {
			continue // not a service run artifact (e.g. an experiment sweep)
		}
		r, err := s.restoreRun(e.Name)
		if err != nil {
			s.log.Warn("service: skipping stored run", "run", e.Name, "err", err)
			continue
		}
		r.mx = s.metrics
		s.runs[e.Name] = r
		s.doneOrder = append(s.doneOrder, e.Name)
		for _, key := range r.lookKeys {
			s.lookaside[key] = e.Name
		}
		restored++
	}
	// The in-memory index keeps at most Cache runs; older artifacts stay
	// on disk (the store is the durable record) but are re-admitted like
	// cold submissions.
	for len(s.doneOrder) > s.cfg.Cache {
		evict := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if r, ok := s.runs[evict]; ok {
			for _, key := range r.lookKeys {
				delete(s.lookaside, key)
			}
			delete(s.runs, evict)
		}
		restored--
	}
	if restored > 0 {
		s.log.Info("service: rebuilt run index", "dir", s.store.Dir(), "restored", restored)
	}
}

// restoreRun validates one stored run and reconstructs its in-memory
// entry. Every check errs on the side of re-simulating: an entry is only
// restored when the sidecar decodes under its schema, names this run, its
// fingerprint re-derives the run id, the artifact bytes decode as a valid
// atlahs.results/v1 sweep under the same name, and artifact and sidecar
// agree on the headline result.
func (s *Service) restoreRun(id string) (*run, error) {
	var meta runMeta
	if err := s.store.LoadMeta(id, &meta); err != nil {
		return nil, fmt.Errorf("metadata sidecar: %w", err)
	}
	if meta.Schema != runMetaSchema {
		return nil, fmt.Errorf("metadata sidecar has schema %q, want %q", meta.Schema, runMetaSchema)
	}
	if meta.ID != id {
		return nil, fmt.Errorf("metadata sidecar names run %q", meta.ID)
	}
	if meta.Result == nil {
		return nil, fmt.Errorf("metadata sidecar carries no result")
	}
	if len(meta.Fingerprint) < 16 || "r_"+meta.Fingerprint[:16] != id {
		return nil, fmt.Errorf("fingerprint %q does not derive run id %s", meta.Fingerprint, id)
	}
	artifact, err := os.ReadFile(s.store.Path(id))
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	sweep, err := results.DecodeJSON(bytes.NewReader(artifact))
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if sweep.Name != id {
		return nil, fmt.Errorf("artifact holds sweep %q", sweep.Name)
	}
	if got, want := sweep.Derived["runtime_ps"], float64(meta.Result.Runtime); got != want {
		return nil, fmt.Errorf("artifact runtime %v disagrees with sidecar %v", got, want)
	}
	return newDoneRun(id, meta.Fingerprint, meta.Result, artifact, meta.LookKeys), nil
}
