package service

import (
	"sync"

	"atlahs/internal/telemetry"
)

// DefaultClass is the admission class of plain Submit calls and of HTTP
// submissions that name no submitter — the "interactive" share of the
// executor pool.
const DefaultClass = "interactive"

// jobQueue is the service's admission queue: bounded like the old FIFO
// channel, but fair across classes. Each class (a submitter, or one batch
// sweep) keeps its own FIFO, and executors drain the classes round-robin,
// so a thousand-spec sweep and a single interactive submission alternate
// instead of the sweep starving everything behind it. Within a class,
// order stays first-in first-out.
type jobQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// capacity bounds the total queued runs across all classes; size is
	// the current total.
	capacity int
	size     int
	// classes holds each class's FIFO; ring is the round-robin order of
	// classes with pending work, and next indexes the class the next pop
	// serves.
	classes map[string][]*run
	ring    []string
	next    int
	closed  bool
	// gauge mirrors per-class depth into the metrics registry; nil when
	// the queue runs without one (tests).
	gauge *telemetry.GaugeVec
}

func newJobQueue(capacity int, gauge *telemetry.GaugeVec) *jobQueue {
	q := &jobQueue{capacity: capacity, classes: make(map[string][]*run), gauge: gauge}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// depth returns the total queued runs across all classes.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// push admits runs into the named class atomically: either every run is
// queued or none is, so a batch cannot be half-admitted. It never blocks —
// a full queue fails fast with ErrQueueFull, a closed one with ErrClosed.
func (q *jobQueue) push(class string, rs ...*run) error {
	if len(rs) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.size+len(rs) > q.capacity {
		return ErrQueueFull
	}
	if _, ok := q.classes[class]; !ok {
		q.ring = append(q.ring, class)
	}
	q.classes[class] = append(q.classes[class], rs...)
	q.size += len(rs)
	if q.gauge != nil {
		q.gauge.With(class).Add(int64(len(rs)))
	}
	q.cond.Broadcast()
	return nil
}

// pop blocks until a run is available (returning the head of the next
// class in round-robin order) or the queue is closed and drained
// (returning ok=false). Closing does not discard queued runs: executors
// keep popping until the backlog is empty, mirroring how the old channel
// drained on close.
func (q *jobQueue) pop() (*run, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	class := q.ring[q.next]
	fifo := q.classes[class]
	r := fifo[0]
	q.size--
	if q.gauge != nil {
		q.gauge.With(class).Dec()
	}
	if len(fifo) == 1 {
		delete(q.classes, class)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// q.next now already indexes the class after the emptied one.
	} else {
		q.classes[class] = fifo[1:]
		q.next++
	}
	return r, true
}

// close stops admission and wakes blocked executors so they can drain the
// backlog and exit.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
