package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"atlahs/results"
	"atlahs/sim"
)

// TestHTTPMetricsScrape pins the /metrics surface: the cache verdict
// counters move as documented across a miss and a fast-path hit, the text
// exposition is deterministic across back-to-back idle scrapes, and
// ?format=json yields a valid atlahs.metrics/v1 document carrying the
// same counters.
func TestHTTPMetricsScrape(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	spec := wireSpec(t, 90)

	if _, rr := postSpec(t, ts.URL, spec); rr.Status != StatusDone {
		t.Fatalf("first submission: %+v", rr)
	}
	if _, rr := postSpec(t, ts.URL, spec); !rr.Cached {
		t.Fatalf("second submission not cached: %+v", rr)
	}

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("GET /metrics Content-Type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	text := scrape()
	for _, want := range []string{
		`atlahs_service_cache_requests_total{result="lookaside"} 1`,
		`atlahs_service_cache_requests_total{result="miss"} 1`,
		`atlahs_service_runs_total{status="done"} 1`,
		"# TYPE atlahs_service_run_wall_seconds histogram",
		"atlahs_service_run_wall_seconds_count 1",
		"atlahs_engine_events_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape is missing %q:\n%s", want, text)
		}
	}
	// An idle service scrapes identically: the snapshot is deterministic.
	if again := scrape(); again != text {
		t.Fatalf("idle scrapes differ:\n%s\n---\n%s", text, again)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ms, err := results.DecodeMetricsJSON(resp.Body)
	if err != nil {
		t.Fatalf("JSON scrape does not validate: %v", err)
	}
	found := false
	for _, m := range ms.Metrics {
		if m.Name == "atlahs_service_cache_requests_total" && m.LabelValue == "miss" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("JSON scrape is missing the miss counter: %+v", ms.Metrics)
	}
}

// TestHTTPRunMetricsAndTrace pins the per-run documents: a finished run
// serves its engine-counter snapshot at /v1/runs/{id}/metrics, and — with
// Config.Timeline on — its Chrome trace-event timeline at
// /v1/runs/{id}/trace.
func TestHTTPRunMetricsAndTrace(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1, Timeline: true})
	_, rr := postSpec(t, ts.URL, wireSpec(t, 91))
	if rr.Status != StatusDone {
		t.Fatalf("submission: %+v", rr)
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + rr.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET run metrics: %d", resp.StatusCode)
	}
	ms, err := results.DecodeMetricsJSON(resp.Body)
	if err != nil {
		t.Fatalf("run metrics do not validate: %v", err)
	}
	events := -1.0
	for _, m := range ms.Metrics {
		if m.Name == "atlahs_engine_events_total" {
			events = m.Value
		}
	}
	if events <= 0 {
		t.Fatalf("run metrics carry no event count: %+v", ms.Metrics)
	}

	tresp, err := http.Get(ts.URL + "/v1/runs/" + rr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET run trace: %d", tresp.StatusCode)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace carries no events")
	}

	// Without Timeline recording, the trace endpoint is a 404.
	_, ts2 := testServer(t, Config{Jobs: 1})
	_, rr2 := postSpec(t, ts2.URL, wireSpec(t, 91))
	nresp, err := http.Get(ts2.URL + "/v1/runs/" + rr2.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace without recording: %d, want 404", nresp.StatusCode)
	}
}

// TestHTTPHealthz pins the readiness document: ok plus queue, executor,
// store and uptime fields.
func TestHTTPHealthz(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServer(t, Config{Jobs: 2, ArtifactDir: dir})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/healthz: %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Ok {
		t.Fatalf("healthz not ok: %+v", h)
	}
	if h.UptimeSeconds < 0 || h.QueueDepth != 0 {
		t.Fatalf("healthz counters: %+v", h)
	}
	if h.Executors.Busy+h.Executors.Idle != 2 {
		t.Fatalf("executor accounting: %+v", h.Executors)
	}
	if !h.Store.Configured || !h.Store.Writable || h.Store.Path != dir {
		t.Fatalf("store health: %+v", h.Store)
	}

	// Without a store the probe still answers ok — nothing to persist to
	// means nothing can be unwritable.
	_, ts2 := testServer(t, Config{Jobs: 1})
	resp2, err := http.Get(ts2.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var h2 healthResponse
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if !h2.Ok || h2.Store.Configured {
		t.Fatalf("storeless healthz: %+v", h2)
	}
}

// TestSSEBackpressureDrops forces a lagging subscriber: a run emitting far
// more op events than the subscription buffer holds, with nobody draining
// until it finishes. The dropped events must surface on the terminal
// event, the run snapshot, and the run's JSON wire shape.
func TestSSEBackpressureDrops(t *testing.T) {
	svc := newService(t, Config{Jobs: 1})
	// 32-rank alltoall: 32*31 sends + matching recvs, several times the
	// 1024-slot subscription buffer.
	spec := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "alltoall", Ranks: 32, Bytes: 256}},
		Backend: "blocksim"}
	snap, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := svc.Subscribe(snap.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer sub.Close()
	blockGate <- struct{}{} // release the factory; the run floods the idle subscriber
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}
	var last Event
	for ev := range sub.C {
		last = ev
	}
	done, ok := last.Data.(DoneData)
	if !ok {
		t.Fatalf("terminal event is %T (%+v)", last.Data, last)
	}
	if done.DroppedEvents == 0 {
		t.Fatal("terminal event discloses no dropped events under forced backpressure")
	}
	if sub.Dropped() == 0 {
		t.Fatal("subscription drop counter did not move")
	}
	// Delivering the terminal event itself can displace a few more
	// buffered events after its payload was built, so the snapshot may be
	// marginally ahead of the disclosure — never behind it.
	final, _ := svc.Get(snap.ID)
	if final.Dropped < done.DroppedEvents {
		t.Fatalf("snapshot dropped %d, terminal event %d", final.Dropped, done.DroppedEvents)
	}
	if rr := newRunResponse(final); rr.DroppedEvents != final.Dropped {
		t.Fatalf("wire shape dropped %d, snapshot %d", rr.DroppedEvents, final.Dropped)
	}
}

// TestQueueDepthGauge pins the admission gauge: queued-but-not-started
// runs appear under their class and drain back to zero.
func TestQueueDepthGauge(t *testing.T) {
	svc := newService(t, Config{Jobs: 1, Queue: 4})
	blocked := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 3333}},
		Backend: "blocksim"}
	first, err := svc.Submit(blocked)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the executor picked the job up (queue empty again).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, _ := svc.Get(first.ID); s.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "ring", Ranks: 4, Bytes: 4444}},
		Backend: "blocksim"}
	if _, err := svc.SubmitIn("probe", second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.metrics.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `atlahs_service_queue_depth{class="probe"} 1`) {
		t.Fatalf("queue gauge missing:\n%s", buf.String())
	}
	blockGate <- struct{}{}
	blockGate <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
}
