package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"atlahs/results"
)

// getJSON fetches one URL and decodes its JSON body into v.
func getJSON(t *testing.T, url string, status int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d (want %d): %s", url, resp.StatusCode, status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPHistory(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	// Two distinct specs complete in submission order.
	_, rr1 := postSpec(t, ts.URL, wireSpec(t, 1))
	_, rr2 := postSpec(t, ts.URL, wireSpec(t, 2))
	if rr1.Status != StatusDone || rr2.Status != StatusDone {
		t.Fatalf("runs not done: %+v %+v", rr1, rr2)
	}

	var hist historyResponse
	getJSON(t, ts.URL+"/v1/history", http.StatusOK, &hist)
	if hist.Schema != "atlahs.history/v1" {
		t.Errorf("schema = %q", hist.Schema)
	}
	byMetric := map[string][]results.Point{}
	for _, s := range hist.Series {
		byMetric[s.Metric] = s.Points
	}
	pts, ok := byMetric["runtime_ps"]
	if !ok || len(pts) != 2 {
		t.Fatalf("runtime_ps series = %+v, want two points", byMetric)
	}
	if pts[0].Label != rr1.ID || pts[1].Label != rr2.ID {
		t.Errorf("labels = %q %q, want completion order %q %q", pts[0].Label, pts[1].Label, rr1.ID, rr2.ID)
	}

	// ?metric= filters series; a bad pattern is a 400.
	var filtered historyResponse
	getJSON(t, ts.URL+"/v1/history?metric=%5Eops%24", http.StatusOK, &filtered)
	if len(filtered.Series) != 1 || filtered.Series[0].Metric != "ops" {
		t.Errorf("filtered series = %+v, want just ops", filtered.Series)
	}
	var bad errorResponse
	getJSON(t, ts.URL+"/v1/history?metric=%28", http.StatusBadRequest, &bad)

	// ?format=html renders the report.
	resp, err := http.Get(ts.URL + "/v1/history?format=html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "runtime_ps") {
		t.Errorf("HTML report missing runtime_ps:\n%s", body)
	}
}

func TestHTTPHistoryFromStore(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServer(t, Config{Jobs: 1, ArtifactDir: dir})
	_, rr := postSpec(t, ts.URL, wireSpec(t, 1))

	var hist historyResponse
	getJSON(t, ts.URL+"/v1/history", http.StatusOK, &hist)
	found := false
	for _, s := range hist.Series {
		if s.Metric == "runtime_ps" && len(s.Points) == 1 && s.Points[0].Label == rr.ID {
			found = true
			if s.Points[0].Unix == 0 {
				t.Error("store-backed history point has no timestamp")
			}
		}
	}
	if !found {
		t.Errorf("store-backed history = %+v, want a runtime_ps point for %s", hist.Series, rr.ID)
	}
}

func TestHTTPAnalyzeDiff(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	_, rr1 := postSpec(t, ts.URL, wireSpec(t, 1))
	_, rr2 := postSpec(t, ts.URL, wireSpec(t, 2)) // different bytes: runtime differs

	// A run against itself: no changes, not regressed.
	var same analyzeDiffResponse
	getJSON(t, ts.URL+"/v1/analyze/diff?a="+rr1.ID+"&b="+rr1.ID, http.StatusOK, &same)
	if same.Regressed || len(same.Regressions) != 0 {
		t.Errorf("self-diff regressed: %+v", same)
	}
	d, err := results.DecodeDiffJSON(strings.NewReader(string(same.Diff)))
	if err != nil {
		t.Fatalf("embedded diff does not decode: %v", err)
	}
	if d.Changed != 0 {
		t.Errorf("self-diff Changed = %d", d.Changed)
	}

	// Two different runs: the bigger payload takes longer, so with a zero
	// threshold the diff in one direction regresses.
	var fwd, rev analyzeDiffResponse
	getJSON(t, ts.URL+"/v1/analyze/diff?a="+rr1.ID+"&b="+rr2.ID+"&threshold=0", http.StatusOK, &fwd)
	getJSON(t, ts.URL+"/v1/analyze/diff?a="+rr2.ID+"&b="+rr1.ID+"&threshold=0", http.StatusOK, &rev)
	if fwd.Regressed == rev.Regressed {
		t.Errorf("exactly one direction should regress: fwd=%v rev=%v", fwd.Regressed, rev.Regressed)
	}

	// Errors: missing params, unknown run.
	var bad errorResponse
	getJSON(t, ts.URL+"/v1/analyze/diff", http.StatusBadRequest, &bad)
	getJSON(t, ts.URL+"/v1/analyze/diff?a="+rr1.ID+"&b=r_0000000000000000", http.StatusNotFound, &bad)
	getJSON(t, ts.URL+"/v1/analyze/diff?a="+rr1.ID+"&b="+rr1.ID+"&threshold=x", http.StatusBadRequest, &bad)

	// HTML rendering names the runs.
	resp, err := http.Get(ts.URL + "/v1/analyze/diff?a=" + rr1.ID + "&b=" + rr2.ID + "&format=html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), rr1.ID) || !strings.Contains(string(body), rr2.ID) {
		t.Errorf("HTML diff report does not name the runs:\n%s", body)
	}
}
