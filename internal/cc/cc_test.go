package cc

import (
	"testing"
	"testing/quick"

	"atlahs/internal/simtime"
	"atlahs/internal/xrand"
)

func params() Params {
	return Params{
		MTU:     4096,
		BaseRTT: 8 * simtime.Microsecond,
		BDP:     200 * 1024,
	}
}

func TestNewControllers(t *testing.T) {
	for _, name := range []string{"mprdma", "swift", "dctcp", "MPRDMA", "Swift"} {
		c, err := New(name, params())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if c.Window() < params().MTU {
			t.Fatalf("%s initial window %d < MTU", name, c.Window())
		}
	}
	if _, err := New("bogus", params()); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := New("ndp", params()); err == nil {
		t.Fatal("ndp should not be a window controller")
	}
	if _, err := New("mprdma", Params{}); err == nil {
		t.Fatal("zero MTU accepted")
	}
}

func TestIsReceiverDriven(t *testing.T) {
	if !IsReceiverDriven("ndp") || !IsReceiverDriven("NDP") {
		t.Fatal("ndp must be receiver driven")
	}
	if IsReceiverDriven("swift") {
		t.Fatal("swift is not receiver driven")
	}
}

func TestMPRDMAIncreaseDecrease(t *testing.T) {
	c, _ := New("mprdma", params())
	w0 := c.Window()
	for i := 0; i < 50; i++ {
		c.OnAck(simtime.Time(i), Feedback{AckedBytes: 4096, ECNMarked: false, RTT: 8 * simtime.Microsecond})
	}
	if c.Window() <= w0 {
		t.Fatalf("no additive increase: %d -> %d", w0, c.Window())
	}
	wUp := c.Window()
	for i := 0; i < 200; i++ {
		c.OnAck(simtime.Time(i), Feedback{AckedBytes: 4096, ECNMarked: true, RTT: 8 * simtime.Microsecond})
	}
	if c.Window() >= wUp {
		t.Fatalf("no decrease under marks: %d -> %d", wUp, c.Window())
	}
	if c.Window() < params().MTU {
		t.Fatalf("window below one MTU: %d", c.Window())
	}
}

func TestSwiftDelayResponse(t *testing.T) {
	p := params()
	c, _ := New("swift", p)
	w0 := c.Window()
	// below-target RTTs grow the window
	for i := 0; i < 50; i++ {
		c.OnAck(simtime.Time(i)*simtime.Time(p.BaseRTT), Feedback{AckedBytes: 4096, RTT: p.BaseRTT})
	}
	if c.Window() <= w0 {
		t.Fatalf("no growth below target: %d -> %d", w0, c.Window())
	}
	// far-above-target RTTs shrink it (decreases rate-limited to 1/RTT)
	wUp := c.Window()
	now := simtime.Time(1000 * p.BaseRTT)
	for i := 0; i < 50; i++ {
		c.OnAck(now, Feedback{AckedBytes: 4096, RTT: 10 * p.BaseRTT})
		now = now.Add(2 * p.BaseRTT)
	}
	if c.Window() >= wUp {
		t.Fatalf("no decrease above target: %d -> %d", wUp, c.Window())
	}
}

func TestSwiftDecreaseRateLimited(t *testing.T) {
	p := params()
	c, _ := New("swift", p)
	now := simtime.Time(100 * p.BaseRTT)
	c.OnAck(now, Feedback{AckedBytes: 4096, RTT: 10 * p.BaseRTT})
	w1 := c.Window()
	// immediately after a decrease, another high-delay ACK must not decrease again
	c.OnAck(now.Add(1), Feedback{AckedBytes: 4096, RTT: 10 * p.BaseRTT})
	if c.Window() != w1 {
		t.Fatalf("second decrease within one RTT: %d -> %d", w1, c.Window())
	}
}

func TestDCTCPAlphaConvergence(t *testing.T) {
	p := params()
	c, _ := New("dctcp", p)
	// saturate with fully marked windows: window must shrink towards 1 MTU
	for i := 0; i < 5000; i++ {
		c.OnAck(simtime.Time(i), Feedback{AckedBytes: p.MTU, ECNMarked: true, RTT: p.BaseRTT})
	}
	if c.Window() > 4*p.MTU {
		t.Fatalf("dctcp did not shrink under full marking: %d", c.Window())
	}
	// clean windows: must grow again
	w := c.Window()
	for i := 0; i < 5000; i++ {
		c.OnAck(simtime.Time(i), Feedback{AckedBytes: p.MTU, ECNMarked: false, RTT: p.BaseRTT})
	}
	if c.Window() <= w {
		t.Fatalf("dctcp did not regrow: %d -> %d", w, c.Window())
	}
}

func TestTimeoutCollapsesWindow(t *testing.T) {
	for _, name := range []string{"mprdma", "swift", "dctcp"} {
		c, _ := New(name, params())
		c.OnTimeout(0)
		if c.Window() != params().MTU {
			t.Fatalf("%s window after timeout = %d, want %d", name, c.Window(), params().MTU)
		}
	}
}

// Property: windows stay within [MTU, maxWin] under arbitrary feedback.
func TestWindowBoundsProperty(t *testing.T) {
	p := params()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		for _, name := range []string{"mprdma", "swift", "dctcp"} {
			c, err := New(name, p)
			if err != nil {
				return false
			}
			now := simtime.Time(0)
			for i := 0; i < 500; i++ {
				now = now.Add(simtime.Duration(rng.Int63n(int64(p.BaseRTT))))
				if rng.Bool(0.02) {
					c.OnTimeout(now)
				} else {
					c.OnAck(now, Feedback{
						AckedBytes: p.MTU,
						ECNMarked:  rng.Bool(0.3),
						RTT:        p.BaseRTT + simtime.Duration(rng.Int63n(int64(4*p.BaseRTT))),
					})
				}
				w := c.Window()
				if w < p.MTU || w > 4*p.BDP {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWinDefault(t *testing.T) {
	p := Params{MTU: 1000}
	if p.maxWin() != 256*1000 {
		t.Fatalf("default maxWin without BDP = %d", p.maxWin())
	}
	p.BDP = 10000
	if p.maxWin() != 40000 {
		t.Fatalf("default maxWin with BDP = %d", p.maxWin())
	}
	p.MaxWin = 123456
	if p.maxWin() != 123456 {
		t.Fatalf("explicit maxWin = %d", p.maxWin())
	}
}

func TestControllerNames(t *testing.T) {
	for _, name := range []string{"mprdma", "swift", "dctcp"} {
		c, _ := New(name, params())
		if c.Name() != name {
			t.Fatalf("Name() = %q, want %q", c.Name(), name)
		}
	}
}
