// Package cc implements the congestion-control algorithms evaluated in the
// paper's case studies: MPRDMA (sender-based, per-packet ECN; Lu et al.,
// NSDI'18), Swift (delay-based; Kumar et al., SIGCOMM'20), DCTCP
// (ECN-fraction EWMA) and the parameters of NDP (receiver-driven with
// packet trimming; Handley et al., SIGCOMM'17).
//
// MPRDMA, Swift and DCTCP are window controllers plugged into the
// packet-level sender transport; NDP is receiver-driven and implemented as
// its own transport mode in internal/pktnet, configured via NDPParams.
//
// The models are deliberately compact: they keep the decision structure
// that produces each algorithm's characteristic behaviour — MPRDMA reacts
// to per-packet ECN marks wherever they happen, Swift folds all congestion
// into a single end-to-end delay measurement (its weakness in multi-hop
// congestion, paper Fig 1), NDP recovers trimmed packets via receiver
// pulls but cannot see in-network congestion far from the receiver
// (paper Fig 11).
package cc

import (
	"fmt"
	"math"
	"strings"

	"atlahs/internal/simtime"
)

func sqrtF(x float64) float64 {
	if x < 1 {
		return 1
	}
	return math.Sqrt(x)
}

// Feedback describes one acknowledgement delivered to a window controller.
type Feedback struct {
	AckedBytes int64
	ECNMarked  bool
	RTT        simtime.Duration
}

// Controller adjusts a congestion window in bytes based on per-ACK
// feedback. Implementations are single-flow and not safe for concurrent
// use (the event engine is single-threaded).
type Controller interface {
	// Name identifies the algorithm ("mprdma", "swift", ...).
	Name() string
	// Window returns the current congestion window in bytes (>= 1 MTU).
	Window() int64
	// OnAck processes feedback for one acknowledged packet at time now.
	OnAck(now simtime.Time, fb Feedback)
	// OnTimeout reacts to a retransmission timeout.
	OnTimeout(now simtime.Time)
}

// Params configures a window controller.
type Params struct {
	MTU     int64            // packet payload size in bytes
	BaseRTT simtime.Duration // unloaded round-trip time of the path
	BDP     int64            // bandwidth-delay product in bytes
	MaxWin  int64            // window cap; 0 means 4*BDP
}

func (p Params) maxWin() int64 {
	if p.MaxWin > 0 {
		return p.MaxWin
	}
	if p.BDP > 0 {
		return 4 * p.BDP
	}
	return 256 * p.MTU
}

// New returns the controller for the given algorithm name. Valid names:
// "mprdma", "swift", "dctcp". "ndp" is not a window controller; the
// packet simulator instantiates its receiver-driven transport instead.
func New(name string, p Params) (Controller, error) {
	if p.MTU <= 0 {
		return nil, fmt.Errorf("cc: MTU must be positive")
	}
	switch strings.ToLower(name) {
	case "mprdma":
		return newMPRDMA(p), nil
	case "swift":
		return newSwift(p), nil
	case "dctcp":
		return newDCTCP(p), nil
	case "ndp":
		return nil, fmt.Errorf("cc: ndp is receiver-driven; use the pktnet NDP transport")
	default:
		return nil, fmt.Errorf("cc: unknown algorithm %q", name)
	}
}

// IsReceiverDriven reports whether the named algorithm runs as a
// receiver-driven transport rather than a sender window controller.
func IsReceiverDriven(name string) bool { return strings.EqualFold(name, "ndp") }

// ---------------------------------------------------------------------------
// MPRDMA: per-packet ECN AIMD. On every marked ACK the window shrinks by
// half a packet; on every unmarked ACK it grows by 1/cwnd packets
// (additive increase of one packet per RTT). This per-packet reaction is
// what the paper contrasts with DCTCP's per-window averaging.

type mprdma struct {
	p        Params
	cwndPkts float64
}

func newMPRDMA(p Params) *mprdma {
	start := float64(p.BDP) / float64(p.MTU)
	if start < 1 {
		start = 1
	}
	return &mprdma{p: p, cwndPkts: start}
}

func (m *mprdma) Name() string { return "mprdma" }

func (m *mprdma) Window() int64 {
	w := int64(m.cwndPkts * float64(m.p.MTU))
	if w < m.p.MTU {
		w = m.p.MTU
	}
	if max := m.p.maxWin(); w > max {
		w = max
	}
	return w
}

func (m *mprdma) OnAck(_ simtime.Time, fb Feedback) {
	if fb.ECNMarked {
		m.cwndPkts -= 0.5
	} else {
		m.cwndPkts += 1 / m.cwndPkts
	}
	m.clamp()
}

func (m *mprdma) OnTimeout(simtime.Time) {
	m.cwndPkts = 1
}

func (m *mprdma) clamp() {
	if m.cwndPkts < 1 {
		m.cwndPkts = 1
	}
	if max := float64(m.p.maxWin()) / float64(m.p.MTU); m.cwndPkts > max {
		m.cwndPkts = max
	}
}

// ---------------------------------------------------------------------------
// Swift: delay-based control with a single end-to-end target delay. Below
// target: additive increase. Above target: multiplicative decrease
// proportional to the delay excess, at most once per RTT.

const (
	swiftAI     = 1.0  // packets of additive increase per RTT
	swiftBeta   = 0.8  // MD gain
	swiftMaxMD  = 0.5  // maximum single decrease factor
	swiftTgtMul = 1.25 // target delay = BaseRTT * swiftTgtMul
	// swiftFSAlpha is the flow-scaling gain: the target grows by
	// alpha/sqrt(cwnd) RTTs as the window shrinks, letting N incast flows
	// share a queue stably (Kumar et al. §3.2).
	swiftFSAlpha = 4.0
)

type swift struct {
	p           Params
	cwndPkts    float64
	target      simtime.Duration
	lastDecease simtime.Time
}

func newSwift(p Params) *swift {
	start := float64(p.BDP) / float64(p.MTU)
	if start < 1 {
		start = 1
	}
	return &swift{
		p:        p,
		cwndPkts: start,
		target:   simtime.Duration(float64(p.BaseRTT) * swiftTgtMul),
	}
}

func (s *swift) Name() string { return "swift" }

func (s *swift) Window() int64 {
	w := int64(s.cwndPkts * float64(s.p.MTU))
	if w < s.p.MTU {
		w = s.p.MTU
	}
	if max := s.p.maxWin(); w > max {
		w = max
	}
	return w
}

func (s *swift) OnAck(now simtime.Time, fb Feedback) {
	// flow scaling: small windows tolerate proportionally more delay
	target := s.target + simtime.Duration(float64(s.p.BaseRTT)*swiftFSAlpha/sqrtF(s.cwndPkts))
	if fb.RTT <= target {
		s.cwndPkts += swiftAI / s.cwndPkts
	} else if now.Sub(s.lastDecease) >= s.p.BaseRTT {
		// Swift folds all congestion along the path into this one delay
		// sample: it cannot tell which hop is congested.
		excess := float64(fb.RTT-target) / float64(fb.RTT)
		md := 1 - swiftBeta*excess
		if md < 1-swiftMaxMD {
			md = 1 - swiftMaxMD
		}
		s.cwndPkts *= md
		s.lastDecease = now
	}
	s.clamp()
}

func (s *swift) OnTimeout(now simtime.Time) {
	s.cwndPkts = 1
	s.lastDecease = now
}

func (s *swift) clamp() {
	if s.cwndPkts < 1 {
		s.cwndPkts = 1
	}
	if max := float64(s.p.maxWin()) / float64(s.p.MTU); s.cwndPkts > max {
		s.cwndPkts = max
	}
}

// Target returns Swift's end-to-end delay target (exported for tests and
// experiment reporting).
func (s *swift) Target() simtime.Duration { return s.target }

// ---------------------------------------------------------------------------
// DCTCP: per-window ECN fraction with EWMA gain g; decrease once per
// window by alpha/2, additive increase of one packet per RTT otherwise.

const dctcpG = 1.0 / 16

type dctcp struct {
	p          Params
	cwndPkts   float64
	alpha      float64
	ackedBytes int64
	markedB    int64
	windowEnd  int64 // acked-byte count at which the current window closes
}

func newDCTCP(p Params) *dctcp {
	start := float64(p.BDP) / float64(p.MTU)
	if start < 1 {
		start = 1
	}
	d := &dctcp{p: p, cwndPkts: start}
	d.windowEnd = d.Window()
	return d
}

func (d *dctcp) Name() string { return "dctcp" }

func (d *dctcp) Window() int64 {
	w := int64(d.cwndPkts * float64(d.p.MTU))
	if w < d.p.MTU {
		w = d.p.MTU
	}
	if max := d.p.maxWin(); w > max {
		w = max
	}
	return w
}

func (d *dctcp) OnAck(_ simtime.Time, fb Feedback) {
	d.ackedBytes += fb.AckedBytes
	if fb.ECNMarked {
		d.markedB += fb.AckedBytes
	}
	if d.ackedBytes >= d.windowEnd {
		frac := 0.0
		if d.ackedBytes > 0 {
			frac = float64(d.markedB) / float64(d.ackedBytes)
		}
		d.alpha = (1-dctcpG)*d.alpha + dctcpG*frac
		if d.markedB > 0 {
			d.cwndPkts *= 1 - d.alpha/2
		} else {
			d.cwndPkts += 1
		}
		d.clamp()
		d.ackedBytes = 0
		d.markedB = 0
		d.windowEnd = d.Window()
	}
}

func (d *dctcp) OnTimeout(simtime.Time) {
	d.cwndPkts = 1
	d.clamp()
	d.ackedBytes = 0
	d.markedB = 0
	d.windowEnd = d.Window()
}

func (d *dctcp) clamp() {
	if d.cwndPkts < 1 {
		d.cwndPkts = 1
	}
	if max := float64(d.p.maxWin()) / float64(d.p.MTU); d.cwndPkts > max {
		d.cwndPkts = max
	}
}

// ---------------------------------------------------------------------------

// NDPParams configures the receiver-driven NDP transport in pktnet.
type NDPParams struct {
	// InitialWindowPkts is the number of packets a sender may blast before
	// the first pull arrives (defaults to the path BDP).
	InitialWindowPkts int
	// PullSpacing is the interval between pull tokens issued by a receiver,
	// normally one MTU serialisation time on its access link so that the
	// aggregate arrival rate matches the link rate.
	PullSpacing simtime.Duration
}
