// Package fluid is a flow-level network emulator with max-min fair
// bandwidth sharing. It plays two roles in this reproduction:
//
//  1. It is the "testbed": the paper validates ATLAHS predictions against
//     measured runtimes from real clusters (Alps, a CSCS fat-tree system)
//     which we do not have. The fluid emulator is an *independently
//     modelled* system — progressive-filling fair rates rather than
//     LogGOPS gaps or per-packet FIFO queues — so comparing the ATLAHS
//     backends against it reproduces the logic of the validation
//     experiments (Figs 8 and 10): do cheap models track an independent
//     ground truth within a few percent?
//
//  2. It doubles as a third ATLAHS backend (congestion-aware
//     message-level), demonstrating the backend interface's flexibility.
//
// Each message is a fluid flow along one ECMP-selected shortest path.
// Whenever a flow starts or completes, rates are recomputed with
// progressive filling: all unfrozen flows grow at the same rate until some
// link saturates, flows on saturated links freeze, and filling continues.
// An optional per-message overhead and deterministic jitter emulate
// software-stack latency and system noise.
package fluid

import (
	"fmt"
	"math"

	"atlahs/internal/engine"
	"atlahs/internal/simtime"
	"atlahs/internal/topo"
	"atlahs/internal/xrand"
)

// Config parameterises the emulator.
type Config struct {
	Topo *topo.Topology
	// Overhead is a fixed software latency added to every message.
	Overhead simtime.Duration
	// JitterFrac adds a deterministic pseudo-random extra delay per message
	// uniform in [0, JitterFrac] of the message's transfer time, emulating
	// system noise. 0 disables jitter.
	JitterFrac float64
	Seed       uint64
}

// Network is a fluid-flow simulation instance bound to an Engine.
type Network struct {
	eng    *engine.Engine
	cfg    Config
	topo   *topo.Topology
	active []*flow
	epoch  uint64 // invalidates stale wake events
	last   simtime.Time
	rng    *xrand.RNG
	nextID uint64

	// MsgsCompleted counts delivered messages.
	MsgsCompleted uint64
}

type flow struct {
	id        uint64
	remaining float64 // bytes
	rate      float64 // bytes per picosecond
	links     []int
	tail      simtime.Duration // propagation + overhead + jitter, applied at completion
	onDone    func(simtime.Time)
}

// New creates a fluid network over cfg.Topo scheduling on eng.
func New(eng *engine.Engine, cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("fluid: nil topology")
	}
	return &Network{
		eng:  eng,
		cfg:  cfg,
		topo: cfg.Topo,
		rng:  xrand.New(cfg.Seed ^ 0x464c554944), // "FLUID"
	}, nil
}

// Engine returns the event engine the network runs on.
func (n *Network) Engine() *engine.Engine { return n.eng }

// Send injects a message from host src to host dst; onDelivered fires at
// the simulated delivery time of the last byte.
func (n *Network) Send(src, dst int, size int64, onDelivered func(simtime.Time)) {
	if src == dst {
		panic("fluid: Send to self — intra-host transfers must be handled by the caller")
	}
	if size <= 0 {
		size = 1
	}
	paths := n.topo.Paths(src, dst)
	if len(paths) == 0 {
		panic(fmt.Sprintf("fluid: no path %d->%d", src, dst))
	}
	n.nextID++
	f := &flow{
		id:        n.nextID,
		remaining: float64(size),
		onDone:    onDelivered,
	}
	f.links = paths[topo.FlowHashECMP{}.Pick(len(paths), f.id, 0)]
	var prop simtime.Duration
	for _, lid := range f.links {
		prop += n.topo.Links[lid].Latency
	}
	f.tail = prop + n.cfg.Overhead
	if n.cfg.JitterFrac > 0 {
		// deterministic per-message jitter proportional to ideal transfer time
		ideal := float64(size) * float64(n.slowestLink(f.links))
		f.tail += simtime.Duration(n.rng.Float64() * n.cfg.JitterFrac * ideal)
	}
	n.advance()
	n.active = append(n.active, f)
	n.recompute()
}

func (n *Network) slowestLink(links []int) simtime.Duration {
	var worst simtime.Duration = 1
	for _, lid := range links {
		if g := n.topo.Links[lid].PsPerByte; g > worst {
			worst = g
		}
	}
	return worst
}

// advance progresses all active flows to the current time.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := float64(now.Sub(n.last))
	if dt > 0 {
		for _, f := range n.active {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.last = now
}

// recompute performs progressive filling over all active flows, completes
// any that have drained, and schedules the next wake-up.
func (n *Network) recompute() {
	n.epoch++
	// complete drained flows (in insertion order for determinism)
	kept := n.active[:0]
	for _, f := range n.active {
		if f.remaining <= 0.5 {
			n.MsgsCompleted++
			if f.onDone != nil {
				done := f.onDone
				at := n.eng.Now().Add(f.tail)
				n.eng.Schedule(at, func() { done(at) })
			}
		} else {
			kept = append(kept, f)
		}
	}
	n.active = kept
	if len(n.active) == 0 {
		return
	}

	// progressive filling
	nl := len(n.topo.Links)
	avail := make([]float64, nl)
	cnt := make([]int, nl)
	for i := range avail {
		avail[i] = 1 / float64(n.topo.Links[i].PsPerByte)
	}
	for _, f := range n.active {
		f.rate = 0
		for _, lid := range f.links {
			cnt[lid]++
		}
	}
	frozen := make([]bool, len(n.active))
	unfrozen := len(n.active)
	for unfrozen > 0 {
		share := math.Inf(1)
		for l := 0; l < nl; l++ {
			if cnt[l] > 0 {
				if s := avail[l] / float64(cnt[l]); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) || share < 1e-15 {
			share = 0
		}
		for l := 0; l < nl; l++ {
			if cnt[l] > 0 {
				avail[l] -= share * float64(cnt[l])
			}
		}
		// freeze flows crossing any saturated link
		for i, f := range n.active {
			if frozen[i] {
				continue
			}
			f.rate += share
			saturated := share == 0
			for _, lid := range f.links {
				if avail[lid] <= 1e-12 {
					saturated = true
					break
				}
			}
			if saturated {
				frozen[i] = true
				unfrozen--
				for _, lid := range f.links {
					cnt[lid]--
				}
			}
		}
	}

	// schedule wake at the earliest completion
	soonest := math.Inf(1)
	for _, f := range n.active {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < soonest {
				soonest = t
			}
		}
	}
	if math.IsInf(soonest, 1) {
		// no flow can progress: only possible with zero-capacity links
		panic("fluid: active flows with zero aggregate rate")
	}
	epoch := n.epoch
	wake := n.eng.Now().Add(simtime.Duration(math.Ceil(soonest)))
	n.eng.Schedule(wake, func() {
		if n.epoch != epoch {
			return
		}
		n.advance()
		n.recompute()
	})
}
