package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"atlahs/internal/engine"
	"atlahs/internal/simtime"
	"atlahs/internal/topo"
	"atlahs/internal/xrand"
)

func testTopo(t testing.TB, hosts, perTor, cores int) *topo.Topology {
	t.Helper()
	tp, err := topo.NewFatTree(topo.FatTreeConfig{
		Hosts: hosts, HostsPerToR: perTor, Cores: cores,
		HostLink: topo.DefaultLinkSpec(), UplinkLink: topo.DefaultLinkSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestNilTopo(t *testing.T) {
	if _, err := New(engine.New(), Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestSingleFlowExactTime(t *testing.T) {
	tp := testTopo(t, 4, 2, 2)
	eng := engine.New()
	n, err := New(eng, Config{Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	var done simtime.Time
	n.Send(0, 3, size, func(at simtime.Time) { done = at })
	eng.Run()
	// With an idle network the flow gets the full 25 GB/s: transfer takes
	// size*40 ps plus 4-hop propagation (4 x 500 ns).
	want := simtime.Time(size*40) + simtime.Time(4*500*simtime.Nanosecond)
	if done < want || done > want+simtime.Time(10*simtime.Nanosecond) {
		t.Fatalf("delivered at %v, want ~%v", done, want)
	}
}

func TestFairSharing(t *testing.T) {
	// two equal flows into the same destination share its access link;
	// each should take ~2x the solo time.
	tp := testTopo(t, 4, 2, 2)
	eng := engine.New()
	n, _ := New(eng, Config{Topo: tp})
	const size = 1 << 20
	var t1, t2 simtime.Time
	n.Send(1, 0, size, func(at simtime.Time) { t1 = at })
	n.Send(2, 0, size, func(at simtime.Time) { t2 = at })
	eng.Run()
	solo := float64(size * 40)
	if math.Abs(float64(t1)-2*solo) > 0.1*solo || math.Abs(float64(t2)-2*solo) > 0.1*solo {
		t.Fatalf("shared flows finished at %v and %v, want ~%v", t1, t2, simtime.Time(2*solo))
	}
}

func TestUnequalFlowsMaxMin(t *testing.T) {
	// A short and a long flow share a link: after the short one finishes,
	// the long one speeds up — total time < sequential but > ideal.
	tp := testTopo(t, 4, 2, 2)
	eng := engine.New()
	n, _ := New(eng, Config{Topo: tp})
	var shortT, longT simtime.Time
	n.Send(1, 0, 1<<18, func(at simtime.Time) { shortT = at })
	n.Send(2, 0, 1<<20, func(at simtime.Time) { longT = at })
	eng.Run()
	if shortT >= longT {
		t.Fatalf("short flow (%v) not before long flow (%v)", shortT, longT)
	}
	// long flow: shares for 2*2^18*40 ps, then full rate for the rest
	ideal := float64((1<<20)*40 + 2000*1000)
	if float64(longT) < ideal {
		t.Fatalf("long flow %v faster than ideal %v", longT, simtime.Time(ideal))
	}
	sequential := float64(((1 << 20) + (1 << 18)) * 40 * 2)
	if float64(longT) > sequential {
		t.Fatalf("long flow %v slower than sequential bound", longT)
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	tp := testTopo(t, 16, 4, 4)
	eng := engine.New()
	n, _ := New(eng, Config{Topo: tp})
	rng := xrand.New(3)
	want, got := 200, 0
	for i := 0; i < want; i++ {
		src := rng.Intn(16)
		dst := rng.Intn(15)
		if dst >= src {
			dst++
		}
		n.Send(src, dst, rng.Int63n(1<<20)+1, func(simtime.Time) { got++ })
	}
	eng.Run()
	if got != want {
		t.Fatalf("completed %d/%d", got, want)
	}
	if n.MsgsCompleted != uint64(want) {
		t.Fatalf("MsgsCompleted=%d", n.MsgsCompleted)
	}
}

func TestOverheadAndJitter(t *testing.T) {
	tp := testTopo(t, 4, 2, 2)
	eng := engine.New()
	n, _ := New(eng, Config{Topo: tp, Overhead: 10 * simtime.Microsecond})
	var done simtime.Time
	n.Send(0, 1, 4096, func(at simtime.Time) { done = at })
	eng.Run()
	if simtime.Duration(done) < 10*simtime.Microsecond {
		t.Fatalf("overhead not applied: %v", done)
	}

	// jitter must be deterministic for a fixed seed
	run := func() simtime.Time {
		eng := engine.New()
		n, _ := New(eng, Config{Topo: testTopo(t, 4, 2, 2), JitterFrac: 0.1, Seed: 42})
		var at simtime.Time
		n.Send(0, 3, 1<<20, func(a simtime.Time) { at = a })
		eng.Run()
		return at
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("jitter non-deterministic: %v vs %v", a, b)
	}
	// and larger than the no-jitter time
	engJ := engine.New()
	nj, _ := New(engJ, Config{Topo: testTopo(t, 4, 2, 2), Seed: 42})
	var noJitter simtime.Time
	nj.Send(0, 3, 1<<20, func(at simtime.Time) { noJitter = at })
	engJ.Run()
	if a < noJitter {
		t.Fatalf("jittered %v < unjittered %v", a, noJitter)
	}
}

func TestSelfSendPanics(t *testing.T) {
	tp := testTopo(t, 4, 2, 2)
	n, _ := New(engine.New(), Config{Topo: tp})
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	n.Send(1, 1, 10, nil)
}

// Property: conservation — every message completes, and no message
// completes faster than its physics bound (serialisation at the slowest
// link plus propagation).
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		tp := testTopo(t, 8, 4, 2)
		eng := engine.New()
		n, _ := New(eng, Config{Topo: tp})
		type msg struct {
			size int64
			at   simtime.Time
		}
		k := rng.Intn(20) + 1
		msgs := make([]*msg, k)
		for i := 0; i < k; i++ {
			m := &msg{size: rng.Int63n(1<<19) + 1}
			msgs[i] = m
			src := rng.Intn(8)
			dst := rng.Intn(7)
			if dst >= src {
				dst++
			}
			n.Send(src, dst, m.size, func(at simtime.Time) { m.at = at })
		}
		eng.Run()
		for _, m := range msgs {
			if m.at == 0 {
				return false
			}
			if m.at < simtime.Time(m.size*40) {
				return false // faster than line rate
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOversubscribedCoreContention(t *testing.T) {
	// 8 hosts per ToR, 1 core: cross-ToR aggregate is 1 link. 8 cross-ToR
	// flows should take ~8x a solo cross-ToR flow.
	mk := func() (*engine.Engine, *Network) {
		tp := testTopo(t, 16, 8, 1)
		eng := engine.New()
		n, _ := New(eng, Config{Topo: tp})
		return eng, n
	}
	eng1, n1 := mk()
	var solo simtime.Time
	n1.Send(0, 8, 1<<20, func(at simtime.Time) { solo = at })
	eng1.Run()

	eng2, n2 := mk()
	var last simtime.Time
	for i := 0; i < 8; i++ {
		n2.Send(i, 8+i, 1<<20, func(at simtime.Time) {
			if at > last {
				last = at
			}
		})
	}
	eng2.Run()
	ratio := float64(last) / float64(solo)
	if ratio < 6 || ratio > 10 {
		t.Fatalf("8 flows over 1 uplink: ratio %.2f, want ~8", ratio)
	}
}

func BenchmarkFluidRecompute(b *testing.B) {
	tp := testTopo(b, 64, 8, 8)
	eng := engine.New()
	n, _ := New(eng, Config{Topo: tp})
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.Intn(64)
		dst := rng.Intn(63)
		if dst >= src {
			dst++
		}
		n.Send(src, dst, 1<<16, nil)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}
