// Package placement maps GOAL schedules onto cluster nodes and merges
// multiple jobs into a single simulation — the paper's multi-job and
// multi-tenant support (§3.2) and the job-placement case study (Fig 13).
//
// Multi-job: each application's ranks map to its own (disjoint) node set;
// the merged schedule simply interleaves independent DAGs. Multi-tenant:
// jobs may share nodes, in which case each job's compute streams are
// shifted to a private stream range so the shared node executes both
// concurrently, and message tags are namespaced per job so matching never
// crosses applications.
package placement

import (
	"fmt"

	"atlahs/internal/goal"
	"atlahs/internal/xrand"
)

// Strategy selects how a job's ranks are laid out on the cluster.
type Strategy int

// Strategies. Packed assigns consecutive nodes (locality-preserving);
// RandomStrat scatters ranks uniformly (the paper's "Random Allocation");
// RoundRobin stripes jobs across the cluster.
const (
	Packed Strategy = iota
	RandomStrat
	RoundRobin
)

func (s Strategy) String() string {
	switch s {
	case Packed:
		return "packed"
	case RandomStrat:
		return "random"
	case RoundRobin:
		return "roundrobin"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Job pairs a schedule with its rank->node mapping.
type Job struct {
	Sched *goal.Schedule
	Nodes []int // node of each rank; must be injective within the job
}

// PackedMapping maps rank i to node base+i.
func PackedMapping(nranks, base int) []int {
	m := make([]int, nranks)
	for i := range m {
		m[i] = base + i
	}
	return m
}

// SplitCluster assigns node sets to jobs of the given sizes over a cluster
// of nnodes nodes using the strategy. Packed lays jobs out contiguously in
// order; RandomStrat permutes all nodes first (seeded); RoundRobin deals
// nodes to jobs in turn.
func SplitCluster(nnodes int, sizes []int, strat Strategy, seed uint64) ([][]int, error) {
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("placement: non-positive job size %d", s)
		}
		total += s
	}
	if total > nnodes {
		return nil, fmt.Errorf("placement: %d ranks exceed %d nodes", total, nnodes)
	}
	out := make([][]int, len(sizes))
	switch strat {
	case Packed, RandomStrat:
		var order []int
		if strat == Packed {
			order = make([]int, nnodes)
			for i := range order {
				order[i] = i
			}
		} else {
			order = xrand.New(seed).Perm(nnodes)
		}
		next := 0
		for j, s := range sizes {
			out[j] = append([]int(nil), order[next:next+s]...)
			next += s
		}
	case RoundRobin:
		// deal nodes to jobs one at a time until each job is full
		idx := 0
		for {
			progressed := false
			for j, s := range sizes {
				if len(out[j]) < s {
					out[j] = append(out[j], idx)
					idx++
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
	default:
		return nil, fmt.Errorf("placement: unknown strategy %v", strat)
	}
	return out, nil
}

// Merge combines jobs onto a cluster of nnodes nodes, producing one
// schedule with nnodes ranks. Per-job compute streams are shifted into
// disjoint ranges and tags are namespaced per job, so jobs sharing a node
// (multi-tenancy) execute concurrently without interference in matching.
func Merge(nnodes int, jobs ...Job) (*goal.Schedule, error) {
	if nnodes <= 0 {
		return nil, fmt.Errorf("placement: non-positive node count")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("placement: no jobs")
	}
	// tag namespace stride: must exceed any tag used by a job
	const tagStride = 1 << 20

	out := &goal.Schedule{Ranks: make([]goal.RankProgram, nnodes)}
	streamBase := int32(0)
	for j, job := range jobs {
		if job.Sched == nil {
			return nil, fmt.Errorf("placement: job %d has nil schedule", j)
		}
		if len(job.Nodes) != job.Sched.NumRanks() {
			return nil, fmt.Errorf("placement: job %d maps %d ranks with %d nodes", j, job.Sched.NumRanks(), len(job.Nodes))
		}
		seen := map[int]bool{}
		for r, nd := range job.Nodes {
			if nd < 0 || nd >= nnodes {
				return nil, fmt.Errorf("placement: job %d rank %d -> node %d out of range [0,%d)", j, r, nd, nnodes)
			}
			if seen[nd] {
				return nil, fmt.Errorf("placement: job %d maps two ranks to node %d", j, nd)
			}
			seen[nd] = true
		}
		var jobMaxStream int32
		for r := range job.Sched.Ranks {
			rp := &job.Sched.Ranks[r]
			node := job.Nodes[r]
			dst := &out.Ranks[node]
			base := int32(len(dst.Ops))
			for i := range rp.Ops {
				op := rp.Ops[i]
				if op.CPU > jobMaxStream {
					jobMaxStream = op.CPU
				}
				op.CPU += streamBase
				if op.Kind != goal.KindCalc {
					op.Peer = int32(job.Nodes[op.Peer])
					if op.Tag != goal.AnyTag {
						op.Tag += int32(j) * tagStride
					}
				}
				dst.Ops = append(dst.Ops, op)
				dst.Requires = append(dst.Requires, shift(rp.Requires[i], base))
				dst.IRequires = append(dst.IRequires, shift(rp.IRequires[i], base))
			}
		}
		streamBase += jobMaxStream + 1
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

func shift(deps []int32, base int32) []int32 {
	if len(deps) == 0 {
		return nil
	}
	out := make([]int32, len(deps))
	for i, d := range deps {
		out[i] = d + base
	}
	return out
}

// Remap returns a copy of s with rank i moved to node mapping[i] on a
// cluster of nnodes nodes — the single-job convenience over Merge.
func Remap(s *goal.Schedule, mapping []int, nnodes int) (*goal.Schedule, error) {
	return Merge(nnodes, Job{Sched: s, Nodes: mapping})
}
