package placement

import (
	"testing"
	"testing/quick"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
	"atlahs/internal/xrand"
)

// ring builds an n-rank neighbour ring schedule.
func ring(n int, size int64) *goal.Schedule {
	b := goal.NewBuilder(n)
	for r := 0; r < n; r++ {
		rb := b.Rank(r)
		rb.Send(size, (r+1)%n, 5)
		rb.Recv(size, (r+n-1)%n, 5)
	}
	return b.MustBuild()
}

func TestPackedMapping(t *testing.T) {
	m := PackedMapping(4, 10)
	for i, nd := range m {
		if nd != 10+i {
			t.Fatalf("m[%d]=%d", i, nd)
		}
	}
}

func TestSplitClusterPacked(t *testing.T) {
	sets, err := SplitCluster(16, []int{4, 8}, Packed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || len(sets[0]) != 4 || len(sets[1]) != 8 {
		t.Fatalf("sets=%v", sets)
	}
	if sets[0][0] != 0 || sets[0][3] != 3 || sets[1][0] != 4 {
		t.Fatalf("packed not contiguous: %v", sets)
	}
}

func TestSplitClusterRandomDeterministic(t *testing.T) {
	a, err := SplitCluster(32, []int{8, 8}, RandomStrat, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SplitCluster(32, []int{8, 8}, RandomStrat, 99)
	for j := range a {
		for i := range a[j] {
			if a[j][i] != b[j][i] {
				t.Fatal("random split not deterministic for fixed seed")
			}
		}
	}
	c, _ := SplitCluster(32, []int{8, 8}, RandomStrat, 100)
	same := true
	for j := range a {
		for i := range a[j] {
			if a[j][i] != c[j][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical split")
	}
}

func TestSplitClusterRoundRobin(t *testing.T) {
	sets, err := SplitCluster(8, []int{2, 2}, RoundRobin, 0)
	if err != nil {
		t.Fatal(err)
	}
	// two jobs: stripes 0,2,4,6 and 1,3,5,7
	if sets[0][0] != 0 || sets[0][1] != 2 || sets[1][0] != 1 || sets[1][1] != 3 {
		t.Fatalf("roundrobin stripes wrong: %v", sets)
	}
}

func TestSplitClusterErrors(t *testing.T) {
	if _, err := SplitCluster(4, []int{3, 3}, Packed, 0); err == nil {
		t.Fatal("oversubscribed cluster accepted")
	}
	if _, err := SplitCluster(4, []int{0}, Packed, 0); err == nil {
		t.Fatal("zero-size job accepted")
	}
	if _, err := SplitCluster(4, []int{2}, Strategy(99), 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestRemapPreservesSemantics(t *testing.T) {
	s := ring(4, 1024)
	// reverse mapping onto 8 nodes
	mapped, err := Remap(s, []int{7, 5, 3, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.NumRanks() != 8 {
		t.Fatalf("ranks=%d", mapped.NumRanks())
	}
	if err := mapped.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	// node 7 must send to node 5 (rank0 -> rank1)
	found := false
	for i := range mapped.Ranks[7].Ops {
		op := mapped.Ranks[7].Ops[i]
		if op.Kind == goal.KindSend && op.Peer == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("peer remap wrong")
	}
	// runtime identical to the unmapped schedule on a topology-oblivious backend
	r1, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sched.Run(engine.New(), mapped, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Runtime != r2.Runtime {
		t.Fatalf("LGS runtime changed by remap: %v vs %v", r1.Runtime, r2.Runtime)
	}
}

func TestMergeDisjointJobs(t *testing.T) {
	a, b := ring(4, 1024), ring(4, 2048)
	merged, err := Merge(8, Job{a, PackedMapping(4, 0)}, Job{b, PackedMapping(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	st := merged.ComputeStats()
	if st.Sends != 8 || st.SendBytes != 4*1024+4*2048 {
		t.Fatalf("merged stats %+v", st)
	}
	if _, err := sched.Run(engine.New(), merged, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMultiTenantSharedNodes(t *testing.T) {
	// two jobs on the SAME 4 nodes: streams must not collide, tags must
	// not cross-match
	a, b := ring(4, 1024), ring(4, 4096)
	merged, err := Merge(4, Job{a, PackedMapping(4, 0)}, Job{b, PackedMapping(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	// job 1 ops must be on different streams than job 0 ops
	cpu0 := merged.Ranks[0].Ops[0].CPU
	cpu1 := merged.Ranks[0].Ops[2].CPU // job 1's first op on node 0
	if cpu0 == cpu1 {
		t.Fatal("stream collision between tenants")
	}
	// both rings complete
	res, err := sched.Run(engine.New(), merged, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(merged.ComputeStats().Ops) {
		t.Fatal("not all tenant ops executed")
	}
}

func TestMergeErrors(t *testing.T) {
	a := ring(4, 64)
	if _, err := Merge(2, Job{a, PackedMapping(4, 0)}); err == nil {
		t.Fatal("node out of range accepted")
	}
	if _, err := Merge(8, Job{a, []int{0, 0, 1, 2}}); err == nil {
		t.Fatal("duplicate node within job accepted")
	}
	if _, err := Merge(8, Job{a, []int{0, 1}}); err == nil {
		t.Fatal("mapping length mismatch accepted")
	}
	if _, err := Merge(8); err == nil {
		t.Fatal("no jobs accepted")
	}
	if _, err := Merge(0, Job{a, PackedMapping(4, 0)}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Merge(8, Job{nil, nil}); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

// Property: merging random jobs preserves op counts and matching, and the
// merged schedule always runs to completion.
func TestMergeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nnodes := rng.Intn(12) + 4
		njobs := rng.Intn(3) + 1
		jobs := make([]Job, 0, njobs)
		var wantOps int64
		for j := 0; j < njobs; j++ {
			n := rng.Intn(nnodes-1) + 2
			s := ring(n, rng.Int63n(4096)+1)
			wantOps += int64(s.ComputeStats().Ops)
			// random distinct nodes
			perm := rng.Perm(nnodes)[:n]
			jobs = append(jobs, Job{s, perm})
		}
		merged, err := Merge(nnodes, jobs...)
		if err != nil {
			return false
		}
		if merged.CheckMatched() != nil {
			return false
		}
		res, err := sched.Run(engine.New(), merged, backend.NewLGS(backend.AIParams()), sched.Options{})
		if err != nil {
			return false
		}
		return res.Ops == wantOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if Packed.String() != "packed" || RandomStrat.String() != "random" || RoundRobin.String() != "roundrobin" {
		t.Fatal("strategy names wrong")
	}
}
