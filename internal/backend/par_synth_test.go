package backend

import (
	"fmt"
	"testing"

	"atlahs/internal/engine"
	"atlahs/internal/sched"
	"atlahs/internal/workload/micro"
	"atlahs/internal/workload/synth"
)

// TestParallelSynth1024RanksMatchesSerial pins the adaptive-window engine
// at scale: a statistical model mined from a small seeded workload is
// regenerated at 1024 ranks (the PR 8 synthesis path), then simulated
// serially and in parallel at 1, 2, 4 and 8 workers, in both windowing
// modes — every run must be bit-identical.
func TestParallelSynth1024RanksMatchesSerial(t *testing.T) {
	model, err := synth.Mine(micro.UniformRandom(8, 24, 2048, 5), "par-equivalence seed")
	if err != nil {
		t.Fatal(err)
	}
	s, err := synth.Generate(model, 1024, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumRanks(); got != 1024 {
		t.Fatalf("generated %d ranks, want 1024", got)
	}
	t.Logf("synth workload: %d ops across %d ranks", s.ComputeStats().Ops, s.NumRanks())

	serial, err := sched.Run(engine.New(), s, NewLGS(AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, adaptive := range []bool{true, false} {
		for _, workers := range []int{1, 2, 4, 8} {
			eng := engine.NewParallel(s.NumRanks(), workers, NewLGS(AIParams()).Lookahead())
			eng.SetAdaptive(adaptive)
			par, err := sched.Run(eng, s, NewLGS(AIParams()), sched.Options{})
			if err != nil {
				t.Fatalf("adaptive=%v workers=%d: %v", adaptive, workers, err)
			}
			sameResult(t, fmt.Sprintf("adaptive=%v workers=%d", adaptive, workers), par, serial)
			if par.Events != serial.Events {
				t.Fatalf("adaptive=%v workers=%d: %d events, serial %d", adaptive, workers, par.Events, serial.Events)
			}
		}
	}
}

// TestParallelAdaptiveMatchesFixedOnLGS runs the full seeded workload
// suite once more with fixed windows, pinning adaptive == fixed == serial
// on real backend traffic (the lattice tests in internal/engine cover the
// raw engine).
func TestParallelAdaptiveMatchesFixedOnLGS(t *testing.T) {
	for _, wl := range parWorkloads() {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			serial, err := sched.Run(engine.New(), wl.s, NewLGS(wl.params), sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				fixed := engine.NewParallel(wl.s.NumRanks(), workers, NewLGS(wl.params).Lookahead())
				fixed.SetAdaptive(false)
				res, err := sched.Run(fixed, wl.s, NewLGS(wl.params), sched.Options{})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				sameResult(t, fmt.Sprintf("fixed workers=%d", workers), res, serial)
				if res.Events != serial.Events {
					t.Fatalf("fixed workers=%d: %d events, serial %d", workers, res.Events, serial.Events)
				}
			}
		})
	}
}
