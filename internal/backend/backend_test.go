package backend

import (
	"strings"
	"testing"
	"testing/quick"

	"atlahs/internal/engine"
	"atlahs/internal/fluid"
	"atlahs/internal/goal"
	"atlahs/internal/pktnet"
	"atlahs/internal/sched"
	"atlahs/internal/simtime"
	"atlahs/internal/topo"
	"atlahs/internal/xrand"
)

// pingSchedule: rank 0 sends size bytes to rank 1.
func pingSchedule(size int64) *goal.Schedule {
	b := goal.NewBuilder(2)
	b.Rank(0).Send(size, 1, 0)
	b.Rank(1).Recv(size, 0, 0)
	return b.MustBuild()
}

func runLGS(t *testing.T, s *goal.Schedule, p LogGOPS) *sched.Result {
	t.Helper()
	res, err := sched.Run(engine.New(), s, NewLGS(p), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLGSEagerPingExact(t *testing.T) {
	// AI params: o=200ns, L=3700ns, G=40ps/B, S=0 (eager).
	// send: cpu [0,200ns]; inject at 200ns; arrival = 200ns + 8*0.04ns +
	// 3700ns = 3900.32ns; recv completes at arrival + o = 4100.32ns.
	res := runLGS(t, pingSchedule(8), AIParams())
	want := simtime.Duration(4100320) // ps
	if res.Runtime != want {
		t.Fatalf("runtime = %v (%d ps), want %d ps", res.Runtime, int64(res.Runtime), int64(want))
	}
}

func TestLGSRendezvousPingExact(t *testing.T) {
	// HPC params: o=6000ns, L=3000ns, G=180ps/B, S=256000 — a 256000-byte
	// send uses rendezvous:
	// cpuEnd=6000ns; RTS arrives 9000ns (recv already posted);
	// CTS at sender 12000ns; wire done = 12000ns + 256000*0.18ns = 58080ns;
	// arrival = 61080ns; recv completes 67080ns.
	res := runLGS(t, pingSchedule(256000), HPCParams())
	want := 67080 * simtime.Nanosecond
	if res.Runtime != want {
		t.Fatalf("runtime = %v, want %v", res.Runtime, want)
	}
}

func TestLGSEagerBelowThreshold(t *testing.T) {
	// 1000 bytes < S=256000: eager even with HPC params.
	// cpuEnd=6000ns; arrival = 6000 + 180 + 3000 = 9180ns; recv end = 15180ns.
	res := runLGS(t, pingSchedule(1000), HPCParams())
	want := 15180 * simtime.Nanosecond
	if res.Runtime != want {
		t.Fatalf("runtime = %v, want %v", res.Runtime, want)
	}
}

func TestLGSCalcStreams(t *testing.T) {
	// two calcs on the same stream serialise; on distinct streams they
	// overlap (paper Fig 3 semantics).
	same := goal.NewBuilder(1)
	same.Rank(0).Calc(100)
	same.Rank(0).Calc(100)
	resSame := runLGS(t, same.MustBuild(), AIParams())
	if resSame.Runtime != 200*simtime.Nanosecond {
		t.Fatalf("same-stream runtime %v, want 200ns", resSame.Runtime)
	}
	diff := goal.NewBuilder(1)
	diff.Rank(0).CalcOn(100, 0)
	diff.Rank(0).CalcOn(100, 1)
	resDiff := runLGS(t, diff.MustBuild(), AIParams())
	if resDiff.Runtime != 100*simtime.Nanosecond {
		t.Fatalf("two-stream runtime %v, want 100ns", resDiff.Runtime)
	}
}

func TestLGSNicGapSerialisesSends(t *testing.T) {
	// Two sends from rank 0 on different streams: CPU overheads overlap but
	// the single NIC serialises injections with gap g + size*G.
	b := goal.NewBuilder(2)
	b.Rank(0).SendOn(100000, 1, 0, 0)
	b.Rank(0).SendOn(100000, 1, 1, 1)
	b.Rank(1).Recv(100000, 0, 0)
	b.Rank(1).Recv(100000, 0, 1)
	res := runLGS(t, b.MustBuild(), AIParams())
	// injections: first at 200ns..200+5+4000, second waits for NIC:
	// starts 4205ns, wire done 8205ns, arrival 11905ns, recv +200 = 12105ns.
	want := 12105 * simtime.Nanosecond
	if res.Runtime != want {
		t.Fatalf("runtime %v, want %v", res.Runtime, want)
	}
}

func TestLGSDependencyChain(t *testing.T) {
	// calc -> send on rank 0; recv -> calc on rank 1.
	b := goal.NewBuilder(2)
	r0 := b.Rank(0)
	c := r0.Calc(1000)
	s := r0.Send(8, 1, 0)
	r0.Requires(s, c)
	r1 := b.Rank(1)
	rc := r1.Recv(8, 0, 0)
	c2 := r1.Calc(500)
	r1.Requires(c2, rc)
	res := runLGS(t, b.MustBuild(), AIParams())
	// send cpu [1000,1200]; arrival 1200+0.32+3700 = 4900.32ns; recv end
	// 5100.32ns; calc end 5600.32ns.
	want := simtime.Duration(5600320)
	if res.Runtime != want {
		t.Fatalf("runtime %v (%d ps), want %d", res.Runtime, int64(res.Runtime), int64(want))
	}
}

func TestSchedIRequires(t *testing.T) {
	// b irequires a: b may start once a starts, so equal-length calcs on
	// different streams finish together.
	bld := goal.NewBuilder(1)
	r := bld.Rank(0)
	a := r.CalcOn(1000, 0)
	c := r.CalcOn(1000, 1)
	r.IRequires(c, a)
	res := runLGS(t, bld.MustBuild(), AIParams())
	if res.Runtime != 1000*simtime.Nanosecond {
		t.Fatalf("irequires runtime %v, want 1000ns (parallel)", res.Runtime)
	}
}

func TestSchedDeadlockDetection(t *testing.T) {
	// recv with no matching send
	b := goal.NewBuilder(2)
	b.Rank(1).Recv(8, 0, 0)
	_, err := sched.Run(engine.New(), b.Build(), NewLGS(AIParams()), sched.Options{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not detected: %v", err)
	}
}

func TestSchedWildcardRecv(t *testing.T) {
	b := goal.NewBuilder(2)
	b.Rank(0).Send(64, 1, 42)
	b.Rank(1).Recv(64, 0, goal.AnyTag)
	if _, err := sched.Run(engine.New(), b.MustBuild(), NewLGS(AIParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestCalcScale(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Rank(0).Calc(1000)
	res, err := sched.Run(engine.New(), b.MustBuild(), NewLGS(AIParams()), sched.Options{CalcScale: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != 2500*simtime.Nanosecond {
		t.Fatalf("scaled runtime %v, want 2500ns", res.Runtime)
	}
}

func mkTopo(t testing.TB, hosts int) *topo.Topology {
	t.Helper()
	tp, err := FatTreeFor(hosts, 4, 4, topo.DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// ringSchedule builds a neighbour-exchange ring with per-rank calcs.
func ringSchedule(n int, size int64) *goal.Schedule {
	b := goal.NewBuilder(n)
	for r := 0; r < n; r++ {
		rb := b.Rank(r)
		c := rb.Calc(10000)
		s := rb.Send(size, (r+1)%n, 0)
		rb.Requires(s, c)
		rb.Recv(size, (r+n-1)%n, 0)
	}
	return b.MustBuild()
}

func TestAllBackendsRunRing(t *testing.T) {
	s := ringSchedule(8, 128*1024)
	// LGS
	resLGS, err := sched.Run(engine.New(), s, NewLGS(AIParams()), sched.Options{})
	if err != nil {
		t.Fatalf("lgs: %v", err)
	}
	// Pkt
	pb := NewPkt(PktConfig{
		Net:    pktnet.Config{Topo: mkTopo(t, 8), Seed: 1},
		Params: DefaultNetParams(),
	})
	resPkt, err := sched.Run(engine.New(), s, pb, sched.Options{})
	if err != nil {
		t.Fatalf("pkt: %v", err)
	}
	if pb.NetStats().MsgsCompleted != 8 {
		t.Fatalf("pkt delivered %d messages, want 8", pb.NetStats().MsgsCompleted)
	}
	// Fluid
	fb := NewFluid(FluidConfig{
		Net:    fluid.Config{Topo: mkTopo(t, 8)},
		Params: DefaultNetParams(),
	})
	resFluid, err := sched.Run(engine.New(), s, fb, sched.Options{})
	if err != nil {
		t.Fatalf("fluid: %v", err)
	}
	// All three should be in the same ballpark: calc 10us + ~128KiB transfer
	for name, res := range map[string]*sched.Result{"lgs": resLGS, "pkt": resPkt, "fluid": resFluid} {
		if res.Runtime < 10*simtime.Microsecond || res.Runtime > 100*simtime.Microsecond {
			t.Errorf("%s runtime %v outside sanity range", name, res.Runtime)
		}
	}
}

func TestPktBackendTopologyTooSmall(t *testing.T) {
	pb := NewPkt(PktConfig{Net: pktnet.Config{Topo: mkTopo(t, 4)}})
	s := ringSchedule(32, 1024)
	if _, err := sched.Run(engine.New(), s, pb, sched.Options{}); err == nil {
		t.Fatal("undersized topology accepted")
	}
	fb := NewFluid(FluidConfig{Net: fluid.Config{Topo: mkTopo(t, 4)}})
	if _, err := sched.Run(engine.New(), s, fb, sched.Options{}); err == nil {
		t.Fatal("undersized topology accepted (fluid)")
	}
}

// Property: random matched schedules complete on the LGS backend and the
// runtime is at least the critical-path calc time of any single stream.
func TestLGSCompletesRandomSchedulesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(6) + 2
		b := goal.NewBuilder(n)
		// ring of sends + random calcs, always matched
		for r := 0; r < n; r++ {
			rb := b.Rank(r)
			var prev goal.OpID = -1
			for k := 0; k < rng.Intn(5); k++ {
				c := rb.Calc(rng.Int63n(5000))
				if prev >= 0 {
					rb.Requires(c, prev)
				}
				prev = c
			}
			s := rb.Send(rng.Int63n(1<<16)+1, (r+1)%n, int32(r))
			if prev >= 0 {
				rb.Requires(s, prev)
			}
			rb.Recv(rng.Int63n(1)+1, (r+n-1)%n, goal.AnyTag)
		}
		// fix recv sizes to match send sizes (peer's send)
		sch := b.MustBuild()
		res, err := sched.Run(engine.New(), sch, NewLGS(AIParams()), sched.Options{})
		if err != nil {
			return false
		}
		return res.Ops == int64(sch.ComputeStats().Ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLGSvsPktCloseOnProvisionedFatTree(t *testing.T) {
	// On a fully provisioned topology with computation masking, message-
	// level and packet-level predictions should be close (paper §6.2 says
	// 1-2%; we accept 15% for this small synthetic case).
	s := ringSchedule(8, 512*1024)
	resLGS, err := sched.Run(engine.New(), s, NewLGS(AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pb := NewPkt(PktConfig{Net: pktnet.Config{Topo: mkTopo(t, 8), Seed: 3}, Params: DefaultNetParams()})
	resPkt, err := sched.Run(engine.New(), s, pb, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(resLGS.Runtime)*0.6, float64(resLGS.Runtime)*1.6
	if f := float64(resPkt.Runtime); f < lo || f > hi {
		t.Fatalf("pkt %v vs lgs %v diverge too much", resPkt.Runtime, resLGS.Runtime)
	}
}
