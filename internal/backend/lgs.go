// Package backend provides the ATLAHS network-simulation backends: the
// LogGOPSim-style message-level backend ("lgs"), the packet-level backend
// ("pkt") wrapping internal/pktnet, and the fluid flow-level backend
// ("fluid") wrapping internal/fluid. All three implement core.Backend and
// are interchangeable from the scheduler's point of view — selecting the
// backend trades simulation speed against fidelity, exactly the choice the
// paper gives its users (message-level for speed, packet-level for
// accuracy under congestion; §6.2).
package backend

import (
	"fmt"

	"atlahs/internal/core"
	"atlahs/internal/engine"
	"atlahs/internal/simtime"
)

// LogGOPS holds the parameters of the LogGOPS model (paper §5): L wire
// latency, o CPU overhead per message, g inter-message NIC gap, G per-byte
// gap (inverse bandwidth), O per-byte CPU overhead, S rendezvous
// threshold. S = 0 disables rendezvous entirely (the paper's AI setup);
// S > 0 sends messages of at least S bytes with an RTS/CTS handshake.
type LogGOPS struct {
	L  simtime.Duration // latency
	O  simtime.Duration // per-message CPU overhead (paper's lowercase o)
	G  simtime.Duration // inter-message gap (paper's lowercase g)
	GB simtime.Duration // per-byte gap (paper's uppercase G), ps/byte
	OB simtime.Duration // per-byte CPU overhead (paper's uppercase O), ps/byte
	S  int64            // rendezvous threshold in bytes, 0 = all eager
}

// AIParams returns the LogGOPS parameters the paper measured for the Alps
// GH200 cluster (§5.2): L=3700ns, o=200ns, g=5ns, G=0.04ns/B, O=0, S=0.
func AIParams() LogGOPS {
	return LogGOPS{
		L:  3700 * simtime.Nanosecond,
		O:  200 * simtime.Nanosecond,
		G:  5 * simtime.Nanosecond,
		GB: 40 * simtime.Picosecond, // 0.04 ns/B = 25 GB/s
	}
}

// HPCParams returns the LogGOPS parameters measured with Netgauge on the
// CSCS test-bed cluster (§5.3): L=3000ns, o=6000ns, g=0, G=0.18ns/B, O=0,
// S=256000.
func HPCParams() LogGOPS {
	return LogGOPS{
		L:  3000 * simtime.Nanosecond,
		O:  6000 * simtime.Nanosecond,
		GB: 180 * simtime.Picosecond, // 0.18 ns/B ~ 56 Gbit/s
		S:  256000,
	}
}

// lgsMsg is the matcher payload for an in-flight message.
type lgsMsg struct {
	rendezvous bool
	arrival    simtime.Time   // eager: data arrival; rendezvous: RTS arrival
	send       core.SendEvent // original send (rendezvous continuation)
}

// lgsRecv is the matcher payload for a posted receive.
type lgsRecv struct {
	ev core.RecvEvent
}

// LGS is the LogGOPSim-style message-level backend. It models per-rank
// compute streams (o and O overheads), a single NIC per rank (g and G
// gaps), constant wire latency L, and eager/rendezvous protocols switched
// at S bytes. It is topology-oblivious: contention inside the fabric is
// invisible to it, which is exactly the limitation paper Fig 12
// demonstrates on oversubscribed topologies.
//
// All of its state is per-rank (streams, NIC, matcher queues) and every
// cross-rank effect travels at least the wire latency L, so the backend
// can run on the parallel engine: each rank's events execute on that
// rank's lane and L is the declared lookahead.
type LGS struct {
	P LogGOPS

	over    core.CompletionFunc
	lanes   []engine.Sim
	streams *core.StreamTable
	nicFree []simtime.Time
	match   *core.Matcher[lgsMsg, lgsRecv]
}

// NewLGS creates an LGS backend with the given model parameters.
func NewLGS(p LogGOPS) *LGS { return &LGS{P: p} }

// Name implements core.Backend.
func (b *LGS) Name() string { return "lgs" }

// Lookahead implements core.LookaheadProvider: no message reaches another
// rank sooner than the wire latency L.
func (b *LGS) Lookahead() simtime.Duration { return b.P.L }

// Setup implements core.Backend.
func (b *LGS) Setup(nranks int, eng engine.Sim, over core.CompletionFunc) error {
	if nranks <= 0 {
		return fmt.Errorf("lgs: non-positive rank count %d", nranks)
	}
	b.over = over
	b.lanes = make([]engine.Sim, nranks)
	for i := range b.lanes {
		b.lanes[i] = eng.Lane(i)
	}
	b.streams = core.NewStreamTable(nranks)
	b.nicFree = make([]simtime.Time, nranks)
	b.match = core.NewMatcher[lgsMsg, lgsRecv](nranks)
	return nil
}

// Calc implements core.Backend: occupy the stream, complete at the end.
func (b *LGS) Calc(ev core.CalcEvent) {
	ln := b.lanes[ev.Rank]
	_, end := b.streams.Acquire(ev.Rank, ev.CPU, ln.Now(), ev.Duration)
	h := ev.Handle
	ln.Schedule(end, func() { b.over(h, end) })
}

// Send implements core.Backend. Runs on the source rank's lane.
func (b *LGS) Send(ev core.SendEvent) {
	ln := b.lanes[ev.Src]
	now := ln.Now()
	cpu := b.P.O + simtime.Duration(ev.Size)*b.P.OB
	_, cpuEnd := b.streams.Acquire(ev.Src, ev.CPU, now, cpu)
	if b.P.S > 0 && ev.Size >= b.P.S {
		// Rendezvous: RTS after the CPU overhead; data moves once the
		// receive is posted. The send op completes when the payload has
		// been handed to the wire.
		rtsArrival := cpuEnd.Add(b.P.L)
		ln.ScheduleOn(ev.Dst, rtsArrival, func() {
			if rv, ok := b.match.Arrive(ev.Dst, ev.Src, ev.Tag, lgsMsg{rendezvous: true, arrival: rtsArrival, send: ev}); ok {
				b.rendezvousTransfer(ev, rv)
			}
		})
		return
	}
	// Eager: op completes at CPU overhead end; payload is injected through
	// the NIC (g + size*G) and arrives L after the last byte leaves.
	inject := simtime.Max(cpuEnd, b.nicFree[ev.Src])
	b.nicFree[ev.Src] = inject.Add(b.P.G + simtime.Duration(ev.Size)*b.P.GB)
	arrival := inject.Add(simtime.Duration(ev.Size)*b.P.GB + b.P.L)
	h := ev.Handle
	ln.Schedule(cpuEnd, func() { b.over(h, cpuEnd) })
	ln.ScheduleOn(ev.Dst, arrival, func() {
		if rv, ok := b.match.Arrive(ev.Dst, ev.Src, ev.Tag, lgsMsg{arrival: arrival}); ok {
			b.completeRecv(rv, arrival)
		}
	})
}

// Recv implements core.Backend. Runs on the destination rank's lane.
func (b *LGS) Recv(ev core.RecvEvent) {
	rv := lgsRecv{ev: ev}
	if msg, ok := b.match.Post(ev.Dst, ev.Src, ev.Tag, rv); ok {
		if msg.rendezvous {
			b.rendezvousTransfer(msg.send, rv)
		} else {
			b.completeRecv(rv, msg.arrival)
		}
	}
}

// rendezvousTransfer runs the CTS + data phase after an RTS matched a
// posted receive. Called at the match time (max of RTS arrival and post)
// on the receiver's lane; the CTS hop moves execution back to the sender's
// lane, where the NIC state lives.
func (b *LGS) rendezvousTransfer(send core.SendEvent, rv lgsRecv) {
	dl := b.lanes[rv.ev.Dst]
	ctsAtSender := dl.Now().Add(b.P.L)
	dl.ScheduleOn(send.Src, ctsAtSender, func() {
		sl := b.lanes[send.Src]
		inject := simtime.Max(ctsAtSender, b.nicFree[send.Src])
		b.nicFree[send.Src] = inject.Add(b.P.G + simtime.Duration(send.Size)*b.P.GB)
		wireDone := inject.Add(simtime.Duration(send.Size) * b.P.GB)
		arrival := wireDone.Add(b.P.L)
		sh := send.Handle
		sl.Schedule(wireDone, func() { b.over(sh, wireDone) })
		sl.ScheduleOn(rv.ev.Dst, arrival, func() { b.completeRecv(rv, arrival) })
	})
}

// completeRecv charges the receive overhead on the receive's stream
// starting at the data arrival (or post time, whichever is later — we are
// called at that instant, on the receiver's lane) and reports completion.
func (b *LGS) completeRecv(rv lgsRecv, arrival simtime.Time) {
	dl := b.lanes[rv.ev.Dst]
	from := simtime.Max(arrival, dl.Now())
	cpu := b.P.O + simtime.Duration(rv.ev.Size)*b.P.OB
	_, end := b.streams.Acquire(rv.ev.Dst, rv.ev.CPU, from, cpu)
	h := rv.ev.Handle
	dl.Schedule(end, func() { b.over(h, end) })
}
