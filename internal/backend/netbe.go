package backend

import (
	"fmt"

	"atlahs/internal/core"
	"atlahs/internal/engine"
	"atlahs/internal/fluid"
	"atlahs/internal/pktnet"
	"atlahs/internal/simtime"
	"atlahs/internal/stats"
	"atlahs/internal/topo"
)

// MessageNet is the transport contract shared by the congestion-aware
// networks (packet-level and fluid): inject a message, get a delivery-time
// callback. Both internal/pktnet and internal/fluid satisfy it through
// small adapters.
type MessageNet interface {
	// Send transfers size bytes from host src to host dst and calls
	// onDelivered at the simulated arrival time of the last byte.
	Send(src, dst int, size int64, onDelivered func(simtime.Time))
}

// NetParams are the host-side overheads applied by the generic
// message-network backend: a fixed CPU overhead per send/recv mirroring
// the LogGOPS o parameter so that message-level and packet-level backends
// are calibrated identically (paper §5.2 configures htsim to "match these
// parameters used by ATLAHS LGS").
type NetParams struct {
	SendOverhead simtime.Duration
	RecvOverhead simtime.Duration
}

// netMsg / netRecv are matcher payloads.
type netMsg struct{ arrival simtime.Time }
type netRecv struct {
	ev   core.RecvEvent
	post simtime.Time
}

// NetBackend adapts any MessageNet into a core.Backend: compute streams
// and message matching are handled here, transfers are delegated to the
// network. All sends are eager (transfers start as soon as the send
// overhead is paid).
type NetBackend struct {
	name   string
	params NetParams
	mkNet  func(eng *engine.Engine, nranks int) (MessageNet, error)

	net     MessageNet
	eng     *engine.Engine
	over    core.CompletionFunc
	streams *core.StreamTable
	match   *core.Matcher[netMsg, netRecv]
}

// Name implements core.Backend.
func (b *NetBackend) Name() string { return b.name }

// Setup implements core.Backend. The congestion-aware networks share fabric
// state across all ranks (queues, flows), so they cannot declare a
// lookahead and run only on the serial engine; a parallel engine is
// rejected here rather than racing later.
func (b *NetBackend) Setup(nranks int, eng engine.Sim, over core.CompletionFunc) error {
	serial, ok := eng.(*engine.Engine)
	if !ok {
		return fmt.Errorf("%s backend: shared network state requires the serial engine (no lookahead bound); use sched.RunParallel for automatic fallback", b.name)
	}
	net, err := b.mkNet(serial, nranks)
	if err != nil {
		return err
	}
	b.net = net
	b.eng = serial
	b.over = over
	b.streams = core.NewStreamTable(nranks)
	b.match = core.NewMatcher[netMsg, netRecv](nranks)
	return nil
}

// Calc implements core.Backend.
func (b *NetBackend) Calc(ev core.CalcEvent) {
	_, end := b.streams.Acquire(ev.Rank, ev.CPU, b.eng.Now(), ev.Duration)
	h := ev.Handle
	b.eng.Schedule(end, func() { b.over(h, end) })
}

// Send implements core.Backend: pay the send overhead on the issuing
// stream, then hand the message to the network.
func (b *NetBackend) Send(ev core.SendEvent) {
	_, cpuEnd := b.streams.Acquire(ev.Src, ev.CPU, b.eng.Now(), b.params.SendOverhead)
	h := ev.Handle
	b.eng.Schedule(cpuEnd, func() {
		b.over(h, cpuEnd)
		b.net.Send(ev.Src, ev.Dst, ev.Size, func(at simtime.Time) {
			if rv, ok := b.match.Arrive(ev.Dst, ev.Src, ev.Tag, netMsg{arrival: at}); ok {
				b.completeRecv(rv, at)
			}
		})
	})
}

// Recv implements core.Backend.
func (b *NetBackend) Recv(ev core.RecvEvent) {
	rv := netRecv{ev: ev, post: b.eng.Now()}
	if msg, ok := b.match.Post(ev.Dst, ev.Src, ev.Tag, rv); ok {
		b.completeRecv(rv, msg.arrival)
	}
}

func (b *NetBackend) completeRecv(rv netRecv, arrival simtime.Time) {
	from := simtime.Max(arrival, b.eng.Now())
	_, end := b.streams.Acquire(rv.ev.Dst, rv.ev.CPU, from, b.params.RecvOverhead)
	h := rv.ev.Handle
	b.eng.Schedule(end, func() { b.over(h, end) })
}

// --- packet-level backend ---------------------------------------------------

// pktAdapter narrows *pktnet.Network to MessageNet.
type pktAdapter struct{ n *pktnet.Network }

func (a pktAdapter) Send(src, dst int, size int64, onDelivered func(simtime.Time)) {
	a.n.Send(src, dst, size, onDelivered)
}

// PktConfig configures the packet-level backend.
type PktConfig struct {
	Net    pktnet.Config // Topo must cover the schedule's rank count
	Params NetParams
}

// DefaultNetParams mirrors the LGS AI overhead (o = 200 ns) so backends
// are comparable out of the box.
func DefaultNetParams() NetParams {
	return NetParams{
		SendOverhead: 200 * simtime.Nanosecond,
		RecvOverhead: 200 * simtime.Nanosecond,
	}
}

// NewPkt creates the packet-level ("ATLAHS htsim") backend. Stats gives
// access to drop/trim counters after the run.
func NewPkt(cfg PktConfig) *Pkt {
	b := &Pkt{}
	b.name = "pkt"
	b.params = cfg.Params
	b.mkNet = func(eng *engine.Engine, nranks int) (MessageNet, error) {
		if cfg.Net.Topo == nil {
			return nil, fmt.Errorf("pkt backend: nil topology")
		}
		if cfg.Net.Topo.NumHosts() < nranks {
			return nil, fmt.Errorf("pkt backend: topology has %d hosts for %d ranks", cfg.Net.Topo.NumHosts(), nranks)
		}
		n, err := pktnet.New(eng, cfg.Net)
		if err != nil {
			return nil, err
		}
		n.MCT = b.mct
		b.pn = n
		return pktAdapter{n}, nil
	}
	return b
}

// Pkt is the packet-level backend (NetBackend over pktnet).
type Pkt struct {
	NetBackend
	pn  *pktnet.Network
	mct *stats.Sample
}

// AttachMCT makes the underlying network record every message's completion
// time into sample (paper Fig 11's metric). Call before the scheduler's
// Setup runs.
func (b *Pkt) AttachMCT(sample *stats.Sample) { b.mct = sample }

// NetStats returns the packet-level counters (drops, trims, ...) after a
// run — the paper's point in Fig 12: only packet-level backends can report
// these.
func (b *Pkt) NetStats() pktnet.Stats {
	if b.pn == nil {
		return pktnet.Stats{}
	}
	return b.pn.Stats
}

// --- fluid backend -----------------------------------------------------------

// fluidAdapter narrows *fluid.Network to MessageNet.
type fluidAdapter struct{ n *fluid.Network }

func (a fluidAdapter) Send(src, dst int, size int64, onDelivered func(simtime.Time)) {
	a.n.Send(src, dst, size, onDelivered)
}

// FluidConfig configures the fluid backend.
type FluidConfig struct {
	Net    fluid.Config
	Params NetParams
}

// NewFluid creates the fluid flow-level backend.
func NewFluid(cfg FluidConfig) *NetBackend {
	b := &NetBackend{name: "fluid", params: cfg.Params}
	b.mkNet = func(eng *engine.Engine, nranks int) (MessageNet, error) {
		if cfg.Net.Topo == nil {
			return nil, fmt.Errorf("fluid backend: nil topology")
		}
		if cfg.Net.Topo.NumHosts() < nranks {
			return nil, fmt.Errorf("fluid backend: topology has %d hosts for %d ranks", cfg.Net.Topo.NumHosts(), nranks)
		}
		n, err := fluid.New(eng, cfg.Net)
		if err != nil {
			return nil, err
		}
		return fluidAdapter{n}, nil
	}
	return b
}

// FatTreeFor builds a two-level fat tree with at least nranks hosts,
// hostsPerToR hosts per ToR and the given number of core switches —
// convenience used by experiments and examples.
func FatTreeFor(nranks, hostsPerToR, cores int, spec topo.LinkSpec) (*topo.Topology, error) {
	hosts := nranks
	if rem := hosts % hostsPerToR; rem != 0 {
		hosts += hostsPerToR - rem
	}
	return topo.NewFatTree(topo.FatTreeConfig{
		Hosts: hosts, HostsPerToR: hostsPerToR, Cores: cores,
		HostLink: spec, UplinkLink: spec,
	})
}
