package backend

import (
	"fmt"
	"testing"

	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/pktnet"
	"atlahs/internal/sched"
	"atlahs/internal/simtime"
	"atlahs/internal/topo"
	"atlahs/internal/workload/micro"
)

// parWorkloads are the seeded GOAL workloads the equivalence suite runs:
// they cover symmetric bulk traffic, rings with carried dependencies,
// irregular seeded point-to-point traffic with compute, and the rendezvous
// protocol (HPC parameters, sizes above the 256 KB threshold).
func parWorkloads() []struct {
	name   string
	s      *goal.Schedule
	params LogGOPS
} {
	return []struct {
		name   string
		s      *goal.Schedule
		params LogGOPS
	}{
		{"alltoall-16", micro.AllToAll(16, 65536), AIParams()},
		{"ring-32", micro.Ring(32, 4096), AIParams()},
		{"bsp-12x6", micro.BulkSynchronous(12, 6, 32768, 2000), AIParams()},
		{"uniform-random-24", micro.UniformRandom(24, 400, 8192, 7), AIParams()},
		{"incast-17", micro.Incast(17, 16, 1<<20), AIParams()},
		{"rendezvous-bsp-8x4", micro.BulkSynchronous(8, 4, 300_000, 5000), HPCParams()},
	}
}

// sameResult asserts two runs are bit-identical: simulated runtime, every
// rank's completion time, and the executed op count.
func sameResult(t *testing.T, label string, got, want *sched.Result) {
	t.Helper()
	if got.Runtime != want.Runtime {
		t.Fatalf("%s: Runtime %v, want %v", label, got.Runtime, want.Runtime)
	}
	if got.Ops != want.Ops {
		t.Fatalf("%s: Ops %d, want %d", label, got.Ops, want.Ops)
	}
	if len(got.RankEnd) != len(want.RankEnd) {
		t.Fatalf("%s: %d ranks, want %d", label, len(got.RankEnd), len(want.RankEnd))
	}
	for r := range got.RankEnd {
		if got.RankEnd[r] != want.RankEnd[r] {
			t.Fatalf("%s: RankEnd[%d] = %v, want %v", label, r, got.RankEnd[r], want.RankEnd[r])
		}
	}
}

// TestParallelLGSMatchesSerial is the equivalence harness the paper's
// parallelisation claim rests on: for every seeded workload, the parallel
// engine at 1, 2, 4 and 8 workers must produce completion times
// bit-identical to the proven serial engine, and repeated runs must be
// reproducible.
func TestParallelLGSMatchesSerial(t *testing.T) {
	for _, wl := range parWorkloads() {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			serial, err := sched.Run(engine.New(), wl.s, NewLGS(wl.params), sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for rep := 0; rep < 2; rep++ {
					eng := engine.NewParallel(wl.s.NumRanks(), workers, NewLGS(wl.params).Lookahead())
					par, err := sched.Run(eng, wl.s, NewLGS(wl.params), sched.Options{})
					if err != nil {
						t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
					}
					sameResult(t, fmt.Sprintf("workers=%d rep=%d", workers, rep), par, serial)
					// The event count is part of the determinism fingerprint:
					// both engines must execute exactly the same events.
					if par.Events != serial.Events {
						t.Fatalf("workers=%d rep=%d: %d events, serial %d", workers, rep, par.Events, serial.Events)
					}
				}
			}
		})
	}
}

// TestRunParallelAutoSelection: RunParallel must give identical results to
// the serial path whatever the requested worker count, including the
// GOMAXPROCS default (workers <= 0).
func TestRunParallelAutoSelection(t *testing.T) {
	s := micro.BulkSynchronous(10, 4, 16384, 1500)
	serial, err := sched.Run(engine.New(), s, NewLGS(AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 0, 1, 3, 8} {
		par, err := sched.RunParallel(workers, s, NewLGS(AIParams()), sched.Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameResult(t, fmt.Sprintf("workers=%d", workers), par, serial)
	}
}

// TestParallelCalcScaleMatchesSerial: the hardware adaptation factor must
// behave identically on both engines.
func TestParallelCalcScaleMatchesSerial(t *testing.T) {
	s := micro.BulkSynchronous(8, 3, 8192, 4000)
	opts := sched.Options{CalcScale: 2.5}
	serial, err := sched.Run(engine.New(), s, NewLGS(AIParams()), opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sched.RunParallel(4, s, NewLGS(AIParams()), opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "calc-scale", par, serial)
}

// TestZeroLatencyLGSFallsBackToSerial: LogGOPS with L = 0 has no lookahead
// window, so RunParallel must route to the serial engine rather than
// construct an invalid parallel one.
func TestZeroLatencyLGSFallsBackToSerial(t *testing.T) {
	p := AIParams()
	p.L = 0
	if la := NewLGS(p).Lookahead(); la != 0 {
		t.Fatalf("Lookahead = %v, want 0", la)
	}
	s := micro.Ring(8, 1024)
	res, err := sched.RunParallel(4, s, NewLGS(p), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := sched.Run(engine.New(), s, NewLGS(p), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "zero-latency", res, serial)
}

// TestCrossBackendParallelFallback: the congestion-aware backends share
// fabric state and must (a) reject a parallel engine outright and (b) run
// serially — with identical results — when requested through RunParallel.
func TestCrossBackendParallelFallback(t *testing.T) {
	s := micro.Ring(8, 4096)
	dom := func() (PktConfig, error) {
		tp, err := FatTreeFor(8, 4, 1, topo.DefaultLinkSpec())
		if err != nil {
			return PktConfig{}, err
		}
		return PktConfig{
			Net:    pktnet.Config{Topo: tp, CC: "mprdma", Seed: 3},
			Params: DefaultNetParams(),
		}, nil
	}

	cfg, err := dom()
	if err != nil {
		t.Fatal(err)
	}
	pe := engine.NewParallel(8, 4, simtime.Microsecond)
	if _, err := sched.Run(pe, s, NewPkt(cfg), sched.Options{}); err == nil {
		t.Fatal("pkt backend accepted a parallel engine")
	}

	cfgA, err := dom()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := sched.Run(engine.New(), s, NewPkt(cfgA), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := dom()
	if err != nil {
		t.Fatal(err)
	}
	viaParallel, err := sched.RunParallel(4, s, NewPkt(cfgB), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "pkt-fallback", viaParallel, serial)
}
