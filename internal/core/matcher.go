package core

// Matcher implements MPI-style receiver-side message matching shared by
// all backends: messages from a source arrive in order and match posted
// receives by (source, tag), with TagAny receives matching any tag from
// their source. Unexpected messages (arriving before a matching receive is
// posted) queue until one is; early receives queue until a message
// arrives. Matching respects MPI's non-overtaking rule: among eligible
// candidates the earliest posted/arrived wins.
//
// M and R are backend-specific payload types carried through the match
// (e.g. arrival times, op handles).
type Matcher[M, R any] struct {
	dsts []matchRank[M, R]
}

type matchRank[M, R any] struct {
	// per source rank
	arrived map[int][]taggedMsg[M]
	posted  map[int][]taggedRecv[R]
}

type taggedMsg[M any] struct {
	tag int32
	msg M
}

type taggedRecv[R any] struct {
	tag  int32 // TagAny matches any
	recv R
}

// NewMatcher creates a matcher for nranks destination ranks.
func NewMatcher[M, R any](nranks int) *Matcher[M, R] {
	m := &Matcher[M, R]{dsts: make([]matchRank[M, R], nranks)}
	for i := range m.dsts {
		m.dsts[i].arrived = map[int][]taggedMsg[M]{}
		m.dsts[i].posted = map[int][]taggedRecv[R]{}
	}
	return m
}

// Arrive records a message from src to dst with the given tag. If a posted
// receive matches, it is removed and returned with ok=true; otherwise the
// message queues as unexpected.
func (m *Matcher[M, R]) Arrive(dst, src int, tag int32, msg M) (recv R, ok bool) {
	d := &m.dsts[dst]
	posted := d.posted[src]
	for i, pr := range posted {
		if pr.tag == TagAny || pr.tag == tag {
			d.posted[src] = append(posted[:i], posted[i+1:]...)
			return pr.recv, true
		}
	}
	d.arrived[src] = append(d.arrived[src], taggedMsg[M]{tag: tag, msg: msg})
	var zero R
	return zero, false
}

// Post records a receive at dst for a message from src with the given tag
// (TagAny = wildcard). If an unexpected message matches, it is removed and
// returned with ok=true; otherwise the receive queues.
func (m *Matcher[M, R]) Post(dst, src int, tag int32, recv R) (msg M, ok bool) {
	d := &m.dsts[dst]
	arrived := d.arrived[src]
	for i, am := range arrived {
		if tag == TagAny || am.tag == tag {
			d.arrived[src] = append(arrived[:i], arrived[i+1:]...)
			return am.msg, true
		}
	}
	d.posted[src] = append(d.posted[src], taggedRecv[R]{tag: tag, recv: recv})
	var zero M
	return zero, false
}

// PendingArrived returns the number of unmatched arrived messages at dst
// (diagnostics for deadlock reports).
func (m *Matcher[M, R]) PendingArrived(dst int) int {
	n := 0
	for _, q := range m.dsts[dst].arrived {
		n += len(q)
	}
	return n
}

// PendingPosted returns the number of unmatched posted receives at dst.
func (m *Matcher[M, R]) PendingPosted(dst int) int {
	n := 0
	for _, q := range m.dsts[dst].posted {
		n += len(q)
	}
	return n
}
