package core

import (
	"testing"
	"testing/quick"

	"atlahs/internal/simtime"
)

func TestHandleRoundTrip(t *testing.T) {
	f := func(rank uint16, op int32) bool {
		h := MakeHandle(int(rank), op)
		return h.Rank() == int(rank) && h.Op() == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamTableSerialises(t *testing.T) {
	st := NewStreamTable(2)
	s1, e1 := st.Acquire(0, 0, 100, 50)
	if s1 != 100 || e1 != 150 {
		t.Fatalf("first acquire [%v,%v]", s1, e1)
	}
	// same stream: must queue behind
	s2, e2 := st.Acquire(0, 0, 120, 30)
	if s2 != 150 || e2 != 180 {
		t.Fatalf("second acquire [%v,%v], want [150,180]", s2, e2)
	}
	// different stream: parallel
	s3, _ := st.Acquire(0, 1, 120, 30)
	if s3 != 120 {
		t.Fatalf("other stream delayed to %v", s3)
	}
	// different rank: independent
	s4, _ := st.Acquire(1, 0, 0, 10)
	if s4 != 0 {
		t.Fatalf("other rank delayed to %v", s4)
	}
	if st.FreeAt(0, 0) != 180 {
		t.Fatalf("FreeAt=%v", st.FreeAt(0, 0))
	}
}

func TestMatcherBasicOrder(t *testing.T) {
	m := NewMatcher[int, string](2)
	// message first, then recv
	if _, ok := m.Arrive(1, 0, 7, 100); ok {
		t.Fatal("matched with nothing posted")
	}
	msg, ok := m.Post(1, 0, 7, "r1")
	if !ok || msg != 100 {
		t.Fatalf("post did not match queued msg: %v %v", msg, ok)
	}
	// recv first, then message
	if _, ok := m.Post(1, 0, 8, "r2"); ok {
		t.Fatal("matched with nothing arrived")
	}
	rv, ok := m.Arrive(1, 0, 8, 200)
	if !ok || rv != "r2" {
		t.Fatalf("arrive did not match posted recv: %v %v", rv, ok)
	}
}

func TestMatcherFIFOWithinTag(t *testing.T) {
	m := NewMatcher[int, string](1)
	m.Arrive(0, 0, 5, 1)
	m.Arrive(0, 0, 5, 2)
	msg1, _ := m.Post(0, 0, 5, "a")
	msg2, _ := m.Post(0, 0, 5, "b")
	if msg1 != 1 || msg2 != 2 {
		t.Fatalf("FIFO violated: %d then %d", msg1, msg2)
	}
}

func TestMatcherTagSelectivity(t *testing.T) {
	m := NewMatcher[int, string](1)
	m.Arrive(0, 0, 5, 55)
	if _, ok := m.Post(0, 0, 6, "wrongtag"); ok {
		t.Fatal("matched wrong tag")
	}
	msg, ok := m.Post(0, 0, 5, "right")
	if !ok || msg != 55 {
		t.Fatal("exact tag failed after wrong-tag post")
	}
	// the wrong-tag recv is still posted
	rv, ok := m.Arrive(0, 0, 6, 66)
	if !ok || rv != "wrongtag" {
		t.Fatal("queued recv lost")
	}
}

func TestMatcherWildcard(t *testing.T) {
	m := NewMatcher[int, string](1)
	m.Post(0, 0, TagAny, "any")
	rv, ok := m.Arrive(0, 0, 12345, 9)
	if !ok || rv != "any" {
		t.Fatal("wildcard recv did not match")
	}
	// wildcard post matching queued message
	m.Arrive(0, 0, 777, 10)
	msg, ok := m.Post(0, 0, TagAny, "any2")
	if !ok || msg != 10 {
		t.Fatal("wildcard post did not match queued msg")
	}
}

func TestMatcherPerSourceIsolation(t *testing.T) {
	m := NewMatcher[int, string](3)
	m.Arrive(2, 0, 1, 100)
	if _, ok := m.Post(2, 1, 1, "fromOther"); ok {
		t.Fatal("matched message from different source")
	}
	if m.PendingArrived(2) != 1 || m.PendingPosted(2) != 1 {
		t.Fatalf("pending counts: arrived=%d posted=%d", m.PendingArrived(2), m.PendingPosted(2))
	}
}

// Property: arrivals and posts pair up exactly when counts per (src,tag)
// agree; pending counts reflect the imbalance.
func TestMatcherConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		m := NewMatcher[int, int](1)
		matched := 0
		arrived, posted := 0, 0
		for i, isArrive := range ops {
			if isArrive {
				if _, ok := m.Arrive(0, 0, 0, i); ok {
					matched++
				} else {
					arrived++
				}
			} else {
				if _, ok := m.Post(0, 0, 0, i); ok {
					matched++
					arrived--
				} else {
					posted++
				}
			}
			// a matched pair consumes one from each queue; queues can never
			// both be non-empty for the same (src,tag)
			if m.PendingArrived(0) > 0 && m.PendingPosted(0) > 0 {
				return false
			}
		}
		return m.PendingArrived(0) == arrived && m.PendingPosted(0) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTagAnyMatchesGoal(t *testing.T) {
	if TagAny != -1 {
		t.Fatal("TagAny must be -1 to mirror goal.AnyTag")
	}
}

var _ = simtime.Time(0) // keep import symmetry with other backends' tests
