// Package core defines the ATLAHS toolchain API (paper Fig 7): the
// backend interface through which the GOAL scheduler drives any network
// simulator, the event types for the three core operations (send, recv,
// calc), and shared building blocks — message matching and compute-stream
// bookkeeping — used by the backend implementations.
//
// The contract mirrors the paper's ATLAHS_API class: the scheduler issues
// operations as their GOAL dependencies resolve; the backend simulates them
// against its own model of the network and calls the completion callback
// ("eventOver") with the simulated completion time. Any simulator able to
// honour this contract can be plugged in; this repository wires three
// (LogGOPS message-level, packet-level, fluid flow-level).
package core

import (
	"atlahs/internal/engine"
	"atlahs/internal/simtime"
)

// Handle identifies an issued operation; the scheduler encodes (rank, op
// index) into it and decodes it when the completion arrives.
type Handle uint64

// MakeHandle packs a rank and per-rank op index.
func MakeHandle(rank int, op int32) Handle {
	return Handle(uint64(uint32(rank))<<32 | uint64(uint32(op)))
}

// Rank extracts the rank from a handle.
func (h Handle) Rank() int { return int(uint32(h >> 32)) }

// Op extracts the op index from a handle.
func (h Handle) Op() int32 { return int32(uint32(h)) }

// CompletionFunc is the eventOver callback: the backend reports that the
// operation identified by h semantically completed at time at.
type CompletionFunc func(h Handle, at simtime.Time)

// SendEvent asks the backend to transmit Size bytes from rank Src to rank
// Dst with the given tag, issued from compute stream CPU. The operation
// completes (for GOAL dependency purposes) when the sending resources are
// released — message-level backends release at local overhead completion
// for eager sends; the transfer itself feeds the destination's matcher.
type SendEvent struct {
	Handle Handle
	Src    int
	Dst    int
	Size   int64
	Tag    int32
	CPU    int32
}

// RecvEvent posts a receive at rank Dst for Size bytes from rank Src with
// the given tag (TagAny matches any tag from Src). The operation completes
// when a matching message has fully arrived and the receive overhead has
// been charged.
type RecvEvent struct {
	Handle Handle
	Dst    int
	Src    int
	Size   int64
	Tag    int32
	CPU    int32
}

// TagAny is the wildcard receive tag (mirrors goal.AnyTag).
const TagAny int32 = -1

// CalcEvent occupies rank Rank's compute stream CPU for Duration.
type CalcEvent struct {
	Handle   Handle
	Rank     int
	CPU      int32
	Duration simtime.Duration
}

// Backend is the ATLAHS simulator interface. Implementations are
// single-simulation objects: Setup is called exactly once before any
// operation is issued.
type Backend interface {
	// Name identifies the backend ("lgs", "pkt", "fluid", ...).
	Name() string
	// Setup binds the backend to the engine and registers the completion
	// callback. nranks is the number of GOAL ranks (= simulated nodes).
	// Backends that cannot run on a parallel engine (shared network state,
	// no lookahead) must reject anything but *engine.Engine here.
	Setup(nranks int, eng engine.Sim, over CompletionFunc) error
	// Send, Recv and Calc issue operations; completions arrive via the
	// callback registered in Setup, at simulated times >= the issue time.
	Send(ev SendEvent)
	Recv(ev RecvEvent)
	Calc(ev CalcEvent)
}

// LookaheadProvider is implemented by backends whose model guarantees a
// minimum cross-rank delay: no operation issued by rank r at time t can
// affect another rank before t + Lookahead(). Such backends can run on the
// parallel engine, which uses the bound as its conservative window width.
// A zero lookahead means the guarantee does not hold under the current
// parameters (e.g. LogGOPS with L = 0) and forces the serial engine.
type LookaheadProvider interface {
	Lookahead() simtime.Duration
}

// LookaheadOf reports the backend's cross-rank delay bound, or 0 when the
// backend does not provide one (so callers fall back to serial execution).
func LookaheadOf(be Backend) simtime.Duration {
	if lp, ok := be.(LookaheadProvider); ok {
		return lp.Lookahead()
	}
	return 0
}

// StreamTable tracks per-rank, per-compute-stream availability. GOAL ops
// assigned to the same stream serialise even when their dependencies would
// allow overlap; ops on different streams of the same rank proceed in
// parallel (paper §2.1).
type StreamTable struct {
	free []map[int32]simtime.Time
}

// NewStreamTable creates a table for nranks ranks.
func NewStreamTable(nranks int) *StreamTable {
	st := &StreamTable{free: make([]map[int32]simtime.Time, nranks)}
	for i := range st.free {
		st.free[i] = map[int32]simtime.Time{}
	}
	return st
}

// Acquire reserves stream cpu of rank from time `from` for dur and returns
// the actual [start, end) of the reservation (start >= from, delayed if
// the stream is busy).
func (st *StreamTable) Acquire(rank int, cpu int32, from simtime.Time, dur simtime.Duration) (start, end simtime.Time) {
	start = from
	if f := st.free[rank][cpu]; f > start {
		start = f
	}
	end = start.Add(dur)
	st.free[rank][cpu] = end
	return start, end
}

// FreeAt returns when stream cpu of rank next becomes available.
func (st *StreamTable) FreeAt(rank int, cpu int32) simtime.Time {
	return st.free[rank][cpu]
}
