package goal

import (
	"reflect"
	"testing"
)

// twoRankExchange builds a 2-rank schedule: rank 0 computes and sends,
// rank 1 receives and computes, with a dependency on each rank.
func twoRankExchange(bytes int64, tag int32) *Schedule {
	b := NewBuilder(2)
	r0 := b.Rank(0)
	c := r0.Calc(100)
	s := r0.Send(bytes, 1, tag)
	r0.Requires(s, c)
	r1 := b.Rank(1)
	rv := r1.Recv(bytes, 0, tag)
	w := r1.Calc(200)
	r1.Requires(w, rv)
	return b.MustBuild()
}

func TestComposePacked(t *testing.T) {
	a := twoRankExchange(64, 1)
	c := twoRankExchange(128, 2)
	merged, nodes, err := Compose(PlacePacked, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]int{{0, 1}, {2, 3}}; !reflect.DeepEqual(nodes, want) {
		t.Fatalf("packed nodes %v, want %v", nodes, want)
	}
	if merged.NumRanks() != 4 {
		t.Fatalf("merged ranks %d, want 4", merged.NumRanks())
	}
	// Job 1's send landed on node 2 and points at node 3.
	if op := merged.Ranks[2].Ops[1]; op.Kind != KindSend || op.Peer != 3 || op.Size != 128 {
		t.Fatalf("job 1 send misplaced: %+v", op)
	}
	if err := merged.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	// Size accounting is the sum of the parts.
	st, sa, sc := merged.ComputeStats(), a.ComputeStats(), c.ComputeStats()
	if st.Ops != sa.Ops+sc.Ops || st.SendBytes != sa.SendBytes+sc.SendBytes || st.DepEdges != sa.DepEdges+sc.DepEdges {
		t.Fatalf("stats not additive: %+v vs %+v + %+v", st, sa, sc)
	}
}

func TestComposeInterleaved(t *testing.T) {
	a := twoRankExchange(64, 1)
	c := twoRankExchange(128, 2)
	third := twoRankExchange(256, 3)
	merged, nodes, err := Compose(PlaceInterleaved, a, c, third)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]int{{0, 3}, {1, 4}, {2, 5}}; !reflect.DeepEqual(nodes, want) {
		t.Fatalf("interleaved nodes %v, want %v", nodes, want)
	}
	// Job 0's send runs on node 0 and targets its own rank 1 = node 3.
	if op := merged.Ranks[0].Ops[1]; op.Kind != KindSend || op.Peer != 3 {
		t.Fatalf("job 0 send peer %d, want 3", op.Peer)
	}
	if err := merged.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestComposeInterleavedUnevenJobs: once a small job is fully placed, the
// remaining nodes keep going to the larger jobs.
func TestComposeInterleavedUnevenJobs(t *testing.T) {
	big := micro4()
	small := twoRankExchange(64, 1)
	_, nodes, err := Compose(PlaceInterleaved, big, small)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]int{{0, 2, 4, 5}, {1, 3}}; !reflect.DeepEqual(nodes, want) {
		t.Fatalf("uneven interleave %v, want %v", nodes, want)
	}
}

// micro4 is a 4-rank all-calc schedule.
func micro4() *Schedule {
	b := NewBuilder(4)
	for r := 0; r < 4; r++ {
		b.Rank(r).Calc(int64(10 * (r + 1)))
	}
	return b.MustBuild()
}

// TestComposeDoesNotAliasInputs: mutating the merged schedule must not
// write through to the source schedules.
func TestComposeDoesNotAliasInputs(t *testing.T) {
	a := twoRankExchange(64, 1)
	merged, _, err := Compose(PlacePacked, a, twoRankExchange(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	merged.Ranks[0].Ops[0].Size = 999999
	merged.Ranks[0].Requires[1][0] = 0
	if a.Ranks[0].Ops[0].Size == 999999 {
		t.Fatal("merged ops alias the input schedule")
	}
}

func TestComposeErrors(t *testing.T) {
	if _, _, err := Compose(PlacePacked); err == nil {
		t.Fatal("no jobs should error")
	}
	// A never-validated job with an out-of-range peer must come back as
	// an error, not a panic in the peer rewrite.
	bad := &Schedule{Ranks: []RankProgram{{
		Ops:       []Op{{Kind: KindSend, Peer: 5, Size: 1}},
		Requires:  make([][]int32, 1),
		IRequires: make([][]int32, 1),
	}, {}}}
	bad.Ranks[1] = RankProgram{Ops: []Op{{Kind: KindCalc, Peer: -1}}, Requires: make([][]int32, 1), IRequires: make([][]int32, 1)}
	if _, _, err := Compose(PlacePacked, bad); err == nil {
		t.Fatal("invalid peer should error before merging")
	}
	if _, _, err := Compose(PlacePacked, nil); err == nil {
		t.Fatal("nil job should error")
	}
	if _, _, err := Compose(PlacePacked, &Schedule{}); err == nil {
		t.Fatal("empty job should error")
	}
	if _, _, err := Compose(Placement(99), twoRankExchange(1, 1)); err == nil {
		t.Fatal("unknown placement should error")
	}
}

func TestPlacementString(t *testing.T) {
	if PlacePacked.String() != "packed" || PlaceInterleaved.String() != "interleaved" {
		t.Fatalf("placement names: %v %v", PlacePacked, PlaceInterleaved)
	}
}
