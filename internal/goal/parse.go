package goal

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Zero-copy binary decode. ParseBinary walks one in-memory buffer with a
// cursor — no io.Reader round trips, no intermediate buffering — and
// sizes every allocation exactly: declared counts are admitted only after
// checking they fit in the bytes that remain (every op costs at least two
// encoded bytes, every dependency at least one), so a hostile header
// cannot claim gigabytes, and a truthful one lets ops and dependency
// arenas be allocated once at final size. This is the hot ingestion path
// for sim.ResolveSpec, the frontend registry, and atlahsd's workload
// resolution, all of which hold the full file in memory anyway.

// byteCursor decodes varints from a byte slice in place.
type byteCursor struct {
	data []byte
	off  int
}

func (c *byteCursor) remaining() int { return len(c.data) - c.off }

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("truncated varint at offset %d", c.off)
		}
		return 0, fmt.Errorf("varint overflows 64 bits at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("truncated varint at offset %d", c.off)
		}
		return 0, fmt.Errorf("varint overflows 64 bits at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) byte() (byte, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("unexpected end of input at offset %d", c.off)
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

// ParseBinary decodes a schedule from an in-memory compact binary buffer
// and validates it. It produces schedules reflect.DeepEqual to
// ReadBinary's (the fuzzer pins this) but allocates each rank's ops and
// dependency arena exactly once.
func ParseBinary(data []byte) (*Schedule, error) {
	if !bytes.HasPrefix(data, []byte(binaryMagic)) {
		n := len(data)
		if n > len(binaryMagic) {
			n = len(binaryMagic)
		}
		return nil, fmt.Errorf("goal: bad magic %q (not a binary GOAL file)", data[:n])
	}
	c := &byteCursor{data: data, off: len(binaryMagic)}
	nranks, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("goal: reading rank count: %w", err)
	}
	if nranks == 0 || nranks > 1<<24 {
		return nil, fmt.Errorf("goal: implausible rank count %d", nranks)
	}
	// Each rank contributes at least one byte (its op count), so a count
	// beyond the remaining input is provably corrupt — reject before
	// allocating for it.
	if nranks > uint64(c.remaining()) {
		return nil, fmt.Errorf("goal: rank count %d exceeds remaining input (%d bytes)", nranks, c.remaining())
	}
	s := &Schedule{Ranks: make([]RankProgram, nranks)}
	for r := 0; r < int(nranks); r++ {
		rp := &s.Ranks[r]
		nops, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("goal: rank %d op count: %w", r, err)
		}
		// flags + size take at least two bytes per op.
		if nops > uint64(c.remaining())/2 {
			return nil, fmt.Errorf("goal: rank %d: op count %d exceeds remaining input (%d bytes)", r, nops, c.remaining())
		}
		rp.Ops = make([]Op, nops)
		for i := 0; i < int(nops); i++ {
			op := &rp.Ops[i]
			flags, err := c.byte()
			if err != nil {
				return nil, fmt.Errorf("goal: rank %d op %d: %w", r, i, err)
			}
			op.Kind = Kind(flags & 0x3)
			sz, err := c.uvarint()
			if err != nil {
				return nil, fmt.Errorf("goal: rank %d op %d size: %w", r, i, err)
			}
			op.Size = int64(sz)
			op.Peer = -1
			if op.Kind != KindCalc {
				peer, err := c.uvarint()
				if err != nil {
					return nil, fmt.Errorf("goal: rank %d op %d peer: %w", r, i, err)
				}
				op.Peer = int32(peer)
				if flags&(1<<2) != 0 {
					tag, err := c.varint()
					if err != nil {
						return nil, fmt.Errorf("goal: rank %d op %d tag: %w", r, i, err)
					}
					op.Tag = int32(tag)
				}
			}
			if flags&(1<<3) != 0 {
				cpu, err := c.uvarint()
				if err != nil {
					return nil, fmt.Errorf("goal: rank %d op %d cpu: %w", r, i, err)
				}
				op.CPU = int32(cpu)
			}
		}
		if rp.Requires, err = parseDeps(c, int(nops)); err != nil {
			return nil, fmt.Errorf("goal: rank %d requires: %w", r, err)
		}
		if rp.IRequires, err = parseDeps(c, int(nops)); err != nil {
			return nil, fmt.Errorf("goal: rank %d irequires: %w", r, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseDeps decodes one dependency table in two passes over the same
// bytes: the first sizes (and bounds-checks) the table, the second fills
// a single exactly-sized arena. Varint scanning is cheap enough that the
// extra pass costs less than even one slice grow-and-copy.
func parseDeps(c *byteCursor, nops int) ([][]int32, error) {
	mark := c.off
	total := 0
	for i := 0; i < nops; i++ {
		n, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(c.remaining()) {
			return nil, fmt.Errorf("op %d: dependency count %d exceeds remaining input (%d bytes)", i, n, c.remaining())
		}
		total += int(n)
		for j := uint64(0); j < n; j++ {
			if _, err := c.varint(); err != nil {
				return nil, err
			}
		}
	}
	out := make([][]int32, nops)
	c.off = mark
	if total == 0 {
		// Lists are all empty; just re-consume the zero counts.
		for i := 0; i < nops; i++ {
			c.uvarint()
		}
		return out, nil
	}
	arena := make([]int32, 0, total)
	for i := 0; i < nops; i++ {
		n, _ := c.uvarint() // validated by the sizing pass
		if n == 0 {
			continue
		}
		start := len(arena)
		for j := uint64(0); j < n; j++ {
			delta, _ := c.varint()
			arena = append(arena, int32(i)-int32(delta))
		}
		out[i] = arena[start:len(arena):len(arena)]
	}
	return out, nil
}
