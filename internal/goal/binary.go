package goal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary GOAL format ("GOAL schedules are stored and executed in a compact
// binary format", paper §2.1). The encoding is varint-based:
//
//	magic   "GOALB1\n"
//	uvarint nranks
//	per rank:
//	  uvarint nops
//	  per op:
//	    byte   kind | flags (hasTag<<2, hasCPU<<3)
//	    uvarint size
//	    send/recv: uvarint peer, [svarint tag], [uvarint cpu]
//	    calc:      [uvarint cpu]
//	  per op: uvarint ndeps,  svarint delta(i - dep) for requires
//	  per op: uvarint nideps, svarint delta(i - dep) for irequires
//
// Dependency targets are encoded as deltas from the dependent op index,
// which are small for the chain-heavy graphs trace conversion produces —
// this is what makes GOAL files several times smaller than Chakra ETs
// (paper Fig 9).

const binaryMagic = "GOALB1\n"

// preallocCap bounds the capacity any single decode allocation may claim
// from a declared element count before the elements are actually read.
const preallocCap = 1 << 16

// capped clamps a declared count to the pre-allocation bound.
func capped(n uint64) int {
	if n > preallocCap {
		return preallocCap
	}
	return int(n)
}

// WriteBinary encodes the schedule in compact binary format.
func WriteBinary(w io.Writer, s *Schedule) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putS := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putU(uint64(s.NumRanks()))
	for r := range s.Ranks {
		rp := &s.Ranks[r]
		putU(uint64(len(rp.Ops)))
		for i := range rp.Ops {
			op := &rp.Ops[i]
			flags := byte(op.Kind)
			if op.Tag != 0 {
				flags |= 1 << 2
			}
			if op.CPU != 0 {
				flags |= 1 << 3
			}
			bw.WriteByte(flags)
			putU(uint64(op.Size))
			if op.Kind != KindCalc {
				putU(uint64(op.Peer))
				if flags&(1<<2) != 0 {
					putS(int64(op.Tag))
				}
			}
			if flags&(1<<3) != 0 {
				putU(uint64(op.CPU))
			}
		}
		writeDeps := func(deps [][]int32) {
			for i := range deps {
				putU(uint64(len(deps[i])))
				for _, d := range deps[i] {
					putS(int64(int32(i) - d))
				}
			}
		}
		writeDeps(rp.Requires)
		writeDeps(rp.IRequires)
	}
	return bw.Flush()
}

// bufVarintReader decodes varints from a bufio.Reader by peeking up to
// MaxVarintLen64 bytes and discarding the consumed prefix, instead of the
// byte-at-a-time ReadByte loop of binary.ReadUvarint. One Peek touches the
// buffered window directly, so the common case is a single bounds check
// plus the varint scan — about 3x fewer calls per field on dep-heavy
// schedules.
type bufVarintReader struct {
	br *bufio.Reader
}

func (d *bufVarintReader) uvarint() (uint64, error) {
	p, err := d.br.Peek(binary.MaxVarintLen64)
	if len(p) == 0 {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	v, n := binary.Uvarint(p)
	if n <= 0 {
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("varint overflows 64 bits")
	}
	d.br.Discard(n)
	return v, nil
}

func (d *bufVarintReader) varint() (int64, error) {
	uv, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	// zig-zag decode, same transform as binary.Varint
	v := int64(uv >> 1)
	if uv&1 != 0 {
		v = ^v
	}
	return v, nil
}

// ReadBinary decodes a schedule from compact binary format and validates
// it. The streaming decoder reads through one buffered window with peeked
// varint decodes and packs dependency lists into per-rank arenas; for
// input already held in memory, ParseBinary avoids the reader entirely.
func ReadBinary(r io.Reader) (*Schedule, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("goal: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("goal: bad magic %q (not a binary GOAL file)", magic)
	}
	d := bufVarintReader{br: br}
	getU := d.uvarint
	getS := d.varint

	nranks, err := getU()
	if err != nil {
		return nil, fmt.Errorf("goal: reading rank count: %w", err)
	}
	if nranks == 0 || nranks > 1<<24 {
		return nil, fmt.Errorf("goal: implausible rank count %d", nranks)
	}
	// Declared counts are attacker-controlled in a malformed (or hostile)
	// file, so nothing is pre-allocated beyond preallocCap: slices grow as
	// elements actually decode, and a count pointing past the real input
	// fails at EOF after bounded memory instead of allocating gigabytes up
	// front (found by FuzzBinaryRoundTrip).
	s := &Schedule{Ranks: make([]RankProgram, 0, capped(nranks))}
	for r := 0; r < int(nranks); r++ {
		var rp RankProgram
		nops, err := getU()
		if err != nil {
			return nil, fmt.Errorf("goal: rank %d op count: %w", r, err)
		}
		if nops > 1<<30 {
			return nil, fmt.Errorf("goal: rank %d: implausible op count %d", r, nops)
		}
		rp.Ops = make([]Op, 0, capped(nops))
		for i := 0; i < int(nops); i++ {
			var op Op
			flags, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("goal: rank %d op %d: %w", r, i, err)
			}
			op.Kind = Kind(flags & 0x3)
			sz, err := getU()
			if err != nil {
				return nil, fmt.Errorf("goal: rank %d op %d size: %w", r, i, err)
			}
			op.Size = int64(sz)
			op.Peer = -1
			if op.Kind != KindCalc {
				peer, err := getU()
				if err != nil {
					return nil, fmt.Errorf("goal: rank %d op %d peer: %w", r, i, err)
				}
				op.Peer = int32(peer)
				if flags&(1<<2) != 0 {
					tag, err := getS()
					if err != nil {
						return nil, fmt.Errorf("goal: rank %d op %d tag: %w", r, i, err)
					}
					op.Tag = int32(tag)
				}
			}
			if flags&(1<<3) != 0 {
				cpu, err := getU()
				if err != nil {
					return nil, fmt.Errorf("goal: rank %d op %d cpu: %w", r, i, err)
				}
				op.CPU = int32(cpu)
			}
			rp.Ops = append(rp.Ops, op)
		}
		readDeps := func() ([][]int32, error) {
			var a depArena
			a.reserve(capped(nops), capped(nops))
			for i := 0; i < int(nops); i++ {
				n, err := getU()
				if err != nil {
					return nil, err
				}
				for j := uint64(0); j < n; j++ {
					delta, err := getS()
					if err != nil {
						return nil, err
					}
					a.push(int32(i) - int32(delta))
				}
				a.endList()
			}
			return a.views(), nil
		}
		if rp.Requires, err = readDeps(); err != nil {
			return nil, fmt.Errorf("goal: rank %d requires: %w", r, err)
		}
		if rp.IRequires, err = readDeps(); err != nil {
			return nil, fmt.Errorf("goal: rank %d irequires: %w", r, err)
		}
		s.Ranks = append(s.Ranks, rp)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
