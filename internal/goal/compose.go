package goal

import "fmt"

// Placement selects how composed jobs' ranks are laid out on the shared
// fabric.
type Placement uint8

// Placement policies. PlacePacked gives each job a contiguous block of
// nodes in job order (locality-preserving: a job's traffic stays within
// its own ToRs on a fat tree). PlaceInterleaved deals nodes to jobs
// round-robin (scheduler-realistic fragmentation: every job's traffic
// crosses the core).
const (
	PlacePacked Placement = iota
	PlaceInterleaved
)

func (p Placement) String() string {
	switch p {
	case PlacePacked:
		return "packed"
	case PlaceInterleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("placement(%d)", uint8(p))
	}
}

// Compose merges independently-sourced schedules onto one fabric of
// sum-of-ranks nodes — the multi-job scenario layer (paper §3.2): each
// job keeps its own DAG, its ranks are mapped onto disjoint fabric nodes
// by the placement policy, and peers are rewritten to the global node
// numbering. Because jobs never share a node, message matching cannot
// cross jobs and no tag or stream rewriting is needed (multi-tenant
// node sharing is internal/placement's job).
//
// It returns the merged schedule plus each job's node list: nodes[j][r]
// is the fabric node of job j's rank r, the mapping callers need to read
// per-job completion times out of a combined result.
func Compose(policy Placement, jobs ...*Schedule) (*Schedule, [][]int, error) {
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("goal: Compose with no jobs")
	}
	sizes := make([]int, len(jobs))
	total := 0
	for j, job := range jobs {
		if job == nil {
			return nil, nil, fmt.Errorf("goal: Compose job %d is nil", j)
		}
		if job.NumRanks() == 0 {
			return nil, nil, fmt.Errorf("goal: Compose job %d has no ranks", j)
		}
		// Peers are rewritten through the job's node table below, so a
		// never-validated schedule with an out-of-range peer must be
		// rejected here rather than panic mid-merge.
		if err := job.Validate(); err != nil {
			return nil, nil, fmt.Errorf("goal: Compose job %d: %w", j, err)
		}
		sizes[j] = job.NumRanks()
		total += sizes[j]
	}
	nodes, err := placeJobs(policy, sizes, total)
	if err != nil {
		return nil, nil, err
	}

	out := &Schedule{Ranks: make([]RankProgram, total)}
	for j, job := range jobs {
		for r := range job.Ranks {
			rp := &job.Ranks[r]
			dst := &out.Ranks[nodes[j][r]]
			dst.Ops = append([]Op(nil), rp.Ops...)
			for i := range dst.Ops {
				if dst.Ops[i].Kind != KindCalc {
					dst.Ops[i].Peer = int32(nodes[j][dst.Ops[i].Peer])
				}
			}
			dst.Requires = copyDeps(rp.Requires)
			dst.IRequires = copyDeps(rp.IRequires)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	return out, nodes, nil
}

// placeJobs assigns each job's ranks to fabric nodes under the policy.
func placeJobs(policy Placement, sizes []int, total int) ([][]int, error) {
	nodes := make([][]int, len(sizes))
	switch policy {
	case PlacePacked:
		next := 0
		for j, s := range sizes {
			nodes[j] = make([]int, s)
			for r := range nodes[j] {
				nodes[j][r] = next
				next++
			}
		}
	case PlaceInterleaved:
		next := 0
		for next < total {
			for j, s := range sizes {
				if len(nodes[j]) < s {
					nodes[j] = append(nodes[j], next)
					next++
				}
			}
		}
	default:
		return nil, fmt.Errorf("goal: unknown placement %v", policy)
	}
	return nodes, nil
}

// copyDeps deep-copies a dependency table, packing it into a fresh arena
// (arena.go) so the composed schedule keeps the one-allocation-per-table
// layout regardless of how the source job was built.
func copyDeps(deps [][]int32) [][]int32 {
	return packDeps(deps)
}
