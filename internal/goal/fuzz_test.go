package goal

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseText hardens the textual GOAL parser: whatever bytes arrive,
// parsing must return an error — never panic or over-allocate — and any
// schedule it accepts must survive a WriteText/ParseText round trip with
// identical shape. The seed corpus mirrors the goal_test.go fixtures:
// paper syntax, dependencies, comments, every op attribute, and the common
// malformations the error tests cover.
func FuzzParseText(f *testing.F) {
	seeds := []string{
		// paper Fig 3 syntax (mirrors TestParseTextPaperSyntax)
		"num_ranks 2\nrank 0 {\nl1: calc 100\nl2: calc 200 cpu 1\nl3: send 10b to 1 tag 42\nl4: recv 10b from 1 tag 42 cpu 1\nl3 requires l1\nl4 irequires l2\n}\nrank 1 {\nl1: recv 10b from 0 tag 42\nl2: send 10b to 0 tag 42\nl2 requires l1\n}\n",
		// comments, blank lines, forward labels
		"// a comment\nnum_ranks 1\nrank 0 {\n\nl2 requires l1\nl1: calc 5\nl2: calc 7\n}\n",
		// rendezvous-sized sends, wildcard-ish tags, nic attribute
		"num_ranks 2\nrank 0 {\nl1: send 300000b to 1 tag 0 nic 1\n}\nrank 1 {\nl1: recv 300000b from 0 tag 0\n}\n",
		// malformed inputs from TestParseTextErrors territory
		"num_ranks 0\n",
		"num_ranks 2\nnum_ranks 2\n",
		"rank 0 {\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc\n}\n",
		"num_ranks 1\nrank 0 {\nl1: send 5 to 0\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc 5\nl1: calc 6\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc 5\nl2 requires l9\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc 5\n",
		"num_ranks 99999999999999999999\n",
		"num_ranks 10000000000\n",
		"num_ranks 1\nrank 0 {\nl1: recv -10b from 0 tag -1\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseText(strings.NewReader(src))
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, s); err != nil {
			t.Fatalf("WriteText failed on accepted schedule: %v", err)
		}
		again, err := ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected:\n%s\nerror: %v", buf.String(), err)
		}
		if again.NumRanks() != s.NumRanks() {
			t.Fatalf("round trip rank count %d, want %d", again.NumRanks(), s.NumRanks())
		}
		st, st2 := s.ComputeStats(), again.ComputeStats()
		if st != st2 {
			t.Fatalf("round trip stats %+v, want %+v", st2, st)
		}
	})
}
