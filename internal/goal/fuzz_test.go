package goal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseText hardens the textual GOAL parser: whatever bytes arrive,
// parsing must return an error — never panic or over-allocate — and any
// schedule it accepts must survive a WriteText/ParseText round trip with
// identical shape. The seed corpus mirrors the goal_test.go fixtures:
// paper syntax, dependencies, comments, every op attribute, and the common
// malformations the error tests cover.
func FuzzParseText(f *testing.F) {
	seeds := []string{
		// paper Fig 3 syntax (mirrors TestParseTextPaperSyntax)
		"num_ranks 2\nrank 0 {\nl1: calc 100\nl2: calc 200 cpu 1\nl3: send 10b to 1 tag 42\nl4: recv 10b from 1 tag 42 cpu 1\nl3 requires l1\nl4 irequires l2\n}\nrank 1 {\nl1: recv 10b from 0 tag 42\nl2: send 10b to 0 tag 42\nl2 requires l1\n}\n",
		// comments, blank lines, forward labels
		"// a comment\nnum_ranks 1\nrank 0 {\n\nl2 requires l1\nl1: calc 5\nl2: calc 7\n}\n",
		// rendezvous-sized sends, wildcard-ish tags, nic attribute
		"num_ranks 2\nrank 0 {\nl1: send 300000b to 1 tag 0 nic 1\n}\nrank 1 {\nl1: recv 300000b from 0 tag 0\n}\n",
		// malformed inputs from TestParseTextErrors territory
		"num_ranks 0\n",
		"num_ranks 2\nnum_ranks 2\n",
		"rank 0 {\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc\n}\n",
		"num_ranks 1\nrank 0 {\nl1: send 5 to 0\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc 5\nl1: calc 6\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc 5\nl2 requires l9\n}\n",
		"num_ranks 1\nrank 0 {\nl1: calc 5\n",
		"num_ranks 99999999999999999999\n",
		"num_ranks 10000000000\n",
		"num_ranks 1\nrank 0 {\nl1: recv -10b from 0 tag -1\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseText(strings.NewReader(src))
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, s); err != nil {
			t.Fatalf("WriteText failed on accepted schedule: %v", err)
		}
		again, err := ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected:\n%s\nerror: %v", buf.String(), err)
		}
		if again.NumRanks() != s.NumRanks() {
			t.Fatalf("round trip rank count %d, want %d", again.NumRanks(), s.NumRanks())
		}
		st, st2 := s.ComputeStats(), again.ComputeStats()
		if st != st2 {
			t.Fatalf("round trip stats %+v, want %+v", st2, st)
		}
	})
}

// binarySeed encodes a schedule for the binary-codec fuzz corpus,
// panicking on the (impossible) encoder failure of a valid fixture.
func binarySeed(s *Schedule) []byte {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzBinaryRoundTrip hardens the binary GOAL codec the same way the text
// fuzzer hardens the parser: arbitrary bytes must parse-or-fail cleanly —
// no panics, no over-allocation — and any schedule the decoder accepts
// must survive a parse -> encode -> parse round trip with the two decoded
// schedules structurally identical (every op, every dependency edge, in
// order), not merely stats-equal. The seed corpus covers every op kind
// and attribute the encoder's flag byte can express, both dependency
// kinds, multi-rank programs, and truncated/corrupted headers.
func FuzzBinaryRoundTrip(f *testing.F) {
	full := NewBuilder(3)
	r0 := full.Rank(0)
	c := r0.Calc(100)
	cc := r0.CalcOn(250, 2) // cpu flag on a calc
	s1 := r0.Send(64, 1, 0) // tagless send
	s2 := r0.SendOn(300000, 2, 42, 1)
	r0.Requires(s2, c, s1)
	r0.IRequires(s2, cc)
	r1 := full.Rank(1)
	r1.Recv(64, 0, 0)
	r2 := full.Rank(2)
	rv := r2.RecvOn(300000, 0, 42, 3)
	w := r2.Calc(7)
	r2.Requires(w, rv)
	wild := NewBuilder(2)
	wild.Rank(0).Send(8, 1, 5)
	wild.Rank(1).Recv(8, 0, AnyTag) // negative tag exercises the svarint path

	seeds := [][]byte{
		binarySeed(full.MustBuild()),
		binarySeed(wild.MustBuild()),
		binarySeed(&Schedule{Ranks: make([]RankProgram, 1)}), // empty rank program
		[]byte("GOALB1\n"),                                   // magic only
		[]byte("GOALB1\n\x01\x01"),                           // truncated op
		[]byte("GOALB2\n\x01"),                               // wrong magic
		[]byte("num_ranks 1\n"),                              // text format fed to the binary reader
		{0x47, 0x4f, 0x41, 0x4c},                             // partial magic
		append([]byte("GOALB1\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01), // absurd rank count
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := ReadBinary(bytes.NewReader(raw))
		ps, perr := ParseBinary(raw)
		// The streaming and zero-copy decoders are independent
		// implementations of the same format: they must agree on every
		// input — accept the same bytes and produce structurally
		// identical schedules.
		if (err == nil) != (perr == nil) {
			t.Fatalf("decoder disagreement: ReadBinary err=%v, ParseBinary err=%v", err, perr)
		}
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		if !reflect.DeepEqual(s, ps) {
			t.Fatalf("decoder disagreement:\nReadBinary:  %+v\nParseBinary: %+v", s, ps)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			t.Fatalf("WriteBinary failed on accepted schedule: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed the schedule:\nfirst:  %+v\nsecond: %+v", s, again)
		}
		// Re-encoding the reparsed schedule must be byte-stable: the codec
		// has one canonical encoding per schedule.
		var buf2 bytes.Buffer
		if err := WriteBinary(&buf2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("encoding not canonical: second encode differs from first")
		}
	})
}
