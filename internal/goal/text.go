package goal

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The textual GOAL format (paper Fig 3):
//
//	num_ranks 2
//	rank 0 {
//	l1: calc 100
//	l2: calc 200 cpu 1
//	l3: send 10b to 1 tag 42
//	l4: recv 10b from 1 tag 42 cpu 1
//	l3 requires l1
//	l4 irequires l2
//	}
//
// Labels are arbitrary identifiers local to a rank block. Byte sizes carry
// a "b" suffix; calc durations are plain nanosecond integers. "cpu N"
// assigns the compute stream, "tag N" the message tag (default 0).

// MaxTextRanks bounds the rank count a textual GOAL header may declare.
// Rank state is allocated up front from the header, so an absurd count in
// a malformed (or hostile) file would exhaust memory before any op line is
// even read; real schedules at this scale ship as binary GOAL anyway.
const MaxTextRanks = 1 << 20

// WriteText prints the schedule in textual GOAL format.
func WriteText(w io.Writer, s *Schedule) error {
	bw := bufio.NewWriter(w)
	if s.Comment != "" {
		for _, line := range strings.Split(s.Comment, "\n") {
			fmt.Fprintf(bw, "// %s\n", line)
		}
	}
	fmt.Fprintf(bw, "num_ranks %d\n", s.NumRanks())
	for r := range s.Ranks {
		rp := &s.Ranks[r]
		fmt.Fprintf(bw, "rank %d {\n", r)
		for i := range rp.Ops {
			op := &rp.Ops[i]
			switch op.Kind {
			case KindCalc:
				fmt.Fprintf(bw, "l%d: calc %d", i+1, op.Size)
			case KindSend:
				fmt.Fprintf(bw, "l%d: send %db to %d tag %d", i+1, op.Size, op.Peer, op.Tag)
			case KindRecv:
				fmt.Fprintf(bw, "l%d: recv %db from %d tag %d", i+1, op.Size, op.Peer, op.Tag)
			}
			if op.CPU != 0 {
				fmt.Fprintf(bw, " cpu %d", op.CPU)
			}
			bw.WriteByte('\n')
		}
		for i := range rp.Ops {
			for _, d := range rp.Requires[i] {
				fmt.Fprintf(bw, "l%d requires l%d\n", i+1, d+1)
			}
			for _, d := range rp.IRequires[i] {
				fmt.Fprintf(bw, "l%d irequires l%d\n", i+1, d+1)
			}
		}
		fmt.Fprintln(bw, "}")
	}
	return bw.Flush()
}

// ParseText reads a schedule in textual GOAL format.
func ParseText(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	p := &textParser{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("goal: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("goal: %w", err)
	}
	return p.finish()
}

type textParser struct {
	b       *Builder
	curRank *RankBuilder
	labels  map[string]OpID // labels of the current rank block
	pending [][3]string     // deferred dependency lines: label, kind, dep
}

func (p *textParser) line(line string) error {
	fields := strings.Fields(line)
	switch {
	case fields[0] == "num_ranks":
		if len(fields) != 2 {
			return fmt.Errorf("malformed num_ranks line %q", line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad rank count %q", fields[1])
		}
		if n > MaxTextRanks {
			return fmt.Errorf("rank count %d exceeds the text-format limit %d", n, MaxTextRanks)
		}
		if p.b != nil {
			return fmt.Errorf("duplicate num_ranks")
		}
		p.b = NewBuilder(n)
		return nil
	case fields[0] == "rank":
		if p.b == nil {
			return fmt.Errorf("rank block before num_ranks")
		}
		if p.curRank != nil {
			return fmt.Errorf("nested rank block")
		}
		if len(fields) != 3 || fields[2] != "{" {
			return fmt.Errorf("malformed rank header %q", line)
		}
		r, err := strconv.Atoi(fields[1])
		if err != nil || r < 0 || r >= p.b.NumRanks() {
			return fmt.Errorf("bad rank index %q", fields[1])
		}
		p.curRank = p.b.Rank(r)
		p.labels = map[string]OpID{}
		p.pending = p.pending[:0]
		return nil
	case fields[0] == "}":
		if p.curRank == nil {
			return fmt.Errorf("unexpected }")
		}
		for _, dep := range p.pending {
			a, ok := p.labels[dep[0]]
			if !ok {
				return fmt.Errorf("unknown label %q in dependency", dep[0])
			}
			d, ok := p.labels[dep[2]]
			if !ok {
				return fmt.Errorf("unknown label %q in dependency", dep[2])
			}
			if dep[1] == "requires" {
				p.curRank.Requires(a, d)
			} else {
				p.curRank.IRequires(a, d)
			}
		}
		p.curRank = nil
		p.labels = nil
		return nil
	}
	if p.curRank == nil {
		return fmt.Errorf("statement outside rank block: %q", line)
	}
	// dependency line: "<label> requires <label>" / "<label> irequires <label>"
	if len(fields) == 3 && (fields[1] == "requires" || fields[1] == "irequires") {
		p.pending = append(p.pending, [3]string{fields[0], fields[1], fields[2]})
		return nil
	}
	// op line: "<label>: <op> ..."
	if !strings.HasSuffix(fields[0], ":") {
		return fmt.Errorf("expected op or dependency, got %q", line)
	}
	label := strings.TrimSuffix(fields[0], ":")
	if _, dup := p.labels[label]; dup {
		return fmt.Errorf("duplicate label %q", label)
	}
	id, err := p.parseOp(fields[1:])
	if err != nil {
		return err
	}
	p.labels[label] = id
	return nil
}

func (p *textParser) parseOp(fields []string) (OpID, error) {
	if len(fields) == 0 {
		return 0, fmt.Errorf("empty op")
	}
	var (
		kind Kind
		size int64
		peer = -1
		tag  int32
		cpu  int32
	)
	switch fields[0] {
	case "calc":
		kind = KindCalc
		if len(fields) < 2 {
			return 0, fmt.Errorf("calc missing duration")
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad calc duration %q", fields[1])
		}
		size = n
		fields = fields[2:]
	case "send", "recv":
		if fields[0] == "send" {
			kind = KindSend
		} else {
			kind = KindRecv
		}
		if len(fields) < 4 {
			return 0, fmt.Errorf("%s needs '<N>b to|from <rank>'", fields[0])
		}
		szs := strings.TrimSuffix(fields[1], "b")
		n, err := strconv.ParseInt(szs, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad size %q", fields[1])
		}
		size = n
		dir := fields[2]
		if (kind == KindSend && dir != "to") || (kind == KindRecv && dir != "from") {
			return 0, fmt.Errorf("expected to/from, got %q", dir)
		}
		pr, err := strconv.Atoi(fields[3])
		if err != nil {
			return 0, fmt.Errorf("bad peer %q", fields[3])
		}
		peer = pr
		fields = fields[4:]
	default:
		return 0, fmt.Errorf("unknown op %q", fields[0])
	}
	for len(fields) > 0 {
		switch fields[0] {
		case "tag":
			if len(fields) < 2 {
				return 0, fmt.Errorf("tag missing value")
			}
			v, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return 0, fmt.Errorf("bad tag %q", fields[1])
			}
			tag = int32(v)
			fields = fields[2:]
		case "cpu":
			if len(fields) < 2 {
				return 0, fmt.Errorf("cpu missing value")
			}
			v, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("bad cpu %q", fields[1])
			}
			cpu = int32(v)
			fields = fields[2:]
		case "nic":
			// accepted for compatibility with LogGOPSim schedules; ignored
			if len(fields) < 2 {
				return 0, fmt.Errorf("nic missing value")
			}
			fields = fields[2:]
		default:
			return 0, fmt.Errorf("unknown attribute %q", fields[0])
		}
	}
	switch kind {
	case KindCalc:
		return p.curRank.CalcOn(size, cpu), nil
	case KindSend:
		return p.curRank.SendOn(size, peer, tag, cpu), nil
	default:
		return p.curRank.RecvOn(size, peer, tag, cpu), nil
	}
}

func (p *textParser) finish() (*Schedule, error) {
	if p.b == nil {
		return nil, fmt.Errorf("goal: missing num_ranks")
	}
	if p.curRank != nil {
		return nil, fmt.Errorf("goal: unterminated rank block")
	}
	s := p.b.Build()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
