package goal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"atlahs/internal/xrand"
)

// buildPaperExample reproduces the schedule of paper Fig 3 (rank 0 of a
// 2-rank schedule).
func buildPaperExample() *Schedule {
	b := NewBuilder(2)
	r0 := b.Rank(0)
	l1 := r0.Calc(100)
	l2 := r0.CalcOn(200, 0)
	l3 := r0.CalcOn(200, 1)
	l4 := r0.Send(10, 1, 0)
	r0.Requires(l2, l1)
	r0.Requires(l3, l1)
	r0.Requires(l4, l2, l3)
	b.Rank(1).Recv(10, 0, 0)
	return b.MustBuild()
}

func TestBuilderPaperExample(t *testing.T) {
	s := buildPaperExample()
	if s.NumRanks() != 2 {
		t.Fatalf("ranks=%d", s.NumRanks())
	}
	rp := &s.Ranks[0]
	if len(rp.Ops) != 4 {
		t.Fatalf("ops=%d", len(rp.Ops))
	}
	if rp.Ops[2].CPU != 1 {
		t.Fatalf("l3 cpu=%d, want 1", rp.Ops[2].CPU)
	}
	if got := rp.Requires[3]; len(got) != 2 {
		t.Fatalf("l4 deps=%v", got)
	}
	st := s.ComputeStats()
	if st.Sends != 1 || st.Recvs != 1 || st.Calcs != 3 || st.SendBytes != 10 {
		t.Fatalf("stats=%+v", st)
	}
	if st.MaxStreams != 2 {
		t.Fatalf("streams=%d, want 2", st.MaxStreams)
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	b := NewBuilder(1)
	r := b.Rank(0)
	a := r.Calc(1)
	c := r.Calc(2)
	r.Requires(a, c)
	r.Requires(c, a)
	if err := b.Build().Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestValidateCatchesBadPeer(t *testing.T) {
	b := NewBuilder(2)
	b.Rank(0).Send(8, 5, 0)
	if err := b.Build().Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad peer not detected: %v", err)
	}
}

func TestValidateCatchesSelfSend(t *testing.T) {
	b := NewBuilder(2)
	b.Rank(1).Send(8, 1, 0)
	if err := b.Build().Validate(); err == nil || !strings.Contains(err.Error(), "self") {
		t.Fatalf("self-send not detected: %v", err)
	}
}

func TestCheckMatchedDetectsOrphans(t *testing.T) {
	b := NewBuilder(2)
	b.Rank(0).Send(8, 1, 7)
	if err := b.Build().CheckMatched(); err == nil {
		t.Fatal("unmatched send not detected")
	}
	b2 := NewBuilder(2)
	b2.Rank(1).Recv(8, 0, 7)
	if err := b2.Build().CheckMatched(); err == nil {
		t.Fatal("unmatched recv not detected")
	}
}

func TestCheckMatchedWildcard(t *testing.T) {
	b := NewBuilder(2)
	b.Rank(0).Send(8, 1, 123)
	b.Rank(1).Recv(8, 0, AnyTag)
	if err := b.Build().CheckMatched(); err != nil {
		t.Fatalf("wildcard recv should match: %v", err)
	}
}

func TestChain(t *testing.T) {
	b := NewBuilder(1)
	r := b.Rank(0)
	a, c, d := r.Calc(1), r.Calc(2), r.Calc(3)
	last := r.Chain(a, c, d)
	if last != d {
		t.Fatalf("Chain returned %d, want %d", last, d)
	}
	s := b.MustBuild()
	if !reflect.DeepEqual(s.Ranks[0].Requires[int(c)], []int32{int32(a)}) {
		t.Fatalf("chain deps wrong: %v", s.Ranks[0].Requires)
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := buildPaperExample()
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("parse: %v\ntext:\n%s", err, buf.String())
	}
	if !schedulesEqual(s, got) {
		t.Fatalf("text round trip mismatch:\n%s", buf.String())
	}
}

func TestParseTextPaperSyntax(t *testing.T) {
	// Hand-written schedule mirroring paper Fig 3 syntax.
	src := `
// example from the paper
num_ranks 2
rank 0 {
l1: calc 100
l2: calc 200
l3: calc 200 cpu 1
l4: send 10b to 1
l2 requires l1
l3 requires l1
l4 requires l2
l4 requires l3
}
rank 1 {
r: recv 10b from 0
}
`
	s, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRanks() != 2 || len(s.Ranks[0].Ops) != 4 {
		t.Fatalf("parsed wrong shape: %+v", s.ComputeStats())
	}
	if s.Ranks[0].Ops[2].CPU != 1 {
		t.Fatal("cpu attribute lost")
	}
	if len(s.Ranks[0].Requires[3]) != 2 {
		t.Fatal("multi requires lost")
	}
}

func TestParseTextForwardLabel(t *testing.T) {
	// Dependencies may reference labels defined later in the block.
	src := `
num_ranks 1
rank 0 {
a: calc 5
a requires b
b: calc 1
}
`
	// a requires b creates a -> b which is acyclic (a after b).
	s, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ranks[0].Requires[0]) != 1 {
		t.Fatal("forward dependency lost")
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"rank 0 {\n}",                                          // missing num_ranks
		"num_ranks 1\nrank 5 {\n}",                             // rank out of range
		"num_ranks 1\nrank 0 {\nl1: calc 1",                    // unterminated block
		"num_ranks 1\nrank 0 {\nl1: frob 1\n}",                 // unknown op
		"num_ranks 1\nrank 0 {\nl1: calc 1\nl1: calc 2\n}",     // dup label
		"num_ranks 1\nrank 0 {\na requires nosuch\n}",          // unknown dep label
		"num_ranks 2\nrank 0 {\nl1: send 8b from 1\n}",         // wrong direction word
		"num_ranks 1\nnum_ranks 1",                             // duplicate header
		"num_ranks 1\nrank 0 {\nl1: calc 1\nl1 requires l1\n}", // self-cycle
	}
	for _, src := range cases {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := buildPaperExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !schedulesEqual(s, got) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a goal file")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

// randomSchedule builds a random valid schedule for property tests.
func randomSchedule(rng *xrand.RNG, maxRanks, maxOps int) *Schedule {
	n := rng.Intn(maxRanks) + 1
	b := NewBuilder(n)
	for r := 0; r < n; r++ {
		rb := b.Rank(r)
		nops := rng.Intn(maxOps)
		ids := make([]OpID, 0, nops)
		for i := 0; i < nops; i++ {
			var id OpID
			switch rng.Intn(3) {
			case 0:
				id = rb.CalcOn(rng.Int63n(10000), int32(rng.Intn(4)))
			case 1:
				if n == 1 {
					id = rb.Calc(1)
					break
				}
				peer := rng.Intn(n - 1)
				if peer >= r {
					peer++
				}
				id = rb.SendOn(rng.Int63n(1<<20)+1, peer, int32(rng.Intn(8)), int32(rng.Intn(4)))
			default:
				if n == 1 {
					id = rb.Calc(1)
					break
				}
				peer := rng.Intn(n - 1)
				if peer >= r {
					peer++
				}
				id = rb.RecvOn(rng.Int63n(1<<20)+1, peer, int32(rng.Intn(8)), int32(rng.Intn(4)))
			}
			// add backward deps only => acyclic by construction
			if len(ids) > 0 && rng.Bool(0.5) {
				dep := ids[rng.Intn(len(ids))]
				if rng.Bool(0.8) {
					rb.Requires(id, dep)
				} else {
					rb.IRequires(id, dep)
				}
			}
			ids = append(ids, id)
		}
	}
	return b.Build()
}

func schedulesEqual(a, b *Schedule) bool {
	if a.NumRanks() != b.NumRanks() {
		return false
	}
	for r := range a.Ranks {
		x, y := &a.Ranks[r], &b.Ranks[r]
		if len(x.Ops) != len(y.Ops) {
			return false
		}
		for i := range x.Ops {
			if x.Ops[i] != y.Ops[i] {
				return false
			}
		}
		for i := range x.Ops {
			if !sameList(x.Requires[i], y.Requires[i]) || !sameList(x.IRequires[i], y.IRequires[i]) {
				return false
			}
		}
	}
	return true
}

func sameList(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: binary encode/decode is the identity on valid schedules.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomSchedule(xrand.New(seed), 6, 40)
		if s.Validate() != nil {
			return false
		}
		var buf bytes.Buffer
		if WriteBinary(&buf, s) != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return schedulesEqual(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: text encode/parse is the identity on valid schedules.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomSchedule(xrand.New(seed), 4, 25)
		var buf bytes.Buffer
		if WriteText(&buf, s) != nil {
			return false
		}
		got, err := ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		return schedulesEqual(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: random generated schedules always validate (acyclic by
// construction) and stats totals are consistent.
func TestRandomScheduleInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomSchedule(xrand.New(seed), 8, 60)
		if s.Validate() != nil {
			return false
		}
		st := s.ComputeStats()
		return st.Ops == st.Sends+st.Recvs+st.Calcs && st.Ranks == s.NumRanks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	s := randomSchedule(xrand.New(1), 8, 200)
	var txt, bin bytes.Buffer
	if err := WriteText(&txt, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary (%d B) not smaller than text (%d B)", bin.Len(), txt.Len())
	}
}

func TestCalcDuration(t *testing.T) {
	op := Op{Kind: KindCalc, Size: 100}
	if op.CalcDuration(1.0) != 100000 {
		t.Fatalf("CalcDuration(1.0)=%d ps", op.CalcDuration(1.0))
	}
	if op.CalcDuration(2.0) != 200000 {
		t.Fatalf("CalcDuration(2.0)=%d ps", op.CalcDuration(2.0))
	}
}

func TestKindString(t *testing.T) {
	if KindCalc.String() != "calc" || KindSend.String() != "send" || KindRecv.String() != "recv" {
		t.Fatal("Kind.String broken")
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	s := randomSchedule(xrand.New(2), 16, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	s := randomSchedule(xrand.New(2), 16, 500)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
