package goal

import "fmt"

// OpID identifies an op within one rank's program during construction.
type OpID int32

// Builder incrementally constructs a Schedule. It is the API used by every
// trace converter (Schedgen, the NCCL 4-stage pipeline, Direct Drive) and
// workload generator. Builders are not safe for concurrent use.
type Builder struct {
	ranks   []rankBuilder
	comment string
}

type rankBuilder struct {
	ops       []Op
	requires  [][]int32
	irequires [][]int32
}

// NewBuilder creates a builder for a schedule with nranks ranks.
func NewBuilder(nranks int) *Builder {
	if nranks <= 0 {
		panic("goal: NewBuilder with non-positive rank count")
	}
	return &Builder{ranks: make([]rankBuilder, nranks)}
}

// SetComment attaches a free-form comment stored with the schedule.
func (b *Builder) SetComment(c string) { b.comment = c }

// NumRanks returns the schedule's rank count.
func (b *Builder) NumRanks() int { return len(b.ranks) }

// Rank returns the per-rank builder handle for rank r.
func (b *Builder) Rank(r int) *RankBuilder {
	if r < 0 || r >= len(b.ranks) {
		panic(fmt.Sprintf("goal: rank %d out of range [0,%d)", r, len(b.ranks)))
	}
	return &RankBuilder{b: b, r: r}
}

// RankBuilder adds ops and dependencies to one rank.
type RankBuilder struct {
	b *Builder
	r int
}

// Rank returns the rank index this builder appends to.
func (rb *RankBuilder) Rank() int { return rb.r }

// NumOps returns the number of ops added to this rank so far.
func (rb *RankBuilder) NumOps() int { return len(rb.b.ranks[rb.r].ops) }

func (rb *RankBuilder) add(op Op) OpID {
	rk := &rb.b.ranks[rb.r]
	rk.ops = append(rk.ops, op)
	rk.requires = append(rk.requires, nil)
	rk.irequires = append(rk.irequires, nil)
	return OpID(len(rk.ops) - 1)
}

// Calc appends a computation of the given nanoseconds on stream 0.
func (rb *RankBuilder) Calc(nanos int64) OpID {
	return rb.add(Op{Kind: KindCalc, Peer: -1, Size: nanos})
}

// CalcOn appends a computation on the given compute stream.
func (rb *RankBuilder) CalcOn(nanos int64, cpu int32) OpID {
	return rb.add(Op{Kind: KindCalc, Peer: -1, Size: nanos, CPU: cpu})
}

// Send appends a send of size bytes to rank dst with the given tag.
func (rb *RankBuilder) Send(size int64, dst int, tag int32) OpID {
	return rb.add(Op{Kind: KindSend, Peer: int32(dst), Tag: tag, Size: size})
}

// SendOn appends a send issued from the given compute stream.
func (rb *RankBuilder) SendOn(size int64, dst int, tag int32, cpu int32) OpID {
	return rb.add(Op{Kind: KindSend, Peer: int32(dst), Tag: tag, Size: size, CPU: cpu})
}

// Recv appends a receive of size bytes from rank src with the given tag.
func (rb *RankBuilder) Recv(size int64, src int, tag int32) OpID {
	return rb.add(Op{Kind: KindRecv, Peer: int32(src), Tag: tag, Size: size})
}

// RecvOn appends a receive posted on the given compute stream.
func (rb *RankBuilder) RecvOn(size int64, src int, tag int32, cpu int32) OpID {
	return rb.add(Op{Kind: KindRecv, Peer: int32(src), Tag: tag, Size: size, CPU: cpu})
}

// Requires adds completion dependencies: op starts only after each dep has
// completed.
func (rb *RankBuilder) Requires(op OpID, deps ...OpID) {
	rk := &rb.b.ranks[rb.r]
	for _, d := range deps {
		rk.requires[op] = append(rk.requires[op], int32(d))
	}
}

// IRequires adds start dependencies: op starts only after each dep has
// started.
func (rb *RankBuilder) IRequires(op OpID, deps ...OpID) {
	rk := &rb.b.ranks[rb.r]
	for _, d := range deps {
		rk.irequires[op] = append(rk.irequires[op], int32(d))
	}
}

// Chain links ops into a sequential requires chain (each op requires its
// predecessor) and returns the last op, or -1 for an empty argument list.
func (rb *RankBuilder) Chain(ops ...OpID) OpID {
	if len(ops) == 0 {
		return -1
	}
	for i := 1; i < len(ops); i++ {
		rb.Requires(ops[i], ops[i-1])
	}
	return ops[len(ops)-1]
}

// Build assembles the final Schedule. The builder remains usable (the
// schedule shares no mutable state with it after Build copies slices).
// Dependency tables are packed into per-rank arenas (see arena.go) so the
// built schedule costs a constant number of allocations per rank, not per
// op.
func (b *Builder) Build() *Schedule {
	s := &Schedule{Comment: b.comment, Ranks: make([]RankProgram, len(b.ranks))}
	for r := range b.ranks {
		rk := &b.ranks[r]
		rp := &s.Ranks[r]
		rp.Ops = append([]Op(nil), rk.ops...)
		rp.Requires = packDeps(rk.requires)
		rp.IRequires = packDeps(rk.irequires)
	}
	return s
}

// MustBuild assembles the Schedule and panics if validation fails. Intended
// for generators whose output is by construction valid.
func (b *Builder) MustBuild() *Schedule {
	s := b.Build()
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}
