package goal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// arenaFixture builds a small schedule exercising every op attribute and
// both dependency kinds.
func arenaFixture() *Schedule {
	b := NewBuilder(3)
	r0 := b.Rank(0)
	c := r0.Calc(100)
	cc := r0.CalcOn(250, 2)
	s1 := r0.Send(64, 1, 0)
	s2 := r0.SendOn(300000, 2, 42, 1)
	r0.Requires(s2, c, s1)
	r0.IRequires(s2, cc)
	r1 := b.Rank(1)
	r1.Recv(64, 0, 0)
	r2 := b.Rank(2)
	rv := r2.RecvOn(300000, 0, 42, 3)
	w := r2.Calc(7)
	r2.Requires(w, rv)
	return b.MustBuild()
}

func TestPackDepsSharesOneArena(t *testing.T) {
	in := [][]int32{nil, {0}, nil, {1, 2}, {0, 1, 3}}
	out := packDeps(in)
	if !reflect.DeepEqual(out, [][]int32{nil, {0}, nil, {1, 2}, {0, 1, 3}}) {
		t.Fatalf("packDeps changed values: %v", out)
	}
	// Views are capped: appending to one must not overwrite its neighbor.
	grown := append(out[1], 99)
	_ = grown
	if out[3][0] != 1 {
		t.Fatalf("append through view corrupted neighbor: %v", out[3])
	}
	// Mutating the input after packing must not affect the copy.
	in[3][0] = 77
	if out[3][0] != 1 {
		t.Fatal("packDeps aliased its input")
	}
}

func TestPackDepsEmpty(t *testing.T) {
	if out := packDeps(nil); out == nil || len(out) != 0 {
		t.Fatalf("packDeps(nil) = %#v, want empty non-nil", out)
	}
	out := packDeps([][]int32{nil, {}})
	if len(out) != 2 || out[0] != nil || out[1] != nil {
		t.Fatalf("empty lists must pack to nil views, got %#v", out)
	}
}

func TestDepArenaViews(t *testing.T) {
	var a depArena
	a.reserve(3, 4)
	a.push(1)
	a.push(2)
	a.endList()
	a.endList() // empty list
	a.push(3)
	a.endList()
	got := a.views()
	want := [][]int32{{1, 2}, nil, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("views = %v, want %v", got, want)
	}
}

func TestParseBinaryMatchesReadBinary(t *testing.T) {
	s := arenaFixture()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	fromReader, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromBytes, err := ParseBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromReader, fromBytes) {
		t.Fatalf("decoders disagree:\nReadBinary:  %+v\nParseBinary: %+v", fromReader, fromBytes)
	}
	if !reflect.DeepEqual(fromBytes.Ranks, s.Ranks) {
		t.Fatalf("ParseBinary round trip changed the schedule:\nin:  %+v\nout: %+v", s.Ranks, fromBytes.Ranks)
	}
}

func TestParseBinaryErrors(t *testing.T) {
	s := arenaFixture()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"text", []byte("num_ranks 1\n"), "bad magic"},
		{"magic only", []byte("GOALB1\n"), "rank count"},
		{"zero ranks", append([]byte("GOALB1\n"), 0), "implausible rank count"},
		{"hostile rank count", append([]byte("GOALB1\n"), 0xe8, 0x07), "exceeds remaining input"}, // 1000 ranks, 0 bytes left
		{"hostile op count", append([]byte("GOALB1\n"), 1, 0xff, 0xff, 0x7f), "exceeds remaining input"},
		{"truncated", enc[:len(enc)-3], ""}, // any error is fine, must not panic
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBinary(tc.data)
			if err == nil {
				t.Fatal("ParseBinary accepted corrupt input")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBuildAllocsPerRank pins the arena layout: Build must cost a
// constant number of allocations per rank regardless of op count.
func TestBuildAllocsPerRank(t *testing.T) {
	b := NewBuilder(1)
	rb := b.Rank(0)
	prev := rb.Calc(1)
	for i := 0; i < 999; i++ {
		cur := rb.Calc(1)
		rb.Requires(cur, prev)
		prev = cur
	}
	allocs := testing.AllocsPerRun(10, func() {
		_ = b.Build()
	})
	// Schedule + Ranks + Ops + 2 dep tables + 1 arena (IRequires is all
	// empty, no arena) ≈ 6; leave headroom but stay far below the ~1000
	// a per-op copy would cost.
	if allocs > 12 {
		t.Fatalf("Build allocated %.0f times for a 1000-op rank; arena layout should need ~6", allocs)
	}
}
