package goal

// Dependency arenas. A schedule's dependency tables keep their public
// [][]int32 shape (one list per op), but the inner lists are views into a
// single shared []int32 backing array per table — one allocation instead
// of one per op. On multi-million-op schedules this collapses millions of
// tiny GC-tracked objects into a handful, which is the difference between
// the collector dominating a run and not showing up in the profile at
// all. Empty lists stay nil so arena-backed tables are
// reflect.DeepEqual-compatible with tables built list-by-list.

// packDeps copies a per-op dependency table into views over one shared
// arena. The result aliases none of the input.
func packDeps(deps [][]int32) [][]int32 {
	if len(deps) == 0 {
		return make([][]int32, 0)
	}
	total := 0
	for _, d := range deps {
		total += len(d)
	}
	out := make([][]int32, len(deps))
	if total == 0 {
		return out
	}
	arena := make([]int32, 0, total)
	for i, d := range deps {
		if len(d) == 0 {
			continue
		}
		start := len(arena)
		arena = append(arena, d...)
		// Full slice expressions cap each view at its own length so a
		// caller's append cannot bleed into the next op's list.
		out[i] = arena[start:len(arena):len(arena)]
	}
	return out
}

// depArena accumulates dependency lists in decode order when per-op
// counts are not known up front (the streaming decoders). Values append
// to one growing buffer; endList marks list boundaries; views slices the
// final buffer into the public [][]int32 shape.
type depArena struct {
	buf  []int32
	ends []int
}

// reserve pre-sizes the arena for nops lists of about total values. Both
// are hints; the arena grows past them transparently.
func (a *depArena) reserve(nops, total int) {
	if cap(a.ends) < nops {
		a.ends = make([]int, 0, nops)
	}
	if cap(a.buf) < total {
		a.buf = make([]int32, 0, total)
	}
}

// push appends one value to the list currently being built.
func (a *depArena) push(v int32) { a.buf = append(a.buf, v) }

// endList closes the current list (possibly empty) and starts the next.
func (a *depArena) endList() { a.ends = append(a.ends, len(a.buf)) }

// views returns the per-op lists as capped views into the shared buffer,
// nil for empty lists. The arena must not be reused afterwards.
func (a *depArena) views() [][]int32 {
	out := make([][]int32, len(a.ends))
	start := 0
	for i, end := range a.ends {
		if end > start {
			out[i] = a.buf[start:end:end]
		}
		start = end
	}
	return out
}
