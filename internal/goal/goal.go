// Package goal implements the Group Operation Assembly Language (GOAL),
// the intermediate trace format at the heart of the ATLAHS toolchain
// (Hoefler, Siebert, Lumsdaine, ICPP'09; paper §2.1).
//
// A GOAL schedule describes, for every rank, a directed acyclic graph of
// three task kinds:
//
//   - calc  — computation for a given number of nanoseconds
//   - send  — transmit N bytes to a peer rank with a tag
//   - recv  — receive N bytes from a peer rank with a tag
//
// Edges express dependencies: "a requires b" delays the start of a until b
// has completed; "a irequires b" delays the start of a until b has started.
// Every task is assigned to a compute stream (the "cpu" tag, stream 0 by
// default); tasks on the same stream execute sequentially even when their
// dependencies would allow overlap, which is how GOAL models per-stream
// GPU/CPU serialisation.
//
// The package provides the in-memory graph, a builder API used by all the
// trace converters and workload generators, a parser and printer for the
// textual format (paper Fig 3), and a compact binary codec used for
// storage-efficiency comparisons against Chakra (paper Fig 9).
package goal

import (
	"fmt"

	"atlahs/internal/simtime"
)

// Kind identifies the task type of an Op.
type Kind uint8

// Task kinds.
const (
	KindCalc Kind = iota
	KindSend
	KindRecv
)

func (k Kind) String() string {
	switch k {
	case KindCalc:
		return "calc"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// AnyTag is a wildcard recv tag matching any message tag from the source.
const AnyTag int32 = -1

// Op is one GOAL task. For sends and receives Size is a byte count and
// Peer/Tag identify the matching endpoint; for calcs Size is a duration in
// nanoseconds and Peer/Tag are unused.
type Op struct {
	Kind Kind
	CPU  int32 // compute stream; 0 is the default stream
	Peer int32 // destination (send) or source (recv); -1 for calc
	Tag  int32
	Size int64 // bytes (send/recv) or nanoseconds (calc)
}

// CalcDuration returns the simulated duration of a calc op after applying
// the hardware-adaptation scale factor (paper §7). scale 1.0 means the op
// runs for exactly Size nanoseconds.
func (o Op) CalcDuration(scale float64) simtime.Duration {
	if scale == 1.0 {
		return simtime.FromNanos(o.Size)
	}
	return simtime.FromNanosF(float64(o.Size) * scale)
}

// RankProgram is the task DAG of a single rank. Dependency lists hold
// indices into Ops; all dependencies are rank-local (cross-rank ordering
// emerges from send/recv matching during simulation).
type RankProgram struct {
	Ops       []Op
	Requires  [][]int32 // Requires[i]: ops that must complete before op i starts
	IRequires [][]int32 // IRequires[i]: ops that must have started before op i starts
}

// NumOps returns the number of tasks in the rank program.
func (rp *RankProgram) NumOps() int { return len(rp.Ops) }

// Schedule is a complete GOAL schedule for NRanks ranks.
type Schedule struct {
	Comment string
	Ranks   []RankProgram
}

// NumRanks returns the number of ranks in the schedule.
func (s *Schedule) NumRanks() int { return len(s.Ranks) }

// Stats summarises a schedule: totals used in experiment reports and for
// Table 1 style size accounting.
type Stats struct {
	Ranks      int
	Ops        int64
	Sends      int64
	Recvs      int64
	Calcs      int64
	SendBytes  int64
	CalcNanos  int64
	DepEdges   int64
	MaxStreams int
}

// ComputeStats walks the schedule and tallies Stats.
func (s *Schedule) ComputeStats() Stats {
	st := Stats{Ranks: s.NumRanks()}
	for r := range s.Ranks {
		rp := &s.Ranks[r]
		streams := map[int32]struct{}{}
		for i := range rp.Ops {
			op := &rp.Ops[i]
			st.Ops++
			streams[op.CPU] = struct{}{}
			switch op.Kind {
			case KindSend:
				st.Sends++
				st.SendBytes += op.Size
			case KindRecv:
				st.Recvs++
			case KindCalc:
				st.Calcs++
				st.CalcNanos += op.Size
			}
		}
		for i := range rp.Requires {
			st.DepEdges += int64(len(rp.Requires[i]))
		}
		for i := range rp.IRequires {
			st.DepEdges += int64(len(rp.IRequires[i]))
		}
		if len(streams) > st.MaxStreams {
			st.MaxStreams = len(streams)
		}
	}
	return st
}

// Validate checks structural invariants: peer ranks in range, non-negative
// sizes, dependency indices in range, and per-rank acyclicity (Kahn's
// algorithm over requires+irequires edges). It returns the first violation
// found.
func (s *Schedule) Validate() error {
	n := int32(s.NumRanks())
	for r := range s.Ranks {
		rp := &s.Ranks[r]
		nops := int32(len(rp.Ops))
		if len(rp.Requires) != int(nops) || len(rp.IRequires) != int(nops) {
			return fmt.Errorf("goal: rank %d: dependency table length mismatch (%d ops, %d requires, %d irequires)",
				r, nops, len(rp.Requires), len(rp.IRequires))
		}
		for i := range rp.Ops {
			op := &rp.Ops[i]
			if op.Size < 0 {
				return fmt.Errorf("goal: rank %d op %d: negative size %d", r, i, op.Size)
			}
			switch op.Kind {
			case KindSend, KindRecv:
				if op.Peer < 0 || op.Peer >= n {
					return fmt.Errorf("goal: rank %d op %d: peer %d out of range [0,%d)", r, i, op.Peer, n)
				}
				if int(op.Peer) == r {
					return fmt.Errorf("goal: rank %d op %d: self-%s not allowed", r, i, op.Kind)
				}
			case KindCalc:
			default:
				return fmt.Errorf("goal: rank %d op %d: unknown kind %d", r, i, op.Kind)
			}
			for _, d := range rp.Requires[i] {
				if d < 0 || d >= nops {
					return fmt.Errorf("goal: rank %d op %d: requires index %d out of range", r, i, d)
				}
			}
			for _, d := range rp.IRequires[i] {
				if d < 0 || d >= nops {
					return fmt.Errorf("goal: rank %d op %d: irequires index %d out of range", r, i, d)
				}
			}
		}
		if err := checkAcyclic(rp); err != nil {
			return fmt.Errorf("goal: rank %d: %w", r, err)
		}
	}
	return nil
}

func checkAcyclic(rp *RankProgram) error {
	n := len(rp.Ops)
	// Successor adjacency from both edge kinds in CSR form — count,
	// prefix-sum, fill — so validating a rank costs a fixed handful of
	// allocations instead of one slice grow per op with successors.
	total := 0
	indeg := make([]int32, n)
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		for _, d := range rp.Requires[i] {
			off[d+1]++
			indeg[i]++
		}
		for _, d := range rp.IRequires[i] {
			off[d+1]++
			indeg[i]++
		}
		total += len(rp.Requires[i]) + len(rp.IRequires[i])
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	succ := make([]int32, total)
	cur := append([]int32(nil), off[:n]...)
	for i := 0; i < n; i++ {
		for _, d := range rp.Requires[i] {
			succ[cur[d]] = int32(i)
			cur[d]++
		}
		for _, d := range rp.IRequires[i] {
			succ[cur[d]] = int32(i)
			cur[d]++
		}
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range succ[off[v]:off[v+1]] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("dependency cycle among %d ops", n-seen)
	}
	return nil
}

// CheckMatched verifies that every send has a compatible recv and vice
// versa: for each (src, dst, tag) the number and total bytes of sends equal
// those of recvs (wildcard-tag receives are counted per (src,dst) pair).
// This is a debugging aid for generators; simulation does its own dynamic
// matching.
func (s *Schedule) CheckMatched() error {
	type key struct {
		src, dst, tag int32
	}
	sends := map[key]int64{}
	recvs := map[key]int64{}
	wildcards := map[[2]int32]int64{}
	for r := range s.Ranks {
		rp := &s.Ranks[r]
		for i := range rp.Ops {
			op := &rp.Ops[i]
			switch op.Kind {
			case KindSend:
				sends[key{int32(r), op.Peer, op.Tag}]++
			case KindRecv:
				if op.Tag == AnyTag {
					wildcards[[2]int32{op.Peer, int32(r)}]++
				} else {
					recvs[key{op.Peer, int32(r), op.Tag}]++
				}
			}
		}
	}
	for k, ns := range sends {
		nr := recvs[k]
		if nr < ns {
			// try wildcard absorption
			w := wildcards[[2]int32{k.src, k.dst}]
			need := ns - nr
			if w >= need {
				wildcards[[2]int32{k.src, k.dst}] = w - need
				continue
			}
			return fmt.Errorf("goal: %d unmatched send(s) %d->%d tag %d", ns-nr-w, k.src, k.dst, k.tag)
		}
		if nr > ns {
			return fmt.Errorf("goal: %d unmatched recv(s) %d->%d tag %d", nr-ns, k.src, k.dst, k.tag)
		}
	}
	for k, nr := range recvs {
		if sends[k] == 0 && nr > 0 {
			return fmt.Errorf("goal: %d recv(s) with no send %d->%d tag %d", nr, k.src, k.dst, k.tag)
		}
	}
	return nil
}
