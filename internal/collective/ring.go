package collective

import "atlahs/internal/goal"

// channelOrder returns the ring order for a channel: NCCL alternates ring
// direction across channels to spread load over both directions of every
// link, so odd channels traverse the ring reversed.
func channelOrder(ranks []int, c int) ([]int, []int) {
	n := len(ranks)
	order := ranks
	if c%2 == 1 {
		order = make([]int, n)
		for i, r := range ranks {
			order[n-1-i] = r
		}
	}
	// origPos[i] = position of order[i] in ranks
	origPos := make([]int, n)
	if c%2 == 1 {
		for i := range order {
			origPos[i] = n - 1 - i
		}
	} else {
		for i := range order {
			origPos[i] = i
		}
	}
	return order, origPos
}

// ringAllreduce is the bandwidth-optimal reduce-scatter + allgather ring:
// each rank sends 2(N-1)/N of the payload per channel. The payload is
// split across channels (parallel rings), and within a channel into N
// blocks rotated around the ring for 2(N-1) steps. Reducing receives may
// charge a local reduction calc.
func ringAllreduce(b *goal.Builder, ranks []int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	ch := opt.channels()
	chanBytes := splitAcross(bytes, ch)
	exits := make([][]goal.OpID, n)
	for c := 0; c < ch; c++ {
		tag := opt.TagBase + int32(c)
		cpu := opt.cpuFor(c)
		order, origPos := channelOrder(ranks, c)
		block := splitAcross(chanBytes[c], n) // per-step block sizes
		// prevRecv[i]: the recv op of order position i from the previous step
		prevRecv := make([]goal.OpID, n)
		for i := range prevRecv {
			prevRecv[i] = entryOf(entry, origPos[i])
		}
		for step := 0; step < 2*(n-1); step++ {
			reducing := step < n-1
			newRecv := make([]goal.OpID, n)
			for i := 0; i < n; i++ {
				rb := b.Rank(order[i])
				next := order[(i+1)%n]
				prev := order[(i+n-1)%n]
				// block index flowing out of position i at this step
				outBlock := block[(i-step%n+2*n)%n]
				inBlock := block[(i-1-step%n+2*n)%n]
				s := rb.SendOn(WireBytes(opt.Protocol, outBlock), next, tag, cpu)
				requireEntry(rb, s, prevRecv[i])
				r := rb.RecvOn(WireBytes(opt.Protocol, inBlock), prev, tag, cpu)
				requireEntry(rb, r, entryOf(entry, origPos[i]))
				last := r
				if reducing && opt.ReduceNsPerByte > 0 && inBlock > 0 {
					calc := rb.CalcOn(int64(opt.ReduceNsPerByte*float64(inBlock)), cpu)
					rb.Requires(calc, r)
					last = calc
				}
				newRecv[i] = last
			}
			prevRecv = newRecv
		}
		for i := 0; i < n; i++ {
			exits[origPos[i]] = append(exits[origPos[i]], prevRecv[i])
		}
	}
	out := make([]goal.OpID, n)
	for i := 0; i < n; i++ {
		out[i] = exitOf(b.Rank(ranks[i]), opt, exits[i]...)
	}
	return out
}

// ringBcast pipelines the payload along the ring in buffer-limited chunks
// (paper Fig 4): the root pushes chunks to its successor; every
// intermediate rank forwards each chunk as soon as it arrives; the last
// rank only receives.
func ringBcast(b *goal.Builder, ranks []int, root int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	ch := opt.channels()
	chanBytes := splitAcross(bytes, ch)
	exits := make([][]goal.OpID, n)
	for c := 0; c < ch; c++ {
		tag := opt.TagBase + int32(c)
		cpu := opt.cpuFor(c)
		chunks := chunksOf(chanBytes[c], opt.chunk())
		// ring order starting at root: position p is ranks[(root+p)%n]
		var prevSend goal.OpID = -1
		lastRecvAt := make([]goal.OpID, n) // per position, last chunk recv
		lastSendAt := make([]goal.OpID, n)
		for i := range lastRecvAt {
			lastRecvAt[i] = -1
			lastSendAt[i] = -1
		}
		for _, chunk := range chunks {
			w := WireBytes(opt.Protocol, chunk)
			// root sends chunk to its successor (sequential on the stream,
			// Fig 4's "transmitted sequentially")
			rootRank := ranks[root]
			rb := b.Rank(rootRank)
			s := rb.SendOn(w, ranks[(root+1)%n], tag, cpu)
			requireEntry(rb, s, entryOf(entry, root))
			if prevSend >= 0 {
				rb.Requires(s, prevSend)
			}
			prevSend = s
			lastSendAt[root] = s
			// forwarders
			for p := 1; p < n; p++ {
				pos := (root + p) % n
				rb := b.Rank(ranks[pos])
				prevPos := (root + p - 1) % n
				r := rb.RecvOn(w, ranks[prevPos], tag, cpu)
				requireEntry(rb, r, entryOf(entry, pos))
				if lastRecvAt[pos] >= 0 {
					rb.Requires(r, lastRecvAt[pos])
				}
				lastRecvAt[pos] = r
				if p < n-1 {
					f := rb.SendOn(w, ranks[(pos+1)%n], tag, cpu)
					rb.Requires(f, r)
					if lastSendAt[pos] >= 0 {
						rb.Requires(f, lastSendAt[pos])
					}
					lastSendAt[pos] = f
				}
			}
		}
		for i := 0; i < n; i++ {
			if i == root {
				exits[i] = append(exits[i], lastSendAt[i])
			} else {
				term := lastRecvAt[i]
				if lastSendAt[i] >= 0 {
					term = exitOf(b.Rank(ranks[i]), opt, lastRecvAt[i], lastSendAt[i])
				}
				exits[i] = append(exits[i], term)
			}
		}
	}
	out := make([]goal.OpID, n)
	for i := 0; i < n; i++ {
		out[i] = exitOf(b.Rank(ranks[i]), opt, exits[i]...)
	}
	return out
}

// ringAllgather rotates every rank's block around the ring in N-1 steps.
func ringAllgather(b *goal.Builder, ranks []int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	ch := opt.channels()
	chanBytes := splitAcross(bytes, ch)
	exits := make([][]goal.OpID, n)
	for c := 0; c < ch; c++ {
		tag := opt.TagBase + int32(c)
		cpu := opt.cpuFor(c)
		w := WireBytes(opt.Protocol, chanBytes[c])
		prevRecv := make([]goal.OpID, n)
		for i := range prevRecv {
			prevRecv[i] = entryOf(entry, i)
		}
		for step := 0; step < n-1; step++ {
			newRecv := make([]goal.OpID, n)
			for i := 0; i < n; i++ {
				rb := b.Rank(ranks[i])
				s := rb.SendOn(w, ranks[(i+1)%n], tag, cpu)
				requireEntry(rb, s, prevRecv[i])
				r := rb.RecvOn(w, ranks[(i+n-1)%n], tag, cpu)
				requireEntry(rb, r, entryOf(entry, i))
				newRecv[i] = r
			}
			prevRecv = newRecv
		}
		for i := 0; i < n; i++ {
			exits[i] = append(exits[i], prevRecv[i])
		}
	}
	out := make([]goal.OpID, n)
	for i := 0; i < n; i++ {
		out[i] = exitOf(b.Rank(ranks[i]), opt, exits[i]...)
	}
	return out
}

// ringReduceScatter is the reducing half of the ring allreduce: N-1 steps,
// each moving one block and reducing on arrival.
func ringReduceScatter(b *goal.Builder, ranks []int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	ch := opt.channels()
	chanBytes := splitAcross(bytes, ch)
	exits := make([][]goal.OpID, n)
	for c := 0; c < ch; c++ {
		tag := opt.TagBase + int32(c)
		cpu := opt.cpuFor(c)
		block := splitAcross(chanBytes[c], n)
		prevRecv := make([]goal.OpID, n)
		for i := range prevRecv {
			prevRecv[i] = entryOf(entry, i)
		}
		for step := 0; step < n-1; step++ {
			newRecv := make([]goal.OpID, n)
			for i := 0; i < n; i++ {
				rb := b.Rank(ranks[i])
				outBlock := block[(i-step%n+2*n)%n]
				inBlock := block[(i-1-step%n+2*n)%n]
				s := rb.SendOn(WireBytes(opt.Protocol, outBlock), ranks[(i+1)%n], tag, cpu)
				requireEntry(rb, s, prevRecv[i])
				r := rb.RecvOn(WireBytes(opt.Protocol, inBlock), ranks[(i+n-1)%n], tag, cpu)
				requireEntry(rb, r, entryOf(entry, i))
				last := r
				if opt.ReduceNsPerByte > 0 && inBlock > 0 {
					calc := rb.CalcOn(int64(opt.ReduceNsPerByte*float64(inBlock)), cpu)
					rb.Requires(calc, r)
					last = calc
				}
				newRecv[i] = last
			}
			prevRecv = newRecv
		}
		for i := 0; i < n; i++ {
			exits[i] = append(exits[i], prevRecv[i])
		}
	}
	out := make([]goal.OpID, n)
	for i := 0; i < n; i++ {
		out[i] = exitOf(b.Rank(ranks[i]), opt, exits[i]...)
	}
	return out
}
