package collective

import "atlahs/internal/goal"

// recDoublingAllreduce exchanges the full vector with a partner at
// distance 2^k each round — latency-optimal for small payloads. For
// non-powers of two the standard fold is used: the first `rem` odd ranks
// fold into their even neighbour before the doubling phase and get the
// result back afterwards.
func recDoublingAllreduce(b *goal.Builder, ranks []int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	w := WireBytes(opt.Protocol, bytes)
	tag := opt.TagBase
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	rem := n - p2

	last := make([]goal.OpID, n)
	for i := range last {
		last[i] = entryOf(entry, i)
	}
	reduceCalc := func(pos int, after goal.OpID) goal.OpID {
		if opt.ReduceNsPerByte <= 0 || bytes == 0 {
			return after
		}
		rb := b.Rank(ranks[pos])
		c := rb.CalcOn(int64(opt.ReduceNsPerByte*float64(bytes)), opt.CPU)
		rb.Requires(c, after)
		return c
	}

	// fold phase: positions 2i+1 (i < rem) send to 2i
	for i := 0; i < rem; i++ {
		odd, even := 2*i+1, 2*i
		sb := b.Rank(ranks[odd])
		s := sb.SendOn(w, ranks[even], tag, opt.CPU)
		requireEntry(sb, s, last[odd])
		last[odd] = s
		rb := b.Rank(ranks[even])
		r := rb.RecvOn(w, ranks[odd], tag, opt.CPU)
		requireEntry(rb, r, last[even])
		last[even] = reduceCalc(even, r)
	}

	// active set: evens of the folded pairs + the tail
	active := make([]int, 0, p2)
	for i := 0; i < rem; i++ {
		active = append(active, 2*i)
	}
	for p := 2 * rem; p < n; p++ {
		active = append(active, p)
	}

	// doubling phase among active positions
	for k := 1; k < p2; k <<= 1 {
		newLast := make([]goal.OpID, len(active))
		for ai, pos := range active {
			partner := active[ai^k]
			rb := b.Rank(ranks[pos])
			s := rb.SendOn(w, ranks[partner], tag+1, opt.CPU)
			requireEntry(rb, s, last[pos])
			r := rb.RecvOn(w, ranks[partner], tag+1, opt.CPU)
			requireEntry(rb, r, last[pos])
			newLast[ai] = reduceCalc(pos, exitOf(rb, opt, s, r))
		}
		for ai, pos := range active {
			last[pos] = newLast[ai]
		}
	}

	// unfold: evens return the result to their odd partner
	for i := 0; i < rem; i++ {
		odd, even := 2*i+1, 2*i
		sb := b.Rank(ranks[even])
		s := sb.SendOn(w, ranks[odd], tag+2, opt.CPU)
		requireEntry(sb, s, last[even])
		last[even] = s
		rb := b.Rank(ranks[odd])
		r := rb.RecvOn(w, ranks[even], tag+2, opt.CPU)
		requireEntry(rb, r, last[odd])
		last[odd] = r
	}
	return last
}

// pairwiseAlltoall: N-1 rounds; in round s, position i exchanges its
// per-peer block with positions i+s and i-s. Rounds are chained per rank
// to bound concurrent buffer usage (the conventional MPI implementation).
func pairwiseAlltoall(b *goal.Builder, ranks []int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	w := WireBytes(opt.Protocol, bytes)
	last := make([]goal.OpID, n)
	for i := range last {
		last[i] = entryOf(entry, i)
	}
	for s := 1; s < n; s++ {
		tag := opt.TagBase + int32(s%TagSpan)
		for i := 0; i < n; i++ {
			rb := b.Rank(ranks[i])
			to := ranks[(i+s)%n]
			from := ranks[(i-s+n)%n]
			snd := rb.SendOn(w, to, tag, opt.CPU)
			requireEntry(rb, snd, last[i])
			rcv := rb.RecvOn(w, from, tag, opt.CPU)
			requireEntry(rb, rcv, last[i])
			last[i] = exitOf(rb, opt, snd, rcv)
		}
	}
	return last
}

// disseminationBarrier: ceil(log2 N) rounds of 1-byte tokens to the
// +2^k neighbour; after the last round every rank knows all arrived.
func disseminationBarrier(b *goal.Builder, ranks []int, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	last := make([]goal.OpID, n)
	for i := range last {
		last[i] = entryOf(entry, i)
	}
	round := 0
	for k := 1; k < n; k <<= 1 {
		tag := opt.TagBase + int32(round%TagSpan)
		round++
		newLast := make([]goal.OpID, n)
		for i := 0; i < n; i++ {
			rb := b.Rank(ranks[i])
			snd := rb.SendOn(1, ranks[(i+k)%n], tag, opt.CPU)
			requireEntry(rb, snd, last[i])
			rcv := rb.RecvOn(1, ranks[(i-k+n)%n], tag, opt.CPU)
			requireEntry(rb, rcv, last[i])
			newLast[i] = exitOf(rb, opt, snd, rcv)
		}
		last = newLast
	}
	return last
}

// linearGather: every non-root sends its block to the root.
func linearGather(b *goal.Builder, ranks []int, root int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	w := WireBytes(opt.Protocol, bytes)
	tag := opt.TagBase
	out := make([]goal.OpID, n)
	rootRB := b.Rank(ranks[root])
	var rootLast goal.OpID = -1
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		rb := b.Rank(ranks[i])
		s := rb.SendOn(w, ranks[root], tag, opt.CPU)
		requireEntry(rb, s, entryOf(entry, i))
		out[i] = s
		r := rootRB.RecvOn(w, ranks[i], tag, opt.CPU)
		requireEntry(rootRB, r, entryOf(entry, root))
		if rootLast >= 0 {
			rootRB.Requires(r, rootLast)
		}
		rootLast = r
	}
	if rootLast < 0 {
		rootLast = rootRB.CalcOn(0, opt.CPU)
	}
	out[root] = rootLast
	return out
}

// linearScatter: the root sends each rank its block.
func linearScatter(b *goal.Builder, ranks []int, root int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	w := WireBytes(opt.Protocol, bytes)
	tag := opt.TagBase
	out := make([]goal.OpID, n)
	rootRB := b.Rank(ranks[root])
	var rootLast goal.OpID = -1
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		s := rootRB.SendOn(w, ranks[i], tag, opt.CPU)
		requireEntry(rootRB, s, entryOf(entry, root))
		if rootLast >= 0 {
			rootRB.Requires(s, rootLast)
		}
		rootLast = s
		rb := b.Rank(ranks[i])
		r := rb.RecvOn(w, ranks[root], tag, opt.CPU)
		requireEntry(rb, r, entryOf(entry, i))
		out[i] = r
	}
	if rootLast < 0 {
		rootLast = rootRB.CalcOn(0, opt.CPU)
	}
	out[root] = rootLast
	return out
}
