package collective

import "atlahs/internal/goal"

// binomialBcast: in round k the first 2^k ranks (root-relative) send to
// their +2^k partner; log2(N) rounds total.
func binomialBcast(b *goal.Builder, ranks []int, root int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	w := WireBytes(opt.Protocol, bytes)
	tag := opt.TagBase
	// rel position p corresponds to ranks[(root+p)%n]
	rankAt := func(p int) int { return ranks[(root+p)%n] }
	posAt := func(p int) int { return (root + p) % n }
	last := make([]goal.OpID, n) // last op per relative position
	for i := range last {
		last[i] = -1
	}
	for k := 1; k < n; k <<= 1 {
		for p := 0; p < n; p++ {
			if p < k && p+k < n {
				// sender
				sb := b.Rank(rankAt(p))
				s := sb.SendOn(w, rankAt(p+k), tag, opt.CPU)
				requireEntry(sb, s, entryOf(entry, posAt(p)))
				if last[p] >= 0 {
					sb.Requires(s, last[p])
				}
				last[p] = s
				// receiver
				rb := b.Rank(rankAt(p + k))
				r := rb.RecvOn(w, rankAt(p), tag, opt.CPU)
				requireEntry(rb, r, entryOf(entry, posAt(p+k)))
				last[p+k] = r
			}
		}
	}
	out := make([]goal.OpID, n)
	for p := 0; p < n; p++ {
		id := last[p]
		if id < 0 {
			// only possible for n == 1, handled by the caller; keep safe
			rb := b.Rank(rankAt(p))
			id = rb.CalcOn(0, opt.CPU)
		}
		out[posAt(p)] = id
	}
	return out
}

// binomialReduce mirrors binomialBcast with reversed data flow: leaves
// send first, the root receives last. A reducing calc may follow each recv.
func binomialReduce(b *goal.Builder, ranks []int, root int, bytes int64, opt Options, entry []goal.OpID) []goal.OpID {
	n := len(ranks)
	w := WireBytes(opt.Protocol, bytes)
	tag := opt.TagBase
	rankAt := func(p int) int { return ranks[(root+p)%n] }
	posAt := func(p int) int { return (root + p) % n }
	last := make([]goal.OpID, n)
	for i := range last {
		last[i] = -1
	}
	// largest power of two < 2n
	start := 1
	for start < n {
		start <<= 1
	}
	for k := start; k >= 1; k >>= 1 {
		for p := 0; p < n; p++ {
			if p < k && p+k < n {
				// p+k sends its (partial) result to p
				sb := b.Rank(rankAt(p + k))
				s := sb.SendOn(w, rankAt(p), tag, opt.CPU)
				requireEntry(sb, s, entryOf(entry, posAt(p+k)))
				if last[p+k] >= 0 {
					sb.Requires(s, last[p+k])
				}
				last[p+k] = s
				rb := b.Rank(rankAt(p))
				r := rb.RecvOn(w, rankAt(p+k), tag, opt.CPU)
				requireEntry(rb, r, entryOf(entry, posAt(p)))
				if last[p] >= 0 {
					rb.Requires(r, last[p])
				}
				lastOp := r
				if opt.ReduceNsPerByte > 0 && bytes > 0 {
					calc := rb.CalcOn(int64(opt.ReduceNsPerByte*float64(bytes)), opt.CPU)
					rb.Requires(calc, r)
					lastOp = calc
				}
				last[p] = lastOp
			}
		}
	}
	out := make([]goal.OpID, n)
	for p := 0; p < n; p++ {
		id := last[p]
		if id < 0 {
			rb := b.Rank(rankAt(p))
			id = rb.CalcOn(0, opt.CPU)
		}
		out[posAt(p)] = id
	}
	return out
}
