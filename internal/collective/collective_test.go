package collective

import (
	"testing"
	"testing/quick"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
	"atlahs/internal/simtime"
	"atlahs/internal/xrand"
)

func group(n int) []int {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// buildAndRun decomposes one collective over n ranks, verifies the GOAL
// invariants, and simulates it on the LGS backend.
func buildAndRun(t *testing.T, kind Kind, algo Algo, n int, bytes int64, opt Options) *sched.Result {
	t.Helper()
	b := goal.NewBuilder(n)
	_, err := Decompose(b, kind, algo, group(n), 0, bytes, opt, nil)
	if err != nil {
		t.Fatalf("%v/%v: %v", kind, algo, err)
	}
	s := b.MustBuild()
	if err := s.CheckMatched(); err != nil {
		t.Fatalf("%v/%v: %v", kind, algo, err)
	}
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatalf("%v/%v: %v", kind, algo, err)
	}
	return res
}

func TestAllKindsAllAlgos(t *testing.T) {
	cases := []struct {
		kind Kind
		algo Algo
	}{
		{Allreduce, Ring}, {Allreduce, RecDoubling},
		{Bcast, Ring}, {Bcast, Binomial},
		{Allgather, Ring}, {ReduceScatter, Ring},
		{Alltoall, Pairwise}, {Barrier, Auto},
		{Reduce, Binomial}, {Gather, Auto}, {Scatter, Auto},
	}
	for _, c := range cases {
		for _, n := range []int{2, 3, 4, 5, 8} {
			buildAndRun(t, c.kind, c.algo, n, 64*1024, Options{})
		}
	}
}

func TestSingleRankCollectiveIsNoop(t *testing.T) {
	b := goal.NewBuilder(1)
	exits, err := Decompose(b, Allreduce, Ring, []int{0}, 0, 1024, Options{}, nil)
	if err != nil || len(exits) != 1 {
		t.Fatalf("exits=%v err=%v", exits, err)
	}
	s := b.MustBuild()
	if st := s.ComputeStats(); st.Sends != 0 || st.Recvs != 0 {
		t.Fatalf("single-rank collective communicated: %+v", st)
	}
}

func TestDecomposeErrors(t *testing.T) {
	b := goal.NewBuilder(4)
	if _, err := Decompose(b, Allreduce, Ring, nil, 0, 10, Options{}, nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := Decompose(b, Allreduce, Ring, []int{0, 9}, 0, 10, Options{}, nil); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := Decompose(b, Allreduce, Ring, []int{0, 0}, 0, 10, Options{}, nil); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	if _, err := Decompose(b, Allreduce, Ring, []int{0, 1}, 0, -5, Options{}, nil); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := Decompose(b, Allreduce, Binomial, []int{0, 1}, 0, 10, Options{}, nil); err == nil {
		t.Fatal("unsupported kind/algo pair accepted")
	}
	if _, err := Decompose(b, Allreduce, Ring, []int{0, 1}, 0, 10, Options{}, []goal.OpID{1}); err == nil {
		t.Fatal("mismatched entry length accepted")
	}
}

func TestRingAllreduceByteVolume(t *testing.T) {
	// bandwidth-optimal ring: each rank sends 2*(N-1)/N of the payload
	const n, size = 8, 1 << 20
	b := goal.NewBuilder(n)
	if _, err := Decompose(b, Allreduce, Ring, group(n), 0, size, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	st := s.ComputeStats()
	wantPerRank := int64(2 * (n - 1) * size / n)
	got := st.SendBytes / int64(n)
	if got != wantPerRank {
		t.Fatalf("per-rank send bytes %d, want %d", got, wantPerRank)
	}
	// 2(N-1) sends and recvs per rank
	if st.Sends != int64(2*(n-1)*n) {
		t.Fatalf("sends=%d, want %d", st.Sends, 2*(n-1)*n)
	}
}

func TestRingBcastFig4(t *testing.T) {
	// Paper Fig 4: 2 MB broadcast over a 4-rank ring, 512 KB buffer =>
	// the root performs 4 sequential 512 KB sends.
	const n = 4
	const size = 2 << 20
	b := goal.NewBuilder(n)
	if _, err := Decompose(b, Bcast, Ring, group(n), 0, size, Options{ChunkBytes: 512 * 1024}, nil); err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	root := &s.Ranks[0]
	var sends int
	for i := range root.Ops {
		if root.Ops[i].Kind == goal.KindSend {
			sends++
			if root.Ops[i].Size != 512*1024 {
				t.Fatalf("root chunk %d bytes, want 512 KiB", root.Ops[i].Size)
			}
		}
	}
	if sends != 4 {
		t.Fatalf("root sends %d chunks, want 4", sends)
	}
	// last ring position only receives
	tail := &s.Ranks[n-1]
	for i := range tail.Ops {
		if tail.Ops[i].Kind == goal.KindSend {
			t.Fatal("last ring rank must not forward")
		}
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineBeatsStoreAndForward(t *testing.T) {
	// chunked ring bcast must be faster than one giant hop-by-hop message
	big := buildAndRun(t, Bcast, Ring, 8, 4<<20, Options{ChunkBytes: 4 << 20})
	chunked := buildAndRun(t, Bcast, Ring, 8, 4<<20, Options{ChunkBytes: 256 * 1024})
	if chunked.Runtime >= big.Runtime {
		t.Fatalf("pipelining no faster: %v vs %v", chunked.Runtime, big.Runtime)
	}
}

func TestLLProtocolDoublesWire(t *testing.T) {
	if WireBytes(Simple, 1000) != 1000 || WireBytes(LL, 1000) != 2000 {
		t.Fatal("WireBytes wrong")
	}
	b1 := goal.NewBuilder(4)
	Decompose(b1, Allreduce, Ring, group(4), 0, 1<<20, Options{Protocol: Simple}, nil)
	b2 := goal.NewBuilder(4)
	Decompose(b2, Allreduce, Ring, group(4), 0, 1<<20, Options{Protocol: LL}, nil)
	s1 := b1.MustBuild().ComputeStats().SendBytes
	s2 := b2.MustBuild().ComputeStats().SendBytes
	if s2 != 2*s1 {
		t.Fatalf("LL wire bytes %d, want 2x Simple %d", s2, s1)
	}
}

func TestChannelsSplitPayload(t *testing.T) {
	b1 := goal.NewBuilder(4)
	Decompose(b1, Allreduce, Ring, group(4), 0, 1<<20, Options{Channels: 1}, nil)
	b4 := goal.NewBuilder(4)
	Decompose(b4, Allreduce, Ring, group(4), 0, 1<<20, Options{Channels: 4}, nil)
	st1 := b1.MustBuild().ComputeStats()
	st4 := b4.MustBuild().ComputeStats()
	if st1.SendBytes != st4.SendBytes {
		t.Fatalf("channels changed total bytes: %d vs %d", st1.SendBytes, st4.SendBytes)
	}
	if st4.Sends != 4*st1.Sends {
		t.Fatalf("4 channels should quadruple message count: %d vs %d", st4.Sends, st1.Sends)
	}
	// more channels => more parallel injection => never slower on LGS
	r1 := buildAndRun(t, Allreduce, Ring, 4, 1<<20, Options{Channels: 1})
	r4 := buildAndRun(t, Allreduce, Ring, 4, 1<<20, Options{Channels: 4})
	if r4.Runtime > r1.Runtime*11/10 {
		t.Fatalf("4 channels much slower: %v vs %v", r4.Runtime, r1.Runtime)
	}
}

func TestRecDoublingNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12} {
		buildAndRun(t, Allreduce, RecDoubling, n, 32*1024, Options{})
	}
}

func TestBarrierLatencyFloor(t *testing.T) {
	// dissemination barrier over 8 ranks: 3 rounds, each at least L
	res := buildAndRun(t, Barrier, Auto, 8, 0, Options{})
	minT := 3 * 3700 * simtime.Nanosecond
	if res.Runtime < minT {
		t.Fatalf("barrier %v faster than 3 rounds of L (%v)", res.Runtime, minT)
	}
}

func TestReduceCalcInsertion(t *testing.T) {
	b := goal.NewBuilder(4)
	Decompose(b, Allreduce, Ring, group(4), 0, 1<<20, Options{ReduceNsPerByte: 0.01}, nil)
	s := b.MustBuild()
	st := s.ComputeStats()
	if st.Calcs == 0 {
		t.Fatal("no reduction calcs inserted")
	}
	if st.CalcNanos == 0 {
		t.Fatal("reduction calcs have zero cost")
	}
}

func TestEntryDependenciesRespected(t *testing.T) {
	// every rank computes 1ms before the allreduce; runtime must exceed 1ms
	b := goal.NewBuilder(4)
	entry := make([]goal.OpID, 4)
	for i := 0; i < 4; i++ {
		entry[i] = b.Rank(i).Calc(1_000_000) // 1 ms
	}
	if _, err := Decompose(b, Allreduce, Ring, group(4), 0, 1024, Options{}, entry); err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(engine.New(), b.MustBuild(), backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime < simtime.Millisecond {
		t.Fatalf("entry dependency ignored: %v", res.Runtime)
	}
}

func TestCollectiveChaining(t *testing.T) {
	// reduce-scatter followed by allgather == allreduce volume
	b := goal.NewBuilder(4)
	exits, err := Decompose(b, ReduceScatter, Ring, group(4), 0, 1<<20, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompose(b, Allgather, Ring, group(4), 0, (1<<20)/4, Options{TagBase: TagSpan}, exits); err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}

// Property: any kind/size/rank-count combination produces a valid, matched,
// runnable schedule.
func TestDecomposeProperty(t *testing.T) {
	kinds := []struct {
		kind Kind
		algo Algo
	}{
		{Allreduce, Ring}, {Allreduce, RecDoubling}, {Bcast, Ring},
		{Bcast, Binomial}, {Allgather, Ring}, {ReduceScatter, Ring},
		{Alltoall, Pairwise}, {Barrier, Auto}, {Reduce, Binomial},
		{Gather, Auto}, {Scatter, Auto},
	}
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := kinds[rng.Intn(len(kinds))]
		n := rng.Intn(9) + 2
		bytes := rng.Int63n(1 << 18)
		root := rng.Intn(n)
		opt := Options{
			Channels:   rng.Intn(3) + 1,
			ChunkBytes: rng.Int63n(1<<16) + 1024,
		}
		if rng.Bool(0.5) {
			opt.Protocol = LL
		}
		b := goal.NewBuilder(n)
		if _, err := Decompose(b, c.kind, c.algo, group(n), root, bytes, opt, nil); err != nil {
			return false
		}
		s := b.Build()
		if s.Validate() != nil || s.CheckMatched() != nil {
			return false
		}
		_, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKindAlgoStrings(t *testing.T) {
	if Allreduce.String() != "allreduce" || Ring.String() != "ring" || LLChunk >= SimpleChunk {
		t.Fatal("metadata broken")
	}
}

func BenchmarkRingAllreduceDecompose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := goal.NewBuilder(64)
		if _, err := Decompose(bld, Allreduce, Ring, group(64), 0, 1<<20, Options{Channels: 2}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
