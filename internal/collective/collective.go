// Package collective decomposes collective operations into GOAL
// point-to-point schedules — stage 3 of the paper's AI pipeline (Fig 5)
// and Schedgen's collective substitution for MPI traces (§3.1.1).
//
// Supported algorithms: ring (allreduce, bcast, allgather, reduce-scatter),
// recursive doubling (allreduce), binomial tree (bcast, reduce), pairwise
// exchange (alltoall), dissemination (barrier), and linear (gather,
// scatter). NCCL-style knobs model multiple channels (parallel rings fed
// by split chunks, NCCL_MAX_NCHANNELS), the Simple vs LL protocol
// (NCCL_PROTO; LL halves effective bandwidth by interleaving flags but
// uses smaller chunks) and buffer-limited chunking (paper Fig 4: a 2 MB
// ring broadcast becomes four pipelined 512 KB sends per hop).
//
// All generators append to a goal.Builder and wire dependencies through
// entry ops (per participating rank) to exit ops, so collectives compose
// into larger schedules.
package collective

import (
	"fmt"

	"atlahs/internal/goal"
)

// Kind enumerates collective operations.
type Kind int

// Collective kinds.
const (
	Allreduce Kind = iota
	Bcast
	Allgather
	ReduceScatter
	Alltoall
	Barrier
	Reduce
	Gather
	Scatter
)

func (k Kind) String() string {
	switch k {
	case Allreduce:
		return "allreduce"
	case Bcast:
		return "bcast"
	case Allgather:
		return "allgather"
	case ReduceScatter:
		return "reducescatter"
	case Alltoall:
		return "alltoall"
	case Barrier:
		return "barrier"
	case Reduce:
		return "reduce"
	case Gather:
		return "gather"
	case Scatter:
		return "scatter"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Algo selects the decomposition algorithm.
type Algo int

// Algorithms. Auto picks the conventional default for the kind and size.
const (
	Auto Algo = iota
	Ring
	RecDoubling
	Binomial
	Pairwise
	Linear
)

func (a Algo) String() string {
	switch a {
	case Auto:
		return "auto"
	case Ring:
		return "ring"
	case RecDoubling:
		return "recdoubling"
	case Binomial:
		return "binomial"
	case Pairwise:
		return "pairwise"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// Protocol models NCCL_PROTO.
type Protocol int

// Protocols. Simple maximises bandwidth with large chunks; LL (low
// latency) interleaves flags with data — half the effective bandwidth,
// much smaller chunks, no extra synchronisation.
const (
	Simple Protocol = iota
	LL
)

// Default chunk sizes per protocol (NCCL buffer-size defaults).
const (
	SimpleChunk = 512 * 1024
	LLChunk     = 16 * 1024
)

// Options tunes a decomposition.
type Options struct {
	// Channels is the number of parallel rings/trees the payload is split
	// over (NCCL_MAX_NCHANNELS). Default 1.
	Channels int
	// Protocol selects Simple or LL framing.
	Protocol Protocol
	// ChunkBytes caps the bytes of one pipelined chunk; 0 picks the
	// protocol default.
	ChunkBytes int64
	// CPU is the compute stream the generated ops run on.
	CPU int32
	// ChannelStreams places each channel's ops on its own compute stream
	// (CPU + channel), modelling NCCL's one-SM-per-channel execution
	// (paper Fig 4: "NCCL uses 1 SM").
	ChannelStreams bool
	// TagBase namespaces this collective's messages; successive collectives
	// over the same ranks must use distinct bases (see TagSpan).
	TagBase int32
	// ReduceNsPerByte, when positive, inserts calc ops charging the local
	// reduction cost after each reducing receive.
	ReduceNsPerByte float64
}

func (o Options) channels() int {
	if o.Channels <= 0 {
		return 1
	}
	return o.Channels
}

// cpuFor returns the compute stream for a channel's ops.
func (o Options) cpuFor(channel int) int32 {
	if o.ChannelStreams {
		return o.CPU + int32(channel)
	}
	return o.CPU
}

func (o Options) chunk() int64 {
	if o.ChunkBytes > 0 {
		return o.ChunkBytes
	}
	if o.Protocol == LL {
		return LLChunk
	}
	return SimpleChunk
}

// WireBytes returns the bytes actually serialised for a payload under the
// protocol: LL doubles them (4 B of flags per 4 B of data).
func WireBytes(p Protocol, payload int64) int64 {
	if p == LL {
		return 2 * payload
	}
	return payload
}

// TagSpan is the number of consecutive tags one collective may consume;
// callers advancing TagBase by TagSpan per collective never collide.
const TagSpan = 64

// smallAllreduceBytes is the Auto-algorithm switch point between
// recursive doubling and ring for allreduce.
const smallAllreduceBytes = 16 * 1024

// Decompose appends the P2P schedule of the collective to b.
//
//   - ranks lists the participating global ranks in communicator order.
//   - root is the communicator-relative root index (bcast/reduce/gather/
//     scatter); ignored otherwise.
//   - bytes is the payload size per rank (allreduce/bcast: the full vector;
//     alltoall/allgather: the per-peer contribution).
//   - entry[i], when non-nil, is an op the first ops of ranks[i] must
//     require (-1 for none).
//
// It returns one exit op per rank position: the op after which the
// collective is complete on that rank.
func Decompose(b *goal.Builder, kind Kind, algo Algo, ranks []int, root int, bytes int64, opt Options, entry []goal.OpID) ([]goal.OpID, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("collective: empty rank group")
	}
	if err := checkRanks(b, ranks); err != nil {
		return nil, err
	}
	if entry != nil && len(entry) != len(ranks) {
		return nil, fmt.Errorf("collective: entry length %d != %d ranks", len(entry), len(ranks))
	}
	if bytes < 0 {
		return nil, fmt.Errorf("collective: negative size %d", bytes)
	}
	if root < 0 || root >= len(ranks) {
		root = 0
	}
	if len(ranks) == 1 {
		// single-rank collectives are no-ops; emit a zero calc for the exit
		rb := b.Rank(ranks[0])
		id := rb.CalcOn(0, opt.CPU)
		if e := entryOf(entry, 0); e >= 0 {
			rb.Requires(id, e)
		}
		return []goal.OpID{id}, nil
	}
	switch kind {
	case Allreduce:
		switch algo {
		case Auto:
			// the conventional MPI switch: latency-optimal recursive
			// doubling for small payloads, bandwidth-optimal ring above
			if bytes <= smallAllreduceBytes {
				return recDoublingAllreduce(b, ranks, bytes, opt, entry), nil
			}
			return ringAllreduce(b, ranks, bytes, opt, entry), nil
		case Ring:
			return ringAllreduce(b, ranks, bytes, opt, entry), nil
		case RecDoubling:
			return recDoublingAllreduce(b, ranks, bytes, opt, entry), nil
		}
	case Bcast:
		switch algo {
		case Ring:
			return ringBcast(b, ranks, root, bytes, opt, entry), nil
		case Auto, Binomial:
			return binomialBcast(b, ranks, root, bytes, opt, entry), nil
		}
	case Allgather:
		switch algo {
		case Auto, Ring:
			return ringAllgather(b, ranks, bytes, opt, entry), nil
		}
	case ReduceScatter:
		switch algo {
		case Auto, Ring:
			return ringReduceScatter(b, ranks, bytes, opt, entry), nil
		}
	case Alltoall:
		switch algo {
		case Auto, Pairwise:
			return pairwiseAlltoall(b, ranks, bytes, opt, entry), nil
		}
	case Barrier:
		return disseminationBarrier(b, ranks, opt, entry), nil
	case Reduce:
		switch algo {
		case Auto, Binomial:
			return binomialReduce(b, ranks, root, bytes, opt, entry), nil
		}
	case Gather:
		return linearGather(b, ranks, root, bytes, opt, entry), nil
	case Scatter:
		return linearScatter(b, ranks, root, bytes, opt, entry), nil
	}
	return nil, fmt.Errorf("collective: %v does not support algorithm %v", kind, algo)
}

func checkRanks(b *goal.Builder, ranks []int) error {
	seen := map[int]bool{}
	for _, r := range ranks {
		if r < 0 || r >= b.NumRanks() {
			return fmt.Errorf("collective: rank %d out of range [0,%d)", r, b.NumRanks())
		}
		if seen[r] {
			return fmt.Errorf("collective: duplicate rank %d in group", r)
		}
		seen[r] = true
	}
	return nil
}

func entryOf(entry []goal.OpID, i int) goal.OpID {
	if entry == nil {
		return -1
	}
	return entry[i]
}

// requireEntry wires dep into op if dep is a valid op.
func requireEntry(rb *goal.RankBuilder, op, dep goal.OpID) {
	if dep >= 0 {
		rb.Requires(op, dep)
	}
}

// exitOf merges multiple terminal ops into a single zero-cost exit op when
// needed (the paper's dummy vertices).
func exitOf(rb *goal.RankBuilder, opt Options, terminals ...goal.OpID) goal.OpID {
	live := terminals[:0]
	for _, t := range terminals {
		if t >= 0 {
			live = append(live, t)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	d := rb.CalcOn(0, opt.CPU)
	for _, t := range live {
		rb.Requires(d, t)
	}
	return d
}

// chunksOf splits total into pipelined chunks of at most chunk bytes,
// returning each chunk's size (at least one chunk, possibly zero-sized).
func chunksOf(total, chunk int64) []int64 {
	if total <= 0 {
		return []int64{0}
	}
	var out []int64
	for total > 0 {
		c := chunk
		if total < c {
			c = total
		}
		out = append(out, c)
		total -= c
	}
	return out
}

// splitAcross divides total across n parts as evenly as possible (earlier
// parts get the remainder).
func splitAcross(total int64, n int) []int64 {
	out := make([]int64, n)
	base := total / int64(n)
	rem := total % int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}
