package hpcapps

import (
	"sort"
	"testing"
	"testing/quick"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/sched"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/xrand"
)

func TestAllAppsGenerateAndSimulate(t *testing.T) {
	for _, app := range Apps() {
		t.Run(string(app), func(t *testing.T) {
			tr, err := Generate(Config{App: app, Ranks: 16, Steps: 3, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			s, err := schedgen.Generate(tr, schedgen.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CheckMatched(); err != nil {
				t.Fatal(err)
			}
			res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.HPCParams()), sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Runtime <= 0 {
				t.Fatal("zero runtime")
			}
		})
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{App: HPCG, Ranks: 1}); err == nil {
		t.Fatal("single rank accepted")
	}
	if _, err := Generate(Config{App: App("nope"), Ranks: 4}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestDecompose(t *testing.T) {
	cases := []struct {
		n, dims int
	}{
		{128, 3}, {512, 3}, {1024, 3}, {432, 3}, {27, 3}, {8, 2}, {12, 2}, {7, 3},
	}
	for _, c := range cases {
		grid := decompose(c.n, c.dims)
		if len(grid) != c.dims {
			t.Fatalf("decompose(%d,%d) dims=%v", c.n, c.dims, grid)
		}
		prod := 1
		for _, g := range grid {
			prod *= g
		}
		if prod != c.n {
			t.Fatalf("decompose(%d,%d)=%v product %d", c.n, c.dims, grid, prod)
		}
		// balanced: max/min ratio sane for composite numbers
		if c.n == 128 && grid[0] > 8*grid[2] {
			t.Fatalf("unbalanced decomposition %v", grid)
		}
	}
}

func TestNeighbourSymmetryProperty(t *testing.T) {
	// if a is a neighbour of b then b is a neighbour of a
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := []int{8, 12, 16, 27, 64}[rng.Intn(5)]
		grid := decompose(n, 3)
		corners := rng.Bool(0.5)
		for r := 0; r < n; r++ {
			for _, nb := range neighbours(r, grid, corners) {
				back := neighbours(nb, grid, corners)
				i := sort.SearchInts(back, r)
				if i >= len(back) || back[i] != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighbourCounts(t *testing.T) {
	// 4x4x4 grid: axis neighbours = 6, with corners = 26
	grid := []int{4, 4, 4}
	if got := len(neighbours(21, grid, false)); got != 6 {
		t.Fatalf("axis neighbours = %d, want 6", got)
	}
	if got := len(neighbours(21, grid, true)); got != 26 {
		t.Fatalf("corner neighbours = %d, want 26", got)
	}
	// 4x4 2D grid (decomposed as [4,4,1])
	grid2 := []int{4, 4, 1}
	if got := len(neighbours(5, grid2, false)); got != 4 {
		t.Fatalf("2D axis neighbours = %d, want 4", got)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(Config{App: LULESH, Ranks: 8, Steps: 2, Seed: 42})
	b, _ := Generate(Config{App: LULESH, Ranks: 8, Steps: 2, Seed: 42})
	if len(a.Events[0]) != len(b.Events[0]) {
		t.Fatal("not deterministic")
	}
	for i := range a.Events[0] {
		if a.Events[0][i] != b.Events[0][i] {
			t.Fatal("event mismatch for same seed")
		}
	}
}

func TestScaleBytes(t *testing.T) {
	big, _ := Generate(Config{App: CloverLeaf, Ranks: 8, Steps: 2, Seed: 1, ScaleBytes: 1})
	small, _ := Generate(Config{App: CloverLeaf, Ranks: 8, Steps: 2, Seed: 1, ScaleBytes: 0.25})
	var bigBytes, smallBytes int64
	for _, ev := range big.Events[0] {
		bigBytes += ev.Bytes
	}
	for _, ev := range small.Events[0] {
		smallBytes += ev.Bytes
	}
	if smallBytes >= bigBytes {
		t.Fatalf("scaling failed: %d vs %d", smallBytes, bigBytes)
	}
}

func TestWeakScalingMoreRanksMoreEvents(t *testing.T) {
	small, _ := Generate(Config{App: HPCG, Ranks: 8, Steps: 2, Seed: 1})
	large, _ := Generate(Config{App: HPCG, Ranks: 64, Steps: 2, Seed: 1})
	sc, lc := 0, 0
	for _, evs := range small.Events {
		sc += len(evs)
	}
	for _, evs := range large.Events {
		lc += len(evs)
	}
	if lc <= sc {
		t.Fatalf("64-rank trace not larger: %d vs %d events", lc, sc)
	}
}
