// Package hpcapps generates liballprof-style MPI traces reproducing the
// communication patterns of the HPC proxy applications the paper validates
// against (§5.3, Fig 10, Table 1): HPCG, LULESH, LAMMPS, ICON, OpenMX and
// CloverLeaf. Each generator emits the application's documented exchange
// structure — stencil halo exchanges via nonblocking point-to-point,
// reduction cadences, FFT transposes — with per-step compute drawn from a
// seeded lognormal distribution, so Schedgen and the simulation backends
// exercise the same code paths real traces would.
package hpcapps

import (
	"fmt"
	"sort"

	"atlahs/internal/trace/mpitrace"
	"atlahs/internal/xrand"
)

// App identifies a generator.
type App string

// Supported applications.
const (
	HPCG       App = "hpcg"
	LULESH     App = "lulesh"
	LAMMPS     App = "lammps"
	ICON       App = "icon"
	OpenMX     App = "openmx"
	CloverLeaf App = "cloverleaf"
)

// Apps lists all supported applications.
func Apps() []App {
	return []App{HPCG, LULESH, LAMMPS, ICON, OpenMX, CloverLeaf}
}

// Config parameterises a trace generation run.
type Config struct {
	App   App
	Ranks int
	Steps int // timesteps / iterations (default per app)
	Seed  uint64
	// ScaleBytes scales message sizes (1.0 = nominal).
	ScaleBytes float64
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 10
	}
	if c.ScaleBytes <= 0 {
		c.ScaleBytes = 1
	}
	return c
}

// Generate produces the MPI trace for the configured application.
func Generate(cfg Config) (*mpitrace.Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("hpcapps: need at least 2 ranks")
	}
	switch cfg.App {
	case HPCG:
		return stencilApp(cfg, stencilParams{
			dims: 3, faceBytes: 64 * 1024, computeNs: 2_400_000, jitter: 0.08,
			allreducePerStep: 3, allreduceBytes: 8,
			// multigrid coarse-level halos: extra small exchanges
			extraHaloEvery: 1, extraHaloBytes: 8 * 1024,
		}), nil
	case LULESH:
		return stencilApp(cfg, stencilParams{
			dims: 3, faceBytes: 96 * 1024, computeNs: 3_200_000, jitter: 0.06,
			allreducePerStep: 1, allreduceBytes: 8,
			corners: true, // LULESH exchanges with all 26 neighbours
		}), nil
	case LAMMPS:
		return stencilApp(cfg, stencilParams{
			dims: 3, faceBytes: 48 * 1024, computeNs: 1_800_000, jitter: 0.10,
			allreducePerStep: 0, allreduceBytes: 8,
			allreduceEvery: 5, // thermo output cadence
			fftEvery:       5, // PPPM long-range solve: transpose alltoall
			fftBytes:       4 * 1024,
		}), nil
	case ICON:
		return stencilApp(cfg, stencilParams{
			dims: 2, faceBytes: 32 * 1024, computeNs: 2_000_000, jitter: 0.12,
			allreducePerStep: 2, allreduceBytes: 64,
			bcastEvery: 10, bcastBytes: 4096, // configuration broadcast cadence
		}), nil
	case CloverLeaf:
		return stencilApp(cfg, stencilParams{
			dims: 2, faceBytes: 128 * 1024, computeNs: 2_800_000, jitter: 0.05,
			allreducePerStep: 1, allreduceBytes: 8,
			reduceEvery: 10, reduceBytes: 64, // field summaries to rank 0
		}), nil
	case OpenMX:
		return openMX(cfg), nil
	default:
		return nil, fmt.Errorf("hpcapps: unknown application %q", cfg.App)
	}
}

// ---------------------------------------------------------------------------

// stencilParams describes a halo-exchange proxy app.
type stencilParams struct {
	dims             int   // 2 or 3 dimensional domain decomposition
	corners          bool  // include diagonal neighbours (26/8-point stencils)
	faceBytes        int64 // bytes per face exchange
	computeNs        int64 // mean per-step compute
	jitter           float64
	allreducePerStep int
	allreduceBytes   int64
	allreduceEvery   int // additional allreduce every k steps
	bcastEvery       int
	bcastBytes       int64
	reduceEvery      int
	reduceBytes      int64
	extraHaloEvery   int
	extraHaloBytes   int64
	fftEvery         int
	fftBytes         int64
}

// decompose factors n into dims balanced factors (largest first).
func decompose(n, dims int) []int {
	out := make([]int, dims)
	for i := range out {
		out[i] = 1
	}
	// repeatedly divide by the largest prime factor, assigning to the
	// currently smallest dimension
	rem := n
	for rem > 1 {
		f := smallestPrimeFactor(rem)
		sort.Ints(out)
		out[0] *= f
		rem /= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func smallestPrimeFactor(n int) int {
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// coords/rankOf map between rank ids and grid coordinates.
func coords(rank int, grid []int) []int {
	c := make([]int, len(grid))
	for i := len(grid) - 1; i >= 0; i-- {
		c[i] = rank % grid[i]
		rank /= grid[i]
	}
	return c
}

func rankOf(c []int, grid []int) int {
	r := 0
	for i := 0; i < len(grid); i++ {
		r = r*grid[i] + c[i]
	}
	return r
}

// neighbours returns the ranks adjacent to rank in the grid (periodic
// boundaries), optionally including diagonal corners.
func neighbours(rank int, grid []int, corners bool) []int {
	c := coords(rank, grid)
	seen := map[int]bool{rank: true}
	var out []int
	var walk func(dim int, cur []int, moved bool)
	walk = func(dim int, cur []int, moved bool) {
		if dim == len(grid) {
			if moved {
				r := rankOf(cur, grid)
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
			return
		}
		for _, d := range []int{0, -1, 1} {
			if !corners && d != 0 && moved {
				continue // axis-aligned only: one moved dimension
			}
			next := make([]int, len(cur))
			copy(next, cur)
			next[dim] = ((cur[dim]+d)%grid[dim] + grid[dim]) % grid[dim]
			if grid[dim] == 1 && d != 0 {
				continue
			}
			if grid[dim] == 2 && d == 1 {
				continue // avoid duplicate neighbour in 2-wide dims
			}
			walk(dim+1, next, moved || d != 0)
		}
	}
	walk(0, c, false)
	sort.Ints(out)
	return out
}

// stencilApp generates the halo-exchange trace.
func stencilApp(cfg Config, p stencilParams) *mpitrace.Trace {
	rng := xrand.New(cfg.Seed ^ 0x48504341) // "HPCA"
	grid := decompose(cfg.Ranks, p.dims)
	tr := mpitrace.New(cfg.Ranks)
	clock := make([]int64, cfg.Ranks)
	face := int64(float64(p.faceBytes) * cfg.ScaleBytes)
	if face < 1 {
		face = 1
	}

	// per-rank jittered compute time (persistent load imbalance plus
	// per-step noise)
	rankSpeed := make([]float64, cfg.Ranks)
	for r := range rankSpeed {
		rankSpeed[r] = 1 + 0.05*rng.Float64()
	}
	appendEv := func(r int, ev mpitrace.Event) {
		tr.Append(r, ev)
	}
	for step := 0; step < cfg.Steps; step++ {
		for r := 0; r < cfg.Ranks; r++ {
			// compute phase
			comp := int64(float64(p.computeNs) * rankSpeed[r] * rng.LogNormal(0, p.jitter))
			clock[r] += comp
			// halo exchange: Irecv all, Isend all, Wait all
			nb := neighbours(r, grid, p.corners)
			req := int64(1)
			var reqs []int64
			for _, peer := range nb {
				appendEv(r, mpitrace.Event{
					Type: mpitrace.Irecv, Peer: peer, Bytes: face, Tag: int32(step % 4096),
					Req: req, Root: -1, Start: clock[r], End: clock[r] + 200,
				})
				clock[r] += 200
				reqs = append(reqs, req)
				req++
			}
			for _, peer := range nb {
				appendEv(r, mpitrace.Event{
					Type: mpitrace.Isend, Peer: peer, Bytes: face, Tag: int32(step % 4096),
					Req: req, Root: -1, Start: clock[r], End: clock[r] + 300,
				})
				clock[r] += 300
				reqs = append(reqs, req)
				req++
			}
			for _, q := range reqs {
				appendEv(r, mpitrace.Event{
					Type: mpitrace.Wait, Peer: -1, Req: q, Root: -1,
					Start: clock[r], End: clock[r] + 100,
				})
				clock[r] += 100
			}
			// extra coarse-level halo (multigrid)
			if p.extraHaloEvery > 0 && step%p.extraHaloEvery == 0 && p.extraHaloBytes > 0 {
				sz := int64(float64(p.extraHaloBytes) * cfg.ScaleBytes)
				if sz < 1 {
					sz = 1
				}
				for _, peer := range nb {
					if peer > r {
						appendEv(r, mpitrace.Event{
							Type: mpitrace.Send, Peer: peer, Bytes: sz, Tag: 4097,
							Root: -1, Start: clock[r], End: clock[r] + 200,
						})
					} else {
						appendEv(r, mpitrace.Event{
							Type: mpitrace.Recv, Peer: peer, Bytes: sz, Tag: 4097,
							Root: -1, Start: clock[r], End: clock[r] + 200,
						})
					}
					clock[r] += 200
				}
			}
			// collectives close the step
			for k := 0; k < p.allreducePerStep; k++ {
				appendEv(r, mpitrace.Event{
					Type: mpitrace.Allreduce, Peer: -1, Bytes: p.allreduceBytes,
					Root: -1, Start: clock[r], End: clock[r] + 500,
				})
				clock[r] += 500
			}
			if p.allreduceEvery > 0 && step%p.allreduceEvery == 0 {
				appendEv(r, mpitrace.Event{
					Type: mpitrace.Allreduce, Peer: -1, Bytes: p.allreduceBytes,
					Root: -1, Start: clock[r], End: clock[r] + 500,
				})
				clock[r] += 500
			}
			if p.fftEvery > 0 && step%p.fftEvery == 0 {
				sz := int64(float64(p.fftBytes) * cfg.ScaleBytes)
				if sz < 1 {
					sz = 1
				}
				appendEv(r, mpitrace.Event{
					Type: mpitrace.Alltoall, Peer: -1, Bytes: sz,
					Root: -1, Start: clock[r], End: clock[r] + 1000,
				})
				clock[r] += 1000
			}
			if p.bcastEvery > 0 && step%p.bcastEvery == 0 {
				appendEv(r, mpitrace.Event{
					Type: mpitrace.Bcast, Peer: -1, Bytes: p.bcastBytes, Root: 0,
					Start: clock[r], End: clock[r] + 400,
				})
				clock[r] += 400
			}
			if p.reduceEvery > 0 && step%p.reduceEvery == 0 {
				appendEv(r, mpitrace.Event{
					Type: mpitrace.ReduceOp, Peer: -1, Bytes: p.reduceBytes, Root: 0,
					Start: clock[r], End: clock[r] + 400,
				})
				clock[r] += 400
			}
		}
	}
	return tr
}

// openMX models the DFT workload: per SCF iteration a large band
// parallelisation alltoall, eigenvalue reductions and a broadcast of the
// updated density.
func openMX(cfg Config) *mpitrace.Trace {
	rng := xrand.New(cfg.Seed ^ 0x4f4d58) // "OMX"
	tr := mpitrace.New(cfg.Ranks)
	clock := make([]int64, cfg.Ranks)
	a2a := int64(24 * 1024 * cfg.ScaleBytes)
	if a2a < 1 {
		a2a = 1
	}
	red := int64(256 * 1024 * cfg.ScaleBytes)
	if red < 1 {
		red = 1
	}
	for step := 0; step < cfg.Steps; step++ {
		for r := 0; r < cfg.Ranks; r++ {
			comp := int64(4_000_000 * rng.LogNormal(0, 0.1))
			clock[r] += comp
			tr.Append(r, mpitrace.Event{
				Type: mpitrace.Alltoall, Peer: -1, Bytes: a2a, Root: -1,
				Start: clock[r], End: clock[r] + 1000,
			})
			clock[r] += 1000
			tr.Append(r, mpitrace.Event{
				Type: mpitrace.Allreduce, Peer: -1, Bytes: red, Root: -1,
				Start: clock[r], End: clock[r] + 800,
			})
			clock[r] += 800
			tr.Append(r, mpitrace.Event{
				Type: mpitrace.Bcast, Peer: -1, Bytes: red / 4, Root: 0,
				Start: clock[r], End: clock[r] + 500,
			})
			clock[r] += 500
		}
	}
	return tr
}
