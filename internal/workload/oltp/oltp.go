// Package oltp synthesises SPC block-I/O traces with the published
// characteristics of the UMass Trace Repository "Financial" OLTP traces —
// the storage workload generator feeding the paper's storage case study
// (§3.1.3, Fig 11). The trace format itself lives in internal/trace/spc;
// this package is the generator side, mirroring how internal/workload/llm
// and internal/workload/hpcapps generate the AI and HPC trace formats.
package oltp

import (
	"sort"

	"atlahs/internal/trace/spc"
	"atlahs/internal/xrand"
)

// FinancialConfig tunes the synthetic Financial-distribution generator.
// The defaults reproduce the published profile of the UMass Financial1
// OLTP trace: write-heavy (~77%), 512-byte-multiple transfers dominated by
// small requests, skewed block reuse, bursty arrivals.
type FinancialConfig struct {
	Ops           int
	ASUs          int     // application storage units (default 24)
	WriteFraction float64 // default 0.77
	MeanGapUs     float64 // mean inter-arrival in microseconds (default 30)
	BurstProb     float64 // probability the next op arrives immediately (default 0.35)
	HotBlocks     int     // size of the skewed block working set (default 1<<16)
	Seed          uint64
}

func (c FinancialConfig) withDefaults() FinancialConfig {
	if c.ASUs <= 0 {
		c.ASUs = 24
	}
	if c.WriteFraction == 0 {
		c.WriteFraction = 0.77
	}
	if c.MeanGapUs == 0 {
		c.MeanGapUs = 30
	}
	if c.BurstProb == 0 {
		c.BurstProb = 0.35
	}
	if c.HotBlocks <= 0 {
		c.HotBlocks = 1 << 16
	}
	return c
}

// GenerateFinancial synthesises an OLTP-like trace with the Financial
// profile. Output is sorted by timestamp and validates.
func GenerateFinancial(cfg FinancialConfig) *spc.Trace {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed ^ 0x46494e31) // "FIN1"
	zip := xrand.NewZipf(rng, cfg.HotBlocks, 1.1)
	t := &spc.Trace{Ops: make([]spc.Op, 0, cfg.Ops)}
	now := 0.0
	for i := 0; i < cfg.Ops; i++ {
		if !rng.Bool(cfg.BurstProb) {
			now += rng.Exp(cfg.MeanGapUs) * 1e-6
		}
		// transfer sizes: 512 B blocks, geometric-ish mix peaking small
		blocks := int64(1)
		for blocks < 64 && rng.Bool(0.45) {
			blocks *= 2
		}
		t.Ops = append(t.Ops, spc.Op{
			ASU:   rng.Intn(cfg.ASUs),
			LBA:   int64(zip.Next()) * 8, // 8 blocks per hot-set slot
			Bytes: blocks * 512,
			Write: rng.Bool(cfg.WriteFraction),
			Time:  now,
		})
	}
	sort.SliceStable(t.Ops, func(i, j int) bool { return t.Ops[i].Time < t.Ops[j].Time })
	return t
}
