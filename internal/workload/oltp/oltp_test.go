package oltp

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"atlahs/internal/trace/spc"
)

func TestFinancialProfile(t *testing.T) {
	tr := GenerateFinancial(FinancialConfig{Ops: 20000, Seed: 7})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.Ops != 20000 {
		t.Fatalf("ops=%d", st.Ops)
	}
	// write-heavy ~77%
	if math.Abs(st.WriteRatio-0.77) > 0.03 {
		t.Fatalf("write ratio %.3f, want ~0.77", st.WriteRatio)
	}
	// small-block dominated: mean transfer around 1-2 KB
	if st.MeanBytes < 512 || st.MeanBytes > 4096 {
		t.Fatalf("mean bytes %.0f outside OLTP profile", st.MeanBytes)
	}
	// sizes are 512-byte multiples
	for _, op := range tr.Ops[:100] {
		if op.Bytes%512 != 0 {
			t.Fatalf("size %d not a 512 multiple", op.Bytes)
		}
	}
	// skewed reuse: some LBA appears many times
	counts := map[int64]int{}
	for _, op := range tr.Ops {
		counts[op.LBA]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 {
		t.Fatalf("hot block reused only %d times; distribution not skewed", max)
	}
}

func TestFinancialDeterminism(t *testing.T) {
	a := GenerateFinancial(FinancialConfig{Ops: 1000, Seed: 5})
	b := GenerateFinancial(FinancialConfig{Ops: 1000, Seed: 5})
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("generator not deterministic")
	}
	c := GenerateFinancial(FinancialConfig{Ops: 1000, Seed: 6})
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: generated traces always validate and round trip through the
// SPC codec.
func TestFinancialRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		tr := GenerateFinancial(FinancialConfig{Ops: int(n%500) + 1, Seed: seed})
		if tr.Validate() != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := spc.Parse(&buf)
		if err != nil {
			return false
		}
		if len(got.Ops) != len(tr.Ops) {
			return false
		}
		for i := range got.Ops {
			a, b := tr.Ops[i], got.Ops[i]
			if a.ASU != b.ASU || a.LBA != b.LBA || a.Bytes != b.Bytes || a.Write != b.Write {
				return false
			}
			if math.Abs(a.Time-b.Time) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
