package llm

import (
	"fmt"

	"atlahs/internal/trace/chakra"
	"atlahs/internal/trace/nsys"
)

// Generate builds the workload and renders it as an nsys-like report — the
// input of the ATLAHS 4-stage GOAL pipeline.
func Generate(cfg Config) (*nsys.Report, error) {
	p, err := build(cfg)
	if err != nil {
		return nil, err
	}
	return p.toNsys(), nil
}

// GenerateChakra builds the workload and renders it as a Chakra-like
// execution trace — the input of the AstraSim-lite baseline.
func GenerateChakra(cfg Config) (*chakra.Trace, error) {
	p, err := build(cfg)
	if err != nil {
		return nil, err
	}
	return p.toChakra()
}

// estCommNs roughly estimates a communication op's wall time for
// timestamping the synthetic report (25 GB/s + fixed launch overhead);
// simulation recomputes the real cost, these estimates only shape
// inter-record gaps.
func estCommNs(bytes int64) int64 {
	return bytes/25 + 20_000
}

// toNsys renders the program with per-GPU monotonic clocks.
func (p *program) toNsys() *nsys.Report {
	rep := &nsys.Report{NGPUs: p.ngpus, Comms: p.comms}
	for g := 0; g < p.ngpus; g++ {
		clock := int64(0)
		for _, op := range p.ops[g] {
			rec := nsys.Record{GPU: g, Stream: op.stream, Name: op.name, StartNs: clock}
			switch op.kind {
			case opComp:
				rec.Kind = nsys.KindKernel
				rec.EndNs = clock + op.durNs
			case opColl:
				rec.Kind = nsys.KindNCCL
				rec.Coll = op.coll
				rec.Bytes = op.bytes
				rec.Comm = op.comm
				rec.Root = op.root
				rec.EndNs = clock + estCommNs(op.bytes)
			case opSend:
				rec.Kind = nsys.KindNCCL
				rec.Coll = nsys.CollSend
				rec.Bytes = op.bytes
				rec.Comm = op.comm
				rec.Peer = op.peer
				rec.EndNs = clock + estCommNs(op.bytes)
			case opRecv:
				rec.Kind = nsys.KindNCCL
				rec.Coll = nsys.CollRecv
				rec.Bytes = op.bytes
				rec.Comm = op.comm
				rec.Peer = op.peer
				rec.EndNs = clock + estCommNs(op.bytes)
			}
			clock = rec.EndNs
			rep.Records = append(rep.Records, rec)
		}
	}
	return rep
}

var nsysToChakraColl = map[string]string{
	nsys.CollAllReduce:     chakra.CollAllReduce,
	nsys.CollAllGather:     chakra.CollAllGather,
	nsys.CollReduceScatter: chakra.CollReduceScatter,
	nsys.CollAllToAll:      chakra.CollAllToAll,
	nsys.CollBroadcast:     chakra.CollBroadcast,
}

// toChakra renders the program as one node graph per rank with sequential
// control dependencies (the shape PyTorch+Kineto merges produce).
func (p *program) toChakra() (*chakra.Trace, error) {
	t := &chakra.Trace{Ranks: make([][]chakra.Node, p.ngpus)}
	tag := int64(0)
	for g := 0; g < p.ngpus; g++ {
		var b chakra.Builder
		for _, op := range p.ops[g] {
			switch op.kind {
			case opComp:
				b.AddComp(op.name, op.durNs)
			case opColl:
				ct, ok := nsysToChakraColl[op.coll]
				if !ok {
					return nil, fmt.Errorf("llm: no chakra mapping for collective %q", op.coll)
				}
				b.AddColl(ct, op.bytes, op.comm)
			case opSend:
				members := p.comms[op.comm]
				b.AddSend(op.bytes, members[op.peer], tag)
				tag++
			case opRecv:
				members := p.comms[op.comm]
				b.AddRecv(op.bytes, members[op.peer], tag)
				tag++
			}
		}
		t.Ranks[g] = b.Nodes()
	}
	return t, nil
}

// Summary describes a generated workload for reports.
type Summary struct {
	GPUs       int
	Records    int
	Comms      int
	CollBytes  int64
	P2PBytes   int64
	ComputeNs  int64
	Iterations int
}

// Summarize builds a Summary from a generated report.
func Summarize(rep *nsys.Report, iterations int) Summary {
	s := Summary{GPUs: rep.NGPUs, Records: len(rep.Records), Comms: len(rep.Comms), Iterations: iterations}
	for i := range rep.Records {
		r := &rep.Records[i]
		switch {
		case r.Kind == nsys.KindKernel:
			s.ComputeNs += r.EndNs - r.StartNs
		case r.Coll == nsys.CollSend || r.Coll == nsys.CollRecv:
			s.P2PBytes += r.Bytes
		default:
			s.CollBytes += r.Bytes
		}
	}
	return s
}
