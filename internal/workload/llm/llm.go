// Package llm generates distributed LLM-training workloads with the
// parallelisation strategies of the paper's AI validation (§5.2, Fig 8):
// tensor (TP), pipeline (PP), data (DP) and expert (EP) parallelism over
// Llama- and Mixture-of-Experts-style transformer models, plus a DLRM
// recommendation workload.
//
// A generation run produces a per-GPU logical program (compute kernels,
// NCCL collectives, pipeline sends/receives, per-stream placement), which
// renders to either
//
//   - an nsys-like report (internal/trace/nsys) feeding the 4-stage GOAL
//     pipeline — the ATLAHS path, or
//   - a Chakra-like execution trace (internal/trace/chakra) feeding the
//     AstraSim-lite baseline — the comparison path of Fig 8/9.
//
// Byte counts and compute times follow the usual Megatron accounting
// (activations = microbatch*seq*hidden*elem, two TP allreduces per layer
// and direction, gradient ring allreduce of the stage's parameter shard,
// MoE dispatch/combine all-to-alls over the EP group), scaled by
// Config.Scale so packet-level simulation of large configurations stays
// tractable.
package llm

import (
	"fmt"

	"atlahs/internal/trace/nsys"
	"atlahs/internal/xrand"
)

// Model describes a transformer (or DLRM) architecture.
type Model struct {
	Name    string
	Layers  int
	Hidden  int
	SeqLen  int
	Experts int     // 0 for dense models
	ParamsB float64 // total parameters in billions
	DLRM    bool    // recommendation-model structure instead of transformer
}

// Parallelism is the TP/PP/DP/EP decomposition. GPUs = TP*PP*DP.
type Parallelism struct {
	TP, PP, DP, EP int
	GlobalBatch    int
	MicroBatch     int // default 1
}

// GPUs returns the total GPU count.
func (p Parallelism) GPUs() int { return p.TP * p.PP * p.DP }

// Config is a full workload specification.
type Config struct {
	Model       Model
	Par         Parallelism
	Iterations  int     // training iterations to trace (default 1)
	GPUTflops   float64 // effective throughput for kernel times (default 300)
	BytesPerElt int64   // activation/gradient element size (default 2, bf16)
	// Scale multiplies every byte count and compute time (default 1). The
	// experiments use < 1 to shrink paper-sized runs to tractable
	// simulations; the factor is recorded in experiment output.
	Scale float64
	Seed  uint64
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 1
	}
	if c.GPUTflops <= 0 {
		c.GPUTflops = 300
	}
	if c.BytesPerElt <= 0 {
		c.BytesPerElt = 2
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Par.MicroBatch <= 0 {
		c.Par.MicroBatch = 1
	}
	return c
}

// Validate checks the parallelisation shape.
func (c Config) Validate() error {
	p := c.Par
	if p.TP < 1 || p.PP < 1 || p.DP < 1 {
		return fmt.Errorf("llm: TP/PP/DP must be >= 1")
	}
	if p.EP < 1 {
		return fmt.Errorf("llm: EP must be >= 1 (1 disables expert parallelism)")
	}
	if p.EP > p.DP || p.DP%p.EP != 0 {
		return fmt.Errorf("llm: EP (%d) must divide DP (%d)", p.EP, p.DP)
	}
	if c.Model.Layers%p.PP != 0 {
		return fmt.Errorf("llm: %d layers not divisible by PP=%d", c.Model.Layers, p.PP)
	}
	if p.GlobalBatch < p.DP*p.MicroBatch {
		return fmt.Errorf("llm: global batch %d below DP*microbatch=%d", p.GlobalBatch, p.DP*p.MicroBatch)
	}
	if c.Model.Experts == 0 && p.EP > 1 {
		return fmt.Errorf("llm: EP>1 requires an MoE model")
	}
	return nil
}

// --- presets (paper Table 1 / Fig 8 workloads) -------------------------------

// Llama7B returns the Llama 2 7B architecture.
func Llama7B() Model {
	return Model{Name: "Llama 7B", Layers: 32, Hidden: 4096, SeqLen: 4096, ParamsB: 7}
}

// Llama70B returns the Llama 2 70B architecture.
func Llama70B() Model {
	return Model{Name: "Llama 70B", Layers: 80, Hidden: 8192, SeqLen: 4096, ParamsB: 70}
}

// Mistral8x7B returns the Mixtral 8x7B MoE architecture.
func Mistral8x7B() Model {
	return Model{Name: "Mistral 8x7B", Layers: 32, Hidden: 4096, SeqLen: 4096, Experts: 8, ParamsB: 47}
}

// MoE8x13B returns an 8-expert 13B-base MoE.
func MoE8x13B() Model {
	return Model{Name: "MoE 8x13B", Layers: 40, Hidden: 5120, SeqLen: 4096, Experts: 8, ParamsB: 87}
}

// MoE8x70B returns an 8-expert 70B-base MoE.
func MoE8x70B() Model {
	return Model{Name: "MoE 8x70B", Layers: 80, Hidden: 8192, SeqLen: 4096, Experts: 8, ParamsB: 467}
}

// DLRMModel returns a DLRM-style recommendation model.
func DLRMModel() Model {
	return Model{Name: "DLRM", Layers: 8, Hidden: 2048, SeqLen: 1, ParamsB: 2, DLRM: true}
}

// --- logical program ----------------------------------------------------------

type opKind int

const (
	opComp opKind = iota
	opColl
	opSend
	opRecv
)

// lop is one logical operation of a GPU's program.
type lop struct {
	kind   opKind
	stream int
	name   string
	durNs  int64  // opComp
	coll   string // nsys.Coll* for opColl
	bytes  int64
	comm   string
	root   int // comm-relative
	peer   int // comm-relative (send/recv)
}

// program is the workload before rendering.
type program struct {
	cfg   Config
	ngpus int
	comms map[string][]int
	ops   [][]lop // per gpu
}

// streams used by the renderers.
const (
	streamCompute = 0 // kernels, TP/EP/DP collectives launch stream
	streamPP      = 1 // pipeline sends/receives
)

// coordinates of a GPU in the parallel topology. Megatron order: TP
// fastest, then PP, then DP.
func gpuOf(dp, pp, tp int, par Parallelism) int {
	return (dp*par.PP+pp)*par.TP + tp
}

// build constructs the logical program.
func build(cfg Config) (*program, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	par := cfg.Par
	p := &program{
		cfg:   cfg,
		ngpus: par.GPUs(),
		comms: map[string][]int{},
		ops:   make([][]lop, par.GPUs()),
	}
	rng := xrand.New(cfg.Seed ^ 0x4c4c4d) // "LLM"

	// communicators
	world := make([]int, p.ngpus)
	for i := range world {
		world[i] = i
	}
	p.comms["world"] = world
	tpComm := func(dp, pp int) string {
		name := fmt.Sprintf("tp.d%d.p%d", dp, pp)
		if _, ok := p.comms[name]; !ok {
			g := make([]int, par.TP)
			for t := 0; t < par.TP; t++ {
				g[t] = gpuOf(dp, pp, t, par)
			}
			p.comms[name] = g
		}
		return name
	}
	ppComm := func(dp, tp int) string {
		name := fmt.Sprintf("pp.d%d.t%d", dp, tp)
		if _, ok := p.comms[name]; !ok {
			g := make([]int, par.PP)
			for s := 0; s < par.PP; s++ {
				g[s] = gpuOf(dp, s, tp, par)
			}
			p.comms[name] = g
		}
		return name
	}
	dpComm := func(pp, tp int) string {
		if par.TP == 1 && par.PP == 1 {
			return "world" // pure data parallelism: the DP group IS the world
		}
		name := fmt.Sprintf("dp.p%d.t%d", pp, tp)
		if _, ok := p.comms[name]; !ok {
			g := make([]int, par.DP)
			for d := 0; d < par.DP; d++ {
				g[d] = gpuOf(d, pp, tp, par)
			}
			p.comms[name] = g
		}
		return name
	}
	epComm := func(dp, pp, tp int) string {
		blk := dp / par.EP
		name := fmt.Sprintf("ep.b%d.p%d.t%d", blk, pp, tp)
		if _, ok := p.comms[name]; !ok {
			g := make([]int, par.EP)
			for e := 0; e < par.EP; e++ {
				g[e] = gpuOf(blk*par.EP+e, pp, tp, par)
			}
			p.comms[name] = g
		}
		return name
	}

	if cfg.Model.DLRM {
		buildDLRM(p, rng)
		return p, nil
	}

	scale := func(v float64) int64 {
		s := int64(v * cfg.Scale)
		if s < 1 && v > 0 {
			s = 1
		}
		return s
	}
	m := cfg.Model
	layersPerStage := m.Layers / par.PP
	micro := par.MicroBatch
	nMicro := par.GlobalBatch / (par.DP * micro)
	if nMicro < 1 {
		nMicro = 1
	}
	tokens := int64(micro * m.SeqLen)
	actBytes := scale(float64(tokens * int64(m.Hidden) * cfg.BytesPerElt))
	// fwd time of one layer shard: ~2*P_layer/TP flops per token
	paramsPerLayer := m.ParamsB * 1e9 / float64(m.Layers)
	fwdNsLayer := int64(2 * paramsPerLayer / float64(par.TP) * float64(tokens) / (cfg.GPUTflops * 1e3) * cfg.Scale)
	if fwdNsLayer < 1000 {
		fwdNsLayer = 1000
	}
	gradBytes := scale(m.ParamsB * 1e9 / float64(par.PP) / float64(par.TP) * float64(cfg.BytesPerElt))

	for dp := 0; dp < par.DP; dp++ {
		for pp := 0; pp < par.PP; pp++ {
			for tp := 0; tp < par.TP; tp++ {
				g := gpuOf(dp, pp, tp, par)
				var ops []lop
				jit := 1 + 0.02*rng.Float64()
				for it := 0; it < cfg.Iterations; it++ {
					for mb := 0; mb < nMicro; mb++ {
						// ---- forward ----
						if pp > 0 {
							ops = append(ops, lop{kind: opRecv, stream: streamPP, name: "pp_recv_fwd",
								bytes: actBytes, comm: ppComm(dp, tp), peer: pp - 1})
						}
						for l := 0; l < layersPerStage; l++ {
							ops = append(ops, lop{kind: opComp, stream: streamCompute, name: "fwd_layer",
								durNs: int64(float64(fwdNsLayer) * jit)})
							if par.TP > 1 {
								// Megatron: two allreduces per layer forward
								for k := 0; k < 2; k++ {
									ops = append(ops, lop{kind: opColl, stream: streamCompute, name: "tp_allreduce_fwd",
										coll: nsys.CollAllReduce, bytes: actBytes, comm: tpComm(dp, pp)})
								}
							}
							if m.Experts > 0 {
								// MoE dispatch + combine over the EP group
								epBytes := actBytes
								if par.EP > 1 {
									for k := 0; k < 2; k++ {
										ops = append(ops, lop{kind: opColl, stream: streamCompute, name: "ep_alltoall_fwd",
											coll: nsys.CollAllToAll, bytes: epBytes / int64(par.EP), comm: epComm(dp, pp, tp)})
									}
								}
							}
						}
						if pp < par.PP-1 {
							ops = append(ops, lop{kind: opSend, stream: streamPP, name: "pp_send_fwd",
								bytes: actBytes, comm: ppComm(dp, tp), peer: pp + 1})
						}
						// ---- backward ----
						if pp < par.PP-1 {
							ops = append(ops, lop{kind: opRecv, stream: streamPP, name: "pp_recv_bwd",
								bytes: actBytes, comm: ppComm(dp, tp), peer: pp + 1})
						}
						for l := 0; l < layersPerStage; l++ {
							ops = append(ops, lop{kind: opComp, stream: streamCompute, name: "bwd_layer",
								durNs: int64(2 * float64(fwdNsLayer) * jit)})
							if par.TP > 1 {
								for k := 0; k < 2; k++ {
									ops = append(ops, lop{kind: opColl, stream: streamCompute, name: "tp_allreduce_bwd",
										coll: nsys.CollAllReduce, bytes: actBytes, comm: tpComm(dp, pp)})
								}
							}
							if m.Experts > 0 && par.EP > 1 {
								for k := 0; k < 2; k++ {
									ops = append(ops, lop{kind: opColl, stream: streamCompute, name: "ep_alltoall_bwd",
										coll: nsys.CollAllToAll, bytes: actBytes / int64(par.EP), comm: epComm(dp, pp, tp)})
								}
							}
						}
						if pp > 0 {
							ops = append(ops, lop{kind: opSend, stream: streamPP, name: "pp_send_bwd",
								bytes: actBytes, comm: ppComm(dp, tp), peer: pp - 1})
						}
					}
					// ---- gradient sync + optimiser ----
					if par.DP > 1 {
						ops = append(ops, lop{kind: opColl, stream: streamCompute, name: "dp_grad_allreduce",
							coll: nsys.CollAllReduce, bytes: gradBytes, comm: dpComm(pp, tp)})
					}
					ops = append(ops, lop{kind: opComp, stream: streamCompute, name: "optimizer_step",
						durNs: int64(float64(fwdNsLayer) * float64(layersPerStage) / 4)})
				}
				p.ops[g] = ops
			}
		}
	}
	return p, nil
}

// buildDLRM emits the recommendation-model structure: embedding all-to-all,
// dense MLP compute, gradient allreduce.
func buildDLRM(p *program, rng *xrand.RNG) {
	cfg := p.cfg
	scale := func(v float64) int64 {
		s := int64(v * cfg.Scale)
		if s < 1 && v > 0 {
			s = 1
		}
		return s
	}
	embBytes := scale(float64(int64(cfg.Par.GlobalBatch) * int64(cfg.Model.Hidden) * cfg.BytesPerElt))
	gradBytes := scale(cfg.Model.ParamsB * 1e9 * float64(cfg.BytesPerElt) / 8)
	compNs := int64(1_500_000 * cfg.Scale)
	if compNs < 1000 {
		compNs = 1000
	}
	for g := 0; g < p.ngpus; g++ {
		var ops []lop
		jit := 1 + 0.02*rng.Float64()
		for it := 0; it < cfg.Iterations; it++ {
			ops = append(ops,
				lop{kind: opComp, stream: streamCompute, name: "embedding_lookup", durNs: int64(float64(compNs) * jit / 4)},
				lop{kind: opColl, stream: streamCompute, name: "emb_alltoall", coll: nsys.CollAllToAll, bytes: embBytes / int64(p.ngpus), comm: "world"},
				lop{kind: opComp, stream: streamCompute, name: "mlp_fwd", durNs: int64(float64(compNs) * jit)},
				lop{kind: opComp, stream: streamCompute, name: "mlp_bwd", durNs: int64(2 * float64(compNs) * jit)},
				lop{kind: opColl, stream: streamCompute, name: "emb_alltoall_bwd", coll: nsys.CollAllToAll, bytes: embBytes / int64(p.ngpus), comm: "world"},
				lop{kind: opColl, stream: streamCompute, name: "dp_grad_allreduce", coll: nsys.CollAllReduce, bytes: gradBytes, comm: "world"},
			)
		}
		p.ops[g] = ops
	}
}
