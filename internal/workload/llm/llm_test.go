package llm

import (
	"strings"
	"testing"

	"atlahs/internal/astra"
	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/sched"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/nsys"
)

// paper Fig 8 configurations (scaled byte counts for test speed)
func fig8Configs() []Config {
	return []Config{
		{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 1, DP: 16, EP: 1, GlobalBatch: 32}, Scale: 1e-3, Seed: 1},
		{Model: Llama70B(), Par: Parallelism{TP: 1, PP: 8, DP: 4, EP: 1, GlobalBatch: 32}, Scale: 1e-3, Seed: 2},
		{Model: Mistral8x7B(), Par: Parallelism{TP: 1, PP: 8, DP: 8, EP: 1, GlobalBatch: 32}, Scale: 1e-3, Seed: 3},
		{Model: MoE8x13B(), Par: Parallelism{TP: 4, PP: 4, DP: 8, EP: 4, GlobalBatch: 128}, Scale: 1e-4, Seed: 4},
	}
}

func TestValidate(t *testing.T) {
	good := Config{Model: Llama7B(), Par: Parallelism{TP: 2, PP: 2, DP: 2, EP: 1, GlobalBatch: 8}}
	if err := good.withDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Model: Llama7B(), Par: Parallelism{TP: 0, PP: 1, DP: 1, EP: 1, GlobalBatch: 4}},
		{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 3, DP: 1, EP: 1, GlobalBatch: 4}},  // 32 % 3 != 0
		{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 1, DP: 4, EP: 3, GlobalBatch: 16}}, // EP !| DP
		{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 1, DP: 4, EP: 2, GlobalBatch: 16}}, // EP>1 on dense
		{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 1, DP: 16, EP: 1, GlobalBatch: 2}}, // batch < DP
	}
	for i, cfg := range bad {
		if err := cfg.withDefaults().Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateNsysValid(t *testing.T) {
	for _, cfg := range fig8Configs() {
		rep, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Model.Name, err)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Model.Name, err)
		}
		if rep.NGPUs != cfg.Par.GPUs() {
			t.Fatalf("%s: gpus %d, want %d", cfg.Model.Name, rep.NGPUs, cfg.Par.GPUs())
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	cfg := Config{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 2, DP: 2, EP: 1, GlobalBatch: 8}, Scale: 1e-3, Seed: 5}
	rep, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Fatal("zero runtime")
	}
}

func TestStructureDenseDP(t *testing.T) {
	cfg := Config{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 1, DP: 4, EP: 1, GlobalBatch: 8}, Scale: 1e-3}
	rep, _ := Generate(cfg)
	// pure DP: only world allreduces, no p2p
	for i := range rep.Records {
		r := &rep.Records[i]
		if r.Kind != nsys.KindNCCL {
			continue
		}
		if r.Coll == nsys.CollSend || r.Coll == nsys.CollRecv {
			t.Fatal("pure DP workload has P2P records")
		}
		if r.Comm != "world" {
			t.Fatalf("pure DP collective on %q, want world", r.Comm)
		}
	}
}

func TestStructurePP(t *testing.T) {
	cfg := Config{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 4, DP: 1, EP: 1, GlobalBatch: 4}, Scale: 1e-3}
	rep, _ := Generate(cfg)
	sends, recvs := 0, 0
	for i := range rep.Records {
		switch rep.Records[i].Coll {
		case nsys.CollSend:
			sends++
			if rep.Records[i].Stream != streamPP {
				t.Fatal("PP send not on the PP stream")
			}
		case nsys.CollRecv:
			recvs++
		}
	}
	if sends == 0 || sends != recvs {
		t.Fatalf("PP p2p wrong: %d sends, %d recvs", sends, recvs)
	}
}

func TestStructureMoE(t *testing.T) {
	cfg := Config{Model: Mistral8x7B(), Par: Parallelism{TP: 1, PP: 1, DP: 8, EP: 4, GlobalBatch: 16}, Scale: 1e-3}
	rep, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epA2A := 0
	for i := range rep.Records {
		if rep.Records[i].Coll == nsys.CollAllToAll && strings.HasPrefix(rep.Records[i].Comm, "ep.") {
			epA2A++
		}
	}
	if epA2A == 0 {
		t.Fatal("MoE workload emitted no EP all-to-alls")
	}
	// EP communicators have EP members
	for name, members := range rep.Comms {
		if strings.HasPrefix(name, "ep.") && len(members) != 4 {
			t.Fatalf("EP comm %q has %d members, want 4", name, len(members))
		}
	}
}

func TestChakraDPPassesAstra(t *testing.T) {
	cfg := Config{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 1, DP: 4, EP: 1, GlobalBatch: 8}, Scale: 1e-3}
	tr, err := GenerateChakra(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := astra.Simulate(tr, astra.Config{}); err != nil {
		t.Fatalf("pure-DP chakra trace must run on astra-lite: %v", err)
	}
}

func TestChakraPPFailsAstra(t *testing.T) {
	// the paper's observation: AstraSim only executed the two pure-DP
	// configs; PP/TP/EP configurations fail in the real-trace feeder
	cfg := Config{Model: Llama70B(), Par: Parallelism{TP: 1, PP: 8, DP: 4, EP: 1, GlobalBatch: 32}, Scale: 1e-3}
	tr, err := GenerateChakra(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := astra.Simulate(tr, astra.Config{}); err == nil {
		t.Fatal("PP chakra trace should fail on astra-lite")
	}
	cfgTP := Config{Model: MoE8x13B(), Par: Parallelism{TP: 4, PP: 4, DP: 8, EP: 4, GlobalBatch: 128}, Scale: 1e-4}
	trTP, err := GenerateChakra(cfgTP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := astra.Simulate(trTP, astra.Config{}); err == nil {
		t.Fatal("TP/EP chakra trace should fail on astra-lite")
	}
}

func TestDLRM(t *testing.T) {
	cfg := Config{Model: DLRMModel(), Par: Parallelism{TP: 1, PP: 1, DP: 4, EP: 1, GlobalBatch: 8}, Scale: 1e-2}
	rep, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2a := 0
	for i := range rep.Records {
		if rep.Records[i].Coll == nsys.CollAllToAll {
			a2a++
		}
	}
	if a2a == 0 {
		t.Fatal("DLRM has no embedding all-to-alls")
	}
	s, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleShrinksBytes(t *testing.T) {
	big := Config{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 1, DP: 4, EP: 1, GlobalBatch: 8}, Scale: 1}
	small := big
	small.Scale = 1e-3
	rb, _ := Generate(big)
	rs, _ := Generate(small)
	sb := Summarize(rb, 1)
	ss := Summarize(rs, 1)
	if ss.CollBytes >= sb.CollBytes {
		t.Fatalf("scale did not shrink collective bytes: %d vs %d", ss.CollBytes, sb.CollBytes)
	}
}

func TestSummarize(t *testing.T) {
	cfg := Config{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 2, DP: 2, EP: 1, GlobalBatch: 8}, Scale: 1e-3}
	rep, _ := Generate(cfg)
	s := Summarize(rep, 1)
	if s.GPUs != 4 || s.Records == 0 || s.ComputeNs == 0 || s.CollBytes == 0 || s.P2PBytes == 0 {
		t.Fatalf("summary incomplete: %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Model: Llama7B(), Par: Parallelism{TP: 1, PP: 2, DP: 2, EP: 1, GlobalBatch: 8}, Scale: 1e-3, Seed: 9}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a.Records) != len(b.Records) {
		t.Fatal("not deterministic")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("records differ for same seed")
		}
	}
}
