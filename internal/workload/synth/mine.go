// Package synth mines statistical workload models from resolved GOAL
// schedules and samples them back into schedules at arbitrary rank counts
// (ROADMAP direction 4; the counts/patterns analysis collective_profiler
// performs on Alltoallv profiles, generalised to whole GOAL DAGs).
//
// Mine walks a schedule once and summarises it as a results.WorkloadModel
// (schema atlahs.model/v1): per-rank send-count and compute distributions,
// the global send-size mix split into traffic classes with spatial
// destination-offset histograms, and the dependency-depth profile that
// fixes the generated phase structure. Generate samples a model into a
// bulk-synchronous schedule at a requested rank count, deterministically
// for a given (model, ranks, seed) — the same triple always yields
// bit-identical schedules, which is what lets the service's
// content-addressed run cache answer repeated synthetic submissions.
package synth

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"atlahs/internal/goal"
	"atlahs/results"
)

// exactBucketLimit is the distinct-value count up to which histograms keep
// one degenerate bucket per value instead of power-of-two ranges.
const exactBucketLimit = 64

// exactClassLimit is the distinct-size count up to which sends form one
// traffic class per exact message size.
const exactClassLimit = 16

// maxPhases caps the superstep count derived from the depth profile so a
// pathologically serial source schedule cannot explode generation cost.
const maxPhases = 1024

// Mine extracts a statistical workload model from a resolved schedule.
// The comment is stored as provenance. Mining an empty schedule (no ranks
// or no ops) is an error: there is nothing to model.
func Mine(s *goal.Schedule, comment string) (*results.WorkloadModel, error) {
	n := s.NumRanks()
	if n == 0 {
		return nil, fmt.Errorf("synth: cannot mine a schedule with no ranks")
	}
	var (
		calcs      []int64 // per-op calc durations
		sizes      []int64 // per-send sizes
		calcByRank = make([]int64, n)
		sendByRank = make([]int64, n)
		totalOps   int64
		totalBytes int64
		totalCalc  int64
	)
	type classSample struct {
		size int64
		off  int64 // (dst-src+n) % n, in [1, n)
	}
	var samples []classSample
	for r := range s.Ranks {
		rp := &s.Ranks[r]
		totalOps += int64(len(rp.Ops))
		for i := range rp.Ops {
			op := &rp.Ops[i]
			switch op.Kind {
			case goal.KindCalc:
				calcs = append(calcs, op.Size)
				calcByRank[r] += op.Size
				totalCalc += op.Size
			case goal.KindSend:
				sizes = append(sizes, op.Size)
				sendByRank[r]++
				totalBytes += op.Size
				off := (int64(op.Peer) - int64(r) + int64(n)) % int64(n)
				samples = append(samples, classSample{size: op.Size, off: off})
			}
		}
	}
	if totalOps == 0 {
		return nil, fmt.Errorf("synth: cannot mine a schedule with no ops")
	}

	depthMean, depthMax := depthProfile(s)
	phases := int(math.Round(depthMean)) - 1
	if phases < 1 {
		phases = 1
	}
	if phases > maxPhases {
		phases = maxPhases
	}

	m := &results.WorkloadModel{
		Comment:       comment,
		SourceRanks:   n,
		SourceOps:     totalOps,
		DepthMean:     depthMean,
		DepthMax:      depthMax,
		Phases:        phases,
		Calc:          mineDist(calcs),
		CalcNsPerRank: mineDist(calcByRank),
		SendsPerRank:  mineDist(sendByRank),
		Sizes:         mineDist(sizes),
	}
	if totalBytes > 0 {
		m.CalcCommRatio = float64(totalCalc) / float64(totalBytes)
	}

	// Traffic classes: group sends by exact size while the size mix is
	// small, by power-of-two size class otherwise. Class keys sort so the
	// model encoding is canonical regardless of op order.
	if len(samples) > 0 {
		distinct := map[int64]struct{}{}
		for _, sm := range samples {
			distinct[sm.size] = struct{}{}
		}
		exact := len(distinct) <= exactClassLimit
		classKey := func(size int64) int64 {
			if exact {
				return size
			}
			return int64(log2Class(size))
		}
		groups := map[int64][]classSample{}
		for _, sm := range samples {
			k := classKey(sm.size)
			groups[k] = append(groups[k], sm)
		}
		keys := make([]int64, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			grp := groups[k]
			cls := results.TrafficClass{
				Count:   int64(len(grp)),
				Offsets: make([]int64, results.ModelOffsetBins),
			}
			szs := make([]int64, len(grp))
			for i, sm := range grp {
				szs[i] = sm.size
				cls.Offsets[offsetBin(sm.off, n)]++
			}
			cls.Sizes = mineDist(szs)
			m.Classes = append(m.Classes, cls)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: mined model invalid: %w", err)
	}
	return m, nil
}

// offsetBin folds a rank offset in [0, n) into one of ModelOffsetBins
// equal-width bins, so the spatial shape survives rescaling.
func offsetBin(off int64, n int) int {
	b := int(off * int64(results.ModelOffsetBins) / int64(n))
	if b >= results.ModelOffsetBins {
		b = results.ModelOffsetBins - 1
	}
	return b
}

// log2Class maps a non-negative value to its power-of-two class (0 maps to
// class 0 alongside 1).
func log2Class(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// depthProfile computes each rank's critical path length in ops (longest
// requires/irequires chain, via Kahn's algorithm) and returns the mean and
// max across ranks. Empty ranks count depth 0.
func depthProfile(s *goal.Schedule) (mean float64, max int) {
	var sum float64
	for r := range s.Ranks {
		d := rankDepth(&s.Ranks[r])
		sum += float64(d)
		if d > max {
			max = d
		}
	}
	if n := s.NumRanks(); n > 0 {
		mean = sum / float64(n)
	}
	return mean, max
}

// rankDepth returns the longest dependency chain of one rank program,
// measured in ops.
func rankDepth(rp *goal.RankProgram) int {
	n := len(rp.Ops)
	if n == 0 {
		return 0
	}
	indeg := make([]int32, n)
	succ := make([][]int32, n)
	for i := 0; i < n; i++ {
		for _, d := range rp.Requires[i] {
			succ[d] = append(succ[d], int32(i))
			indeg[i]++
		}
		for _, d := range rp.IRequires[i] {
			succ[d] = append(succ[d], int32(i))
			indeg[i]++
		}
	}
	depth := make([]int32, n)
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			depth[i] = 1
			queue = append(queue, int32(i))
		}
	}
	var best int32
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if depth[v] > best {
			best = depth[v]
		}
		for _, w := range succ[v] {
			if d := depth[v] + 1; d > depth[w] {
				depth[w] = d
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return int(best)
}

// mineDist summarises one sample set as a Dist: moments plus a histogram
// with exact-value buckets for small supports and power-of-two buckets
// (bounded by each class's actual min/max) for large ones.
func mineDist(values []int64) results.Dist {
	d := results.Dist{Count: int64(len(values))}
	if len(values) == 0 {
		return d
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d.Min, d.Max = sorted[0], sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	d.Mean = sum / float64(len(sorted))
	var sq float64
	for _, v := range sorted {
		dv := float64(v) - d.Mean
		sq += dv * dv
	}
	d.Std = math.Sqrt(sq / float64(len(sorted)))

	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	if distinct <= exactBucketLimit {
		// One degenerate bucket per distinct value.
		for i := 0; i < len(sorted); {
			j := i
			for j < len(sorted) && sorted[j] == sorted[i] {
				j++
			}
			d.Hist = append(d.Hist, results.Bucket{Lo: sorted[i], Hi: sorted[i], N: int64(j - i)})
			i = j
		}
		return d
	}
	// Power-of-two classes, with each bucket bounded by the actual values
	// it holds so buckets stay tight, ordered and non-overlapping.
	for i := 0; i < len(sorted); {
		c := log2Class(sorted[i])
		j := i
		for j < len(sorted) && log2Class(sorted[j]) == c {
			j++
		}
		d.Hist = append(d.Hist, results.Bucket{Lo: sorted[i], Hi: sorted[j-1], N: int64(j - i)})
		i = j
	}
	return d
}
