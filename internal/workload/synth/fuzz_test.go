package synth

import (
	"bytes"
	"reflect"
	"testing"

	"atlahs/internal/goal"
	"atlahs/internal/workload/micro"
	"atlahs/results"
)

// FuzzModelRoundTrip feeds arbitrary bytes through the atlahs.model/v1
// codec: anything that decodes must re-encode canonically and survive a
// second decode unchanged. Seeds cover every op-kind mix the micro
// generators produce (pure comm, comm+calc, skewed fan-in).
func FuzzModelRoundTrip(f *testing.F) {
	for _, s := range []*goal.Schedule{
		micro.Ring(8, 4096),
		micro.AllToAll(8, 1<<20),
		micro.Incast(8, 7, 65536),
		micro.Permutation(8, 512, 3),
		micro.UniformRandom(8, 100, 2048, 5),
		micro.BulkSynchronous(8, 4, 8192, 1500),
	} {
		m, err := Mine(s, "seed")
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := results.EncodeModelJSON(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := results.DecodeModelBytes(data)
		if err != nil {
			return // invalid input is allowed to be rejected
		}
		var enc bytes.Buffer
		if err := results.EncodeModelJSON(&enc, m); err != nil {
			t.Fatalf("decoded model does not re-encode: %v", err)
		}
		m2, err := results.DecodeModelBytes(enc.Bytes())
		if err != nil {
			t.Fatalf("encoded model does not re-decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed the model:\n%+v\nvs\n%+v", m, m2)
		}
		var enc2 bytes.Buffer
		if err := results.EncodeModelJSON(&enc2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatal("re-encoding is not canonical")
		}
	})
}
