package synth

import (
	"fmt"

	"atlahs/internal/goal"
	"atlahs/internal/xrand"
	"atlahs/results"
)

// maxGenRanks bounds the requested rank count (the issue's 100k target
// with headroom); generation is O(ranks x sends-per-rank).
const maxGenRanks = 1 << 20

// maxSendsPerPhase bounds a rank's sends within one phase so per-phase
// send indices fit the 16-bit tag field.
const maxSendsPerPhase = 1 << 16

// Generate samples a mined model back into a GOAL schedule with the given
// rank count. ranks <= 0 means the model's SourceRanks. The output is a
// bulk-synchronous unrolling of the model's phase profile: each phase is
// an anchor calc (skipped while the phase's compute share is zero, so
// pure-communication models reproduce their op mix), the phase's sends
// gated on the anchor, and the matching receives feeding the destination's
// next anchor. Destination offsets are sampled from each traffic class's
// offset histogram and scale proportionally — a neighbour exchange mined
// at 8 ranks stays a neighbour exchange at 8192.
//
// Generation is deterministic: the same (model, ranks, seed) triple always
// yields a bit-identical schedule, independent of host and process. Every
// rank draws from its own seed-derived stream, so schedules at different
// rank counts share per-rank statistics rather than a global sample order.
func Generate(m *results.WorkloadModel, ranks int, seed uint64) (*goal.Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generate: %w", err)
	}
	if ranks <= 0 {
		ranks = m.SourceRanks
	}
	if ranks > maxGenRanks {
		return nil, fmt.Errorf("synth: generate: %d ranks exceeds the %d limit", ranks, maxGenRanks)
	}
	if m.Sizes.Count > 0 && ranks < 2 {
		return nil, fmt.Errorf("synth: generate: model has sends but only %d rank(s) requested", ranks)
	}
	phases := m.Phases

	// Pass 1: sample every rank's plan — per-phase compute shares and send
	// lists — from that rank's own deterministic stream.
	type send struct {
		size int64
		dst  int
	}
	type rankPlan struct {
		calc  []int64  // per-phase anchor compute (ns)
		sends [][]send // per-phase sends
	}
	plans := make([]rankPlan, ranks)
	// recvsAt[r][p] holds the messages rank r must receive in phase p,
	// in deterministic (source rank, send index) order.
	type recv struct {
		size int64
		src  int
		tag  int32
	}
	recvsAt := make([][][]recv, ranks)
	for r := range recvsAt {
		recvsAt[r] = make([][]recv, phases)
	}
	for r := 0; r < ranks; r++ {
		rng := xrand.New(xrand.Hash64(seed) ^ xrand.Hash64(uint64(r)+0x9e3779b97f4a7c15))
		nSends := sampleDist(rng, &m.SendsPerRank)
		if nSends < 0 {
			nSends = 0
		}
		if lim := int64(phases) * (maxSendsPerPhase - 1); nSends > lim {
			nSends = lim
		}
		calcTotal := sampleDist(rng, &m.CalcNsPerRank)
		if calcTotal < 0 {
			calcTotal = 0
		}
		plan := rankPlan{calc: make([]int64, phases), sends: make([][]send, phases)}
		for p := 0; p < phases; p++ {
			plan.calc[p] = calcTotal / int64(phases)
			if int64(p) < calcTotal%int64(phases) {
				plan.calc[p]++
			}
			quota := nSends / int64(phases)
			if int64(p) < nSends%int64(phases) {
				quota++
			}
			for i := int64(0); i < quota; i++ {
				cls := sampleClass(rng, m)
				size := sampleDist(rng, &cls.Sizes)
				if size < 0 {
					size = 0
				}
				dst := sampleDst(rng, cls, r, ranks)
				idx := len(plan.sends[p])
				plan.sends[p] = append(plan.sends[p], send{size: size, dst: dst})
				tag := int32(p)<<16 | int32(idx)
				recvsAt[dst][p] = append(recvsAt[dst][p], recv{size: size, src: r, tag: tag})
			}
		}
		plans[r] = plan
	}

	// Pass 2: assemble the schedule phase by phase. A phase's recvs carry
	// no dependencies (posted eagerly, like micro.BulkSynchronous), so
	// send/recv matching can never deadlock across ranks.
	b := goal.NewBuilder(ranks)
	if m.Comment != "" {
		b.SetComment("synth: " + m.Comment)
	} else {
		b.SetComment(fmt.Sprintf("synth: generated from %d-rank model", m.SourceRanks))
	}
	for r := 0; r < ranks; r++ {
		rb := b.Rank(r)
		var barrier []goal.OpID // ops the next phase's anchor waits on
		for p := 0; p < phases; p++ {
			sendDeps := barrier
			var next []goal.OpID
			if plans[r].calc[p] > 0 {
				anchor := rb.Calc(plans[r].calc[p])
				rb.Requires(anchor, barrier...)
				sendDeps = []goal.OpID{anchor}
				next = []goal.OpID{anchor}
			} else {
				next = barrier
			}
			for i, sd := range plans[r].sends[p] {
				id := rb.Send(sd.size, sd.dst, int32(p)<<16|int32(i))
				rb.Requires(id, sendDeps...)
			}
			for _, rc := range recvsAt[r][p] {
				id := rb.Recv(rc.size, rc.src, rc.tag)
				next = append(next, id)
			}
			barrier = next
		}
	}
	s := b.Build()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated schedule invalid: %w", err)
	}
	return s, nil
}

// sampleDist draws one value from a mined distribution: a histogram bucket
// chosen proportionally to its count, then uniform within the bucket.
// Empty distributions sample 0.
func sampleDist(rng *xrand.RNG, d *results.Dist) int64 {
	if d.Count <= 0 || len(d.Hist) == 0 {
		return 0
	}
	pick := rng.Int63n(d.Count)
	for _, bk := range d.Hist {
		if pick < bk.N {
			if bk.Hi == bk.Lo {
				return bk.Lo
			}
			return bk.Lo + rng.Int63n(bk.Hi-bk.Lo+1)
		}
		pick -= bk.N
	}
	return d.Hist[len(d.Hist)-1].Hi
}

// sampleClass picks a traffic class proportionally to its send count.
func sampleClass(rng *xrand.RNG, m *results.WorkloadModel) *results.TrafficClass {
	pick := rng.Int63n(m.Sizes.Count)
	for i := range m.Classes {
		if pick < m.Classes[i].Count {
			return &m.Classes[i]
		}
		pick -= m.Classes[i].Count
	}
	return &m.Classes[len(m.Classes)-1]
}

// sampleDst picks a destination for a send from rank r: an offset bin
// drawn from the class's histogram, then a uniform offset within the
// bin's share of [1, ranks). Offsets are fractions of the rank count, so
// spatial locality scales with the schedule.
func sampleDst(rng *xrand.RNG, cls *results.TrafficClass, r, ranks int) int {
	pick := rng.Int63n(cls.Count)
	bin := results.ModelOffsetBins - 1
	for i, n := range cls.Offsets {
		if pick < n {
			bin = i
			break
		}
		pick -= n
	}
	// Invert offsetBin: offsets off with off*Bins/ranks == bin span
	// [ceil(bin*ranks/Bins), ceil((bin+1)*ranks/Bins)-1].
	lo := (int64(bin)*int64(ranks) + results.ModelOffsetBins - 1) / results.ModelOffsetBins
	hi := (int64(bin+1)*int64(ranks)+results.ModelOffsetBins-1)/results.ModelOffsetBins - 1
	if lo < 1 {
		lo = 1
	}
	if hi > int64(ranks-1) {
		hi = int64(ranks - 1)
	}
	var off int64
	if lo > hi {
		// The bin is empty at this rank count (fewer ranks than bins);
		// fall back to a uniform non-self offset.
		off = 1 + rng.Int63n(int64(ranks-1))
	} else {
		off = lo + rng.Int63n(hi-lo+1)
	}
	return int((int64(r) + off) % int64(ranks))
}
