package synth

import (
	"bytes"
	"testing"

	"atlahs/internal/goal"
	"atlahs/internal/workload/micro"
	"atlahs/results"
)

func TestMineRejectsEmpty(t *testing.T) {
	if _, err := Mine(&goal.Schedule{}, ""); err == nil {
		t.Fatal("Mine accepted a schedule with no ranks")
	}
	empty := &goal.Schedule{Ranks: make([]goal.RankProgram, 4)}
	if _, err := Mine(empty, ""); err == nil {
		t.Fatal("Mine accepted a schedule with no ops")
	}
}

func TestMineStatistics(t *testing.T) {
	s := micro.AllToAll(8, 4096)
	m, err := Mine(s, "alltoall-8")
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceRanks != 8 {
		t.Fatalf("SourceRanks = %d, want 8", m.SourceRanks)
	}
	st := s.ComputeStats()
	if m.SourceOps != st.Ops {
		t.Fatalf("SourceOps = %d, want %d", m.SourceOps, st.Ops)
	}
	if m.Sizes.Count != st.Sends {
		t.Fatalf("Sizes.Count = %d, want %d sends", m.Sizes.Count, st.Sends)
	}
	if m.Sizes.Min != 4096 || m.Sizes.Max != 4096 {
		t.Fatalf("size bounds [%d,%d], want [4096,4096]", m.Sizes.Min, m.Sizes.Max)
	}
	// Each rank sends to 7 peers.
	if m.SendsPerRank.Min != 7 || m.SendsPerRank.Max != 7 {
		t.Fatalf("sends/rank [%d,%d], want [7,7]", m.SendsPerRank.Min, m.SendsPerRank.Max)
	}
	if len(m.Classes) != 1 {
		t.Fatalf("%d traffic classes, want 1", len(m.Classes))
	}
	if m.Comment != "alltoall-8" {
		t.Fatalf("Comment = %q", m.Comment)
	}
}

func TestMineDepthProfile(t *testing.T) {
	// BSP with P phases has per-rank critical path anchor_1..anchor_P plus
	// a trailing send: depth P+1, so Phases should mine back to ~P.
	s := micro.BulkSynchronous(4, 6, 1024, 500)
	m, err := Mine(s, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.DepthMax < 6 {
		t.Fatalf("DepthMax = %d, want >= 6 for a 6-phase BSP", m.DepthMax)
	}
	if m.Phases < 4 || m.Phases > 8 {
		t.Fatalf("Phases = %d, want ~6", m.Phases)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m, err := Mine(micro.BulkSynchronous(8, 3, 2048, 700), "bsp")
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{8, 64, 1024} {
		a, err := Generate(m, ranks, 42)
		if err != nil {
			t.Fatalf("ranks %d: %v", ranks, err)
		}
		bsched, err := Generate(m, ranks, 42)
		if err != nil {
			t.Fatalf("ranks %d: %v", ranks, err)
		}
		var ab, bb bytes.Buffer
		if err := goal.WriteBinary(&ab, a); err != nil {
			t.Fatal(err)
		}
		if err := goal.WriteBinary(&bb, bsched); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Fatalf("ranks %d: same (model, ranks, seed) produced different schedules", ranks)
		}
		other, err := Generate(m, ranks, 43)
		if err != nil {
			t.Fatal(err)
		}
		var ob bytes.Buffer
		if err := goal.WriteBinary(&ob, other); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(ab.Bytes(), ob.Bytes()) {
			t.Fatalf("ranks %d: different seeds produced identical schedules", ranks)
		}
	}
}

func TestGenerateValidAndMatched(t *testing.T) {
	for _, src := range []struct {
		name string
		s    *goal.Schedule
	}{
		{"alltoall", micro.AllToAll(8, 65536)},
		{"ring", micro.Ring(8, 1<<20)},
		{"bsp", micro.BulkSynchronous(8, 4, 4096, 1000)},
		{"uniform", micro.UniformRandom(8, 200, 512, 7)},
	} {
		t.Run(src.name, func(t *testing.T) {
			m, err := Mine(src.s, src.name)
			if err != nil {
				t.Fatal(err)
			}
			for _, ranks := range []int{8, 64, 1024} {
				g, err := Generate(m, ranks, 1)
				if err != nil {
					t.Fatalf("ranks %d: %v", ranks, err)
				}
				if g.NumRanks() != ranks {
					t.Fatalf("generated %d ranks, want %d", g.NumRanks(), ranks)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("ranks %d: %v", ranks, err)
				}
				if err := g.CheckMatched(); err != nil {
					t.Fatalf("ranks %d: %v", ranks, err)
				}
				if g.ComputeStats().Ops == 0 {
					t.Fatalf("ranks %d: generated an empty schedule", ranks)
				}
			}
		})
	}
}

func TestGenerateFidelity(t *testing.T) {
	// Per-rank statistics of the generated schedule should track the
	// model: identical message size (single class), comparable per-rank
	// send counts, comparable per-rank compute.
	src := micro.BulkSynchronous(8, 4, 8192, 1000)
	m, err := Mine(src, "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(m, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	if st.Sends == 0 || st.Calcs == 0 {
		t.Fatalf("generated stats %+v, want sends and calcs", st)
	}
	if got := st.SendBytes / st.Sends; got != 8192 {
		t.Fatalf("mean send size %d, want 8192", got)
	}
	srcStats := src.ComputeStats()
	wantSendsPerRank := float64(srcStats.Sends) / float64(srcStats.Ranks)
	gotSendsPerRank := float64(st.Sends) / float64(st.Ranks)
	if gotSendsPerRank < wantSendsPerRank*0.9 || gotSendsPerRank > wantSendsPerRank*1.1 {
		t.Fatalf("sends/rank %.1f, want ~%.1f", gotSendsPerRank, wantSendsPerRank)
	}
	wantCalc := float64(srcStats.CalcNanos) / float64(srcStats.Ranks)
	gotCalc := float64(st.CalcNanos) / float64(st.Ranks)
	if gotCalc < wantCalc*0.9 || gotCalc > wantCalc*1.1 {
		t.Fatalf("calc/rank %.0f ns, want ~%.0f ns", gotCalc, wantCalc)
	}
}

func TestGenerateOffsetsScale(t *testing.T) {
	// A ring (offset +1 at 8 ranks, bin 4 of 32) must stay local when
	// scaled up: at 1024 ranks bin 4 spans offsets [128,159], i.e. the
	// nearest eighth of the machine, not uniform traffic.
	m, err := Mine(micro.Ring(8, 4096), "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(m, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := range g.Ranks {
		for _, op := range g.Ranks[r].Ops {
			if op.Kind != goal.KindSend {
				continue
			}
			off := (int64(op.Peer) - int64(r) + 1024) % 1024
			if off < 128 || off > 159 {
				t.Fatalf("rank %d sends at offset %d, want [128,159] (scaled ring bin)", r, off)
			}
		}
	}
}

func TestGeneratePureComm(t *testing.T) {
	// A model with no compute must generate no calc ops (op-mix fidelity).
	m, err := Mine(micro.AllToAll(8, 1024), "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(m, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st := g.ComputeStats(); st.Calcs != 0 {
		t.Fatalf("pure-comm model generated %d calc ops", st.Calcs)
	}
}

func TestGenerateRejects(t *testing.T) {
	m, err := Mine(micro.Ring(8, 64), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(m, 1, 1); err == nil {
		t.Fatal("Generate accepted 1 rank for a model with sends")
	}
	if _, err := Generate(m, maxGenRanks+1, 1); err == nil {
		t.Fatal("Generate accepted an out-of-range rank count")
	}
	if _, err := Generate(&results.WorkloadModel{}, 8, 1); err == nil {
		t.Fatal("Generate accepted an invalid model")
	}
}

func TestGenerateDefaultRanks(t *testing.T) {
	m, err := Mine(micro.Ring(8, 64), "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRanks() != 8 {
		t.Fatalf("default ranks = %d, want the model's 8", g.NumRanks())
	}
}
