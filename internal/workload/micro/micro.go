// Package micro generates the synthetic microbenchmarks networking papers
// conventionally evaluate with (incast, permutation; paper §1 and Fig 1C).
// ATLAHS argues these under-represent real workloads — the Fig 1C
// experiment contrasts them against replayed LLM training traffic, so the
// toolchain ships both.
package micro

import (
	"atlahs/internal/goal"
	"atlahs/internal/xrand"
)

// Incast builds a schedule where fanin senders each transmit bytes to rank
// 0 simultaneously (the canonical congestion microbenchmark).
func Incast(n, fanin int, bytes int64) *goal.Schedule {
	if fanin >= n {
		fanin = n - 1
	}
	b := goal.NewBuilder(n)
	for s := 1; s <= fanin; s++ {
		b.Rank(s).Send(bytes, 0, int32(s))
		b.Rank(0).Recv(bytes, s, int32(s))
	}
	return b.MustBuild()
}

// Permutation builds a random one-to-one traffic pattern: every rank sends
// bytes to a unique destination (a seeded derangement).
func Permutation(n int, bytes int64, seed uint64) *goal.Schedule {
	rng := xrand.New(seed)
	perm := rng.Perm(n)
	// make it a derangement so nobody sends to itself
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	b := goal.NewBuilder(n)
	for src, dst := range perm {
		b.Rank(src).Send(bytes, dst, 0)
		b.Rank(dst).Recv(bytes, src, 0)
	}
	return b.MustBuild()
}

// Ring builds a neighbour ring: rank i sends to i+1 and receives from i-1.
func Ring(n int, bytes int64) *goal.Schedule {
	b := goal.NewBuilder(n)
	for r := 0; r < n; r++ {
		b.Rank(r).Send(bytes, (r+1)%n, 0)
		b.Rank(r).Recv(bytes, (r+n-1)%n, 0)
	}
	return b.MustBuild()
}

// AllToAll builds a full exchange: every rank sends bytes to every other
// rank, all flows released at once.
func AllToAll(n int, bytes int64) *goal.Schedule {
	b := goal.NewBuilder(n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			b.Rank(src).Send(bytes, dst, int32(src))
			b.Rank(dst).Recv(bytes, src, int32(src))
		}
	}
	return b.MustBuild()
}

// UniformRandom builds msgs random point-to-point messages with
// exponential think time between a rank's consecutive sends.
func UniformRandom(n, msgs int, bytes int64, seed uint64) *goal.Schedule {
	rng := xrand.New(seed)
	b := goal.NewBuilder(n)
	heads := make([]goal.OpID, n)
	for i := range heads {
		heads[i] = -1
	}
	for m := 0; m < msgs; m++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		tag := int32(m)
		rb := b.Rank(src)
		gap := rb.Calc(rng.Int63n(10_000))
		if heads[src] >= 0 {
			rb.Requires(gap, heads[src])
		}
		s := rb.Send(bytes, dst, tag)
		rb.Requires(s, gap)
		heads[src] = s
		b.Rank(dst).Recv(bytes, src, tag)
	}
	return b.MustBuild()
}

// BulkSynchronous builds a BSP-style workload: `phases` rounds in which
// every rank computes for calcNanos, then exchanges bytes with every other
// rank (a full all-to-all), with each rank's round depending on its
// previous round completing. The pattern keeps every rank busy in every
// lookahead window, which makes it the reference workload for the parallel
// engine's determinism tests and serial-vs-parallel benchmarks.
func BulkSynchronous(n, phases int, bytes int64, calcNanos int64) *goal.Schedule {
	b := goal.NewBuilder(n)
	prev := make([][]goal.OpID, n)
	for p := 0; p < phases; p++ {
		next := make([][]goal.OpID, n)
		for r := 0; r < n; r++ {
			rb := b.Rank(r)
			c := rb.Calc(calcNanos)
			rb.Requires(c, prev[r]...)
			for d := 0; d < n; d++ {
				if d == r {
					continue
				}
				tag := int32(p*n + r)
				s := rb.Send(bytes, d, tag)
				rb.Requires(s, c)
				rv := b.Rank(d).Recv(bytes, r, tag)
				next[d] = append(next[d], rv)
			}
			next[r] = append(next[r], c)
		}
		prev = next
	}
	return b.MustBuild()
}
