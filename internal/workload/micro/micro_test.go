package micro

import (
	"testing"
	"testing/quick"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
)

func runsOnLGS(t *testing.T, s *goal.Schedule) {
	t.Helper()
	if err := s.CheckMatched(); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestIncast(t *testing.T) {
	s := Incast(9, 8, 1<<20)
	st := s.ComputeStats()
	if st.Sends != 8 || st.Recvs != 8 {
		t.Fatalf("stats %+v", st)
	}
	// all messages target rank 0
	for r := 1; r < 9; r++ {
		for i := range s.Ranks[r].Ops {
			if op := s.Ranks[r].Ops[i]; op.Kind == goal.KindSend && op.Peer != 0 {
				t.Fatal("incast send not to rank 0")
			}
		}
	}
	runsOnLGS(t, s)
	// fanin clamps
	if st := Incast(4, 10, 8).ComputeStats(); st.Sends != 3 {
		t.Fatalf("fanin not clamped: %+v", st)
	}
}

func TestPermutationIsDerangement(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%30) + 2
		s := Permutation(m, 4096, seed)
		if s.CheckMatched() != nil {
			return false
		}
		st := s.ComputeStats()
		if st.Sends != int64(m) || st.Recvs != int64(m) {
			return false
		}
		// each rank sends exactly once, never to itself (validated by
		// goal.Validate inside MustBuild), and each rank receives once
		for r := 0; r < m; r++ {
			sends, recvs := 0, 0
			for i := range s.Ranks[r].Ops {
				switch s.Ranks[r].Ops[i].Kind {
				case goal.KindSend:
					sends++
				case goal.KindRecv:
					recvs++
				}
			}
			if sends != 1 || recvs != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := Permutation(16, 100, 7)
	b := Permutation(16, 100, 7)
	for r := range a.Ranks {
		if a.Ranks[r].Ops[0].Peer != b.Ranks[r].Ops[0].Peer {
			t.Fatal("permutation not deterministic")
		}
	}
}

func TestRing(t *testing.T) {
	s := Ring(6, 512)
	runsOnLGS(t, s)
	if st := s.ComputeStats(); st.Sends != 6 || st.SendBytes != 6*512 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAllToAll(t *testing.T) {
	s := AllToAll(5, 256)
	runsOnLGS(t, s)
	if st := s.ComputeStats(); st.Sends != 20 {
		t.Fatalf("sends=%d, want 20", st.Sends)
	}
}

func TestUniformRandom(t *testing.T) {
	s := UniformRandom(8, 50, 4096, 3)
	runsOnLGS(t, s)
	if st := s.ComputeStats(); st.Sends != 50 {
		t.Fatalf("sends=%d", st.Sends)
	}
}
