// Command benchjson converts `go test -bench` text output (stdin) into a
// small JSON document mapping benchmark name to ns/op, so CI can record
// the performance trajectory as an artifact (BENCH_ci.json) instead of a
// log to eyeball. No external dependencies — the parser is the standard
// benchmark line format:
//
//	BenchmarkName-8   3   123456 ns/op [extra metrics...]
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 3x . | benchjson -out BENCH_ci.json
//
// Names are recorded exactly as printed — including the "-N" GOMAXPROCS
// suffix when present — because the text format cannot distinguish that
// suffix from a sub-benchmark name ending in "-N" (go omits it entirely
// when GOMAXPROCS is 1). Zero parsed benchmarks is an error: it means the
// bench run or the pipe broke, not that performance is fine.
//
// -require takes a comma-separated list of benchmark function names and
// demands that every one produced at least one result line — either the
// bare name or the name followed by a "/sub" case or "-N" suffix. Partial
// output (a benchmark silently skipped, renamed or crashed mid-run while
// earlier ones printed fine) then fails the pipeline instead of quietly
// shrinking the tracked trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLineRE matches one benchmark result line: name, iteration count,
// ns/op. Extra metrics after ns/op are ignored.
var benchLineRE = regexp.MustCompile(`^(Benchmark[^\s]+)\s+(\d+)\s+([0-9.]+) ns/op`)

// report is the BENCH_ci.json layout.
type report struct {
	Schema     string             `json:"schema"`
	Go         string             `json:"go"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	require := flag.String("require", "", "comma-separated benchmark names that must each appear in the output")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := checkRequired(rep, *require); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parse scans bench output and collects name -> ns/op.
func parse(r io.Reader) (*report, error) {
	rep := &report{Schema: "atlahs.bench/v1", Go: runtime.Version(), Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		nsPerOp, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		if _, dup := rep.Benchmarks[m[1]]; dup {
			// A repeated name (e.g. `go test -count 2`) would silently keep
			// one arbitrary sample in the tracked trajectory; refuse instead.
			return nil, fmt.Errorf("benchjson: benchmark %q appears more than once (ran with -count > 1?); one sample per name required", m[1])
		}
		rep.Benchmarks[m[1]] = nsPerOp
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines on stdin (did the bench run fail?)")
	}
	return rep, nil
}

// checkRequired verifies every -require name is represented in the
// parsed report. A recorded name counts toward a required one when it is
// the name itself or the name followed by a '/' sub-case or '-' suffix
// (the GOMAXPROCS decoration), so "BenchmarkX" accepts "BenchmarkX-8"
// and "BenchmarkX/case-8" but not "BenchmarkXL".
func checkRequired(rep *report, require string) error {
	if require == "" {
		return nil
	}
	var missing []string
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for name := range rep.Benchmarks {
			if name == want ||
				(strings.HasPrefix(name, want) && (name[len(want)] == '/' || name[len(want)] == '-')) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("benchjson: required benchmark(s) missing from output: %s (partial bench run?)", strings.Join(missing, ", "))
	}
	return nil
}
