package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: atlahs
BenchmarkParEngineVsSerial/bsp-128x6/serial-8         	       3	  92331234 ns/op
BenchmarkParEngineVsSerial/bsp-128x6/workers-4-8      	       3	  61002988 ns/op	 12 B/op
BenchmarkExperimentSweepVsSerial/workers-1-8          	       1	1900456123 ns/op
PASS
ok  	atlahs	12.3s
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Names stay verbatim: the "-8" GOMAXPROCS suffix is kept because it
	// is textually indistinguishable from a sub-benchmark ending in "-N".
	want := map[string]float64{
		"BenchmarkParEngineVsSerial/bsp-128x6/serial-8":    92331234,
		"BenchmarkParEngineVsSerial/bsp-128x6/workers-4-8": 61002988,
		"BenchmarkExperimentSweepVsSerial/workers-1-8":     1900456123,
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, ns := range want {
		if got := rep.Benchmarks[name]; got != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got, ns)
		}
	}
	if rep.Schema != "atlahs.bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok atlahs 0.1s\n")); err == nil {
		t.Fatal("expected an error for bench output without result lines")
	}
}

func TestParseRejectsDuplicateNames(t *testing.T) {
	in := "BenchmarkX-8   3   100 ns/op\nBenchmarkX-8   3   120 ns/op\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Fatal("expected an error for a benchmark name appearing twice")
	}
}

func TestCheckRequired(t *testing.T) {
	rep := &report{Benchmarks: map[string]float64{
		"BenchmarkParEngineVsSerial/bsp-128x6/serial-8": 1,
		"BenchmarkServiceColdVsCacheHit-8":              2,
		"BenchmarkBare":                                 3,
	}}
	ok := []string{
		"", // no requirement
		"BenchmarkParEngineVsSerial",
		"BenchmarkServiceColdVsCacheHit",
		"BenchmarkBare",
		"BenchmarkParEngineVsSerial, BenchmarkBare", // spaces tolerated
		",BenchmarkBare,", // empty elements ignored
	}
	for _, req := range ok {
		if err := checkRequired(rep, req); err != nil {
			t.Errorf("checkRequired(%q) = %v, want nil", req, err)
		}
	}
	bad := []string{
		"BenchmarkExperimentSweepVsSerial",               // absent entirely
		"BenchmarkBar",                                   // prefix of BenchmarkBare, not a match
		"BenchmarkParEngineVsSerial,BenchmarkGoneWrong",  // one present, one missing
		"BenchmarkServiceColdVsCacheHit-16",              // wrong GOMAXPROCS decoration
		"BenchmarkParEngineVsSerial/bsp-128x6/serial-88", // suffix extends past the real name
	}
	for _, req := range bad {
		if err := checkRequired(rep, req); err == nil {
			t.Errorf("checkRequired(%q) = nil, want missing-benchmark error", req)
		}
	}
}

func TestCheckRequiredNamesTheMissing(t *testing.T) {
	rep := &report{Benchmarks: map[string]float64{"BenchmarkX-8": 1}}
	err := checkRequired(rep, "BenchmarkZed,BenchmarkX,BenchmarkAbsent")
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range []string{"BenchmarkZed", "BenchmarkAbsent"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name %s", err, name)
		}
	}
	if strings.Contains(err.Error(), "BenchmarkX,") || strings.Contains(err.Error(), "BenchmarkX ") {
		t.Errorf("error %q names the present benchmark", err)
	}
}
