// Command validateresults is CI's schema gate for exported experiment
// artifacts: it decodes every *.json file in a directory through
// results.DecodeJSON (which validates against the atlahs.results/v1
// schema) and fails on the first invalid or empty sweep. With -complete it
// additionally requires one artifact per experiment in
// experiments.Names(), so a figure silently dropping out of the sweep
// fails the pipeline.
//
// Usage:
//
//	validateresults [-complete] DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"atlahs/internal/experiments"
	"atlahs/results"
)

func main() {
	complete := flag.Bool("complete", false, "require one artifact per experiment in the evaluation suite")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: validateresults [-complete] DIR")
		os.Exit(2)
	}
	if err := validate(flag.Arg(0), *complete); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// validate checks every JSON artifact in dir, and completeness when asked.
func validate(dir string, complete bool) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("validateresults: no *.json artifacts in %s", dir)
	}
	byName := map[string]bool{}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sweep, err := results.DecodeJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("validateresults: %s: %w", path, err)
		}
		if len(sweep.Rows) == 0 {
			return fmt.Errorf("validateresults: %s: sweep %q has no rows", path, sweep.Name)
		}
		if want := sweep.Name + ".json"; filepath.Base(path) != want {
			return fmt.Errorf("validateresults: %s holds sweep %q (want file name %s)", path, sweep.Name, want)
		}
		byName[sweep.Name] = true
		fmt.Printf("ok %-8s %s: %d columns, %d rows\n", sweep.Name, path, len(sweep.Columns), len(sweep.Rows))
	}
	if complete {
		for _, name := range experiments.Names() {
			if !byName[name] {
				return fmt.Errorf("validateresults: %s misses an artifact for %s", dir, name)
			}
		}
	}
	return nil
}
