package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"atlahs/internal/simtime"
	"atlahs/internal/xrand"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(50) != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestBasicMoments(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N=%d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean=%v", s.Mean())
	}
	if s.Max() != 5 || s.Min() != 1 {
		t.Fatalf("min/max wrong")
	}
	if math.Abs(s.Stddev()-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev=%v", s.Stddev())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50=%v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("p99=%v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100=%v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0=%v", got)
	}
}

func TestPercentileAfterAddResorts(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Percentile(50)
	s.Add(1)
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("resort after Add failed: p0=%v", got)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(2500 * simtime.Nanosecond)
	if got := s.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("AddDuration recorded %v µs, want 2.5", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := xrand.New(seed)
		var s Sample
		cnt := int(n%100) + 1
		for i := 0; i < cnt; i++ {
			s.Add(rng.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean within [min, max]; stddev >= 0.
func TestMomentBoundsProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := xrand.New(seed)
		var s Sample
		cnt := int(n%50) + 1
		for i := 0; i < cnt; i++ {
			s.Add(rng.Normal(0, 100))
		}
		return s.Mean() >= s.Min()-1e9 && s.Mean() <= s.Max()+1e9 && s.Stddev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMatchesSorted(t *testing.T) {
	rng := xrand.New(3)
	var s Sample
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
		s.Add(xs[i])
	}
	sort.Float64s(xs)
	if got := s.Percentile(99); got != xs[int(math.Ceil(0.99*1000))-1] {
		t.Fatalf("p99 mismatch: %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1.0)
	h.Add(-5)   // clamps to bucket 0
	h.Add(0.5)  // bucket 0
	h.Add(5.5)  // bucket 5
	h.Add(99.0) // clamps to last bucket
	if h.Total() != 4 {
		t.Fatalf("total=%d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts=%v", h.Counts)
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(95, 100); got != -5 {
		t.Fatalf("PercentError(95,100)=%v", got)
	}
	if got := PercentError(110, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("PercentError(110,100)=%v", got)
	}
	if got := PercentError(1, 0); got != 0 {
		t.Fatalf("PercentError(x,0)=%v, want 0", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	s.Add(1)
	sum := s.Summarize()
	if sum.N != 1 || sum.Mean != 1 || sum.Max != 1 {
		t.Fatalf("summary=%+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("empty summary string")
	}
}
