// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming accumulators for mean/max, exact quantiles
// over recorded samples, and fixed-width histograms. Message-completion-time
// (MCT) statistics for the storage case study (paper Fig 11) are computed
// with these types.
package stats

import (
	"fmt"
	"math"
	"sort"

	"atlahs/internal/simtime"
)

// Sample accumulates float64 observations and answers summary queries.
// The zero value is an empty, usable accumulator.
type Sample struct {
	xs     []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// AddDuration records a simulated duration in microseconds (the unit the
// paper reports MCT in).
func (s *Sample) AddDuration(d simtime.Duration) { s.Add(d.Microseconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Max returns the maximum observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return s.xs[rank]
}

// Summary is a compact snapshot of a sample.
type Summary struct {
	N          int
	Mean, P50  float64
	P99, Max   float64
	Min, Stdev float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:     s.N(),
		Mean:  s.Mean(),
		P50:   s.Percentile(50),
		P99:   s.Percentile(99),
		Max:   s.Max(),
		Min:   s.Min(),
		Stdev: s.Stddev(),
	}
}

func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f", sm.N, sm.Mean, sm.P50, sm.P99, sm.Max)
}

// Histogram is a fixed-width bucket histogram over [0, width*buckets); the
// final bucket also absorbs overflow.
type Histogram struct {
	Width   float64
	Counts  []uint64
	samples uint64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	return &Histogram{Width: width, Counts: make([]uint64, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	i := int(x / h.Width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.samples++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.samples }

// PercentError returns 100*(predicted-actual)/actual, the error convention
// used throughout the paper's validation figures.
func PercentError(predicted, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return 100 * (predicted - actual) / actual
}
