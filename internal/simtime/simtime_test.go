package simtime

import (
	"testing"
	"testing/quick"
)

func TestUnits(t *testing.T) {
	if Nanosecond != 1000 {
		t.Fatalf("Nanosecond = %d, want 1000", Nanosecond)
	}
	if Second != 1e12 {
		t.Fatalf("Second = %d, want 1e12", int64(Second))
	}
}

func TestAddSub(t *testing.T) {
	tm := Time(0).Add(3 * Nanosecond)
	if tm != 3000 {
		t.Fatalf("Add: got %d", tm)
	}
	if d := tm.Sub(Time(1000)); d != 2*Nanosecond {
		t.Fatalf("Sub: got %v", d)
	}
}

func TestFromNanos(t *testing.T) {
	if FromNanos(3700) != 3700*Nanosecond {
		t.Fatal("FromNanos broken")
	}
	// 0.04 ns = 40 ps, the paper's G for 25 GB/s links.
	if FromNanosF(0.04) != 40*Picosecond {
		t.Fatalf("FromNanosF(0.04) = %d, want 40", FromNanosF(0.04))
	}
	if FromSecondsF(1.5) != 1500*Millisecond {
		t.Fatalf("FromSecondsF broken")
	}
	if FromMicros(7) != 7*Microsecond {
		t.Fatalf("FromMicros broken")
	}
}

func TestPsPerByte(t *testing.T) {
	// 200 Gb/s = 25 GB/s -> 40 ps per byte (the Alps Slingshot rate).
	if got := PsPerByte(200); got != 40 {
		t.Fatalf("PsPerByte(200) = %d, want 40", got)
	}
	if got := PsPerByte(100); got != 80 {
		t.Fatalf("PsPerByte(100) = %d, want 80", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3700 * Nanosecond, "3.700us"},
		{100 * Nanosecond, "100.000ns"},
		{2 * Second, "2.000000s"},
		{-2 * Second, "-2.000000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Fatal("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Min broken")
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(base int64, delta int32) bool {
		tm := Time(base % (1 << 50))
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	f := func(ns int32) bool {
		d := FromNanos(int64(ns))
		return int64(d.Nanoseconds()) == int64(ns)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
