// Package simtime defines the simulated-time types used throughout ATLAHS.
//
// Simulated time is an int64 count of picoseconds since the start of the
// simulation. Picosecond resolution keeps every parameter of the paper's
// evaluation exact in integer arithmetic: the Cray Slingshot bandwidth of
// 25 GB/s corresponds to a per-byte gap G = 0.04 ns = 40 ps, and all
// LogGOPS parameters (given in nanoseconds) convert losslessly.
package simtime

import "fmt"

// Time is an absolute simulated timestamp in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation time.
const Never Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanoseconds returns the time as float64 nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns the duration as float64 nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as float64 microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns the duration as float64 seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// FromNanos converts a nanosecond count to a Duration.
func FromNanos(ns int64) Duration { return Duration(ns) * Nanosecond }

// FromNanosF converts fractional nanoseconds to a Duration, rounding to the
// nearest picosecond.
func FromNanosF(ns float64) Duration { return Duration(ns*float64(Nanosecond) + 0.5) }

// FromMicros converts a microsecond count to a Duration.
func FromMicros(us int64) Duration { return Duration(us) * Microsecond }

// FromSecondsF converts fractional seconds to a Duration.
func FromSecondsF(s float64) Duration { return Duration(s*float64(Second) + 0.5) }

// String formats a duration with an adaptive unit, e.g. "3.700us".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3fns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", d.Seconds())
	}
}

// String formats an absolute time like a duration since t=0.
func (t Time) String() string { return Duration(t).String() }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// PsPerByte returns the per-byte serialisation gap for a link of the given
// bandwidth in gigabits per second. E.g. 200 Gb/s -> 40 ps/B.
func PsPerByte(gbps float64) Duration {
	// 1 byte at 1 Gb/s takes 8 ns = 8000 ps.
	return Duration(8000.0/gbps + 0.5)
}
