module atlahs

go 1.24
