package results

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"

	"atlahs/internal/telemetry"
)

// MetricsSchema identifies the one-shot metrics snapshot document this
// package reads and writes — the wire form of an internal/telemetry
// registry snapshot, attached to sim.Result and served by the simulation
// service at GET /v1/runs/{id}/metrics. Like the other schemas in this
// package it is append-only.
const MetricsSchema = "atlahs.metrics/v1"

// metricNameRE matches Prometheus-compatible metric names, the same
// grammar internal/telemetry enforces at registration time.
var metricNameRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// MetricsSnapshot is a point-in-time reading of a metrics registry: one
// Metric per sample, in the registry's deterministic snapshot order
// (families in registration order, labelled children sorted by label
// value).
type MetricsSnapshot struct {
	// Schema is always MetricsSchema; set by NewMetricsSnapshot and
	// checked by DecodeMetricsJSON.
	Schema  string   `json:"schema"`
	Metrics []Metric `json:"metrics"`
}

// Metric is one sample of a MetricsSnapshot. Counters and gauges carry
// Value; histograms carry Count, Sum and Buckets instead.
type Metric struct {
	Name string `json:"name"`
	// Type is "counter", "gauge" or "histogram".
	Type string `json:"type"`
	Help string `json:"help,omitempty"`
	// Label/LabelValue identify one child of a labelled family (empty for
	// unlabelled metrics).
	Label      string  `json:"label,omitempty"`
	LabelValue string  `json:"label_value,omitempty"`
	Value      float64 `json:"value,omitempty"`
	// Count and Sum are the histogram's total observation count and sum.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	// Buckets are cumulative counts per upper bound. JSON cannot encode
	// +Inf, so — unlike the Prometheus exposition — the +Inf bucket is
	// omitted: Count is the total, and observations above the last bound
	// are Count minus the last bucket's count.
	Buckets []MetricBucket `json:"buckets,omitempty"`
}

// MetricBucket is one cumulative histogram bucket: the number of
// observations less than or equal to the (finite) upper bound LE.
type MetricBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// NewMetricsSnapshot wraps the given samples in a schema-stamped
// snapshot document.
func NewMetricsSnapshot(metrics []Metric) *MetricsSnapshot {
	return &MetricsSnapshot{Schema: MetricsSchema, Metrics: metrics}
}

// MetricsFromPoints converts a telemetry registry snapshot
// (telemetry.Registry.Snapshot) into the wire snapshot, preserving the
// registry's deterministic sample order. Registry snapshots already
// exclude the implicit +Inf histogram bucket, matching this schema.
func MetricsFromPoints(points []telemetry.Point) *MetricsSnapshot {
	metrics := make([]Metric, len(points))
	for i, p := range points {
		m := Metric{
			Name:       p.Name,
			Type:       p.Type,
			Help:       p.Help,
			Label:      p.Label,
			LabelValue: p.LabelValue,
			Value:      p.Value,
			Count:      p.Count,
			Sum:        p.Sum,
		}
		if len(p.Buckets) > 0 {
			m.Buckets = make([]MetricBucket, len(p.Buckets))
			for j, b := range p.Buckets {
				m.Buckets[j] = MetricBucket{LE: b.LE, Count: b.Count}
			}
		}
		metrics[i] = m
	}
	return NewMetricsSnapshot(metrics)
}

// Validate checks the snapshot's schema string and every sample's shape.
func (ms *MetricsSnapshot) Validate() error {
	if ms.Schema != MetricsSchema {
		return fmt.Errorf("results: unknown metrics schema %q (want %q)", ms.Schema, MetricsSchema)
	}
	for i, m := range ms.Metrics {
		if !metricNameRE.MatchString(m.Name) {
			return fmt.Errorf("results: metric %d: invalid name %q", i, m.Name)
		}
		switch m.Type {
		case "counter", "gauge":
			if len(m.Buckets) != 0 {
				return fmt.Errorf("results: metric %q: %s carries histogram buckets", m.Name, m.Type)
			}
		case "histogram":
			prev := math.Inf(-1)
			var prevCount uint64
			for _, b := range m.Buckets {
				if !(b.LE > prev) || math.IsInf(b.LE, 1) || math.IsNaN(b.LE) {
					return fmt.Errorf("results: metric %q: bucket bounds must be finite and ascending", m.Name)
				}
				if b.Count < prevCount {
					return fmt.Errorf("results: metric %q: bucket counts must be cumulative", m.Name)
				}
				prev, prevCount = b.LE, b.Count
			}
			if prevCount > m.Count {
				return fmt.Errorf("results: metric %q: bucket count %d exceeds total %d", m.Name, prevCount, m.Count)
			}
		default:
			return fmt.Errorf("results: metric %q: unknown type %q", m.Name, m.Type)
		}
		if (m.Label == "") != (m.LabelValue == "") {
			return fmt.Errorf("results: metric %q: label and label_value must be set together", m.Name)
		}
		for _, v := range []float64{m.Value, m.Sum} {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return fmt.Errorf("results: metric %q: non-finite sample value", m.Name)
			}
		}
	}
	return nil
}

// EncodeMetricsJSON validates ms and writes it as one indented JSON
// object followed by a newline.
func EncodeMetricsJSON(w io.Writer, ms *MetricsSnapshot) error {
	if err := ms.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return fmt.Errorf("results: encoding metrics snapshot: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// DecodeMetricsJSON reads one MetricsSnapshot written by
// EncodeMetricsJSON, rejecting unknown schema versions and malformed
// samples.
func DecodeMetricsJSON(r io.Reader) (*MetricsSnapshot, error) {
	var ms MetricsSnapshot
	if err := json.NewDecoder(r).Decode(&ms); err != nil {
		return nil, fmt.Errorf("results: decoding metrics snapshot: %w", err)
	}
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	return &ms, nil
}
