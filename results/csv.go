package results

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"maps"
	"slices"
	"strconv"
	"strings"
)

// EncodeCSV validates s and writes it as a "# "-prefixed metadata preamble
// followed by an RFC-4180 table whose header cells carry the column schema
// ("name:kind" or "name:kind:unit"). See the package documentation for the
// full layout.
func EncodeCSV(w io.Writer, s *Sweep) error {
	if err := s.Validate(); err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# schema %s\n", Schema)
	fmt.Fprintf(&sb, "# name %s\n", s.Name)
	if s.Title != "" {
		fmt.Fprintf(&sb, "# title %s\n", s.Title)
	}
	if s.Mode != "" {
		fmt.Fprintf(&sb, "# mode %s\n", s.Mode)
	}
	for _, key := range slices.Sorted(maps.Keys(s.Params)) {
		fmt.Fprintf(&sb, "# param %s %s\n", key, s.Params[key])
	}
	for _, key := range slices.Sorted(maps.Keys(s.Derived)) {
		fmt.Fprintf(&sb, "# derived %s %s\n", key, strconv.FormatFloat(s.Derived[key], 'g', -1, 64))
	}
	for _, note := range s.Notes {
		fmt.Fprintf(&sb, "# note %s\n", note)
	}
	cw := csv.NewWriter(&sb)
	header := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		header[i] = c.Name + ":" + string(c.Kind)
		if c.Unit != "" {
			header[i] += ":" + c.Unit
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, rec := range s.Rows {
		row := make([]string, len(rec))
		for j, cell := range rec {
			switch v := cell.(type) {
			case string:
				row[j] = v
			case int64:
				row[j] = strconv.FormatInt(v, 10)
			case float64:
				row[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// DecodeCSV reads one Sweep written by EncodeCSV. The returned sweep is
// validated and compares equal (DeepEqual) to the encoded one.
func DecodeCSV(r io.Reader) (*Sweep, error) {
	s := &Sweep{}
	sawSchema := false
	// The preamble is strictly a prefix block: the first line not starting
	// with "# " (the CSV header) ends it, and every later line is body —
	// so a data row whose first cell happens to start with "# " can never
	// be mistaken for metadata.
	inPreamble := true
	var body strings.Builder
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			if rest, ok := strings.CutPrefix(line, "# "); ok && inPreamble {
				if merr := applyMeta(s, &sawSchema, strings.TrimRight(rest, "\n")); merr != nil {
					return nil, merr
				}
			} else {
				inPreamble = false
				body.WriteString(line)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("results: decoding CSV sweep: %w", err)
		}
	}
	if !sawSchema {
		return nil, fmt.Errorf("results: CSV sweep misses the '# schema %s' preamble", Schema)
	}
	cr := csv.NewReader(strings.NewReader(body.String()))
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("results: decoding CSV sweep %q: %w", s.Name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("results: CSV sweep %q has no header record", s.Name)
	}
	for _, cell := range records[0] {
		parts := strings.SplitN(cell, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("results: sweep %q: header cell %q is not name:kind[:unit]", s.Name, cell)
		}
		col := Column{Name: parts[0], Kind: Kind(parts[1])}
		if len(parts) == 3 {
			col.Unit = parts[2]
		}
		s.Columns = append(s.Columns, col)
	}
	for i, rec := range records[1:] {
		if len(rec) != len(s.Columns) {
			return nil, fmt.Errorf("results: sweep %q: row %d has %d cells, header has %d columns", s.Name, i, len(rec), len(s.Columns))
		}
		row := make(Record, len(rec))
		for j, raw := range rec {
			cell, err := cellFromCSV(s.Columns[j], raw)
			if err != nil {
				return nil, fmt.Errorf("results: sweep %q: row %d: %w", s.Name, i, err)
			}
			row[j] = cell
		}
		s.Rows = append(s.Rows, row)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// applyMeta folds one "# key rest" preamble line into the sweep.
func applyMeta(s *Sweep, sawSchema *bool, line string) error {
	key, rest, _ := strings.Cut(line, " ")
	switch key {
	case "schema":
		if rest != Schema {
			return fmt.Errorf("results: unknown schema %q (want %q)", rest, Schema)
		}
		*sawSchema = true
	case "name":
		s.Name = rest
	case "title":
		s.Title = rest
	case "mode":
		s.Mode = rest
	case "param":
		k, v, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("results: sweep %q: malformed param line %q", s.Name, line)
		}
		s.SetParam(k, v)
	case "derived":
		k, raw, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("results: sweep %q: malformed derived line %q", s.Name, line)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("results: sweep %q: derived %q: %w", s.Name, k, err)
		}
		s.SetDerived(k, v)
	case "note":
		s.Note(rest)
	default:
		return fmt.Errorf("results: unknown preamble line %q", line)
	}
	return nil
}

// cellFromCSV parses one CSV cell into the column's canonical type.
func cellFromCSV(c Column, raw string) (any, error) {
	switch c.Kind {
	case String:
		return raw, nil
	case Int, Duration:
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("column %q: %q is not an int64", c.Name, raw)
		}
		return v, nil
	case Float:
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("column %q: %q is not a float64", c.Name, raw)
		}
		return v, nil
	}
	return nil, fmt.Errorf("column %q has unknown kind %q", c.Name, c.Kind)
}
