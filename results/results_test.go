package results

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sample builds a sweep exercising every column kind and metadata field.
func sample() *Sweep {
	s := NewSweep("fig_test", "Fig T — unit-test sweep, with commas, \"quotes\" and dashes", "quick")
	s.AddColumn("label", String, "").
		AddColumn("measured", Duration, "ps").
		AddColumn("count", Int, "").
		AddColumn("err_pct", Float, "%")
	s.MustAddRow("plain", int64(254663000000), int64(42), 1.5)
	s.MustAddRow("comma, quote \" cell", int64(0), int64(-7), -0.25)
	// A cell starting with "# " must not be mistaken for CSV preamble.
	s.MustAddRow("# note looks-like-preamble", int64(2), int64(3), 0.5)
	s.MustAddRow("third", int64(1), int64(1<<62), 1e-9)
	s.SetParam("workload_ops", "400")
	s.SetParam("layout", "directdrive{hosts=4} with spaces")
	s.SetDerived("max_abs_err_pct", 3.25)
	s.SetDerived("tiny", 1.0/3.0)
	s.Note("paper: first commentary line", "paper: second line")
	return s
}

func TestAddRowCoercesCellTypes(t *testing.T) {
	s := NewSweep("coerce", "", "quick")
	s.AddColumn("label", String, "").
		AddColumn("dur", Duration, "ps").
		AddColumn("n", Int, "").
		AddColumn("x", Float, "")
	// time.Duration satisfies the Duration column via reflection; int and
	// uint64 satisfy Int; int satisfies Float.
	if err := s.AddRow("ok", 5*time.Millisecond, uint64(9), 7); err != nil {
		t.Fatal(err)
	}
	want := Record{"ok", int64(5_000_000), int64(9), float64(7)}
	if !reflect.DeepEqual(s.Rows[0], want) {
		t.Fatalf("row = %#v, want %#v", s.Rows[0], want)
	}
	if err := s.AddRow("bad", "not-a-duration", 1, 1.0); err == nil {
		t.Fatal("expected type-mismatch error")
	}
	if err := s.AddRow("short", int64(1)); err == nil {
		t.Fatal("expected cell-count error")
	}
	if err := s.AddRow("over", int64(1), uint64(math.MaxUint64), 1.0); err == nil {
		t.Fatal("expected uint64 overflow error")
	}
}

func TestValidateRejectsBadSweeps(t *testing.T) {
	cases := map[string]func(*Sweep){
		"empty name":        func(s *Sweep) { s.Name = "" },
		"uppercase name":    func(s *Sweep) { s.Name = "Fig8" },
		"multiline title":   func(s *Sweep) { s.Title = "a\nb" },
		"no columns":        func(s *Sweep) { s.Columns = nil; s.Rows = nil },
		"dup column":        func(s *Sweep) { s.Columns[1].Name = s.Columns[0].Name },
		"bad kind":          func(s *Sweep) { s.Columns[0].Kind = "decimal" },
		"unit with colon":   func(s *Sweep) { s.Columns[1].Unit = "p:s" },
		"bad param key":     func(s *Sweep) { s.Params["Bad Key"] = "v" },
		"nan derived":       func(s *Sweep) { s.Derived["x"] = math.NaN() },
		"inf cell":          func(s *Sweep) { s.Rows[0][3] = math.Inf(1) },
		"wrong cell type":   func(s *Sweep) { s.Rows[0][2] = "42" },
		"ragged row":        func(s *Sweep) { s.Rows[0] = s.Rows[0][:2] },
		"multiline cell":    func(s *Sweep) { s.Rows[0][0] = "a\nb" },
		"multiline note":    func(s *Sweep) { s.Notes[0] = "a\r\nb" },
		"bad derived key":   func(s *Sweep) { s.Derived["9lives"] = 1 },
		"uppercase column":  func(s *Sweep) { s.Columns[0].Name = "Label" },
		"int cell as int32": func(s *Sweep) { s.Rows[0][2] = int32(1) },
	}
	for name, mutate := range cases {
		s := sample()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the corrupted sweep", name)
		}
	}
	if err := sample().Validate(); err != nil {
		t.Fatalf("pristine sample rejected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("JSON round trip diverged:\ngot  %#v\nwant %#v", got, s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("CSV round trip diverged (encoded:\n%s)\ngot  %#v\nwant %#v", buf.String(), got, s)
	}
}

func TestRoundTripWithoutOptionalFields(t *testing.T) {
	s := NewSweep("bare", "", "")
	s.AddColumn("n", Int, "")
	s.MustAddRow(int64(1))
	for _, codec := range []struct {
		name   string
		encode func(*bytes.Buffer) error
		decode func(*bytes.Buffer) (*Sweep, error)
	}{
		{"json", func(b *bytes.Buffer) error { return EncodeJSON(b, s) },
			func(b *bytes.Buffer) (*Sweep, error) { return DecodeJSON(b) }},
		{"csv", func(b *bytes.Buffer) error { return EncodeCSV(b, s) },
			func(b *bytes.Buffer) (*Sweep, error) { return DecodeCSV(b) }},
	} {
		var buf bytes.Buffer
		if err := codec.encode(&buf); err != nil {
			t.Fatalf("%s: %v", codec.name, err)
		}
		got, err := codec.decode(&buf)
		if err != nil {
			t.Fatalf("%s: %v", codec.name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("%s round trip diverged: %#v vs %#v", codec.name, got, s)
		}
	}
}

func TestDecodeJSONRejectsMalformedInput(t *testing.T) {
	var good bytes.Buffer
	if err := EncodeJSON(&good, sample()); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"wrong schema":  strings.Replace(good.String(), Schema, "atlahs.results/v0", 1),
		"missing field": strings.Replace(good.String(), `"count": 42`, `"other": 42`, 1),
		"extra field":   strings.Replace(good.String(), `"count": 42,`, `"count": 42, "extra": 1,`, 1),
		"wrong type":    strings.Replace(good.String(), `"count": 42`, `"count": "42"`, 1),
		"float as int":  strings.Replace(good.String(), `"count": 42`, `"count": 42.5`, 1),
		"not json":      "},{",
	}
	for name, in := range cases {
		if _, err := DecodeJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: DecodeJSON accepted malformed input", name)
		}
	}
}

func TestDecodeCSVRejectsMalformedInput(t *testing.T) {
	var good bytes.Buffer
	if err := EncodeCSV(&good, sample()); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"no schema line": strings.Replace(good.String(), "# schema", "# skema", 1),
		"wrong schema":   strings.Replace(good.String(), Schema, "atlahs.results/v0", 1),
		"bad header":     strings.Replace(good.String(), "count:int", "count", 1),
		"bad kind":       strings.Replace(good.String(), "count:int", "count:decimal", 1),
		"bad int cell":   strings.Replace(good.String(), ",42,", ",4x2,", 1),
		"bad preamble":   strings.Replace(good.String(), "# name", "# nick", 1),
	}
	for name, in := range cases {
		if _, err := DecodeCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: DecodeCSV accepted malformed input", name)
		}
	}
}
