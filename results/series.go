package results

// Series is one metric's trajectory across an ordered sequence of runs —
// the unit of run-history analytics. The analyzer (internal/analyze)
// builds them from a Store's run artifacts or from CI's BENCH_ci.json
// documents; the service's GET /v1/history and `atlahs-analyze` render
// them. Points are chronological: the last point is "now", everything
// before it is history.
type Series struct {
	// Metric names what is measured: a derived key ("runtime_ps") or a
	// benchmark name ("BenchmarkParEngineVsSerial-4").
	Metric string `json:"metric"`
	// Unit optionally names the value's unit ("ps", "ns/op").
	Unit string `json:"unit,omitempty"`
	// Points are the observations, oldest first.
	Points []Point `json:"points"`
}

// Point is one observation in a Series.
type Point struct {
	// Label identifies the observation's origin: a run id, a history file
	// name, a commit SHA.
	Label string `json:"label"`
	// Unix is the observation's time in Unix seconds, when known (0 when
	// the source carries no timestamp).
	Unix int64 `json:"unix,omitempty"`
	// Value is the observed measurement.
	Value float64 `json:"value"`
}
