package results

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleSnapshot() *MetricsSnapshot {
	return NewMetricsSnapshot([]Metric{
		{Name: "atlahs_engine_events_total", Type: "counter", Help: "events executed", Value: 240000},
		{Name: "atlahs_service_queue_depth", Type: "gauge", Label: "class", LabelValue: "interactive", Value: 2},
		{Name: "atlahs_run_wall_seconds", Type: "histogram", Count: 3, Sum: 4.75,
			Buckets: []MetricBucket{{LE: 0.5, Count: 2}, {LE: 2, Count: 2}}},
	})
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	ms := sampleSnapshot()
	var b bytes.Buffer
	if err := EncodeMetricsJSON(&b, ms); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"schema": "atlahs.metrics/v1"`) {
		t.Fatalf("encoded snapshot misses schema:\n%s", b.String())
	}
	got, err := DecodeMetricsJSON(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Metrics) != 3 {
		t.Fatalf("round trip lost samples: %d, want 3", len(got.Metrics))
	}
	if got.Metrics[2].Count != 3 || got.Metrics[2].Sum != 4.75 {
		t.Fatalf("histogram sample mangled: %+v", got.Metrics[2])
	}
	if got.Metrics[1].LabelValue != "interactive" {
		t.Fatalf("label mangled: %+v", got.Metrics[1])
	}
}

func TestMetricsValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ms   *MetricsSnapshot
	}{
		{"bad schema", &MetricsSnapshot{Schema: "atlahs.metrics/v0"}},
		{"bad name", NewMetricsSnapshot([]Metric{{Name: "Bad-Name", Type: "counter"}})},
		{"bad type", NewMetricsSnapshot([]Metric{{Name: "x", Type: "summary"}})},
		{"counter with buckets", NewMetricsSnapshot([]Metric{
			{Name: "x", Type: "counter", Buckets: []MetricBucket{{LE: 1}}}})},
		{"non-ascending bounds", NewMetricsSnapshot([]Metric{
			{Name: "x", Type: "histogram", Count: 2, Buckets: []MetricBucket{{LE: 2, Count: 1}, {LE: 1, Count: 2}}}})},
		{"non-cumulative counts", NewMetricsSnapshot([]Metric{
			{Name: "x", Type: "histogram", Count: 2, Buckets: []MetricBucket{{LE: 1, Count: 2}, {LE: 2, Count: 1}}}})},
		{"bucket exceeds total", NewMetricsSnapshot([]Metric{
			{Name: "x", Type: "histogram", Count: 1, Buckets: []MetricBucket{{LE: 1, Count: 2}}}})},
		{"label without value", NewMetricsSnapshot([]Metric{{Name: "x", Type: "gauge", Label: "class"}})},
	}
	for _, tc := range cases {
		if err := tc.ms.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid snapshot", tc.name)
		}
	}
}

func TestStoreTraceRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	doc := `{"displayTimeUnit":"ns","traceEvents":[]}` + "\n"
	if err := st.SaveTrace("r_0011223344556677", func(w io.Writer) error {
		_, err := w.Write([]byte(doc))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadTrace("r_0011223344556677")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != doc {
		t.Fatalf("trace round trip: got %q, want %q", got, doc)
	}
	// Traces live outside the sweep namespace: Names must not see them.
	names, err := st.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("trace leaked into the sweep namespace: %v", names)
	}
	if _, err := st.LoadTrace("../escape"); err == nil {
		t.Fatal("LoadTrace accepted a path-escaping name")
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "traces", "r_0011223344556677.json")); err != nil {
		t.Fatalf("trace not at the documented path: %v", err)
	}
}
