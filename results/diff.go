package results

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// DiffSchema identifies the sweep-comparison document this package reads
// and writes. Like the results schema it is append-only: released field
// names and meanings never change (see the package documentation).
const DiffSchema = "atlahs.diff/v1"

// SweepDiff is the field-by-field comparison of two atlahs.results/v1
// sweeps — the document behind `atlahs-analyze diff` and the service's
// GET /v1/analyze/diff. It is sparse: only changed rows, params and
// derived values are recorded, so two identical sweeps diff to a document
// with no rows and Changed == 0.
type SweepDiff struct {
	// A and B name the compared sweeps (Sweep.Name), in that order; every
	// delta is B relative to A ("how did B move away from A").
	A string
	B string
	// Keys are the columns rows were matched on, carried with their kinds
	// so key cells survive the JSON round trip. Empty means positional
	// matching: row i of A against row i of B.
	Keys []Column
	// RowsA and RowsB are the compared sweeps' row counts; Matched is how
	// many rows paired up, and Changed is how many of those differ in at
	// least one shared field (== len(Rows)).
	RowsA   int
	RowsB   int
	Matched int
	Changed int
	// ColumnsOnlyA and ColumnsOnlyB list columns present in only one
	// sweep; their cells are not comparable and appear in no FieldDelta.
	ColumnsOnlyA []string
	ColumnsOnlyB []string
	// RowsOnlyA and RowsOnlyB reference rows with no partner in the other
	// sweep.
	RowsOnlyA []RowRef
	RowsOnlyB []RowRef
	// Rows are the matched rows that changed, in A's row order.
	Rows []RowDiff
	// Params are the experiment-level inputs whose values differ (missing
	// on one side reads as the empty string), sorted by key.
	Params []ParamDelta
	// Derived are the cross-row aggregates present in both sweeps with
	// different values, sorted by key; DerivedOnlyA/B list aggregates
	// present on one side only.
	Derived      []ScalarDelta
	DerivedOnlyA []string
	DerivedOnlyB []string
}

// RowRef identifies one unmatched row: its index in its own sweep, plus
// its key cells when key columns were used.
type RowRef struct {
	Row int
	Key map[string]any
}

// RowDiff is one matched row that changed: its index in sweep A, its key
// cells (nil under positional matching), and one FieldDelta per shared
// field whose cells differ.
type RowDiff struct {
	Row    int
	Key    map[string]any
	Fields []FieldDelta
}

// FieldDelta is one changed cell: the column it belongs to, both
// canonical cell values, and — for numeric kinds — the absolute delta
// B-A and the relative delta (B-A)/|A|. Rel is nil when A is zero (the
// relative move is undefined) and for string cells.
type FieldDelta struct {
	Column string
	Kind   Kind
	Unit   string
	A      any
	B      any
	Abs    *float64
	Rel    *float64
}

// ScalarDelta is one changed derived aggregate.
type ScalarDelta struct {
	Key string   `json:"key"`
	A   float64  `json:"a"`
	B   float64  `json:"b"`
	Abs float64  `json:"abs"`
	Rel *float64 `json:"rel,omitempty"`
}

// ParamDelta is one changed experiment-level input; a side that lacks the
// param reads as the empty string.
type ParamDelta struct {
	Key string `json:"key"`
	A   string `json:"a"`
	B   string `json:"b"`
}

// The wire forms. Cells are encoded exactly like sweep rows — strings as
// JSON strings, int and duration cells as integral numbers, floats as
// finite numbers — and decoded back through the same kind-aware
// conversion, so DecodeDiffJSON(EncodeDiffJSON(d)) reproduces d.
type jsonDiff struct {
	Schema       string        `json:"schema"`
	A            string        `json:"a"`
	B            string        `json:"b"`
	Keys         []Column      `json:"keys,omitempty"`
	RowsA        int           `json:"rows_a"`
	RowsB        int           `json:"rows_b"`
	Matched      int           `json:"matched"`
	Changed      int           `json:"changed"`
	ColumnsOnlyA []string      `json:"columns_only_a,omitempty"`
	ColumnsOnlyB []string      `json:"columns_only_b,omitempty"`
	RowsOnlyA    []jsonRowRef  `json:"rows_only_a,omitempty"`
	RowsOnlyB    []jsonRowRef  `json:"rows_only_b,omitempty"`
	Rows         []jsonRowDiff `json:"rows,omitempty"`
	Params       []ParamDelta  `json:"params,omitempty"`
	Derived      []ScalarDelta `json:"derived,omitempty"`
	DerivedOnlyA []string      `json:"derived_only_a,omitempty"`
	DerivedOnlyB []string      `json:"derived_only_b,omitempty"`
}

type jsonRowRef struct {
	Row int            `json:"row"`
	Key map[string]any `json:"key,omitempty"`
}

type jsonRowDiff struct {
	Row    int              `json:"row"`
	Key    map[string]any   `json:"key,omitempty"`
	Fields []jsonFieldDelta `json:"fields"`
}

type jsonFieldDelta struct {
	Column string   `json:"column"`
	Kind   Kind     `json:"kind"`
	Unit   string   `json:"unit,omitempty"`
	A      any      `json:"a"`
	B      any      `json:"b"`
	Abs    *float64 `json:"abs,omitempty"`
	Rel    *float64 `json:"rel,omitempty"`
}

// EncodeDiffJSON validates d and writes it as one indented JSON object
// followed by a newline.
func EncodeDiffJSON(w io.Writer, d *SweepDiff) error {
	b, err := MarshalDiff(d)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// MarshalDiff validates d and renders it to indented JSON.
func MarshalDiff(d *SweepDiff) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	jd := jsonDiff{
		Schema:       DiffSchema,
		A:            d.A,
		B:            d.B,
		Keys:         d.Keys,
		RowsA:        d.RowsA,
		RowsB:        d.RowsB,
		Matched:      d.Matched,
		Changed:      d.Changed,
		ColumnsOnlyA: d.ColumnsOnlyA,
		ColumnsOnlyB: d.ColumnsOnlyB,
		Params:       d.Params,
		Derived:      d.Derived,
		DerivedOnlyA: d.DerivedOnlyA,
		DerivedOnlyB: d.DerivedOnlyB,
	}
	for _, ref := range d.RowsOnlyA {
		jd.RowsOnlyA = append(jd.RowsOnlyA, jsonRowRef(ref))
	}
	for _, ref := range d.RowsOnlyB {
		jd.RowsOnlyB = append(jd.RowsOnlyB, jsonRowRef(ref))
	}
	for _, row := range d.Rows {
		jr := jsonRowDiff{Row: row.Row, Key: row.Key}
		for _, f := range row.Fields {
			jr.Fields = append(jr.Fields, jsonFieldDelta(f))
		}
		jd.Rows = append(jd.Rows, jr)
	}
	return json.MarshalIndent(jd, "", "  ")
}

// DecodeDiffJSON reads one SweepDiff written by EncodeDiffJSON, rejecting
// unknown schema versions and cells of the wrong type. The returned diff
// is validated and compares equal (DeepEqual) to the encoded one.
func DecodeDiffJSON(r io.Reader) (*SweepDiff, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var jd jsonDiff
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("results: decoding JSON diff: %w", err)
	}
	if jd.Schema != DiffSchema {
		return nil, fmt.Errorf("results: unknown schema %q (want %q)", jd.Schema, DiffSchema)
	}
	d := &SweepDiff{
		A:            jd.A,
		B:            jd.B,
		Keys:         jd.Keys,
		RowsA:        jd.RowsA,
		RowsB:        jd.RowsB,
		Matched:      jd.Matched,
		Changed:      jd.Changed,
		ColumnsOnlyA: jd.ColumnsOnlyA,
		ColumnsOnlyB: jd.ColumnsOnlyB,
		Params:       jd.Params,
		Derived:      jd.Derived,
		DerivedOnlyA: jd.DerivedOnlyA,
		DerivedOnlyB: jd.DerivedOnlyB,
	}
	for _, ref := range jd.RowsOnlyA {
		key, err := keyFromJSON(d.Keys, ref.Key)
		if err != nil {
			return nil, fmt.Errorf("results: diff %s vs %s: rows_only_a row %d: %w", d.A, d.B, ref.Row, err)
		}
		d.RowsOnlyA = append(d.RowsOnlyA, RowRef{Row: ref.Row, Key: key})
	}
	for _, ref := range jd.RowsOnlyB {
		key, err := keyFromJSON(d.Keys, ref.Key)
		if err != nil {
			return nil, fmt.Errorf("results: diff %s vs %s: rows_only_b row %d: %w", d.A, d.B, ref.Row, err)
		}
		d.RowsOnlyB = append(d.RowsOnlyB, RowRef{Row: ref.Row, Key: key})
	}
	for _, jr := range jd.Rows {
		key, err := keyFromJSON(d.Keys, jr.Key)
		if err != nil {
			return nil, fmt.Errorf("results: diff %s vs %s: row %d: %w", d.A, d.B, jr.Row, err)
		}
		row := RowDiff{Row: jr.Row, Key: key}
		for _, jf := range jr.Fields {
			f := FieldDelta(jf)
			col := Column{Name: f.Column, Kind: f.Kind, Unit: f.Unit}
			if f.A, err = cellFromJSON(col, jf.A); err != nil {
				return nil, fmt.Errorf("results: diff %s vs %s: row %d: side a: %w", d.A, d.B, jr.Row, err)
			}
			if f.B, err = cellFromJSON(col, jf.B); err != nil {
				return nil, fmt.Errorf("results: diff %s vs %s: row %d: side b: %w", d.A, d.B, jr.Row, err)
			}
			row.Fields = append(row.Fields, f)
		}
		d.Rows = append(d.Rows, row)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// keyFromJSON converts a decoded key-cell map to canonical cell types
// using the diff's key columns.
func keyFromJSON(keys []Column, raw map[string]any) (map[string]any, error) {
	if raw == nil {
		return nil, nil
	}
	key := make(map[string]any, len(raw))
	for _, c := range keys {
		v, ok := raw[c.Name]
		if !ok {
			return nil, fmt.Errorf("key misses column %q", c.Name)
		}
		cell, err := cellFromJSON(c, v)
		if err != nil {
			return nil, err
		}
		key[c.Name] = cell
	}
	if len(key) != len(raw) {
		return nil, fmt.Errorf("key has %d cells, diff has %d key columns", len(raw), len(keys))
	}
	return key, nil
}

// Validate checks the diff against the schema contract: snake_case names,
// valid column kinds, canonical finite cell values, deltas consistent
// with their cells, and bookkeeping counts that add up. Both the encoder
// and the decoder validate, mirroring the sweep codec.
func (d *SweepDiff) Validate() error {
	for _, name := range []string{d.A, d.B} {
		if !nameRE.MatchString(name) {
			return fmt.Errorf("results: diff sweep name %q is not a snake_case identifier", name)
		}
	}
	keyCols := map[string]Column{}
	for _, c := range d.Keys {
		if !nameRE.MatchString(c.Name) {
			return fmt.Errorf("results: diff %s vs %s: key column %q is not a snake_case identifier", d.A, d.B, c.Name)
		}
		if !c.Kind.valid() {
			return fmt.Errorf("results: diff %s vs %s: key column %q has unknown kind %q", d.A, d.B, c.Name, c.Kind)
		}
		if _, dup := keyCols[c.Name]; dup {
			return fmt.Errorf("results: diff %s vs %s: duplicate key column %q", d.A, d.B, c.Name)
		}
		keyCols[c.Name] = c
	}
	if d.RowsA < 0 || d.RowsB < 0 || d.Matched < 0 {
		return fmt.Errorf("results: diff %s vs %s: negative row counts", d.A, d.B)
	}
	if d.Matched > d.RowsA || d.Matched > d.RowsB {
		return fmt.Errorf("results: diff %s vs %s: matched %d exceeds row counts %d/%d", d.A, d.B, d.Matched, d.RowsA, d.RowsB)
	}
	if len(d.RowsOnlyA) != d.RowsA-d.Matched || len(d.RowsOnlyB) != d.RowsB-d.Matched {
		return fmt.Errorf("results: diff %s vs %s: unmatched row lists disagree with counts", d.A, d.B)
	}
	if d.Changed != len(d.Rows) {
		return fmt.Errorf("results: diff %s vs %s: changed %d but %d row diffs", d.A, d.B, d.Changed, len(d.Rows))
	}
	for _, names := range [][]string{d.ColumnsOnlyA, d.ColumnsOnlyB, d.DerivedOnlyA, d.DerivedOnlyB} {
		for _, name := range names {
			if !nameRE.MatchString(name) {
				return fmt.Errorf("results: diff %s vs %s: name %q is not a snake_case identifier", d.A, d.B, name)
			}
		}
	}
	for _, ref := range append(append([]RowRef(nil), d.RowsOnlyA...), d.RowsOnlyB...) {
		if err := d.validateKey(ref.Key); err != nil {
			return fmt.Errorf("results: diff %s vs %s: unmatched row %d: %w", d.A, d.B, ref.Row, err)
		}
	}
	for _, row := range d.Rows {
		if row.Row < 0 {
			return fmt.Errorf("results: diff %s vs %s: negative row index", d.A, d.B)
		}
		if err := d.validateKey(row.Key); err != nil {
			return fmt.Errorf("results: diff %s vs %s: row %d: %w", d.A, d.B, row.Row, err)
		}
		if len(row.Fields) == 0 {
			return fmt.Errorf("results: diff %s vs %s: row %d diff has no changed fields", d.A, d.B, row.Row)
		}
		for _, f := range row.Fields {
			if err := f.validate(); err != nil {
				return fmt.Errorf("results: diff %s vs %s: row %d: %w", d.A, d.B, row.Row, err)
			}
		}
	}
	for _, p := range d.Params {
		if !nameRE.MatchString(p.Key) {
			return fmt.Errorf("results: diff %s vs %s: param key %q is not a snake_case identifier", d.A, d.B, p.Key)
		}
	}
	for _, s := range d.Derived {
		if !nameRE.MatchString(s.Key) {
			return fmt.Errorf("results: diff %s vs %s: derived key %q is not a snake_case identifier", d.A, d.B, s.Key)
		}
		for _, v := range []float64{s.A, s.B, s.Abs} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("results: diff %s vs %s: derived %q delta is %v", d.A, d.B, s.Key, v)
			}
		}
		if s.Rel != nil && (math.IsNaN(*s.Rel) || math.IsInf(*s.Rel, 0)) {
			return fmt.Errorf("results: diff %s vs %s: derived %q relative delta is %v", d.A, d.B, s.Key, *s.Rel)
		}
		if (s.Rel == nil) != (s.A == 0) {
			return fmt.Errorf("results: diff %s vs %s: derived %q relative delta must be present exactly when the baseline is non-zero", d.A, d.B, s.Key)
		}
	}
	return nil
}

// validateKey checks one row's key cells against the diff's key columns.
func (d *SweepDiff) validateKey(key map[string]any) error {
	if len(d.Keys) == 0 {
		if key != nil {
			return fmt.Errorf("key cells present under positional matching")
		}
		return nil
	}
	if len(key) != len(d.Keys) {
		return fmt.Errorf("key has %d cells, diff has %d key columns", len(key), len(d.Keys))
	}
	for _, c := range d.Keys {
		v, ok := key[c.Name]
		if !ok {
			return fmt.Errorf("key misses column %q", c.Name)
		}
		if err := checkCell(c, v); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one field delta's internal consistency.
func (f *FieldDelta) validate() error {
	if !nameRE.MatchString(f.Column) {
		return fmt.Errorf("column %q is not a snake_case identifier", f.Column)
	}
	if !f.Kind.valid() {
		return fmt.Errorf("column %q has unknown kind %q", f.Column, f.Kind)
	}
	col := Column{Name: f.Column, Kind: f.Kind, Unit: f.Unit}
	if err := checkCell(col, f.A); err != nil {
		return fmt.Errorf("side a: %w", err)
	}
	if err := checkCell(col, f.B); err != nil {
		return fmt.Errorf("side b: %w", err)
	}
	if f.A == f.B {
		return fmt.Errorf("column %q delta records equal cells %v", f.Column, f.A)
	}
	if f.Kind == String {
		if f.Abs != nil || f.Rel != nil {
			return fmt.Errorf("column %q: string delta carries numeric deltas", f.Column)
		}
		return nil
	}
	a, b := cellFloat(f.A), cellFloat(f.B)
	if f.Abs == nil || *f.Abs != b-a {
		return fmt.Errorf("column %q: absolute delta disagrees with cells", f.Column)
	}
	if (f.Rel == nil) != (a == 0) {
		return fmt.Errorf("column %q: relative delta must be present exactly when the baseline is non-zero", f.Column)
	}
	if f.Rel != nil && (math.IsNaN(*f.Rel) || math.IsInf(*f.Rel, 0)) {
		return fmt.Errorf("column %q: relative delta is %v", f.Column, *f.Rel)
	}
	return nil
}

// checkCell verifies one canonical cell value against its column, the
// same contract Sweep.Validate enforces on rows.
func checkCell(c Column, cell any) error {
	switch c.Kind {
	case String:
		if _, ok := cell.(string); !ok {
			return fmt.Errorf("column %q: %T is not a string", c.Name, cell)
		}
	case Int, Duration:
		if _, ok := cell.(int64); !ok {
			return fmt.Errorf("column %q: %T is not an int64", c.Name, cell)
		}
	case Float:
		v, ok := cell.(float64)
		if !ok {
			return fmt.Errorf("column %q: %T is not a float64", c.Name, cell)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("column %q is %v", c.Name, v)
		}
	}
	return nil
}

// cellFloat widens a canonical numeric cell to float64.
func cellFloat(cell any) float64 {
	switch v := cell.(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	}
	return math.NaN()
}
