// Package results defines the machine-readable result records of the
// ATLAHS toolchain: typed sweeps of experiment rows with lossless JSON and
// CSV encodings, so figures and tables are regenerated as data artifacts
// instead of parsed out of printed text.
//
// A Sweep is one experiment's output: identifying metadata (Name, Title,
// Mode), a typed column schema, the data rows (one Record per
// configuration point), experiment-level Params, Derived aggregates, and
// free-text Notes. Records hold canonical Go values only — string, int64
// and float64 — with the column Kind distinguishing plain integers from
// simulated-time durations (always integer picoseconds, the base unit of
// internal/simtime).
//
// # JSON schema (atlahs.results/v1)
//
// EncodeJSON writes one Sweep as a single JSON object:
//
//	{
//	  "schema":  "atlahs.results/v1",
//	  "name":    "fig8",
//	  "title":   "Fig 8 — AI validation: ...",
//	  "mode":    "quick",
//	  "params":  {"key": "value"},               // optional
//	  "columns": [{"name": "measured", "kind": "duration", "unit": "ps"}],
//	  "rows":    [{"measured": 254663000000}],   // one object per Record
//	  "derived": {"max_abs_err_pct": 3.2},       // optional
//	  "notes":   ["paper: ..."]                  // optional
//	}
//
// Row objects are keyed by column name and carry exactly the declared
// columns: "string" cells are JSON strings, "int" and "duration" cells are
// integral JSON numbers (int64 range), "float" cells are finite JSON
// numbers. EncodeJSONList writes a JSON array of such objects.
//
// # CSV schema
//
// EncodeCSV writes the same sweep as a comment preamble plus an RFC-4180
// body. Preamble lines start with "# " and carry the non-tabular fields:
//
//	# schema atlahs.results/v1
//	# name fig8
//	# title Fig 8 — AI validation: ...
//	# mode quick
//	# param key value
//	# derived max_abs_err_pct 3.2
//	# note paper: ...
//
// The first CSV record is the header; each cell is "name:kind" or
// "name:kind:unit" so the column schema survives the round trip. Data
// cells format as raw strings, decimal int64, or shortest-round-trip
// floats (strconv 'g', precision -1).
//
// # Diff schema (atlahs.diff/v1)
//
// A SweepDiff is the field-by-field comparison of two sweeps, the
// document behind `atlahs-analyze diff` and the service's
// GET /v1/analyze/diff. EncodeDiffJSON writes one SweepDiff as a single
// JSON object:
//
//	{
//	  "schema":  "atlahs.diff/v1",
//	  "a": "fig8", "b": "fig8",            // the compared sweeps' names
//	  "keys":    [{"name": "configuration", "kind": "string"}],
//	  "rows_a": 4, "rows_b": 4, "matched": 4, "changed": 1,
//	  "columns_only_a": [...], "columns_only_b": [...],   // optional
//	  "rows_only_a": [{"row": 3, "key": {...}}],          // optional
//	  "rows": [{"row": 0, "key": {"configuration": "llama7b"},
//	            "fields": [{"column": "measured", "kind": "duration",
//	                        "unit": "ps", "a": 100, "b": 120,
//	                        "abs": 20, "rel": 0.2}]}],
//	  "params":  [{"key": "mode", "a": "quick", "b": "full"}],
//	  "derived": [{"key": "runtime_ps", "a": 100, "b": 120,
//	               "abs": 20, "rel": 0.2}],
//	  "derived_only_a": [...], "derived_only_b": [...]    // optional
//	}
//
// Every delta is B relative to A: "abs" is B-A and "rel" is (B-A)/|A|,
// omitted when A is zero (the relative move is undefined) and for string
// cells. The document is sparse — only changed rows, params and derived
// values appear — so two identical sweeps diff to "changed": 0 with no
// rows. "keys" carries the columns rows were matched on; when empty, rows
// were matched by position and row diffs carry no "key" object. Like the
// results schema, atlahs.diff/v1 is append-only.
//
// A Series ({"metric", "unit", "points": [{"label", "unix", "value"}]})
// is one metric's trajectory across an ordered sequence of runs; it has
// no standalone schema string — it travels inside atlahs.history/v1
// responses (see internal/analyze and GET /v1/history).
//
// # Workload-model schema (atlahs.model/v1)
//
// A WorkloadModel is a statistical workload model mined from a resolved
// GOAL schedule (internal/workload/synth, surfaced as sim.MineModel /
// `atlahs-synth mine`) and sampled back into schedules at arbitrary rank
// counts. EncodeModelJSON writes one model as a single JSON object:
//
//	{
//	  "schema":       "atlahs.model/v1",
//	  "comment":      "mined from run.mpi (frontend mpi)",  // optional provenance
//	  "source_ranks": 8, "source_ops": 1216,
//	  "depth_mean":   88, "depth_max": 88,   // dependency-chain profile
//	  "phases":       87,                    // generation supersteps
//	  "calc":         {...},                 // calc durations (ns), a dist
//	  "calc_ns_per_rank":  {...},            // per-rank total compute
//	  "sends_per_rank":    {...},            // per-rank message counts
//	  "sizes":        {...},                 // message sizes (bytes)
//	  "classes": [                           // traffic classes
//	    {"count": 2560, "sizes": {...},
//	     "offsets": [0, 80, ...]}            // 32-bin (dst-src) mod n histogram
//	  ],
//	  "calc_comm_ratio": 1.2                 // total calc ns / total sent bytes
//	}
//
// Every {...} above is a dist — an empirical distribution carrying its
// moments and histogram: {"count", "mean", "std", "min", "max", "hist":
// [{"lo", "hi", "n"}]} with ordered, non-overlapping integer buckets
// inside [min, max] whose "n" sum to "count" (exact single-value buckets
// for small supports, log2-width buckets otherwise). Traffic-class
// "offsets" histograms always have exactly 32 bins (ModelOffsetBins);
// bin i counts messages whose destination offset (dst-src+n) mod n falls
// in [i*n/32, (i+1)*n/32) of the source rank count n, which is what lets
// a model mined at 8 ranks place destinations sensibly at 100k.
// DecodeModelJSON validates all of this plus finite moments, so a decoded
// model is always safely samplable.
//
// Like the other schemas, atlahs.model/v1 is append-only: released field
// names keep their meaning and units (durations in integer nanoseconds,
// sizes in bytes), decoders reject unknown fields of the current version,
// and renaming or retyping a field requires a new schema version string.
// Generation from a model is deterministic for (model, ranks, seed), so a
// model document is a content-addressable workload: equal documents plus
// equal (ranks, seed) yield bit-identical schedules.
//
// # Metrics-snapshot schema (atlahs.metrics/v1)
//
// A MetricsSnapshot is a one-shot reading of an internal/telemetry
// metrics registry: the document a run's engine/scheduler counters
// travel in (sim.Result.Metrics) and the body of the service's
// GET /v1/runs/{id}/metrics. EncodeMetricsJSON writes one snapshot as a
// single JSON object:
//
//	{
//	  "schema":  "atlahs.metrics/v1",
//	  "metrics": [
//	    {"name": "atlahs_engine_events_total", "type": "counter",
//	     "help": "...", "value": 240000},
//	    {"name": "atlahs_service_queue_depth", "type": "gauge",
//	     "label": "class", "label_value": "interactive", "value": 2},
//	    {"name": "atlahs_run_wall_seconds", "type": "histogram",
//	     "help": "...", "count": 3, "sum": 4.75,
//	     "buckets": [{"le": 0.5, "count": 2}, {"le": 2, "count": 2}]}
//	  ]
//	}
//
// Samples appear in the registry's deterministic snapshot order:
// families in registration order, labelled children sorted by label
// value. Histogram buckets are cumulative over finite upper bounds;
// JSON cannot encode +Inf, so — unlike the Prometheus text exposition —
// the +Inf bucket is omitted and "count" carries the total observation
// count. Like the other schemas, atlahs.metrics/v1 is append-only:
// metric names may be added between releases but keep their meaning and
// units once released, and consumers should select samples by name.
//
// Timeline traces (Chrome trace-event JSON, see internal/telemetry) are
// not a results schema; a Store keeps them as opaque documents under
// traces/ via SaveTrace/LoadTrace, outside the sweep namespace.
//
// # Stability guarantee
//
// The "atlahs.results/v1" schema is append-only: released field names,
// column kinds and cell encodings keep their meaning, and decoders
// tolerate new optional top-level fields. Renaming or retyping a field, or
// changing a unit, requires a new schema version string; consumers should
// reject schemas they do not know. Column sets of individual experiments
// may grow new columns between releases — CSV/JSON consumers should select
// columns by name, not by position.
//
// Encode→decode is lossless for both encodings: DecodeJSON(EncodeJSON(s))
// and DecodeCSV(EncodeCSV(s)) reproduce the Sweep exactly (the round-trip
// suite pins this).
package results
